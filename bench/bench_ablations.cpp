// Ablations of the design choices DESIGN.md calls out: each run disables one
// mechanism and reports how the headline metric (mean PLT reduction) moves,
// attributing the H3-CDN synergy to its individual ingredients.
//
//   baseline          — everything on (the Fig. 6 configuration)
//   tls12-everywhere  — all TCP origins forced to TLS 1.2 (3-RTT H2 connects;
//                       H3's fast-connect advantage widens)
//   no-coalescing     — H2 connection coalescing off (removes H2's reuse
//                       edge on complicated pages; §VI-C)
//   no-0rtt           — QUIC 0-RTT disabled in consecutive mode (resumption
//                       differential shrinks; §VI-D)
//   cubic-cc          — CUBIC instead of NewReno on both transports (CC is
//                       deliberately symmetric; reductions should barely move)
#include "bench_common.h"

#include "analysis/page_metrics.h"
#include "browser/browser.h"
#include "util/table.h"

namespace {

using namespace h3cdn;

struct AblationOutcome {
  std::string name;
  double mean_reduction_ms = 0.0;
  double median_reduction_ms = 0.0;
  double mean_resumed = 0.0;
};

AblationOutcome measure(const std::string& name, core::StudyConfig cfg,
                        std::shared_ptr<const web::Workload> workload) {
  const auto result = core::MeasurementStudy(cfg).run(std::move(workload));
  std::vector<double> reductions;
  double resumed = 0.0;
  const auto sites = core::site_pair_metrics(result);
  for (const auto& s : sites) {
    reductions.push_back(s.plt_reduction_ms);
    resumed += s.resumed_connections;
  }
  AblationOutcome o;
  o.name = name;
  o.mean_reduction_ms = util::mean(reductions);
  o.median_reduction_ms = util::median(reductions);
  o.mean_resumed = sites.empty() ? 0.0 : resumed / static_cast<double>(sites.size());
  return o;
}

void BM_AblationStudy(benchmark::State& state) {
  for (auto _ : state) {
    auto result = core::MeasurementStudy(bench::micro_config(8)).run();
    benchmark::DoNotOptimize(result.visits.size());
  }
}
BENCHMARK(BM_AblationStudy)->Unit(benchmark::kMillisecond);

void run_ablations(std::ostream& os) {
  core::StudyConfig base = bench::standard_config();
  base.max_sites = bench::env_size("H3CDN_BENCH_SITES", 150);
  base.probes_per_vantage = static_cast<int>(bench::env_size("H3CDN_BENCH_PROBES", 2));

  auto workload = std::make_shared<web::Workload>(web::generate_workload(base.workload));

  std::vector<AblationOutcome> rows;
  rows.push_back(measure("baseline", base, workload));

  {
    // Force TLS 1.2 on every domain (3-RTT H2 connects).
    auto tls12 = std::make_shared<web::Workload>(*workload);
    for (const auto& name : tls12->universe.all_domain_names()) {
      tls12->universe.mutable_get(name).tls_version = tls::TlsVersion::Tls12;
    }
    rows.push_back(measure("tls12-everywhere", base, tls12));
  }

  {
    core::StudyConfig cfg = base;
    for (auto& v : cfg.vantages) v.h2_coalescing_enabled = false;
    rows.push_back(measure("no-coalescing", cfg, workload));
  }

  {
    core::StudyConfig cfg = base;
    cfg.consecutive = true;
    rows.push_back(measure("consecutive baseline", cfg, workload));
    cfg.browser.allow_zero_rtt = false;
    rows.push_back(measure("consecutive no-0rtt", cfg, workload));
  }

  {
    core::StudyConfig cfg = base;
    cfg.browser.transport.cc.algorithm = transport::CcAlgorithm::Cubic;
    rows.push_back(measure("cubic-cc", cfg, workload));
  }

  // --- First vs Repeat view (Saverimoutou et al., paper ref [21]) ---------
  {
    const std::size_t n = std::min<std::size_t>(60, workload->sites.size());
    double first_ms[2] = {0, 0}, repeat_ms[2] = {0, 0};
    double cached_entries = 0, total_entries = 0;
    for (int mode = 0; mode < 2; ++mode) {
      sim::Simulator sim;
      browser::Environment env(sim, workload->universe, browser::default_vantage_points()[0],
                               util::Rng(404));
      browser::BrowserConfig bc = base.browser;
      bc.h3_enabled = mode == 1;
      bc.http_cache_enabled = true;
      browser::Browser chrome(sim, env, nullptr, bc, util::Rng(405));
      for (std::size_t si = 0; si < n; ++si) {
        const auto& page = workload->sites[si].page;
        env.warm_page(page);
        first_ms[mode] += to_ms(chrome.visit_and_run(page).har.page_load_time);
        const auto repeat = chrome.visit_and_run(page);
        repeat_ms[mode] += to_ms(repeat.har.page_load_time);
        if (mode == 1) {
          for (const auto& e : repeat.har.entries) {
            cached_entries += e.from_cache;
            ++total_entries;
          }
        }
        chrome.clear_http_cache();
      }
    }
    util::AsciiTable fr({"View", "Mean H2 PLT (ms)", "Mean H3 PLT (ms)", "Reduction (ms)"});
    const double dn = static_cast<double>(n);
    fr.add_row({"First", util::fmt(first_ms[0] / dn, 1), util::fmt(first_ms[1] / dn, 1),
                util::fmt((first_ms[0] - first_ms[1]) / dn, 1)});
    fr.add_row({"Repeat", util::fmt(repeat_ms[0] / dn, 1), util::fmt(repeat_ms[1] / dn, 1),
                util::fmt((repeat_ms[0] - repeat_ms[1]) / dn, 1)});
    os << "First vs Repeat view (browser HTTP cache on; "
       << util::fmt_pct(cached_entries / total_entries) << " of repeat entries from cache):\n";
    os << fr.to_string(2) << "\n";
  }

  util::AsciiTable t({"Ablation", "Mean PLT reduction (ms)", "Median (ms)",
                      "Mean resumed conns"});
  for (const auto& r : rows) {
    t.add_row({r.name, util::fmt(r.mean_reduction_ms, 1), util::fmt(r.median_reduction_ms, 1),
               util::fmt(r.mean_resumed, 1)});
  }
  os << "Expected directions: tls12-everywhere > baseline; no-coalescing >= baseline\n"
        "(H2 loses its reuse edge); consecutive no-0rtt < consecutive baseline;\n"
        "cubic-cc ~ baseline (congestion control is symmetric by design).\n";
  os << t.to_string(2);
}

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(argc, argv, "Design-choice ablations", run_ablations);
}
