// Fig. 9 — PLT reduction versus the number of CDN resources per page under
// injected netem-style loss (paper: fitted slopes 0.80 / 1.42 / 2.15
// ms-per-resource for 0% / 0.5% / 1% loss — increasing with the loss rate,
// because H3's stream multiplexing and per-stream loss recovery sidestep
// TCP's head-of-line blocking).
#include "bench_common.h"

namespace {

using namespace h3cdn;

void BM_LossyPageVisit(benchmark::State& state) {
  auto cfg = bench::micro_config(6);
  cfg.loss_rate = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    auto result = core::MeasurementStudy(cfg).run();
    benchmark::DoNotOptimize(result.visits.size());
  }
}
BENCHMARK(BM_LossyPageVisit)->Arg(0)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Fig. 9 (loss sweep: reduction vs. CDN resource count)",
      [](std::ostream& os, h3cdn::bench::BenchReport& report) {
        auto cfg = h3cdn::bench::standard_config();
        cfg.probes_per_vantage = static_cast<int>(h3cdn::bench::env_size("H3CDN_BENCH_PROBES", 2));
        const auto fig9 = core::compute_fig9(cfg, {0.0, 0.005, 0.01});
        core::print_fig9(os, fig9);
        for (const auto& s : fig9.series) {
          // Label by loss permille so metric names stay dot-free.
          const auto permille = static_cast<int>(s.loss_rate * 1000.0 + 0.5);
          const std::string tag = "loss" + std::to_string(permille) + "permille";
          report.add("fit_slope_" + tag, s.fit.slope, "ms_per_resource");
          report.add("fit_r2_" + tag, s.fit.r2, "ratio");
        }
        // The paper's headline: the slope grows with the loss rate.
        if (fig9.series.size() >= 2 && fig9.series.front().fit.slope != 0.0) {
          report.add("slope_ratio_maxloss_vs_lossless",
                     fig9.series.back().fit.slope / fig9.series.front().fit.slope, "ratio");
        }
      });
}
