// Fig. 7 — (a) reused HTTP connections with H3 and H2 per quartile group,
// (b) the reused-connection difference (H2 − H3), (c) PLT reduction versus
// that difference (paper: reuse rises with group level; H2 reuses more than
// H3, most in High; larger differences come with smaller reductions).
#include "bench_common.h"

namespace {

using namespace h3cdn;

void BM_ComputeFig7(benchmark::State& state) {
  const auto study = core::MeasurementStudy(bench::micro_config(16)).run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_fig7(study).groups.size());
  }
}
BENCHMARK(BM_ComputeFig7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Fig. 7 (reused connections vs. H3 benefit)", [](std::ostream& os) {
        auto cfg = h3cdn::bench::standard_config();
        cfg.probes_per_vantage = static_cast<int>(h3cdn::bench::env_size("H3CDN_BENCH_PROBES", 3));
        const auto study = core::MeasurementStudy(cfg).run();
        core::print_fig7(os, core::compute_fig7(study));
      });
}
