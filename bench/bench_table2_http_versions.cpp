// Table II — number and percentage of requests using each HTTP version,
// split into CDN and non-CDN requests (paper: 36,057 requests, 67.0% CDN,
// 32.6% H3 overall, 25.8% H3 CDN).
#include "bench_common.h"

namespace {

using namespace h3cdn;

void BM_StudyVisitPair(benchmark::State& state) {
  // Cost of one full paired (H2+H3) measurement of a small site set.
  for (auto _ : state) {
    auto result = core::MeasurementStudy(bench::micro_config()).run();
    benchmark::DoNotOptimize(result.visits.size());
  }
}
BENCHMARK(BM_StudyVisitPair)->Unit(benchmark::kMillisecond);

void BM_ComputeTable2(benchmark::State& state) {
  const auto study = core::MeasurementStudy(bench::micro_config(16)).run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_table2(study).total());
  }
}
BENCHMARK(BM_ComputeTable2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Table II (requests by HTTP version)", [](std::ostream& os) {
        const auto study = core::MeasurementStudy(bench::standard_config()).run();
        core::print_table2(os, core::compute_table2(study));
      });
}
