// Fault recovery — the resilience extension beyond the paper's Fig. 9 sweep:
//   (a) equal-average-rate loss, i.i.d. Bernoulli vs Gilbert-Elliott bursts.
//     Bursty loss wipes out whole congestion windows, so H2's in-order wall
//     turns each burst into a connection-wide stall; expect the H2 PLT tail
//     (p95) to separate far more than the mean, and more than H3's.
//   (b) a mid-transfer UDP blackhole of varying duration: how often pages
//     needed the H3->H2 fallback, how many requests were transparently
//     rescued, and the PLT penalty versus the same-seed fault-free run.
//   (c) the chaos harness's recovery cells (docs/RESILIENCE.md): the
//     baseline / edge-outage / midtransfer-kill scenarios with the
//     resilience engine on vs off. The BENCH record pins that Range
//     resumption actually saves bytes (resumed_bytes > 0), the p95 recovery
//     penalty the engine pays over a fault-free cell, and how often a
//     launched hedge beat its primary.
#include <cstdint>
#include <iomanip>

#include "bench_common.h"
#include "core/resilience.h"
#include "load/chaos.h"

namespace {

using namespace h3cdn;

core::ResilienceConfig bench_config(std::size_t sites) {
  core::ResilienceConfig cfg;
  cfg.sites = sites;
  cfg.workload.site_count = std::max<std::size_t>(sites, 2);
  return cfg;
}

void BM_ResilienceOutageVisit(benchmark::State& state) {
  auto cfg = bench_config(2);
  cfg.loss_rates = {};  // outage axis only
  cfg.outage_durations = {msec(static_cast<std::int64_t>(state.range(0)))};
  for (auto _ : state) {
    auto result = core::run_resilience(cfg);
    benchmark::DoNotOptimize(result.outage_rows.size());
  }
}
BENCHMARK(BM_ResilienceOutageVisit)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_ResilienceBurstVisit(benchmark::State& state) {
  auto cfg = bench_config(2);
  cfg.outage_durations = {};  // loss axis only
  cfg.loss_rates = {static_cast<double>(state.range(0)) / 1000.0};
  for (auto _ : state) {
    auto result = core::run_resilience(cfg);
    benchmark::DoNotOptimize(result.loss_rows.size());
  }
}
BENCHMARK(BM_ResilienceBurstVisit)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

// The recovery subset of the chaos suite: a fault-free baseline cell (the
// reference PLT tail) plus the two scenarios whose recovery path the engine
// owns end to end.
core::ChaosConfig chaos_config(bool resilience_on) {
  core::ChaosConfig cfg;
  cfg.sites = 2;
  cfg.resilience.enabled = resilience_on;
  std::vector<core::ChaosScenario> keep;
  for (const auto& sc : cfg.scenarios) {
    if (sc.name == "baseline" || sc.name == "edge-outage-midpage" ||
        sc.name == "midtransfer-kill") {
      keep.push_back(sc);
    }
  }
  cfg.scenarios = std::move(keep);
  return cfg;
}

void BM_ChaosRecoveryCells(benchmark::State& state) {
  const auto cfg = chaos_config(state.range(0) != 0);
  for (auto _ : state) {
    auto result = core::run_chaos(cfg);
    benchmark::DoNotOptimize(result.rows.size());
  }
}
BENCHMARK(BM_ChaosRecoveryCells)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

const core::ChaosCellRow* chaos_row(const core::ChaosResult& result, const char* name) {
  for (const auto& row : result.rows) {
    if (row.scenario == name) return &row;
  }
  return nullptr;
}

void print_chaos_recovery(std::ostream& os, const core::ChaosResult& on,
                          const core::ChaosResult& off) {
  os << "\n--- Chaos recovery cells: resilience engine on vs off ---\n";
  os << std::left << std::setw(22) << "scenario" << std::right << std::setw(12) << "p95 on"
     << std::setw(12) << "p95 off" << std::setw(10) << "fail on" << std::setw(10) << "fail off"
     << std::setw(14) << "resumed KB" << std::setw(10) << "hedges" << std::setw(10)
     << "mttr ms" << "\n";
  for (const auto& row : on.rows) {
    const core::ChaosCellRow* other = chaos_row(off, row.scenario.c_str());
    os << std::left << std::setw(22) << row.scenario << std::right << std::setw(12)
       << row.plt_p95_ms << std::setw(12) << (other ? other->plt_p95_ms : 0.0) << std::setw(10)
       << row.failed_visits << std::setw(10) << (other ? other->failed_visits : 0)
       << std::setw(14) << static_cast<double>(row.resumed_bytes) / 1024.0 << std::setw(10)
       << row.hedges_launched << std::setw(10) << row.mttr_ms << "\n";
  }
}

void print_resilience(std::ostream& os, const core::ResilienceResult& result) {
  os << "--- Burst vs. Bernoulli at equal average loss (PLT ms) ---\n";
  os << std::left << std::setw(8) << "loss" << std::setw(10) << "model" << std::right
     << std::setw(10) << "h2 mean" << std::setw(10) << "h2 p95" << std::setw(10) << "h3 mean"
     << std::setw(10) << "h3 p95" << std::setw(12) << "offered" << std::setw(10) << "dropped"
     << std::setw(10) << "iid-drop" << std::setw(12) << "burst-drop" << "\n";
  os << std::fixed << std::setprecision(1);
  for (const auto& row : result.loss_rows) {
    os << std::left << std::setw(8) << std::setprecision(3) << row.loss_rate
       << std::setprecision(1) << std::setw(10) << (row.bursty ? "burst" : "iid") << std::right
       << std::setw(10) << row.h2_mean_plt_ms
       << std::setw(10) << row.h2_p95_plt_ms << std::setw(10) << row.h3_mean_plt_ms
       << std::setw(10) << row.h3_p95_plt_ms << std::setw(12) << row.packets_offered
       << std::setw(10) << row.packets_dropped << std::setw(10) << row.dropped_bernoulli
       << std::setw(12) << row.dropped_burst << "\n";
  }

  os << "\n--- Mid-transfer UDP blackhole: H3->H2 degradation ---\n";
  os << std::left << std::setw(10) << "outage" << std::right << std::setw(8) << "deaths"
     << std::setw(10) << "fallbk" << std::setw(10) << "rescued" << std::setw(8) << "failed"
     << std::setw(10) << "pages%" << std::setw(12) << "mean-pen" << std::setw(12) << "p95-pen"
     << std::setw(12) << "offered" << std::setw(12) << "outage-drop" << "\n";
  for (const auto& row : result.outage_rows) {
    os << std::left << std::setw(10) << (std::to_string(row.outage.count() / 1000) + "ms")
       << std::right
       << std::setw(8) << row.connection_deaths << std::setw(10) << row.h3_fallbacks
       << std::setw(10) << row.requests_rescued << std::setw(8) << row.requests_failed
       << std::setw(10) << row.fallback_page_rate * 100.0 << std::setw(12)
       << row.mean_recovery_ms << std::setw(12) << row.p95_recovery_ms
       << std::setw(12) << row.packets_offered << std::setw(12) << row.dropped_outage << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Fault recovery (burst-loss tails + outage degradation)",
      [](std::ostream& os, h3cdn::bench::BenchReport& report) {
        const std::size_t sites = h3cdn::bench::env_size("H3CDN_BENCH_SITES", 32);
        const auto result = core::run_resilience(bench_config(sites));
        print_resilience(os, result);
        for (const auto& row : result.loss_rows) {
          const auto permille = static_cast<int>(row.loss_rate * 1000.0 + 0.5);
          const std::string tag = std::string(row.bursty ? "burst" : "iid") + "_loss" +
                                  std::to_string(permille) + "permille";
          report.add("h2_p95_plt_" + tag, row.h2_p95_plt_ms, "ms");
          report.add("h3_p95_plt_" + tag, row.h3_p95_plt_ms, "ms");
        }
        for (const auto& row : result.outage_rows) {
          const std::string tag = "outage" + std::to_string(row.outage.count() / 1000) + "ms";
          report.add("fallback_page_rate_" + tag, row.fallback_page_rate, "ratio");
          report.add("mean_recovery_penalty_" + tag, row.mean_recovery_ms, "ms");
          report.add("requests_failed_" + tag, static_cast<double>(row.requests_failed), "count");
        }

        const auto chaos_on = core::run_chaos(chaos_config(true));
        const auto chaos_off = core::run_chaos(chaos_config(false));
        print_chaos_recovery(os, chaos_on, chaos_off);
        const auto* base_on = chaos_row(chaos_on, "baseline");
        const auto* kill_on = chaos_row(chaos_on, "midtransfer-kill");
        const auto* kill_off = chaos_row(chaos_off, "midtransfer-kill");
        if (base_on != nullptr && kill_on != nullptr && kill_off != nullptr) {
          // Recovery time: the p95 PLT penalty the kill scenario pays over
          // the fault-free baseline cell. Only defined with the engine on —
          // without it every kill-scenario visit fails outright (no PLT
          // tail to measure), which the failed-visit counters record.
          report.add("chaos_midkill_recovery_p95", kill_on->plt_p95_ms - base_on->plt_p95_ms,
                     "ms");
          report.add("chaos_midkill_resumed_bytes",
                     static_cast<double>(kill_on->resumed_bytes), "count");
          report.add("chaos_midkill_failed_visits",
                     static_cast<double>(kill_on->failed_visits), "count");
          report.add("chaos_midkill_failed_visits_noengine",
                     static_cast<double>(kill_off->failed_visits), "count");
        }
        // Time-resolved fault->recovery numbers (docs/OBSERVABILITY.md):
        // per-scenario MTTR against the scripted fault window, how many
        // timeline windows carried a degraded signal, and how fast the
        // breaker reacted. MTTR is finite for every cell by construction
        // (a cell with no degraded window reports 0), so CI can assert on
        // these unconditionally.
        for (const auto& row : chaos_on.rows) {
          std::string tag = row.scenario;
          for (char& c : tag) {
            if (c == '-') c = '_';
          }
          report.add("chaos_mttr_" + tag, row.mttr_ms, "ms");
          report.add("chaos_degraded_windows_" + tag,
                     static_cast<double>(row.degraded_windows), "count");
          if (row.time_to_breaker_open_ms >= 0.0) {
            report.add("chaos_breaker_open_" + tag, row.time_to_breaker_open_ms, "ms");
          }
        }
        std::uint64_t hedges_launched = 0;
        std::uint64_t hedges_won = 0;
        for (const auto& row : chaos_on.rows) {
          hedges_launched += row.hedges_launched;
          hedges_won += row.hedges_won;
        }
        report.add("chaos_hedge_win_rate",
                   hedges_launched == 0 ? 0.0
                                        : static_cast<double>(hedges_won) /
                                              static_cast<double>(hedges_launched),
                   "ratio");
      });
}
