// Shared scaffolding for the per-table/per-figure bench binaries.
//
// Every binary reproduces one table or figure of the paper at full scale
// (325 sites, 3 vantage points) and prints the measured rows next to the
// paper-reported values. Scale can be adjusted via environment variables:
//   H3CDN_BENCH_SITES   (default 325)
//   H3CDN_BENCH_PROBES  (default 1 probe per vantage; the paper used 3)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiments.h"
#include "core/report.h"
#include "core/study.h"

namespace h3cdn::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Full-scale study configuration mirroring the paper's §III setup.
inline core::StudyConfig standard_config() {
  core::StudyConfig cfg;
  cfg.workload.site_count = 325;
  cfg.max_sites = env_size("H3CDN_BENCH_SITES", 325);
  cfg.probes_per_vantage = static_cast<int>(env_size("H3CDN_BENCH_PROBES", 1));
  return cfg;
}

inline core::StudyConfig consecutive_config() {
  core::StudyConfig cfg = standard_config();
  cfg.consecutive = true;
  return cfg;
}

/// Tiny study used by the google-benchmark timing loops inside each binary.
inline core::StudyConfig micro_config(std::size_t sites = 8) {
  core::StudyConfig cfg;
  cfg.workload.site_count = sites;
  cfg.max_sites = sites;
  cfg.probes_per_vantage = 1;
  cfg.vantages = {browser::default_vantage_points()[0]};
  return cfg;
}

/// Runs the registered google-benchmark timing loops (unless --notiming),
/// then invokes `reproduce` to print the paper table at full scale.
template <typename Fn>
int run_bench_main(int argc, char** argv, const char* title, Fn&& reproduce) {
  bool timing = true;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--notiming") timing = false;
  }
  if (timing) {
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
  }
  std::cout << "\n=== Reproduction: " << title << " ===\n";
  reproduce(std::cout);
  return 0;
}

}  // namespace h3cdn::bench
