// Shared scaffolding for the per-table/per-figure bench binaries.
//
// Every binary reproduces one table or figure of the paper at full scale
// (325 sites, 3 vantage points) and prints the measured rows next to the
// paper-reported values. Scale can be adjusted via environment variables:
//   H3CDN_BENCH_SITES   (default 325)
//   H3CDN_BENCH_PROBES  (default 1 probe per vantage; the paper used 3)
//
// Besides the human-readable table, every binary emits a machine-readable
// BENCH_<name>.json trajectory record (schema v1: named metrics with units,
// a config hash, the git sha) into H3CDN_BENCH_OUT (default: the current
// directory) so CI can track headline numbers across commits. See
// docs/BENCH.md for the schema.
#pragma once

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/experiments.h"
#include "core/report.h"
#include "core/study.h"
#include "util/json.h"

namespace h3cdn::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Full-scale study configuration mirroring the paper's §III setup.
inline core::StudyConfig standard_config() {
  core::StudyConfig cfg;
  cfg.workload.site_count = 325;
  cfg.max_sites = env_size("H3CDN_BENCH_SITES", 325);
  cfg.probes_per_vantage = static_cast<int>(env_size("H3CDN_BENCH_PROBES", 1));
  return cfg;
}

inline core::StudyConfig consecutive_config() {
  core::StudyConfig cfg = standard_config();
  cfg.consecutive = true;
  return cfg;
}

/// Tiny study used by the google-benchmark timing loops inside each binary.
inline core::StudyConfig micro_config(std::size_t sites = 8) {
  core::StudyConfig cfg;
  cfg.workload.site_count = sites;
  cfg.max_sites = sites;
  cfg.probes_per_vantage = 1;
  cfg.vantages = {browser::default_vantage_points()[0]};
  return cfg;
}

// ---------------------------------------------------------------------------
// Machine-readable bench trajectory (BENCH_<name>.json, schema v1)
// ---------------------------------------------------------------------------

/// One named measurement of a bench run.
struct BenchMetric {
  std::string metric;
  double value = 0.0;
  std::string unit;  // "ms", "count", "ratio", "ms_per_resource", ...
};

/// Collected by the reproduce step; serialized to BENCH_<name>.json.
struct BenchReport {
  std::string name;   // binary basename minus the "bench_" prefix
  std::string title;  // human title printed above the table
  std::vector<BenchMetric> metrics;

  void add(std::string metric, double value, std::string unit) {
    metrics.push_back({std::move(metric), value, std::move(unit)});
  }
};

/// FNV-1a over the scale knobs, so trajectory points taken at different
/// configurations never get compared against each other by accident.
inline std::string config_hash(std::size_t sites, std::size_t probes) {
  const std::string canon =
      "sites=" + std::to_string(sites) + ";probes=" + std::to_string(probes);
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : canon) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

/// The commit under test: runtime env override (CI sets GITHUB_SHA; local
/// runs can set H3CDN_GIT_SHA) falling back to the sha baked in at configure
/// time by bench/CMakeLists.txt.
inline std::string git_sha() {
  for (const char* var : {"H3CDN_GIT_SHA", "GITHUB_SHA"}) {
    if (const char* v = std::getenv(var); v != nullptr && *v != '\0') return v;
  }
#ifdef H3CDN_BUILD_GIT_SHA
  return H3CDN_BUILD_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Peak resident set size of this process in MiB, from getrusage. Linux
/// reports ru_maxrss in KiB, macOS in bytes; 0.0 when the call fails.
inline double peak_rss_mb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

inline std::string bench_name_from_argv0(const char* argv0) {
  std::string name = argv0 == nullptr ? "" : argv0;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name.empty() ? "unknown" : name;
}

/// Writes BENCH_<name>.json into H3CDN_BENCH_OUT (default "."). Returns the
/// path, or "" on I/O failure (reported to stderr; never fatal — the human
/// output already happened).
inline std::string write_bench_report(const BenchReport& report) {
  const char* out_dir = std::getenv("H3CDN_BENCH_OUT");
  const std::string dir = (out_dir != nullptr && *out_dir != '\0') ? out_dir : ".";
  const std::string path = dir + "/BENCH_" + report.name + ".json";

  util::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", 1);
  w.kv("bench", report.name);
  w.kv("title", report.title);
  w.kv("git_sha", git_sha());
  w.key("config").begin_object();
  const std::size_t sites = env_size("H3CDN_BENCH_SITES", 325);
  const std::size_t probes = env_size("H3CDN_BENCH_PROBES", 1);
  w.kv("sites", static_cast<std::uint64_t>(sites));
  w.kv("probes", static_cast<std::uint64_t>(probes));
  w.kv("hash", config_hash(sites, probes));
  w.end_object();
  w.key("metrics").begin_array();
  for (const auto& m : report.metrics) {
    w.begin_object();
    w.kv("metric", m.metric);
    w.kv("value", m.value);
    w.kv("unit", m.unit);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::cerr << "bench report: cannot open " << path << " for writing\n";
    return "";
  }
  file << w.str() << "\n";
  return path;
}

/// Runs the registered google-benchmark timing loops (unless --notiming),
/// then invokes `reproduce` to print the paper table at full scale and emits
/// the BENCH_<name>.json trajectory record. `reproduce` takes either
/// (std::ostream&) or (std::ostream&, BenchReport&) — the two-argument form
/// lets a binary record its headline numbers as named metrics; either way
/// the reproduce wall time is always recorded.
template <typename Fn>
int run_bench_main(int argc, char** argv, const char* title, Fn&& reproduce) {
  const auto process_start = std::chrono::steady_clock::now();
  bool timing = true;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--notiming") timing = false;
  }
  if (timing) {
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
  }
  BenchReport report;
  report.name = bench_name_from_argv0(argc > 0 ? argv[0] : nullptr);
  report.title = title;
  std::cout << "\n=== Reproduction: " << title << " ===\n";
  const auto start = std::chrono::steady_clock::now();
  if constexpr (std::is_invocable_v<Fn&, std::ostream&, BenchReport&>) {
    reproduce(std::cout, report);
  } else {
    reproduce(std::cout);
  }
  const auto stop = std::chrono::steady_clock::now();
  report.add("reproduce_wall_ms", std::chrono::duration<double, std::milli>(stop - start).count(),
             "ms");
  // Whole-process resource footprint: total wall time (timing loops included)
  // and the peak RSS high-water mark, so trajectory tracking catches runtime
  // and memory regressions alongside the headline numbers.
  report.add("wall_time_ms",
             std::chrono::duration<double, std::milli>(stop - process_start).count(), "ms");
  report.add("peak_rss_mb", peak_rss_mb(), "mb");
  const std::string path = write_bench_report(report);
  if (!path.empty()) std::cerr << "wrote " << path << "\n";
  return 0;
}

}  // namespace h3cdn::bench
