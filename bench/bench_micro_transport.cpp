// Micro-benchmarks of the simulator substrate itself: event-loop throughput,
// scheduler core head-to-head, link transmission, transport transfers, and a
// full page visit. These bound how fast full-scale studies can run and catch
// performance regressions.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iomanip>

#include "bench_common.h"
#include "browser/browser.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "transport/connection.h"
#include "web/workload.h"

namespace {

using namespace h3cdn;

void BM_EventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10000; ++i) sim.schedule_at(usec(i), [] {});
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoop)->Unit(benchmark::kMillisecond);

void BM_LinkTransmit(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 1e9;
    net::Link link(sim, cfg, util::Rng(1));
    int delivered = 0;
    for (int i = 0; i < 5000; ++i) link.transmit(1400, [&] { ++delivered; });
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_LinkTransmit)->Unit(benchmark::kMillisecond);

void transfer_benchmark(benchmark::State& state, tls::TransportKind kind, double loss) {
  std::size_t bytes = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    net::PathConfig pc;
    pc.rtt = msec(20);
    pc.bandwidth_bps = 200e6;
    pc.loss_rate = loss;
    net::NetPath path(sim, pc, util::Rng(7));
    auto conn = transport::Connection::create(sim, path, kind, tls::TlsVersion::Tls13,
                                              tls::HandshakeMode::Fresh, util::Rng(9), {});
    conn->connect([](TimePoint) {});
    int done = 0;
    for (int s = 0; s < 16; ++s) {
      transport::FetchCallbacks cbs;
      cbs.on_complete = [&](TimePoint) { ++done; };
      conn->fetch(500, 20'000, msec(3), std::move(cbs));
    }
    sim.run();
    benchmark::DoNotOptimize(done);
    bytes += 16 * 20'000;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}

void BM_TcpTransfer(benchmark::State& state) {
  transfer_benchmark(state, tls::TransportKind::Tcp, 0.0);
}
void BM_QuicTransfer(benchmark::State& state) {
  transfer_benchmark(state, tls::TransportKind::Quic, 0.0);
}
void BM_TcpTransferLossy(benchmark::State& state) {
  transfer_benchmark(state, tls::TransportKind::Tcp, 0.01);
}
void BM_QuicTransferLossy(benchmark::State& state) {
  transfer_benchmark(state, tls::TransportKind::Quic, 0.01);
}
BENCHMARK(BM_TcpTransfer)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuicTransfer)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcpTransferLossy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuicTransferLossy)->Unit(benchmark::kMillisecond);

void BM_FullPageVisit(benchmark::State& state) {
  web::WorkloadConfig cfg;
  cfg.site_count = 4;
  const auto workload = web::generate_workload(cfg);
  std::size_t entries = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    browser::Environment env(sim, workload.universe, browser::VantageConfig{}, util::Rng(3));
    env.warm_page(workload.sites[0].page);
    browser::BrowserConfig bc;
    browser::Browser browser(sim, env, nullptr, bc, util::Rng(5));
    auto result = browser.visit_and_run(workload.sites[0].page);
    entries += result.har.entries.size();
    benchmark::DoNotOptimize(result.har.page_load_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(entries));
}
BENCHMARK(BM_FullPageVisit)->Unit(benchmark::kMillisecond);

// Scheduler core head-to-head: 1M events scheduled with pseudo-random times,
// a quarter cancelled, the rest drained — the schedule/cancel/pop mix a fleet
// run produces. Captures are 24 bytes (past std::function's typical inline
// buffer, within SmallFn's 48), so the heap baseline pays the allocation the
// old scheduler paid.
struct SchedulerRun {
  double wall_s = 0.0;
  std::uint64_t events = 0;     // schedule ops issued
  std::uint64_t fired = 0;
  double events_per_sec = 0.0;
};

SchedulerRun scheduler_churn(sim::Simulator::Backend backend) {
  constexpr std::uint64_t kEvents = 1'000'000;
  constexpr std::uint64_t kHorizonUs = 10'000'000;  // 10 s of virtual time
  SchedulerRun out;
  sim::Simulator sim(backend);
  std::vector<sim::EventId> ids;
  ids.reserve(kEvents);
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const TimePoint at = usec((lcg >> 16) % kHorizonUs);
    ids.push_back(sim.schedule_at(at, [&sink, i, salt = lcg] { sink += i ^ salt; }));
  }
  for (std::uint64_t i = 0; i < kEvents; i += 4) sim.cancel(ids[i]);  // 25% churn
  out.fired = sim.run();
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  benchmark::DoNotOptimize(sink);
  out.events = kEvents;
  out.events_per_sec = out.wall_s > 0.0 ? static_cast<double>(kEvents) / out.wall_s : 0.0;
  return out;
}

void reproduce(std::ostream& os, bench::BenchReport& report) {
  const SchedulerRun heap = scheduler_churn(sim::Simulator::Backend::Heap);
  const SchedulerRun cal = scheduler_churn(sim::Simulator::Backend::Calendar);
  const double speedup =
      heap.events_per_sec > 0.0 ? cal.events_per_sec / heap.events_per_sec : 0.0;

  os << "scheduler core head-to-head (1M events, 25% cancelled, drained):\n";
  os << std::left << std::setw(10) << "core" << std::right << std::setw(12) << "wall ms"
     << std::setw(12) << "fired" << std::setw(16) << "events/sec" << "\n" << std::fixed;
  os << std::left << std::setw(10) << "heap" << std::right << std::setw(12)
     << std::setprecision(1) << heap.wall_s * 1000.0 << std::setw(12) << heap.fired
     << std::setw(16) << std::setprecision(0) << heap.events_per_sec << "\n";
  os << std::left << std::setw(10) << "calendar" << std::right << std::setw(12)
     << std::setprecision(1) << cal.wall_s * 1000.0 << std::setw(12) << cal.fired
     << std::setw(16) << std::setprecision(0) << cal.events_per_sec << "\n";
  os << "calendar speedup: " << std::setprecision(2) << speedup << "x\n";

  report.add("sched_heap_events_per_sec", heap.events_per_sec, "per_sec");
  report.add("sched_calendar_events_per_sec", cal.events_per_sec, "per_sec");
  report.add("sched_calendar_speedup", speedup, "ratio");
}

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Simulator substrate micro-benchmarks + scheduler head-to-head",
      reproduce);
}
