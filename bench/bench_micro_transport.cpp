// Micro-benchmarks of the simulator substrate itself: event-loop throughput,
// link transmission, transport transfers, and a full page visit. These bound
// how fast full-scale studies can run and catch performance regressions.
#include <benchmark/benchmark.h>

#include "browser/browser.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "transport/connection.h"
#include "web/workload.h"

namespace {

using namespace h3cdn;

void BM_EventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10000; ++i) sim.schedule_at(usec(i), [] {});
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoop)->Unit(benchmark::kMillisecond);

void BM_LinkTransmit(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 1e9;
    net::Link link(sim, cfg, util::Rng(1));
    int delivered = 0;
    for (int i = 0; i < 5000; ++i) link.transmit(1400, [&] { ++delivered; });
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_LinkTransmit)->Unit(benchmark::kMillisecond);

void transfer_benchmark(benchmark::State& state, tls::TransportKind kind, double loss) {
  std::size_t bytes = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    net::PathConfig pc;
    pc.rtt = msec(20);
    pc.bandwidth_bps = 200e6;
    pc.loss_rate = loss;
    net::NetPath path(sim, pc, util::Rng(7));
    auto conn = transport::Connection::create(sim, path, kind, tls::TlsVersion::Tls13,
                                              tls::HandshakeMode::Fresh, util::Rng(9), {});
    conn->connect([](TimePoint) {});
    int done = 0;
    for (int s = 0; s < 16; ++s) {
      transport::FetchCallbacks cbs;
      cbs.on_complete = [&](TimePoint) { ++done; };
      conn->fetch(500, 20'000, msec(3), std::move(cbs));
    }
    sim.run();
    benchmark::DoNotOptimize(done);
    bytes += 16 * 20'000;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}

void BM_TcpTransfer(benchmark::State& state) {
  transfer_benchmark(state, tls::TransportKind::Tcp, 0.0);
}
void BM_QuicTransfer(benchmark::State& state) {
  transfer_benchmark(state, tls::TransportKind::Quic, 0.0);
}
void BM_TcpTransferLossy(benchmark::State& state) {
  transfer_benchmark(state, tls::TransportKind::Tcp, 0.01);
}
void BM_QuicTransferLossy(benchmark::State& state) {
  transfer_benchmark(state, tls::TransportKind::Quic, 0.01);
}
BENCHMARK(BM_TcpTransfer)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuicTransfer)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcpTransferLossy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuicTransferLossy)->Unit(benchmark::kMillisecond);

void BM_FullPageVisit(benchmark::State& state) {
  web::WorkloadConfig cfg;
  cfg.site_count = 4;
  const auto workload = web::generate_workload(cfg);
  std::size_t entries = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    browser::Environment env(sim, workload.universe, browser::VantageConfig{}, util::Rng(3));
    env.warm_page(workload.sites[0].page);
    browser::BrowserConfig bc;
    browser::Browser browser(sim, env, nullptr, bc, util::Rng(5));
    auto result = browser.visit_and_run(workload.sites[0].page);
    entries += result.har.entries.size();
    benchmark::DoNotOptimize(result.har.page_load_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(entries));
}
BENCHMARK(BM_FullPageVisit)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
