// Table I — release year of H3 support in various CDNs and their
// corresponding performance reports (static registry data), plus timing of
// the LocEdge-substitute classifier that attributes requests to providers.
#include "bench_common.h"

#include "locedge/classifier.h"
#include "web/headers.h"

namespace {

using namespace h3cdn;

void BM_ClassifyCdnHeaders(benchmark::State& state) {
  util::Rng rng(1);
  locedge::Classifier classifier;
  std::vector<std::pair<std::string, std::vector<web::Header>>> samples;
  for (const auto& t : cdn::ProviderRegistry::all()) {
    for (int i = 0; i < 8; ++i) {
      samples.emplace_back("res.host" + std::to_string(i) + ".example",
                           web::make_cdn_headers(t.id, rng));
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [domain, headers] = samples[i++ % samples.size()];
    benchmark::DoNotOptimize(classifier.classify(domain, headers));
  }
}
BENCHMARK(BM_ClassifyCdnHeaders);

void BM_ClassifyByDomainOnly(benchmark::State& state) {
  locedge::Classifier classifier;
  const std::vector<web::Header> empty;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify("fonts.gstatic.com", empty));
    benchmark::DoNotOptimize(classifier.classify("www.first-party.example", empty));
  }
}
BENCHMARK(BM_ClassifyByDomainOnly);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(argc, argv, "Table I (H3 adoption timeline)",
                                      [](std::ostream& os) {
                                        h3cdn::core::print_table1(os, h3cdn::core::compute_table1());
                                      });
}
