// bench_load — fleet-scale load sweep (docs/LOAD.md): offered page-visit
// load vs H2/H3 PLT/TTFB percentiles, refusal rates and edge queue depth.
// Not a paper table: this is the capacity extension the paper's single-probe
// methodology cannot see (its probes always measured an idle edge).
#include "bench_common.h"
#include "load/study.h"

namespace {

using namespace h3cdn;

load::LoadStudyConfig sweep_config() {
  load::LoadStudyConfig cfg;
  // Keep the full-universe workload (config hash comparability) but visit a
  // bounded site rotation; scale via the usual env knob.
  cfg.sites = std::min<std::size_t>(bench::env_size("H3CDN_BENCH_SITES", 325), 8);
  cfg.offered_rates = {2.0, 8.0, 32.0};
  cfg.window = sec(8);
  cfg.jobs = 0;  // deterministic at any parallelism
  return cfg;
}

void bm_load_cell(benchmark::State& state) {
  load::LoadStudyConfig cfg = sweep_config();
  cfg.offered_rates = {4.0};
  cfg.window = sec(2);
  cfg.jobs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(load::run_load_study(cfg));
  }
}
BENCHMARK(bm_load_cell)->Unit(benchmark::kMillisecond);

void reproduce(std::ostream& os, bench::BenchReport& report) {
  const load::LoadStudyConfig cfg = sweep_config();
  const auto start = std::chrono::steady_clock::now();
  const load::LoadResult result = load::run_load_study(cfg);
  const double sweep_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  load::print_load_result(os, result);

  // Sweep throughput: how many virtual clients (completed visits) and raw
  // simulator events the whole sweep chews through per wall-clock second.
  std::uint64_t total_visits = 0;
  std::uint64_t total_events = 0;
  for (const load::LoadCellRow& row : result.rows) {
    total_visits += row.visits;
    total_events += row.sim_events;
  }
  if (sweep_s > 0.0) {
    report.add("clients_per_second", static_cast<double>(total_visits) / sweep_s,
               "per_sec");
    report.add("events_per_second", static_cast<double>(total_events) / sweep_s,
               "per_sec");
  }

  for (const load::LoadCellRow& row : result.rows) {
    const std::string prefix =
        "r" + std::to_string(static_cast<int>(row.offered_rate)) + "." +
        (row.h3 ? "h3" : "h2") + ".";
    report.add(prefix + "plt_p50_ms", row.plt_p50_ms, "ms");
    report.add(prefix + "plt_p95_ms", row.plt_p95_ms, "ms");
    report.add(prefix + "ttfb_p95_ms", row.ttfb_p95_ms, "ms");
    // count:0-only convention: the p95 is only meaningful (and only emitted)
    // when at least one visit produced a QoE sample.
    if (row.qoe_samples > 0) {
      report.add(prefix + "qoe_fcp_p95_ms", row.qoe_fcp_p95_ms, "ms");
    }
    report.add(prefix + "refusal_rate", row.refusal_rate, "ratio");
    report.add(prefix + "mean_queue_depth", row.mean_queue_depth, "count");
    report.add(prefix + "requests_failed", static_cast<double>(row.requests_failed),
               "count");
  }
  // Headline: how much the p95 degrades when offered load crosses capacity.
  const auto& rows = result.rows;
  if (rows.size() >= 2) {
    const auto& low_h3 = rows[1];
    const auto& high_h3 = rows[rows.size() - 1];
    if (low_h3.plt_p95_ms > 0) {
      report.add("h3_p95_degradation", high_h3.plt_p95_ms / low_h3.plt_p95_ms, "ratio");
    }
    const auto& low_h2 = rows[0];
    const auto& high_h2 = rows[rows.size() - 2];
    if (low_h2.plt_p95_ms > 0) {
      report.add("h2_p95_degradation", high_h2.plt_p95_ms / low_h2.plt_p95_ms, "ratio");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Load sweep: offered load vs PLT/TTFB, refusals, queue depth",
      reproduce);
}
