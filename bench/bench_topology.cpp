// Multi-hop topology sweep (docs/TOPOLOGY.md) — beyond the paper's direct
// client->edge model: chained delivery paths (client -> forward proxy ->
// mid-tier cache -> edge) with an independent protocol choice per hop.
//
// Headline: the p95 PLT premium a proxied path pays over the direct baseline
// with the same client-facing protocol, per plan and loss rate. The relay
// terminates the client connection, so the client-side handshake/loss
// recovery is isolated from the upstream hop — the per-hop dissection (which
// re-aggregates exactly to the end-to-end phases; pinned as a metric here and
// as an invariant in the harness) shows where the premium lands.
#include <cstdint>
#include <iomanip>
#include <string>

#include "bench_common.h"
#include "core/topology_study.h"
#include "topology/path_plan.h"

namespace {

using namespace h3cdn;

core::TopologyConfig bench_config(std::size_t sites) {
  core::TopologyConfig cfg;
  cfg.sites = sites;
  cfg.workload.site_count = std::max<std::size_t>(sites, 2);
  return cfg;
}

void BM_TopologyCell(benchmark::State& state) {
  auto cfg = bench_config(2);
  cfg.plans = {state.range(0) != 0 ? "h3-h3" : "h2-h3"};
  cfg.include_direct = false;
  cfg.loss_rates = {0.0};
  cfg.jobs = 1;
  for (auto _ : state) {
    auto result = core::run_topology(cfg);
    benchmark::DoNotOptimize(result.rows.size());
  }
}
BENCHMARK(BM_TopologyCell)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

std::string loss_tag(double rate) {
  return "loss" + std::to_string(static_cast<int>(rate * 1000.0 + 0.5)) + "permille";
}

std::string plan_tag(const std::string& plan) {
  std::string tag = plan;
  for (char& c : tag) {
    if (c == '-') c = '_';
  }
  return tag;
}

/// The direct baseline a chained plan compares against: the single-hop plan
/// with the same client-facing protocol ("h3-h2" -> "h3").
std::string direct_peer(const std::string& plan) {
  const auto parsed = topology::PathPlan::parse(plan);
  return (parsed.has_value() && parsed->hop_h3(0)) ? "h3" : "h2";
}

const core::TopologyHopRow* e2e_row(const core::TopologyResult& result,
                                    const std::string& plan, double loss) {
  for (const auto& row : result.rows) {
    if (row.plan == plan && row.loss_rate == loss && row.hop == "e2e") return &row;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Multi-hop topology (proxied vs direct PLT, per-hop attribution)",
      [](std::ostream& os, h3cdn::bench::BenchReport& report) {
        const std::size_t sites = h3cdn::bench::env_size("H3CDN_BENCH_SITES", 16);
        const core::TopologyConfig cfg = bench_config(sites);
        const core::TopologyResult result = core::run_topology(cfg);
        core::print_topology_result(os, result);

        os << "\n--- Proxied vs direct: p95 PLT premium per plan ---\n";
        os << std::left << std::setw(10) << "plan" << std::right << std::setw(8) << "loss%"
           << std::setw(12) << "p95 chain" << std::setw(12) << "p95 direct" << std::setw(12)
           << "delta ms" << "\n";
        os << std::fixed << std::setprecision(1);
        double worst_residual_us = 0.0;
        for (const std::string& plan : cfg.plans) {
          for (const double loss : cfg.loss_rates) {
            const auto* chained = e2e_row(result, plan, loss);
            const auto* direct = e2e_row(result, direct_peer(plan), loss);
            if (chained == nullptr || direct == nullptr) continue;
            const double delta = chained->p95_plt_ms - direct->p95_plt_ms;
            os << std::left << std::setw(10) << plan << std::right << std::setw(8)
               << loss * 100.0 << std::setw(12) << chained->p95_plt_ms << std::setw(12)
               << direct->p95_plt_ms << std::setw(12) << delta << "\n";
            const std::string tag = plan_tag(plan) + "_" + loss_tag(loss);
            report.add("p95_plt_delta_" + tag, delta, "ms");
            report.add("p95_plt_" + tag, chained->p95_plt_ms, "ms");
            worst_residual_us = std::max(worst_residual_us, chained->reagg_residual_us);
          }
        }
        // Per-hop bookkeeping quality: the worst re-aggregation residual over
        // every chained cell (invariant: <= 1 us) and the whole-sweep pass
        // bit, so a silent attribution drift shows up in the trajectory.
        report.add("worst_reagg_residual_us", worst_residual_us, "us");
        report.add("all_invariants_passed", result.all_passed() ? 1.0 : 0.0, "ratio");
        // The mid-tier starts cold by design; its measured hit ratio on the
        // zero-loss h3-h3 cell is a workload-shape fingerprint worth pinning.
        if (const auto* row = e2e_row(result, "h3-h3", 0.0); row != nullptr) {
          report.add("tier_hit_ratio_h3_h3_loss0", row->tier_hit_ratio, "ratio");
          report.add("relayed_requests_h3_h3_loss0",
                     static_cast<double>(row->relayed_requests), "count");
        }
      });
}
