// Table III — k-means (k = 2) case study on the per-page binary vectors of
// shared CDN domains (paper: C_H with 4.16 providers / 101.64 resumed
// connections / 109.3 ms reduction versus C_L with 2.58 / 73.74 / 54.35 ms).
#include "bench_common.h"

#include "analysis/kmeans.h"

namespace {

using namespace h3cdn;

void BM_KMeans58Dim(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> v(58, 0.0);
    for (auto idx : rng.sample_indices(58, 8 + static_cast<std::size_t>(i % 9))) v[idx] = 1.0;
    points.push_back(std::move(v));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::kmeans(points, {.k = 2}, util::Rng(7)).inertia);
  }
}
BENCHMARK(BM_KMeans58Dim)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Table III (high/low sharing-degree groups)", [](std::ostream& os) {
        auto cfg = h3cdn::bench::consecutive_config();
        cfg.probes_per_vantage = static_cast<int>(h3cdn::bench::env_size("H3CDN_BENCH_PROBES", 3));
        const auto study = core::MeasurementStudy(cfg).run();
        core::print_table3(os, core::compute_table3(study));
      });
}
