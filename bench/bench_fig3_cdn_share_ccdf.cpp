// Fig. 3 — CCDF of the percentage of CDN resources on each webpage
// (paper: 75% of webpages exceed 50% CDN resources).
#include "bench_common.h"

#include "web/workload.h"

namespace {

using namespace h3cdn;

void BM_GenerateWorkload325(benchmark::State& state) {
  for (auto _ : state) {
    auto workload = web::generate_workload();
    benchmark::DoNotOptimize(workload.total_requests());
  }
}
BENCHMARK(BM_GenerateWorkload325)->Unit(benchmark::kMillisecond);

void BM_ComputeFig3(benchmark::State& state) {
  const auto study = core::MeasurementStudy(bench::micro_config(16)).run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_fig3(study).fraction_above_50pct);
  }
}
BENCHMARK(BM_ComputeFig3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Fig. 3 (CCDF of per-page CDN resource share)", [](std::ostream& os) {
        const auto study = core::MeasurementStudy(bench::standard_config()).run();
        core::print_fig3(os, core::compute_fig3(study));
      });
}
