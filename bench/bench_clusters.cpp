// bench_clusters — workload-archetype discovery (docs/OBSERVABILITY.md
// "Archetypes & QoE"): clusters the full study's per-page attribution
// vectors, reports clustering throughput and the archetype census, and
// records the global-vs-conditioned selector A/B headline so CI tracks
// whether archetype-conditioned protocol selection keeps paying for itself.
#include "bench_common.h"
#include "core/clusters.h"

namespace {

using namespace h3cdn;

void bm_compute_clusters(benchmark::State& state) {
  const auto study = core::MeasurementStudy(bench::micro_config()).run();
  core::ClustersConfig cfg;
  cfg.run_ab = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_clusters(study, cfg));
  }
}
BENCHMARK(bm_compute_clusters)->Unit(benchmark::kMillisecond);

void reproduce(std::ostream& os, bench::BenchReport& report) {
  core::StudyConfig study_cfg = bench::standard_config();
  study_cfg.jobs = 0;
  const auto study = core::MeasurementStudy(study_cfg).run();

  const auto start = std::chrono::steady_clock::now();
  const core::ClustersResult result = core::compute_clusters(study);
  const double cluster_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  core::print_clusters(os, result);

  report.add("pages", static_cast<double>(result.pages.size()), "count");
  if (cluster_s > 0.0) {
    report.add("pages_per_second", static_cast<double>(result.pages.size()) / cluster_s,
               "per_sec");
  }
  report.add("archetype_count", static_cast<double>(result.cluster_count), "count");
  report.add("eps_used", result.eps_used, "share_distance");
  std::size_t noise_pages = 0;
  for (const auto& a : result.archetypes) {
    if (a.id == -1) noise_pages = a.pages;
  }
  report.add("noise_pages", static_cast<double>(noise_pages), "count");

  // The A/B headline: a conditioned selector that loses to the global one
  // means the archetype split is not carrying signal — CI asserts delta >= 0.
  report.add("ab_global_mean_plt_ms", result.ab.global_mean_plt_ms, "ms");
  report.add("ab_conditioned_mean_plt_ms", result.ab.conditioned_mean_plt_ms, "ms");
  report.add("ab_mean_plt_delta_ms", result.ab.mean_delta_ms(), "ms");
  report.add("ab_oracle_mean_plt_ms", result.ab.oracle_mean_plt_ms, "ms");
}

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv,
      "Workload archetypes: attribution-vector clustering and the "
      "global-vs-conditioned selector A/B",
      reproduce);
}
