// Parallel scaling of the shard-parallel study engine (docs/PARALLELISM.md).
//
// Runs the same study — observability ON, so the merge path is included — at
// --jobs 1/2/4/8 and reports wall-clock speedup over the single-worker run.
// The study is embarrassingly parallel (one shard per (vantage, probe, mode)
// run, merge cost is tiny), so on a machine with >= 4 cores the 4-thread
// speedup should be >= 3x provided there are enough shards to go around;
// the default config below yields 12 shards (3 vantages x 2 probes x 2
// modes). On fewer cores the table degenerates gracefully (speedup ~1x) —
// the determinism check still runs: every job count must produce the same
// summary JSON and merged metrics byte for byte.
#include <chrono>
#include <iomanip>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/export.h"
#include "core/observability.h"
#include "obs/metrics.h"

namespace {

using namespace h3cdn;

core::StudyConfig scaling_config(std::size_t sites, int probes, int jobs) {
  core::StudyConfig cfg;
  cfg.workload.site_count = sites;
  cfg.max_sites = sites;
  cfg.probes_per_vantage = probes;  // 3 vantages x probes x 2 modes shards
  cfg.consecutive = true;
  cfg.jobs = jobs;
  return cfg;
}

void BM_StudyAtJobs(benchmark::State& state) {
  const auto cfg = scaling_config(/*sites=*/6, /*probes=*/2,
                                  /*jobs=*/static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::RunObservability obs;
    core::StudyConfig c = cfg;
    c.observability = &obs;
    auto result = core::MeasurementStudy(c).run();
    benchmark::DoNotOptimize(result.visits.size());
    benchmark::DoNotOptimize(obs.metrics().series_count());
  }
}
BENCHMARK(BM_StudyAtJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

struct ScalingRow {
  int jobs = 0;
  double wall_ms = 0.0;
  std::uint64_t sim_events = 0;
  std::string summary;
  std::string metrics;
};

void print_scaling(std::ostream& os, h3cdn::bench::BenchReport& report) {
  const std::size_t sites = h3cdn::bench::env_size("H3CDN_BENCH_SITES", 48);
  const int probes = static_cast<int>(h3cdn::bench::env_size("H3CDN_BENCH_PROBES", 2));
  const unsigned cores = std::thread::hardware_concurrency();
  os << "sites=" << sites << " probes=" << probes << " shards=" << 3 * probes * 2
     << " host-cores=" << cores << " (observability on)\n\n";

  std::vector<ScalingRow> rows;
  for (int jobs : {1, 2, 4, 8}) {
    ScalingRow row;
    row.jobs = jobs;
    core::RunObservability obs;
    core::StudyConfig cfg = scaling_config(sites, probes, jobs);
    cfg.observability = &obs;
    const auto start = std::chrono::steady_clock::now();
    const auto result = core::MeasurementStudy(cfg).run();
    const auto stop = std::chrono::steady_clock::now();
    row.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
    const auto& counters = obs.metrics().counters();
    if (const auto it = counters.find("sim.events_executed"); it != counters.end()) {
      row.sim_events = it->second->value();
    }
    row.summary = core::summary_to_json(result);
    row.metrics = obs::metrics_to_json(obs.metrics());
    rows.push_back(std::move(row));
  }

  os << std::left << std::setw(8) << "jobs" << std::right << std::setw(12) << "wall ms"
     << std::setw(10) << "speedup" << std::setw(14) << "identical?" << "\n";
  os << std::fixed << std::setprecision(1);
  bool all_identical = true;
  for (const auto& row : rows) {
    const bool identical =
        row.summary == rows.front().summary && row.metrics == rows.front().metrics;
    all_identical = all_identical && identical;
    os << std::left << std::setw(8) << row.jobs << std::right << std::setw(12) << row.wall_ms
       << std::setw(9) << std::setprecision(2) << rows.front().wall_ms / row.wall_ms << "x"
       << std::setw(13) << (identical ? "yes" : "NO") << "\n"
       << std::setprecision(1);
  }
  os << "\ndeterminism: " << (all_identical ? "every job count produced byte-identical output"
                                            : "OUTPUT DIVERGED ACROSS JOB COUNTS")
     << "\n";

  for (const auto& row : rows) {
    const std::string tag = "jobs" + std::to_string(row.jobs);
    report.add("wall_" + tag, row.wall_ms, "ms");
    report.add("speedup_" + tag, rows.front().wall_ms / row.wall_ms, "ratio");
    // Simulator throughput at this parallelism: merged event count over wall
    // time (the event count itself is jobs-invariant — determinism above).
    if (row.wall_ms > 0.0) {
      report.add("events_per_second_" + tag,
                 static_cast<double>(row.sim_events) / (row.wall_ms / 1000.0),
                 "per_sec");
    }
  }
  report.add("deterministic", all_identical ? 1.0 : 0.0, "bool");
}

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Parallel scaling (shard engine, jobs 1/2/4/8)", print_scaling);
}
