// Fig. 6 — (a) PLT reduction for the four quartile groups of H3-enabled CDN
// resource counts (paper: all positive, Low ~60ms, Medium groups peak, High
// smallest); (b) CDF of per-entry connection/wait/receive reductions
// (paper medians: connection > 0, wait < 0, receive ~ 0).
#include "bench_common.h"

namespace {

using namespace h3cdn;

void BM_ComputeFig6(benchmark::State& state) {
  const auto study = core::MeasurementStudy(bench::micro_config(16)).run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_fig6(study).groups.size());
  }
}
BENCHMARK(BM_ComputeFig6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Fig. 6 (PLT reduction by group; phase reductions)",
      [](std::ostream& os, h3cdn::bench::BenchReport& report) {
        auto cfg = h3cdn::bench::standard_config();
        // Group means are noise-sensitive; use the paper's probe multiplicity.
        cfg.probes_per_vantage = static_cast<int>(h3cdn::bench::env_size("H3CDN_BENCH_PROBES", 3));
        const auto study = core::MeasurementStudy(cfg).run();
        const auto fig6 = core::compute_fig6(study);
        core::print_fig6(os, fig6);
        for (const auto& g : fig6.groups) {
          const std::string group = analysis::to_string(g.group);
          report.add("mean_plt_reduction_" + group, g.mean_plt_reduction_ms, "ms");
          report.add("pages_" + group, static_cast<double>(g.pages), "count");
        }
        report.add("median_connect_reduction", fig6.median_connect_reduction_ms, "ms");
        report.add("median_wait_reduction", fig6.median_wait_reduction_ms, "ms");
        report.add("median_receive_reduction", fig6.median_receive_reduction_ms, "ms");
      });
}
