// Fig. 5 — CCDF of the number of CDN resources per webpage hosted by Amazon,
// Cloudflare, Google and Fastly (paper: ~50% of pages using Cloudflare or
// Google contain more than 10 of their resources).
#include "bench_common.h"

namespace {

using namespace h3cdn;

void BM_ComputeFig5(benchmark::State& state) {
  const auto study = core::MeasurementStudy(bench::micro_config(16)).run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_fig5(study).ccdf.size());
  }
}
BENCHMARK(BM_ComputeFig5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Fig. 5 (per-provider CDN resource counts per page)", [](std::ostream& os) {
        const auto study = core::MeasurementStudy(bench::standard_config()).run();
        core::print_fig5(os, core::compute_fig5(study));
      });
}
