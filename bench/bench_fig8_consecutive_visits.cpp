// Fig. 8 — consecutive visits with the session-ticket store preserved:
// (a) PLT reduction and (b) number of resumed connections versus the number
// of CDN providers used (paper: both grow with the provider count — the
// shared-provider phenomenon pays off through 0-RTT resumption).
#include "bench_common.h"

namespace {

using namespace h3cdn;

void BM_ConsecutiveStudy(benchmark::State& state) {
  auto cfg = bench::micro_config(12);
  cfg.consecutive = true;
  for (auto _ : state) {
    auto result = core::MeasurementStudy(cfg).run();
    benchmark::DoNotOptimize(result.visits.size());
  }
}
BENCHMARK(BM_ConsecutiveStudy)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Fig. 8 (shared providers under consecutive visits)", [](std::ostream& os) {
        auto cfg = h3cdn::bench::consecutive_config();
        cfg.probes_per_vantage = static_cast<int>(h3cdn::bench::env_size("H3CDN_BENCH_PROBES", 3));
        const auto study = core::MeasurementStudy(cfg).run();
        core::print_fig8(os, core::compute_fig8(study));
      });
}
