// Fig. 4 — (a) probability of each CDN provider appearing on a webpage
// (paper: top four exceed 50%); (b) number of webpages using k providers
// (paper: 94.8% of pages use at least two — the shared-provider phenomenon).
#include "bench_common.h"

namespace {

using namespace h3cdn;

void BM_ComputeFig4(benchmark::State& state) {
  const auto study = core::MeasurementStudy(bench::micro_config(16)).run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_fig4(study).fraction_pages_ge2_providers);
  }
}
BENCHMARK(BM_ComputeFig4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Fig. 4 (shared giant providers across webpages)", [](std::ostream& os) {
        const auto study = core::MeasurementStudy(bench::standard_config()).run();
        core::print_fig4(os, core::compute_fig4(study));
      });
}
