// Fig. 2 — H3 adoption by CDN provider and market share (paper: Google
// serves ~50% of H3 CDN requests and is nearly fully shifted to H3;
// Cloudflare serves 45.2% with comparable H3/H2; others are marginal).
#include "bench_common.h"

namespace {

using namespace h3cdn;

void BM_ComputeFig2(benchmark::State& state) {
  const auto study = core::MeasurementStudy(bench::micro_config(16)).run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_fig2(study).size());
  }
}
BENCHMARK(BM_ComputeFig2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return h3cdn::bench::run_bench_main(
      argc, argv, "Fig. 2 (provider H3 adoption & market share)", [](std::ostream& os) {
        const auto study = core::MeasurementStudy(bench::standard_config()).run();
        core::print_fig2(os, core::compute_fig2(study));
      });
}
