#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace h3cdn::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroMeansDefaultJobs) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::default_jobs());
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, SingleThreadPoolStillRunsOnWorker) {
  // jobs=1 must use the same code path as jobs=N: tasks run on a pool
  // worker, never inline on the caller.
  ThreadPool pool(1);
  std::thread::id task_thread;
  pool.submit([&] { task_thread = std::this_thread::get_id(); });
  pool.wait();
  EXPECT_NE(task_thread, std::this_thread::get_id());
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("shard failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, UsableAgainAfterException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first phase"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.wait();  // the old exception must not resurface
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ServesSeveralPhasesBackToBack) {
  // One pool serving several parallel_for phases, like run_resilience does
  // for its sweep cells.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int phase = 0; phase < 5; ++phase) {
    pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] {
    ran.fetch_add(1);
    pool.submit([&] { ran.fetch_add(1); });
  });
  pool.wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) pool.submit([&] { ran.fetch_add(1); });
    // no wait(): destruction must still execute everything
  }
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace h3cdn::util
