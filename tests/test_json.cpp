#include "util/json.h"

#include <cmath>

#include <gtest/gtest.h>

namespace h3cdn::util {
namespace {

TEST(Json, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Json, KeyValuePairs) {
  JsonWriter w;
  w.begin_object().kv("a", 1).kv("b", "x").kv("c", true).end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":true})");
}

TEST(Json, NestedStructures) {
  JsonWriter w;
  w.begin_object();
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("obj").begin_object().kv("k", std::int64_t{-5}).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,2],"obj":{"k":-5}})");
}

TEST(Json, EscapesSpecialCharacters) {
  JsonWriter w;
  w.begin_object().kv("s", "a\"b\\c\nd\te").end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, EscapesControlCharacters) {
  JsonWriter w;
  std::string s = "x";
  s += '\x01';
  w.begin_object().kv("s", s).end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"x\\u0001\"}");
}

TEST(Json, DoubleFormatting) {
  JsonWriter w;
  w.begin_array().value(1.5).value(0.0).end_array();
  EXPECT_EQ(w.str(), "[1.5,0]");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array().value(std::nan("")).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(Json, NullValue) {
  JsonWriter w;
  w.begin_object().key("n").null().end_object();
  EXPECT_EQ(w.str(), R"({"n":null})");
}

TEST(Json, ArrayOfObjects) {
  JsonWriter w;
  w.begin_array();
  for (int i = 0; i < 2; ++i) w.begin_object().kv("i", i).end_object();
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"i":0},{"i":1}])");
}

TEST(Json, UnsignedAndSizeTypes) {
  JsonWriter w;
  w.begin_array().value(std::uint64_t{18446744073709551615ULL}).value(7u).end_array();
  EXPECT_EQ(w.str(), "[18446744073709551615,7]");
}

}  // namespace
}  // namespace h3cdn::util
