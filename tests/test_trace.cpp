#include "trace/trace.h"

#include <gtest/gtest.h>

#include "net/path.h"
#include "obs/trace_hub.h"
#include "sim/simulator.h"
#include "transport/connection.h"
#include "util/json_parse.h"

namespace h3cdn::trace {
namespace {

TEST(Trace, RecordsAndCounts) {
  ConnectionTrace t;
  t.record({msec(1), EventType::HandshakeStarted});
  t.record({msec(2), EventType::PacketSent, 0, 1, 1200});
  t.record({msec(3), EventType::PacketSent, 1, 1, 1200});
  t.record({msec(4), EventType::PacketLost, 0, 1, 1200});
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.count(EventType::PacketSent), 2u);
  EXPECT_EQ(t.count(EventType::PacketLost), 1u);
  EXPECT_EQ(t.count(EventType::RtoFired), 0u);
}

TEST(Trace, TimestampsMustBeMonotone) {
  ConnectionTrace t;
  t.record({msec(5), EventType::PacketSent});
  EXPECT_DEATH(t.record({msec(4), EventType::PacketSent}), "precondition");
}

TEST(Trace, QlogJsonIsWellFormed) {
  ConnectionTrace t;
  t.record({msec(1), EventType::HandshakeStarted});
  Event sent{msec(2), EventType::PacketSent};
  sent.packet_number = 7;
  sent.stream_id = 3;
  sent.bytes = 1350;
  t.record(sent);
  Event cw{msec(3), EventType::CwndUpdated};
  cw.cwnd = 12;
  t.record(cw);

  const std::string json = t.to_qlog_json("conn-1");
  const auto doc = util::parse_json(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("qlog_version", ""), "0.4");
  const auto& traces = doc->find("traces")->as_array();
  ASSERT_EQ(traces.size(), 1u);
  const auto& events = traces[0].find("events")->as_array();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].string_or("name", ""), "handshake_started");
  EXPECT_EQ(events[1].find("data")->number_or("packet_number", -1), 7.0);
  EXPECT_EQ(events[2].find("data")->number_or("congestion_window_packets", -1), 12.0);
}

TEST(Trace, ConnectionEmitsFullLifecycle) {
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 0.0, usec(0)}, util::Rng(1));
  auto conn = transport::Connection::create(sim, path, tls::TransportKind::Quic,
                                            tls::TlsVersion::Tls13, tls::HandshakeMode::Fresh,
                                            util::Rng(2), {});
  auto trace = std::make_shared<ConnectionTrace>();
  conn->set_trace(trace);
  conn->connect([](TimePoint) {});
  transport::FetchCallbacks cbs;
  cbs.on_complete = [](TimePoint) {};
  conn->fetch(500, 20'000, msec(2), std::move(cbs));
  sim.run();

  EXPECT_EQ(trace->count(EventType::HandshakeStarted), 1u);
  EXPECT_EQ(trace->count(EventType::HandshakeFinished), 1u);
  EXPECT_EQ(trace->count(EventType::StreamOpened), 1u);
  EXPECT_EQ(trace->count(EventType::StreamFinished), 1u);
  EXPECT_GT(trace->count(EventType::PacketSent), 10u);
  EXPECT_EQ(trace->count(EventType::PacketSent), trace->count(EventType::PacketReceived));
  EXPECT_EQ(trace->count(EventType::PacketSent), trace->count(EventType::PacketAcked));
  EXPECT_EQ(trace->count(EventType::PacketLost), 0u);
  EXPECT_GT(trace->count(EventType::CwndUpdated), 0u);  // slow-start growth
}

TEST(Trace, LossyConnectionRecordsRecoveryEvents) {
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 0.05, usec(0)}, util::Rng(9));
  auto conn = transport::Connection::create(sim, path, tls::TransportKind::Tcp,
                                            tls::TlsVersion::Tls13, tls::HandshakeMode::Fresh,
                                            util::Rng(2), {});
  auto trace = std::make_shared<ConnectionTrace>();
  conn->set_trace(trace);
  conn->connect([](TimePoint) {});
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    transport::FetchCallbacks cbs;
    cbs.on_complete = [&](TimePoint) { ++done; };
    conn->fetch(500, 40'000, msec(2), std::move(cbs));
  }
  sim.run();
  EXPECT_EQ(done, 8);
  EXPECT_GT(trace->count(EventType::PacketLost), 0u);
  EXPECT_EQ(trace->count(EventType::PacketLost), trace->count(EventType::Retransmission));
}

TEST(Trace, RingBufferDropsOldestAndCounts) {
  ConnectionTrace t(/*capacity=*/3);
  for (int i = 1; i <= 5; ++i) t.record({msec(i), EventType::PacketSent});
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.dropped_events(), 2u);
  EXPECT_EQ(t.events().front().at, msec(3));  // oldest two evicted
  EXPECT_EQ(t.events().back().at, msec(5));
  t.clear();
  EXPECT_EQ(t.dropped_events(), 0u);
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, SetCapacityTrimsExistingEvents) {
  ConnectionTrace t;  // unbounded by default
  for (int i = 1; i <= 10; ++i) t.record({msec(i), EventType::PacketSent});
  EXPECT_EQ(t.events().size(), 10u);
  t.set_capacity(4);
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.dropped_events(), 6u);
  EXPECT_EQ(t.events().front().at, msec(7));
}

TEST(Trace, QlogReportsDroppedEvents) {
  ConnectionTrace t(/*capacity=*/2);
  for (int i = 1; i <= 5; ++i) t.record({msec(i), EventType::PacketSent});
  const auto doc = util::parse_json(t.to_qlog_json("capped"));
  ASSERT_TRUE(doc.has_value());
  const auto& traces = doc->find("traces")->as_array();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].find("common_fields")->number_or("dropped_events", -1), 3.0);
  EXPECT_EQ(traces[0].find("events")->as_array().size(), 2u);
}

TEST(Trace, QlogEscapesHostileLabels) {
  // Labels flow from domain names and run labels; quotes, backslashes, and
  // control characters must survive the JSON round trip.
  const std::string hostile = "evil\"domain\\with\nnewline\tand\x01ctrl";
  ConnectionTrace t;
  t.record({msec(1), EventType::HandshakeStarted});
  const std::string json = t.to_qlog_json(hostile);
  util::JsonParseError error;
  const auto doc = util::parse_json(json, &error);
  ASSERT_TRUE(doc.has_value()) << error.message;
  const auto& traces = doc->find("traces")->as_array();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].find("common_fields")->string_or("ODCID", ""), hostile);
}

TEST(TraceAggregator, MergesEventsInTimeOrder) {
  obs::TraceAggregator agg;
  auto a = agg.make_trace("conn-a");
  auto b = agg.make_trace("conn-b");
  a->record({msec(1), EventType::HandshakeStarted});
  b->record({msec(2), EventType::HandshakeStarted});
  a->record({msec(3), EventType::PacketSent});
  b->record({msec(3), EventType::PacketSent});  // tie: registration order wins
  b->record({msec(5), EventType::HandshakeFinished});

  EXPECT_EQ(agg.trace_count(), 2u);
  EXPECT_EQ(agg.event_count(), 5u);
  const auto merged = agg.merged_events();
  ASSERT_EQ(merged.size(), 5u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].event.at, merged[i].event.at);
  }
  EXPECT_EQ(*merged[2].label, "conn-a");  // stable tie-break at t=3ms
  EXPECT_EQ(*merged[3].label, "conn-b");
}

TEST(TraceAggregator, PoolBusSharesTimelineWithPacketTraces) {
  // Pool-level events (fallback, H3-broken) recorded into a bus trace must
  // interleave with packet events from connection traces on one timeline.
  obs::TraceAggregator agg;
  auto conn = agg.make_trace("run/conn#1");
  auto bus = agg.make_trace("run/pool");
  conn->record({msec(10), EventType::PacketSent});
  Event fallback{msec(20), EventType::FallbackTriggered};
  fallback.fault = FaultKind::Blackhole;
  bus->record(fallback);
  conn->record({msec(30), EventType::PacketSent});

  const auto merged = agg.merged_events();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[1].event.type, EventType::FallbackTriggered);
  EXPECT_EQ(*merged[1].label, "run/pool");
}

TEST(TraceAggregator, MultiTraceQlogDocument) {
  obs::TraceAggregator agg;
  agg.make_trace("one")->record({msec(1), EventType::HandshakeStarted});
  agg.make_trace("two", /*capacity=*/1);
  agg.traces()[1].trace->record({msec(1), EventType::PacketSent});
  agg.traces()[1].trace->record({msec(2), EventType::PacketSent});
  agg.add("null-trace", nullptr);  // ignored, not crashed on

  EXPECT_EQ(agg.dropped_events(), 1u);
  const auto doc = util::parse_json(agg.to_qlog_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("qlog_format", ""), "JSON");
  EXPECT_EQ(doc->string_or("qlog_version", ""), "0.4");
  const auto& traces = doc->find("traces")->as_array();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].find("common_fields")->string_or("ODCID", ""), "one");
  EXPECT_EQ(traces[1].find("common_fields")->string_or("ODCID", ""), "two");
  EXPECT_EQ(traces[1].find("common_fields")->number_or("dropped_events", -1), 1.0);
}

TEST(Trace, UntracedConnectionRecordsNothing) {
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 0.0, usec(0)}, util::Rng(1));
  auto conn = transport::Connection::create(sim, path, tls::TransportKind::Quic,
                                            tls::TlsVersion::Tls13, tls::HandshakeMode::Fresh,
                                            util::Rng(2), {});
  conn->connect([](TimePoint) {});
  sim.run();  // no trace attached: nothing to assert except no crash
  SUCCEED();
}

}  // namespace
}  // namespace h3cdn::trace
