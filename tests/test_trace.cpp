#include "trace/trace.h"

#include <gtest/gtest.h>

#include "net/path.h"
#include "sim/simulator.h"
#include "transport/connection.h"
#include "util/json_parse.h"

namespace h3cdn::trace {
namespace {

TEST(Trace, RecordsAndCounts) {
  ConnectionTrace t;
  t.record({msec(1), EventType::HandshakeStarted});
  t.record({msec(2), EventType::PacketSent, 0, 1, 1200});
  t.record({msec(3), EventType::PacketSent, 1, 1, 1200});
  t.record({msec(4), EventType::PacketLost, 0, 1, 1200});
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.count(EventType::PacketSent), 2u);
  EXPECT_EQ(t.count(EventType::PacketLost), 1u);
  EXPECT_EQ(t.count(EventType::RtoFired), 0u);
}

TEST(Trace, TimestampsMustBeMonotone) {
  ConnectionTrace t;
  t.record({msec(5), EventType::PacketSent});
  EXPECT_DEATH(t.record({msec(4), EventType::PacketSent}), "precondition");
}

TEST(Trace, QlogJsonIsWellFormed) {
  ConnectionTrace t;
  t.record({msec(1), EventType::HandshakeStarted});
  Event sent{msec(2), EventType::PacketSent};
  sent.packet_number = 7;
  sent.stream_id = 3;
  sent.bytes = 1350;
  t.record(sent);
  Event cw{msec(3), EventType::CwndUpdated};
  cw.cwnd = 12;
  t.record(cw);

  const std::string json = t.to_qlog_json("conn-1");
  const auto doc = util::parse_json(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("qlog_version", ""), "0.4");
  const auto& traces = doc->find("traces")->as_array();
  ASSERT_EQ(traces.size(), 1u);
  const auto& events = traces[0].find("events")->as_array();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].string_or("name", ""), "handshake_started");
  EXPECT_EQ(events[1].find("data")->number_or("packet_number", -1), 7.0);
  EXPECT_EQ(events[2].find("data")->number_or("congestion_window_packets", -1), 12.0);
}

TEST(Trace, ConnectionEmitsFullLifecycle) {
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 0.0, usec(0)}, util::Rng(1));
  auto conn = transport::Connection::create(sim, path, tls::TransportKind::Quic,
                                            tls::TlsVersion::Tls13, tls::HandshakeMode::Fresh,
                                            util::Rng(2), {});
  auto trace = std::make_shared<ConnectionTrace>();
  conn->set_trace(trace);
  conn->connect([](TimePoint) {});
  transport::FetchCallbacks cbs;
  cbs.on_complete = [](TimePoint) {};
  conn->fetch(500, 20'000, msec(2), std::move(cbs));
  sim.run();

  EXPECT_EQ(trace->count(EventType::HandshakeStarted), 1u);
  EXPECT_EQ(trace->count(EventType::HandshakeFinished), 1u);
  EXPECT_EQ(trace->count(EventType::StreamOpened), 1u);
  EXPECT_EQ(trace->count(EventType::StreamFinished), 1u);
  EXPECT_GT(trace->count(EventType::PacketSent), 10u);
  EXPECT_EQ(trace->count(EventType::PacketSent), trace->count(EventType::PacketReceived));
  EXPECT_EQ(trace->count(EventType::PacketSent), trace->count(EventType::PacketAcked));
  EXPECT_EQ(trace->count(EventType::PacketLost), 0u);
  EXPECT_GT(trace->count(EventType::CwndUpdated), 0u);  // slow-start growth
}

TEST(Trace, LossyConnectionRecordsRecoveryEvents) {
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 0.05, usec(0)}, util::Rng(9));
  auto conn = transport::Connection::create(sim, path, tls::TransportKind::Tcp,
                                            tls::TlsVersion::Tls13, tls::HandshakeMode::Fresh,
                                            util::Rng(2), {});
  auto trace = std::make_shared<ConnectionTrace>();
  conn->set_trace(trace);
  conn->connect([](TimePoint) {});
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    transport::FetchCallbacks cbs;
    cbs.on_complete = [&](TimePoint) { ++done; };
    conn->fetch(500, 40'000, msec(2), std::move(cbs));
  }
  sim.run();
  EXPECT_EQ(done, 8);
  EXPECT_GT(trace->count(EventType::PacketLost), 0u);
  EXPECT_EQ(trace->count(EventType::PacketLost), trace->count(EventType::Retransmission));
}

TEST(Trace, UntracedConnectionRecordsNothing) {
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 0.0, usec(0)}, util::Rng(1));
  auto conn = transport::Connection::create(sim, path, tls::TransportKind::Quic,
                                            tls::TlsVersion::Tls13, tls::HandshakeMode::Fresh,
                                            util::Rng(2), {});
  conn->connect([](TimePoint) {});
  sim.run();  // no trace attached: nothing to assert except no crash
  SUCCEED();
}

}  // namespace
}  // namespace h3cdn::trace
