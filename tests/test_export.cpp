#include "core/export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/json_parse.h"

namespace h3cdn::core {
namespace {

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (char c : s) n += c == '\n';
  return n;
}

class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyConfig cfg;
    cfg.max_sites = 12;
    cfg.probes_per_vantage = 1;
    cfg.vantages = {browser::default_vantage_points()[0]};
    study_ = new StudyResult(MeasurementStudy(cfg).run());
    StudyConfig ccfg = cfg;
    ccfg.consecutive = true;
    consecutive_ = new StudyResult(MeasurementStudy(ccfg).run());
  }
  static void TearDownTestSuite() {
    delete study_;
    delete consecutive_;
  }
  static const StudyResult& study() { return *study_; }
  static const StudyResult& consecutive() { return *consecutive_; }

 private:
  static StudyResult* study_;
  static StudyResult* consecutive_;
};
StudyResult* ExportTest::study_ = nullptr;
StudyResult* ExportTest::consecutive_ = nullptr;

TEST_F(ExportTest, Table2CsvShape) {
  const auto csv = table2_to_csv(compute_table2(study()));
  EXPECT_EQ(count_lines(csv), 4u);  // header + h2/h3/others
  EXPECT_EQ(csv.rfind("protocol,", 0), 0u);
  EXPECT_NE(csv.find("\nh3,"), std::string::npos);
}

TEST_F(ExportTest, Fig2CsvHasAllProviders) {
  const auto rows = compute_fig2(study());
  const auto csv = fig2_to_csv(rows);
  EXPECT_EQ(count_lines(csv), rows.size() + 1);
}

TEST_F(ExportTest, Fig3CsvIsPlottableSeries) {
  const auto csv = fig3_to_csv(compute_fig3(study()));
  EXPECT_GT(count_lines(csv), 5u);
  EXPECT_EQ(csv.rfind("cdn_pct,ccdf\n", 0), 0u);
}

TEST_F(ExportTest, Fig6CsvHasGroupsAndPhases) {
  const auto csv = fig6_to_csv(compute_fig6(study()));
  EXPECT_NE(csv.find("Low,"), std::string::npos);
  EXPECT_NE(csv.find("High,"), std::string::npos);
  EXPECT_NE(csv.find("connection,"), std::string::npos);
  EXPECT_NE(csv.find("wait,"), std::string::npos);
}

TEST_F(ExportTest, Fig8AndTable3Csv) {
  const auto f8 = fig8_to_csv(compute_fig8(consecutive()));
  EXPECT_EQ(f8.rfind("providers,", 0), 0u);
  const auto t3 = table3_to_csv(compute_table3(consecutive()));
  EXPECT_NE(t3.find("C_H,"), std::string::npos);
  EXPECT_NE(t3.find("C_L,"), std::string::npos);
}

TEST_F(ExportTest, Fig9CsvFromSeries) {
  Fig9Result r;
  r.series.push_back(compute_fig9_series(study()));
  const auto csv = fig9_to_csv(r);
  EXPECT_GT(count_lines(csv), study().site_count());
  EXPECT_NE(csv.find("fit_slope"), std::string::npos);
}

TEST_F(ExportTest, SummaryJsonParsesAndHasHeadlines) {
  const auto json = summary_to_json(study());
  const auto doc = util::parse_json(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->number_or("sites", 0), 12.0);
  const auto* t2 = doc->find("table2");
  ASSERT_NE(t2, nullptr);
  EXPECT_GT(t2->number_or("cdn_share", 0), 0.4);
  EXPECT_GT(t2->number_or("total_requests", 0), 500.0);
  ASSERT_NE(doc->find("fig2"), nullptr);
  EXPECT_FALSE(doc->find("fig2")->as_array().empty());
  ASSERT_NE(doc->find("fig6"), nullptr);
  EXPECT_EQ(doc->find("fig6")->find("group_mean_reduction_ms")->as_array().size(), 4u);
}

TEST_F(ExportTest, CsvEscaping) {
  // Provider names are clean today; validate escaping via a crafted row.
  Fig2Row row;
  row.provider = cdn::ProviderId::Google;
  const auto csv = fig2_to_csv({row});
  EXPECT_NE(csv.find("Google,0,0,"), std::string::npos);
}

}  // namespace
}  // namespace h3cdn::core
