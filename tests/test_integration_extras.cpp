// Cross-module integration of the extension features: protocol-hint steering,
// DNS inside page loads, selector + browser wiring.
#include <gtest/gtest.h>

#include "browser/browser.h"
#include "core/selector.h"
#include "web/workload.h"

namespace h3cdn {
namespace {

web::Workload small_workload() {
  web::WorkloadConfig cfg;
  cfg.site_count = 5;
  return web::generate_workload(cfg);
}

TEST(ProtocolHint, ForcesH2OnCapableOrigins) {
  const auto workload = small_workload();
  sim::Simulator sim;
  browser::Environment env(sim, workload.universe, browser::VantageConfig{}, util::Rng(3));
  env.warm_page(workload.sites[0].page);
  browser::BrowserConfig config;
  config.h3_enabled = true;
  config.protocol_hint = [](const std::string&) { return http::HttpVersion::H2; };
  browser::Browser chrome(sim, env, nullptr, config, util::Rng(4));
  const auto result = chrome.visit_and_run(workload.sites[0].page);
  EXPECT_EQ(result.har.count_version(http::HttpVersion::H3), 0u);
}

TEST(ProtocolHint, CannotForceH3OntoIncapableOrigins) {
  const auto workload = small_workload();
  sim::Simulator sim;
  browser::Environment env(sim, workload.universe, browser::VantageConfig{}, util::Rng(3));
  env.warm_page(workload.sites[0].page);
  browser::BrowserConfig config;
  config.h3_enabled = true;
  config.protocol_hint = [](const std::string&) { return http::HttpVersion::H3; };
  browser::Browser chrome(sim, env, nullptr, config, util::Rng(4));
  const auto result = chrome.visit_and_run(workload.sites[0].page);
  const auto& u = workload.universe;
  for (const auto& e : result.har.entries) {
    if (e.timings.version == http::HttpVersion::H3) {
      EXPECT_TRUE(u.get(e.domain).supports_h3) << e.domain;
    }
  }
}

TEST(ProtocolHint, SelectorSteersThePool) {
  const auto workload = small_workload();
  core::SelectorConfig sc;
  sc.min_observations = 1;
  sc.explore_rate = 0.0;
  core::AdaptiveProtocolSelector selector(sc, util::Rng(9));
  // Pretend H2 measured far faster everywhere.
  for (const auto& name : workload.universe.all_domain_names()) {
    selector.observe(name, http::HttpVersion::H2, 10.0);
    selector.observe(name, http::HttpVersion::H3, 500.0);
  }
  sim::Simulator sim;
  browser::Environment env(sim, workload.universe, browser::VantageConfig{}, util::Rng(3));
  env.warm_page(workload.sites[0].page);
  browser::BrowserConfig config;
  config.h3_enabled = true;
  config.protocol_hint = [&selector](const std::string& d) { return selector.recommend(d); };
  browser::Browser chrome(sim, env, nullptr, config, util::Rng(4));
  const auto result = chrome.visit_and_run(workload.sites[0].page);
  EXPECT_EQ(result.har.count_version(http::HttpVersion::H3), 0u);
}

TEST(BrowserDns, WarmedVisitsResolveInstantly) {
  const auto workload = small_workload();
  sim::Simulator sim;
  browser::Environment env(sim, workload.universe, browser::VantageConfig{}, util::Rng(3));
  env.warm_page(workload.sites[0].page);
  browser::Browser chrome(sim, env, nullptr, browser::BrowserConfig{}, util::Rng(4));
  const auto result = chrome.visit_and_run(workload.sites[0].page);
  for (const auto& e : result.har.entries) {
    EXPECT_EQ(e.timings.dns, Duration::zero()) << e.domain;
  }
}

TEST(BrowserDns, ColdVisitsPayResolution) {
  const auto workload = small_workload();
  sim::Simulator sim;
  browser::Environment env(sim, workload.universe, browser::VantageConfig{}, util::Rng(3));
  // No warm_page: every first contact with a domain resolves over the wire.
  browser::Browser chrome(sim, env, nullptr, browser::BrowserConfig{}, util::Rng(4));
  const auto result = chrome.visit_and_run(workload.sites[0].page);
  std::size_t paid = 0;
  for (const auto& e : result.har.entries) paid += e.timings.dns > Duration::zero();
  EXPECT_GT(paid, 0u);
  // Repeated entries to the same domain hit the stub cache.
  EXPECT_LT(paid, result.har.entries.size());
}

TEST(BrowserDns, DisabledDnsSkipsResolution) {
  const auto workload = small_workload();
  sim::Simulator sim;
  browser::Environment env(sim, workload.universe, browser::VantageConfig{}, util::Rng(3));
  browser::BrowserConfig config;
  config.dns_enabled = false;
  browser::Browser chrome(sim, env, nullptr, config, util::Rng(4));
  const auto result = chrome.visit_and_run(workload.sites[0].page);
  for (const auto& e : result.har.entries) EXPECT_EQ(e.timings.dns, Duration::zero());
  EXPECT_EQ(env.dns().stats().queries, 0u);
}

TEST(BrowserDns, ColdDnsSlowsTheLoad) {
  const auto workload = small_workload();
  auto plt = [&](bool warm) {
    sim::Simulator sim;
    browser::Environment env(sim, workload.universe, browser::VantageConfig{}, util::Rng(3));
    if (warm) env.warm_page(workload.sites[0].page);
    browser::Browser chrome(sim, env, nullptr, browser::BrowserConfig{}, util::Rng(4));
    return chrome.visit_and_run(workload.sites[0].page).har.page_load_time;
  };
  EXPECT_GT(plt(false), plt(true));
}

}  // namespace
}  // namespace h3cdn
