// Multi-hop topology subsystem tests (docs/TOPOLOGY.md): PathPlan grammar,
// the TierCache, chained single-probe visits with per-hop PLT attribution
// (hop slices re-aggregate exactly to the end-to-end dissection), mid-tier
// outage fallback to the direct path, domain sharding, and --jobs
// byte-identity of the topology experiment.
#include "core/topology_study.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "browser/browser.h"
#include "browser/environment.h"
#include "browser/waterfall.h"
#include "obs/critical_path.h"
#include "sim/simulator.h"
#include "topology/chain.h"
#include "topology/path_plan.h"
#include "topology/tier_cache.h"
#include "util/rng.h"
#include "web/workload.h"
#include "web/workload_io.h"

namespace h3cdn {
namespace {

TEST(PathPlan, ParseAndNameRoundTrip) {
  for (const char* name : {"h3", "h2", "h3-h3", "h3-h2", "h2-h3", "h2-h2-h3"}) {
    const auto plan = topology::PathPlan::parse(name);
    ASSERT_TRUE(plan.has_value()) << name;
    EXPECT_EQ(plan->name(), name);
  }
  const auto chained = topology::PathPlan::parse("h3-h2");
  ASSERT_TRUE(chained.has_value());
  EXPECT_EQ(chained->hop_count(), 2u);
  EXPECT_EQ(chained->relay_count(), 1u);
  EXPECT_FALSE(chained->direct());
  EXPECT_TRUE(chained->hop_h3(0));
  EXPECT_FALSE(chained->hop_h3(1));

  const auto direct = topology::PathPlan::parse("h2");
  ASSERT_TRUE(direct.has_value());
  EXPECT_TRUE(direct->direct());
  EXPECT_EQ(direct->relay_count(), 0u);
}

TEST(PathPlan, RejectsBadTokens) {
  for (const char* bad : {"", "h1", "h3--h2", "h3-", "-h3", "spdy", "h3-h4"}) {
    EXPECT_FALSE(topology::PathPlan::parse(bad).has_value()) << bad;
  }
}

TEST(TierCache, HitMissFillAccounting) {
  topology::TierCache cache(2);
  EXPECT_FALSE(cache.lookup("a"));
  cache.fill("a");
  EXPECT_TRUE(cache.lookup("a"));
  cache.fill("b");
  cache.fill("c");  // evicts "a" (capacity 2, LRU)
  EXPECT_FALSE(cache.lookup("a"));
  EXPECT_TRUE(cache.lookup("b"));
  EXPECT_EQ(cache.fills(), 3u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

web::Workload tiny_workload() {
  web::WorkloadConfig wc;
  wc.site_count = 2;
  return web::generate_workload(wc);
}

struct ProbeRig {
  sim::Simulator sim;
  web::Workload workload = tiny_workload();
  util::Rng root{1234};
  std::unique_ptr<topology::Chain> chain;
  std::unique_ptr<browser::Environment> env;
  std::unique_ptr<browser::Browser> browser;

  explicit ProbeRig(const std::string& plan_name) {
    const auto plan = topology::PathPlan::parse(plan_name);
    EXPECT_TRUE(plan.has_value());
    browser::VantageConfig vantage;
    env = std::make_unique<browser::Environment>(sim, workload.universe, vantage,
                                                 root.fork("env"));
    if (!plan->direct()) {
      topology::ChainConfig cc;
      cc.plan = *plan;
      chain = std::make_unique<topology::Chain>(sim, workload.universe, cc,
                                                root.fork("chain"));
      env->set_topology(chain.get());
    }
    browser::BrowserConfig bc;
    bc.h3_enabled = plan->hop_h3(0);
    browser = std::make_unique<browser::Browser>(sim, *env, nullptr, bc,
                                                 root.fork("browser"));
  }
};

TEST(Topology, ChainedVisitCarriesUpstreamRecords) {
  ProbeRig rig("h3-h2");
  const web::WebPage& page = rig.workload.sites[0].page;
  rig.env->warm_page(page);
  const browser::PageLoadResult load = rig.browser->visit_and_run(page);

  // Every CDN entry that rode the chain carries the relay's own timings.
  std::size_t chained = 0;
  for (const auto& e : load.har.entries) {
    if (e.timings.upstream == nullptr) continue;
    ++chained;
    EXPECT_EQ(e.timings.upstream->tier, "mid-tier");
    if (!e.timings.upstream->cache_hit) {
      // The upstream fetch nests inside the downstream wait envelope.
      EXPECT_LE(e.timings.upstream->timings.total(), e.timings.total() + usec(1));
    }
  }
  EXPECT_GT(chained, 0u) << "no entry traversed the relay chain";
  EXPECT_GT(rig.chain->relayed_requests(), 0u);
}

TEST(Topology, PerHopAttributionReAggregatesExactly) {
  for (const char* plan : {"h3-h3", "h3-h2", "h2-h3"}) {
    ProbeRig rig(plan);
    const web::WebPage& page = rig.workload.sites[0].page;
    rig.env->warm_page(page);
    const browser::PageLoadResult load = rig.browser->visit_and_run(page);

    const obs::Waterfall wf = browser::make_waterfall(load.har, "test");
    const obs::CriticalPathResult cp = obs::analyze_critical_path(wf);
    EXPECT_NEAR(cp.phases.sum(), cp.plt_ms, 1e-3) << plan;
    ASSERT_GE(cp.by_hop.size(), 2u) << plan << ": no per-hop slices";
    // Double-entry bookkeeping: hop slices re-aggregate to the e2e
    // dissection phase-for-phase, with zero residual by construction.
    obs::PhaseVector reagg;
    for (const auto& hop : cp.by_hop) reagg += hop;
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      EXPECT_NEAR(reagg.ms[p], cp.phases.ms[p], 1e-3)
          << plan << " phase " << p << " residual over 1 us";
    }
  }
}

TEST(Topology, DirectVisitHasNoHopSlices) {
  ProbeRig rig("h3");
  const web::WebPage& page = rig.workload.sites[0].page;
  rig.env->warm_page(page);
  const browser::PageLoadResult load = rig.browser->visit_and_run(page);
  const obs::CriticalPathResult cp =
      obs::analyze_critical_path(browser::make_waterfall(load.har, "test"));
  EXPECT_TRUE(cp.by_hop.empty());
  for (const auto& e : load.har.entries) EXPECT_EQ(e.timings.upstream, nullptr);
}

TEST(Topology, MidtierOutageFallsBackToDirectPath) {
  ProbeRig rig("h3-h3");
  const web::WebPage& page = rig.workload.sites[0].page;
  rig.env->warm_page(page);

  bool loaded = false;
  browser::PageLoadResult load;
  rig.browser->visit(page, [&](browser::PageLoadResult r) {
    loaded = true;
    load = std::move(r);
  });
  // Relay traffic for this page flows roughly 300-750 ms into the visit;
  // 400 ms lands the kill squarely mid-transfer with responses held.
  topology::Chain* chain = rig.chain.get();
  rig.sim.schedule_in(msec(400), [chain] { chain->kill_midtier(); });
  rig.sim.run();

  // The kill severed held responses, the page still terminated, and later
  // resolutions went direct.
  ASSERT_TRUE(loaded) << "page never reached onLoad after the mid-tier kill";
  EXPECT_TRUE(chain->fallen_back());
  EXPECT_GT(chain->holds_killed(), 0u);
  EXPECT_GT(chain->direct_resolutions(), 0u);
  EXPECT_EQ(load.har.entries.size(), page.total_requests());
}

TEST(Sharding, ShardedWorkloadSplitsAcrossAliases) {
  web::WorkloadConfig wc;
  wc.site_count = 2;
  wc.domain_shards = 4;
  const web::Workload sharded = web::generate_workload(wc);

  std::size_t shard_resources = 0;
  for (const auto& site : sharded.sites) {
    for (const auto& r : site.page.resources) {
      if (r.domain.rfind("shard", 0) != 0) continue;
      ++shard_resources;
      ASSERT_TRUE(sharded.universe.contains(r.domain)) << r.domain;
      const web::DomainInfo& alias = sharded.universe.get(r.domain);
      // "shardK." prefix strips back to a registered parent of the same
      // provider with identical protocol support.
      const std::string parent = r.domain.substr(r.domain.find('.') + 1);
      const web::DomainInfo& base = sharded.universe.get(parent);
      EXPECT_TRUE(alias.is_cdn);
      EXPECT_EQ(alias.provider, base.provider);
      EXPECT_EQ(alias.supports_h3, base.supports_h3);
    }
  }
  EXPECT_GT(shard_resources, 0u) << "no resource landed on a sharded hostname";
}

TEST(Sharding, ShardsOneIsByteIdenticalToDefault) {
  web::WorkloadConfig base;
  base.site_count = 2;
  web::WorkloadConfig one = base;
  one.domain_shards = 1;
  EXPECT_EQ(web::workload_to_json(web::generate_workload(base)),
            web::workload_to_json(web::generate_workload(one)));
}

core::TopologyConfig small_topology_config() {
  core::TopologyConfig cfg;
  cfg.workload.site_count = 2;
  cfg.sites = 2;
  cfg.plans = {"h3-h3", "h2-h3"};
  cfg.loss_rates = {0.0};
  return cfg;
}

TEST(TopologyStudy, SweepPassesAndAppendsDirectBaselines) {
  core::TopologyConfig cfg = small_topology_config();
  cfg.jobs = 1;
  const core::TopologyResult result = core::run_topology(cfg);
  EXPECT_TRUE(result.all_passed());
  // Configured plans plus one direct baseline per distinct client protocol.
  ASSERT_EQ(result.plans.size(), 4u);
  EXPECT_EQ(result.plans[2], "h3");
  EXPECT_EQ(result.plans[3], "h2");
  // Chained cells report e2e + one row per hop; direct cells e2e only.
  bool saw_hop_row = false;
  for (const auto& row : result.rows) {
    if (row.hop != "e2e") {
      saw_hop_row = true;
    } else {
      EXPECT_LE(row.reagg_residual_us, 1.0) << row.plan;
    }
  }
  EXPECT_TRUE(saw_hop_row);
}

TEST(TopologyStudy, CsvByteIdenticalAcrossJobCounts) {
  core::TopologyConfig cfg = small_topology_config();
  cfg.jobs = 1;
  const std::string csv1 = core::topology_result_to_csv(core::run_topology(cfg));
  cfg.jobs = 4;
  const std::string csv4 = core::topology_result_to_csv(core::run_topology(cfg));
  EXPECT_EQ(csv1, csv4);
}

}  // namespace
}  // namespace h3cdn
