// BENCH record parsing and regression diffing (tools/h3cdn_bench_diff).
#include "obs/bench_diff.h"

#include <gtest/gtest.h>

namespace h3cdn::obs {
namespace {

const char* kValidRecord = R"({
  "schema_version": 1,
  "bench": "fig6_plt_reduction",
  "title": "Fig 6 PLT reduction",
  "git_sha": "abc123",
  "config": {"sites": 8, "probes": 1, "hash": "00ff00ff00ff00ff"},
  "metrics": [
    {"metric": "plt_p50_ms", "value": 812.5, "unit": "ms"},
    {"metric": "run_wall_ms", "value": 90.0, "unit": "ms"}
  ]
})";

BenchRecordInfo record(const std::string& bench, const std::string& hash,
                       std::vector<BenchMetric> metrics) {
  BenchRecordInfo r;
  r.bench = bench;
  r.config_hash = hash;
  r.metrics = std::move(metrics);
  return r;
}

TEST(BenchDiff, ParsesValidRecord) {
  std::string error;
  const auto info = parse_bench_record(kValidRecord, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->bench, "fig6_plt_reduction");
  EXPECT_EQ(info->title, "Fig 6 PLT reduction");
  EXPECT_EQ(info->git_sha, "abc123");
  EXPECT_EQ(info->config_hash, "00ff00ff00ff00ff");
  ASSERT_EQ(info->metrics.size(), 2u);
  EXPECT_EQ(info->metrics[0].metric, "plt_p50_ms");
  EXPECT_DOUBLE_EQ(info->metrics[0].value, 812.5);
  EXPECT_EQ(info->metrics[0].unit, "ms");
}

TEST(BenchDiff, RejectsWrongSchemaVersion) {
  std::string error;
  EXPECT_FALSE(parse_bench_record(
                   R"({"schema_version":2,"bench":"x","metrics":[]})", &error)
                   .has_value());
  EXPECT_NE(error.find("schema_version"), std::string::npos);
}

TEST(BenchDiff, RejectsMissingBenchOrMetrics) {
  std::string error;
  EXPECT_FALSE(
      parse_bench_record(R"({"schema_version":1,"metrics":[]})", &error).has_value());
  EXPECT_NE(error.find("bench"), std::string::npos);
  EXPECT_FALSE(
      parse_bench_record(R"({"schema_version":1,"bench":"x"})", &error).has_value());
  EXPECT_NE(error.find("metrics"), std::string::npos);
  EXPECT_FALSE(parse_bench_record("not json at all", &error).has_value());
}

TEST(BenchDiff, IdenticalSetsAreClean) {
  const auto base = record("a", "h1", {{"plt_ms", 100.0, "ms"}, {"visits", 32.0, "count"}});
  const BenchDiffOptions options;
  const auto report = diff_bench_records({base}, {base}, options);
  EXPECT_TRUE(report.clean(options));
  EXPECT_EQ(report.flagged_count(), 0u);
  EXPECT_EQ(report.benches_compared, 1u);
  EXPECT_EQ(report.deltas.size(), 2u);
}

TEST(BenchDiff, FlagsMovementBeyondNoiseBand) {
  const auto base = record("a", "h1", {{"plt_ms", 100.0, "ms"}});
  const auto cur = record("a", "h1", {{"plt_ms", 110.0, "ms"}});
  const BenchDiffOptions options;  // 5% band
  const auto report = diff_bench_records({base}, {cur}, options);
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_TRUE(report.deltas[0].flagged);
  EXPECT_NEAR(report.deltas[0].rel_change, 0.10, 1e-12);
  EXPECT_FALSE(report.clean(options));
}

TEST(BenchDiff, ToleratesMovementWithinNoiseBand) {
  const auto base = record("a", "h1", {{"plt_ms", 100.0, "ms"}});
  const auto cur = record("a", "h1", {{"plt_ms", 103.0, "ms"}});
  const BenchDiffOptions options;
  const auto report = diff_bench_records({base}, {cur}, options);
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_FALSE(report.deltas[0].flagged);
  EXPECT_TRUE(report.clean(options));
}

TEST(BenchDiff, ZeroBaseUsesAbsoluteFloor) {
  const auto base = record("a", "h1", {{"failures", 0.0, "count"}});
  BenchDiffOptions options;
  options.abs_floor = 0.5;
  // Sub-floor jitter on a zero base is absorbed...
  auto report =
      diff_bench_records({base}, {record("a", "h1", {{"failures", 0.25, "count"}})}, options);
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_FALSE(report.deltas[0].flagged);
  // ...but a real movement from zero is flagged even though rel_change is 0.
  report = diff_bench_records({base}, {record("a", "h1", {{"failures", 3.0, "count"}})}, options);
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_TRUE(report.deltas[0].flagged);
}

TEST(BenchDiff, WallClockMetricsAreSkippedByDefault) {
  const auto base = record("a", "h1", {{"run_wall_ms", 50.0, "ms"}});
  const auto cur = record("a", "h1", {{"run_wall_ms", 500.0, "ms"}});
  const BenchDiffOptions options;
  EXPECT_TRUE(diff_bench_records({base}, {cur}, options).clean(options));
  BenchDiffOptions include_wall;
  include_wall.skip_wall_metrics = false;
  EXPECT_FALSE(diff_bench_records({base}, {cur}, include_wall).clean(include_wall));
}

TEST(BenchDiff, HostThroughputAndSpeedupMetricsAreSkippedByDefault) {
  // Wall-derived throughput (unit per_sec) and speedup ratios measure the
  // host, exactly like *wall_ms — a committed baseline must not flag them
  // on a differently-provisioned runner.
  const auto base = record("a", "h1",
                           {{"events_per_second", 1.0e6, "per_sec"},
                            {"sched_calendar_speedup", 3.8, "ratio"},
                            {"peak_rss_mb", 180.0, "mb"}});
  const auto cur = record("a", "h1",
                          {{"events_per_second", 2.0e5, "per_sec"},
                           {"sched_calendar_speedup", 1.9, "ratio"},
                           {"peak_rss_mb", 420.0, "mb"}});
  const BenchDiffOptions options;
  const auto report = diff_bench_records({base}, {cur}, options);
  EXPECT_TRUE(report.deltas.empty());
  EXPECT_TRUE(report.clean(options));
  BenchDiffOptions include_wall;
  include_wall.skip_wall_metrics = false;
  EXPECT_EQ(diff_bench_records({base}, {cur}, include_wall).flagged_count(), 3u);
}

TEST(BenchDiff, ConfigHashMismatchBlocksComparison) {
  const auto base = record("a", "h1", {{"plt_ms", 100.0, "ms"}});
  const auto cur = record("a", "h2", {{"plt_ms", 500.0, "ms"}});
  const BenchDiffOptions options;
  const auto report = diff_bench_records({base}, {cur}, options);
  ASSERT_EQ(report.config_mismatches.size(), 1u);
  EXPECT_EQ(report.config_mismatches[0], "a");
  EXPECT_EQ(report.benches_compared, 0u);
  EXPECT_TRUE(report.deltas.empty());
  EXPECT_FALSE(report.clean(options));
  // With the check relaxed, the mismatch is noted but comparison proceeds.
  BenchDiffOptions relaxed;
  relaxed.require_matching_config = false;
  const auto relaxed_report = diff_bench_records({base}, {cur}, relaxed);
  EXPECT_EQ(relaxed_report.benches_compared, 1u);
  EXPECT_EQ(relaxed_report.flagged_count(), 1u);
}

TEST(BenchDiff, OneSidedBenchesAreSkippedNotCompared) {
  const auto only_base = record("old_bench", "h1", {{"x", 1.0, ""}});
  const auto only_cur = record("new_bench", "h1", {{"x", 1.0, ""}});
  const BenchDiffOptions options;
  const auto report = diff_bench_records({only_base}, {only_cur}, options);
  EXPECT_EQ(report.benches_compared, 0u);
  EXPECT_EQ(report.deltas.size(), 0u);
  ASSERT_EQ(report.skipped.size(), 2u);
  EXPECT_TRUE(report.clean(options));  // nothing comparable => nothing flagged
}

TEST(BenchDiff, NewMetricInCurrentIsSkipped) {
  const auto base = record("a", "h1", {{"plt_ms", 100.0, "ms"}});
  const auto cur = record("a", "h1", {{"plt_ms", 100.0, "ms"}, {"extra", 7.0, ""}});
  const BenchDiffOptions options;
  const auto report = diff_bench_records({base}, {cur}, options);
  EXPECT_EQ(report.deltas.size(), 1u);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_NE(report.skipped[0].find("extra"), std::string::npos);
  EXPECT_TRUE(report.clean(options));
}

}  // namespace
}  // namespace h3cdn::obs
