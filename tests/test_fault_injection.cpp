#include "net/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/link.h"
#include "net/path.h"
#include "trace/trace.h"

namespace h3cdn::net {
namespace {

LinkConfig instant_link() {
  LinkConfig c;
  c.latency = msec(10);
  c.bandwidth_bps = 0;  // infinite: serialization out of the picture
  c.loss_rate = 0.0;
  return c;
}

// Transmits `n` packets through the link at the current sim time and returns
// the per-packet delivered flags in transmit order (drops never deliver).
std::vector<bool> offer_packets(sim::Simulator& sim, Link& link, int n,
                                PacketClass pclass = PacketClass::Tcp, bool lossless = false) {
  std::vector<bool> delivered(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    link.transmit(100, [&delivered, i] { delivered[static_cast<std::size_t>(i)] = true; },
                  lossless, pclass);
  }
  sim.run();
  return delivered;
}

double mean_drop_run_length(const std::vector<bool>& delivered) {
  std::size_t runs = 0;
  std::size_t dropped = 0;
  bool in_run = false;
  for (bool ok : delivered) {
    if (!ok) {
      ++dropped;
      if (!in_run) ++runs;
      in_run = true;
    } else {
      in_run = false;
    }
  }
  return runs == 0 ? 0.0 : static_cast<double>(dropped) / static_cast<double>(runs);
}

// --- Gilbert-Elliott parameterization ---------------------------------------

TEST(GilbertElliott, FromAverageHitsTargetStationaryLoss) {
  for (double target : {0.001, 0.01, 0.05, 0.2}) {
    for (double burst : {1.0, 4.0, 16.0}) {
      const auto ge = GilbertElliottConfig::from_average(target, burst);
      EXPECT_TRUE(ge.enabled);
      EXPECT_NEAR(ge.average_loss(), target, 1e-12) << "avg=" << target << " burst=" << burst;
    }
  }
}

TEST(GilbertElliott, BernoulliHelperIsSingleState) {
  const auto ge = GilbertElliottConfig::bernoulli(0.03);
  EXPECT_NEAR(ge.average_loss(), 0.03, 1e-12);
  EXPECT_EQ(ge.p_good_to_bad, 0.0);  // never enters the Bad state
}

TEST(GilbertElliott, InjectorMatchesAverageAndBurstStructure) {
  // Equal average rate, very different burst structure: the GE chain's drop
  // runs must be much longer than the i.i.d. model's at the same rate.
  const double rate = 0.02;
  const int n = 60000;

  sim::Simulator sim_iid;
  Link iid(sim_iid, instant_link(), util::Rng(11));
  FaultProfile iid_profile;
  iid_profile.gilbert_elliott = GilbertElliottConfig::bernoulli(rate);
  iid.set_fault_profile(iid_profile, util::Rng(21));
  const auto iid_delivered = offer_packets(sim_iid, iid, n);

  sim::Simulator sim_ge;
  Link ge(sim_ge, instant_link(), util::Rng(11));
  FaultProfile ge_profile;
  ge_profile.gilbert_elliott = GilbertElliottConfig::from_average(rate, 8.0);
  ge.set_fault_profile(ge_profile, util::Rng(21));
  const auto ge_delivered = offer_packets(sim_ge, ge, n);

  const double iid_rate = static_cast<double>(iid.stats().packets_dropped) / n;
  const double ge_rate = static_cast<double>(ge.stats().packets_dropped) / n;
  EXPECT_NEAR(iid_rate, rate, 0.005);
  EXPECT_NEAR(ge_rate, rate, 0.005);

  // i.i.d. drop runs at 2% loss are ~1 packet; mean-burst-8 runs are ~8.
  EXPECT_LT(mean_drop_run_length(iid_delivered), 2.0);
  EXPECT_GT(mean_drop_run_length(ge_delivered), 4.0);

  // Accounting: the classic Gilbert chain only drops in the Bad state.
  EXPECT_EQ(ge.stats().dropped_burst, ge.stats().packets_dropped);
  EXPECT_EQ(ge.stats().dropped_bernoulli, 0u);
  // The degenerate chain never visits Bad: all drops are i.i.d.
  EXPECT_EQ(iid.stats().dropped_bernoulli, iid.stats().packets_dropped);
  EXPECT_EQ(iid.stats().dropped_burst, 0u);
}

// --- Outages ----------------------------------------------------------------

TEST(FaultInjector, HardOutageDropsEverythingInsideTheWindow) {
  sim::Simulator sim;
  Link link(sim, instant_link(), util::Rng(3));
  FaultProfile profile;
  profile.outages.push_back(Outage{msec(100), msec(50), OutageKind::Hard});
  link.set_fault_profile(profile, util::Rng(4));

  std::vector<std::pair<TimePoint, bool>> results;  // offered-at, delivered
  for (int i = 0; i < 20; ++i) {
    const TimePoint at = msec(10 * i);  // 0,10,...,190 ms
    sim.schedule_at(at, [&link, &results, at] {
      auto slot = std::make_shared<bool>(false);
      results.emplace_back(at, false);
      const std::size_t idx = results.size() - 1;
      // Hard outages drop even "lossless" control packets: a dead link
      // delivers nothing.
      link.transmit(100, [&results, idx] { results[idx].second = true; },
                    /*lossless=*/true);
    });
  }
  sim.run();

  ASSERT_EQ(results.size(), 20u);
  std::uint64_t outage_drops = 0;
  for (const auto& [at, ok] : results) {
    const bool in_window = at >= msec(100) && at < msec(150);
    EXPECT_EQ(ok, !in_window) << "offered at " << at.count();
    outage_drops += in_window;
  }
  EXPECT_EQ(link.stats().dropped_outage, outage_drops);
  EXPECT_EQ(link.stats().packets_dropped, outage_drops);
}

TEST(FaultInjector, UdpBlackholeSparesTcp) {
  sim::Simulator sim;
  Link link(sim, instant_link(), util::Rng(3));
  FaultProfile profile;
  profile.outages.push_back(Outage{TimePoint{0}, sec(10), OutageKind::UdpBlackhole});
  link.set_fault_profile(profile, util::Rng(4));

  const auto tcp = offer_packets(sim, link, 50, PacketClass::Tcp);
  for (bool ok : tcp) EXPECT_TRUE(ok);

  const auto udp = offer_packets(sim, link, 50, PacketClass::Udp);
  for (bool ok : udp) EXPECT_FALSE(ok);

  // QUIC ACKs are UDP datagrams too: lossless exempts them from stochastic
  // loss, not from a blackholed path.
  const auto udp_lossless = offer_packets(sim, link, 10, PacketClass::Udp, /*lossless=*/true);
  for (bool ok : udp_lossless) EXPECT_FALSE(ok);

  EXPECT_EQ(link.stats().dropped_outage, 60u);
}

// --- RTT spikes -------------------------------------------------------------

TEST(FaultInjector, RttSpikeDelaysPacketsInsideTheWindow) {
  sim::Simulator sim;
  Link link(sim, instant_link(), util::Rng(5));
  FaultProfile profile;
  profile.rtt_spikes.push_back(RttSpike{msec(100), msec(50), msec(40)});
  link.set_fault_profile(profile, util::Rng(6));

  std::vector<TimePoint> arrivals;
  sim.schedule_at(msec(10), [&] { link.transmit(100, [&] { arrivals.push_back(sim.now()); }); });
  sim.schedule_at(msec(120), [&] { link.transmit(100, [&] { arrivals.push_back(sim.now()); }); });
  sim.run();

  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], msec(20));   // 10 + 10ms latency
  EXPECT_EQ(arrivals[1], msec(170));  // 120 + 10ms latency + 40ms spike
}

// --- Trace + stats breakdown ------------------------------------------------

TEST(FaultInjector, LinkDroppedTraceEventsCarryTheFaultKind) {
  sim::Simulator sim;
  LinkConfig cfg = instant_link();
  cfg.loss_rate = 0.5;  // baseline Bernoulli drops alongside the outage
  Link link(sim, cfg, util::Rng(9));
  FaultProfile profile;
  profile.outages.push_back(Outage{msec(100), msec(100), OutageKind::Hard});
  link.set_fault_profile(profile, util::Rng(10));
  auto trace = std::make_shared<trace::ConnectionTrace>();
  link.set_trace(trace);

  for (int i = 0; i < 200; ++i) link.transmit(100, [] {});  // t=0: baseline loss only
  sim.schedule_at(msec(150), [&] {
    for (int i = 0; i < 10; ++i) link.transmit(100, [] {});  // inside the outage
  });
  sim.run();

  std::size_t bernoulli_events = 0;
  std::size_t outage_events = 0;
  for (const auto& e : trace->events()) {
    ASSERT_EQ(e.type, trace::EventType::LinkDropped);
    if (e.fault == trace::FaultKind::Bernoulli) ++bernoulli_events;
    if (e.fault == trace::FaultKind::Outage) ++outage_events;
  }
  EXPECT_EQ(bernoulli_events, link.stats().dropped_bernoulli);
  EXPECT_EQ(outage_events, 10u);
  EXPECT_GT(bernoulli_events, 50u);  // ~100 of 200 at 50% loss
  EXPECT_EQ(link.stats().packets_dropped,
            link.stats().dropped_bernoulli + link.stats().dropped_burst +
                link.stats().dropped_outage);
}

TEST(FaultInjector, BreakdownSumsAcrossAllMechanisms) {
  sim::Simulator sim;
  LinkConfig cfg = instant_link();
  cfg.loss_rate = 0.01;  // baseline
  Link link(sim, cfg, util::Rng(13));
  FaultProfile profile;
  profile.gilbert_elliott = GilbertElliottConfig::from_average(0.05, 6.0);
  profile.outages.push_back(Outage{usec(0), usec(50), OutageKind::Hard});
  link.set_fault_profile(profile, util::Rng(14));

  // One packet per microsecond: the first 50 land in the outage window, the
  // rest face the stochastic mechanisms.
  for (int i = 0; i < 20000; ++i) {
    sim.schedule_at(usec(i), [&link] { link.transmit(100, [] {}); });
  }
  sim.run();
  const LinkStats& s = link.stats();
  EXPECT_GT(s.dropped_bernoulli, 0u);  // baseline Bernoulli still active
  EXPECT_GT(s.dropped_burst, 0u);
  EXPECT_EQ(s.packets_dropped, s.dropped_bernoulli + s.dropped_burst + s.dropped_outage);
  EXPECT_EQ(s.packets_offered, s.packets_delivered + s.packets_dropped);
}

// --- Determinism ------------------------------------------------------------

TEST(FaultInjector, IdenticalSeedsReplayIdenticalFaultSchedules) {
  auto run_once = [] {
    sim::Simulator sim;
    LinkConfig cfg = instant_link();
    cfg.loss_rate = 0.01;
    Link link(sim, cfg, util::Rng(77));
    FaultProfile profile;
    profile.gilbert_elliott = GilbertElliottConfig::from_average(0.03, 8.0);
    profile.rtt_spikes.push_back(RttSpike{msec(1), msec(2), msec(5)});
    link.set_fault_profile(profile, util::Rng(78));
    return offer_packets(sim, link, 5000);
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- NetPath integration ----------------------------------------------------

TEST(NetPathFaults, DirectionsGetIndependentBurstChains) {
  sim::Simulator sim;
  PathConfig pc;
  pc.rtt = msec(20);
  pc.bandwidth_bps = 0;
  NetPath path(sim, pc, util::Rng(31));
  FaultProfile profile;
  profile.gilbert_elliott = GilbertElliottConfig::from_average(0.1, 8.0);
  path.set_fault_profile(profile, util::Rng(32));

  std::vector<bool> up(2000, false);
  std::vector<bool> down(2000, false);
  for (int i = 0; i < 2000; ++i) {
    path.send_up(100, [&up, i] { up[static_cast<std::size_t>(i)] = true; });
    path.send_down(100, [&down, i] { down[static_cast<std::size_t>(i)] = true; });
  }
  sim.run();
  EXPECT_GT(path.uplink().stats().dropped_burst, 0u);
  EXPECT_GT(path.downlink().stats().dropped_burst, 0u);
  EXPECT_NE(up, down);  // independent fork streams => different realizations
}

TEST(NetPathFaults, AddOutageCoversBothDirections) {
  sim::Simulator sim;
  PathConfig pc;
  pc.rtt = msec(20);
  pc.bandwidth_bps = 0;
  NetPath path(sim, pc, util::Rng(41));
  path.add_outage(Outage{TimePoint{0}, sec(1), OutageKind::Hard});

  bool up_ok = false;
  bool down_ok = false;
  path.send_up(100, [&] { up_ok = true; });
  path.send_down(100, [&] { down_ok = true; });
  sim.run();
  EXPECT_FALSE(up_ok);
  EXPECT_FALSE(down_ok);
  EXPECT_EQ(path.uplink().stats().dropped_outage, 1u);
  EXPECT_EQ(path.downlink().stats().dropped_outage, 1u);
}

// --- set_loss_rate validation (satellite) -----------------------------------

TEST(LinkLossRate, ClampsFloatingPointOvershoot) {
  sim::Simulator sim;
  Link link(sim, instant_link(), util::Rng(51));
  link.set_loss_rate(1.0 + 1e-9);  // e.g. baseline + injected sums
  EXPECT_EQ(link.config().loss_rate, 1.0);
  bool ok = false;
  link.transmit(100, [&] { ok = true; });
  sim.run();
  EXPECT_FALSE(ok);  // rate 1.0 drops everything

  link.set_loss_rate(-1e-9);
  EXPECT_EQ(link.config().loss_rate, 0.0);
}

TEST(LinkLossRateDeathTest, RejectsGrossViolationsAndNaN) {
  sim::Simulator sim;
  Link link(sim, instant_link(), util::Rng(52));
  EXPECT_DEATH(link.set_loss_rate(1.5), "precondition");
  EXPECT_DEATH(link.set_loss_rate(-0.2), "precondition");
  EXPECT_DEATH(link.set_loss_rate(std::nan("")), "precondition");
}

}  // namespace
}  // namespace h3cdn::net
