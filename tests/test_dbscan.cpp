// DBSCAN, the indexed region query, and the shared clustering utilities
// (vector_math, silhouette sweep) behind workload-archetype discovery
// (docs/OBSERVABILITY.md "Archetypes & QoE").
#include "analysis/dbscan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/archetype.h"
#include "analysis/kmeans.h"
#include "analysis/vector_math.h"
#include "util/rng.h"

namespace h3cdn::analysis {
namespace {

std::vector<std::vector<double>> random_points(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    for (auto& x : p) x = rng.uniform(-5.0, 5.0);
    points.push_back(std::move(p));
  }
  return points;
}

TEST(RegionIndex, QueryMatchesBruteForce) {
  const auto points = random_points(120, 3, 11);
  const RegionIndex index(points);
  for (const double eps : {0.5, 1.5, 4.0}) {
    for (std::size_t center = 0; center < points.size(); center += 7) {
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (euclidean_distance(points[center], points[i]) <= eps) expected.push_back(i);
      }
      const auto got = index.query(center, eps);
      EXPECT_EQ(got, expected) << "center " << center << " eps " << eps;
      // The contract: ascending point indices, center included.
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
      EXPECT_TRUE(std::find(got.begin(), got.end(), center) != got.end());
    }
  }
}

TEST(Dbscan, TwoBlobsFormTwoClusters) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) points.push_back({0.0 + 0.01 * i, 0.0});
  for (int i = 0; i < 10; ++i) points.push_back({10.0 + 0.01 * i, 0.0});
  const auto r = dbscan(points, {.eps = 0.5, .min_pts = 4});
  EXPECT_EQ(r.cluster_count, 2u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.labels[i], 0);
  for (int i = 10; i < 20; ++i) EXPECT_EQ(r.labels[i], 1);
  // Every point in a dense blob is core.
  for (const bool c : r.core) EXPECT_TRUE(c);
}

TEST(Dbscan, SparsePointsAreAllNoise) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 8; ++i) points.push_back({100.0 * i, 0.0});
  const auto r = dbscan(points, {.eps = 1.0, .min_pts = 3});
  EXPECT_EQ(r.cluster_count, 0u);
  for (const int label : r.labels) EXPECT_EQ(label, -1);
  for (const bool c : r.core) EXPECT_FALSE(c);
}

TEST(Dbscan, SingleTightBlobIsOneCluster) {
  const auto points = random_points(40, 2, 21);  // diameter < 2 * 10
  const auto r = dbscan(points, {.eps = 20.0, .min_pts = 4});
  EXPECT_EQ(r.cluster_count, 1u);
  for (const int label : r.labels) EXPECT_EQ(label, 0);
}

TEST(Dbscan, BorderPointJoinsFirstReachingCluster) {
  // Two dense cores whose epsilon-balls both reach the lone midpoint; the
  // midpoint itself has too few neighbors to be core. Canonical ascending
  // expansion means cluster 0 (the lower-indexed core) claims it — always.
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 5; ++i) points.push_back({0.0 + 0.1 * i, 0.0});  // core A: 0.0..0.4
  for (int i = 0; i < 5; ++i) points.push_back({1.6 + 0.1 * i, 0.0});  // core B: 1.6..2.0
  points.push_back({1.0, 0.0});  // border: 0.6 from each blob's edge, 3 total neighbors
  const auto r = dbscan(points, {.eps = 0.65, .min_pts = 4});
  ASSERT_EQ(r.cluster_count, 2u);
  EXPECT_FALSE(r.core[10]);
  EXPECT_EQ(r.labels[10], 0);
  // Determinism: a rerun reproduces the identical labeling.
  const auto again = dbscan(points, {.eps = 0.65, .min_pts = 4});
  EXPECT_EQ(r.labels, again.labels);
}

TEST(Dbscan, AutoEpsUsesMedianKDistance) {
  const auto points = random_points(60, 2, 31);
  const double kdist = median_k_distance(points, 4);
  EXPECT_GT(kdist, 0.0);
  const auto r = dbscan(points, {.eps = 0.0, .min_pts = 4});
  EXPECT_DOUBLE_EQ(r.eps_used, kdist);
}

TEST(Dbscan, MedianKDistanceOnHandComputableLine) {
  // Points at 0, 1, 2, 3, 4: with min_pts = 2 the k-dist of a point is the
  // distance to its nearest neighbor's neighbor... concretely, the 2nd
  // nearest: ends see {1, 2}, middles see {1, 1}; k-dist per point is
  // {2, 1, 1, 1, 2}, median 1.
  std::vector<std::vector<double>> points{{0}, {1}, {2}, {3}, {4}};
  EXPECT_DOUBLE_EQ(median_k_distance(points, 2), 1.0);
}

TEST(VectorMath, NormalizeRowsYieldsUnitL1Shares) {
  const auto rows = normalize_rows({{2.0, 6.0, 2.0}, {0.0, 0.0, 0.0}, {5.0, 0.0, 0.0}});
  EXPECT_DOUBLE_EQ(rows[0][0], 0.2);
  EXPECT_DOUBLE_EQ(rows[0][1], 0.6);
  EXPECT_DOUBLE_EQ(rows[0][2], 0.2);
  // All-zero rows carry no shape information and stay untouched.
  EXPECT_EQ(rows[1], (std::vector<double>{0.0, 0.0, 0.0}));
  EXPECT_DOUBLE_EQ(rows[2][0], 1.0);
}

TEST(VectorMath, MeanRowAveragesElementwise) {
  const auto mean = mean_row({{1.0, 3.0}, {3.0, 5.0}});
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
  EXPECT_TRUE(mean_row({}).empty());
}

TEST(Silhouette, SeparatedClustersScoreHigh) {
  std::vector<std::vector<double>> points;
  std::vector<std::size_t> assignment;
  for (int i = 0; i < 10; ++i) {
    points.push_back({0.0 + 0.01 * i});
    assignment.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    points.push_back({100.0 + 0.01 * i});
    assignment.push_back(1);
  }
  EXPECT_GT(silhouette_score(points, assignment), 0.95);
  // A single populated cluster has no between-cluster term: score 0.
  EXPECT_DOUBLE_EQ(silhouette_score(points, std::vector<std::size_t>(20, 0)), 0.0);
}

TEST(Silhouette, SweepRecoversTheTrueK) {
  std::vector<std::vector<double>> points;
  for (const double center : {0.0, 50.0, 100.0}) {
    for (int i = 0; i < 12; ++i) points.push_back({center + 0.05 * i, center});
  }
  const auto sweep = kmeans_select_k(points, 2, 6, {}, util::Rng(9));
  EXPECT_EQ(sweep.best_k, 3u);
  ASSERT_EQ(sweep.ks.size(), sweep.silhouettes.size());
  ASSERT_EQ(sweep.ks.size(), sweep.inertias.size());
  // Deterministic given the same rng seed.
  const auto again = kmeans_select_k(points, 2, 6, {}, util::Rng(9));
  EXPECT_EQ(sweep.best.assignment, again.best.assignment);
  EXPECT_EQ(sweep.silhouettes, again.silhouettes);
}

TEST(Archetype, DbscanDiscoveryNamesDeviantDimension) {
  // Two regimes of 3-dim shares: transfer-heavy vs dim-0-heavy. Names come
  // from the dimension where a centroid most exceeds the population mean.
  std::vector<std::vector<double>> features;
  for (int i = 0; i < 10; ++i) features.push_back({0.8, 0.1, 0.1});
  for (int i = 0; i < 10; ++i) features.push_back({0.1, 0.1, 0.8});
  ArchetypeConfig cfg;
  cfg.dbscan.eps = 0.1;
  cfg.dbscan.min_pts = 3;
  const auto r = discover_archetypes(features, {"dns", "wait", "transfer"}, cfg);
  ASSERT_EQ(r.cluster_count, 2u);
  ASSERT_EQ(r.archetypes.size(), 2u);
  EXPECT_EQ(r.archetypes[0].name, "dns-bound");
  EXPECT_EQ(r.archetypes[1].name, "transfer-bound");
  // Centroid == mean of members, and members are ascending.
  for (const auto& a : r.archetypes) {
    std::vector<std::vector<double>> member_rows;
    for (const std::size_t m : a.members) member_rows.push_back(features[m]);
    EXPECT_EQ(a.centroid, mean_row(member_rows));
    EXPECT_TRUE(std::is_sorted(a.members.begin(), a.members.end()));
  }
}

TEST(Archetype, NoiseBucketIsLastAndNamedNoise) {
  std::vector<std::vector<double>> features;
  for (int i = 0; i < 8; ++i) features.push_back({0.9, 0.05, 0.05});
  features.push_back({0.05, 0.9, 0.05});  // far from the blob: noise
  ArchetypeConfig cfg;
  cfg.dbscan.eps = 0.1;
  cfg.dbscan.min_pts = 3;
  const auto r = discover_archetypes(features, {"a", "b", "c"}, cfg);
  EXPECT_EQ(r.cluster_count, 1u);
  ASSERT_EQ(r.archetypes.size(), 2u);
  EXPECT_EQ(r.archetypes.back().id, -1);
  EXPECT_EQ(r.archetypes.back().name, "noise");
  EXPECT_EQ(r.labels[8], -1);
}

}  // namespace
}  // namespace h3cdn::analysis
