#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace h3cdn::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntUnbiasedAcrossBuckets) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(17);
  std::vector<double> v;
  for (int i = 0; i < 50001; ++i) v.push_back(rng.lognormal_median(8.0, 1.0));
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[v.size() / 2], 8.0, 0.35);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(31);
  const auto s = rng.sample_indices(20, 8);
  EXPECT_EQ(s.size(), 8u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (auto i : s) EXPECT_LT(i, 20u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependence) {
  Rng root(99);
  Rng a = root.fork("alpha");
  Rng b = root.fork("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDeterministic) {
  Rng r1(99), r2(99);
  Rng a = r1.fork("tag");
  Rng b = r2.fork("tag");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DeriveSeedOrderSensitive) {
  EXPECT_NE(derive_seed({1, 2}), derive_seed({2, 1}));
  EXPECT_EQ(derive_seed({1, 2}), derive_seed({1, 2}));
}

TEST(Rng, HashComponentStable) {
  EXPECT_EQ(hash_component("abc"), hash_component("abc"));
  EXPECT_NE(hash_component("abc"), hash_component("abd"));
}

}  // namespace
}  // namespace h3cdn::util
