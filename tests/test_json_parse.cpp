#include "util/json_parse.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace h3cdn::util {
namespace {

JsonValue must_parse(std::string_view text) {
  JsonParseError error;
  auto v = parse_json(text, &error);
  EXPECT_TRUE(v.has_value()) << error.message << " at " << error.offset;
  return v.value_or(JsonValue{});
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(must_parse("null").is_null());
  EXPECT_EQ(must_parse("true").as_bool(), true);
  EXPECT_EQ(must_parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(must_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(must_parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(must_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(must_parse("{}").as_object().empty());
  EXPECT_TRUE(must_parse("[]").as_array().empty());
}

TEST(JsonParse, NestedDocument) {
  const auto v = must_parse(R"({"a":[1,{"b":"x"},null],"c":{"d":true}})");
  const auto& a = v.find("a")->as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_EQ(a[1].find("b")->as_string(), "x");
  EXPECT_TRUE(a[2].is_null());
  EXPECT_TRUE(v.find("c")->bool_or("d", false));
}

TEST(JsonParse, WhitespaceTolerated) {
  const auto v = must_parse("  {\n \"k\" :\t[ 1 , 2 ]\r\n} ");
  EXPECT_EQ(v.find("k")->as_array().size(), 2u);
}

TEST(JsonParse, StringEscapes) {
  const auto v = must_parse(R"("a\"b\\c\ndA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\ndA");
}

TEST(JsonParse, UnicodeEscapeUtf8) {
  EXPECT_EQ(must_parse(R"("é")").as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(must_parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, TypedGettersWithDefaults) {
  const auto v = must_parse(R"({"n":5,"s":"x","b":true})");
  EXPECT_DOUBLE_EQ(v.number_or("n", -1), 5.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", -1), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("s", -1), -1.0);  // wrong type -> default
  EXPECT_EQ(v.string_or("s", "d"), "x");
  EXPECT_EQ(v.string_or("n", "d"), "d");
  EXPECT_TRUE(v.bool_or("b", false));
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "01x", "\"unterminated",
                          "[1] trailing", "{\"a\":1,}", "nan"}) {
    JsonParseError error;
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.message.empty()) << bad;
  }
}

TEST(JsonParse, RoundTripWithWriter) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "h3cdn");
  w.kv("count", 325);
  w.kv("ratio", 0.384);
  w.kv("flag", true);
  w.key("tags").begin_array().value("cdn").value("quic").end_array();
  w.key("nested").begin_object().kv("x", -1).end_object();
  w.end_object();

  const auto v = must_parse(w.str());
  EXPECT_EQ(v.string_or("name", ""), "h3cdn");
  EXPECT_DOUBLE_EQ(v.number_or("count", 0), 325.0);
  EXPECT_NEAR(v.number_or("ratio", 0), 0.384, 1e-9);
  EXPECT_TRUE(v.bool_or("flag", false));
  EXPECT_EQ(v.find("tags")->as_array()[1].as_string(), "quic");
  EXPECT_DOUBLE_EQ(v.find("nested")->number_or("x", 0), -1.0);
}

TEST(JsonParse, ErrorOffsetsPointAtProblem) {
  JsonParseError error;
  EXPECT_FALSE(parse_json("[1, 2, oops]", &error).has_value());
  EXPECT_GE(error.offset, 6u);
}

TEST(JsonParse, DeepNesting) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "[";
  text += "7";
  for (int i = 0; i < 100; ++i) text += "]";
  const JsonValue* v = new JsonValue(must_parse(text));
  const JsonValue* cur = v;
  for (int i = 0; i < 100; ++i) cur = &cur->as_array()[0];
  EXPECT_DOUBLE_EQ(cur->as_number(), 7.0);
  delete v;
}

}  // namespace
}  // namespace h3cdn::util
