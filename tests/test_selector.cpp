#include "core/selector.h"

#include <gtest/gtest.h>

namespace h3cdn::core {
namespace {

using http::HttpVersion;

SelectorConfig fast_config() {
  SelectorConfig c;
  c.min_observations = 2;
  c.explore_rate = 0.0;  // deterministic tests
  return c;
}

TEST(Selector, NoDataNoRecommendation) {
  AdaptiveProtocolSelector s(fast_config(), util::Rng(1));
  EXPECT_FALSE(s.recommend("a.example").has_value());
}

TEST(Selector, PrefersFasterProtocol) {
  AdaptiveProtocolSelector s(fast_config(), util::Rng(1));
  for (int i = 0; i < 3; ++i) {
    s.observe("a.example", HttpVersion::H2, 100.0);
    s.observe("a.example", HttpVersion::H3, 60.0);
  }
  EXPECT_EQ(s.recommend("a.example"), HttpVersion::H3);
}

TEST(Selector, SwitchesToH2WhenClearlyFaster) {
  AdaptiveProtocolSelector s(fast_config(), util::Rng(1));
  for (int i = 0; i < 3; ++i) {
    s.observe("a.example", HttpVersion::H2, 50.0);
    s.observe("a.example", HttpVersion::H3, 90.0);
  }
  EXPECT_EQ(s.recommend("a.example"), HttpVersion::H2);
}

TEST(Selector, HysteresisKeepsH3OnTies) {
  SelectorConfig c = fast_config();
  c.switch_margin = 1.10;
  AdaptiveProtocolSelector s(c, util::Rng(1));
  for (int i = 0; i < 3; ++i) {
    s.observe("a.example", HttpVersion::H2, 95.0);  // <10% better than H3
    s.observe("a.example", HttpVersion::H3, 100.0);
  }
  EXPECT_EQ(s.recommend("a.example"), HttpVersion::H3);
}

TEST(Selector, ExploresUnobservedArm) {
  AdaptiveProtocolSelector s(fast_config(), util::Rng(1));
  for (int i = 0; i < 5; ++i) s.observe("a.example", HttpVersion::H2, 80.0);
  // H3 never observed: the selector must probe it.
  EXPECT_EQ(s.recommend("a.example"), HttpVersion::H3);
  EXPECT_GT(s.explorations(), 0u);
}

TEST(Selector, EwmaTracksShiftingConditions) {
  SelectorConfig c = fast_config();
  c.ewma_alpha = 0.5;
  AdaptiveProtocolSelector s(c, util::Rng(1));
  for (int i = 0; i < 3; ++i) {
    s.observe("a.example", HttpVersion::H2, 60.0);
    s.observe("a.example", HttpVersion::H3, 40.0);
  }
  EXPECT_EQ(s.recommend("a.example"), HttpVersion::H3);
  // Network degrades for H3 (e.g. UDP throttling appears).
  for (int i = 0; i < 8; ++i) s.observe("a.example", HttpVersion::H3, 200.0);
  EXPECT_EQ(s.recommend("a.example"), HttpVersion::H2);
}

TEST(Selector, PerOriginIndependence) {
  AdaptiveProtocolSelector s(fast_config(), util::Rng(1));
  for (int i = 0; i < 3; ++i) {
    s.observe("fast-h3.example", HttpVersion::H2, 100.0);
    s.observe("fast-h3.example", HttpVersion::H3, 50.0);
    s.observe("fast-h2.example", HttpVersion::H2, 50.0);
    s.observe("fast-h2.example", HttpVersion::H3, 100.0);
  }
  EXPECT_EQ(s.recommend("fast-h3.example"), HttpVersion::H3);
  EXPECT_EQ(s.recommend("fast-h2.example"), HttpVersion::H2);
}

TEST(Selector, H1ObservationsIgnored) {
  AdaptiveProtocolSelector s(fast_config(), util::Rng(1));
  for (int i = 0; i < 10; ++i) s.observe("a.example", HttpVersion::H1_1, 10.0);
  EXPECT_FALSE(s.estimate("a.example", HttpVersion::H2).has_value());
}

TEST(Selector, EstimateExposesEwma) {
  AdaptiveProtocolSelector s(fast_config(), util::Rng(1));
  s.observe("a.example", HttpVersion::H3, 100.0);
  EXPECT_DOUBLE_EQ(*s.estimate("a.example", HttpVersion::H3), 100.0);
  s.observe("a.example", HttpVersion::H3, 0.0);
  EXPECT_NEAR(*s.estimate("a.example", HttpVersion::H3), 70.0, 1e-9);  // alpha 0.3
}

TEST(Selector, ResetForgetsEverything) {
  AdaptiveProtocolSelector s(fast_config(), util::Rng(1));
  s.observe("a.example", HttpVersion::H3, 100.0);
  s.reset();
  EXPECT_FALSE(s.estimate("a.example", HttpVersion::H3).has_value());
  EXPECT_EQ(s.decisions(), 0u);
}

}  // namespace
}  // namespace h3cdn::core
