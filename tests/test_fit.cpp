#include "util/fit.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace h3cdn::util {
namespace {

TEST(Fit, ExactLine) {
  const auto f = fit_line({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_EQ(f.n, 4u);
}

TEST(Fit, ConstantXGivesZeroSlope) {
  const auto f = fit_line({2, 2, 2}, {1, 5, 9});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 5.0);
}

TEST(Fit, EmptyInput) {
  const auto f = fit_line({}, {});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_EQ(f.n, 0u);
}

TEST(Fit, NoisyLineRecoversSlope) {
  Rng rng(42);
  std::vector<double> xs, ys;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0, 100);
    xs.push_back(x);
    ys.push_back(1.5 * x + 20 + rng.normal(0, 10));
  }
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 1.5, 0.05);
  EXPECT_NEAR(f.intercept, 20.0, 2.5);
  EXPECT_GT(f.r2, 0.9);
}

TEST(Fit, BinnedFitMatchesOnCleanData) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const auto f = fit_line_binned(xs, ys, 10);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(f.intercept, -7.0, 1e-9);
}

TEST(Fit, BinnedFitRobustToOutliers) {
  Rng rng(1);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 50);
    double y = 2.0 * x;
    if (i % 50 == 0) y += 500;  // sparse heavy outliers
    xs.push_back(x);
    ys.push_back(y);
  }
  const auto plain = fit_line(xs, ys);
  const auto binned = fit_line_binned(xs, ys, 8);
  EXPECT_NEAR(binned.slope, 2.0, 0.8);
  EXPECT_NEAR(plain.slope, 2.0, 1.0);  // sanity: data not pathological
}

TEST(Fit, BinnedFallsBackForTinySamples) {
  const auto f = fit_line_binned({1, 2}, {2, 4}, 8);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

}  // namespace
}  // namespace h3cdn::util
