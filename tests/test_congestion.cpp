#include "transport/congestion.h"

#include <gtest/gtest.h>

namespace h3cdn::transport {
namespace {

TEST(Congestion, StartsAtInitialWindow) {
  CongestionController cc;
  EXPECT_EQ(cc.cwnd(), 10u);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(Congestion, SlowStartDoublesPerRoundTrip) {
  CongestionController cc;
  // One ack per in-flight packet == one round trip.
  for (int i = 0; i < 10; ++i) cc.on_ack(msec(1));
  EXPECT_EQ(cc.cwnd(), 20u);
  for (int i = 0; i < 20; ++i) cc.on_ack(msec(2));
  EXPECT_EQ(cc.cwnd(), 40u);
}

TEST(Congestion, LossHalvesWindowNewReno) {
  CongestionController cc;
  for (int i = 0; i < 30; ++i) cc.on_ack(msec(1));  // cwnd 40
  cc.on_loss(msec(2), msec(3));
  EXPECT_EQ(cc.cwnd(), 20u);
  EXPECT_FALSE(cc.in_slow_start());
  EXPECT_EQ(cc.loss_episodes(), 1u);
}

TEST(Congestion, OneReductionPerRecoveryEpisode) {
  CongestionController cc;
  for (int i = 0; i < 30; ++i) cc.on_ack(msec(1));
  cc.on_loss(msec(2), msec(5));
  const auto after_first = cc.cwnd();
  // Losses of packets sent before recovery began do not re-reduce.
  cc.on_loss(msec(3), msec(6));
  cc.on_loss(msec(4), msec(6));
  EXPECT_EQ(cc.cwnd(), after_first);
  EXPECT_EQ(cc.loss_episodes(), 1u);
  // A packet sent after recovery started signals fresh congestion.
  cc.on_loss(msec(7), msec(8));
  EXPECT_LT(cc.cwnd(), after_first);
}

TEST(Congestion, RtoCollapsesToMinWindow) {
  CcConfig cfg;
  cfg.min_cwnd = 2;
  CongestionController cc(cfg);
  for (int i = 0; i < 50; ++i) cc.on_ack(msec(1));
  cc.on_rto(msec(2));
  EXPECT_EQ(cc.cwnd(), 2u);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(Congestion, CongestionAvoidanceGrowsLinearly) {
  CongestionController cc;
  for (int i = 0; i < 30; ++i) cc.on_ack(msec(1));
  cc.on_loss(msec(2), msec(3));  // cwnd 20, ssthresh 20 -> CA
  const auto base = cc.cwnd();
  // Two windows of acks add ~2 packets (1/cwnd growth per ack).
  for (std::size_t i = 0; i < 2 * base + 2; ++i) cc.on_ack(msec(4));
  EXPECT_GE(cc.cwnd(), base + 1);
  EXPECT_LE(cc.cwnd(), base + 3);
}

TEST(Congestion, NeverBelowMinNorAboveMax) {
  CcConfig cfg;
  cfg.min_cwnd = 3;
  cfg.max_cwnd = 50;
  CongestionController cc(cfg);
  for (int i = 0; i < 10000; ++i) cc.on_ack(msec(1));
  EXPECT_EQ(cc.cwnd(), 50u);
  for (int i = 0; i < 20; ++i) cc.on_rto(msec(2 + i));
  EXPECT_EQ(cc.cwnd(), 3u);
}

TEST(Congestion, CubicRecoversTowardWmax) {
  CcConfig cfg;
  cfg.algorithm = CcAlgorithm::Cubic;
  CongestionController cc(cfg);
  for (int i = 0; i < 100; ++i) cc.on_ack(msec(1));  // grow in slow start
  const auto before = cc.cwnd();
  cc.on_loss(msec(1), msec(2));
  EXPECT_LT(cc.cwnd(), before);
  // After enough time/acks, CUBIC climbs back toward the previous maximum.
  for (int t = 0; t < 5000; ++t) cc.on_ack(msec(3) + msec(t));
  EXPECT_GE(cc.cwnd(), before * 7 / 10);
}

TEST(Congestion, CubicReducesByBeta) {
  CcConfig cfg;
  cfg.algorithm = CcAlgorithm::Cubic;
  CongestionController cc(cfg);
  for (int i = 0; i < 90; ++i) cc.on_ack(msec(1));  // cwnd 100
  const double before = static_cast<double>(cc.cwnd());
  cc.on_loss(msec(1), msec(2));
  EXPECT_NEAR(static_cast<double>(cc.cwnd()), before * 0.7, 1.0);
}

}  // namespace
}  // namespace h3cdn::transport
