// Stream prioritization: mature H2 scheduling vs coarse 2022-era H3 urgency.
#include <gtest/gtest.h>

#include "net/path.h"
#include "sim/simulator.h"
#include "transport/connection.h"

namespace h3cdn::transport {
namespace {

using tls::HandshakeMode;
using tls::TlsVersion;
using tls::TransportKind;

struct Run {
  std::vector<double> completion_ms;  // indexed by submission order
};

Run run_with_priorities(bool respect, int coarseness, const std::vector<int>& priorities,
                        std::size_t bytes = 60'000) {
  sim::Simulator sim;
  net::PathConfig pc;
  pc.rtt = msec(20);
  pc.bandwidth_bps = 50e6;
  net::NetPath path(sim, pc, util::Rng(5));
  TransportConfig config;
  config.respect_priorities = respect;
  config.priority_coarseness = coarseness;
  auto conn = Connection::create(sim, path, TransportKind::Tcp, TlsVersion::Tls13,
                                 HandshakeMode::Fresh, util::Rng(6), config);
  conn->connect([](TimePoint) {});
  Run r;
  r.completion_ms.resize(priorities.size(), -1);
  for (std::size_t i = 0; i < priorities.size(); ++i) {
    FetchCallbacks cbs;
    cbs.on_complete = [&r, i](TimePoint t) { r.completion_ms[i] = to_ms(t); };
    conn->fetch(500, bytes, msec(1), std::move(cbs), priorities[i]);
  }
  sim.run();
  return r;
}

TEST(Priorities, UrgentStreamsFinishFirst) {
  // Submit low-priority (image-like) streams first, then one urgent stream:
  // with priorities on, the urgent one overtakes them all.
  const std::vector<int> prios{4, 4, 4, 4, 0};
  const auto r = run_with_priorities(true, 1, prios);
  for (int i = 0; i < 4; ++i) EXPECT_LT(r.completion_ms[4], r.completion_ms[i]);
}

TEST(Priorities, RoundRobinWithoutPriorities) {
  const std::vector<int> prios{4, 4, 4, 4, 0};
  const auto r = run_with_priorities(false, 1, prios);
  // Fair interleave: the late urgent stream cannot finish first.
  int earlier = 0;
  for (int i = 0; i < 4; ++i) earlier += r.completion_ms[i] < r.completion_ms[4];
  EXPECT_GE(earlier, 3);
}

TEST(Priorities, SamePriorityStreamsInterleaveFairly) {
  const std::vector<int> prios{2, 2, 2, 2};
  const auto r = run_with_priorities(true, 1, prios);
  const double spread = *std::max_element(r.completion_ms.begin(), r.completion_ms.end()) -
                        *std::min_element(r.completion_ms.begin(), r.completion_ms.end());
  EXPECT_LT(spread, 15.0);  // near-simultaneous completion
}

TEST(Priorities, CoarseBucketsMergeAdjacentLevels) {
  // With coarseness 3, priorities 0..2 share a bucket: a priority-2 stream
  // is no longer preempted by priority-0 ones.
  const std::vector<int> prios{0, 0, 0, 2};
  const auto fine = run_with_priorities(true, 1, prios);
  const auto coarse = run_with_priorities(true, 3, prios);
  // Fine: stream 3 strictly last, far behind the others. Coarse: comparable.
  const double fine_gap = fine.completion_ms[3] - fine.completion_ms[0];
  const double coarse_gap = coarse.completion_ms[3] - coarse.completion_ms[0];
  EXPECT_GT(fine_gap, coarse_gap + 5.0);
}

TEST(Priorities, StrictPriorityStillCompletesEverything) {
  const std::vector<int> prios{0, 1, 2, 3, 4, 5, 5, 5};
  const auto r = run_with_priorities(true, 1, prios);
  for (double c : r.completion_ms) EXPECT_GT(c, 0.0);
  // Completion order follows priority order.
  for (std::size_t i = 1; i < 6; ++i) EXPECT_GT(r.completion_ms[i], r.completion_ms[i - 1]);
}

}  // namespace
}  // namespace h3cdn::transport
