// Integration tests of the whole measurement pipeline at reduced scale.
#include "core/study.h"

#include <gtest/gtest.h>

#include "core/experiments.h"

namespace h3cdn::core {
namespace {

StudyConfig small_config(std::size_t sites = 10, bool consecutive = false) {
  StudyConfig cfg;
  cfg.workload.site_count = sites;
  cfg.max_sites = sites;
  cfg.probes_per_vantage = 1;
  cfg.vantages = {browser::default_vantage_points()[0]};
  cfg.consecutive = consecutive;
  return cfg;
}

TEST(Study, ProducesTwoVisitsPerSitePerProbe) {
  const auto result = MeasurementStudy(small_config(6)).run();
  EXPECT_EQ(result.visits.size(), 12u);
  EXPECT_EQ(result.site_count(), 6u);
  const auto pairs = result.pairs();
  EXPECT_EQ(pairs.size(), 6u);
  for (const auto& p : pairs) {
    ASSERT_NE(p.h2, nullptr);
    ASSERT_NE(p.h3, nullptr);
    EXPECT_FALSE(p.h2->h3_enabled);
    EXPECT_TRUE(p.h3->h3_enabled);
    EXPECT_EQ(p.h2->entries.size(), p.h3->entries.size());
  }
}

TEST(Study, MultiVantageMultiProbe) {
  StudyConfig cfg = small_config(3);
  cfg.vantages = browser::default_vantage_points();
  cfg.probes_per_vantage = 2;
  const auto result = MeasurementStudy(cfg).run();
  EXPECT_EQ(result.visits.size(), 3u * 3u * 2u * 2u);
  EXPECT_EQ(result.pairs().size(), 3u * 3u * 2u);
}

TEST(Study, DeterministicAcrossRuns) {
  const auto a = MeasurementStudy(small_config(4)).run();
  const auto b = MeasurementStudy(small_config(4)).run();
  ASSERT_EQ(a.visits.size(), b.visits.size());
  for (std::size_t i = 0; i < a.visits.size(); ++i) {
    EXPECT_EQ(a.visits[i].har.page_load_time, b.visits[i].har.page_load_time);
    EXPECT_EQ(a.visits[i].har.connections_created, b.visits[i].har.connections_created);
  }
}

TEST(Study, SharedWorkloadAcrossStudies) {
  auto workload = std::make_shared<web::Workload>(web::generate_workload([] {
    web::WorkloadConfig cfg;
    cfg.site_count = 5;
    return cfg;
  }()));
  const auto a = MeasurementStudy(small_config(5)).run(workload);
  EXPECT_EQ(a.workload.get(), workload.get());
  EXPECT_EQ(a.pairs().size(), 5u);
}

TEST(Study, NonConsecutiveHasNoResumption) {
  const auto result = MeasurementStudy(small_config(5)).run();
  for (const auto& v : result.visits) EXPECT_EQ(v.har.resumed_connections, 0u);
}

TEST(Study, ConsecutiveModeResumesAcrossPages) {
  const auto result = MeasurementStudy(small_config(6, /*consecutive=*/true)).run();
  // The first page of a probe run has no tickets; later pages must resume.
  std::uint64_t total_resumed = 0;
  for (const auto& v : result.visits) {
    if (v.site_index > 0) total_resumed += v.har.resumed_connections;
  }
  EXPECT_GT(total_resumed, 0u);
}

TEST(Study, ConsecutiveResumptionGrowsOverTheSequence) {
  const auto result = MeasurementStudy(small_config(8, true)).run();
  double early = 0, late = 0;
  for (const auto& v : result.visits) {
    if (!v.h3_enabled) continue;
    if (v.site_index < 2) early += static_cast<double>(v.har.resumed_connections);
    if (v.site_index >= 6) late += static_cast<double>(v.har.resumed_connections);
  }
  EXPECT_GT(late, early);
}

TEST(Study, MaxSitesTruncates) {
  StudyConfig cfg = small_config(10);
  cfg.workload.site_count = 10;
  cfg.max_sites = 4;
  const auto result = MeasurementStudy(cfg).run();
  EXPECT_EQ(result.pairs().size(), 4u);
}

TEST(Study, LossRatePropagatesToVisits) {
  StudyConfig clean = small_config(3);
  StudyConfig lossy = small_config(3);
  lossy.loss_rate = 0.02;
  const auto a = MeasurementStudy(clean).run();
  const auto b = MeasurementStudy(lossy).run();
  double clean_plt = 0, lossy_plt = 0;
  for (const auto& v : a.visits) clean_plt += to_ms(v.har.page_load_time);
  for (const auto& v : b.visits) lossy_plt += to_ms(v.har.page_load_time);
  EXPECT_GT(lossy_plt, clean_plt);
}

TEST(Study, SitePairMetricsAveragesProbes) {
  StudyConfig cfg = small_config(4);
  cfg.probes_per_vantage = 2;
  const auto result = MeasurementStudy(cfg).run();
  const auto sites = site_pair_metrics(result);
  EXPECT_EQ(sites.size(), 4u);
  for (const auto& s : sites) {
    EXPECT_GT(s.cdn_resources, 0.0);
    EXPECT_GE(s.reused_h2, 0.0);
    EXPECT_FALSE(s.cdn_domains.empty());
  }
}

}  // namespace
}  // namespace h3cdn::core
