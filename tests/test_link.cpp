#include "net/link.h"

#include <gtest/gtest.h>

#include "net/path.h"

namespace h3cdn::net {
namespace {

LinkConfig fast_link() {
  LinkConfig c;
  c.latency = msec(10);
  c.bandwidth_bps = 8e6;  // 1 byte/us
  c.loss_rate = 0.0;
  return c;
}

TEST(Link, DeliversAfterLatencyPlusSerialization) {
  sim::Simulator sim;
  Link link(sim, fast_link(), util::Rng(1));
  TimePoint at{-1};
  link.transmit(1000, [&] { at = sim.now(); });
  sim.run();
  // 1000 bytes at 1 B/us = 1ms serialization + 10ms latency.
  EXPECT_EQ(at, msec(11));
}

TEST(Link, SerializationQueuesBackToBack) {
  sim::Simulator sim;
  Link link(sim, fast_link(), util::Rng(1));
  std::vector<TimePoint> at;
  for (int i = 0; i < 3; ++i) link.transmit(1000, [&] { at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], msec(11));
  EXPECT_EQ(at[1], msec(12));
  EXPECT_EQ(at[2], msec(13));
}

TEST(Link, InfiniteBandwidthSkipsSerialization) {
  sim::Simulator sim;
  LinkConfig c = fast_link();
  c.bandwidth_bps = 0;  // infinite
  Link link(sim, c, util::Rng(1));
  TimePoint at{-1};
  link.transmit(1'000'000, [&] { at = sim.now(); });
  sim.run();
  EXPECT_EQ(at, msec(10));
}

TEST(Link, LossRateStatistics) {
  sim::Simulator sim;
  LinkConfig c = fast_link();
  c.loss_rate = 0.2;
  c.bandwidth_bps = 0;
  Link link(sim, c, util::Rng(7));
  int delivered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) link.transmit(100, [&] { ++delivered; });
  sim.run();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.8, 0.02);
  EXPECT_EQ(link.stats().packets_offered, static_cast<std::uint64_t>(n));
  EXPECT_EQ(link.stats().packets_delivered + link.stats().packets_dropped,
            static_cast<std::uint64_t>(n));
}

TEST(Link, LosslessFlagBypassesLoss) {
  sim::Simulator sim;
  LinkConfig c = fast_link();
  c.loss_rate = 1.0;
  c.bandwidth_bps = 0;
  Link link(sim, c, util::Rng(7));
  int delivered = 0;
  for (int i = 0; i < 100; ++i) link.transmit(100, [&] { ++delivered; }, /*lossless=*/true);
  sim.run();
  EXPECT_EQ(delivered, 100);
}

TEST(Link, FullLossDeliversNothing) {
  sim::Simulator sim;
  LinkConfig c = fast_link();
  c.loss_rate = 1.0;
  Link link(sim, c, util::Rng(7));
  int delivered = 0;
  for (int i = 0; i < 50; ++i) link.transmit(100, [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.stats().packets_dropped, 50u);
}

TEST(Link, JitterNeverReorders) {
  sim::Simulator sim;
  LinkConfig c = fast_link();
  c.jitter_max = msec(5);
  Link link(sim, c, util::Rng(3));
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) link.transmit(500, [&order, i] { order.push_back(i); });
  sim.run();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Link, JitterDelaysWithinBound) {
  sim::Simulator sim;
  LinkConfig c = fast_link();
  c.jitter_max = msec(5);
  c.bandwidth_bps = 0;
  Link link(sim, c, util::Rng(3));
  TimePoint at{-1};
  link.transmit(100, [&] { at = sim.now(); });
  sim.run();
  EXPECT_GE(at, msec(10));
  EXPECT_LE(at, msec(15));
}

TEST(Link, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Simulator sim;
    LinkConfig c = fast_link();
    c.loss_rate = 0.1;
    c.jitter_max = msec(2);
    Link link(sim, c, util::Rng(99));
    std::vector<std::int64_t> arrivals;
    for (int i = 0; i < 500; ++i) link.transmit(700, [&] { arrivals.push_back(sim.now().count()); });
    sim.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Link, ReseedJitterChangesOnlyJitter) {
  auto run_once = [](std::uint64_t salt) {
    sim::Simulator sim;
    LinkConfig c = fast_link();
    c.loss_rate = 0.3;
    Link link(sim, c, util::Rng(99));
    link.reseed_jitter(salt);
    int delivered = 0;
    for (int i = 0; i < 2000; ++i) link.transmit(700, [&] { ++delivered; });
    sim.run();
    return delivered;
  };
  // Same loss stream regardless of jitter salt.
  EXPECT_EQ(run_once(1), run_once(2));
}

TEST(Link, SetLossRateApplies) {
  sim::Simulator sim;
  Link link(sim, fast_link(), util::Rng(5));
  link.set_loss_rate(1.0);
  int delivered = 0;
  link.transmit(100, [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetPath, RttSplitAcrossDirections) {
  sim::Simulator sim;
  PathConfig pc;
  pc.rtt = msec(31);  // odd on purpose
  pc.bandwidth_bps = 0;
  NetPath path(sim, pc, util::Rng(1));
  TimePoint up{-1}, down{-1};
  path.send_up(100, [&] { up = sim.now(); });
  sim.run();
  path.send_down(100, [&] { down = sim.now(); });
  sim.run();
  EXPECT_EQ((up + (down - up)).count(), msec(31).count());  // total propagation == rtt
}

TEST(NetPath, AccessLinkChainsBothSerializers) {
  sim::Simulator sim;
  PathConfig pc;
  pc.rtt = msec(20);
  pc.bandwidth_bps = 8e6;
  NetPath path(sim, pc, util::Rng(1));
  LinkConfig ac;
  ac.latency = msec(2);
  ac.bandwidth_bps = 8e6;
  Link access_up(sim, ac, util::Rng(2));
  Link access_down(sim, ac, util::Rng(3));
  path.attach_access(&access_up, &access_down);

  TimePoint at{-1};
  path.send_down(1000, [&] { at = sim.now(); });
  sim.run();
  // path: 1ms serialize + 10ms latency; access: 1ms serialize + 2ms latency.
  EXPECT_EQ(at, msec(14));
  EXPECT_EQ(access_down.stats().packets_delivered, 1u);
}

TEST(NetPath, AccessLossAppliesToChainedPackets) {
  sim::Simulator sim;
  PathConfig pc;
  pc.rtt = msec(20);
  NetPath path(sim, pc, util::Rng(1));
  LinkConfig ac;
  ac.loss_rate = 1.0;
  Link access_up(sim, ac, util::Rng(2));
  Link access_down(sim, ac, util::Rng(3));
  path.attach_access(&access_up, &access_down);
  int delivered = 0;
  path.send_up(100, [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 0);
}

}  // namespace
}  // namespace h3cdn::net
