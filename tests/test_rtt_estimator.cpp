#include "transport/rtt_estimator.h"

#include <gtest/gtest.h>

namespace h3cdn::transport {
namespace {

TEST(RttEstimator, UsesInitialRtoBeforeSamples) {
  RttEstimator est(msec(300));
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), msec(300));
}

TEST(RttEstimator, FirstSampleSetsSrtt) {
  RttEstimator est(msec(300));
  est.sample(msec(40));
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), msec(40));
  // RFC 6298: RTO = srtt + max(G, 4*rttvar) = 40 + 4*20 = 120ms.
  EXPECT_EQ(est.rto(), msec(120));
}

TEST(RttEstimator, SmoothsTowardStableRtt) {
  RttEstimator est(msec(300));
  for (int i = 0; i < 50; ++i) est.sample(msec(30));
  EXPECT_EQ(est.srtt(), msec(30));
  // With zero variance, RTO converges to srtt + granularity, clamped by min.
  EXPECT_LE(est.rto(), msec(60));
}

TEST(RttEstimator, RtoRespectsMinimum) {
  RttEstimator est(msec(300), msec(200));
  for (int i = 0; i < 50; ++i) est.sample(msec(10));
  EXPECT_EQ(est.rto(), msec(200));
}

TEST(RttEstimator, RtoRespectsMaximum) {
  RttEstimator est(msec(300), msec(50), msec(500));
  est.sample(sec(2));
  EXPECT_EQ(est.rto(), msec(500));
}

TEST(RttEstimator, BackoffDoubles) {
  RttEstimator est(msec(100), msec(50), sec(100));
  est.sample(msec(50));
  const auto base = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto(), Duration{base.count() * 2});
  est.backoff();
  EXPECT_EQ(est.rto(), Duration{base.count() * 4});
  est.reset_backoff();
  EXPECT_EQ(est.rto(), base);
}

TEST(RttEstimator, BackoffSaturatesAtMax) {
  RttEstimator est(msec(100), msec(50), msec(400));
  est.sample(msec(100));
  for (int i = 0; i < 30; ++i) est.backoff();
  EXPECT_EQ(est.rto(), msec(400));
}

TEST(RttEstimator, ExtraTermAddsAckDelay) {
  RttEstimator tcp(msec(300), msec(1), sec(10), Duration::zero());
  RttEstimator quic(msec(300), msec(1), sec(10), msec(25));
  tcp.sample(msec(40));
  quic.sample(msec(40));
  EXPECT_EQ(quic.rto() - tcp.rto(), msec(25));
}

TEST(RttEstimator, VarianceTracksJitter) {
  RttEstimator est(msec(300), msec(1));
  for (int i = 0; i < 100; ++i) est.sample(i % 2 == 0 ? msec(20) : msec(60));
  // rttvar should keep RTO well above the mean RTT.
  EXPECT_GT(est.rto(), msec(60));
}

}  // namespace
}  // namespace h3cdn::transport
