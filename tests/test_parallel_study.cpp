// The determinism contract of the shard-parallel study engine: for a fixed
// seed, every exported artifact must be byte-identical at any --jobs value
// (docs/PARALLELISM.md). These tests pin the contract at jobs=1 vs jobs=4.
#include "core/study.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.h"
#include "core/export.h"
#include "core/observability.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"
#include "obs/slo.h"
#include "obs/timeline.h"
#include "obs/waterfall.h"
#include "tls/ticket_store.h"

namespace h3cdn::core {
namespace {

StudyConfig parallel_config(int jobs) {
  StudyConfig cfg;
  cfg.workload.site_count = 3;
  cfg.max_sites = 3;
  cfg.vantages = browser::default_vantage_points();  // 3 vantages
  cfg.probes_per_vantage = 2;                        // => 12 shards
  cfg.consecutive = true;  // exercise the per-shard ticket store
  cfg.jobs = jobs;
  return cfg;
}

TEST(ParallelStudy, VisitsAreIdenticalAcrossJobCounts) {
  const auto one = MeasurementStudy(parallel_config(1)).run();
  const auto four = MeasurementStudy(parallel_config(4)).run();
  ASSERT_EQ(one.visits.size(), four.visits.size());
  for (std::size_t i = 0; i < one.visits.size(); ++i) {
    const auto& a = one.visits[i];
    const auto& b = four.visits[i];
    EXPECT_EQ(a.vantage, b.vantage);
    EXPECT_EQ(a.probe, b.probe);
    EXPECT_EQ(a.site_index, b.site_index);
    EXPECT_EQ(a.h3_enabled, b.h3_enabled);
    EXPECT_EQ(a.har.page_load_time, b.har.page_load_time);
    EXPECT_EQ(a.har.connections_created, b.har.connections_created);
    EXPECT_EQ(a.har.resumed_connections, b.har.resumed_connections);
    EXPECT_EQ(a.har.entries.size(), b.har.entries.size());
  }
}

TEST(ParallelStudy, AggregatesAndJsonExportAreIdenticalAcrossJobCounts) {
  const auto one = MeasurementStudy(parallel_config(1)).run();
  const auto four = MeasurementStudy(parallel_config(4)).run();
  // Byte-for-byte on the exports the paper tables are derived from.
  EXPECT_EQ(summary_to_json(one), summary_to_json(four));
  EXPECT_EQ(table2_to_csv(compute_table2(one)), table2_to_csv(compute_table2(four)));
  EXPECT_EQ(fig6_to_csv(compute_fig6(one)), fig6_to_csv(compute_fig6(four)));
}

TEST(ParallelStudy, ObservabilityArtifactsAreIdenticalAcrossJobCounts) {
  RunObservability obs_one;
  RunObservability obs_four;
  StudyConfig one_cfg = parallel_config(1);
  StudyConfig four_cfg = parallel_config(4);
  one_cfg.observability = &obs_one;
  four_cfg.observability = &obs_four;
  (void)MeasurementStudy(one_cfg).run();
  (void)MeasurementStudy(four_cfg).run();

  // Merged metrics snapshot, qlog document (stable per-shard connection ids)
  // and waterfalls must not depend on thread scheduling. profile.json is
  // host wall-clock and is deliberately out of the contract.
  EXPECT_EQ(obs::metrics_to_json(obs_one.metrics()), obs::metrics_to_json(obs_four.metrics()));
  EXPECT_EQ(obs_one.traces().to_qlog_json(), obs_four.traces().to_qlog_json());
  EXPECT_EQ(obs::waterfalls_to_json(obs_one.waterfalls()),
            obs::waterfalls_to_json(obs_four.waterfalls()));
  // The critical-path attribution is derived from the waterfalls, so it must
  // inherit the same determinism — byte for byte, including H2/H3 pairing.
  EXPECT_EQ(obs::attribution_to_json(obs::attribute_pages(obs_one.waterfalls())),
            obs::attribution_to_json(obs::attribute_pages(obs_four.waterfalls())));
}

TEST(ParallelStudy, TimelineArtifactsAreIdenticalAcrossJobCounts) {
  // The time-resolved artifacts join the byte-identity contract: the
  // bucket-wise shard merge makes timeline.json/csv, slo.json, and the
  // Chrome-trace export independent of thread scheduling.
  RunObservability obs_one;
  RunObservability obs_four;
  StudyConfig one_cfg = parallel_config(1);
  StudyConfig four_cfg = parallel_config(4);
  one_cfg.observability = &obs_one;
  four_cfg.observability = &obs_four;
  (void)MeasurementStudy(one_cfg).run();
  (void)MeasurementStudy(four_cfg).run();

  EXPECT_GT(obs_one.timeline().series_count(), 0u);
  EXPECT_GT(obs_one.timeline().span_buckets(), 0);
  EXPECT_EQ(obs::timeline_to_json(obs_one.timeline()),
            obs::timeline_to_json(obs_four.timeline()));
  EXPECT_EQ(obs::timeline_to_csv(obs_one.timeline()),
            obs::timeline_to_csv(obs_four.timeline()));
  const auto slo = obs::default_slo_objectives();
  EXPECT_EQ(obs::slo_to_json(obs_one.timeline(), obs::evaluate_slos(obs_one.timeline(), slo)),
            obs::slo_to_json(obs_four.timeline(), obs::evaluate_slos(obs_four.timeline(), slo)));
  EXPECT_EQ(obs::to_chrome_trace_json(obs_one.waterfalls(), &obs_one.traces()),
            obs::to_chrome_trace_json(obs_four.waterfalls(), &obs_four.traces()));
}

TEST(ParallelStudy, DissectionIsIdenticalAcrossJobCounts) {
  const auto one = MeasurementStudy(parallel_config(1)).run();
  const auto four = MeasurementStudy(parallel_config(4)).run();
  const auto d_one = compute_plt_dissection(one);
  const std::string csv = dissection_to_csv(d_one);
  EXPECT_EQ(csv, dissection_to_csv(compute_plt_dissection(four)));

  // The provider rows are the CSV's only container-ordered section; the
  // export contract pins them to canonical sorted-by-name order so the file
  // is stable across library versions, not just across --jobs.
  std::vector<std::string> groups;
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // header
  while (std::getline(lines, line)) groups.push_back(line.substr(0, line.find(',')));
  ASSERT_EQ(groups.size(), 1 + d_one.by_vantage.size() + d_one.by_provider.size());
  for (std::size_t i = groups.size() - d_one.by_provider.size() + 1; i < groups.size(); ++i) {
    EXPECT_LT(groups[i - 1], groups[i]) << "provider rows not in canonical sorted order";
  }
}

TEST(ParallelStudy, MergedMetricsCoverEveryShard) {
  RunObservability obs;
  StudyConfig cfg = parallel_config(4);
  cfg.observability = &obs;
  const auto result = MeasurementStudy(cfg).run();
  // One waterfall per visit (no cap set) and nonzero traffic counters prove
  // every shard's sink made it into the merged run-level one.
  EXPECT_EQ(obs.waterfalls().size(), result.visits.size());
  EXPECT_GT(obs.metrics().counter("net.link.packets_offered").value(), 0u);
  EXPECT_GT(obs.metrics().counter("tls.tickets.stored").value(), 0u);
}

TEST(ParallelStudy, DefaultJobsMatchesExplicitJobs) {
  // jobs=0 (hardware concurrency) runs the same sharded path.
  const auto zero = MeasurementStudy(parallel_config(0)).run();
  const auto one = MeasurementStudy(parallel_config(1)).run();
  EXPECT_EQ(summary_to_json(zero), summary_to_json(one));
}

TEST(ParallelStudyDeathTest, TicketStoreAbortsWhenSharedAcrossThreads) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // The satellite audit's executable form: shard-local state touched from a
  // second thread must abort, not race.
  EXPECT_DEATH(
      {
        tls::SessionTicketStore store;
        store.store(tls::SessionTicket{"a.example", msec(0)});
        std::thread other([&] { (void)store.find("a.example", msec(1)); });
        other.join();
      },
      "shard-local object touched from a second thread");
}

}  // namespace
}  // namespace h3cdn::core
