#include "http/session.h"

#include <gtest/gtest.h>

#include "net/path.h"
#include "sim/simulator.h"

namespace h3cdn::http {
namespace {

struct Fixture {
  sim::Simulator sim;
  net::NetPath path;
  Fixture() : path(sim, net::PathConfig{msec(20), 100e6, 0.0, usec(0)}, util::Rng(1)) {}

  std::shared_ptr<Session> make(HttpVersion version, SessionConfig config = {},
                                tls::HandshakeMode mode = tls::HandshakeMode::Fresh) {
    const auto kind = version == HttpVersion::H3 ? tls::TransportKind::Quic
                                                 : tls::TransportKind::Tcp;
    transport::TransportConfig tc;
    tc.domain = "host.example";
    auto conn = transport::Connection::create(sim, path, kind, tls::TlsVersion::Tls13, mode,
                                              util::Rng(2), tc);
    auto session = Session::create(sim, std::move(conn), version, config);
    session->start();
    return session;
  }

  Request request(std::size_t bytes = 10'000) {
    Request r;
    r.domain = "host.example";
    r.path = "/x";
    r.response_bytes = bytes;
    r.server_think = msec(5);
    return r;
  }
};

TEST(Session, CompletesARequestWithFullTimings) {
  Fixture f;
  auto s = f.make(HttpVersion::H2);
  EntryTimings out;
  bool done = false;
  s->submit(f.request(), [&](const EntryTimings& t) {
    out = t;
    done = true;
  });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(out.version, HttpVersion::H2);
  EXPECT_GT(out.connect, Duration::zero());  // initiator carries the handshake
  EXPECT_GT(out.wait, Duration::zero());
  EXPECT_GT(out.receive, Duration::zero());
  EXPECT_TRUE(out.new_connection_initiator);
  EXPECT_FALSE(out.reused_connection);
  EXPECT_EQ(out.finished - out.started, out.blocked + out.connect + out.send + out.wait + out.receive);
}

TEST(Session, SecondEntryIsReusedConnection) {
  Fixture f;
  auto s = f.make(HttpVersion::H2);
  std::vector<EntryTimings> out;
  for (int i = 0; i < 2; ++i) {
    s->submit(f.request(), [&](const EntryTimings& t) { out.push_back(t); });
  }
  f.sim.run();
  ASSERT_EQ(out.size(), 2u);
  int initiators = out[0].new_connection_initiator + out[1].new_connection_initiator;
  EXPECT_EQ(initiators, 1);
  for (const auto& t : out) {
    if (!t.new_connection_initiator) {
      EXPECT_EQ(t.connect, Duration::zero());
      EXPECT_TRUE(t.reused_connection);
    }
  }
}

TEST(Session, H1SerializesRequests) {
  Fixture f;
  auto s = f.make(HttpVersion::H1_1);
  std::vector<EntryTimings> out;
  for (int i = 0; i < 3; ++i) {
    s->submit(f.request(50'000), [&](const EntryTimings& t) { out.push_back(t); });
  }
  EXPECT_EQ(s->in_flight(), 1u);
  EXPECT_EQ(s->queued(), 2u);
  f.sim.run();
  ASSERT_EQ(out.size(), 3u);
  // Strictly serial: each entry finishes before the next entry's first byte.
  EXPECT_LE(out[0].finished, out[1].finished - out[1].wait - out[1].receive + msec(1));
  EXPECT_GT(out[1].blocked, Duration::zero());
  EXPECT_GT(out[2].blocked, out[1].blocked);
}

TEST(Session, H2MultiplexesConcurrently) {
  Fixture f;
  auto s = f.make(HttpVersion::H2);
  std::vector<EntryTimings> out;
  for (int i = 0; i < 8; ++i) {
    s->submit(f.request(40'000), [&](const EntryTimings& t) { out.push_back(t); });
  }
  EXPECT_EQ(s->in_flight(), 8u);
  f.sim.run();
  ASSERT_EQ(out.size(), 8u);
  // Concurrent: total duration far below 8x a single transfer.
  Duration max_finish{0}, single = out[0].finished - out[0].started;
  for (const auto& t : out) max_finish = std::max(max_finish, t.finished);
  EXPECT_LT(max_finish, Duration{single.count() * 4});
}

TEST(Session, StreamLimitQueuesExcess) {
  Fixture f;
  SessionConfig config;
  config.max_concurrent_streams = 4;
  auto s = f.make(HttpVersion::H3, config);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    s->submit(f.request(), [&](const EntryTimings&) { ++done; });
  }
  EXPECT_EQ(s->in_flight(), 4u);
  EXPECT_EQ(s->queued(), 6u);
  f.sim.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(s->entries_completed(), 10u);
}

TEST(Session, QueuedEntriesAccumulateBlockedTime) {
  Fixture f;
  SessionConfig config;
  config.max_concurrent_streams = 1;
  auto s = f.make(HttpVersion::H3, config);
  std::vector<EntryTimings> out;
  for (int i = 0; i < 3; ++i) {
    s->submit(f.request(30'000), [&](const EntryTimings& t) { out.push_back(t); });
  }
  f.sim.run();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].blocked, Duration::zero());
  EXPECT_GT(out[2].blocked, out[1].blocked);
}

TEST(Session, H3RidesQuic) {
  Fixture f;
  auto s = f.make(HttpVersion::H3);
  EXPECT_EQ(s->connection().kind(), tls::TransportKind::Quic);
  EntryTimings out;
  s->submit(f.request(), [&](const EntryTimings& t) { out = t; });
  f.sim.run();
  EXPECT_EQ(out.version, HttpVersion::H3);
  // H3 initiator connect ~1 RTT, strictly below H2's 2 RTT at the same path.
  EXPECT_LT(out.connect, msec(40));
  EXPECT_GT(out.connect, msec(15));
}

TEST(Session, ZeroRttEntryHasNearZeroConnect) {
  Fixture f;
  auto s = f.make(HttpVersion::H3, {}, tls::HandshakeMode::ZeroRtt);
  EntryTimings out;
  s->submit(f.request(), [&](const EntryTimings& t) { out = t; });
  f.sim.run();
  EXPECT_TRUE(out.resumed);
  EXPECT_EQ(out.handshake_mode, tls::HandshakeMode::ZeroRtt);
  EXPECT_LT(out.connect, msec(1));
}

TEST(Session, CloseStopsFurtherCallbacks) {
  Fixture f;
  auto s = f.make(HttpVersion::H2);
  bool done = false;
  s->submit(f.request(500'000), [&](const EntryTimings&) { done = true; });
  f.sim.run_until(msec(50));
  s->close();
  f.sim.run();
  EXPECT_FALSE(done);
  EXPECT_TRUE(s->closed());
}

TEST(SessionDeath, VersionTransportMismatchAborts) {
  Fixture f;
  auto conn = transport::Connection::create(f.sim, f.path, tls::TransportKind::Tcp,
                                            tls::TlsVersion::Tls13, tls::HandshakeMode::Fresh,
                                            util::Rng(3), {});
  EXPECT_DEATH(Session::create(f.sim, conn, HttpVersion::H3), "precondition");
}

}  // namespace
}  // namespace h3cdn::http
