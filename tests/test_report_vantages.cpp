// Rendering checks for the report layer and the vantage-point presets.
#include <gtest/gtest.h>

#include <sstream>

#include "browser/environment.h"
#include "core/report.h"

namespace h3cdn {
namespace {

TEST(Vantages, DefaultThreeCloudLabSites) {
  const auto points = browser::default_vantage_points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].name, "utah");
  EXPECT_EQ(points[1].name, "wisconsin");
  EXPECT_EQ(points[2].name, "clemson");
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].rtt_scale, points[i - 1].rtt_scale);
  }
}

TEST(Vantages, GlobalPresetExtendsTheDefaults) {
  const auto points = browser::global_vantage_points();
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[3].name, "frankfurt");
  EXPECT_EQ(points[5].name, "singapore");
  // Overseas probes see substantially longer paths to US-centric edges.
  EXPECT_GT(points[3].rtt_scale, 2.0);
  EXPECT_GT(points[5].rtt_scale, points[3].rtt_scale);
}

TEST(Vantages, GlobalProbeSeesScaledRtts) {
  web::WorkloadConfig cfg;
  cfg.site_count = 2;
  const auto workload = web::generate_workload(cfg);
  sim::Simulator s1, s2;
  auto near = browser::default_vantage_points()[0];
  auto far = browser::global_vantage_points()[5];  // singapore
  far.name = near.name;                            // align seeds
  browser::Environment e1(s1, workload.universe, near, util::Rng(3));
  browser::Environment e2(s2, workload.universe, far, util::Rng(3));
  const auto r1 = e1.resolve("fonts.gstatic.com").path->base_rtt();
  const auto r2 = e2.resolve("fonts.gstatic.com").path->base_rtt();
  EXPECT_NEAR(static_cast<double>(r2.count()) / static_cast<double>(r1.count()),
              far.rtt_scale / near.rtt_scale, 0.01);
}

TEST(Report, Fig6IncludesConfidenceIntervals) {
  core::Fig6Result r;
  core::Fig6GroupRow row;
  row.group = analysis::QuartileGroup::Low;
  row.pages = 10;
  row.mean_plt_reduction_ms = 42.0;
  row.ci_lo_ms = 30.5;
  row.ci_hi_ms = 55.5;
  r.groups.push_back(row);
  std::ostringstream os;
  core::print_fig6(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("95% CI"), std::string::npos);
  EXPECT_NE(out.find("[30.5, 55.5]"), std::string::npos);
  EXPECT_NE(out.find("42.0"), std::string::npos);
}

TEST(Report, Fig9RendersSlopesPerLossRate) {
  core::Fig9Result r;
  core::Fig9Series s;
  s.loss_rate = 0.005;
  s.fit.slope = 1.42;
  s.fit.intercept = 3.0;
  s.fit.r2 = 0.9;
  s.points = {{10, 20}, {20, 45}};
  r.series.push_back(s);
  std::ostringstream os;
  core::print_fig9(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("0.5%"), std::string::npos);
  EXPECT_NE(out.find("1.42"), std::string::npos);
}

TEST(Report, Table3NamesBothGroups) {
  core::Table3Result r;
  r.high.name = "C_H (high sharing)";
  r.high.pages = 3;
  r.high.avg_providers = 4.2;
  r.low.name = "C_L (low sharing)";
  r.low.pages = 5;
  r.low.avg_providers = 2.5;
  r.vector_dimension = 58;
  std::ostringstream os;
  core::print_table3(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("C_H"), std::string::npos);
  EXPECT_NE(out.find("C_L"), std::string::npos);
  EXPECT_NE(out.find("58-dim"), std::string::npos);
}

TEST(Report, Fig8PrintsConditionedDecomposition) {
  core::Fig8Result r;
  r.mean_reduction_origin_h3_pages = 120.0;
  r.mean_reduction_origin_h2_pages = 15.0;
  r.corr_reduction_origin_h3_pages = 0.15;
  std::ostringstream os;
  core::print_fig8(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("conditioned on the origin protocol"), std::string::npos);
  EXPECT_NE(out.find("120.0"), std::string::npos);
}

}  // namespace
}  // namespace h3cdn
