#include "analysis/bootstrap.h"

#include <gtest/gtest.h>

namespace h3cdn::analysis {
namespace {

TEST(Bootstrap, EmptySampleYieldsZeroes) {
  const auto ci = bootstrap_mean_ci({}, 0.95, 100, util::Rng(1));
  EXPECT_EQ(ci.mean, 0.0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 0.0);
}

TEST(Bootstrap, SingletonCollapsesToPoint) {
  const auto ci = bootstrap_mean_ci({7.5}, 0.95, 100, util::Rng(1));
  EXPECT_DOUBLE_EQ(ci.mean, 7.5);
  EXPECT_DOUBLE_EQ(ci.lo, 7.5);
  EXPECT_DOUBLE_EQ(ci.hi, 7.5);
}

TEST(Bootstrap, IntervalBracketsTheMean) {
  util::Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.normal(50, 10));
  const auto ci = bootstrap_mean_ci(sample, 0.95, 2000, util::Rng(7));
  EXPECT_LT(ci.lo, ci.mean);
  EXPECT_GT(ci.hi, ci.mean);
  EXPECT_NEAR(ci.mean, 50.0, 3.0);
  // Half-width should be around 1.96 * 10/sqrt(200) ~ 1.4.
  EXPECT_NEAR(ci.hi - ci.lo, 2.8, 1.2);
}

TEST(Bootstrap, WiderConfidenceWiderInterval) {
  util::Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 100; ++i) sample.push_back(rng.uniform(0, 100));
  const auto ci90 = bootstrap_mean_ci(sample, 0.90, 2000, util::Rng(7));
  const auto ci99 = bootstrap_mean_ci(sample, 0.99, 2000, util::Rng(7));
  EXPECT_GT(ci99.hi - ci99.lo, ci90.hi - ci90.lo);
}

TEST(Bootstrap, MoreDataNarrowerInterval) {
  util::Rng rng(5);
  std::vector<double> small_sample, big;
  for (int i = 0; i < 30; ++i) small_sample.push_back(rng.normal(0, 5));
  for (int i = 0; i < 1000; ++i) big.push_back(rng.normal(0, 5));
  const auto ci_small = bootstrap_mean_ci(small_sample, 0.95, 1000, util::Rng(7));
  const auto ci_big = bootstrap_mean_ci(big, 0.95, 1000, util::Rng(7));
  EXPECT_LT(ci_big.hi - ci_big.lo, ci_small.hi - ci_small.lo);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  std::vector<double> sample{1, 5, 2, 8, 3, 9, 4};
  const auto a = bootstrap_mean_ci(sample, 0.95, 500, util::Rng(11));
  const auto b = bootstrap_mean_ci(sample, 0.95, 500, util::Rng(11));
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace h3cdn::analysis
