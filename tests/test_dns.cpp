#include "dns/resolver.h"

#include <gtest/gtest.h>

namespace h3cdn::dns {
namespace {

struct Fixture {
  sim::Simulator sim;

  Resolver make(DnsTransport transport, double loss = 0.0) {
    ResolverConfig config;
    config.transport = transport;
    config.query_loss_rate = loss;
    config.recursive_cache_hit = 1.0;  // deterministic latency unless stated
    return Resolver(sim, config, util::Rng(7));
  }

  Duration resolve_once(Resolver& r, const std::string& name) {
    const TimePoint start = sim.now();
    TimePoint done{-1};
    r.resolve(name, [&](TimePoint t) { done = t; });
    sim.run();
    return done - start;
  }
};

DnsRecord make_record(std::string name, TimePoint resolved_at, Duration ttl) {
  DnsRecord record;
  record.name = std::move(name);
  record.resolved_at = resolved_at;
  record.ttl = ttl;
  return record;
}

TEST(DnsCache, TtlExpiry) {
  DnsCache cache;
  cache.insert(make_record("a.example", msec(0), sec(10)));
  EXPECT_TRUE(cache.lookup("a.example", sec(9)).has_value());
  EXPECT_FALSE(cache.lookup("a.example", sec(10)).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DnsCache, RemoveExpiredPrunes) {
  DnsCache cache;
  cache.insert(make_record("old.example", msec(0), sec(1)));
  cache.insert(make_record("new.example", sec(100), sec(300)));
  cache.remove_expired(sec(100));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DnsResolver, Do53SingleRoundTrip) {
  Fixture f;
  auto r = f.make(DnsTransport::Do53);
  const auto d = f.resolve_once(r, "a.example");
  // 1 RTT to the recursive + ~free cached recursive lookup.
  EXPECT_GE(d, msec(12));
  EXPECT_LT(d, msec(14));
}

TEST(DnsResolver, StubCacheHitIsFree) {
  Fixture f;
  auto r = f.make(DnsTransport::Do53);
  f.resolve_once(r, "a.example");
  const auto d = f.resolve_once(r, "a.example");
  EXPECT_EQ(d, Duration::zero());
  EXPECT_EQ(r.stats().stub_cache_hits, 1u);
}

TEST(DnsResolver, PrewarmSkipsNetwork) {
  Fixture f;
  auto r = f.make(DnsTransport::Do53);
  r.prewarm("a.example");
  EXPECT_EQ(f.resolve_once(r, "a.example"), Duration::zero());
  EXPECT_EQ(r.stats().queries, 1u);
}

TEST(DnsResolver, EncryptedTransportsPayChannelSetupOnce) {
  Fixture f;
  auto doh = f.make(DnsTransport::DoH);
  const auto first = f.resolve_once(doh, "a.example");
  const auto second = f.resolve_once(doh, "b.example");
  // First query: 2 RTT TLS channel + 1 RTT query = 3 RTT; then 1 RTT.
  EXPECT_GE(first, msec(36));
  EXPECT_LT(second, msec(14));
  EXPECT_EQ(doh.stats().channels_established, 1u);
}

TEST(DnsResolver, DoQCheaperChannelThanDoH) {
  Fixture f1, f2;
  auto doq = f1.make(DnsTransport::DoQ);
  auto doh = f2.make(DnsTransport::DoH);
  Fixture* fs[2] = {&f1, &f2};
  Resolver* rs[2] = {&doq, &doh};
  Duration d[2];
  for (int i = 0; i < 2; ++i) d[i] = fs[i]->resolve_once(*rs[i], "a.example");
  EXPECT_LT(d[0], d[1]);  // 1-RTT QUIC channel vs 2-RTT TCP+TLS
}

TEST(DnsResolver, DoQResumesAtZeroRtt) {
  Fixture f;
  auto doq = f.make(DnsTransport::DoQ);
  const auto cold = f.resolve_once(doq, "a.example");
  doq.drop_channel();
  const auto resumed = f.resolve_once(doq, "b.example");
  EXPECT_LT(resumed, cold);  // 0-RTT channel on resumption
  EXPECT_EQ(doq.stats().channels_established, 2u);
}

TEST(DnsResolver, Do53RetriesAfterTimeout) {
  Fixture f;
  ResolverConfig config;
  config.transport = DnsTransport::Do53;
  config.query_loss_rate = 0.9;  // heavy loss: some retries all but certain
  config.recursive_cache_hit = 1.0;
  Resolver r(f.sim, config, util::Rng(3));
  const auto d = f.resolve_once(r, "a.example");
  EXPECT_GE(d, config.udp_timeout);  // at least one 400ms retry with seed 3
  EXPECT_GT(r.stats().retries, 0u);
}

TEST(DnsResolver, RecursiveMissAddsAuthoritativeWork) {
  Fixture f;
  ResolverConfig config;
  config.transport = DnsTransport::Do53;
  config.recursive_cache_hit = 0.0;  // always walk the authoritative chain
  Resolver r(f.sim, config, util::Rng(5));
  const auto d = f.resolve_once(r, "a.example");
  EXPECT_GT(d, msec(14));
}

TEST(DnsResolver, NegativeCacheExpiryForcesRequery) {
  // RFC 2308: once the cached empty-AAAA answer expires, a repeat visit must
  // re-query even though the positive record (ttl 300s) is still valid.
  Fixture f;
  ResolverConfig config;
  config.transport = DnsTransport::Do53;
  config.recursive_cache_hit = 1.0;
  config.ipv6_absent_fraction = 1.0;  // every name lacks an AAAA record
  config.negative_ttl = sec(5);
  Resolver r(f.sim, config, util::Rng(7));
  EXPECT_GT(f.resolve_once(r, "a.example"), Duration::zero());
  // Within the negative TTL: still a free stub hit.
  EXPECT_EQ(f.resolve_once(r, "a.example"), Duration::zero());
  EXPECT_EQ(r.stats().negative_expiries, 0u);
  // Past the negative TTL, before the positive one: pays the network again.
  f.sim.schedule_in(sec(10), [] {});
  f.sim.run();
  EXPECT_GT(f.resolve_once(r, "a.example"), Duration::zero());
  EXPECT_EQ(r.stats().negative_expiries, 1u);
}

TEST(DnsResolver, FullyPositiveNamesNeverExpireNegatively) {
  Fixture f;
  ResolverConfig config;
  config.transport = DnsTransport::Do53;
  config.recursive_cache_hit = 1.0;
  config.ipv6_absent_fraction = 0.0;
  config.negative_ttl = sec(1);
  Resolver r(f.sim, config, util::Rng(7));
  f.resolve_once(r, "a.example");
  f.sim.schedule_in(sec(100), [] {});
  f.sim.run();
  EXPECT_EQ(f.resolve_once(r, "a.example"), Duration::zero());
  EXPECT_EQ(r.stats().negative_expiries, 0u);
}

TEST(DnsResolver, PrewarmRespectsStillValidNegativeState) {
  // Prewarm must not clobber a record whose negative component has not
  // expired (the warm visit should not hide the later re-query either).
  Fixture f;
  ResolverConfig config;
  config.transport = DnsTransport::Do53;
  config.recursive_cache_hit = 1.0;
  config.ipv6_absent_fraction = 1.0;
  config.negative_ttl = sec(5);
  Resolver r(f.sim, config, util::Rng(7));
  f.resolve_once(r, "a.example");
  f.sim.schedule_in(sec(10), [] {});
  f.sim.run();
  r.prewarm("a.example");  // re-inserts: negative clock restarts at 10s
  EXPECT_EQ(f.resolve_once(r, "a.example"), Duration::zero());
  f.sim.schedule_in(sec(10), [] {});
  f.sim.run();
  EXPECT_GT(f.resolve_once(r, "a.example"), Duration::zero());
  EXPECT_EQ(r.stats().negative_expiries, 1u);
}

// --- DNS failover: multi-record answers with per-record health ---------------

TEST(DnsFailover, ReportFailureRotatesPreferredAndCooldownRecovers) {
  Fixture f;
  ResolverConfig config;
  config.transport = DnsTransport::Do53;
  config.recursive_cache_hit = 1.0;
  config.ipv6_absent_fraction = 0.0;
  config.addresses_per_record = 2;
  config.health_cooldown = sec(5);
  Resolver r(f.sim, config, util::Rng(7));
  f.resolve_once(r, "cdn.example");
  EXPECT_EQ(r.preferred_address("cdn.example", f.sim.now()), 0u);

  // Record 0's front end fails at t=0: demoted, dials rotate to record 1.
  r.report_failure("cdn.example", TimePoint{0});
  EXPECT_EQ(r.preferred_address("cdn.example", TimePoint{0}), 1u);
  EXPECT_EQ(r.stats().failover_reports, 1u);
  EXPECT_EQ(r.stats().failover_switches, 1u);

  // Record 1 fails at t=2s: every address is cooling down, so dials move to
  // the one recovering soonest (record 0, healthy again at 5s vs 7s).
  r.report_failure("cdn.example", TimePoint{sec(2)});
  EXPECT_EQ(r.stats().failover_reports, 2u);
  EXPECT_EQ(r.stats().failover_switches, 2u);
  EXPECT_EQ(r.preferred_address("cdn.example", TimePoint{sec(3)}), 0u);

  // Past its cooldown, record 0 is healthy and sticky again.
  EXPECT_EQ(r.preferred_address("cdn.example", TimePoint{sec(6)}), 0u);
}

TEST(DnsFailover, SingleAddressRecordsNeverRotate) {
  Fixture f;
  ResolverConfig config;
  config.transport = DnsTransport::Do53;
  config.recursive_cache_hit = 1.0;
  config.ipv6_absent_fraction = 0.0;
  Resolver r(f.sim, config, util::Rng(7));  // addresses_per_record = 1 default
  f.resolve_once(r, "cdn.example");
  r.report_failure("cdn.example", TimePoint{0});
  EXPECT_EQ(r.preferred_address("cdn.example", TimePoint{0}), 0u);
  EXPECT_EQ(r.stats().failover_reports, 0u);  // no-op on single-address names
  EXPECT_EQ(r.stats().failover_switches, 0u);
  // Unknown names are a no-op too.
  r.report_failure("never.resolved", TimePoint{0});
  EXPECT_EQ(r.preferred_address("never.resolved", TimePoint{0}), 0u);
}

TEST(DnsFailover, NegativeExpiryRequeryResetsRecordHealth) {
  // RFC 2308 x failover: the re-query forced by negative-cache expiry
  // rebuilds the record, and a fresh answer carries no memory of the
  // previous resolution's failures — preferred returns to record 0 with
  // every address healthy.
  Fixture f;
  ResolverConfig config;
  config.transport = DnsTransport::Do53;
  config.recursive_cache_hit = 1.0;
  config.ipv6_absent_fraction = 1.0;  // every name lacks an AAAA record
  config.negative_ttl = sec(5);
  config.record_ttl = sec(300);  // positive record stays valid throughout
  config.addresses_per_record = 2;
  config.health_cooldown = sec(600);  // would pin record 1 forever without requery
  Resolver r(f.sim, config, util::Rng(7));
  f.resolve_once(r, "cdn.example");
  r.report_failure("cdn.example", f.sim.now());
  EXPECT_EQ(r.preferred_address("cdn.example", f.sim.now()), 1u);

  // Past the negative TTL the next resolve re-queries (the positive record
  // is still valid) and replaces the answer wholesale.
  f.sim.schedule_in(sec(10), [] {});
  f.sim.run();
  EXPECT_GT(f.resolve_once(r, "cdn.example"), Duration::zero());
  EXPECT_EQ(r.stats().negative_expiries, 1u);
  EXPECT_EQ(r.preferred_address("cdn.example", f.sim.now()), 0u)
      << "a fresh answer must reset per-record health";
}

TEST(DnsResolver, TransportNames) {
  EXPECT_STREQ(to_string(DnsTransport::Do53), "Do53");
  EXPECT_STREQ(to_string(DnsTransport::DoQ), "DoQ");
}

}  // namespace
}  // namespace h3cdn::dns
