#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/profiler.h"
#include "util/json_parse.h"
#include "util/rng.h"
#include "util/stats.h"

namespace h3cdn::obs {
namespace {

TEST(Metrics, CounterAndGaugeSemantics) {
  MetricsRegistry reg;
  reg.counter("a").inc();
  reg.counter("a").inc(4);
  EXPECT_EQ(reg.counter("a").value(), 5u);

  reg.gauge("g").set(2.5);
  reg.gauge("g").add(-1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 1.5);

  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(Metrics, LookupCreatesOnceWithStableAddresses) {
  MetricsRegistry reg;
  Counter* a = &reg.counter("x");
  reg.counter("y").inc();
  reg.histogram("h").observe(1.0);
  EXPECT_EQ(a, &reg.counter("x"));  // still the same object after growth
  EXPECT_EQ(reg.series_count(), 3u);
  reg.clear();
  EXPECT_EQ(reg.series_count(), 0u);
  EXPECT_EQ(reg.counter("x").value(), 0u);  // recreated fresh
}

TEST(Metrics, HistogramTracksMomentsExactly) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);

  for (double v : {4.0, 1.0, 16.0, 9.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 30.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 16.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.5);
}

TEST(Metrics, HistogramPercentilesTrackExactQuantiles) {
  // Log-bucketed readouts must stay within one bucket width (~9%) of the
  // exact sample quantile — check against util::quantile as ground truth.
  Histogram h;
  std::vector<double> samples;
  util::Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::exp(rng.uniform(0.0, 8.0));  // spread over decades
    h.observe(v);
    samples.push_back(v);
  }
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const double exact = util::quantile(samples, q);
    const double estimate = h.percentile(q);
    EXPECT_GT(estimate, exact * 0.90) << "q=" << q;
    EXPECT_LT(estimate, exact * 1.10) << "q=" << q;
  }
}

TEST(Metrics, HistogramPercentileIsClampedToObservedRange) {
  Histogram h;
  h.observe(100.0);
  // A single sample: every quantile is that sample, not a bucket bound.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.p50(), 100.0);
  EXPECT_DOUBLE_EQ(h.p999(), 100.0);
}

TEST(Metrics, HistogramUnderflowBucket) {
  Histogram h;
  h.observe(0.0);
  h.observe(1e-9);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.p99(), Histogram::kMinValue);
}

TEST(Metrics, HooksAreNoOpsWhenDisabled) {
  ASSERT_EQ(MetricsRegistry::global(), nullptr);
  EXPECT_FALSE(enabled());
  // Must not crash or allocate a registry.
  count("nope");
  gauge_set("nope", 1.0);
  observe("nope", 1.0);
  observe_ms("nope", msec(5));
  EXPECT_EQ(MetricsRegistry::global(), nullptr);
}

TEST(Metrics, ScopedInstallRoutesHooksAndRestores) {
  MetricsRegistry outer;
  {
    ScopedMetrics outer_scope(&outer);
    EXPECT_TRUE(enabled());
    count("hits", 2);
    {
      MetricsRegistry inner;
      ScopedMetrics inner_scope(&inner);
      count("hits", 1);  // goes to inner, not outer
      EXPECT_EQ(inner.counter("hits").value(), 1u);
    }
    count("hits");  // outer again
    observe_ms("latency_ms", msec(250));
  }
  EXPECT_FALSE(enabled());
  EXPECT_EQ(outer.counter("hits").value(), 3u);
  EXPECT_EQ(outer.histogram("latency_ms").count(), 1u);
  EXPECT_DOUBLE_EQ(outer.histogram("latency_ms").sum(), 250.0);
}

TEST(Metrics, JsonExportParsesAndRoundTrips) {
  MetricsRegistry reg;
  reg.counter("net.link.packets_offered").inc(123);
  reg.gauge("http.pool.open_connections").set(4.0);
  for (int i = 1; i <= 100; ++i) reg.histogram("dns.resolve_ms").observe(i);

  const auto doc = util::parse_json(metrics_to_json(reg));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->number_or("series_count", -1), 3.0);
  EXPECT_EQ(doc->find("counters")->number_or("net.link.packets_offered", -1), 123.0);
  EXPECT_EQ(doc->find("gauges")->number_or("http.pool.open_connections", -1), 4.0);
  const util::JsonValue* hist = doc->find("histograms")->find("dns.resolve_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->number_or("count", -1), 100.0);
  EXPECT_EQ(hist->number_or("min", -1), 1.0);
  EXPECT_EQ(hist->number_or("max", -1), 100.0);
  EXPECT_NEAR(hist->number_or("p50", -1), 50.0, 50.0 * 0.10);
}

TEST(Metrics, EmptyHistogramExportsCountOnly) {
  MetricsRegistry reg;
  (void)reg.histogram("never.observed_ms");  // registered but no samples

  const auto doc = util::parse_json(metrics_to_json(reg));
  ASSERT_TRUE(doc.has_value());
  const util::JsonValue* hist = doc->find("histograms")->find("never.observed_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->number_or("count", -1), 0.0);
  // Quantiles of zero samples would be fabricated data; none may be exported.
  for (const char* q : {"sum", "min", "max", "mean", "p50", "p90", "p99", "p999"}) {
    EXPECT_EQ(hist->find(q), nullptr) << q;
  }

  const std::string csv = metrics_to_csv(reg);
  EXPECT_NE(csv.find("never.observed_ms,histogram,count,0\n"), std::string::npos);
  EXPECT_EQ(csv.find("never.observed_ms,histogram,p50,"), std::string::npos);

  const std::string prom = metrics_to_prometheus(reg);
  EXPECT_NE(prom.find("never_observed_ms_count 0\n"), std::string::npos);
  EXPECT_EQ(prom.find("never_observed_ms{quantile="), std::string::npos);
  EXPECT_EQ(prom.find("never_observed_ms_sum"), std::string::npos);
}

TEST(Metrics, CsvExportHasOneRowPerField) {
  MetricsRegistry reg;
  reg.counter("c").inc(7);
  reg.histogram("h").observe(2.0);
  const std::string csv = metrics_to_csv(reg);
  EXPECT_NE(csv.find("name,kind,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("c,counter,value,7\n"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,p99,"), std::string::npos);
}

TEST(Metrics, PrometheusExportSanitizesNames) {
  MetricsRegistry reg;
  reg.counter("net.link.packets_dropped").inc(9);
  reg.histogram("http.entry.total_ms").observe(10.0);
  const std::string prom = metrics_to_prometheus(reg);
  EXPECT_NE(prom.find("# TYPE net_link_packets_dropped counter\n"), std::string::npos);
  EXPECT_NE(prom.find("net_link_packets_dropped 9\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE http_entry_total_ms summary\n"), std::string::npos);
  EXPECT_NE(prom.find("http_entry_total_ms{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(prom.find("http_entry_total_ms_count 1\n"), std::string::npos);
  // No unsanitized metric name survives at a sample-line start (the # HELP
  // text deliberately carries the original dotted series name).
  EXPECT_EQ(prom.find("\nnet.link"), std::string::npos);
  EXPECT_EQ(prom.find("\nhttp.entry"), std::string::npos);
}

TEST(Metrics, PrometheusExportCarriesHelpLines) {
  // Exposition-format compliance: every family gets a # HELP line naming the
  // original (pre-sanitization) series, immediately before its # TYPE line.
  MetricsRegistry reg;
  reg.counter("net.link.packets_dropped").inc(9);
  reg.gauge("http.pool.open_connections").set(4.0);
  reg.histogram("dns.resolve_ms").observe(10.0);
  const std::string prom = metrics_to_prometheus(reg);
  EXPECT_NE(prom.find("# HELP net_link_packets_dropped Simulated-run counter "
                      "net.link.packets_dropped.\n# TYPE net_link_packets_dropped counter\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# HELP http_pool_open_connections "), std::string::npos);
  EXPECT_NE(prom.find("# HELP dns_resolve_ms "), std::string::npos);
}

TEST(Metrics, PrometheusNamesNeverStartWithADigit) {
  // An arbitrary registry key can sanitize to a digit-first name, which the
  // exposition grammar forbids ([a-zA-Z_:] first); a '_' prefix restores it.
  MetricsRegistry reg;
  reg.counter("0rtt.accepted").inc(3);
  const std::string prom = metrics_to_prometheus(reg);
  EXPECT_NE(prom.find("# TYPE _0rtt_accepted counter\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("_0rtt_accepted 3\n"), std::string::npos);
  EXPECT_EQ(prom.find("\n0rtt_accepted"), std::string::npos);
}

TEST(Metrics, PrometheusHelpEscapesBackslashAndNewline) {
  MetricsRegistry reg;
  reg.counter("weird\\name\nwith.breaks").inc(1);
  const std::string prom = metrics_to_prometheus(reg);
  // The HELP text carries the original name with backslash and newline
  // escaped — a literal newline inside HELP would corrupt the exposition.
  EXPECT_NE(prom.find("weird\\\\name\\nwith.breaks"), std::string::npos) << prom;
  EXPECT_EQ(prom.find("# HELP weird_name_with_breaks Simulated-run counter weird\\name"),
            std::string::npos);
}

TEST(Profiler, ScopeRecordsOnlyWhenInstalled) {
  ASSERT_EQ(PhaseProfiler::global(), nullptr);
  { ProfileScope idle("ignored"); }  // disabled: must be a no-op

  PhaseProfiler profiler;
  {
    ScopedProfiler scope(&profiler);
    { ProfileScope a("phase_a"); }
    { ProfileScope a("phase_a"); }
    { ProfileScope b("phase_b"); }
  }
  EXPECT_EQ(PhaseProfiler::global(), nullptr);
  ASSERT_EQ(profiler.phases().size(), 2u);
  EXPECT_EQ(profiler.phases().at("phase_a").calls, 2u);
  EXPECT_EQ(profiler.phases().at("phase_b").calls, 1u);

  const auto doc = util::parse_json(profiler.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("phases")->find("phase_a")->number_or("calls", -1), 2.0);
}

}  // namespace
}  // namespace h3cdn::obs
