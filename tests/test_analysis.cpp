#include "analysis/page_metrics.h"

#include <gtest/gtest.h>

#include "browser/browser.h"
#include "web/workload.h"

namespace h3cdn::analysis {
namespace {

struct Fixture {
  web::Workload workload;
  locedge::Classifier classifier;

  Fixture() {
    web::WorkloadConfig cfg;
    cfg.site_count = 6;
    workload = web::generate_workload(cfg);
  }

  browser::PageLoadResult load(std::size_t site, bool h3) {
    sim::Simulator sim;
    browser::VantageConfig vantage;
    vantage.server_noise_salt = h3 ? 1 : 2;
    browser::Environment env(sim, workload.universe, vantage, util::Rng(77));
    env.warm_page(workload.sites[site].page);
    browser::BrowserConfig config;
    config.h3_enabled = h3;
    browser::Browser browser(sim, env, nullptr, config, util::Rng(5));
    return browser.visit_and_run(workload.sites[site].page);
  }
};

TEST(PageMetrics, CountsMatchGroundTruth) {
  Fixture f;
  const auto r = f.load(0, true);
  const auto m = compute_page_metrics(r.har, f.classifier);
  const auto& page = f.workload.sites[0].page;
  EXPECT_EQ(m.total_entries, page.total_requests());
  EXPECT_EQ(m.cdn_entries, page.cdn_resource_count());
  EXPECT_EQ(m.provider_counts.size(), page.cdn_providers().size());
  EXPECT_EQ(m.cdn_domains, page.cdn_domains());
  EXPECT_NEAR(m.cdn_fraction(), page.cdn_fraction(), 1e-12);
}

TEST(PageMetrics, VersionSplitsAddUp) {
  Fixture f;
  const auto r = f.load(1, true);
  const auto m = compute_page_metrics(r.har, f.classifier);
  EXPECT_EQ(m.h2_entries + m.h3_entries + m.other_entries, m.total_entries);
  EXPECT_EQ(m.h2_cdn_entries + m.h3_cdn_entries + m.other_cdn_entries, m.cdn_entries);
  EXPECT_EQ(m.plt_ms, to_ms(r.har.page_load_time));
}

TEST(PageMetrics, H3CdnCountsZeroInH2Mode) {
  Fixture f;
  const auto r = f.load(1, false);
  const auto m = compute_page_metrics(r.har, f.classifier);
  EXPECT_EQ(m.h3_entries, 0u);
  EXPECT_EQ(m.h3_cdn_entries, 0u);
  EXPECT_TRUE(m.provider_h3_counts.empty());
}

TEST(PageMetrics, ProviderH3CountsBoundedByProviderCounts) {
  Fixture f;
  const auto r = f.load(2, true);
  const auto m = compute_page_metrics(r.har, f.classifier);
  for (const auto& [provider, h3] : m.provider_h3_counts) {
    ASSERT_TRUE(m.provider_counts.count(provider));
    EXPECT_LE(h3, m.provider_counts.at(provider));
  }
}

TEST(PagePair, ReductionsAreDifferences) {
  PagePair pair;
  pair.h2.plt_ms = 900;
  pair.h3.plt_ms = 800;
  pair.h2.reused_connections = 50;
  pair.h3.reused_connections = 46;
  EXPECT_DOUBLE_EQ(pair.plt_reduction_ms(), 100.0);
  EXPECT_DOUBLE_EQ(pair.reused_connection_diff(), 4.0);
}

TEST(PhaseReductions, MatchedByResourceId) {
  Fixture f;
  const auto h2 = f.load(3, false);
  const auto h3 = f.load(3, true);
  const auto phases = entry_phase_reductions(h2.har, h3.har);
  EXPECT_EQ(phases.size(), h2.har.entries.size());
}

TEST(PhaseReductions, ConnectValidOnlyForDualInitiators) {
  Fixture f;
  const auto h2 = f.load(3, false);
  const auto h3 = f.load(3, true);
  const auto phases = entry_phase_reductions(h2.har, h3.har);
  std::size_t valid = 0;
  for (const auto& p : phases) valid += p.connect_valid;
  EXPECT_GT(valid, 0u);
  EXPECT_LT(valid, phases.size());  // most entries are reused at least once
}

TEST(PhaseReductions, DisjointArchivesYieldNothing) {
  browser::HarPage a, b;
  browser::HarEntry ea;
  ea.resource_id = 1;
  a.entries.push_back(ea);
  browser::HarEntry eb;
  eb.resource_id = 2;
  b.entries.push_back(eb);
  EXPECT_TRUE(entry_phase_reductions(a, b).empty());
}

TEST(PhaseReductions, IdenticalArchivesGiveZeroReductions) {
  Fixture f;
  const auto r = f.load(4, true);
  const auto phases = entry_phase_reductions(r.har, r.har);
  for (const auto& p : phases) {
    EXPECT_DOUBLE_EQ(p.connect_ms, 0.0);
    EXPECT_DOUBLE_EQ(p.wait_ms, 0.0);
    EXPECT_DOUBLE_EQ(p.receive_ms, 0.0);
  }
}

}  // namespace
}  // namespace h3cdn::analysis
