// Workload calibration: the generator must reproduce the dataset-level
// statistics the paper reports (see workload.h). These are the ground-truth
// counterparts of Table II and Figs. 3-5; the full-pipeline versions (through
// the browser + LocEdge classifier) live in test_experiments.cpp.
#include "web/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/stats.h"
#include "web/domains.h"

namespace h3cdn::web {
namespace {

const Workload& workload() {
  static const Workload w = generate_workload();
  return w;
}

TEST(Workload, Has325Sites) {
  EXPECT_EQ(workload().sites.size(), 325u);
}

TEST(Workload, TotalRequestsNearPaper) {
  // Table II: 36,057 requests over 325 sites (~111 per page).
  const auto total = workload().total_requests();
  EXPECT_GT(total, 25'000u);
  EXPECT_LT(total, 48'000u);
}

TEST(Workload, CdnShareNearTwoThirds) {
  // Table II: 67.0% of requests from CDN services.
  std::size_t cdn = 0, total = 0;
  for (const auto& s : workload().sites) {
    cdn += s.page.cdn_resource_count();
    total += s.page.total_requests();
  }
  const double share = static_cast<double>(cdn) / static_cast<double>(total);
  EXPECT_NEAR(share, 0.67, 0.06);
}

TEST(Workload, Fig3MostPagesCdnDominated) {
  // Fig. 3: 75% of pages exceed 50% CDN resources.
  std::vector<double> fractions;
  for (const auto& s : workload().sites) fractions.push_back(s.page.cdn_fraction());
  EXPECT_NEAR(util::fraction_above(fractions, 0.5), 0.75, 0.10);
}

TEST(Workload, Fig4MostPagesUseMultipleProviders) {
  // Fig. 4b: 94.8% of pages use >= 2 providers.
  std::size_t ge2 = 0;
  for (const auto& s : workload().sites) ge2 += s.page.cdn_providers().size() >= 2;
  const double frac = static_cast<double>(ge2) / static_cast<double>(workload().sites.size());
  EXPECT_GT(frac, 0.85);
}

TEST(Workload, Fig4TopProvidersAppearOnMostPages) {
  std::map<cdn::ProviderId, std::size_t> present;
  for (const auto& s : workload().sites) {
    for (auto p : s.page.cdn_providers()) ++present[p];
  }
  const double n = static_cast<double>(workload().sites.size());
  // Fig. 4a: top-4 presence exceeds 50%; Google the highest.
  EXPECT_GT(present[cdn::ProviderId::Google] / n, 0.8);
  EXPECT_GT(present[cdn::ProviderId::Cloudflare] / n, 0.5);
  EXPECT_GT(present[cdn::ProviderId::Amazon] / n, 0.5);
  EXPECT_GT(present[cdn::ProviderId::Akamai] / n, 0.45);
}

TEST(Workload, Fig5CloudflareGooglePagesOftenExceedTenResources) {
  // Fig. 5: ~50% of pages using Cloudflare/Google have > 10 of its resources.
  for (auto id : {cdn::ProviderId::Cloudflare, cdn::ProviderId::Google}) {
    std::vector<double> counts;
    for (const auto& s : workload().sites) {
      const auto c = s.page.provider_resource_count(id);
      if (c > 0) counts.push_back(static_cast<double>(c));
    }
    EXPECT_NEAR(util::fraction_above(counts, 10.0), 0.5, 0.2) << cdn::to_string(id);
  }
}

TEST(Workload, CdnResourcesAreSmall) {
  // §VI-E: CDN resources are typically small, 75% below 20KB.
  std::vector<double> sizes_kb;
  for (const auto& s : workload().sites) {
    for (const auto& r : s.page.resources) {
      if (r.is_cdn) sizes_kb.push_back(static_cast<double>(r.size_bytes) / 1024.0);
    }
  }
  EXPECT_NEAR(util::fraction_at_or_below(sizes_kb, 20.0), 0.75, 0.1);
}

TEST(Workload, ExactlyFiftyEightGlobalCdnDomains) {
  EXPECT_EQ(workload().universe.all_cdn_domains().size(), 58u);
}

TEST(Workload, CdnDomainsAreSharedAcrossPages) {
  // Table III's premise: CDN domains recur across many pages.
  std::map<std::string, std::size_t> pages_using;
  for (const auto& s : workload().sites) {
    for (const auto& d : s.page.cdn_domains()) ++pages_using[d];
  }
  std::size_t shared = 0;
  for (const auto& [d, n] : pages_using) shared += n >= 2;
  EXPECT_GE(shared, pages_using.size() * 9 / 10);
}

TEST(Workload, RealizedH3AdoptionTracksProviderTargets) {
  // Request-weighted H3-capability per provider should approximate
  // ProviderTraits::h3_adoption (the domain-marking algorithm's invariant).
  std::map<cdn::ProviderId, std::pair<std::size_t, std::size_t>> counts;  // (h3, total)
  const auto& u = workload().universe;
  for (const auto& s : workload().sites) {
    for (const auto& r : s.page.resources) {
      if (!r.is_cdn) continue;
      auto& [h3, total] = counts[r.provider];
      ++total;
      if (u.get(r.domain).supports_h3) ++h3;
    }
  }
  auto realized = [&](cdn::ProviderId id) {
    const auto& [h3, total] = counts[id];
    return static_cast<double>(h3) / static_cast<double>(total);
  };
  EXPECT_GT(realized(cdn::ProviderId::Google), 0.85);
  EXPECT_NEAR(realized(cdn::ProviderId::Cloudflare), 0.50, 0.15);
  EXPECT_LT(realized(cdn::ProviderId::Amazon), 0.30);
  EXPECT_LT(realized(cdn::ProviderId::Akamai), 0.25);
}

TEST(Workload, EveryResourceHasHeadersAndPositiveSize) {
  for (const auto& s : workload().sites) {
    EXPECT_FALSE(s.page.html.response_headers.empty());
    for (const auto& r : s.page.resources) {
      EXPECT_GT(r.size_bytes, 0u);
      EXPECT_GT(r.request_bytes, 0u);
      EXPECT_FALSE(r.response_headers.empty());
      EXPECT_FALSE(r.domain.empty());
      EXPECT_TRUE(workload().universe.contains(r.domain)) << r.domain;
    }
  }
}

TEST(Workload, ResourceIdsAreUnique) {
  std::set<std::uint32_t> ids;
  for (const auto& s : workload().sites) {
    EXPECT_TRUE(ids.insert(s.page.html.id).second);
    for (const auto& r : s.page.resources) EXPECT_TRUE(ids.insert(r.id).second);
  }
}

TEST(Workload, DeterministicForSameSeed) {
  WorkloadConfig cfg;
  cfg.site_count = 10;
  const Workload a = generate_workload(cfg);
  const Workload b = generate_workload(cfg);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    ASSERT_EQ(a.sites[i].page.resources.size(), b.sites[i].page.resources.size());
    for (std::size_t j = 0; j < a.sites[i].page.resources.size(); ++j) {
      EXPECT_EQ(a.sites[i].page.resources[j].domain, b.sites[i].page.resources[j].domain);
      EXPECT_EQ(a.sites[i].page.resources[j].size_bytes, b.sites[i].page.resources[j].size_bytes);
    }
  }
}

TEST(Workload, SeedChangesWorkload) {
  WorkloadConfig a_cfg, b_cfg;
  a_cfg.site_count = b_cfg.site_count = 5;
  b_cfg.seed = a_cfg.seed + 1;
  const Workload a = generate_workload(a_cfg);
  const Workload b = generate_workload(b_cfg);
  bool differs = false;
  for (std::size_t i = 0; i < 5 && !differs; ++i) {
    differs = a.sites[i].page.resources.size() != b.sites[i].page.resources.size();
  }
  EXPECT_TRUE(differs);
}

TEST(Workload, OriginDomainsAlwaysSupportH2) {
  for (const auto& s : workload().sites) {
    EXPECT_TRUE(workload().universe.get(s.page.origin_domain).supports_h2);
  }
}

TEST(Workload, SecondaryCdnDomainsSkewToLateDiscovery) {
  // The §VI-C mechanism requires a provider's non-primary hostnames to be
  // found mostly via dependency chains (wave 1).
  std::map<std::string, std::pair<std::size_t, std::size_t>> by_domain;  // (wave1, total)
  for (const auto& s : workload().sites) {
    for (const auto& r : s.page.resources) {
      if (!r.is_cdn) continue;
      auto& [w1, total] = by_domain[r.domain];
      ++total;
      if (r.discovery_wave == 1) ++w1;
    }
  }
  // Aggregate: wave-1 fraction strictly between the primary and secondary
  // probabilities, i.e. both populations exist.
  std::size_t w1 = 0, total = 0;
  for (const auto& [d, c] : by_domain) {
    w1 += c.first;
    total += c.second;
  }
  const double frac = static_cast<double>(w1) / static_cast<double>(total);
  EXPECT_GT(frac, 0.10);
  EXPECT_LT(frac, 0.45);
}

TEST(DomainUniverse, LookupAndProviderLists) {
  const auto& u = workload().universe;
  for (const auto& t : cdn::ProviderRegistry::all()) {
    const auto& domains = u.cdn_domains(t.id);
    EXPECT_EQ(domains.size(), static_cast<std::size_t>(t.domain_count)) << t.name;
    for (const auto& d : domains) {
      EXPECT_TRUE(u.get(d).is_cdn);
      EXPECT_EQ(u.get(d).provider, t.id);
    }
  }
}

TEST(DomainUniverse, PopularityDescendingPerProvider) {
  const auto& u = workload().universe;
  for (const auto& t : cdn::ProviderRegistry::all()) {
    const auto& domains = u.cdn_domains(t.id);
    for (std::size_t i = 1; i < domains.size(); ++i) {
      EXPECT_GE(u.get(domains[i - 1]).popularity, u.get(domains[i]).popularity);
    }
  }
}

}  // namespace
}  // namespace h3cdn::web
