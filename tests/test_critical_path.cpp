// Critical-path PLT attribution (obs/critical_path.h, obs/attribution.h):
// the additive contract (phase vectors tile [0, PLT] exactly), the H2/H3
// pairing of diff mode, the transport invariant behind it (QUIC streams
// never stall on another stream's loss; TCP streams do), and the ASCII
// zero-width phase marker.
#include "obs/critical_path.h"

#include <gtest/gtest.h>

#include <string>

#include "core/experiments.h"
#include "core/observability.h"
#include "core/study.h"
#include "obs/attribution.h"
#include "obs/waterfall.h"

namespace h3cdn::obs {
namespace {

core::StudyResult run_study(double loss, core::RunObservability* observability,
                            std::size_t sites = 4) {
  core::StudyConfig cfg;
  cfg.workload.site_count = sites;
  cfg.max_sites = sites;
  cfg.probes_per_vantage = 1;
  cfg.loss_rate = loss;
  cfg.observability = observability;
  return core::MeasurementStudy(cfg).run();
}

// Phase sums must reproduce the PLT to within 1 µs (1e-3 ms) on every page:
// the analyzer charges every microsecond of [0, PLT] to exactly one phase.
TEST(CriticalPath, PhasesSumToPageLoadTime) {
  core::RunObservability observability;
  (void)run_study(0.0, &observability);
  ASSERT_FALSE(observability.waterfalls().empty());
  for (const auto& wf : observability.waterfalls()) {
    const CriticalPathResult r = analyze_critical_path(wf);
    EXPECT_DOUBLE_EQ(r.plt_ms, wf.page_load_time_ms);
    EXPECT_NEAR(r.phases.sum(), r.plt_ms, 1e-3) << wf.site << " " << wf.vantage;
    EXPECT_FALSE(r.path.empty());
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      EXPECT_GE(r.phases.ms[i], 0.0) << to_string(static_cast<Phase>(i));
    }
  }
}

// Under loss the same invariant must hold — stall carving (hol/retx out of
// wait+receive) must never create or destroy time.
TEST(CriticalPath, PhasesSumToPageLoadTimeUnderLoss) {
  core::RunObservability observability;
  (void)run_study(0.02, &observability);
  ASSERT_FALSE(observability.waterfalls().empty());
  for (const auto& wf : observability.waterfalls()) {
    const CriticalPathResult r = analyze_critical_path(wf);
    EXPECT_NEAR(r.phases.sum(), r.plt_ms, 1e-3) << wf.site << " " << wf.vantage;
  }
}

TEST(CriticalPath, DiffDeltasSumToPltDelta) {
  core::RunObservability observability;
  (void)run_study(0.01, &observability);
  const AttributionReport report = attribute_pages(observability.waterfalls());
  ASSERT_FALSE(report.pages.empty());
  ASSERT_FALSE(report.diffs.empty());
  for (const auto& page : report.pages) {
    EXPECT_NEAR(page.phases.sum(), page.plt_ms, 1e-3) << page.site << " " << page.run;
  }
  for (const auto& diff : report.diffs) {
    EXPECT_DOUBLE_EQ(diff.plt_delta_ms, diff.h2_plt_ms - diff.h3_plt_ms);
    // Two rounding grains: each side of the subtraction is exact to 1 µs.
    EXPECT_NEAR(diff.delta.sum(), diff.plt_delta_ms, 2e-3) << diff.site << " " << diff.pair;
  }
  // Every page pairs: one H2 and one H3 visit per (site, run) key.
  EXPECT_EQ(report.diffs.size() * 2, report.pages.size());
}

// The structural claim the attribution rests on: QUIC delivers per-stream,
// so a lost packet never stalls *another* stream (no cross-stream HoL spans
// on h3 entries), while TCP's in-order byte stream stalls every multiplexed
// stream behind the gap.
TEST(CriticalPath, HolStallsAppearOnTcpEntriesOnly) {
  core::RunObservability observability;
  (void)run_study(0.02, &observability, /*sites=*/6);
  double tcp_hol_ms = 0.0;
  double quic_hol_ms = 0.0;
  for (const auto& wf : observability.waterfalls()) {
    for (const auto& e : wf.entries) {
      if (e.protocol == "h3") {
        quic_hol_ms += e.hol_stall_ms;
      } else {
        tcp_hol_ms += e.hol_stall_ms;
      }
    }
  }
  EXPECT_EQ(quic_hol_ms, 0.0);
  EXPECT_GT(tcp_hol_ms, 0.0);
}

// Diff mode on a lossy study must show the H2 side losing time to HoL
// stalls that the H3 side does not pay (the paper's Fig. 9 mechanism).
TEST(CriticalPath, LossGapAttributedToHolStall) {
  core::RunObservability observability;
  (void)run_study(0.02, &observability, /*sites=*/6);
  const auto report = attribute_pages(observability.waterfalls());
  PhaseVector total{};
  for (const auto& diff : report.diffs) total += diff.delta;
  EXPECT_GT(total[Phase::HolStall], 0.0);
}

TEST(CriticalPath, DissectionAggregatesMatchPairMeans) {
  core::RunObservability observability;
  const auto study = run_study(0.01, &observability);
  const auto dissection = core::compute_plt_dissection(study);
  ASSERT_GT(dissection.overall.pages, 0u);
  // The mean delta vector must sum to the mean PLT delta (additivity
  // survives averaging — it is linear).
  EXPECT_NEAR(dissection.overall.mean_delta.sum(), dissection.overall.mean_plt_delta_ms(), 2e-3);
  for (const auto& row : dissection.by_vantage) {
    EXPECT_NEAR(row.mean_delta.sum(), row.mean_plt_delta_ms(), 2e-3) << row.group;
  }
  // Vantage rows partition the pairs.
  std::size_t vantage_pages = 0;
  for (const auto& row : dissection.by_vantage) vantage_pages += row.pages;
  EXPECT_EQ(vantage_pages, dissection.overall.pages);
}

TEST(CriticalPath, ZeroDurationPhaseRendersZeroWidthMarker) {
  Waterfall wf;
  wf.site = "site.example";
  wf.page_load_time_ms = 100.0;
  WaterfallEntry e;
  e.url = "https://site.example/";
  e.protocol = "h2";
  e.start_ms = 0.0;
  e.dns_ms = 10.0;  // every other phase is zero-duration
  wf.entries.push_back(e);
  const std::string art = waterfall_to_ascii(wf, 80);
  EXPECT_NE(art.find(".=zero-width phase"), std::string::npos);
  // The D run is followed by the zero-width marker, not silently nothing.
  EXPECT_NE(art.find("D."), std::string::npos);
}

TEST(CriticalPath, PhaseVectorArithmetic) {
  PhaseVector a{};
  a[Phase::Dns] = 2.0;
  a[Phase::Transfer] = 3.0;
  PhaseVector b{};
  b[Phase::Dns] = 0.5;
  const PhaseVector d = a - b;
  EXPECT_DOUBLE_EQ(d[Phase::Dns], 1.5);
  EXPECT_DOUBLE_EQ(d.sum(), 4.5);
  a += b;
  EXPECT_DOUBLE_EQ(a[Phase::Dns], 2.5);
  a /= 2.0;
  EXPECT_DOUBLE_EQ(a[Phase::Dns], 1.25);
  EXPECT_STREQ(to_string(Phase::HolStall), "hol_stall");
  EXPECT_STREQ(to_string(Phase::IdleGap), "idle_gap");
}

}  // namespace
}  // namespace h3cdn::obs
