#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace h3cdn::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint{0});
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(msec(30), [&] { order.push_back(3); });
  sim.schedule_at(msec(10), [&] { order.push_back(1); });
  sim.schedule_at(msec(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), msec(30));
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(msec(10), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  TimePoint fired{-1};
  sim.schedule_at(msec(5), [&] {
    sim.schedule_in(msec(7), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, msec(12));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(msec(10), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator sim;
  const EventId id = sim.schedule_at(msec(10), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelFiredEventFails) {
  Simulator sim;
  const EventId id = sim.schedule_at(msec(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(12345));
  EXPECT_FALSE(sim.cancel(0));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(msec(10), [&] { ++fired; });
  sim.schedule_at(msec(20), [&] { ++fired; });
  sim.schedule_at(msec(30), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(msec(20)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), msec(20));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(msec(50));
  EXPECT_EQ(sim.now(), msec(50));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_in(msec(1), recurse);
  };
  sim.schedule_in(msec(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), msec(10));
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(msec(1), [] {});
  const EventId id = sim.schedule_at(msec(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, IdleWhenOnlyCancelledRemain) {
  Simulator sim;
  const EventId id = sim.schedule_at(msec(2), [] {});
  sim.cancel(id);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(msec(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorDeath, PastSchedulingAborts) {
  Simulator sim;
  sim.schedule_at(msec(10), [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(msec(5), [] {}), "precondition");
}

// ---------------------------------------------------------------------------
// Scheduler-core contract, checked against BOTH backends: the calendar queue
// and the reference heap must be observably interchangeable.
// ---------------------------------------------------------------------------

class SchedulerBackendTest : public ::testing::TestWithParam<Simulator::Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, SchedulerBackendTest,
                         ::testing::Values(Simulator::Backend::Calendar,
                                           Simulator::Backend::Heap),
                         [](const auto& info) {
                           return info.param == Simulator::Backend::Calendar
                                      ? "Calendar"
                                      : "Heap";
                         });

TEST_P(SchedulerBackendTest, SameTimestampFifo) {
  Simulator sim(GetParam());
  std::vector<int> order;
  // Interleave two timestamps so same-time FIFO must hold per timestamp even
  // when insertions alternate.
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(msec(10), [&order, i] { order.push_back(i); });
    sim.schedule_at(msec(5), [&order, i] { order.push_back(1000 + i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[i], 1000 + i);       // all msec(5) events first, FIFO
    EXPECT_EQ(order[50 + i], i);         // then the msec(10) events, FIFO
  }
}

TEST_P(SchedulerBackendTest, CancelLastScheduledEvent) {
  Simulator sim(GetParam());
  bool fired = false;
  sim.schedule_at(msec(1), [] {});
  const EventId last = sim.schedule_at(msec(2), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(last));
  EXPECT_FALSE(sim.cancel(last));
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), msec(1));  // the cancelled tail never advanced the clock
}

TEST_P(SchedulerBackendTest, RunUntilIncludesEventExactlyAtBound) {
  Simulator sim(GetParam());
  std::vector<int> fired;
  sim.schedule_at(msec(10), [&] { fired.push_back(10); });
  sim.schedule_at(msec(20), [&] { fired.push_back(20); });  // exactly at bound
  sim.schedule_at(msec(20) + usec(1), [&] { fired.push_back(21); });
  EXPECT_EQ(sim.run_until(msec(20)), 2u);
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.now(), msec(20));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 21}));
}

TEST_P(SchedulerBackendTest, RescheduleFromInsideCallback) {
  Simulator sim(GetParam());
  std::vector<std::int64_t> fired_at;
  EventId victim = 0;
  sim.schedule_at(msec(5), [&] {
    // Cancel a pending event and replace it with an earlier AND a later one,
    // all from inside a running callback.
    EXPECT_TRUE(sim.cancel(victim));
    sim.schedule_at(msec(7), [&] { fired_at.push_back(sim.now().count()); });
    sim.schedule_at(msec(30), [&] { fired_at.push_back(sim.now().count()); });
    sim.schedule_in(Duration::zero(), [&] { fired_at.push_back(-1); });  // now
  });
  victim = sim.schedule_at(msec(20), [&] { fired_at.push_back(sim.now().count()); });
  sim.run();
  EXPECT_EQ(fired_at, (std::vector<std::int64_t>{-1, msec(7).count(), msec(30).count()}));
}

// Regression for the pending() double-bookkeeping bug: under interleaved
// schedule/cancel/run the old shadow-set accounting could drift from the
// queue's true live count. pending() must stay exact at every step.
TEST_P(SchedulerBackendTest, PendingExactUnderInterleaving) {
  Simulator sim(GetParam());
  std::vector<EventId> ids;
  std::size_t expected = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      ids.push_back(sim.schedule_at(msec(100 + round * 10 + i), [] {}));
      ++expected;
      ASSERT_EQ(sim.pending(), expected);
    }
    // Cancel every other id from this round, newest first.
    for (const std::size_t back : {1u, 3u, 5u, 7u, 9u}) {
      ASSERT_TRUE(sim.cancel(ids[ids.size() - back]));
      --expected;
      ASSERT_EQ(sim.pending(), expected);
    }
    // Double-cancel is a no-op on the count.
    ASSERT_FALSE(sim.cancel(ids.back()));
    ASSERT_EQ(sim.pending(), expected);
  }
  // Drain a prefix; pending() tracks executions too.
  const std::size_t ran = sim.run_until(msec(150));
  expected -= ran;
  ASSERT_EQ(sim.pending(), expected);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_TRUE(sim.idle());
}

// Differential fuzz: drive both cores through the same pseudo-random 10k-op
// schedule/cancel/run_until script and require the identical firing order.
TEST(SchedulerDifferential, TenThousandOpFuzz) {
  Simulator cal(Simulator::Backend::Calendar);
  Simulator heap(Simulator::Backend::Heap);
  std::vector<std::uint32_t> cal_fired;
  std::vector<std::uint32_t> heap_fired;
  std::vector<EventId> cal_ids;
  std::vector<EventId> heap_ids;

  std::uint64_t lcg = 0xdeadbeefcafef00dull;
  auto rnd = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };

  for (std::uint32_t op = 0; op < 10'000; ++op) {
    const std::uint64_t kind = rnd() % 100;
    if (kind < 70) {
      // Schedule at a horizon that clusters events (same-time collisions are
      // the interesting case for FIFO order).
      const Duration delay = usec(static_cast<std::int64_t>(rnd() % 5'000));
      cal_ids.push_back(cal.schedule_in(delay, [&cal_fired, op] { cal_fired.push_back(op); }));
      heap_ids.push_back(
          heap.schedule_in(delay, [&heap_fired, op] { heap_fired.push_back(op); }));
    } else if (kind < 90 && !cal_ids.empty()) {
      // Cancel a random previously issued id; outcomes must agree even for
      // already-fired or already-cancelled handles.
      const std::size_t pick = rnd() % cal_ids.size();
      EXPECT_EQ(cal.cancel(cal_ids[pick]), heap.cancel(heap_ids[pick])) << "op " << op;
    } else {
      // Advance both clocks through a bounded run.
      const TimePoint until = cal.now() + usec(static_cast<std::int64_t>(rnd() % 2'000));
      EXPECT_EQ(cal.run_until(until), heap.run_until(until)) << "op " << op;
      ASSERT_EQ(cal.now(), heap.now()) << "op " << op;
    }
    ASSERT_EQ(cal.pending(), heap.pending()) << "op " << op;
  }
  EXPECT_EQ(cal.run(), heap.run());
  EXPECT_EQ(cal.now(), heap.now());
  ASSERT_EQ(cal_fired, heap_fired);
  EXPECT_EQ(cal.events_executed(), heap.events_executed());
}

}  // namespace
}  // namespace h3cdn::sim
