#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace h3cdn::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint{0});
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(msec(30), [&] { order.push_back(3); });
  sim.schedule_at(msec(10), [&] { order.push_back(1); });
  sim.schedule_at(msec(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), msec(30));
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(msec(10), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  TimePoint fired{-1};
  sim.schedule_at(msec(5), [&] {
    sim.schedule_in(msec(7), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, msec(12));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(msec(10), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator sim;
  const EventId id = sim.schedule_at(msec(10), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelFiredEventFails) {
  Simulator sim;
  const EventId id = sim.schedule_at(msec(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(12345));
  EXPECT_FALSE(sim.cancel(0));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(msec(10), [&] { ++fired; });
  sim.schedule_at(msec(20), [&] { ++fired; });
  sim.schedule_at(msec(30), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(msec(20)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), msec(20));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(msec(50));
  EXPECT_EQ(sim.now(), msec(50));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_in(msec(1), recurse);
  };
  sim.schedule_in(msec(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), msec(10));
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(msec(1), [] {});
  const EventId id = sim.schedule_at(msec(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, IdleWhenOnlyCancelledRemain) {
  Simulator sim;
  const EventId id = sim.schedule_at(msec(2), [] {});
  sim.cancel(id);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(msec(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorDeath, PastSchedulingAborts) {
  Simulator sim;
  sim.schedule_at(msec(10), [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(msec(5), [] {}), "precondition");
}

}  // namespace
}  // namespace h3cdn::sim
