// Stream/connection flow control (RFC 9000 §4; H2 WINDOW_UPDATE semantics).
#include <gtest/gtest.h>

#include <memory>

#include "net/path.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "transport/connection.h"

namespace h3cdn::transport {
namespace {

using tls::HandshakeMode;
using tls::TlsVersion;
using tls::TransportKind;

struct Outcome {
  double last_ms = 0.0;
  std::vector<double> completions_ms;
  ConnectionStats stats;
};

Outcome run(TransportKind kind, TransportConfig config, int streams, std::size_t bytes) {
  sim::Simulator sim;
  net::PathConfig pc;
  pc.rtt = msec(20);
  pc.bandwidth_bps = 200e6;
  net::NetPath path(sim, pc, util::Rng(3));
  auto conn = Connection::create(sim, path, kind, TlsVersion::Tls13, HandshakeMode::Fresh,
                                 util::Rng(4), config);
  conn->connect([](TimePoint) {});
  Outcome out;
  out.completions_ms.resize(static_cast<std::size_t>(streams), -1.0);
  for (int i = 0; i < streams; ++i) {
    FetchCallbacks cbs;
    const auto idx = static_cast<std::size_t>(i);
    cbs.on_complete = [&out, idx](TimePoint t) {
      out.completions_ms[idx] = to_ms(t);
      out.last_ms = std::max(out.last_ms, to_ms(t));
    };
    conn->fetch(500, bytes, msec(1), std::move(cbs));
  }
  sim.run();
  out.stats = conn->stats();
  return out;
}

TEST(FlowControl, DefaultsNeverBindOnStudyScaleTransfers) {
  TransportConfig config;
  const auto out = run(TransportKind::Quic, config, 24, 30'000);
  for (double c : out.completions_ms) EXPECT_GT(c, 0.0);
  EXPECT_EQ(out.stats.flow_blocked_events, 0u);
}

TEST(FlowControl, TinyStreamWindowStillCompletes) {
  TransportConfig config;
  config.initial_stream_window = 8 * 1024;  // forces repeated grants
  const auto out = run(TransportKind::Quic, config, 1, 300'000);
  EXPECT_GT(out.completions_ms[0], 0.0);
  EXPECT_GT(out.stats.window_updates_sent, 5u);
}

TEST(FlowControl, SmallWindowThrottlesThroughput) {
  TransportConfig roomy;
  TransportConfig tight;
  tight.initial_stream_window = 16 * 1024;
  tight.initial_connection_window = 16 * 1024;
  const auto fast = run(TransportKind::Quic, roomy, 1, 400'000);
  const auto slow = run(TransportKind::Quic, tight, 1, 400'000);
  ASSERT_GT(slow.completions_ms[0], 0.0);
  // A 16KB window over a 20ms RTT caps throughput around 0.8 MB/s, so the
  // windowed transfer must be substantially slower.
  EXPECT_GT(slow.last_ms, fast.last_ms * 2);
  EXPECT_GT(slow.stats.flow_blocked_events, 0u);
}

TEST(FlowControl, ConnectionWindowCapsAggregateNotSingleStream) {
  TransportConfig config;
  config.initial_stream_window = 1 << 20;
  config.initial_connection_window = 64 * 1024;  // shared across streams
  const auto out = run(TransportKind::Quic, config, 8, 100'000);
  for (double c : out.completions_ms) EXPECT_GT(c, 0.0);
  EXPECT_GT(out.stats.flow_blocked_events, 0u);
  EXPECT_GT(out.stats.window_updates_sent, 0u);
}

TEST(FlowControl, BlockedStreamDoesNotStarveOthers) {
  // One huge response hits its stream window; small responses behind it in
  // the rotation must still complete promptly.
  sim::Simulator sim;
  net::PathConfig pc;
  pc.rtt = msec(20);
  pc.bandwidth_bps = 200e6;
  net::NetPath path(sim, pc, util::Rng(3));
  TransportConfig config;
  config.initial_stream_window = 32 * 1024;
  auto conn = Connection::create(sim, path, TransportKind::Quic, TlsVersion::Tls13,
                                 HandshakeMode::Fresh, util::Rng(4), config);
  conn->connect([](TimePoint) {});
  double big_done = -1, small_done = -1;
  FetchCallbacks big;
  big.on_complete = [&](TimePoint t) { big_done = to_ms(t); };
  conn->fetch(500, 600'000, msec(1), std::move(big));
  FetchCallbacks small;
  small.on_complete = [&](TimePoint t) { small_done = to_ms(t); };
  conn->fetch(500, 8'000, msec(1), std::move(small));
  sim.run();
  ASSERT_GT(big_done, 0.0);
  ASSERT_GT(small_done, 0.0);
  EXPECT_LT(small_done, big_done / 2);
}

TEST(FlowControl, BlockedHighPriorityBucketYieldsToLowerPriorities) {
  // Regression: if every stream in the most-urgent bucket is window-blocked,
  // the scheduler must fall through to lower-priority sendable streams
  // instead of stalling (previously tripped an internal assertion).
  sim::Simulator sim;
  net::PathConfig pc;
  pc.rtt = msec(20);
  pc.bandwidth_bps = 200e6;
  net::NetPath path(sim, pc, util::Rng(3));
  TransportConfig config;
  config.initial_stream_window = 16 * 1024;  // urgent stream blocks quickly
  config.respect_priorities = true;
  auto conn = Connection::create(sim, path, TransportKind::Tcp, TlsVersion::Tls13,
                                 HandshakeMode::Fresh, util::Rng(4), config);
  conn->connect([](TimePoint) {});
  double urgent_done = -1, lazy_done = -1;
  FetchCallbacks urgent;
  urgent.on_complete = [&](TimePoint t) { urgent_done = to_ms(t); };
  conn->fetch(500, 400'000, msec(1), std::move(urgent), /*priority=*/0);
  FetchCallbacks lazy;
  lazy.on_complete = [&](TimePoint t) { lazy_done = to_ms(t); };
  conn->fetch(500, 30'000, msec(1), std::move(lazy), /*priority=*/4);
  sim.run();
  EXPECT_GT(urgent_done, 0.0);
  EXPECT_GT(lazy_done, 0.0);
  // The low-priority stream progresses while the urgent one waits on grants.
  EXPECT_LT(lazy_done, urgent_done);
}

TEST(FlowControl, AppliesToTcpAsWell) {
  TransportConfig tight;
  tight.initial_stream_window = 16 * 1024;
  tight.initial_connection_window = 16 * 1024;
  const auto out = run(TransportKind::Tcp, tight, 1, 200'000);
  EXPECT_GT(out.completions_ms[0], 0.0);
  EXPECT_GT(out.stats.window_updates_sent, 3u);
}

TEST(FlowControl, ConnectionStallSpansRecordedWithMetricAndTrace) {
  // Connection-level MAX_DATA starvation must surface as its own stall kind:
  // ConnectionStats counters, the transport.stall.flow_control metric and a
  // FlowControlStallSpan trace event whose duration covers the blocked time.
  obs::MetricsRegistry registry;
  obs::ScopedMetrics scoped(&registry);
  sim::Simulator sim;
  net::PathConfig pc;
  pc.rtt = msec(20);
  pc.bandwidth_bps = 200e6;
  net::NetPath path(sim, pc, util::Rng(3));
  TransportConfig config;
  config.initial_stream_window = 1 << 20;
  config.initial_connection_window = 32 * 1024;  // aggregate starves first
  auto conn = Connection::create(sim, path, TransportKind::Quic, TlsVersion::Tls13,
                                 HandshakeMode::Fresh, util::Rng(4), config);
  auto trace = std::make_shared<trace::ConnectionTrace>();
  conn->set_trace(trace);
  conn->connect([](TimePoint) {});
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    FetchCallbacks cbs;
    cbs.on_complete = [&done](TimePoint) { ++done; };
    conn->fetch(500, 100'000, msec(1), std::move(cbs));
  }
  sim.run();
  EXPECT_EQ(done, 8);
  const auto stats = conn->stats();
  EXPECT_GT(stats.flow_control_stalls, 0u);
  EXPECT_GT(stats.flow_control_stall_total, Duration::zero());
  EXPECT_EQ(registry.counter("transport.stall.flow_control").value(),
            stats.flow_control_stalls);
  EXPECT_GT(trace->count(trace::EventType::FlowControlStallSpan), 0u);
  double span_ms = 0.0;
  for (const auto& ev : trace->events()) {
    if (ev.type == trace::EventType::FlowControlStallSpan) span_ms += ev.duration_ms;
  }
  EXPECT_NEAR(span_ms, to_ms(stats.flow_control_stall_total), 0.01);
}

TEST(FlowControl, StreamOnlyBlockingIsNotAConnectionStall) {
  // A stream hitting its own window while connection credit remains is the
  // existing flow_blocked case, not connection-level starvation.
  TransportConfig config;
  config.initial_stream_window = 16 * 1024;
  config.initial_connection_window = 1 << 20;
  const auto out = run(TransportKind::Quic, config, 1, 300'000);
  EXPECT_GT(out.completions_ms[0], 0.0);
  EXPECT_GT(out.stats.flow_blocked_events, 0u);
  EXPECT_EQ(out.stats.flow_control_stalls, 0u);
  EXPECT_EQ(out.stats.flow_control_stall_total, Duration::zero());
}

TEST(FlowControl, WindowedTransferMatchesBandwidthDelayMath) {
  // Steady-state rate ~= window / RTT. 32KB over ~20ms RTT + grant latency
  // gives roughly 1.2-1.6 MB/s; a 480KB body should need ~0.3-0.5s.
  TransportConfig config;
  config.initial_stream_window = 32 * 1024;
  config.initial_connection_window = 32 * 1024;
  const auto out = run(TransportKind::Quic, config, 1, 480'000);
  EXPECT_GT(out.last_ms, 200.0);
  EXPECT_LT(out.last_ms, 1'200.0);
}

}  // namespace
}  // namespace h3cdn::transport
