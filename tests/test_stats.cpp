#include "util/stats.h"

#include <gtest/gtest.h>

namespace h3cdn::util {
namespace {

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, SummaryUnsortedInput) {
  const Summary s = summarize({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 1.0), 4.0);
}

TEST(Stats, QuantileSingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7}, 0.9), 7.0);
}

TEST(Stats, CdfMonotoneAndComplete) {
  const auto c = cdf({3, 1, 2, 2});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.front().x, 1.0);
  EXPECT_DOUBLE_EQ(c.back().x, 3.0);
  EXPECT_DOUBLE_EQ(c.back().y, 1.0);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c[i - 1].x, c[i].x);
    EXPECT_LE(c[i - 1].y, c[i].y);
  }
}

TEST(Stats, CdfCollapsesDuplicates) {
  const auto c = cdf({2, 2, 2});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0].y, 1.0);
}

TEST(Stats, CcdfComplementsCdf) {
  const auto c = ccdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(c.front().y, 0.75);
  EXPECT_DOUBLE_EQ(c.back().y, 0.0);
}

TEST(Stats, FractionAbove) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(fraction_above(v, 25), 0.5);
  EXPECT_DOUBLE_EQ(fraction_above(v, 40), 0.0);
  EXPECT_DOUBLE_EQ(fraction_above(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_above({}, 0), 0.0);
}

TEST(Stats, FractionAtOrBelowComplements) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(fraction_at_or_below(v, 2) + fraction_above(v, 2), 1.0);
}

TEST(Stats, HistogramClampsOutliers) {
  const auto h = histogram({-5, 0.5, 1.5, 99}, 0, 2, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -5 clamped into first bin
  EXPECT_EQ(h[1], 2u);  // 99 clamped into last bin
}

TEST(Stats, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(Stats, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(mean({2, 4}), 3.0);
  EXPECT_DOUBLE_EQ(median({1, 100, 2}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

}  // namespace
}  // namespace h3cdn::util
