#include "util/types.h"

#include <gtest/gtest.h>

namespace h3cdn {
namespace {

TEST(Types, ConstructorsAgree) {
  EXPECT_EQ(usec(1500), msec(1) + usec(500));
  EXPECT_EQ(msec(2000), sec(2));
  EXPECT_EQ(sec(1).count(), 1'000'000);
}

TEST(Types, MsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_ms(msec(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_ms(usec(1)), 0.001);
  EXPECT_EQ(from_ms(250.0), msec(250));
  EXPECT_EQ(from_ms(0.0015), usec(2));  // rounds to nearest microsecond
  EXPECT_EQ(from_ms(-1.5), usec(-1500));
}

TEST(Types, SecRoundTrip) {
  EXPECT_DOUBLE_EQ(to_sec(sec(3)), 3.0);
  EXPECT_EQ(from_sec(0.25), msec(250));
  EXPECT_DOUBLE_EQ(to_sec(from_sec(1.234567)), 1.234567);
}

TEST(Types, IntegralMicrosecondsAreExact) {
  // The simulator's determinism rests on integral time arithmetic.
  Duration total{0};
  for (int i = 0; i < 1'000'000; ++i) total += usec(1);
  EXPECT_EQ(total, sec(1));
}

}  // namespace
}  // namespace h3cdn
