#include "http/pool.h"

#include <gtest/gtest.h>

#include <map>

#include "net/path.h"
#include "sim/simulator.h"

namespace h3cdn::http {
namespace {

struct Fixture {
  sim::Simulator sim;
  std::map<std::string, std::unique_ptr<net::NetPath>> paths;
  std::map<std::string, OriginInfo> origins;
  tls::SessionTicketStore tickets;

  void add_origin(const std::string& domain, bool h3, bool h2 = true,
                  const std::string& coalesce_key = "",
                  tls::TlsVersion tls_version = tls::TlsVersion::Tls13) {
    auto path = std::make_unique<net::NetPath>(
        sim, net::PathConfig{msec(20), 100e6, 0.0, usec(0)}, util::Rng(paths.size() + 1));
    OriginInfo info;
    info.path = path.get();
    info.supports_h3 = h3;
    info.supports_h2 = h2;
    info.coalesce_key = coalesce_key;
    info.tls_version = tls_version;
    origins[domain] = info;
    paths[domain] = std::move(path);
  }

  Resolver resolver() {
    return [this](const std::string& domain) { return origins.at(domain); };
  }

  ConnectionPool make_pool(bool h3_enabled, tls::SessionTicketStore* store = nullptr) {
    PoolConfig config;
    config.h3_enabled = h3_enabled;
    return ConnectionPool(sim, config, resolver(), store, util::Rng(77));
  }

  Request request(const std::string& domain, std::size_t bytes = 10'000) {
    Request r;
    r.domain = domain;
    r.path = "/r";
    r.response_bytes = bytes;
    r.server_think = msec(4);
    return r;
  }
};

TEST(Pool, RoutesH3WhenEnabledAndSupported) {
  Fixture f;
  f.add_origin("a.example", /*h3=*/true);
  auto pool = f.make_pool(true);
  EntryTimings out;
  pool.fetch(f.request("a.example"), [&](const EntryTimings& t) { out = t; });
  f.sim.run();
  EXPECT_EQ(out.version, HttpVersion::H3);
  EXPECT_EQ(pool.stats().h3_connections, 1u);
}

TEST(Pool, FallsBackToH2WhenBrowserDisablesQuic) {
  Fixture f;
  f.add_origin("a.example", /*h3=*/true);
  auto pool = f.make_pool(false);
  EntryTimings out;
  pool.fetch(f.request("a.example"), [&](const EntryTimings& t) { out = t; });
  f.sim.run();
  EXPECT_EQ(out.version, HttpVersion::H2);
}

TEST(Pool, FallsBackToH2WhenOriginLacksH3) {
  Fixture f;
  f.add_origin("a.example", /*h3=*/false);
  auto pool = f.make_pool(true);
  EntryTimings out;
  pool.fetch(f.request("a.example"), [&](const EntryTimings& t) { out = t; });
  f.sim.run();
  EXPECT_EQ(out.version, HttpVersion::H2);
}

TEST(Pool, LegacyOriginUsesH1) {
  Fixture f;
  f.add_origin("old.example", /*h3=*/false, /*h2=*/false);
  auto pool = f.make_pool(true);
  EntryTimings out;
  pool.fetch(f.request("old.example"), [&](const EntryTimings& t) { out = t; });
  f.sim.run();
  EXPECT_EQ(out.version, HttpVersion::H1_1);
  EXPECT_EQ(pool.stats().h1_connections, 1u);
}

TEST(Pool, H1OpensUpToSixParallelConnections) {
  Fixture f;
  f.add_origin("old.example", false, false);
  auto pool = f.make_pool(true);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    pool.fetch(f.request("old.example"), [&](const EntryTimings&) { ++done; });
  }
  EXPECT_EQ(pool.stats().h1_connections, 6u);
  f.sim.run();
  EXPECT_EQ(done, 10);
}

TEST(Pool, H1ReusesIdleKeepAliveConnection) {
  Fixture f;
  f.add_origin("old.example", false, false);
  auto pool = f.make_pool(true);
  bool first_done = false;
  pool.fetch(f.request("old.example"), [&](const EntryTimings&) { first_done = true; });
  f.sim.run();
  ASSERT_TRUE(first_done);
  EntryTimings second;
  pool.fetch(f.request("old.example"), [&](const EntryTimings& t) { second = t; });
  f.sim.run();
  EXPECT_EQ(pool.stats().h1_connections, 1u);
  EXPECT_TRUE(second.reused_connection);
}

TEST(Pool, OneH2ConnectionPerOrigin) {
  Fixture f;
  f.add_origin("a.example", false);
  auto pool = f.make_pool(true);
  int done = 0;
  for (int i = 0; i < 12; ++i) {
    pool.fetch(f.request("a.example"), [&](const EntryTimings&) { ++done; });
  }
  f.sim.run();
  EXPECT_EQ(done, 12);
  EXPECT_EQ(pool.stats().connections_created, 1u);
}

TEST(Pool, CoalescingSharesOneH2ConnectionAcrossDomains) {
  Fixture f;
  f.add_origin("a.cdn.example", false, true, "h2-coalesce:prov");
  f.add_origin("b.cdn.example", false, true, "h2-coalesce:prov");
  auto pool = f.make_pool(true);
  std::vector<EntryTimings> out;
  pool.fetch(f.request("a.cdn.example"), [&](const EntryTimings& t) { out.push_back(t); });
  pool.fetch(f.request("b.cdn.example"), [&](const EntryTimings& t) { out.push_back(t); });
  f.sim.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(pool.stats().connections_created, 1u);
  EXPECT_EQ(out[0].new_connection_initiator + out[1].new_connection_initiator, 1);
}

TEST(Pool, H3NeverCoalesces) {
  Fixture f;
  f.add_origin("a.cdn.example", true, true, "h2-coalesce:prov");
  f.add_origin("b.cdn.example", true, true, "h2-coalesce:prov");
  auto pool = f.make_pool(true);
  int done = 0;
  pool.fetch(f.request("a.cdn.example"), [&](const EntryTimings&) { ++done; });
  pool.fetch(f.request("b.cdn.example"), [&](const EntryTimings&) { ++done; });
  f.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(pool.stats().h3_connections, 2u);
}

TEST(Pool, ReuseDilution) {
  // The paper's §VI-C mechanism end to end: with partial H3 adoption, the
  // H3-enabled browser splits a provider's domains across H3 and coalesced-H2
  // connections, creating MORE connections (fewer reused entries) than the
  // H2-only browser, which funnels everything into one coalesced connection.
  for (bool h3_enabled : {false, true}) {
    Fixture f;
    f.add_origin("h3a.cdn.example", true, true, "h2-coalesce:prov");
    f.add_origin("h3b.cdn.example", true, true, "h2-coalesce:prov");
    f.add_origin("h2only.cdn.example", false, true, "h2-coalesce:prov");
    auto pool = f.make_pool(h3_enabled);
    int done = 0;
    for (const char* d : {"h3a.cdn.example", "h3b.cdn.example", "h2only.cdn.example"}) {
      for (int i = 0; i < 4; ++i) pool.fetch(f.request(d), [&](const EntryTimings&) { ++done; });
    }
    f.sim.run();
    EXPECT_EQ(done, 12);
    if (h3_enabled) {
      EXPECT_EQ(pool.stats().connections_created, 3u);  // 2 QUIC + 1 coalesced H2
    } else {
      EXPECT_EQ(pool.stats().connections_created, 1u);  // everything coalesced
    }
  }
}

TEST(Pool, TicketsDriveResumption) {
  Fixture f;
  f.add_origin("a.example", true);
  {
    auto pool = f.make_pool(true, &f.tickets);
    bool done = false;
    pool.fetch(f.request("a.example"), [&](const EntryTimings&) { done = true; });
    f.sim.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(pool.stats().resumed_connections, 0u);
    pool.close_all();
  }
  EXPECT_EQ(f.tickets.size(), 1u);
  {
    auto pool = f.make_pool(true, &f.tickets);
    EntryTimings out;
    pool.fetch(f.request("a.example"), [&](const EntryTimings& t) { out = t; });
    f.sim.run();
    EXPECT_EQ(pool.stats().resumed_connections, 1u);
    EXPECT_EQ(pool.stats().zero_rtt_connections, 1u);
    EXPECT_TRUE(out.resumed);
    EXPECT_LT(out.connect, msec(1));
  }
}

TEST(Pool, H2ResumptionStillPaysRtts) {
  Fixture f;
  f.add_origin("a.example", false);
  {
    auto pool = f.make_pool(false, &f.tickets);
    bool done = false;
    pool.fetch(f.request("a.example"), [&](const EntryTimings&) { done = true; });
    f.sim.run();
    ASSERT_TRUE(done);
    pool.close_all();
  }
  auto pool = f.make_pool(false, &f.tickets);
  EntryTimings out;
  pool.fetch(f.request("a.example"), [&](const EntryTimings& t) { out = t; });
  f.sim.run();
  EXPECT_TRUE(out.resumed);
  EXPECT_EQ(out.handshake_mode, tls::HandshakeMode::Resumed);
  // Still 2 RTT (TCP + TLS1.3 PSK without early data) = ~40ms here.
  EXPECT_GT(out.connect, msec(35));
}

TEST(Pool, ThinkTimeHookSeesNegotiatedProtocol) {
  Fixture f;
  f.add_origin("a.example", true);
  PoolConfig config;
  config.h3_enabled = true;
  HttpVersion seen = HttpVersion::H1_1;
  config.think_time = [&](const Request&, HttpVersion v) {
    seen = v;
    return msec(1);
  };
  ConnectionPool pool(f.sim, config, f.resolver(), nullptr, util::Rng(5));
  bool done = false;
  pool.fetch(f.request("a.example"), [&](const EntryTimings&) { done = true; });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(seen, HttpVersion::H3);
}

TEST(Pool, SessionCountAndCloseAll) {
  Fixture f;
  f.add_origin("a.example", true);
  f.add_origin("b.example", false);
  auto pool = f.make_pool(true);
  pool.fetch(f.request("a.example"), [](const EntryTimings&) {});
  pool.fetch(f.request("b.example"), [](const EntryTimings&) {});
  EXPECT_EQ(pool.session_count(), 2u);
  pool.close_all();
  EXPECT_EQ(pool.session_count(), 0u);
  f.sim.run();  // drains without firing completions
}

}  // namespace
}  // namespace h3cdn::http
