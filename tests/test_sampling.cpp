#include "load/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "load/study.h"
#include "util/rng.h"

namespace h3cdn::load {
namespace {

TEST(SamplePlan, InactiveWhenTargetCoversPopulation) {
  util::Rng rng(1);
  const std::vector<std::uint32_t> strata(40, 0);
  EXPECT_FALSE(plan_stratified_sample(strata, 0, rng).active);
  EXPECT_FALSE(plan_stratified_sample(strata, 40, rng).active);
  EXPECT_FALSE(plan_stratified_sample(strata, 100, rng).active);
}

TEST(SamplePlan, ProportionalAllocationAcrossStrata) {
  // 300 members of stratum 0, 100 of stratum 1; a 40-member coreset should
  // split ~30/10.
  std::vector<std::uint32_t> strata;
  for (int i = 0; i < 300; ++i) strata.push_back(0);
  for (int i = 0; i < 100; ++i) strata.push_back(1);
  util::Rng rng(7);
  const SamplePlan plan = plan_stratified_sample(strata, 40, rng);
  ASSERT_TRUE(plan.active);
  EXPECT_EQ(plan.population, 400u);
  EXPECT_EQ(plan.chosen.size(), 40u);
  ASSERT_EQ(plan.strata.size(), 2u);
  EXPECT_EQ(plan.strata[0].population, 300u);
  EXPECT_EQ(plan.strata[0].sampled, 30u);
  EXPECT_DOUBLE_EQ(plan.strata[0].weight, 10.0);
  EXPECT_EQ(plan.strata[1].population, 100u);
  EXPECT_EQ(plan.strata[1].sampled, 10u);
  EXPECT_DOUBLE_EQ(plan.strata[1].weight, 10.0);
}

TEST(SamplePlan, WeightsExtrapolateToThePopulation) {
  // Uneven strata: Σ chosen weights must reconstruct the population size.
  std::vector<std::uint32_t> strata;
  for (int i = 0; i < 17; ++i) strata.push_back(2);
  for (int i = 0; i < 211; ++i) strata.push_back(5);
  for (int i = 0; i < 72; ++i) strata.push_back(9);
  util::Rng rng(42);
  const SamplePlan plan = plan_stratified_sample(strata, 30, rng);
  ASSERT_TRUE(plan.active);
  double total = 0.0;
  for (double w : plan.weights) total += w;
  EXPECT_NEAR(total, 300.0, 1e-9);
  // Every chosen member's weight matches its stratum summary.
  std::map<std::uint32_t, double> weight_of;
  for (const StratumSummary& s : plan.strata) weight_of[s.id] = s.weight;
  for (std::size_t k = 0; k < plan.chosen.size(); ++k) {
    EXPECT_DOUBLE_EQ(plan.weights[k], weight_of[strata[plan.chosen[k]]]);
  }
}

TEST(SamplePlan, EveryNonEmptyStratumGetsAtLeastOneMember) {
  // 64 singleton strata and a tiny budget: each must still be represented.
  std::vector<std::uint32_t> strata;
  for (std::uint32_t s = 0; s < 64; ++s) strata.push_back(s);
  util::Rng rng(3);
  const SamplePlan plan = plan_stratified_sample(strata, 8, rng);
  ASSERT_TRUE(plan.active);
  EXPECT_EQ(plan.chosen.size(), 64u);  // min-one dominates the target
  for (const StratumSummary& s : plan.strata) EXPECT_EQ(s.sampled, 1u);
}

TEST(SamplePlan, ChosenAscendingUniqueAndDeterministic) {
  std::vector<std::uint32_t> strata;
  for (int i = 0; i < 500; ++i) strata.push_back(static_cast<std::uint32_t>(i % 3));
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  const SamplePlan a = plan_stratified_sample(strata, 50, rng_a);
  const SamplePlan b = plan_stratified_sample(strata, 50, rng_b);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.weights, b.weights);
  ASSERT_TRUE(std::is_sorted(a.chosen.begin(), a.chosen.end()));
  EXPECT_TRUE(std::adjacent_find(a.chosen.begin(), a.chosen.end()) == a.chosen.end());
}

TEST(WeightedQuantile, UnitWeightsMatchTypeOneQuantile) {
  std::vector<std::pair<double, double>> vw;
  for (int i = 1; i <= 100; ++i) vw.emplace_back(static_cast<double>(i), 1.0);
  const QuantileEstimate q50 = weighted_quantile(vw, 0.50, 1.96);
  const QuantileEstimate q95 = weighted_quantile(vw, 0.95, 1.96);
  EXPECT_DOUBLE_EQ(q50.value, 50.0);
  EXPECT_DOUBLE_EQ(q95.value, 95.0);
  EXPECT_DOUBLE_EQ(q50.n_eff, 100.0);
  // The CI brackets the point estimate and is ordered.
  EXPECT_LE(q95.lo, q95.value);
  EXPECT_GE(q95.hi, q95.value);
}

TEST(WeightedQuantile, WeightsShiftTheEstimate) {
  // One heavy upper value dominates half the mass: the weighted median must
  // land on it.
  std::vector<std::pair<double, double>> vw = {{1.0, 1.0}, {2.0, 1.0}, {100.0, 10.0}};
  EXPECT_DOUBLE_EQ(weighted_quantile(vw, 0.50, 1.96).value, 100.0);
  // Kish n_eff collapses toward 1 when one weight dominates.
  EXPECT_LT(weighted_quantile(vw, 0.50, 1.96).n_eff, 2.0);
}

TEST(WeightedQuantile, EmptyInputYieldsZeros) {
  const QuantileEstimate est = weighted_quantile({}, 0.95, 1.96);
  EXPECT_DOUBLE_EQ(est.value, 0.0);
  EXPECT_DOUBLE_EQ(est.n_eff, 0.0);
}

// End-to-end accuracy: a ~10% coreset of an uncontended load cell must
// reproduce the full-population p95 PLT within its own reported rank-CI.
// (Small scale here; CI smoke runs the bigger version via
// `h3cdn_study --experiment load --fleet-sample N --fleet-sample-verify`.)
TEST(SamplingAccuracy, CoresetP95WithinReportedBound) {
  LoadStudyConfig cfg;
  cfg.workload.site_count = 16;
  cfg.sites = 4;
  cfg.offered_rates = {6.0};
  cfg.window = sec(40);
  cfg.jobs = 0;
  cfg.capacity.enabled = false;  // uncontended: sampling's validity domain

  LoadStudyConfig sampled_cfg = cfg;
  sampled_cfg.sampling.target = 24;
  const LoadResult sampled = run_load_study(sampled_cfg);
  const LoadResult full = run_load_study(cfg);

  std::ostringstream report;
  EXPECT_TRUE(verify_sampling_accuracy(sampled, full, report)) << report.str();
  for (const LoadCellRow& row : sampled.rows) {
    EXPECT_EQ(row.population, full.rows.front().population);
    EXPECT_EQ(row.sampled, 24u);
    EXPECT_GT(row.n_eff, 0.0);
    EXPECT_LE(row.plt_p95_lo_ms, row.plt_p95_ms);
    EXPECT_GE(row.plt_p95_hi_ms, row.plt_p95_ms);
    // The extrapolated visit count reconstructs the population scale.
    EXPECT_NEAR(row.est_arrivals, static_cast<double>(row.population),
                static_cast<double>(row.population) * 0.05);
  }
}

}  // namespace
}  // namespace h3cdn::load
