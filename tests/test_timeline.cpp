// Time-resolved telemetry (docs/OBSERVABILITY.md): TimelineRecorder
// bucketing and merge determinism, the empty-window export convention, the
// SLO burn-rate evaluator's edge cases, fault->recovery annotation on a
// synthetic timeline, and a Chrome-trace export smoke test.
#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/fault_window.h"
#include "obs/perfetto.h"
#include "obs/slo.h"
#include "util/json_parse.h"

namespace h3cdn::obs {
namespace {

TimePoint at_ms(double ms) { return TimePoint{from_ms(ms)}; }

TEST(Timeline, BucketingIsIntegralFloorDivision) {
  TimelineRecorder r(msec(250));
  EXPECT_EQ(r.bucket_of(at_ms(0.0)), 0);
  EXPECT_EQ(r.bucket_of(at_ms(249.999)), 0);
  EXPECT_EQ(r.bucket_of(at_ms(250.0)), 1);
  EXPECT_EQ(r.bucket_of(at_ms(1249.0)), 4);
  // Sim time starts at zero; a negative instant clamps to window 0.
  EXPECT_EQ(r.bucket_of(TimePoint{msec(-10)}), 0);
}

TEST(Timeline, SeriesAccumulatePerWindow) {
  TimelineRecorder r(msec(100));
  r.count("c", at_ms(10));
  r.count("c", at_ms(90), 4);
  r.count("c", at_ms(150));
  r.gauge_set("g", at_ms(20), 3.0);
  r.gauge_set("g", at_ms(80), 7.0);  // same window: last write wins
  r.observe("h", at_ms(250), 40.0);
  r.observe("h", at_ms(260), 60.0);

  EXPECT_EQ(r.counters().at("c").at(0), 5u);
  EXPECT_EQ(r.counters().at("c").at(1), 1u);
  EXPECT_EQ(r.gauges().at("g").at(0).sets, 2u);
  EXPECT_DOUBLE_EQ(r.gauges().at("g").at(0).last, 7.0);
  EXPECT_EQ(r.histograms().at("h").at(2).count(), 2u);
  EXPECT_DOUBLE_EQ(r.histograms().at("h").at(2).sum(), 100.0);
  EXPECT_EQ(r.series_count(), 3u);
  EXPECT_EQ(r.span_buckets(), 3);
  EXPECT_EQ(r.counter_in_range("c", 0, 1), 6u);
  EXPECT_EQ(r.counter_in_range("c", 1, 5), 1u);
  EXPECT_EQ(r.counter_in_range("absent", 0, 5), 0u);
}

TEST(Timeline, HooksAreNoOpsWhenDisabledAndScopedInstallRestores) {
  ASSERT_EQ(TimelineRecorder::global(), nullptr);
  tl_count("nope", at_ms(0));
  tl_gauge_set("nope", at_ms(0), 1.0);
  tl_observe("nope", at_ms(0), 1.0);
  tl_observe_ms("nope", at_ms(0), msec(5));
  EXPECT_EQ(TimelineRecorder::global(), nullptr);

  TimelineRecorder outer;
  {
    ScopedTimeline outer_scope(&outer);
    tl_count("hits", at_ms(10), 2);
    {
      TimelineRecorder inner;
      ScopedTimeline inner_scope(&inner);
      tl_count("hits", at_ms(10));  // goes to inner, not outer
      EXPECT_EQ(inner.counter_in_range("hits", 0, 0), 1u);
    }
    tl_observe_ms("lat_ms", at_ms(10), msec(30));
  }
  EXPECT_EQ(TimelineRecorder::global(), nullptr);
  EXPECT_EQ(outer.counter_in_range("hits", 0, 0), 2u);
  EXPECT_DOUBLE_EQ(outer.histograms().at("lat_ms").at(0).sum(), 30.0);
}

// Splitting one sample stream across shards and folding them in canonical
// order must reproduce the sequential recorder byte for byte — the property
// that makes timeline.json/csv independent of --jobs.
TEST(Timeline, ShardMergeMatchesSequentialRecordingByteForByte) {
  TimelineRecorder whole(msec(250));
  TimelineRecorder shard[3] = {TimelineRecorder(msec(250)), TimelineRecorder(msec(250)),
                               TimelineRecorder(msec(250))};
  for (int i = 0; i < 300; ++i) {
    const double t = static_cast<double>(i) * 17.0;
    const double v = static_cast<double>((i * 37) % 1000 + 1);
    whole.count("deaths", at_ms(t), static_cast<std::uint64_t>(i % 3));
    whole.observe("plt_ms", at_ms(t), v);
    TimelineRecorder& s = shard[i % 3];
    s.count("deaths", at_ms(t), static_cast<std::uint64_t>(i % 3));
    s.observe("plt_ms", at_ms(t), v);
  }
  // Gauges are shard-local samples; the canonical merge order makes the last
  // shard's window value the merged one, same as sequential recording when
  // the writes happen in shard order.
  shard[0].gauge_set("depth", at_ms(100), 2.0);
  shard[2].gauge_set("depth", at_ms(100), 9.0);
  whole.gauge_set("depth", at_ms(100), 2.0);
  whole.gauge_set("depth", at_ms(100), 9.0);

  TimelineRecorder merged(msec(250));
  for (const auto& s : shard) merged.merge_from(s);
  EXPECT_EQ(timeline_to_json(merged), timeline_to_json(whole));
  EXPECT_EQ(timeline_to_csv(merged), timeline_to_csv(whole));
}

TEST(Timeline, MergeIsAssociative) {
  auto fill = [](TimelineRecorder& r, std::uint64_t salt) {
    for (int i = 0; i < 200; ++i) {
      const double t = static_cast<double>((salt * 131 + i * 53) % 5000);
      r.count("c", at_ms(t), salt);
      r.observe("h", at_ms(t), static_cast<double>((salt + i) % 100 + 1));
    }
  };
  TimelineRecorder a1, b1, c1, a2, b2, c2;
  fill(a1, 3);
  fill(a2, 3);
  fill(b1, 11);
  fill(b2, 11);
  fill(c1, 29);
  fill(c2, 29);

  TimelineRecorder left;  // (a + b) + c
  left.merge_from(a1);
  left.merge_from(b1);
  left.merge_from(c1);
  TimelineRecorder bc;  // a + (b + c)
  bc.merge_from(b2);
  bc.merge_from(c2);
  TimelineRecorder right;
  right.merge_from(a2);
  right.merge_from(bc);
  EXPECT_EQ(timeline_to_json(left), timeline_to_json(right));
  EXPECT_EQ(timeline_to_csv(left), timeline_to_csv(right));
}

TEST(TimelineDeathTest, MergeRejectsMismatchedBucketWidths) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  TimelineRecorder coarse(msec(500));
  TimelineRecorder fine(msec(250));
  EXPECT_DEATH(coarse.merge_from(fine), "bucket");
}

TEST(Timeline, DenseExportGivesEmptyWindowsCountZeroOnly) {
  TimelineRecorder r(msec(250));
  r.observe("plt_ms", at_ms(0), 120.0);
  r.observe("plt_ms", at_ms(900), 80.0);  // windows 1 and 2 are empty

  const auto doc = util::parse_json(timeline_to_json(r));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->number_or("bucket_ms", -1), 250.0);
  EXPECT_EQ(doc->number_or("span_buckets", -1), 4.0);
  EXPECT_EQ(doc->number_or("series_count", -1), 1.0);
  const util::JsonValue* series = doc->find("series")->find("plt_ms");
  ASSERT_NE(series, nullptr);
  const util::JsonValue* points = series->find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_TRUE(points->is_array());
  const auto& windows = points->as_array();
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[0].number_or("count", -1), 1.0);
  EXPECT_EQ(windows[3].number_or("t_ms", -1), 750.0);
  // PR 4 convention: an empty window is `count: 0` and nothing else.
  for (std::size_t w : {1u, 2u}) {
    EXPECT_EQ(windows[w].number_or("count", -1), 0.0);
    for (const char* field : {"value", "sum", "mean", "min", "max", "p50", "p90", "p99"}) {
      EXPECT_EQ(windows[w].find(field), nullptr) << "window " << w << " " << field;
    }
  }

  const std::string csv = timeline_to_csv(r);
  EXPECT_EQ(csv.rfind("series,kind,t_ms,count,value,p50,p90,p99,max\n", 0), 0u);
  EXPECT_NE(csv.find("plt_ms,histogram,250,0,,,,,\n"), std::string::npos);
}

// --- SLO evaluator ---------------------------------------------------------

SloObjective counter_slo(std::string series, double threshold = 0.0) {
  SloObjective o;
  o.name = "test-" + series;
  o.series = std::move(series);
  o.signal = SloSignal::CounterTotal;
  o.threshold = threshold;
  return o;
}

TEST(Slo, EmptyTimelineReportsNoData) {
  TimelineRecorder r;
  const auto results = evaluate_slos(r, default_slo_objectives());
  ASSERT_EQ(results.size(), default_slo_objectives().size());
  for (const auto& res : results) {
    EXPECT_TRUE(res.no_data) << res.objective.name;
    EXPECT_TRUE(res.passed()) << res.objective.name;
    EXPECT_EQ(res.windows, 0u);
  }
}

TEST(Slo, MissingSeriesIsNoDataNotABreach) {
  TimelineRecorder r;
  r.count("something.else", at_ms(0));  // span > 0, target series absent
  const auto results = evaluate_slos(r, {counter_slo("load.visits_failed")});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].no_data);
  EXPECT_TRUE(results[0].passed());
  EXPECT_EQ(results[0].empty_windows, results[0].windows);
}

TEST(Slo, CounterClassifiesEveryWindowOnceTheSeriesExists) {
  // Zero increments in a window is a real "nothing failed" measurement; only
  // 1 of 8 windows is bad, under the 20% budget, and the long burn range
  // dilutes the spike below its threshold: passed.
  TimelineRecorder r(msec(250));
  r.count("load.visits", at_ms(1900));  // stretch the span to 8 windows
  r.count("load.visits_failed", at_ms(600), 3);
  SloObjective o = counter_slo("load.visits_failed");
  o.error_budget = 0.20;
  const auto results = evaluate_slos(r, {o});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].no_data);
  EXPECT_EQ(results[0].windows, 8u);
  EXPECT_EQ(results[0].empty_windows, 0u);
  EXPECT_EQ(results[0].bad_windows, 1u);
  EXPECT_TRUE(results[0].has_worst);
  EXPECT_DOUBLE_EQ(results[0].worst_value, 3.0);
  EXPECT_FALSE(results[0].breached);
  EXPECT_FALSE(results[0].burn_alert) << results[0].max_long_burn;
  EXPECT_TRUE(results[0].passed());
}

TEST(Slo, SustainedBadnessTripsBreachAndBurnAlert) {
  TimelineRecorder r(msec(250));
  for (int w = 0; w < 20; ++w) {
    r.count("load.visits_failed", at_ms(w * 250.0), w < 12 ? 2u : 0u);
  }
  SloObjective o = counter_slo("load.visits_failed");
  o.error_budget = 0.10;
  const auto results = evaluate_slos(r, {o});
  ASSERT_EQ(results.size(), 1u);
  // 12/20 bad >> 10% budget; a fully-bad short range burns 1.0/0.1 = 10x.
  EXPECT_TRUE(results[0].breached);
  EXPECT_DOUBLE_EQ(results[0].max_short_burn, 10.0);
  EXPECT_TRUE(results[0].burn_alert);
  EXPECT_FALSE(results[0].passed());
}

TEST(Slo, ShortSpikeAloneDoesNotPageWithoutTheLongWindow) {
  // One bad window in a long healthy run: the short burn spikes over its
  // threshold but the long burn stays under 1.0 — no alert. This is the
  // blip-filtering the multi-window rule exists for. A 32-window long range
  // dilutes a single bad window to 1/32 while the 4-window short range sees
  // 1/4 of it; with a 5% budget that is 0.625x long vs 5x short.
  TimelineRecorder r(msec(250));
  for (int w = 0; w < 64; ++w) {
    r.count("load.visits_failed", at_ms(w * 250.0), w == 30 ? 5u : 0u);
  }
  SloObjective o = counter_slo("load.visits_failed");
  o.error_budget = 0.05;
  o.long_windows = 32;
  const auto results = evaluate_slos(r, {o});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GE(results[0].max_short_burn, o.short_burn_threshold);
  EXPECT_LT(results[0].max_long_burn, o.long_burn_threshold);
  EXPECT_FALSE(results[0].burn_alert);
  EXPECT_FALSE(results[0].breached);  // 1/64 under the 5% budget
  EXPECT_TRUE(results[0].passed());
}

TEST(Slo, SingleBucketRunStillEvaluates) {
  // Trailing ranges clamp to the available span, so a one-window run with a
  // bad window burns at 1/budget in both ranges and pages.
  TimelineRecorder r(msec(250));
  r.count("load.visits_failed", at_ms(10), 1);
  const auto results = evaluate_slos(r, {counter_slo("load.visits_failed")});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].windows, 1u);
  EXPECT_TRUE(results[0].breached);
  EXPECT_TRUE(results[0].burn_alert);
}

TEST(Slo, HistogramQuantileAndGaugeSignalsJudgePerWindow) {
  TimelineRecorder r(msec(250));
  r.observe("load.plt_ms", at_ms(0), 500.0);
  r.observe("load.plt_ms", at_ms(300), 3000.0);  // window 1 over the 2s bar
  r.gauge_set("load.queue_depth", at_ms(0), 40.0);
  r.gauge_set("load.queue_depth", at_ms(300), 8.0);
  const auto results = evaluate_slos(r, default_slo_objectives());
  const SloResult* plt = nullptr;
  const SloResult* queue = nullptr;
  for (const auto& res : results) {
    if (res.objective.name == "plt-p95-under-2s") plt = &res;
    if (res.objective.name == "accept-queue-under-32") queue = &res;
  }
  ASSERT_NE(plt, nullptr);
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(plt->bad_windows, 1u);
  EXPECT_GT(plt->worst_value, 2000.0);
  EXPECT_EQ(queue->bad_windows, 1u);
  EXPECT_DOUBLE_EQ(queue->worst_value, 40.0);
}

TEST(Slo, JsonExportCarriesSpecAndVerdict) {
  TimelineRecorder r(msec(250));
  r.count("load.visits_failed", at_ms(10), 1);
  const auto results = evaluate_slos(r, default_slo_objectives());
  const auto doc = util::parse_json(slo_to_json(r, results));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->number_or("bucket_ms", -1), 250.0);
  const util::JsonValue* objectives = doc->find("objectives");
  ASSERT_NE(objectives, nullptr);
  ASSERT_TRUE(objectives->is_array());
  ASSERT_EQ(objectives->as_array().size(), default_slo_objectives().size());
  bool saw_failed_visits = false;
  for (const auto& item : objectives->as_array()) {
    if (item.string_or("name", "") != "no-failed-visits") continue;
    saw_failed_visits = true;
    EXPECT_EQ(item.string_or("signal", ""), "counter_total");
    EXPECT_EQ(item.number_or("bad_windows", -1), 1.0);
    EXPECT_EQ(item.bool_or("passed", true), false);
  }
  EXPECT_TRUE(saw_failed_visits);
}

// --- Fault -> recovery annotation ------------------------------------------

TEST(FaultWindow, AnnotatesDetectionRecoveryAndMttr) {
  TimelineRecorder r(msec(250));
  // Healthy traffic stretches the span; deaths degrade windows 4..7.
  r.count("load.visits", at_ms(2900));
  r.count("http.pool.connection_deaths", at_ms(1100), 2);  // window 4
  r.count("load.visits_failed", at_ms(1800));              // window 7
  r.count("resilience.breaker.opened", at_ms(1300));       // window 5
  r.count("resilience.breaker.closed", at_ms(2300));       // window 9

  FaultWindowSpec spec;
  spec.scenario = "edge-outage";
  spec.faulted = true;
  spec.start_ms = 1000.0;
  spec.end_ms = 1700.0;
  const FaultAnnotation a = annotate_fault_recovery(r, spec);
  EXPECT_EQ(a.degraded_windows, 2u);
  EXPECT_DOUBLE_EQ(a.detection_ms, 1000.0);  // window 4 start
  EXPECT_DOUBLE_EQ(a.recovery_ms, 2000.0);   // end of window 7
  EXPECT_DOUBLE_EQ(a.mttr_ms, 1000.0);
  EXPECT_DOUBLE_EQ(a.time_to_breaker_open_ms, 250.0);
  EXPECT_DOUBLE_EQ(a.time_to_breaker_close_ms, 1250.0);
}

TEST(FaultWindow, NeverDegradedMeansInstantRecoveryAndZeroMttr) {
  TimelineRecorder r(msec(250));
  r.count("load.visits", at_ms(900), 10);  // healthy-only traffic

  FaultWindowSpec faulted;
  faulted.scenario = "inert-fault";
  faulted.faulted = true;
  faulted.start_ms = 200.0;
  faulted.end_ms = 600.0;
  const FaultAnnotation a = annotate_fault_recovery(r, faulted);
  EXPECT_EQ(a.degraded_windows, 0u);
  EXPECT_DOUBLE_EQ(a.detection_ms, -1.0);
  EXPECT_DOUBLE_EQ(a.recovery_ms, -1.0);
  EXPECT_DOUBLE_EQ(a.mttr_ms, 0.0);  // the always-finite MTTR contract
  EXPECT_DOUBLE_EQ(a.time_to_breaker_open_ms, -1.0);

  FaultWindowSpec baseline;
  baseline.scenario = "baseline";
  const FaultAnnotation b = annotate_fault_recovery(r, baseline);
  EXPECT_FALSE(b.faulted);
  EXPECT_DOUBLE_EQ(b.mttr_ms, 0.0);
}

TEST(FaultWindow, JsonExportCarriesOneObjectPerScenario) {
  TimelineRecorder r(msec(250));
  r.count("http.pool.connection_deaths", at_ms(100));
  FaultWindowSpec spec;
  spec.scenario = "kill";
  spec.faulted = true;
  spec.end_ms = 500.0;
  const std::vector<FaultAnnotation> annotations = {annotate_fault_recovery(r, spec)};
  const auto doc = util::parse_json(fault_annotations_to_json(annotations, 250.0));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->number_or("bucket_ms", -1), 250.0);
  const util::JsonValue* items = doc->find("annotations");
  ASSERT_NE(items, nullptr);
  ASSERT_TRUE(items->is_array());
  ASSERT_EQ(items->as_array().size(), 1u);
  EXPECT_EQ(items->as_array()[0].string_or("scenario", ""), "kill");
  EXPECT_EQ(items->as_array()[0].number_or("mttr_ms", -1), 250.0);
  EXPECT_EQ(items->as_array()[0].number_or("degraded_windows", -1), 1.0);
}

// --- Chrome-trace export ---------------------------------------------------

TEST(Perfetto, ChromeTraceExportCarriesPagesAndSpans) {
  Waterfall w;
  w.site = "example.com";
  w.vantage = "eu/p0/h3";
  w.h3_enabled = true;
  w.page_load_time_ms = 800.0;
  WaterfallEntry e;
  e.url = "https://example.com/";
  e.domain = "example.com";
  e.type = "document";
  e.protocol = "h3";
  e.connection_id = 7;
  e.wait_ms = 100.0;
  e.receive_ms = 50.0;
  e.response_bytes = 2048;
  w.entries.push_back(e);

  const std::string trace = to_chrome_trace_json({w}, nullptr);
  const auto doc = util::parse_json(trace);
  ASSERT_TRUE(doc.has_value()) << trace;
  EXPECT_EQ(doc->string_or("displayTimeUnit", ""), "ms");
  const util::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_page_span = false;
  bool saw_entry_span = false;
  for (const auto& ev : events->as_array()) {
    if (ev.string_or("ph", "") != "X") continue;
    if (ev.string_or("name", "") == "page-load: example.com") {
      saw_page_span = true;
      // Microsecond timestamps: 800 ms page load = 800000 us duration.
      EXPECT_EQ(ev.number_or("dur", -1), 800000.0);
    }
    if (ev.string_or("name", "") == "https://example.com/") {
      saw_entry_span = true;
      EXPECT_EQ(ev.number_or("tid", -1), 8.0);  // connection_id + 1
    }
  }
  EXPECT_TRUE(saw_page_span);
  EXPECT_TRUE(saw_entry_span);
}

}  // namespace
}  // namespace h3cdn::obs
