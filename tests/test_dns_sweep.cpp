// Property sweep over DNS transports x query-loss rates: resolution always
// terminates, caches stay coherent, and encrypted channels amortize.
#include <gtest/gtest.h>

#include "dns/resolver.h"

namespace h3cdn::dns {
namespace {

struct SweepParam {
  DnsTransport transport;
  double loss;
};

class DnsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DnsSweep, EveryQueryResolves) {
  sim::Simulator sim;
  ResolverConfig config;
  config.transport = GetParam().transport;
  config.query_loss_rate = GetParam().loss;
  Resolver r(sim, config, util::Rng(3));
  int resolved = 0;
  for (int i = 0; i < 40; ++i) {
    r.resolve("host" + std::to_string(i) + ".example", [&](TimePoint) { ++resolved; });
  }
  sim.run();
  EXPECT_EQ(resolved, 40);
  EXPECT_EQ(r.cache().size(), 40u);
}

TEST_P(DnsSweep, ResolutionLatencyIsNonNegativeAndBounded) {
  sim::Simulator sim;
  ResolverConfig config;
  config.transport = GetParam().transport;
  config.query_loss_rate = GetParam().loss;
  Resolver r(sim, config, util::Rng(5));
  std::vector<double> latencies;
  TimePoint start = sim.now();
  for (int i = 0; i < 20; ++i) {
    r.resolve("h" + std::to_string(i) + ".example", [&, start](TimePoint t) {
      latencies.push_back(to_ms(t - start));
    });
    sim.run();
    start = sim.now();
  }
  for (double l : latencies) {
    EXPECT_GE(l, 0.0);
    EXPECT_LT(l, 10'000.0);  // even heavy loss resolves within seconds
  }
}

TEST_P(DnsSweep, SecondResolutionIsCached) {
  sim::Simulator sim;
  ResolverConfig config;
  config.transport = GetParam().transport;
  config.query_loss_rate = GetParam().loss;
  Resolver r(sim, config, util::Rng(7));
  r.resolve("a.example", [](TimePoint) {});
  sim.run();
  const TimePoint before = sim.now();
  TimePoint after{-1};
  r.resolve("a.example", [&](TimePoint t) { after = t; });
  sim.run();
  EXPECT_EQ(after, before);  // stub cache: zero simulated latency
}

TEST_P(DnsSweep, DeterministicGivenSeed) {
  auto run_once = [&] {
    sim::Simulator sim;
    ResolverConfig config;
    config.transport = GetParam().transport;
    config.query_loss_rate = GetParam().loss;
    Resolver r(sim, config, util::Rng(11));
    std::vector<std::int64_t> times;
    for (int i = 0; i < 15; ++i) {
      r.resolve("h" + std::to_string(i) + ".example",
                [&](TimePoint t) { times.push_back(t.count()); });
    }
    sim.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    TransportsAndLoss, DnsSweep,
    ::testing::Values(SweepParam{DnsTransport::Do53, 0.0}, SweepParam{DnsTransport::Do53, 0.3},
                      SweepParam{DnsTransport::DoT, 0.0}, SweepParam{DnsTransport::DoT, 0.2},
                      SweepParam{DnsTransport::DoH, 0.0}, SweepParam{DnsTransport::DoH, 0.2},
                      SweepParam{DnsTransport::DoQ, 0.0}, SweepParam{DnsTransport::DoQ, 0.2}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(to_string(info.param.transport)) + "_loss" +
             std::to_string(static_cast<int>(info.param.loss * 100));
    });

}  // namespace
}  // namespace h3cdn::dns
