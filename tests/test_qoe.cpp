// QoE metrics beyond PLT (obs::compute_qoe, docs/OBSERVABILITY.md
// "Archetypes & QoE"): first-contentful-resource time and the Speed-Index
// style byte-progress integral.
#include "obs/waterfall.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/critical_path.h"

namespace h3cdn::obs {
namespace {

WaterfallEntry entry(const std::string& type, double start_ms, double receive_ms,
                     std::int64_t initiator, std::uint64_t bytes) {
  WaterfallEntry e;
  e.url = "https://example.org/" + type;
  e.type = type;
  e.start_ms = start_ms;
  e.receive_ms = receive_ms;
  e.initiator_index = initiator;
  e.response_bytes = bytes;
  return e;
}

TEST(Qoe, FcpIsRootEndWithoutRenderBlockingResources) {
  Waterfall wf;
  wf.entries.push_back(entry("document", 0.0, 100.0, -1, 1000));
  wf.entries.push_back(entry("image", 100.0, 400.0, 0, 4000));  // images never block
  const QoeMetrics q = compute_qoe(wf);
  EXPECT_DOUBLE_EQ(q.fcp_ms, 100.0);
  EXPECT_EQ(q.render_blocking_count, 0u);
}

TEST(Qoe, RenderBlockingCssAndScriptPushFcpOut) {
  Waterfall wf;
  wf.entries.push_back(entry("document", 0.0, 100.0, -1, 1000));
  wf.entries.push_back(entry("css", 100.0, 50.0, 0, 500));      // ends at 150
  wf.entries.push_back(entry("script", 100.0, 120.0, 0, 800));  // ends at 220
  wf.entries.push_back(entry("image", 100.0, 900.0, 0, 4000));  // ends at 1000, no FCP effect
  wf.entries.push_back(entry("script", 220.0, 300.0, 2, 800));  // initiated by a script, not root
  const QoeMetrics q = compute_qoe(wf);
  EXPECT_DOUBLE_EQ(q.fcp_ms, 220.0);
  EXPECT_EQ(q.render_blocking_count, 2u);
}

TEST(Qoe, FailedBlockersDoNotGateFcp) {
  Waterfall wf;
  wf.entries.push_back(entry("document", 0.0, 100.0, -1, 1000));
  WaterfallEntry failed_css = entry("css", 100.0, 5000.0, 0, 0);
  failed_css.failed = true;
  wf.entries.push_back(failed_css);
  const QoeMetrics q = compute_qoe(wf);
  EXPECT_DOUBLE_EQ(q.fcp_ms, 100.0);
  EXPECT_EQ(q.render_blocking_count, 0u);
}

TEST(Qoe, SpeedIndexIsByteWeightedMeanCompletion) {
  Waterfall wf;
  wf.entries.push_back(entry("document", 0.0, 100.0, -1, 1000));  // 1000 B at 100 ms
  wf.entries.push_back(entry("image", 100.0, 200.0, 0, 3000));    // 3000 B at 300 ms
  const QoeMetrics q = compute_qoe(wf);
  EXPECT_EQ(q.bytes_total, 4000u);
  EXPECT_DOUBLE_EQ(q.speed_index_ms, (1000.0 * 100.0 + 3000.0 * 300.0) / 4000.0);
}

TEST(Qoe, SpeedIndexIsMonotoneUnderAddedIdleGap) {
  // Delaying one resource's start (an idle gap on its critical path) can only
  // push byte delivery later, so the integral must not decrease.
  Waterfall base;
  base.entries.push_back(entry("document", 0.0, 100.0, -1, 1000));
  base.entries.push_back(entry("image", 100.0, 200.0, 0, 3000));
  Waterfall delayed = base;
  delayed.entries[1].start_ms += 250.0;  // same phases, later start
  const double without_gap = compute_qoe(base).speed_index_ms;
  const double with_gap = compute_qoe(delayed).speed_index_ms;
  EXPECT_GT(with_gap, without_gap);
  EXPECT_DOUBLE_EQ(with_gap - without_gap, 250.0 * 3000.0 / 4000.0);
}

TEST(Qoe, EmptyAndZeroByteWaterfallsDegradeGracefully) {
  const QoeMetrics empty = compute_qoe(Waterfall{});
  EXPECT_DOUBLE_EQ(empty.fcp_ms, 0.0);
  EXPECT_DOUBLE_EQ(empty.speed_index_ms, 0.0);
  // A waterfall that carried no bytes falls back to fcp rather than 0/0.
  Waterfall wf;
  wf.entries.push_back(entry("document", 0.0, 80.0, -1, 0));
  const QoeMetrics q = compute_qoe(wf);
  EXPECT_DOUBLE_EQ(q.fcp_ms, 80.0);
  EXPECT_DOUBLE_EQ(q.speed_index_ms, 80.0);
  EXPECT_EQ(q.bytes_total, 0u);
}

TEST(Qoe, WaterfallJsonCarriesTheQoeObject) {
  Waterfall wf;
  wf.site = "example.org";
  wf.entries.push_back(entry("document", 0.0, 100.0, -1, 1000));
  const std::string json = waterfall_to_json(wf);
  EXPECT_NE(json.find("\"qoe\":{\"fcp_ms\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"speed_index_ms\":100"), std::string::npos) << json;
}

TEST(Qoe, CriticalPathResultExposesQoe) {
  Waterfall wf;
  wf.entries.push_back(entry("document", 0.0, 100.0, -1, 1000));
  wf.entries.push_back(entry("css", 100.0, 60.0, 0, 500));
  const CriticalPathResult cp = analyze_critical_path(wf);
  EXPECT_DOUBLE_EQ(cp.qoe.fcp_ms, 160.0);
  EXPECT_EQ(cp.qoe.render_blocking_count, 1u);
}

}  // namespace
}  // namespace h3cdn::obs
