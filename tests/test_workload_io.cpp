#include "web/workload_io.h"

#include <gtest/gtest.h>

#include "browser/browser.h"

namespace h3cdn::web {
namespace {

Workload small_workload() {
  WorkloadConfig cfg;
  cfg.site_count = 6;
  return generate_workload(cfg);
}

TEST(WorkloadIo, RoundTripPreservesStructure) {
  const Workload original = small_workload();
  WorkloadIoError error;
  const auto loaded = workload_from_json(workload_to_json(original), &error);
  ASSERT_TRUE(loaded.has_value()) << error.message;
  ASSERT_EQ(loaded->sites.size(), original.sites.size());
  for (std::size_t i = 0; i < original.sites.size(); ++i) {
    const auto& a = original.sites[i];
    const auto& b = loaded->sites[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.page.origin_domain, b.page.origin_domain);
    ASSERT_EQ(a.page.resources.size(), b.page.resources.size());
    for (std::size_t j = 0; j < a.page.resources.size(); ++j) {
      EXPECT_EQ(a.page.resources[j].domain, b.page.resources[j].domain);
      EXPECT_EQ(a.page.resources[j].size_bytes, b.page.resources[j].size_bytes);
      EXPECT_EQ(a.page.resources[j].is_cdn, b.page.resources[j].is_cdn);
      EXPECT_EQ(a.page.resources[j].provider, b.page.resources[j].provider);
      EXPECT_EQ(a.page.resources[j].discovery_wave, b.page.resources[j].discovery_wave);
      EXPECT_EQ(a.page.resources[j].response_headers, b.page.resources[j].response_headers);
    }
  }
}

TEST(WorkloadIo, RoundTripPreservesDomainFlags) {
  const Workload original = small_workload();
  const auto loaded = workload_from_json(workload_to_json(original));
  ASSERT_TRUE(loaded.has_value());
  for (const auto& name : original.universe.all_domain_names()) {
    const auto& a = original.universe.get(name);
    ASSERT_TRUE(loaded->universe.contains(name)) << name;
    const auto& b = loaded->universe.get(name);
    EXPECT_EQ(a.is_cdn, b.is_cdn);
    EXPECT_EQ(a.provider, b.provider);
    EXPECT_EQ(a.supports_h2, b.supports_h2);
    EXPECT_EQ(a.supports_h3, b.supports_h3);
    EXPECT_EQ(a.tls_version, b.tls_version);
  }
}

TEST(WorkloadIo, LoadedWorkloadDrivesTheBrowserIdentically) {
  const Workload original = small_workload();
  const auto loaded = workload_from_json(workload_to_json(original));
  ASSERT_TRUE(loaded.has_value());
  auto visit = [](const Workload& w) {
    sim::Simulator sim;
    browser::Environment env(sim, w.universe, browser::VantageConfig{}, util::Rng(7));
    env.warm_page(w.sites[0].page);
    browser::BrowserConfig config;
    browser::Browser chrome(sim, env, nullptr, config, util::Rng(8));
    return chrome.visit_and_run(w.sites[0].page).har.page_load_time;
  };
  EXPECT_EQ(visit(original), visit(*loaded));
}

TEST(WorkloadIo, RejectsUnknownSchema) {
  WorkloadIoError error;
  EXPECT_FALSE(workload_from_json(R"({"schema":"other"})", &error).has_value());
  EXPECT_NE(error.message.find("schema"), std::string::npos);
}

TEST(WorkloadIo, RejectsResourceWithUnknownDomain) {
  const char* doc = R"({"schema":"h3cdn-workload-v1","seed":1,
    "domains":[{"name":"www.x.example","is_cdn":false,"provider":"non-CDN",
                "supports_h2":true,"supports_h3":false,"tls":"1.3","popularity":1}],
    "sites":[{"name":"x.example","rank":1,"origin":"www.x.example",
      "html":{"id":1,"domain":"www.x.example","path":"/","type":"html",
              "size_bytes":1000,"request_bytes":500,"is_cdn":false,
              "provider":"non-CDN","wave":0,"headers":[]},
      "resources":[{"id":2,"domain":"ghost.example","path":"/a","type":"image",
                    "size_bytes":1000,"request_bytes":500,"is_cdn":false,
                    "provider":"non-CDN","wave":0,"headers":[]}]}]})";
  WorkloadIoError error;
  EXPECT_FALSE(workload_from_json(doc, &error).has_value());
  EXPECT_NE(error.message.find("unknown domain"), std::string::npos);
}

TEST(WorkloadIo, AcceptsHandAuthoredMinimalWorkload) {
  // The use case: encode a real page composition by hand (or from HTTP
  // Archive data) and run it through the study pipeline.
  const char* doc = R"({"schema":"h3cdn-workload-v1","seed":1,
    "domains":[
      {"name":"www.x.example","is_cdn":false,"provider":"non-CDN",
       "supports_h2":true,"supports_h3":true,"tls":"1.3","popularity":1},
      {"name":"cdn.custom-edge.net","is_cdn":true,"provider":"Other",
       "supports_h2":true,"supports_h3":false,"tls":"1.3","popularity":1}],
    "sites":[{"name":"x.example","rank":1,"origin":"www.x.example",
      "html":{"id":1,"domain":"www.x.example","path":"/","type":"html",
              "size_bytes":30000,"request_bytes":500,"is_cdn":false,
              "provider":"non-CDN","wave":0,"headers":[]},
      "resources":[{"id":2,"domain":"cdn.custom-edge.net","path":"/a.png",
                    "type":"image","size_bytes":12000,"request_bytes":500,
                    "is_cdn":true,"provider":"Other","wave":0,
                    "headers":[{"name":"x-cdn","value":"custom"}]}]}]})";
  WorkloadIoError error;
  const auto loaded = workload_from_json(doc, &error);
  ASSERT_TRUE(loaded.has_value()) << error.message;
  ASSERT_EQ(loaded->sites.size(), 1u);
  EXPECT_TRUE(loaded->universe.get("cdn.custom-edge.net").is_cdn);

  // And it loads through the browser end to end.
  sim::Simulator sim;
  browser::Environment env(sim, loaded->universe, browser::VantageConfig{}, util::Rng(3));
  browser::Browser chrome(sim, env, nullptr, browser::BrowserConfig{}, util::Rng(4));
  const auto result = chrome.visit_and_run(loaded->sites[0].page);
  EXPECT_EQ(result.har.entries.size(), 2u);
}

}  // namespace
}  // namespace h3cdn::web
