#include <gtest/gtest.h>

#include "tls/handshake.h"
#include "tls/ticket_store.h"

namespace h3cdn::tls {
namespace {

// The paper's §II-A / §VI-D round-trip accounting, verbatim.
TEST(Handshake, RttTableMatchesPaper) {
  EXPECT_EQ(handshake_rtts(TransportKind::Tcp, TlsVersion::Tls12, HandshakeMode::Fresh), 3);
  EXPECT_EQ(handshake_rtts(TransportKind::Tcp, TlsVersion::Tls13, HandshakeMode::Fresh), 2);
  EXPECT_EQ(handshake_rtts(TransportKind::Quic, TlsVersion::Tls13, HandshakeMode::Fresh), 1);
  EXPECT_EQ(handshake_rtts(TransportKind::Quic, TlsVersion::Tls13, HandshakeMode::ZeroRtt), 0);
}

TEST(Handshake, ResumptionOverTcpStillPaysTcpRtt) {
  // §VI-D: "H2 still needs to wait 1 RTT for the TCP handshake."
  EXPECT_GE(handshake_rtts(TransportKind::Tcp, TlsVersion::Tls13, HandshakeMode::ZeroRtt), 1);
  EXPECT_GE(handshake_rtts(TransportKind::Tcp, TlsVersion::Tls13, HandshakeMode::Resumed), 2);
  EXPECT_EQ(handshake_rtts(TransportKind::Tcp, TlsVersion::Tls12, HandshakeMode::Resumed), 2);
}

TEST(Handshake, QuicResumedWithoutEarlyDataIsOneRtt) {
  EXPECT_EQ(handshake_rtts(TransportKind::Quic, TlsVersion::Tls13, HandshakeMode::Resumed), 1);
}

TEST(Handshake, ClientFlightsExceedRtts) {
  for (auto mode : {HandshakeMode::Fresh, HandshakeMode::Resumed, HandshakeMode::ZeroRtt}) {
    EXPECT_EQ(handshake_client_flights(TransportKind::Quic, TlsVersion::Tls13, mode),
              handshake_rtts(TransportKind::Quic, TlsVersion::Tls13, mode) + 1);
  }
}

TEST(Handshake, FreshFlightCarriesCertificates) {
  EXPECT_GT(handshake_server_flight_bytes(TlsVersion::Tls13, HandshakeMode::Fresh), 2000u);
  EXPECT_LT(handshake_server_flight_bytes(TlsVersion::Tls13, HandshakeMode::Resumed), 1000u);
  EXPECT_GT(handshake_server_flight_bytes(TlsVersion::Tls12, HandshakeMode::Fresh),
            handshake_server_flight_bytes(TlsVersion::Tls13, HandshakeMode::Fresh));
}

TEST(Handshake, ResumptionIsComputationallyCheaper) {
  EXPECT_GT(handshake_compute_cost(TlsVersion::Tls13, HandshakeMode::Fresh),
            handshake_compute_cost(TlsVersion::Tls13, HandshakeMode::Resumed));
  EXPECT_GT(handshake_compute_cost(TlsVersion::Tls12, HandshakeMode::Fresh),
            handshake_compute_cost(TlsVersion::Tls13, HandshakeMode::Fresh));
}

TEST(Handshake, ToStringCoversEnums) {
  EXPECT_STREQ(to_string(TlsVersion::Tls12), "TLSv1.2");
  EXPECT_STREQ(to_string(TransportKind::Quic), "quic");
  EXPECT_STREQ(to_string(HandshakeMode::ZeroRtt), "0-rtt");
}

// ---------------------------------------------------------------------------

SessionTicket make_ticket(const std::string& domain, TimePoint issued,
                          TlsVersion version = TlsVersion::Tls13, bool early = true) {
  SessionTicket t;
  t.domain = domain;
  t.issued_at = issued;
  t.version = version;
  t.early_data_allowed = early;
  return t;
}

TEST(TicketStore, FindReturnsStoredTicket) {
  SessionTicketStore store;
  store.store(make_ticket("example.com", msec(0)));
  const auto t = store.find("example.com", msec(100));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->domain, "example.com");
  EXPECT_EQ(store.hits(), 1u);
}

TEST(TicketStore, MissingDomainMisses) {
  SessionTicketStore store;
  EXPECT_FALSE(store.find("nope.com", msec(0)).has_value());
  EXPECT_EQ(store.misses(), 1u);
}

TEST(TicketStore, ExpiredTicketMisses) {
  SessionTicketStore store;
  auto t = make_ticket("example.com", msec(0));
  t.lifetime = sec(10);
  store.store(t);
  EXPECT_TRUE(store.find("example.com", sec(9)).has_value());
  EXPECT_FALSE(store.find("example.com", sec(10)).has_value());
}

TEST(TicketStore, StoreReplacesExisting) {
  SessionTicketStore store;
  store.store(make_ticket("d", msec(0), TlsVersion::Tls12));
  store.store(make_ticket("d", msec(5), TlsVersion::Tls13));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find("d", msec(10))->version, TlsVersion::Tls13);
}

TEST(TicketStore, BestModeQuicZeroRtt) {
  SessionTicketStore store;
  store.store(make_ticket("d", msec(0)));
  EXPECT_EQ(store.best_mode("d", msec(1), TransportKind::Quic), HandshakeMode::ZeroRtt);
}

TEST(TicketStore, BestModeQuicWithoutEarlyDataResumes) {
  SessionTicketStore store;
  store.store(make_ticket("d", msec(0), TlsVersion::Tls13, /*early=*/false));
  EXPECT_EQ(store.best_mode("d", msec(1), TransportKind::Quic), HandshakeMode::Resumed);
}

TEST(TicketStore, BestModeQuicRejectsTls12Ticket) {
  SessionTicketStore store;
  store.store(make_ticket("d", msec(0), TlsVersion::Tls12));
  EXPECT_EQ(store.best_mode("d", msec(1), TransportKind::Quic), HandshakeMode::Fresh);
}

TEST(TicketStore, BestModeTcpNeverUsesEarlyData) {
  // Browsers ship with TLS 1.3 early data over TCP disabled.
  SessionTicketStore store;
  store.store(make_ticket("d", msec(0)));
  EXPECT_EQ(store.best_mode("d", msec(1), TransportKind::Tcp), HandshakeMode::Resumed);
}

TEST(TicketStore, BestModeWithoutTicketIsFresh) {
  SessionTicketStore store;
  EXPECT_EQ(store.best_mode("d", msec(1), TransportKind::Tcp), HandshakeMode::Fresh);
}

TEST(TicketStore, ClearAndErase) {
  SessionTicketStore store;
  store.store(make_ticket("a", msec(0)));
  store.store(make_ticket("b", msec(0)));
  store.erase("a");
  EXPECT_EQ(store.size(), 1u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(TicketStore, RemoveExpiredPrunesOnlyExpired) {
  SessionTicketStore store;
  auto young = make_ticket("young", sec(100));
  auto old = make_ticket("old", sec(0));
  old.lifetime = sec(10);
  store.store(young);
  store.store(old);
  store.remove_expired(sec(50));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.find("young", sec(50)).has_value());
}

}  // namespace
}  // namespace h3cdn::tls
