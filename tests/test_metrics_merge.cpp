// Shard-merge semantics of the metrics layer: merging per-shard registries
// in canonical order must reproduce what one shared registry would have
// recorded sequentially (the determinism contract of docs/PARALLELISM.md).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/profiler.h"
#include "obs/timeline.h"
#include "util/rng.h"

namespace h3cdn::obs {
namespace {

TEST(MetricsMerge, CountersAdd) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("net.link.packets_offered").inc(7);
  b.counter("net.link.packets_offered").inc(5);
  b.counter("tls.tickets.hits").inc(2);  // series missing in `a`
  a.merge_from(b);
  EXPECT_EQ(a.counter("net.link.packets_offered").value(), 12u);
  EXPECT_EQ(a.counter("tls.tickets.hits").value(), 2u);
  EXPECT_EQ(b.counter("tls.tickets.hits").value(), 2u);  // source untouched
}

TEST(MetricsMerge, GaugesTakeTheMergedInValue) {
  // Last-writer-wins in merge order: with shards merged canonically, the
  // merged gauge is the value the last shard left — the same value a
  // sequential run would end with.
  MetricsRegistry a;
  MetricsRegistry b;
  a.gauge("http.pool.open_connections").set(3.0);
  b.gauge("http.pool.open_connections").set(8.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.gauge("http.pool.open_connections").value(), 8.0);
}

TEST(MetricsMerge, HistogramMatchesSingleRegistryRecording) {
  // Split one deterministic sample stream across three shards; the merged
  // histogram must agree with single-registry recording on every readout.
  // Integer-valued samples keep the float `sum` exact, so even sum compares
  // with EXPECT_DOUBLE_EQ.
  util::Rng rng(42);
  MetricsRegistry whole;
  MetricsRegistry shard[3];
  for (int i = 0; i < 3000; ++i) {
    const double v = static_cast<double>(rng.uniform_int(1, 100000));
    whole.histogram("browser.plt_ms").observe(v);
    shard[i % 3].histogram("browser.plt_ms").observe(v);
  }
  MetricsRegistry merged;
  for (const auto& s : shard) merged.merge_from(s);

  const Histogram& h = merged.histogram("browser.plt_ms");
  const Histogram& w = whole.histogram("browser.plt_ms");
  EXPECT_EQ(h.count(), w.count());
  EXPECT_DOUBLE_EQ(h.sum(), w.sum());
  EXPECT_DOUBLE_EQ(h.min(), w.min());
  EXPECT_DOUBLE_EQ(h.max(), w.max());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), w.percentile(q)) << "q=" << q;
  }
}

TEST(MetricsMerge, HistogramMergeIntoEmptyPreservesMinMax) {
  MetricsRegistry a;
  MetricsRegistry b;
  b.histogram("x").observe(5.0);
  b.histogram("x").observe(9.0);
  a.merge_from(b);
  EXPECT_EQ(a.histogram("x").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("x").min(), 5.0);
  EXPECT_DOUBLE_EQ(a.histogram("x").max(), 9.0);
  // And the other direction: merging an empty histogram changes nothing.
  MetricsRegistry empty;
  a.merge_from(empty);
  EXPECT_EQ(a.histogram("x").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("x").min(), 5.0);
}

TEST(MetricsMerge, MergeIsAssociative) {
  // (a + b) + c and a + (b + c) must export identically — the property that
  // lets the study fold shard registries pairwise in canonical order.
  // Integer-valued samples keep histogram sums exact, so the comparison is
  // on the full export string.
  util::Rng base(7);
  auto fill = [&](MetricsRegistry& r, std::uint64_t salt) {
    util::Rng stream = base.fork(salt);  // same salt => same samples
    r.counter("c").inc(salt);
    r.gauge("g").set(static_cast<double>(salt));
    for (int i = 0; i < 500; ++i) {
      r.histogram("h").observe(static_cast<double>(stream.uniform_int(1, 1000)));
    }
  };
  MetricsRegistry a1, b1, c1, a2, b2, c2;
  fill(a1, 3);
  fill(a2, 3);
  fill(b1, 11);
  fill(b2, 11);
  fill(c1, 29);
  fill(c2, 29);

  // Left fold: (a + b) + c.
  MetricsRegistry left;
  left.merge_from(a1);
  left.merge_from(b1);
  left.merge_from(c1);
  // Right fold: a + (b + c).
  MetricsRegistry bc;
  bc.merge_from(b2);
  bc.merge_from(c2);
  MetricsRegistry right;
  right.merge_from(a2);
  right.merge_from(bc);

  EXPECT_EQ(metrics_to_json(left), metrics_to_json(right));
  EXPECT_EQ(metrics_to_csv(left), metrics_to_csv(right));
}

TEST(MetricsMerge, ResilienceSeriesMergeKeepsAccountingIdentities) {
  // The chaos harness merges per-scenario shards and then checks hedge
  // accounting on the merged registry: the identity won + lost + cancelled
  // == launched must survive the fold because counters add linearly, even
  // when shards carry disjoint subsets of the resilience.* series.
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("resilience.hedges_launched").inc(3);
  a.counter("resilience.hedges_won").inc(1);
  a.counter("resilience.hedges_lost").inc(1);
  a.counter("resilience.hedges_cancelled").inc(1);
  a.counter("resilience.retries").inc(5);
  b.counter("resilience.hedges_launched").inc(2);
  b.counter("resilience.hedges_won").inc(2);
  b.counter("resilience.resumed_requests").inc(4);  // series absent in `a`
  b.counter("resilience.resumed_bytes").inc(81'920);
  // Latency histograms split across shards merge like any other histogram.
  for (double v : {12.0, 40.0}) a.histogram("resilience.backoff_ms").observe(v);
  b.histogram("resilience.backoff_ms").observe(95.0);

  MetricsRegistry merged;
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.counter("resilience.hedges_launched").value(), 5u);
  const std::uint64_t settled = merged.counter("resilience.hedges_won").value() +
                                merged.counter("resilience.hedges_lost").value() +
                                merged.counter("resilience.hedges_cancelled").value();
  EXPECT_EQ(settled, merged.counter("resilience.hedges_launched").value());
  EXPECT_EQ(merged.counter("resilience.resumed_requests").value(), 4u);
  EXPECT_EQ(merged.counter("resilience.resumed_bytes").value(), 81'920u);
  EXPECT_EQ(merged.histogram("resilience.backoff_ms").count(), 3u);
  EXPECT_DOUBLE_EQ(merged.histogram("resilience.backoff_ms").max(), 95.0);
}

TEST(MetricsMerge, TimelineShardsFoldLikeRegistries) {
  // The timeline merge mirrors the registry merge contract per window:
  // counters add, gauges take the merged-in window value, histograms merge
  // exactly. Two shards with overlapping and disjoint windows fold into what
  // sequential recording would have produced.
  const TimePoint w0{msec(100)};
  const TimePoint w2{msec(600)};
  TimelineRecorder a(msec(250));
  TimelineRecorder b(msec(250));
  a.count("deaths", w0, 2);
  b.count("deaths", w0, 3);            // overlapping window: adds
  b.count("refusals", w2, 7);          // series absent in `a`
  a.gauge_set("depth", w0, 4.0);
  b.gauge_set("depth", w0, 9.0);       // merged-in value wins
  a.observe("plt_ms", w2, 100.0);
  b.observe("plt_ms", w2, 300.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter_in_range("deaths", 0, 0), 5u);
  EXPECT_EQ(a.counter_in_range("refusals", 2, 2), 7u);
  EXPECT_DOUBLE_EQ(a.gauges().at("depth").at(0).last, 9.0);
  EXPECT_EQ(a.gauges().at("depth").at(0).sets, 2u);
  EXPECT_EQ(a.histograms().at("plt_ms").at(2).count(), 2u);
  EXPECT_DOUBLE_EQ(a.histograms().at("plt_ms").at(2).sum(), 400.0);
  // Source shard untouched, and its windows stay where they were.
  EXPECT_EQ(b.counter_in_range("deaths", 0, 0), 3u);
}

TEST(MetricsMerge, ProfilerPhasesCombine) {
  PhaseProfiler a;
  PhaseProfiler b;
  a.record("study.visit", 100);
  a.record("study.visit", 300);
  b.record("study.visit", 250);
  b.record("study.warm", 40);
  a.merge_from(b);
  EXPECT_EQ(a.phases().at("study.visit").calls, 3u);
  EXPECT_EQ(a.phases().at("study.visit").total_ns, 650u);
  EXPECT_EQ(a.phases().at("study.visit").max_ns, 300u);
  EXPECT_EQ(a.phases().at("study.warm").calls, 1u);
}

}  // namespace
}  // namespace h3cdn::obs
