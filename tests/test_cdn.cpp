#include <gtest/gtest.h>

#include "cdn/edge_server.h"
#include "cdn/lru_cache.h"
#include "cdn/origin_server.h"
#include "cdn/provider.h"

namespace h3cdn::cdn {
namespace {

// ---------------------------------------------------------------------------
// LRU cache
// ---------------------------------------------------------------------------

TEST(LruCache, InsertAndTouch) {
  LruCache cache(2);
  cache.insert("a");
  EXPECT_TRUE(cache.touch("a"));
  EXPECT_FALSE(cache.touch("b"));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.insert("a");
  cache.insert("b");
  cache.touch("a");     // a is now most recent
  cache.insert("c");    // evicts b
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCache, ReinsertRefreshesWithoutGrowth) {
  LruCache cache(2);
  cache.insert("a");
  cache.insert("b");
  cache.insert("a");  // refresh
  cache.insert("c");  // evicts b (a was refreshed)
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, ContainsDoesNotTouch) {
  LruCache cache(2);
  cache.insert("a");
  cache.insert("b");
  EXPECT_TRUE(cache.contains("a"));  // no recency update
  cache.insert("c");                 // should evict a (b more recent)
  EXPECT_FALSE(cache.contains("a"));
}

TEST(LruCache, ClearEmpties) {
  LruCache cache(4);
  cache.insert("a");
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains("a"));
}

// ---------------------------------------------------------------------------
// Provider registry
// ---------------------------------------------------------------------------

TEST(ProviderRegistry, HasTheSevenMeasuredProvidersPlusOther) {
  const auto& all = ProviderRegistry::all();
  EXPECT_EQ(all.size(), 8u);
  for (auto id : {ProviderId::Google, ProviderId::Cloudflare, ProviderId::Amazon,
                  ProviderId::Akamai, ProviderId::Fastly, ProviderId::Microsoft,
                  ProviderId::QuicCloud, ProviderId::Other}) {
    EXPECT_EQ(ProviderRegistry::get(id).id, id);
  }
}

TEST(ProviderRegistry, MarketSharesSumToOne) {
  double total = 0;
  for (const auto& t : ProviderRegistry::all()) total += t.market_share;
  EXPECT_NEAR(total, 1.0, 0.01);
}

TEST(ProviderRegistry, DomainCountsSumTo58) {
  // Table III: 58 shared CDN domains.
  int total = 0;
  for (const auto& t : ProviderRegistry::all()) total += t.domain_count;
  EXPECT_EQ(total, 58);
}

TEST(ProviderRegistry, WithinCdnH3FractionMatchesTable2) {
  // Table II: 9280 / 24153 = 38.4% of CDN requests are H3.
  double h3 = 0;
  for (const auto& t : ProviderRegistry::all()) h3 += t.market_share * t.h3_adoption;
  EXPECT_NEAR(h3, 0.384, 0.05);
}

TEST(ProviderRegistry, GoogleAndCloudflareDominateH3) {
  // Fig. 2: Google ~50%, Cloudflare ~45% of H3 CDN requests.
  double total_h3 = 0;
  for (const auto& t : ProviderRegistry::all()) total_h3 += t.market_share * t.h3_adoption;
  const auto& google = ProviderRegistry::get(ProviderId::Google);
  const auto& cf = ProviderRegistry::get(ProviderId::Cloudflare);
  EXPECT_NEAR(google.market_share * google.h3_adoption / total_h3, 0.50, 0.08);
  EXPECT_NEAR(cf.market_share * cf.h3_adoption / total_h3, 0.45, 0.08);
}

TEST(ProviderRegistry, Top4PagePresenceExceedsHalf) {
  // Fig. 4a.
  int above = 0;
  for (const auto& t : ProviderRegistry::all()) above += t.page_presence > 0.5;
  EXPECT_GE(above, 4);
}

TEST(ProviderRegistry, MeanProvidersPerPageMatchesTable3) {
  // Paper mean across C_H/C_L suggests ~4.1 providers per page.
  double sum = 0;
  for (const auto& t : ProviderRegistry::all()) sum += t.page_presence;
  EXPECT_NEAR(sum, 4.15, 0.4);
}

TEST(ProviderRegistry, ReleaseYearsMatchTable1) {
  EXPECT_EQ(ProviderRegistry::get(ProviderId::Cloudflare).h3_release_year, 2019);
  EXPECT_EQ(ProviderRegistry::get(ProviderId::Google).h3_release_year, 2021);
  EXPECT_EQ(ProviderRegistry::get(ProviderId::Fastly).h3_release_year, 2021);
  EXPECT_EQ(ProviderRegistry::get(ProviderId::QuicCloud).h3_release_year, 2021);
  EXPECT_EQ(ProviderRegistry::get(ProviderId::Amazon).h3_release_year, 2022);
  EXPECT_EQ(ProviderRegistry::get(ProviderId::Akamai).h3_release_year, 2023);
}

TEST(ProviderRegistry, ByNameRoundTrips) {
  for (const auto& t : ProviderRegistry::all()) {
    EXPECT_EQ(ProviderRegistry::by_name(t.name), t.id);
  }
  EXPECT_EQ(ProviderRegistry::by_name("NotACdn"), ProviderId::None);
}

TEST(ProviderRegistry, NonCdnTraitsAreFartherAndSlower) {
  const auto& non_cdn = ProviderRegistry::get(ProviderId::None);
  const auto& google = ProviderRegistry::get(ProviderId::Google);
  EXPECT_GT(non_cdn.edge_rtt_base, google.edge_rtt_base);
  EXPECT_GT(non_cdn.service_time_median, google.service_time_median);
  EXPECT_EQ(non_cdn.cache_hit_ratio, 0.0);
}

TEST(ProviderRegistry, GiantsCoalesceH2) {
  for (auto id : ProviderRegistry::fig8_providers()) {
    EXPECT_TRUE(ProviderRegistry::get(id).h2_coalescing) << to_string(id);
  }
  EXPECT_FALSE(ProviderRegistry::get(ProviderId::QuicCloud).h2_coalescing);
}

// ---------------------------------------------------------------------------
// Edge / origin server models
// ---------------------------------------------------------------------------

TEST(EdgeServer, H3CostsMoreCompute) {
  // Paper §VI-B: median wait reduction < 0 due to H3 server overhead.
  const auto& traits = ProviderRegistry::get(ProviderId::Cloudflare);
  EdgeServer edge(traits, util::Rng(1));
  for (int i = 0; i < 500; ++i) edge.warm("k" + std::to_string(i));
  double h2 = 0, h3 = 0;
  EdgeServer a(traits, util::Rng(2)), b(traits, util::Rng(2));
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    a.warm(key);
    b.warm(key);
  }
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    h2 += to_ms(a.think_time(key, http::HttpVersion::H2));
    h3 += to_ms(b.think_time(key, http::HttpVersion::H3));
  }
  EXPECT_GT(h3, h2);
}

TEST(EdgeServer, CacheMissPaysOriginFetch) {
  const auto& traits = ProviderRegistry::get(ProviderId::Akamai);
  EdgeServer edge(traits, util::Rng(3));
  const auto miss = edge.think_time("cold", http::HttpVersion::H2);
  const auto hit = edge.think_time("cold", http::HttpVersion::H2);  // now cached
  EXPECT_GT(miss, hit + msec(30));
}

TEST(EdgeServer, WarmPopulatesCacheProbabilistically) {
  const auto& traits = ProviderRegistry::get(ProviderId::Google);  // 0.97 hit ratio
  EdgeServer edge(traits, util::Rng(4));
  int cached = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "k" + std::to_string(i);
    edge.warm(key);
    cached += edge.cache().contains(key);
  }
  EXPECT_NEAR(cached, 970, 25);
}

TEST(OriginServer, ThinkTimesArePositiveAndVariable) {
  OriginServer origin(util::Rng(5));
  double min = 1e9, max = 0;
  for (int i = 0; i < 200; ++i) {
    const double ms = to_ms(origin.think_time("/", http::HttpVersion::H2));
    EXPECT_GT(ms, 0.0);
    min = std::min(min, ms);
    max = std::max(max, ms);
  }
  EXPECT_GT(max, min * 2);  // lognormal spread
}

}  // namespace
}  // namespace h3cdn::cdn
