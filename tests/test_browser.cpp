#include "browser/browser.h"

#include <gtest/gtest.h>

#include <set>

#include "browser/waterfall.h"
#include "util/json_parse.h"
#include "web/workload.h"

namespace h3cdn::browser {
namespace {

struct Fixture {
  web::Workload workload;
  Fixture() {
    web::WorkloadConfig cfg;
    cfg.site_count = 8;
    workload = web::generate_workload(cfg);
  }

  PageLoadResult load(std::size_t site, bool h3, tls::SessionTicketStore* tickets = nullptr,
                      double loss = 0.0) {
    sim::Simulator sim;
    VantageConfig vantage;
    vantage.loss_rate = loss;
    Environment env(sim, workload.universe, vantage, util::Rng(1234));
    env.warm_page(workload.sites[site].page);
    BrowserConfig config;
    config.h3_enabled = h3;
    Browser browser(sim, env, tickets, config, util::Rng(99));
    return browser.visit_and_run(workload.sites[site].page);
  }
};

TEST(Browser, LoadsEveryResourceExactlyOnce) {
  Fixture f;
  const auto r = f.load(0, true);
  const auto& page = f.workload.sites[0].page;
  EXPECT_EQ(r.har.entries.size(), page.total_requests());
  std::set<std::uint32_t> ids;
  for (const auto& e : r.har.entries) EXPECT_TRUE(ids.insert(e.resource_id).second);
  EXPECT_TRUE(ids.count(page.html.id));
}

TEST(Browser, PltIsTheLastCompletion) {
  Fixture f;
  const auto r = f.load(0, true);
  Duration last{0};
  for (const auto& e : r.har.entries) last = std::max(last, e.timings.finished - r.har.started);
  EXPECT_EQ(r.har.page_load_time, last);
  EXPECT_GT(r.har.page_load_time, msec(100));
  EXPECT_LT(r.har.page_load_time, sec(30));
}

TEST(Browser, HtmlLoadsFirst) {
  Fixture f;
  const auto r = f.load(0, true);
  const auto& page = f.workload.sites[0].page;
  TimePoint html_done{-1};
  TimePoint earliest_other = sec(1000);
  for (const auto& e : r.har.entries) {
    if (e.resource_id == page.html.id) {
      html_done = e.timings.finished;
    } else {
      earliest_other = std::min(earliest_other, e.timings.started);
    }
  }
  EXPECT_GE(earliest_other, html_done);
}

TEST(Browser, H2ModeNeverUsesH3) {
  Fixture f;
  const auto r = f.load(1, false);
  EXPECT_EQ(r.har.count_version(http::HttpVersion::H3), 0u);
  EXPECT_FALSE(r.har.h3_enabled);
}

TEST(Browser, H3ModeUsesH3ForCapableDomains) {
  Fixture f;
  const auto& u = f.workload.universe;
  // Pick a page that actually references at least one H3-capable domain.
  std::size_t site = 0;
  for (std::size_t i = 0; i < f.workload.sites.size(); ++i) {
    for (const auto& d : f.workload.sites[i].page.cdn_domains()) {
      if (u.get(d).supports_h3) {
        site = i;
        break;
      }
    }
  }
  const auto r = f.load(site, true);
  std::size_t h3_capable = 0;
  for (const auto& e : r.har.entries) h3_capable += u.get(e.domain).supports_h3;
  ASSERT_GT(h3_capable, 0u);
  EXPECT_EQ(r.har.count_version(http::HttpVersion::H3), h3_capable);
}

TEST(Browser, EntryProtocolMatchesDomainCapability) {
  Fixture f;
  const auto r = f.load(2, true);
  const auto& u = f.workload.universe;
  for (const auto& e : r.har.entries) {
    const auto& info = u.get(e.domain);
    if (e.timings.version == http::HttpVersion::H3) EXPECT_TRUE(info.supports_h3);
    if (e.timings.version == http::HttpVersion::H1_1) EXPECT_FALSE(info.supports_h2);
  }
}

TEST(Browser, ReusedEntriesDominate) {
  // Pages make ~100 requests over ~10 connections: most entries ride
  // established connections (Fig. 7a's scale).
  Fixture f;
  const auto r = f.load(0, false);
  EXPECT_GT(r.har.reused_connection_count(), r.har.entries.size() / 2);
  EXPECT_EQ(r.har.entries.size() - r.har.reused_connection_count(),
            static_cast<std::size_t>(r.har.connections_created));
}

TEST(Browser, NoTicketsMeansNoResumption) {
  Fixture f;
  const auto r = f.load(0, true);
  EXPECT_EQ(r.har.resumed_connections, 0u);
}

TEST(Browser, ConsecutiveVisitsResumeViaTickets) {
  // §VI-D: connections terminated, caches cleared, tickets survive.
  Fixture f;
  sim::Simulator sim;
  VantageConfig vantage;
  Environment env(sim, f.workload.universe, vantage, util::Rng(55));
  tls::SessionTicketStore tickets;
  BrowserConfig config;
  config.h3_enabled = true;
  Browser browser(sim, env, &tickets, config, util::Rng(9));

  env.warm_page(f.workload.sites[0].page);
  const auto first = browser.visit_and_run(f.workload.sites[0].page);
  EXPECT_EQ(first.har.resumed_connections, 0u);
  EXPECT_GT(tickets.size(), 0u);

  env.warm_page(f.workload.sites[1].page);
  const auto second = browser.visit_and_run(f.workload.sites[1].page);
  // Shared CDN domains between consecutive pages resume.
  EXPECT_GT(second.har.resumed_connections, 0u);
}

TEST(Browser, ZeroRttResumptionShrinksConnectTimes) {
  Fixture f;
  sim::Simulator sim;
  VantageConfig vantage;
  Environment env(sim, f.workload.universe, vantage, util::Rng(55));
  tls::SessionTicketStore tickets;
  BrowserConfig config;
  config.h3_enabled = true;
  Browser browser(sim, env, &tickets, config, util::Rng(9));

  const auto& page = f.workload.sites[0].page;
  env.warm_page(page);
  const auto first = browser.visit_and_run(page);
  const auto second = browser.visit_and_run(page);  // same page, tickets hot
  auto total_connect = [](const PageLoadResult& r) {
    Duration total{0};
    for (const auto& e : r.har.entries) total += e.timings.connect;
    return total;
  };
  EXPECT_LT(total_connect(second), total_connect(first));
  EXPECT_GT(second.har.zero_rtt_connections, 0u);
}

TEST(Browser, LossSlowsTheLoad) {
  Fixture f;
  const auto clean = f.load(3, true, nullptr, 0.0);
  const auto lossy = f.load(3, true, nullptr, 0.02);
  EXPECT_GT(lossy.har.page_load_time, clean.har.page_load_time);
}

TEST(Browser, DeterministicGivenSeeds) {
  Fixture f;
  const auto a = f.load(4, true);
  const auto b = f.load(4, true);
  EXPECT_EQ(a.har.page_load_time, b.har.page_load_time);
  ASSERT_EQ(a.har.entries.size(), b.har.entries.size());
  for (std::size_t i = 0; i < a.har.entries.size(); ++i) {
    EXPECT_EQ(a.har.entries[i].timings.finished, b.har.entries[i].timings.finished);
  }
}

TEST(Browser, HarJsonExportsWellFormed) {
  Fixture f;
  const auto r = f.load(0, true);
  const std::string json = to_har_json(r.har);
  EXPECT_GT(json.size(), 1000u);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"entries\""), std::string::npos);
  EXPECT_NE(json.find("\"onLoad\""), std::string::npos);
  EXPECT_NE(json.find("\"connect\""), std::string::npos);
  // Balanced braces (cheap well-formedness proxy; JsonWriter enforces real
  // structure at build time).
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST(Waterfall, PhasesSumToEntryTotal) {
  Fixture f;
  const auto r = f.load(0, true);
  const obs::Waterfall wf = make_waterfall(r.har, "probe-0");
  EXPECT_EQ(wf.site, r.har.site);
  EXPECT_EQ(wf.vantage, "probe-0");
  EXPECT_TRUE(wf.h3_enabled);
  EXPECT_DOUBLE_EQ(wf.page_load_time_ms, to_ms(r.har.page_load_time));
  ASSERT_EQ(wf.entries.size(), r.har.entries.size());
  for (std::size_t i = 0; i < wf.entries.size(); ++i) {
    const auto& har = r.har.entries[i];
    const auto& entry = wf.entries[i];
    // The core invariant: the six phases decompose the entry's wall time
    // (DNS + started..finished) exactly, with no residual slack.
    const double expected_total =
        to_ms(har.timings.dns + (har.timings.finished - har.timings.started));
    EXPECT_NEAR(entry.total_ms(), expected_total, 1e-6) << entry.url;
    // start + phases lands on the entry's finish time, page-relative.
    EXPECT_NEAR(entry.start_ms + entry.total_ms(), to_ms(har.timings.finished - r.har.started),
                1e-6)
        << entry.url;
    EXPECT_GE(entry.blocked_ms, 0.0);
    if (!entry.from_cache && !entry.failed) {
      EXPECT_GE(entry.connection_id, 1u) << entry.url;  // pool-scoped, 1-based
    }
  }
}

TEST(Waterfall, JsonExportTotalsMatchPhaseSums) {
  Fixture f;
  const auto r = f.load(1, false);
  const obs::Waterfall wf = make_waterfall(r.har);
  const auto doc = util::parse_json(obs::waterfall_to_json(wf));
  ASSERT_TRUE(doc.has_value());
  const auto& entries = doc->find("entries")->as_array();
  ASSERT_EQ(entries.size(), wf.entries.size());
  for (const auto& e : entries) {
    const util::JsonValue* phases = e.find("phases_ms");
    ASSERT_NE(phases, nullptr);
    const double sum = phases->number_or("dns", 0) + phases->number_or("blocked", 0) +
                       phases->number_or("connect", 0) + phases->number_or("send", 0) +
                       phases->number_or("wait", 0) + phases->number_or("receive", 0);
    EXPECT_NEAR(e.number_or("total_ms", -1), sum, 1e-6);
  }

  const std::string ascii = obs::waterfall_to_ascii(wf);
  EXPECT_NE(ascii.find(r.har.site), std::string::npos);
  EXPECT_NE(ascii.find("W"), std::string::npos);  // every entry waits on TTFB
}

TEST(Waterfall, AnnotatesFallbackAfterH3Death) {
  // A mid-load UDP blackhole kills H3 connections; the pool falls back to H2
  // and re-dispatches in-flight requests. The waterfall must carry both the
  // pool-level fallback count and per-entry "rescued" annotations.
  Fixture f;
  sim::Simulator sim;
  VantageConfig vantage;
  vantage.fault_profile.outages.push_back(
      net::Outage{msec(120), sec(600), net::OutageKind::UdpBlackhole});
  Environment env(sim, f.workload.universe, vantage, util::Rng(1234));
  env.warm_page(f.workload.sites[0].page);
  BrowserConfig config;
  config.h3_enabled = true;
  Browser browser(sim, env, nullptr, config, util::Rng(99));
  const auto r = browser.visit_and_run(f.workload.sites[0].page);

  ASSERT_GT(r.pool_stats.h3_fallbacks, 0u);
  const obs::Waterfall wf = make_waterfall(r.har);
  EXPECT_EQ(wf.h3_fallbacks, r.pool_stats.h3_fallbacks);
  EXPECT_EQ(wf.connection_deaths, r.pool_stats.connection_deaths);
  if (r.pool_stats.requests_rescued > 0) {
    std::size_t rescued_annotations = 0;
    for (const auto& e : wf.entries) {
      if (e.annotation == "rescued") {
        ++rescued_annotations;
        EXPECT_GT(e.attempts, 1);
      }
    }
    EXPECT_GT(rescued_annotations, 0u);
  }
}

TEST(Environment, ResolvesConsistently) {
  Fixture f;
  sim::Simulator sim;
  Environment env(sim, f.workload.universe, VantageConfig{}, util::Rng(3));
  const auto a = env.resolve("fonts.gstatic.com");
  const auto b = env.resolve("fonts.gstatic.com");
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(env.host_count(), 1u);
  EXPECT_FALSE(a.coalesce_key.empty());  // Google coalesces (mostly)
}

TEST(Environment, VantageScalesRtt) {
  Fixture f;
  sim::Simulator sim1, sim2;
  VantageConfig near{.name = "near", .rtt_scale = 1.0};
  VantageConfig far{.name = "near", .rtt_scale = 2.0};  // same name => same seeds
  Environment e1(sim1, f.workload.universe, near, util::Rng(3));
  Environment e2(sim2, f.workload.universe, far, util::Rng(3));
  const auto p1 = e1.resolve("fonts.gstatic.com").path->base_rtt();
  const auto p2 = e2.resolve("fonts.gstatic.com").path->base_rtt();
  EXPECT_EQ(p2.count(), p1.count() * 2);
}

}  // namespace
}  // namespace h3cdn::browser
