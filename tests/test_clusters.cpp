// Workload-archetype clustering over study pages (core::compute_clusters)
// and the archetype-conditioned selector context API. Pins the invariants
// the --archetypes --check gate enforces on the exported artifact: exact
// page coverage, centroid share normalization, and per-archetype diffs that
// re-aggregate to the global dissection.
#include "core/clusters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/selector.h"
#include "core/study.h"
#include "obs/critical_path.h"

namespace h3cdn::core {
namespace {

StudyConfig small_config(int jobs) {
  StudyConfig cfg;
  cfg.workload.site_count = 4;
  cfg.max_sites = 4;
  cfg.vantages = browser::default_vantage_points();
  cfg.probes_per_vantage = 2;
  cfg.jobs = jobs;
  return cfg;
}

TEST(Clusters, AssignmentsCoverEveryPairExactlyOnce) {
  const auto study = MeasurementStudy(small_config(1)).run();
  const auto r = compute_clusters(study);
  ASSERT_GT(r.pages.size(), 0u);
  EXPECT_EQ(r.global.pages, r.pages.size());
  std::set<std::string> seen;
  for (const auto& p : r.pages) {
    EXPECT_TRUE(seen.insert(p.vantage + "/p" + std::to_string(p.probe) + "/" +
                            std::to_string(p.site_index))
                    .second);
  }
  std::size_t covered = 0;
  for (const auto& a : r.archetypes) covered += a.pages;
  EXPECT_EQ(covered, r.pages.size());
}

TEST(Clusters, CentroidSharesSumToOne) {
  const auto study = MeasurementStudy(small_config(1)).run();
  const auto r = compute_clusters(study);
  const auto share_sum = [](const std::vector<double>& centroid) {
    double sum = 0.0;
    for (std::size_t i = 0; i < obs::kPhaseCount && i < centroid.size(); ++i) sum += centroid[i];
    return sum;
  };
  EXPECT_NEAR(share_sum(r.global.centroid), 1.0, 1e-9);
  for (const auto& a : r.archetypes) {
    if (a.pages == 0) continue;
    EXPECT_NEAR(share_sum(a.centroid), 1.0, 1e-9) << "archetype " << a.name;
  }
}

TEST(Clusters, DiffsReaggregateToGlobalDissection) {
  const auto study = MeasurementStudy(small_config(1)).run();
  const auto r = compute_clusters(study);
  const double n = static_cast<double>(r.global.pages);
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    double sum = 0.0;
    for (const auto& a : r.archetypes) {
      sum += static_cast<double>(a.pages) * a.mean_delta.ms[i];
    }
    EXPECT_NEAR(sum, n * r.global.mean_delta.ms[i], 1e-6 * std::max(1.0, n));
  }
  double plt_sum = 0.0;
  for (const auto& a : r.archetypes) {
    plt_sum += static_cast<double>(a.pages) * a.mean_plt_delta_ms();
  }
  EXPECT_NEAR(plt_sum, n * r.global.mean_plt_delta_ms(), 1e-6 * std::max(1.0, n));
}

TEST(Clusters, JsonIsByteIdenticalAcrossJobCounts) {
  const auto one = compute_clusters(MeasurementStudy(small_config(1)).run());
  const auto four = compute_clusters(MeasurementStudy(small_config(4)).run());
  EXPECT_EQ(clusters_to_json(one), clusters_to_json(four));
  EXPECT_EQ(clusters_to_csv(one), clusters_to_csv(four));
}

TEST(Clusters, KMeansAlternativeSweepsK) {
  ClustersConfig cfg;
  cfg.archetype.algo = analysis::ArchetypeAlgo::KMeans;
  cfg.run_ab = false;
  const auto r = compute_clusters(MeasurementStudy(small_config(1)).run(), cfg);
  EXPECT_EQ(r.algo, "kmeans");
  EXPECT_GE(r.chosen_k, cfg.archetype.k_min);
  EXPECT_LE(r.chosen_k, cfg.archetype.k_max);
  EXPECT_EQ(r.cluster_count, r.chosen_k);
  EXPECT_EQ(r.ab.pairs, 0u);  // disabled
}

TEST(Clusters, QoeFeaturesExtendTheFeatureSpace) {
  ClustersConfig plain;
  plain.run_ab = false;
  ClustersConfig with_qoe = plain;
  with_qoe.include_qoe = true;
  const auto study = MeasurementStudy(small_config(1)).run();
  const auto a = compute_clusters(study, plain);
  const auto b = compute_clusters(study, with_qoe);
  EXPECT_EQ(a.feature_names.size(), obs::kPhaseCount);
  EXPECT_EQ(b.feature_names.size(), obs::kPhaseCount + 2);
  ASSERT_FALSE(b.pages.empty());
  EXPECT_EQ(b.pages[0].features.size(), obs::kPhaseCount + 2);
  // Per-page QoE rides along either way: FCP never exceeds PLT's proxy, and
  // the Speed-Index integral is positive for byte-carrying pages.
  for (const auto& p : a.pages) {
    EXPECT_GT(p.h2_fcp_ms, 0.0);
    EXPECT_GT(p.h3_si_ms, 0.0);
  }
}

TEST(Clusters, AbReplayIsConsistentAndConditionedNeverLosesBadly) {
  const auto study = MeasurementStudy(small_config(1)).run();
  const auto r = compute_clusters(study);
  ASSERT_EQ(r.ab.pairs, r.pages.size());
  EXPECT_NEAR(r.ab.mean_delta_ms(), r.ab.global_mean_plt_ms - r.ab.conditioned_mean_plt_ms, 1e-9);
  // The oracle lower-bounds both arms by construction.
  EXPECT_LE(r.ab.oracle_mean_plt_ms, r.ab.global_mean_plt_ms + 1e-9);
  EXPECT_LE(r.ab.oracle_mean_plt_ms, r.ab.conditioned_mean_plt_ms + 1e-9);
}

TEST(SelectorContexts, ContextEvidenceOverridesTheGlobalMarginal) {
  SelectorConfig cfg;
  cfg.explore_rate = 0.0;
  AdaptiveProtocolSelector selector(cfg, util::Rng(1));
  // Context 0: H2 is decisively faster. Context 1: H3 is. The global
  // marginal sees both and lands wherever the mix says.
  for (int i = 0; i < 5; ++i) {
    selector.observe(0, "origin", http::HttpVersion::H2, 100.0);
    selector.observe(0, "origin", http::HttpVersion::H3, 300.0);
    selector.observe(1, "origin", http::HttpVersion::H2, 300.0);
    selector.observe(1, "origin", http::HttpVersion::H3, 100.0);
  }
  EXPECT_EQ(selector.recommend(0, "origin"), http::HttpVersion::H2);
  EXPECT_EQ(selector.recommend(1, "origin"), http::HttpVersion::H3);
  // Context estimates stay separate; the global marginal pools both.
  EXPECT_NEAR(*selector.estimate(0, "origin", http::HttpVersion::H2), 100.0, 1e-6);
  EXPECT_NEAR(*selector.estimate(1, "origin", http::HttpVersion::H2), 300.0, 1e-6);
  const auto global_h2 =
      selector.estimate(AdaptiveProtocolSelector::kGlobalContext, "origin", http::HttpVersion::H2);
  ASSERT_TRUE(global_h2.has_value());
  EXPECT_GT(*global_h2, 100.0);
  EXPECT_LT(*global_h2, 300.0);
}

TEST(SelectorContexts, ImmatureContextFallsBackToGlobal) {
  SelectorConfig cfg;
  cfg.explore_rate = 0.0;
  AdaptiveProtocolSelector selector(cfg, util::Rng(2));
  for (int i = 0; i < 5; ++i) {
    selector.observe("origin", http::HttpVersion::H2, 100.0);
    selector.observe("origin", http::HttpVersion::H3, 300.0);
  }
  // Context 7 has never been observed: its recommendation must match the
  // mature global one rather than deferring to the pool default.
  EXPECT_EQ(selector.recommend(7, "origin"), http::HttpVersion::H2);
  EXPECT_EQ(selector.recommend(7, "origin"), selector.recommend("origin"));
}

}  // namespace
}  // namespace h3cdn::core
