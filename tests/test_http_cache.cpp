// Repeat-view browsing (First vs Repeat, Saverimoutou et al. — paper ref [21]).
#include <gtest/gtest.h>

#include "browser/browser.h"
#include "web/workload.h"

namespace h3cdn::browser {
namespace {

struct Fixture {
  web::Workload workload;
  sim::Simulator sim;
  std::unique_ptr<Environment> env;
  std::unique_ptr<Browser> browser;

  explicit Fixture(bool cache_enabled) {
    web::WorkloadConfig cfg;
    cfg.site_count = 4;
    workload = web::generate_workload(cfg);
    env = std::make_unique<Environment>(sim, workload.universe, VantageConfig{}, util::Rng(5));
    BrowserConfig config;
    config.h3_enabled = true;
    config.http_cache_enabled = cache_enabled;
    browser = std::make_unique<Browser>(sim, *env, nullptr, config, util::Rng(6));
  }

  PageLoadResult visit(std::size_t site) {
    env->warm_page(workload.sites[site].page);
    return browser->visit_and_run(workload.sites[site].page);
  }
};

TEST(HttpCache, RepeatViewIsMuchFaster) {
  Fixture f(true);
  const auto first = f.visit(0);
  const auto repeat = f.visit(0);
  EXPECT_LT(to_ms(repeat.har.page_load_time), to_ms(first.har.page_load_time) * 0.8);
}

TEST(HttpCache, RepeatViewServesCacheableEntriesLocally) {
  Fixture f(true);
  f.visit(0);
  const auto repeat = f.visit(0);
  std::size_t cached = 0;
  for (const auto& e : repeat.har.entries) cached += e.from_cache;
  EXPECT_GT(cached, repeat.har.entries.size() / 3);
  // Dynamic (no-cache) responses still travel the network.
  EXPECT_LT(cached, repeat.har.entries.size());
}

TEST(HttpCache, FirstViewNeverServesFromCache) {
  Fixture f(true);
  const auto first = f.visit(0);
  for (const auto& e : first.har.entries) EXPECT_FALSE(e.from_cache);
}

TEST(HttpCache, DisabledCacheKeepsVisitsIdentical) {
  Fixture f(false);
  const auto a = f.visit(0);
  f.browser->clear_http_cache();
  const auto b = f.visit(0);
  for (const auto& e : b.har.entries) EXPECT_FALSE(e.from_cache);
  EXPECT_EQ(f.browser->http_cache_size(), 0u);
}

TEST(HttpCache, CacheIsSharedAcrossPagesForSharedDomains) {
  // Two different sites referencing the same global CDN assets would share
  // cache entries only for identical URLs; our per-site asset paths differ,
  // so cross-page hits stay zero — the cache keys on full URLs.
  Fixture f(true);
  f.visit(0);
  const auto other = f.visit(1);
  std::size_t cached = 0;
  for (const auto& e : other.har.entries) cached += e.from_cache;
  EXPECT_EQ(cached, 0u);
}

TEST(HttpCache, ClearCacheRestoresFirstViewBehaviour) {
  Fixture f(true);
  f.visit(0);
  EXPECT_GT(f.browser->http_cache_size(), 0u);
  f.browser->clear_http_cache();
  const auto again = f.visit(0);
  for (const auto& e : again.har.entries) EXPECT_FALSE(e.from_cache);
}

TEST(HttpCache, RepeatViewCachesTheSameContentUnderBothProtocols) {
  // The cache keys on content, not transport: both browser modes serve the
  // same set of resources locally on the repeat view, and both speed up.
  auto run = [](bool h3) {
    web::WorkloadConfig cfg;
    cfg.site_count = 2;
    const web::Workload workload = web::generate_workload(cfg);
    sim::Simulator sim;
    Environment env(sim, workload.universe, VantageConfig{}, util::Rng(5));
    BrowserConfig config;
    config.h3_enabled = h3;
    config.http_cache_enabled = true;
    Browser browser(sim, env, nullptr, config, util::Rng(6));
    env.warm_page(workload.sites[0].page);
    const auto first = browser.visit_and_run(workload.sites[0].page);
    const auto repeat = browser.visit_and_run(workload.sites[0].page);
    std::size_t cached = 0;
    for (const auto& e : repeat.har.entries) cached += e.from_cache;
    return std::tuple{to_ms(first.har.page_load_time), to_ms(repeat.har.page_load_time), cached};
  };
  const auto [h2_first, h2_repeat, h2_cached] = run(false);
  const auto [h3_first, h3_repeat, h3_cached] = run(true);
  EXPECT_EQ(h2_cached, h3_cached);
  EXPECT_LT(h2_repeat, h2_first);
  EXPECT_LT(h3_repeat, h3_first);
}

}  // namespace
}  // namespace h3cdn::browser
