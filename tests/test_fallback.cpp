// Graceful-degradation tests: connection death detection (handshake-retry
// exhaustion, blackhole RTOs), session orphan evacuation, and the pool's
// H3 -> H2 fallback with Alt-Svc-style brokenness marking and re-probe.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "browser/environment.h"
#include "core/resilience.h"
#include "http/pool.h"
#include "net/fault.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "transport/connection.h"
#include "web/workload.h"

namespace h3cdn {
namespace {

using http::EntryTimings;
using http::HttpVersion;
using tls::HandshakeMode;
using tls::TlsVersion;
using tls::TransportKind;

// --- Connection-level death detection ---------------------------------------

TEST(ConnectionDeath2, HandshakeRetryExhaustionKillsTheConnection) {
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, /*loss=*/1.0, usec(0)}, util::Rng(42));
  transport::TransportConfig config;
  config.domain = "dead.example";
  config.handshake_timeout = msec(100);
  config.max_handshake_retries = 3;
  auto trace = std::make_shared<trace::ConnectionTrace>();
  auto conn = transport::Connection::create(sim, path, TransportKind::Quic, TlsVersion::Tls13,
                                            HandshakeMode::Fresh, util::Rng(7), config);
  conn->set_trace(trace);
  bool ready = false;
  transport::ConnectionError death = transport::ConnectionError::None;
  TimePoint died_at{-1};
  conn->set_on_dead([&](transport::ConnectionError e, TimePoint t) {
    death = e;
    died_at = t;
  });
  conn->connect([&](TimePoint) { ready = true; });
  sim.run();

  EXPECT_FALSE(ready);
  EXPECT_TRUE(conn->dead());
  EXPECT_TRUE(conn->closed());
  EXPECT_EQ(conn->error(), transport::ConnectionError::HandshakeTimeout);
  EXPECT_EQ(death, transport::ConnectionError::HandshakeTimeout);
  EXPECT_EQ(conn->stats().handshake_retries, 3);
  // Doubling timer: retries at 100/300/700 ms, the give-up check at 1500 ms.
  EXPECT_EQ(died_at, msec(1500));

  int retry_events = 0;
  int abort_events = 0;
  for (const auto& e : trace->events()) {
    if (e.type == trace::EventType::HandshakeRetry) {
      ++retry_events;
      EXPECT_EQ(e.fault, trace::FaultKind::HandshakeTimeout);
    }
    if (e.type == trace::EventType::ConnectionAborted) {
      ++abort_events;
      EXPECT_EQ(e.fault, trace::FaultKind::HandshakeTimeout);
    }
  }
  EXPECT_EQ(retry_events, 3);
  EXPECT_EQ(abort_events, 1);
}

TEST(ConnectionDeath2, RetryCapDisabledMeansNoDeath) {
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 1.0, usec(0)}, util::Rng(42));
  transport::TransportConfig config;
  config.handshake_timeout = msec(100);
  config.max_handshake_retries = 0;  // disabled: retry forever
  auto conn = transport::Connection::create(sim, path, TransportKind::Quic, TlsVersion::Tls13,
                                            HandshakeMode::Fresh, util::Rng(7), config);
  conn->connect([](TimePoint) {});
  sim.run_until(sec(60));
  EXPECT_FALSE(conn->dead());
  EXPECT_GT(conn->stats().handshake_retries, 3);
  conn->close();
}

TEST(ConnectionDeath2, MidTransferBlackholeTripsTheRtoDetector) {
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 0.0, usec(0)}, util::Rng(42));
  // Everything dies from 50 ms on: the response stream is mid-flight.
  path.add_outage(net::Outage{msec(50), sec(600), net::OutageKind::UdpBlackhole});
  transport::TransportConfig config;
  config.domain = "hole.example";
  auto conn = transport::Connection::create(sim, path, TransportKind::Quic, TlsVersion::Tls13,
                                            HandshakeMode::Fresh, util::Rng(7), config);
  transport::ConnectionError death = transport::ConnectionError::None;
  conn->set_on_dead([&](transport::ConnectionError e, TimePoint) { death = e; });
  bool complete = false;
  transport::FetchCallbacks cbs;
  cbs.on_complete = [&](TimePoint) { complete = true; };
  conn->connect([](TimePoint) {});
  conn->fetch(500, 500'000, msec(1), std::move(cbs));
  sim.run();

  EXPECT_FALSE(complete);
  EXPECT_EQ(death, transport::ConnectionError::Blackhole);
  EXPECT_EQ(conn->error(), transport::ConnectionError::Blackhole);
  // The detector needs exactly `blackhole_rto_threshold` consecutive fires.
  EXPECT_GE(conn->stats().rto_fires, static_cast<std::uint64_t>(config.blackhole_rto_threshold));
}

TEST(ConnectionDeath2, LossySurvivableTransferDoesNotTripTheDetector) {
  // 5% loss hurts but ACKs keep arriving, so consecutive_rtos keeps resetting.
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 0.05, usec(0)}, util::Rng(42));
  auto conn = transport::Connection::create(sim, path, TransportKind::Quic, TlsVersion::Tls13,
                                            HandshakeMode::Fresh, util::Rng(7), {});
  bool complete = false;
  transport::FetchCallbacks cbs;
  cbs.on_complete = [&](TimePoint) { complete = true; };
  conn->connect([](TimePoint) {});
  conn->fetch(500, 300'000, msec(1), std::move(cbs));
  sim.run();
  EXPECT_TRUE(complete);
  EXPECT_FALSE(conn->dead());
}

// --- Session orphan evacuation ----------------------------------------------

TEST(SessionDeath, EvacuatesQueuedAndInFlightEntriesOnce) {
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 1.0, usec(0)}, util::Rng(42));
  transport::TransportConfig config;
  config.handshake_timeout = msec(100);
  config.max_handshake_retries = 2;
  auto conn = transport::Connection::create(sim, path, TransportKind::Quic, TlsVersion::Tls13,
                                            HandshakeMode::Fresh, util::Rng(7), config);
  auto session = http::Session::create(sim, conn, HttpVersion::H3);

  int death_calls = 0;
  std::vector<http::Session::Orphan> rescued;
  session->set_on_dead(
      [&](transport::ConnectionError error, std::vector<http::Session::Orphan> orphans) {
        ++death_calls;
        EXPECT_EQ(error, transport::ConnectionError::HandshakeTimeout);
        rescued = std::move(orphans);
      });
  session->start();
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    http::Request r;
    r.domain = "dead.example";
    r.path = "/r" + std::to_string(i);
    r.response_bytes = 10'000;
    session->submit(r, [&](const EntryTimings&) { ++completions; });
  }
  sim.run();

  EXPECT_EQ(death_calls, 1);
  EXPECT_TRUE(session->dead());
  EXPECT_TRUE(session->closed());
  EXPECT_EQ(completions, 0);  // the session never completes orphans itself
  ASSERT_EQ(rescued.size(), 3u);
  for (const auto& orphan : rescued) {
    EXPECT_EQ(orphan.submitted, TimePoint{0});
    EXPECT_EQ(orphan.attempts, 1);  // dispatched once onto the dead transport
    EXPECT_NE(orphan.done, nullptr);
  }
  EXPECT_EQ(session->in_flight(), 0u);
  EXPECT_EQ(session->queued(), 0u);
}

// --- Pool-level graceful degradation ----------------------------------------

struct PoolFixture {
  sim::Simulator sim;
  std::map<std::string, std::unique_ptr<net::NetPath>> paths;
  std::map<std::string, http::OriginInfo> origins;

  void add_origin(const std::string& domain, bool h3) {
    auto path = std::make_unique<net::NetPath>(
        sim, net::PathConfig{msec(20), 100e6, 0.0, usec(0)}, util::Rng(paths.size() + 1));
    http::OriginInfo info;
    info.path = path.get();
    info.supports_h3 = h3;
    origins[domain] = info;
    paths[domain] = std::move(path);
  }

  http::Resolver resolver() {
    return [this](const std::string& domain) { return origins.at(domain); };
  }

  http::Request request(const std::string& domain, std::size_t bytes = 100'000) {
    http::Request r;
    r.domain = domain;
    r.path = "/r";
    r.response_bytes = bytes;
    r.server_think = msec(2);
    return r;
  }
};

TEST(PoolFallback, MidTransferUdpBlackholeRescuesEveryRequestOverH2) {
  PoolFixture f;
  f.add_origin("cdn.example", /*h3=*/true);
  // The H3 handshake (~20 ms) succeeds; the response bodies are mid-flight
  // when QUIC stops passing. TCP keeps working: the classic middlebox
  // failure Chrome's fallback exists for.
  f.paths["cdn.example"]->add_outage(
      net::Outage{msec(40), sec(600), net::OutageKind::UdpBlackhole});

  http::PoolConfig config;
  config.h3_enabled = true;
  http::ConnectionPool pool(f.sim, config, f.resolver(), nullptr, util::Rng(77));
  auto trace = std::make_shared<trace::ConnectionTrace>();
  pool.set_trace(trace);

  const int n = 6;
  std::vector<EntryTimings> done;
  for (int i = 0; i < n; ++i) {
    pool.fetch(f.request("cdn.example"), [&](const EntryTimings& t) { done.push_back(t); });
  }
  f.sim.run();

  // The headline guarantee: ZERO failed page-load entries.
  ASSERT_EQ(done.size(), static_cast<std::size_t>(n));
  for (const auto& t : done) {
    EXPECT_FALSE(t.failed);
    EXPECT_EQ(t.version, HttpVersion::H2);  // all rescued past the blackhole
    EXPECT_EQ(t.started, TimePoint{0});     // original submission time kept
    EXPECT_GT(t.finished, msec(40));
  }

  const http::PoolStats& s = pool.stats();
  EXPECT_EQ(s.connection_deaths, 1u);
  EXPECT_EQ(s.h3_fallbacks, 1u);
  EXPECT_EQ(s.h3_broken_marks, 1u);
  EXPECT_EQ(s.requests_rescued, static_cast<std::uint64_t>(n));
  EXPECT_EQ(s.requests_failed, 0u);
  EXPECT_TRUE(pool.h3_broken("cdn.example"));

  int fallback_events = 0;
  int broken_events = 0;
  for (const auto& e : trace->events()) {
    if (e.type == trace::EventType::FallbackTriggered) ++fallback_events;
    if (e.type == trace::EventType::H3BrokenMarked) ++broken_events;
  }
  EXPECT_EQ(fallback_events, n);
  EXPECT_EQ(broken_events, 1);

  // While the mark holds, new requests route straight to H2 (no H3 dial).
  EntryTimings late;
  pool.fetch(f.request("cdn.example", 1'000), [&](const EntryTimings& t) { late = t; });
  f.sim.run();
  EXPECT_EQ(late.version, HttpVersion::H2);
  EXPECT_FALSE(late.failed);
  EXPECT_EQ(pool.stats().h3_connections, 1u);  // still just the dead one
}

TEST(PoolFallback, RetryBudgetExhaustionCompletesEntriesAsFailed) {
  PoolFixture f;
  f.add_origin("cdn.example", /*h3=*/true);
  f.paths["cdn.example"]->add_outage(
      net::Outage{msec(40), sec(600), net::OutageKind::UdpBlackhole});

  http::PoolConfig config;
  config.h3_enabled = true;
  config.max_request_retries = 1;  // one dispatch is all you get
  http::ConnectionPool pool(f.sim, config, f.resolver(), nullptr, util::Rng(77));

  std::vector<EntryTimings> done;
  for (int i = 0; i < 4; ++i) {
    pool.fetch(f.request("cdn.example"), [&](const EntryTimings& t) { done.push_back(t); });
  }
  f.sim.run();

  // Every entry still completes — with failed set, so the page finishes.
  ASSERT_EQ(done.size(), 4u);
  for (const auto& t : done) {
    EXPECT_TRUE(t.failed);
    EXPECT_EQ(t.started, TimePoint{0});
    EXPECT_GT(t.finished, TimePoint{0});
  }
  EXPECT_EQ(pool.stats().requests_failed, 4u);
  EXPECT_EQ(pool.stats().requests_rescued, 0u);
}

TEST(PoolFallback, BrokenMarkExpiryTriggersH3ReProbe) {
  PoolFixture f;
  f.add_origin("cdn.example", /*h3=*/true);
  // Blackhole covers the first dial's handshake, then the network heals.
  f.paths["cdn.example"]->add_outage(
      net::Outage{TimePoint{0}, sec(1), net::OutageKind::UdpBlackhole});

  http::PoolConfig config;
  config.h3_enabled = true;
  config.h3_broken_ttl = msec(500);
  config.transport.handshake_timeout = msec(50);
  config.transport.max_handshake_retries = 2;  // dead at 50+100+200 = 350 ms
  http::ConnectionPool pool(f.sim, config, f.resolver(), nullptr, util::Rng(77));
  auto trace = std::make_shared<trace::ConnectionTrace>();
  pool.set_trace(trace);

  EntryTimings first;
  pool.fetch(f.request("cdn.example", 5'000), [&](const EntryTimings& t) { first = t; });
  // Mark active at ~350+500=850 ms; by 2 s it has expired and the outage is
  // over, so this dial is the re-probe and must succeed over H3.
  EntryTimings second;
  f.sim.schedule_at(sec(2), [&] {
    pool.fetch(f.request("cdn.example", 5'000), [&](const EntryTimings& t) { second = t; });
  });
  f.sim.run();

  EXPECT_FALSE(first.failed);
  EXPECT_EQ(first.version, HttpVersion::H2);  // rescued from the dead H3 dial
  EXPECT_FALSE(second.failed);
  EXPECT_EQ(second.version, HttpVersion::H3);  // re-probe back on H3
  EXPECT_EQ(pool.stats().h3_reprobes, 1u);
  EXPECT_EQ(pool.stats().h3_connections, 2u);
  EXPECT_FALSE(pool.h3_broken("cdn.example"));
  int reprobe_events = 0;
  for (const auto& e : trace->events()) {
    if (e.type == trace::EventType::H3ReProbe) ++reprobe_events;
  }
  EXPECT_EQ(reprobe_events, 1);
}

TEST(PoolFallback, DisabledFallbackAbandonsNoEntriesButKeepsH3Routing) {
  // With fallback off a dead H3 session still evacuates orphans; they retry
  // on a fresh H3 dial (same protocol), which also dies, until the budget
  // fails them. No hangs either way.
  PoolFixture f;
  f.add_origin("cdn.example", /*h3=*/true);
  f.paths["cdn.example"]->add_outage(
      net::Outage{msec(40), sec(6000), net::OutageKind::UdpBlackhole});

  http::PoolConfig config;
  config.h3_enabled = true;
  config.h3_fallback_enabled = false;
  config.transport.handshake_timeout = msec(50);
  config.transport.max_handshake_retries = 2;
  http::ConnectionPool pool(f.sim, config, f.resolver(), nullptr, util::Rng(77));

  std::vector<EntryTimings> done;
  for (int i = 0; i < 3; ++i) {
    pool.fetch(f.request("cdn.example"), [&](const EntryTimings& t) { done.push_back(t); });
  }
  f.sim.run();

  ASSERT_EQ(done.size(), 3u);
  for (const auto& t : done) EXPECT_TRUE(t.failed);
  EXPECT_EQ(pool.stats().h3_fallbacks, 0u);
  EXPECT_GE(pool.stats().h3_connections, 2u);  // it kept trying H3
  EXPECT_FALSE(pool.h3_broken("cdn.example"));
}

// --- Refusal bursts: capacity pushback is not a protocol failure -------------

TEST(PoolFallback, RefusedBurstNeverMarksPoolH3Broken) {
  // Regression guard: a burst of admission refusals (edge at capacity) must
  // keep retrying on H3 after backoff — never mark the host H3-broken or
  // degrade to H2. Refused is "busy", not "broken" (docs/RESILIENCE.md).
  PoolFixture f;
  f.add_origin("edge.example", /*h3=*/true);
  int refusals_left = 3;
  f.origins["edge.example"].handshake_admission =
      [&](TimePoint, TransportKind, HandshakeMode) -> std::optional<Duration> {
    if (refusals_left > 0) {
      --refusals_left;
      return std::nullopt;  // CONNECTION_REFUSED analogue
    }
    return Duration::zero();  // admitted, no queueing delay
  };

  http::PoolConfig config;
  config.h3_enabled = true;
  config.max_request_retries = 8;  // refusal backoff needs attempts to spend
  http::ConnectionPool pool(f.sim, config, f.resolver(), nullptr, util::Rng(77));

  std::vector<EntryTimings> done;
  for (int i = 0; i < 4; ++i) {
    pool.fetch(f.request("edge.example"), [&](const EntryTimings& t) { done.push_back(t); });
  }
  f.sim.run();

  ASSERT_EQ(done.size(), 4u);
  for (const auto& t : done) {
    EXPECT_FALSE(t.failed);
    EXPECT_EQ(t.version, HttpVersion::H3) << "refusals must retry on the SAME protocol";
  }
  EXPECT_FALSE(pool.h3_broken("edge.example"));
  const http::PoolStats& s = pool.stats();
  EXPECT_EQ(s.h3_broken_marks, 0u);
  EXPECT_EQ(s.h3_fallbacks, 0u);
  EXPECT_EQ(s.connections_refused, 3u);  // one per scripted refusal
  EXPECT_GT(s.refusal_retries, 0u);
  EXPECT_EQ(s.requests_failed, 0u);
}

TEST(PoolFallback, RefusalsStayOutOfBreakerAndDnsHealth) {
  // With the resilience engine on, refusals are also excluded from the
  // per-edge circuit breaker and from DNS failover health reports.
  PoolFixture f;
  f.add_origin("edge.example", /*h3=*/true);
  int refusals_left = 2;  // within the engine's default 4-attempt budget
  f.origins["edge.example"].handshake_admission =
      [&](TimePoint, TransportKind, HandshakeMode) -> std::optional<Duration> {
    if (refusals_left > 0) {
      --refusals_left;
      return std::nullopt;
    }
    return Duration::zero();
  };
  int failover_reports = 0;
  f.origins["edge.example"].connection_failed = [&](TimePoint) { ++failover_reports; };

  resilience::Options opts;
  opts.enabled = true;
  opts.breaker.min_samples = 2;  // would trip fast IF refusals were counted
  resilience::Engine engine(opts);
  http::PoolConfig config;
  config.h3_enabled = true;
  config.resilience = &engine;
  http::ConnectionPool pool(f.sim, config, f.resolver(), nullptr, util::Rng(77));

  std::vector<EntryTimings> done;
  for (int i = 0; i < 4; ++i) {
    pool.fetch(f.request("edge.example"), [&](const EntryTimings& t) { done.push_back(t); });
  }
  f.sim.run();

  ASSERT_EQ(done.size(), 4u);
  for (const auto& t : done) EXPECT_FALSE(t.failed);
  EXPECT_EQ(failover_reports, 0) << "a refusal is not a path failure";
  EXPECT_EQ(engine.breakers().get("edge.example", "h3").state(),
            resilience::BreakerState::Closed);
  EXPECT_EQ(engine.breakers().total_transitions().opened, 0u);
  EXPECT_EQ(pool.stats().h3_broken_marks, 0u);
  EXPECT_FALSE(pool.h3_broken("edge.example"));
}

// --- Browser-level: zero failed page loads through an outage ----------------

TEST(BrowserFallback, PageCompletesWithZeroFailedLoadsThroughUdpBlackhole) {
  web::WorkloadConfig wc;
  wc.site_count = 3;
  const web::Workload workload = web::generate_workload(wc);
  const web::WebPage& page = workload.sites[0].page;

  auto load_page = [&](bool with_outage) {
    sim::Simulator sim;
    browser::VantageConfig vantage;
    if (with_outage) {
      // Opens just after the first H3 handshakes succeed and never lifts:
      // every H3 connection must degrade for the page to finish.
      vantage.fault_profile.outages.push_back(
          net::Outage{msec(50), sec(600), net::OutageKind::UdpBlackhole});
    }
    util::Rng rng(util::derive_seed({1234}));
    browser::Environment env(sim, workload.universe, vantage, rng.fork("env"));
    env.warm_page(page);
    browser::BrowserConfig bc;
    bc.h3_enabled = true;
    // Tight resilience knobs so dead dials give up in well under a second.
    bc.transport.handshake_timeout = msec(100);
    bc.transport.max_handshake_retries = 3;
    bc.transport.blackhole_rto_threshold = 4;
    browser::Browser browser(sim, env, nullptr, bc, rng.fork("browser"));
    return browser.visit_and_run(page);
  };

  const browser::PageLoadResult clean = load_page(false);
  ASSERT_GE(clean.pool_stats.h3_connections, 1u)
      << "site 0 must exercise H3 for this test to be meaningful";

  const browser::PageLoadResult faulted = load_page(true);
  // The headline acceptance criterion: the outage causes ZERO failed loads;
  // every entry completes, the affected ones transparently over H2.
  EXPECT_EQ(faulted.har.failed_entry_count(), 0u);
  EXPECT_EQ(faulted.har.entries.size(), clean.har.entries.size());
  EXPECT_GE(faulted.pool_stats.h3_fallbacks, 1u);
  EXPECT_GE(faulted.pool_stats.requests_rescued, 1u);
  EXPECT_EQ(faulted.pool_stats.requests_failed, 0u);
  EXPECT_EQ(faulted.har.h3_fallbacks, faulted.pool_stats.h3_fallbacks);
  // Recovery costs time; the faulted load cannot beat the clean one.
  EXPECT_GE(faulted.har.page_load_time, clean.har.page_load_time);
}

// --- Resilience experiment: deterministic replay -----------------------------

TEST(Resilience, IdenticalConfigsReplayByteIdenticalResults) {
  auto run_once = [] {
    core::ResilienceConfig config;
    config.sites = 2;
    config.workload.site_count = 2;
    config.loss_rates = {0.01};
    config.outage_durations = {msec(300)};
    return core::run_resilience(config);
  };
  const core::ResilienceResult a = run_once();
  const core::ResilienceResult b = run_once();

  ASSERT_EQ(a.loss_rows.size(), 2u);  // one rate x {iid, bursty}
  ASSERT_EQ(a.loss_rows.size(), b.loss_rows.size());
  for (std::size_t i = 0; i < a.loss_rows.size(); ++i) {
    EXPECT_EQ(a.loss_rows[i].bursty, b.loss_rows[i].bursty);
    EXPECT_EQ(a.loss_rows[i].h2_mean_plt_ms, b.loss_rows[i].h2_mean_plt_ms);
    EXPECT_EQ(a.loss_rows[i].h2_p95_plt_ms, b.loss_rows[i].h2_p95_plt_ms);
    EXPECT_EQ(a.loss_rows[i].h3_mean_plt_ms, b.loss_rows[i].h3_mean_plt_ms);
    EXPECT_EQ(a.loss_rows[i].h3_p95_plt_ms, b.loss_rows[i].h3_p95_plt_ms);
    EXPECT_GT(a.loss_rows[i].h2_mean_plt_ms, 0.0);
  }
  ASSERT_EQ(a.outage_rows.size(), 1u);
  ASSERT_EQ(b.outage_rows.size(), 1u);
  EXPECT_EQ(a.outage_rows[0].connection_deaths, b.outage_rows[0].connection_deaths);
  EXPECT_EQ(a.outage_rows[0].h3_fallbacks, b.outage_rows[0].h3_fallbacks);
  EXPECT_EQ(a.outage_rows[0].requests_rescued, b.outage_rows[0].requests_rescued);
  EXPECT_EQ(a.outage_rows[0].requests_failed, b.outage_rows[0].requests_failed);
  EXPECT_EQ(a.outage_rows[0].mean_recovery_ms, b.outage_rows[0].mean_recovery_ms);
  EXPECT_EQ(a.outage_rows[0].p95_recovery_ms, b.outage_rows[0].p95_recovery_ms);
  EXPECT_EQ(a.outage_rows[0].requests_failed, 0u);  // graceful degradation held
}

}  // namespace
}  // namespace h3cdn
