// Fleet-scale load subsystem: arrival processes, edge-server capacity /
// admission, and the sweep's determinism + degradation guarantees.
#include "load/study.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cdn/edge_server.h"
#include "core/observability.h"
#include "load/arrival.h"
#include "obs/metrics.h"

namespace h3cdn::load {
namespace {

// ---------------------------------------------------------------- arrivals

TEST(Arrival, FixedRateIsExactlySpaced) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::FixedRate;
  cfg.rate_per_sec = 5.0;
  cfg.window = sec(2);
  util::Rng rng(1);
  const auto a = open_loop_arrivals(cfg, rng);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], TimePoint{msec(200 * static_cast<std::int64_t>(i))});
  }
}

TEST(Arrival, PoissonMatchesRateAndStaysSorted) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::Poisson;
  cfg.rate_per_sec = 50.0;
  cfg.window = sec(20);
  util::Rng rng(42);
  const auto a = open_loop_arrivals(cfg, rng);
  // Expected count lambda*W = 1000; allow +-10% (way beyond 3 sigma ~ 95).
  EXPECT_GT(a.size(), 900u);
  EXPECT_LT(a.size(), 1100u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  for (const auto t : a) {
    EXPECT_GE(t, TimePoint{0});
    EXPECT_LT(t, TimePoint{cfg.window});
  }
  // Mean inter-arrival ~ 1/lambda = 20ms.
  const double mean_gap_ms = to_ms(a.back() - a.front()) / static_cast<double>(a.size() - 1);
  EXPECT_NEAR(mean_gap_ms, 20.0, 2.0);
}

TEST(Arrival, DiurnalRampConcentratesMidWindow) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::DiurnalRamp;
  cfg.rate_per_sec = 20.0;
  cfg.peak_ratio = 4.0;
  cfg.window = sec(20);
  util::Rng rng(7);
  const auto a = open_loop_arrivals(cfg, rng);
  ASSERT_GT(a.size(), 100u);
  const auto quarter = TimePoint{cfg.window / 4};
  const auto three_quarters = TimePoint{3 * (cfg.window / 4)};
  const auto mid = static_cast<std::size_t>(std::count_if(
      a.begin(), a.end(), [&](TimePoint t) { return t >= quarter && t < three_quarters; }));
  // The triangular ramp puts well over half the mass in the middle half.
  EXPECT_GT(static_cast<double>(mid) / static_cast<double>(a.size()), 0.6);
  // Shape function: peak at mid-window, baseline at the edges.
  EXPECT_NEAR(instantaneous_rate(cfg, TimePoint{cfg.window / 2}),
              cfg.rate_per_sec * cfg.peak_ratio, 1e-9);
  EXPECT_NEAR(instantaneous_rate(cfg, TimePoint{0}), cfg.rate_per_sec, 1e-9);
}

TEST(Arrival, ClosedLoopHasNoPrecomputedSchedule) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::ClosedLoop;
  util::Rng rng(1);
  EXPECT_TRUE(open_loop_arrivals(cfg, rng).empty());
}

TEST(Arrival, KindParsingRoundTrips) {
  bool ok = false;
  EXPECT_EQ(arrival_kind_from_string("fixed", &ok), ArrivalKind::FixedRate);
  EXPECT_TRUE(ok);
  EXPECT_EQ(arrival_kind_from_string("ramp", &ok), ArrivalKind::DiurnalRamp);
  EXPECT_TRUE(ok);
  EXPECT_EQ(arrival_kind_from_string("closed", &ok), ArrivalKind::ClosedLoop);
  EXPECT_TRUE(ok);
  arrival_kind_from_string("bogus", &ok);
  EXPECT_FALSE(ok);
}

// ------------------------------------------------------- edge capacity model

cdn::EdgeServer make_edge(cdn::EdgeCapacityConfig capacity) {
  cdn::ProviderTraits traits;
  traits.name = "test";
  return cdn::EdgeServer(traits, util::Rng(5), 64, capacity);
}

TEST(EdgeCapacity, ConnectionLimitRefusesAndReleaseReadmits) {
  cdn::EdgeCapacityConfig cap;
  cap.enabled = true;
  cap.max_concurrent_connections = 2;
  cap.accept_queue_depth = 64;
  auto edge = make_edge(cap);
  EXPECT_TRUE(edge.try_admit(TimePoint{0}, tls::TransportKind::Tcp,
                             tls::HandshakeMode::Fresh).has_value());
  EXPECT_TRUE(edge.try_admit(TimePoint{0}, tls::TransportKind::Tcp,
                             tls::HandshakeMode::Fresh).has_value());
  EXPECT_FALSE(edge.try_admit(TimePoint{0}, tls::TransportKind::Tcp,
                              tls::HandshakeMode::Fresh).has_value());
  EXPECT_EQ(edge.refused_conn_limit(), 1u);
  EXPECT_EQ(edge.concurrent_connections(), 2u);
  edge.release_connection();
  EXPECT_TRUE(edge.try_admit(TimePoint{0}, tls::TransportKind::Tcp,
                             tls::HandshakeMode::Fresh).has_value());
  EXPECT_EQ(edge.handshakes_admitted(), 3u);
}

TEST(EdgeCapacity, AcceptQueueOverflowRefusesUntilDrained) {
  cdn::EdgeCapacityConfig cap;
  cap.enabled = true;
  cap.accept_queue_depth = 2;
  cap.max_concurrent_connections = 1000;
  auto edge = make_edge(cap);
  // Two simultaneous handshakes fill the serial accept queue...
  EXPECT_TRUE(edge.try_admit(TimePoint{0}, tls::TransportKind::Tcp,
                             tls::HandshakeMode::Fresh).has_value());
  EXPECT_TRUE(edge.try_admit(TimePoint{0}, tls::TransportKind::Tcp,
                             tls::HandshakeMode::Fresh).has_value());
  // ...so a third arriving at the same instant is refused.
  EXPECT_FALSE(edge.try_admit(TimePoint{0}, tls::TransportKind::Tcp,
                              tls::HandshakeMode::Fresh).has_value());
  EXPECT_EQ(edge.refused_queue_full(), 1u);
  EXPECT_EQ(edge.accept_backlog(TimePoint{0}), 2u);
  // Once the queued CPU work finishes, the backlog prunes and admission
  // succeeds again.
  EXPECT_EQ(edge.accept_backlog(TimePoint{sec(1)}), 0u);
  EXPECT_TRUE(edge.try_admit(TimePoint{sec(1)}, tls::TransportKind::Tcp,
                             tls::HandshakeMode::Fresh).has_value());
}

TEST(EdgeCapacity, QuicHandshakeCostsMoreCpuThanTcp) {
  cdn::EdgeCapacityConfig cap;
  cap.enabled = true;
  const auto tcp = make_edge(cap).try_admit(TimePoint{0}, tls::TransportKind::Tcp,
                                            tls::HandshakeMode::Fresh);
  const auto quic = make_edge(cap).try_admit(TimePoint{0}, tls::TransportKind::Quic,
                                             tls::HandshakeMode::Fresh);
  ASSERT_TRUE(tcp.has_value());
  ASSERT_TRUE(quic.has_value());
  EXPECT_EQ(*tcp, cap.handshake_cpu_tcp);
  EXPECT_EQ(*quic, cap.handshake_cpu_quic);
  EXPECT_GT(*quic, *tcp);
}

TEST(EdgeCapacity, ResumedHandshakesPayDiscountedCpu) {
  cdn::EdgeCapacityConfig cap;
  cap.enabled = true;
  const auto fresh = make_edge(cap).try_admit(TimePoint{0}, tls::TransportKind::Quic,
                                              tls::HandshakeMode::Fresh);
  const auto resumed = make_edge(cap).try_admit(TimePoint{0}, tls::TransportKind::Quic,
                                                tls::HandshakeMode::Resumed);
  ASSERT_TRUE(fresh.has_value());
  ASSERT_TRUE(resumed.has_value());
  EXPECT_LT(*resumed, *fresh);
  EXPECT_NEAR(to_ms(*resumed), to_ms(*fresh) * cap.resumed_handshake_discount, 0.002);
}

TEST(EdgeCapacity, DisabledCapacityAdmitsForFree) {
  auto edge = make_edge({});
  const auto d = edge.try_admit(TimePoint{0}, tls::TransportKind::Quic,
                                tls::HandshakeMode::Fresh);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, Duration::zero());
  EXPECT_EQ(edge.refused_queue_full(), 0u);
  EXPECT_EQ(edge.refused_conn_limit(), 0u);
}

// ------------------------------------------------------------- load sweep

LoadStudyConfig small_config() {
  LoadStudyConfig cfg;
  cfg.workload.site_count = 4;
  cfg.sites = 3;
  cfg.offered_rates = {2.0, 24.0};
  cfg.window = sec(4);
  cfg.max_visits_per_cell = 512;
  cfg.seed = 99;
  cfg.jobs = 1;
  return cfg;
}

TEST(LoadStudy, RowsAreRateMajorWithBothProtocols) {
  const auto result = run_load_study(small_config());
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[0].offered_rate, 2.0);
  EXPECT_FALSE(result.rows[0].h3);
  EXPECT_EQ(result.rows[1].offered_rate, 2.0);
  EXPECT_TRUE(result.rows[1].h3);
  EXPECT_EQ(result.rows[2].offered_rate, 24.0);
  EXPECT_FALSE(result.rows[2].h3);
  EXPECT_TRUE(result.rows[3].h3);
  for (const auto& row : result.rows) {
    EXPECT_GT(row.arrivals, 0u);
    EXPECT_GT(row.visits, 0u);
    EXPECT_GT(row.clients, 0u);
    EXPECT_LE(row.plt_p50_ms, row.plt_p95_ms);
    EXPECT_LE(row.plt_p95_ms, row.plt_p99_ms);
    EXPECT_LE(row.ttfb_p50_ms, row.ttfb_p95_ms);
    EXPECT_FALSE(row.queue_series.empty());
  }
}

TEST(LoadStudy, IdenticalRunsAreByteIdentical) {
  const auto cfg = small_config();
  const auto a = load_result_to_csv(run_load_study(cfg));
  const auto b = load_result_to_csv(run_load_study(cfg));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(LoadStudy, JobsDoNotChangeOutputOrMetrics) {
  auto cfg = small_config();
  cfg.jobs = 1;
  core::RunObservability obs1;
  const auto serial = load_result_to_csv(run_load_study(cfg, &obs1));
  cfg.jobs = 4;
  core::RunObservability obs4;
  const auto parallel = load_result_to_csv(run_load_study(cfg, &obs4));
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(obs::metrics_to_json(obs1.metrics()), obs::metrics_to_json(obs4.metrics()));
  EXPECT_GT(obs1.metrics().counter("load.visits").value(), 0u);
}

TEST(LoadStudy, LatencyAndQueueDegradeAcrossTheCapacityKnee) {
  // Tight capacity + a rate sweep that crosses it: the loaded cells must
  // show deeper queues and slower tails than the idle-ish ones, and the
  // overloaded cell must actually refuse connections.
  LoadStudyConfig cfg = small_config();
  cfg.offered_rates = {1.0, 40.0};
  cfg.capacity.think_cores = 1;
  cfg.capacity.accept_queue_depth = 4;
  cfg.capacity.max_concurrent_connections = 8;
  const auto result = run_load_study(cfg);
  ASSERT_EQ(result.rows.size(), 4u);
  for (int proto = 0; proto < 2; ++proto) {
    const auto& low = result.rows[static_cast<std::size_t>(proto)];
    const auto& high = result.rows[static_cast<std::size_t>(2 + proto)];
    EXPECT_GE(high.mean_queue_depth, low.mean_queue_depth);
    EXPECT_GE(high.max_queue_depth, low.max_queue_depth);
    EXPECT_GT(high.ttfb_p95_ms, low.ttfb_p95_ms);
    EXPECT_GT(high.connections_refused, low.connections_refused);
    EXPECT_GT(high.refusal_rate, 0.0);
    EXPECT_GT(high.refusal_retries, 0u);
  }
}

TEST(LoadStudy, ClosedLoopPopulationSelfThrottles) {
  LoadStudyConfig cfg = small_config();
  cfg.arrival = ArrivalKind::ClosedLoop;
  cfg.offered_rates = {4.0};  // reinterpreted as the user population
  const auto result = run_load_study(cfg);
  ASSERT_EQ(result.rows.size(), 2u);
  for (const auto& row : result.rows) {
    EXPECT_GT(row.visits, 0u);
    // A fixed population never needs more clients than users.
    EXPECT_LE(row.clients, 4u);
    EXPECT_EQ(row.connections_refused + row.failed_visits + row.visits > 0, true);
  }
}

TEST(LoadStudy, CsvCarriesQueueSeriesAndAttribution) {
  const auto result = run_load_study(small_config());
  const auto csv = load_result_to_csv(result);
  EXPECT_NE(csv.find("rate,proto"), std::string::npos);
  EXPECT_NE(csv.find("queue_series"), std::string::npos);
  EXPECT_NE(csv.find("cp_"), std::string::npos);  // critical-path columns
  // One header plus one line per cell.
  const auto lines = static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, 1u + result.rows.size());
}

}  // namespace
}  // namespace h3cdn::load
