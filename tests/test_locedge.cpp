#include "locedge/classifier.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "web/headers.h"
#include "web/workload.h"

namespace h3cdn::locedge {
namespace {

using cdn::ProviderId;
using web::Header;

TEST(Classifier, IdentifiesEachProviderFromHeaders) {
  Classifier c;
  util::Rng rng(1);
  for (const auto& traits : cdn::ProviderRegistry::all()) {
    for (int i = 0; i < 20; ++i) {
      auto headers = web::make_cdn_headers(traits.id, rng);
      // Classify with a neutral hostname so only headers carry the signal.
      const auto result = c.classify("res.neutral-host.example", headers);
      EXPECT_TRUE(result.is_cdn) << traits.name;
      EXPECT_EQ(result.provider, traits.id) << traits.name;
      EXPECT_EQ(result.evidence, Classification::Evidence::HeaderFingerprint);
    }
  }
}

TEST(Classifier, IdentifiesProvidersFromDomainAlone) {
  Classifier c;
  const std::vector<std::pair<std::string, ProviderId>> cases = {
      {"fonts.gstatic.com", ProviderId::Google},
      {"ajax.googleapis.com", ProviderId::Google},
      {"cdnjs.cloudflare.com", ProviderId::Cloudflare},
      {"d1a2b3c4.cloudfront.net", ProviderId::Amazon},
      {"static.akamaized.net", ProviderId::Akamai},
      {"github.githubassets.com", ProviderId::Fastly},
      {"ajax.aspnetcdn.com", ProviderId::Microsoft},
      {"cdn.quic.cloud", ProviderId::QuicCloud},
      {"cdn.sstatic.net", ProviderId::Other},
  };
  for (const auto& [domain, provider] : cases) {
    const auto result = c.classify(domain, {});
    EXPECT_TRUE(result.is_cdn) << domain;
    EXPECT_EQ(result.provider, provider) << domain;
    EXPECT_EQ(result.evidence, Classification::Evidence::DomainPattern);
  }
}

TEST(Classifier, NonCdnResponsesNotClassified) {
  Classifier c;
  util::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const auto result = c.classify("www.some-site.example", web::make_origin_headers(rng));
    EXPECT_FALSE(result.is_cdn);
    EXPECT_EQ(result.provider, ProviderId::None);
    EXPECT_EQ(result.evidence, Classification::Evidence::None);
  }
}

TEST(Classifier, HeaderNamesAreCaseInsensitive) {
  Classifier c;
  const std::vector<Header> headers{{"CF-Ray", "abc123-EWR"}};
  EXPECT_EQ(c.classify("x.example", headers).provider, ProviderId::Cloudflare);
}

TEST(Classifier, HeaderEvidenceBeatsDomainEvidence) {
  // A Cloudflare-fronted site served under a gstatic-looking name must be
  // attributed by the response fingerprint.
  Classifier c;
  const std::vector<Header> headers{{"cf-ray", "abc-LAX"}};
  const auto result = c.classify("fonts.gstatic.com", headers);
  EXPECT_EQ(result.provider, ProviderId::Cloudflare);
  EXPECT_EQ(result.evidence, Classification::Evidence::HeaderFingerprint);
}

TEST(Classifier, EndToEndAccuracyOnWorkload) {
  // Over the full synthetic workload, the classifier must recover ground
  // truth essentially everywhere (the paper relies on LocEdge being precise).
  Classifier c;
  web::WorkloadConfig cfg;
  cfg.site_count = 60;
  const auto w = web::generate_workload(cfg);
  std::size_t total = 0, correct = 0;
  for (const auto& s : w.sites) {
    for (const auto& r : s.page.resources) {
      ++total;
      const auto result = c.classify(r);
      const bool ok = r.is_cdn ? (result.is_cdn && result.provider == r.provider)
                               : !result.is_cdn;
      correct += ok;
    }
  }
  EXPECT_EQ(correct, total);
}

TEST(Classifier, FastlyNeedsCachePrefixInServedBy) {
  Classifier c;
  EXPECT_TRUE(c.classify("x.example", {{"x-served-by", "cache-bur-1234"}}).is_cdn);
  EXPECT_FALSE(c.classify("x.example", {{"x-served-by", "app-server-7"}}).is_cdn);
}

TEST(Classifier, ViaBannerRouting) {
  Classifier c;
  EXPECT_EQ(c.classify("x.example", {{"via", "1.1 google"}}).provider, ProviderId::Google);
  EXPECT_EQ(c.classify("x.example", {{"via", "1.1 abc.cloudfront.net (CloudFront)"}}).provider,
            ProviderId::Amazon);
  EXPECT_EQ(c.classify("x.example", {{"via", "1.1 varnish"}}).provider, ProviderId::Fastly);
}

}  // namespace
}  // namespace h3cdn::locedge
