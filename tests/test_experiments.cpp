// End-to-end experiment sanity at reduced scale: every compute_* driver must
// produce the paper's qualitative shape. The full-scale quantitative runs
// live in bench/ (see EXPERIMENTS.md for paper-vs-measured values).
#include "core/experiments.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"

namespace h3cdn::core {
namespace {

// One shared mid-sized study for all experiment tests (computed once).
class ExperimentsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyConfig cfg;
    cfg.max_sites = 60;
    cfg.probes_per_vantage = 1;
    study_ = new StudyResult(MeasurementStudy(cfg).run());

    StudyConfig ccfg = cfg;
    ccfg.consecutive = true;
    consecutive_ = new StudyResult(MeasurementStudy(ccfg).run());
  }
  static void TearDownTestSuite() {
    delete study_;
    delete consecutive_;
    study_ = nullptr;
    consecutive_ = nullptr;
  }
  static const StudyResult& study() { return *study_; }
  static const StudyResult& consecutive() { return *consecutive_; }

 private:
  static StudyResult* study_;
  static StudyResult* consecutive_;
};

StudyResult* ExperimentsTest::study_ = nullptr;
StudyResult* ExperimentsTest::consecutive_ = nullptr;

TEST_F(ExperimentsTest, Table1CoversAllProvidersChronologically) {
  const auto rows = compute_table1();
  EXPECT_EQ(rows.size(), 7u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].release_year, rows[i].release_year);
  }
  EXPECT_EQ(rows.front().provider, "Cloudflare");  // 2019, the earliest
}

TEST_F(ExperimentsTest, Table2CdnDominatesAndH3Substantial) {
  const auto t2 = compute_table2(study());
  // Each page counted once (the paper's dataset convention): ~90 reqs/site.
  EXPECT_GT(t2.total(), 4'000u);
  // Table II shape: CDN ~67% of requests; H3 ~33% overall; H1 "Others" small.
  const double cdn_share = static_cast<double>(t2.cdn_total()) / t2.total();
  EXPECT_NEAR(cdn_share, 0.67, 0.08);
  const double h3_share = static_cast<double>(t2.cdn_h3 + t2.noncdn_h3) / t2.total();
  EXPECT_NEAR(h3_share, 0.33, 0.10);
  const double others = static_cast<double>(t2.cdn_other + t2.noncdn_other) / t2.total();
  EXPECT_LT(others, 0.12);
  EXPECT_LT(t2.cdn_other, t2.noncdn_other + 1);  // "Others" nearly absent on CDNs
}

TEST_F(ExperimentsTest, Fig2GoogleAndCloudflareCarryH3) {
  const auto rows = compute_fig2(study());
  ASSERT_GE(rows.size(), 4u);
  // Google and Cloudflare jointly dominate H3 CDN traffic (Fig. 2); which of
  // the two leads can flip at reduced sample sizes.
  const Fig2Row* google = nullptr;
  const Fig2Row* cloudflare = nullptr;
  for (const auto& r : rows) {
    if (r.provider == cdn::ProviderId::Google) google = &r;
    if (r.provider == cdn::ProviderId::Cloudflare) cloudflare = &r;
  }
  ASSERT_NE(google, nullptr);
  ASSERT_NE(cloudflare, nullptr);
  EXPECT_GT(google->share_of_all_h3_cdn + cloudflare->share_of_all_h3_cdn, 0.75);
  EXPECT_GT(google->share_of_all_h3_cdn, 0.30);
  EXPECT_GT(cloudflare->share_of_all_h3_cdn, 0.25);
  EXPECT_GT(google->h3_share_within_provider, 0.85);          // nearly fully shifted
  EXPECT_NEAR(cloudflare->h3_share_within_provider, 0.5, 0.25);  // comparable H3/H2
  double share_sum = 0;
  for (const auto& r : rows) share_sum += r.share_of_all_h3_cdn;
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST_F(ExperimentsTest, Fig3MostPagesCdnDominated) {
  const auto f3 = compute_fig3(study());
  EXPECT_NEAR(f3.fraction_above_50pct, 0.75, 0.15);
  ASSERT_FALSE(f3.ccdf.empty());
  for (std::size_t i = 1; i < f3.ccdf.size(); ++i) {
    EXPECT_GE(f3.ccdf[i - 1].y, f3.ccdf[i].y);  // CCDF non-increasing
  }
}

TEST_F(ExperimentsTest, Fig4PresenceAndProviderCounts) {
  const auto f4 = compute_fig4(study());
  ASSERT_GE(f4.presence.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_GT(f4.presence[i].second, 0.5);
  EXPECT_GT(f4.fraction_pages_ge2_providers, 0.85);
  std::size_t pages = 0;
  for (const auto& [k, n] : f4.pages_by_provider_count) pages += n;
  EXPECT_EQ(pages, study().site_count());
}

TEST_F(ExperimentsTest, Fig5GiantsServeManyResourcesPerPage) {
  const auto f5 = compute_fig5(study());
  EXPECT_EQ(f5.ccdf.size(), 4u);
  EXPECT_NEAR(f5.fraction_pages_gt10.at(cdn::ProviderId::Cloudflare), 0.5, 0.25);
  EXPECT_NEAR(f5.fraction_pages_gt10.at(cdn::ProviderId::Google), 0.5, 0.25);
  // Amazon/Fastly host fewer resources per page than Cloudflare (Fig. 5).
  EXPECT_LT(f5.fraction_pages_gt10.at(cdn::ProviderId::Fastly),
            f5.fraction_pages_gt10.at(cdn::ProviderId::Cloudflare));
}

TEST_F(ExperimentsTest, Fig6GroupsAndPhaseMedians) {
  const auto f6 = compute_fig6(study());
  ASSERT_EQ(f6.groups.size(), 4u);
  // Equal group sizes; group key means increase.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(f6.groups[i].pages),
                static_cast<double>(f6.groups[0].pages), 1.0);
    EXPECT_GT(f6.groups[i].mean_h3_cdn_resources, f6.groups[i - 1].mean_h3_cdn_resources);
  }
  // Fig. 6b signs: connection > 0, wait < 0, receive ~ 0.
  EXPECT_GT(f6.median_connect_reduction_ms, 0.0);
  EXPECT_LT(f6.median_wait_reduction_ms, 0.0);
  EXPECT_NEAR(f6.median_receive_reduction_ms, 0.0, 1.0);
}

TEST_F(ExperimentsTest, Fig7ReuseRisesWithGroupAndH2LeadsH3) {
  const auto f7 = compute_fig7(study());
  ASSERT_EQ(f7.groups.size(), 4u);
  // Reuse rises with group level.
  EXPECT_GT(f7.groups[3].mean_reused_h2, f7.groups[0].mean_reused_h2 * 1.5);
  // H2 reuses more than H3, the gap widest in High (Fig. 7a/b).
  for (const auto& g : f7.groups) EXPECT_GE(g.mean_reused_diff, 0.0);
  EXPECT_GT(f7.groups[3].mean_reused_diff, f7.groups[0].mean_reused_diff);
}

TEST_F(ExperimentsTest, Fig8ResumptionScalesWithProviders) {
  const auto f8 = compute_fig8(consecutive());
  EXPECT_GT(f8.correlation_providers_vs_resumed, 0.5);
  ASSERT_GE(f8.by_provider_count.size(), 3u);
  // Resumed connections grow with provider count (Fig. 8b) — endpoints
  // compared; single buckets may wobble at this sample size.
  EXPECT_GT(f8.by_provider_count.back().mean_resumed_connections,
            f8.by_provider_count.front().mean_resumed_connections * 1.5);
}

TEST_F(ExperimentsTest, Table3SplitsBySharingDegree) {
  const auto t3 = compute_table3(consecutive());
  EXPECT_GT(t3.vector_dimension, 30u);
  EXPECT_LE(t3.vector_dimension, 58u);
  EXPECT_GT(t3.high.pages, 0u);
  EXPECT_GT(t3.low.pages, 0u);
  // C_H uses more providers and resumes more connections than C_L.
  EXPECT_GT(t3.high.avg_providers, t3.low.avg_providers);
  EXPECT_GT(t3.high.avg_resumed_connections, t3.low.avg_resumed_connections);
}

TEST_F(ExperimentsTest, Fig9SeriesFromExistingStudy) {
  const auto series = compute_fig9_series(study());
  EXPECT_DOUBLE_EQ(series.loss_rate, 0.0);
  EXPECT_EQ(series.points.size(), study().site_count());
}

TEST_F(ExperimentsTest, ReportsRenderNonEmpty) {
  std::ostringstream os;
  print_table1(os, compute_table1());
  print_table2(os, compute_table2(study()));
  print_fig2(os, compute_fig2(study()));
  print_fig3(os, compute_fig3(study()));
  print_fig4(os, compute_fig4(study()));
  print_fig5(os, compute_fig5(study()));
  print_fig6(os, compute_fig6(study()));
  print_fig7(os, compute_fig7(study()));
  print_fig8(os, compute_fig8(consecutive()));
  print_table3(os, compute_table3(consecutive()));
  const std::string out = os.str();
  EXPECT_GT(out.size(), 2000u);
  EXPECT_NE(out.find("Table II"), std::string::npos);
  EXPECT_NE(out.find("Table III"), std::string::npos);
  EXPECT_NE(out.find("Fig. 8"), std::string::npos);
}

TEST(ExperimentsStandalone, Fig9SlopesIncreaseWithLoss) {
  // Reduced-scale version of the Fig. 9 bench; the ordering must hold even
  // at modest sample sizes with multi-probe averaging.
  StudyConfig cfg;
  cfg.max_sites = 60;
  cfg.probes_per_vantage = 2;
  const auto f9 = compute_fig9(cfg, {0.0, 0.01});
  ASSERT_EQ(f9.series.size(), 2u);
  EXPECT_GT(f9.series[1].fit.slope, f9.series[0].fit.slope);
}

}  // namespace
}  // namespace h3cdn::core
