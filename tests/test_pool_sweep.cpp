// Parameterized matrix over the pool's protocol-selection space: browser
// H3 switch x origin capabilities x coalescing, checking the negotiated
// protocol, connection counts, and reuse accounting at every point.
#include <gtest/gtest.h>

#include <map>

#include "http/pool.h"
#include "net/path.h"
#include "sim/simulator.h"

namespace h3cdn::http {
namespace {

struct MatrixParam {
  bool h3_enabled;
  bool origin_h3;
  bool origin_h2;
  bool coalesced;
};

std::ostream& operator<<(std::ostream& os, const MatrixParam& p) {
  return os << "h3btn" << p.h3_enabled << "_oh3" << p.origin_h3 << "_oh2" << p.origin_h2
            << "_co" << p.coalesced;
}

class PoolMatrix : public ::testing::TestWithParam<MatrixParam> {
 protected:
  HttpVersion expected_version() const {
    const auto& p = GetParam();
    if (!p.origin_h2) return HttpVersion::H1_1;
    if (p.h3_enabled && p.origin_h3) return HttpVersion::H3;
    return HttpVersion::H2;
  }
};

TEST_P(PoolMatrix, NegotiatesTheRightProtocolAndCompletes) {
  const auto& p = GetParam();
  sim::Simulator sim;
  net::NetPath path(sim, net::PathConfig{msec(20), 100e6, 0.0, usec(0)}, util::Rng(1));
  std::map<std::string, OriginInfo> origins;
  for (const char* d : {"a.prov.example", "b.prov.example"}) {
    OriginInfo info;
    info.path = &path;
    info.supports_h3 = p.origin_h3;
    info.supports_h2 = p.origin_h2;
    if (p.coalesced) info.coalesce_key = "h2-coalesce:prov";
    origins[d] = info;
  }
  PoolConfig config;
  config.h3_enabled = p.h3_enabled;
  ConnectionPool pool(sim, config, [&](const std::string& d) { return origins.at(d); },
                      nullptr, util::Rng(2));

  std::vector<EntryTimings> out;
  for (const char* d : {"a.prov.example", "b.prov.example"}) {
    for (int i = 0; i < 3; ++i) {
      Request r;
      r.domain = d;
      r.response_bytes = 8'000;
      r.server_think = msec(2);
      pool.fetch(r, [&](const EntryTimings& t) { out.push_back(t); });
    }
  }
  sim.run();
  ASSERT_EQ(out.size(), 6u);
  for (const auto& t : out) EXPECT_EQ(t.version, expected_version());

  // Connection-count algebra for each corner of the matrix.
  const auto& stats = pool.stats();
  if (expected_version() == HttpVersion::H1_1) {
    // 3 concurrent per domain, under the 6-per-origin cap.
    EXPECT_EQ(stats.h1_connections, 6u);
  } else if (expected_version() == HttpVersion::H3) {
    EXPECT_EQ(stats.h3_connections, 2u);  // never coalesces
  } else if (p.coalesced) {
    EXPECT_EQ(stats.h2_connections, 1u);  // one shared connection
  } else {
    EXPECT_EQ(stats.h2_connections, 2u);  // per-domain
  }

  // Reuse accounting: entries minus initiators ride existing connections.
  std::size_t initiators = 0;
  for (const auto& t : out) initiators += t.new_connection_initiator;
  EXPECT_EQ(initiators, static_cast<std::size_t>(stats.connections_created));
  for (const auto& t : out) {
    if (!t.new_connection_initiator) {
      EXPECT_TRUE(t.reused_connection);
      EXPECT_EQ(t.connect, Duration::zero());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SelectionMatrix, PoolMatrix,
    ::testing::Values(MatrixParam{true, true, true, false}, MatrixParam{true, true, true, true},
                      MatrixParam{true, false, true, false}, MatrixParam{true, false, true, true},
                      MatrixParam{false, true, true, false}, MatrixParam{false, true, true, true},
                      MatrixParam{true, false, false, false},
                      MatrixParam{false, false, false, false}),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

}  // namespace
}  // namespace h3cdn::http
