// Unit tests for the request-lifecycle resilience engine's building blocks
// (docs/RESILIENCE.md): RetryPolicy backoff/jitter determinism, the
// LatencyTracker/HedgeTrigger p95 hedge scheduling, and the per-edge
// CircuitBreaker state machine. Integration with the pool is covered by
// test_fallback / test_chaos.
#include "resilience/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace h3cdn::resilience {
namespace {

// --- RetryPolicy -------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.backoff_base = msec(100);
  p.backoff_multiplier = 2.0;
  p.backoff_cap = msec(400);
  p.jitter = 0.0;
  util::Rng rng(1);
  EXPECT_EQ(p.backoff_for(1, rng), msec(100));
  EXPECT_EQ(p.backoff_for(2, rng), msec(200));
  EXPECT_EQ(p.backoff_for(3, rng), msec(400));
  EXPECT_EQ(p.backoff_for(9, rng), msec(400));  // capped, no overflow
  EXPECT_EQ(p.backoff_for(0, rng), msec(100));  // clamps to the first retry
}

TEST(RetryPolicy, JitterIsDeterministicPerSeedAndBounded) {
  RetryPolicy p;
  p.backoff_base = msec(100);
  p.jitter = 0.5;
  util::Rng a(42);
  util::Rng b(42);
  util::Rng other(43);
  bool any_differs = false;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const Duration da = p.backoff_for(attempt, a);
    const Duration db = p.backoff_for(attempt, b);
    EXPECT_EQ(da, db) << "same seed must replay the same schedule";
    // Bounds: deterministic part plus uniform extra in [0, jitter * delay).
    double det = static_cast<double>(p.backoff_base.count());
    for (int i = 1; i < attempt; ++i) det *= p.backoff_multiplier;
    det = std::min(det, static_cast<double>(p.backoff_cap.count()));
    EXPECT_GE(static_cast<double>(da.count()), det);
    EXPECT_LT(static_cast<double>(da.count()), det * (1.0 + p.jitter));
    if (p.backoff_for(attempt, other) != da) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "a different seed should draw different jitter";
}

// --- LatencyTracker / HedgeTrigger -------------------------------------------

TEST(LatencyTracker, NearestRankQuantile) {
  LatencyTracker t(8);
  for (double v : {10.0, 20.0, 30.0, 40.0}) t.observe(v);
  EXPECT_DOUBLE_EQ(t.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(t.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(t.quantile(0.75), 30.0);
  EXPECT_DOUBLE_EQ(t.quantile(1.0), 40.0);
}

TEST(LatencyTracker, RingEvictsOldestObservations) {
  LatencyTracker t(3);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) t.observe(v);
  EXPECT_EQ(t.size(), 3u);
  // 1 and 2 were overwritten; the retained window is {3, 4, 5}.
  EXPECT_DOUBLE_EQ(t.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(t.quantile(1.0), 5.0);
}

TEST(HedgeTrigger, ColdStartThenClampedTailDelay) {
  HedgePolicy hp;
  hp.min_observations = 5;
  hp.quantile = 1.0;  // max of the window, for exact expectations
  hp.min_delay = msec(20);
  hp.max_delay = msec(100);
  HedgeTrigger t(hp);
  for (int i = 0; i < 4; ++i) {
    t.observe(msec(50));
    EXPECT_FALSE(t.delay().has_value()) << "cold start must not hedge";
  }
  t.observe(msec(50));
  ASSERT_TRUE(t.delay().has_value());
  EXPECT_EQ(*t.delay(), msec(50));
  // A tail observation beyond max_delay is clamped down...
  t.observe(msec(500));
  EXPECT_EQ(*t.delay(), msec(100));

  // ...and a window of tiny latencies is clamped up to min_delay.
  HedgeTrigger fast(hp);
  for (int i = 0; i < 5; ++i) fast.observe(msec(1));
  ASSERT_TRUE(fast.delay().has_value());
  EXPECT_EQ(*fast.delay(), msec(20));
}

TEST(HedgeTrigger, DisabledNeverFires) {
  HedgePolicy hp;
  hp.enabled = false;
  hp.min_observations = 1;
  HedgeTrigger t(hp);
  for (int i = 0; i < 10; ++i) t.observe(msec(50));
  EXPECT_FALSE(t.delay().has_value());
}

// --- CircuitBreaker ----------------------------------------------------------

BreakerConfig breaker_config() {
  BreakerConfig c;
  c.window = sec(10);
  c.min_samples = 4;
  c.failure_threshold = 0.5;
  c.open_duration = sec(5);
  c.half_open_probes = 1;
  return c;
}

TEST(CircuitBreaker, OpensAtThresholdOnlyPastMinSamples) {
  CircuitBreaker b(breaker_config());
  const TimePoint t{0};
  b.record(t, false);
  b.record(t, false);
  b.record(t, true);
  // 2/3 failures is past the threshold but below min_samples: stays closed.
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_TRUE(b.allow(t));
  b.record(t, false);  // 3/4 >= 0.5: opens
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_FALSE(b.allow(t));
  EXPECT_EQ(b.transitions().opened, 1u);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccessReopensOnFailure) {
  CircuitBreaker b(breaker_config());
  const TimePoint t0{0};
  for (int i = 0; i < 4; ++i) b.record(t0, false);
  ASSERT_EQ(b.state(), BreakerState::Open);
  EXPECT_FALSE(b.allow(TimePoint{sec(4)}));  // still inside open_duration

  // Past open_duration: exactly half_open_probes trial dials pass.
  const TimePoint t1{sec(5)};
  EXPECT_TRUE(b.allow(t1));
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);
  EXPECT_FALSE(b.allow(t1)) << "only one probe may be in flight";
  b.record(t1, true);  // the probe succeeds: recovered, window forgotten
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_TRUE(b.allow(t1));
  EXPECT_EQ(b.transitions().half_opened, 1u);
  EXPECT_EQ(b.transitions().closed, 1u);

  // Open it again; a failed probe re-opens instead of closing.
  for (int i = 0; i < 4; ++i) b.record(t1, false);
  ASSERT_EQ(b.state(), BreakerState::Open);
  const TimePoint t2 = t1 + sec(5);
  EXPECT_TRUE(b.allow(t2));
  b.record(t2, false);
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.transitions().opened, 3u);
  // The transition chain invariant --check enforces on exported metrics.
  EXPECT_LE(b.transitions().closed, b.transitions().half_opened);
  EXPECT_LE(b.transitions().half_opened, b.transitions().opened);
}

TEST(CircuitBreaker, RollingWindowForgetsOldFailures) {
  CircuitBreaker b(breaker_config());
  for (int i = 0; i < 3; ++i) b.record(TimePoint{0}, false);
  // 11 s later the failures have aged out; fresh successes keep it closed.
  const TimePoint late{sec(11)};
  for (int i = 0; i < 4; ++i) b.record(late, true);
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.transitions().opened, 0u);
}

TEST(CircuitBreaker, DisabledAlwaysAllows) {
  BreakerConfig c = breaker_config();
  c.enabled = false;
  CircuitBreaker b(c);
  for (int i = 0; i < 20; ++i) b.record(TimePoint{0}, false);
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_TRUE(b.allow(TimePoint{0}));
}

TEST(BreakerRegistry, KeysByDomainAndProtocolAndSumsTransitions) {
  BreakerRegistry reg(breaker_config());
  CircuitBreaker& h3 = reg.get("edge.example", "h3");
  CircuitBreaker& h2 = reg.get("edge.example", "h2");
  EXPECT_NE(&h3, &h2);
  EXPECT_EQ(&h3, &reg.get("edge.example", "h3"));  // stable instance

  for (int i = 0; i < 4; ++i) h3.record(TimePoint{0}, false);
  EXPECT_EQ(h3.state(), BreakerState::Open);
  EXPECT_EQ(h2.state(), BreakerState::Closed) << "per-protocol isolation";
  EXPECT_EQ(reg.total_transitions().opened, 1u);
}

TEST(Engine, DisabledByDefaultAndStatsStartZero) {
  Engine engine{Options{}};
  EXPECT_FALSE(engine.enabled());
  EXPECT_EQ(engine.stats.retries, 0u);
  EXPECT_EQ(engine.stats.hedges_launched, 0u);
  EXPECT_FALSE(engine.hedge_trigger().delay().has_value());
}

}  // namespace
}  // namespace h3cdn::resilience
