// Property-style sweeps over loss rate x RTT x stream count: the transport
// invariants that the whole study rests on must hold at every grid point.
#include <gtest/gtest.h>

#include "net/path.h"
#include "sim/simulator.h"
#include "transport/connection.h"

namespace h3cdn::transport {
namespace {

using tls::HandshakeMode;
using tls::TlsVersion;
using tls::TransportKind;

struct GridParam {
  double loss;
  int rtt_ms;
  int streams;
};

std::ostream& operator<<(std::ostream& os, const GridParam& p) {
  return os << "loss" << p.loss << "_rtt" << p.rtt_ms << "_streams" << p.streams;
}

struct RunResult {
  std::vector<double> completions_ms;  // per stream
  std::vector<double> first_bytes_ms;
  ConnectionStats stats;
  double last_ms = 0.0;
};

RunResult run_transfer(TransportKind kind, const GridParam& p, std::uint64_t seed,
                       std::size_t response_bytes = 15'000) {
  sim::Simulator sim;
  net::PathConfig pc;
  pc.rtt = msec(p.rtt_ms);
  pc.bandwidth_bps = 150e6;
  pc.loss_rate = p.loss;
  net::NetPath path(sim, pc, util::Rng(seed));
  auto conn = Connection::create(sim, path, kind, TlsVersion::Tls13, HandshakeMode::Fresh,
                                 util::Rng(seed + 1), {});
  conn->connect([](TimePoint) {});
  RunResult r;
  r.completions_ms.resize(static_cast<std::size_t>(p.streams), -1.0);
  r.first_bytes_ms.resize(static_cast<std::size_t>(p.streams), -1.0);
  for (int s = 0; s < p.streams; ++s) {
    FetchCallbacks cbs;
    const auto idx = static_cast<std::size_t>(s);
    cbs.on_first_byte = [&r, idx](TimePoint t) { r.first_bytes_ms[idx] = to_ms(t); };
    cbs.on_complete = [&r, idx](TimePoint t) { r.completions_ms[idx] = to_ms(t); };
    conn->fetch(500, response_bytes, msec(2), std::move(cbs));
  }
  sim.run();
  r.stats = conn->stats();
  for (double c : r.completions_ms) r.last_ms = std::max(r.last_ms, c);
  return r;
}

class TransferGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(TransferGrid, EveryStreamCompletesOnBothTransports) {
  for (auto kind : {TransportKind::Tcp, TransportKind::Quic}) {
    const auto r = run_transfer(kind, GetParam(), 11);
    for (double c : r.completions_ms) EXPECT_GE(c, 0.0) << tls::to_string(kind);
  }
}

TEST_P(TransferGrid, FirstByteNeverAfterCompletion) {
  for (auto kind : {TransportKind::Tcp, TransportKind::Quic}) {
    const auto r = run_transfer(kind, GetParam(), 13);
    for (std::size_t i = 0; i < r.completions_ms.size(); ++i) {
      EXPECT_GE(r.first_bytes_ms[i], 0.0);
      EXPECT_LE(r.first_bytes_ms[i], r.completions_ms[i]);
    }
  }
}

TEST_P(TransferGrid, LossyRunsRetransmitLosslessRunsDoNot) {
  for (auto kind : {TransportKind::Tcp, TransportKind::Quic}) {
    const auto r = run_transfer(kind, GetParam(), 17);
    if (GetParam().loss == 0.0) {
      EXPECT_EQ(r.stats.retransmissions, 0u);
    } else {
      // Retransmissions must cover every declared loss.
      EXPECT_GE(r.stats.retransmissions, r.stats.packets_declared_lost > 0 ? 1u : 0u);
    }
  }
}

TEST_P(TransferGrid, DeterministicGivenSeed) {
  const auto a = run_transfer(TransportKind::Quic, GetParam(), 23);
  const auto b = run_transfer(TransportKind::Quic, GetParam(), 23);
  EXPECT_EQ(a.completions_ms, b.completions_ms);
}

INSTANTIATE_TEST_SUITE_P(
    LossRttStreams, TransferGrid,
    ::testing::Values(GridParam{0.0, 10, 1}, GridParam{0.0, 10, 16}, GridParam{0.0, 60, 16},
                      GridParam{0.01, 10, 1}, GridParam{0.01, 20, 16}, GridParam{0.01, 60, 8},
                      GridParam{0.03, 20, 16}, GridParam{0.05, 30, 8}, GridParam{0.02, 20, 32}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return "loss" + std::to_string(static_cast<int>(info.param.loss * 1000)) + "_rtt" +
             std::to_string(info.param.rtt_ms) + "_s" + std::to_string(info.param.streams);
    });

// ---------------------------------------------------------------------------
// Head-of-line blocking: the defining behavioural difference (paper §II-A).
// ---------------------------------------------------------------------------

double mean(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

TEST(HeadOfLine, QuicStreamLatencyBeatsTcpUnderLoss) {
  // Averaged across seeds, per-stream completion latency on a lossy link is
  // lower over QUIC because a lost packet only stalls its own stream.
  double tcp_total = 0, quic_total = 0;
  const GridParam p{0.02, 20, 24};
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    tcp_total += mean(run_transfer(TransportKind::Tcp, p, seed).completions_ms);
    quic_total += mean(run_transfer(TransportKind::Quic, p, seed).completions_ms);
  }
  EXPECT_LT(quic_total, tcp_total);
}

TEST(HeadOfLine, NoLossNoBlockingDifferenceBeyondHandshake) {
  // Without loss, the only systematic H3 edge is the one-RTT-cheaper
  // handshake; per-stream latency past readiness is comparable.
  const GridParam p{0.0, 20, 24};
  const auto tcp = run_transfer(TransportKind::Tcp, p, 5);
  const auto quic = run_transfer(TransportKind::Quic, p, 5);
  const double handshake_gap_ms = 20.0;  // 1 RTT
  EXPECT_NEAR(mean(tcp.completions_ms) - mean(quic.completions_ms), handshake_gap_ms, 15.0);
}

TEST(HeadOfLine, TailLossStallsTcpLongerThanQuic) {
  // TCP's RTO floor is 200ms; QUIC's PTO is rtt-scale. Across seeds the
  // worst-case (tail) stream completion shows that asymmetry.
  const GridParam p{0.03, 20, 16};
  double tcp_tail = 0, quic_tail = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    tcp_tail += run_transfer(TransportKind::Tcp, p, seed).last_ms;
    quic_tail += run_transfer(TransportKind::Quic, p, seed).last_ms;
  }
  EXPECT_LT(quic_tail, tcp_tail);
}

TEST(HeadOfLine, LossPenaltyGrowsWithLossRate) {
  // The paper's Fig. 9 premise at connection scale: H2's disadvantage over
  // a multiplexed transfer grows as the loss rate rises.
  auto gap = [](double loss) {
    double tcp = 0, quic = 0;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      const GridParam p{loss, 20, 24};
      tcp += mean(run_transfer(TransportKind::Tcp, p, seed).completions_ms);
      quic += mean(run_transfer(TransportKind::Quic, p, seed).completions_ms);
    }
    return tcp - quic;
  };
  EXPECT_GT(gap(0.03), gap(0.0));
}

}  // namespace
}  // namespace h3cdn::transport
