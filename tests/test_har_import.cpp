#include "browser/har_import.h"

#include <gtest/gtest.h>

#include "browser/browser.h"
#include "web/workload.h"

namespace h3cdn::browser {
namespace {

PageLoadResult load_sample(bool h3) {
  web::WorkloadConfig cfg;
  cfg.site_count = 3;
  static const web::Workload workload = web::generate_workload(cfg);
  sim::Simulator sim;
  Environment env(sim, workload.universe, VantageConfig{}, util::Rng(11));
  env.warm_page(workload.sites[0].page);
  BrowserConfig config;
  config.h3_enabled = h3;
  Browser browser(sim, env, nullptr, config, util::Rng(3));
  return browser.visit_and_run(workload.sites[0].page);
}

TEST(HarImport, RoundTripPreservesPageMetadata) {
  const auto original = load_sample(true);
  const auto imported = from_har_json(to_har_json(original.har));
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->site, original.har.site);
  EXPECT_EQ(imported->h3_enabled, original.har.h3_enabled);
  EXPECT_EQ(imported->connections_created, original.har.connections_created);
  EXPECT_EQ(imported->resumed_connections, original.har.resumed_connections);
  // onLoad is serialized at %.15g, far finer than this tolerance.
  EXPECT_NEAR(to_ms(imported->page_load_time), to_ms(original.har.page_load_time), 0.5);
}

TEST(HarImport, RoundTripPreservesEntries) {
  const auto original = load_sample(true);
  const auto imported = from_har_json(to_har_json(original.har));
  ASSERT_TRUE(imported.has_value());
  ASSERT_EQ(imported->entries.size(), original.har.entries.size());
  for (std::size_t i = 0; i < imported->entries.size(); ++i) {
    const auto& in = original.har.entries[i];
    const auto& out = imported->entries[i];
    EXPECT_EQ(out.resource_id, in.resource_id);
    EXPECT_EQ(out.domain, in.domain);
    EXPECT_EQ(out.type, in.type);
    EXPECT_EQ(out.response_bytes, in.response_bytes);
    EXPECT_EQ(out.timings.version, in.timings.version);
    EXPECT_EQ(out.timings.handshake_mode, in.timings.handshake_mode);
    EXPECT_EQ(out.is_reused_connection(), in.is_reused_connection());
    EXPECT_NEAR(to_ms(out.timings.connect), to_ms(in.timings.connect), 0.01);
    EXPECT_NEAR(to_ms(out.timings.wait), to_ms(in.timings.wait), 0.01);
    EXPECT_NEAR(to_ms(out.timings.receive), to_ms(in.timings.receive), 0.01);
    EXPECT_EQ(out.response_headers, in.response_headers);
  }
}

TEST(HarImport, ReusedConnectionCountSurvivesRoundTrip) {
  const auto original = load_sample(false);
  const auto imported = from_har_json(to_har_json(original.har));
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->reused_connection_count(), original.har.reused_connection_count());
  EXPECT_EQ(imported->count_version(http::HttpVersion::H2),
            original.har.count_version(http::HttpVersion::H2));
}

TEST(HarImport, InitiatorEdgesRoundTripAndFormRealDag) {
  const auto original = load_sample(true);
  const auto imported = from_har_json(to_har_json(original.har));
  ASSERT_TRUE(imported.has_value());
  ASSERT_EQ(imported->entries.size(), original.har.entries.size());
  bool any_edge = false;
  for (std::size_t i = 0; i < imported->entries.size(); ++i) {
    EXPECT_EQ(imported->entries[i].initiator_id, original.har.entries[i].initiator_id);
    if (imported->entries[i].initiator_id >= 0) any_edge = true;
  }
  // A real page has at least the HTML-initiated wave-0 resources.
  EXPECT_TRUE(any_edge);
  // Every non-root initiator must reference an entry that exists.
  for (const auto& e : imported->entries) {
    if (e.initiator_id < 0) continue;
    const bool found = std::any_of(
        imported->entries.begin(), imported->entries.end(), [&](const HarEntry& other) {
          return static_cast<std::int64_t>(other.resource_id) == e.initiator_id;
        });
    EXPECT_TRUE(found) << "dangling initiator " << e.initiator_id;
  }
}

TEST(HarImport, ForeignHarWithoutInitiatorFallsBackToRoot) {
  const char* doc = R"({"log":{"pages":[{"id":"x","pageTimings":{"onLoad":10}}],
    "entries":[{"startedDateTime":1,"time":5,
      "request":{"url":"https://h.example/a.png","httpVersion":"h2"},
      "response":{"bodySize":10},"timings":{"wait":4}}]}})";
  const auto page = from_har_json(doc);
  ASSERT_TRUE(page.has_value());
  ASSERT_EQ(page->entries.size(), 1u);
  EXPECT_EQ(page->entries[0].initiator_id, -1);
}

TEST(HarImport, RejectsNonJson) {
  HarImportError error;
  EXPECT_FALSE(from_har_json("definitely not json", &error).has_value());
  EXPECT_NE(error.message.find("parse error"), std::string::npos);
}

TEST(HarImport, RejectsJsonWithoutLog) {
  HarImportError error;
  EXPECT_FALSE(from_har_json(R"({"nope":1})", &error).has_value());
  EXPECT_NE(error.message.find("log"), std::string::npos);
}

TEST(HarImport, RejectsLogWithoutPages) {
  HarImportError error;
  EXPECT_FALSE(from_har_json(R"({"log":{"entries":[]}})", &error).has_value());
  EXPECT_NE(error.message.find("pages"), std::string::npos);
}

TEST(HarImport, ToleratesMinimalForeignHar) {
  // A HAR-like document from another tool, missing our _extensions.
  const char* doc = R"({"log":{"pages":[{"id":"x","pageTimings":{"onLoad":123.5}}],
    "entries":[{"startedDateTime":1,"time":10,
      "request":{"url":"https://h.example/a.png","httpVersion":"h2"},
      "response":{"bodySize":2048},
      "timings":{"connect":3,"wait":4,"receive":2}}]}})";
  const auto page = from_har_json(doc);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(page->site, "x");
  EXPECT_NEAR(to_ms(page->page_load_time), 123.5, 1e-6);
  ASSERT_EQ(page->entries.size(), 1u);
  EXPECT_EQ(page->entries[0].domain, "h.example");
  EXPECT_EQ(page->entries[0].response_bytes, 2048u);
}

}  // namespace
}  // namespace h3cdn::browser
