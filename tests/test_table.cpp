#include "util/table.h"

#include <gtest/gtest.h>

namespace h3cdn::util {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(AsciiTable, ColumnsAligned) {
  AsciiTable t({"a", "b"});
  t.add_row({"xxxxxx", "1"});
  t.add_row({"y", "2"});
  const std::string out = t.to_string();
  // Column b starts at the same offset on each data line.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto nl = out.find('\n', pos);
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].find('1'), lines[3].find('2'));
}

TEST(AsciiTable, ShortRowsPadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_FATAL_FAILURE(t.to_string());
}

TEST(AsciiTable, IndentPrefixesEveryLine) {
  AsciiTable t({"h"});
  t.add_row({"v"});
  const std::string out = t.to_string(4);
  EXPECT_EQ(out.rfind("    h", 0), 0u);
  EXPECT_NE(out.find("\n    "), std::string::npos);
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_pct(0.256), "25.6%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace h3cdn::util
