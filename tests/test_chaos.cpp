// Chaos harness tests (docs/RESILIENCE.md): the shipped scenario suite holds
// every run invariant, the shard merge is byte-identical at any job count,
// and the midtransfer-kill scenario demonstrates Range resumption — pages
// that fail outright without the resilience engine complete with it.
#include "load/chaos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace h3cdn::core {
namespace {

ChaosConfig small_config() {
  ChaosConfig cfg;
  cfg.sites = 2;
  return cfg;
}

const ChaosCellRow* row_of(const ChaosResult& result, const std::string& name) {
  for (const auto& row : result.rows) {
    if (row.scenario == name) return &row;
  }
  return nullptr;
}

std::string violations_of(const ChaosResult& result) {
  std::string out;
  for (const auto& row : result.rows) {
    for (const auto& v : row.violations) out += row.scenario + ": " + v + "\n";
  }
  return out;
}

TEST(Chaos, DefaultSuiteHoldsEveryInvariant) {
  const ChaosResult result = run_chaos(small_config());
  ASSERT_EQ(result.rows.size(), default_chaos_scenarios().size());
  EXPECT_TRUE(result.all_passed()) << violations_of(result);

  // Scenario signatures actually fired (an inert schedule would be caught by
  // the harness itself, but pin the headline ones here too).
  const ChaosCellRow* kill = row_of(result, "midtransfer-kill");
  ASSERT_NE(kill, nullptr);
  EXPECT_GT(kill->resumed_bytes, 0u) << "Range resumption never saved a byte";
  EXPECT_GT(kill->connection_deaths, 0u);

  const ChaosCellRow* storm = row_of(result, "refusal-storm");
  ASSERT_NE(storm, nullptr);
  EXPECT_GT(storm->connections_refused, 0u);
  EXPECT_EQ(storm->h3_broken_marks, 0u) << "a refusal must never mark H3 broken";

  const ChaosCellRow* failover = row_of(result, "dns-failover");
  ASSERT_NE(failover, nullptr);
  EXPECT_GT(failover->failover_switches, 0u);
  EXPECT_EQ(failover->failed_visits, 0u) << "record-1 should carry every page";
}

TEST(Chaos, ShardMergeIsByteIdenticalAcrossJobs) {
  // Three cells is enough for jobs=1 vs jobs=3 to schedule differently.
  ChaosConfig cfg = small_config();
  std::vector<ChaosScenario> keep;
  for (const auto& sc : cfg.scenarios) {
    if (sc.name == "baseline" || sc.name == "midtransfer-kill" || sc.name == "dns-failover") {
      keep.push_back(sc);
    }
  }
  ASSERT_EQ(keep.size(), 3u);
  cfg.scenarios = keep;

  cfg.jobs = 1;
  const ChaosResult serial = run_chaos(cfg);
  cfg.jobs = 3;
  const ChaosResult parallel = run_chaos(cfg);
  EXPECT_TRUE(serial.all_passed()) << violations_of(serial);
  EXPECT_EQ(chaos_result_to_csv(serial), chaos_result_to_csv(parallel));
}

TEST(Chaos, MidTransferKillNeedsTheEngineToCompletePages) {
  ChaosConfig cfg = small_config();
  std::vector<ChaosScenario> keep;
  for (const auto& sc : cfg.scenarios) {
    if (sc.name == "midtransfer-kill") keep.push_back(sc);
  }
  ASSERT_EQ(keep.size(), 1u);
  cfg.scenarios = keep;

  const ChaosResult with_engine = run_chaos(cfg);
  cfg.resilience.enabled = false;
  const ChaosResult without = run_chaos(cfg);
  // The universal invariants (typed termination, conservation, phase sums)
  // hold either way; the resumption expectation is gated on the engine.
  EXPECT_TRUE(with_engine.all_passed()) << violations_of(with_engine);
  EXPECT_TRUE(without.all_passed()) << violations_of(without);

  const ChaosCellRow* on = row_of(with_engine, "midtransfer-kill");
  const ChaosCellRow* off = row_of(without, "midtransfer-kill");
  ASSERT_NE(on, nullptr);
  ASSERT_NE(off, nullptr);
  EXPECT_GT(on->resumed_bytes, 0u);
  EXPECT_EQ(off->resumed_bytes, 0u) << "legacy rescue must not send Range requests";
  EXPECT_LT(on->failed_visits, off->failed_visits)
      << "resumption should complete pages the legacy rescue loses";
}

TEST(Chaos, EveryCellYieldsAFiniteMttrConsistentWithItsScriptedWindow) {
  // The fault->recovery annotation contract (docs/OBSERVABILITY.md): MTTR is
  // finite for every scenario, ties out against the scripted fault window,
  // and detection implies degradation (and vice versa).
  const ChaosConfig cfg = small_config();
  const ChaosResult result = run_chaos(cfg);
  EXPECT_TRUE(result.all_passed()) << violations_of(result);
  for (const auto& row : result.rows) {
    SCOPED_TRACE(row.scenario);
    ASSERT_TRUE(std::isfinite(row.mttr_ms));
    EXPECT_GE(row.mttr_ms, 0.0);
    EXPECT_EQ(row.degraded_windows > 0, row.detection_ms >= 0.0);
    EXPECT_EQ(row.degraded_windows > 0, row.recovery_ms >= 0.0);
    if (row.degraded_windows == 0) {
      EXPECT_DOUBLE_EQ(row.mttr_ms, 0.0);  // nothing degraded: instant recovery
      continue;
    }
    EXPECT_GE(row.recovery_ms, row.detection_ms);
    const ChaosScenario* scenario = nullptr;
    for (const auto& sc : cfg.scenarios) {
      if (sc.name == row.scenario) scenario = &sc;
    }
    ASSERT_NE(scenario, nullptr);
    const obs::FaultWindowSpec spec = scripted_fault_window(*scenario);
    const double fault_start = spec.faulted ? spec.start_ms : 0.0;
    EXPECT_DOUBLE_EQ(row.mttr_ms, std::max(0.0, row.recovery_ms - fault_start));
    if (scenario->expect_faults) {
      EXPECT_GT(row.degraded_windows, 0u) << "scripted fault left no timeline trace";
    }
  }

  // The scripted windows themselves: a scenario with an explicit schedule —
  // outages, a kill offset, a capacity storm — carries a positive interval;
  // cells whose only stressor is a link profile (cellular-burst) or nothing
  // at all (baseline) are unfaulted specs measured from t=0.
  for (const auto& sc : cfg.scenarios) {
    const obs::FaultWindowSpec spec = scripted_fault_window(sc);
    SCOPED_TRACE(sc.name);
    const bool scripted = !sc.access_fault.outages.empty() ||
                          !sc.primary_path_fault.outages.empty() ||
                          sc.kill_response_at_bytes > 0 || sc.capacity_storm ||
                          sc.kill_midtier_at.count() > 0;
    EXPECT_EQ(spec.faulted, scripted);
    if (scripted) {
      EXPECT_GE(spec.start_ms, 0.0);
      EXPECT_GT(spec.end_ms, spec.start_ms);
    }
  }
}

TEST(Chaos, CsvCarriesOneRowPerScenarioWithStableHeader) {
  ChaosConfig cfg = small_config();
  cfg.scenarios = {cfg.scenarios.front()};  // baseline only
  const ChaosResult result = run_chaos(cfg);
  const std::string csv = chaos_result_to_csv(result);
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 2) << csv;  // header + one scenario row
  EXPECT_EQ(csv.rfind("scenario,proto,arrivals,visits,failed_visits,", 0), 0u) << csv;
}

}  // namespace
}  // namespace h3cdn::core
