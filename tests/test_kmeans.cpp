#include "analysis/kmeans.h"

#include <gtest/gtest.h>

#include "analysis/grouping.h"

namespace h3cdn::analysis {
namespace {

TEST(KMeans, SeparatesTwoObviousClusters) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 20; ++i) points.push_back({0.0 + i * 0.01, 0.0});
  for (int i = 0; i < 20; ++i) points.push_back({10.0 + i * 0.01, 10.0});
  const auto r = kmeans(points, {.k = 2}, util::Rng(1));
  EXPECT_TRUE(r.converged);
  // All of the first 20 in one cluster, all of the last 20 in the other.
  for (int i = 1; i < 20; ++i) EXPECT_EQ(r.assignment[i], r.assignment[0]);
  for (int i = 21; i < 40; ++i) EXPECT_EQ(r.assignment[i], r.assignment[20]);
  EXPECT_NE(r.assignment[0], r.assignment[20]);
}

TEST(KMeans, CentroidsAreClusterMeans) {
  std::vector<std::vector<double>> points{{0, 0}, {2, 0}, {10, 10}, {12, 10}};
  const auto r = kmeans(points, {.k = 2}, util::Rng(2));
  for (const auto& c : r.centroids) {
    const bool low = std::abs(c[0] - 1.0) < 1e-9 && std::abs(c[1]) < 1e-9;
    const bool high = std::abs(c[0] - 11.0) < 1e-9 && std::abs(c[1] - 10.0) < 1e-9;
    EXPECT_TRUE(low || high);
  }
}

TEST(KMeans, KEqualsNAssignsOnePointPerCluster) {
  std::vector<std::vector<double>> points{{0, 0}, {5, 5}, {9, 1}};
  const auto r = kmeans(points, {.k = 3}, util::Rng(3));
  std::set<std::size_t> clusters(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(clusters.size(), 3u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeans, HandlesDuplicatePoints) {
  std::vector<std::vector<double>> points(10, std::vector<double>{1.0, 1.0});
  const auto r = kmeans(points, {.k = 2}, util::Rng(4));
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeans, BinaryVectorsClusterBySharingDegree) {
  // Miniature Table III: dense rows vs sparse rows over 8 "domains".
  std::vector<std::vector<double>> points;
  util::Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    std::vector<double> v(8, 0.0);
    const int ones = i < 15 ? 6 : 2;  // high vs low sharing
    for (auto idx : rng.sample_indices(8, static_cast<std::size_t>(ones))) v[idx] = 1.0;
    points.push_back(std::move(v));
  }
  const auto r = kmeans(points, {.k = 2}, util::Rng(6));
  // Mean ones per cluster should separate.
  double sums[2] = {0, 0};
  int counts[2] = {0, 0};
  for (std::size_t i = 0; i < points.size(); ++i) {
    double ones = 0;
    for (double x : points[i]) ones += x;
    sums[r.assignment[i]] += ones;
    ++counts[r.assignment[i]];
  }
  ASSERT_GT(counts[0], 0);
  ASSERT_GT(counts[1], 0);
  const double mean0 = sums[0] / counts[0];
  const double mean1 = sums[1] / counts[1];
  EXPECT_GT(std::abs(mean0 - mean1), 2.0);
}

TEST(KMeans, DeterministicGivenSeed) {
  std::vector<std::vector<double>> points;
  util::Rng rng(7);
  for (int i = 0; i < 50; ++i) points.push_back({rng.uniform(), rng.uniform()});
  const auto a = kmeans(points, {.k = 3}, util::Rng(8));
  const auto b = kmeans(points, {.k = 3}, util::Rng(8));
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, SquaredDistance) {
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(squared_distance({1, 1}, {1, 1}), 0.0);
}

// ---------------------------------------------------------------------------

TEST(Grouping, QuartilesHaveEqualSizes) {
  std::vector<double> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(static_cast<double>(i % 37));
  const auto groups = quartile_groups(keys);
  int counts[4] = {0, 0, 0, 0};
  for (auto g : groups) ++counts[static_cast<int>(g)];
  for (int c : counts) EXPECT_EQ(c, 25);
}

TEST(Grouping, QuartilesOrderedByKey) {
  std::vector<double> keys{5, 1, 9, 3, 7, 2, 8, 4};
  const auto groups = quartile_groups(keys);
  // Smallest two keys (1,2) in Low; largest two (8,9) in High.
  EXPECT_EQ(groups[1], QuartileGroup::Low);
  EXPECT_EQ(groups[5], QuartileGroup::Low);
  EXPECT_EQ(groups[2], QuartileGroup::High);
  EXPECT_EQ(groups[6], QuartileGroup::High);
}

TEST(Grouping, UnevenSizesStayBalanced) {
  std::vector<double> keys{1, 2, 3, 4, 5, 6, 7};
  const auto groups = quartile_groups(keys);
  int counts[4] = {0, 0, 0, 0};
  for (auto g : groups) ++counts[static_cast<int>(g)];
  for (int c : counts) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 2);
  }
}

TEST(Grouping, EmptyInput) {
  EXPECT_TRUE(quartile_groups({}).empty());
}

TEST(Grouping, FixedWidthBins) {
  const auto bins = fixed_width_bins({-3.0, 0.0, 4.9, 5.0, 12.0}, 5.0);
  EXPECT_EQ(bins, (std::vector<int>{-1, 0, 0, 1, 2}));
}

TEST(Grouping, GroupNames) {
  EXPECT_STREQ(to_string(QuartileGroup::Low), "Low");
  EXPECT_STREQ(to_string(QuartileGroup::High), "High");
}

}  // namespace
}  // namespace h3cdn::analysis
