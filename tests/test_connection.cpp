#include "transport/connection.h"

#include <gtest/gtest.h>

#include "net/path.h"
#include "sim/simulator.h"

namespace h3cdn::transport {
namespace {

using tls::HandshakeMode;
using tls::TlsVersion;
using tls::TransportKind;

struct Fixture {
  sim::Simulator sim;
  net::NetPath path;
  explicit Fixture(Duration rtt = msec(20), double loss = 0.0, double bw = 100e6)
      : path(sim, net::PathConfig{rtt, bw, loss, usec(0)}, util::Rng(42)) {}

  std::shared_ptr<Connection> make(TransportKind kind,
                                   TlsVersion version = TlsVersion::Tls13,
                                   HandshakeMode mode = HandshakeMode::Fresh,
                                   TransportConfig config = {}) {
    config.domain = "test.example";
    return Connection::create(sim, path, kind, version, mode, util::Rng(7), config);
  }
};

TEST(Connection, TcpTls13HandshakeTakesTwoRtts) {
  Fixture f;
  auto conn = f.make(TransportKind::Tcp);
  TimePoint ready{-1};
  conn->connect([&](TimePoint t) { ready = t; });
  f.sim.run();
  // 2 RTT = 40ms plus serialization and compute; well under 3 RTT.
  EXPECT_GE(ready, msec(40));
  EXPECT_LT(ready, msec(60));
  EXPECT_EQ(conn->stats().connect_time, ready);
}

TEST(Connection, TcpTls12HandshakeTakesThreeRtts) {
  Fixture f;
  auto conn = f.make(TransportKind::Tcp, TlsVersion::Tls12);
  TimePoint ready{-1};
  conn->connect([&](TimePoint t) { ready = t; });
  f.sim.run();
  EXPECT_GE(ready, msec(60));
  EXPECT_LT(ready, msec(80));
}

TEST(Connection, QuicHandshakeTakesOneRtt) {
  Fixture f;
  auto conn = f.make(TransportKind::Quic);
  TimePoint ready{-1};
  conn->connect([&](TimePoint t) { ready = t; });
  f.sim.run();
  EXPECT_GE(ready, msec(20));
  EXPECT_LT(ready, msec(40));
}

TEST(Connection, QuicZeroRttReadyImmediately) {
  Fixture f;
  auto conn = f.make(TransportKind::Quic, TlsVersion::Tls13, HandshakeMode::ZeroRtt);
  TimePoint ready{-1};
  conn->connect([&](TimePoint t) { ready = t; });
  f.sim.run_until(msec(1));
  EXPECT_GE(ready, TimePoint{0});
  EXPECT_LT(ready, msec(1));
  EXPECT_LT(conn->stats().connect_time, msec(1));
}

TEST(Connection, HandshakeOrderingAcrossProtocols) {
  // The paper's headline: connect(H3) < connect(H2/TLS1.3) < connect(H2/TLS1.2).
  auto connect_time = [](TransportKind kind, TlsVersion version) {
    Fixture f;
    auto conn = f.make(kind, version);
    conn->connect([](TimePoint) {});
    f.sim.run();
    return conn->stats().connect_time;
  };
  const auto h3 = connect_time(TransportKind::Quic, TlsVersion::Tls13);
  const auto h2_13 = connect_time(TransportKind::Tcp, TlsVersion::Tls13);
  const auto h2_12 = connect_time(TransportKind::Tcp, TlsVersion::Tls12);
  EXPECT_LT(h3, h2_13);
  EXPECT_LT(h2_13, h2_12);
}

TEST(Connection, QuicForcesTls13) {
  Fixture f;
  auto conn = f.make(TransportKind::Quic, TlsVersion::Tls12);
  EXPECT_EQ(conn->tls_version(), TlsVersion::Tls13);
}

TEST(Connection, FetchDeliversExactCallbackSequence) {
  Fixture f;
  auto conn = f.make(TransportKind::Tcp);
  conn->connect([](TimePoint) {});
  TimePoint sent{-1}, first{-1}, done{-1};
  FetchCallbacks cbs;
  cbs.on_request_sent = [&](TimePoint t) { sent = t; };
  cbs.on_first_byte = [&](TimePoint t) { first = t; };
  cbs.on_complete = [&](TimePoint t) { done = t; };
  conn->fetch(500, 50'000, msec(5), std::move(cbs));
  f.sim.run();
  ASSERT_GE(sent, TimePoint{0});
  EXPECT_GT(first, sent);
  EXPECT_GT(done, first);
  EXPECT_EQ(conn->active_streams(), 0u);
}

TEST(Connection, FetchBeforeReadyIsQueued) {
  Fixture f;
  auto conn = f.make(TransportKind::Tcp);
  bool done = false;
  conn->connect([](TimePoint) {});
  FetchCallbacks cbs;
  cbs.on_complete = [&](TimePoint) { done = true; };
  conn->fetch(500, 1000, msec(1), std::move(cbs));  // before handshake finished
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(Connection, ManyConcurrentStreamsAllComplete) {
  Fixture f;
  auto conn = f.make(TransportKind::Quic);
  conn->connect([](TimePoint) {});
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    FetchCallbacks cbs;
    cbs.on_complete = [&](TimePoint) { ++done; };
    conn->fetch(400, 8'000 + static_cast<std::size_t>(i) * 100, msec(2), std::move(cbs));
  }
  f.sim.run();
  EXPECT_EQ(done, 64);
  EXPECT_EQ(conn->stats().streams_opened, 64u);
}

TEST(Connection, ServerThinkTimeDelaysFirstByte) {
  auto first_byte_at = [](Duration think) {
    Fixture f;
    auto conn = f.make(TransportKind::Quic);
    conn->connect([](TimePoint) {});
    TimePoint first{-1};
    FetchCallbacks cbs;
    cbs.on_first_byte = [&](TimePoint t) { first = t; };
    cbs.on_complete = [](TimePoint) {};
    conn->fetch(500, 1000, think, std::move(cbs));
    f.sim.run();
    return first;
  };
  const auto fast = first_byte_at(msec(0));
  const auto slow = first_byte_at(msec(50));
  // Sub-packet-time deviation allowed: with zero think time the response
  // competes with request-ACK serialization on the downlink.
  EXPECT_NEAR(static_cast<double>((slow - fast).count()), msec(50).count(), usec(20).count());
}

TEST(Connection, LargeTransferIntegrityAndThroughput) {
  Fixture f(msec(10), 0.0, 80e6);
  auto conn = f.make(TransportKind::Tcp);
  conn->connect([](TimePoint) {});
  TimePoint done{-1};
  FetchCallbacks cbs;
  cbs.on_complete = [&](TimePoint t) { done = t; };
  conn->fetch(500, 4'000'000, msec(1), std::move(cbs));
  f.sim.run();
  ASSERT_GT(done, TimePoint{0});
  // 4MB at 80Mbps is 400ms of pure serialization; allow for slow start.
  EXPECT_GT(done, msec(400));
  EXPECT_LT(done, msec(1500));
  EXPECT_EQ(conn->stats().packets_declared_lost, 0u);
  EXPECT_EQ(conn->stats().retransmissions, 0u);
}

TEST(Connection, NoLossMeansNoRetransmissions) {
  Fixture f;
  auto conn = f.make(TransportKind::Quic);
  conn->connect([](TimePoint) {});
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    FetchCallbacks cbs;
    cbs.on_complete = [&](TimePoint) { ++done; };
    conn->fetch(500, 30'000, msec(1), std::move(cbs));
  }
  f.sim.run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(conn->stats().retransmissions, 0u);
  EXPECT_EQ(conn->stats().rto_fires, 0u);
}

TEST(Connection, TicketIssuedOnHandshakeCompletion) {
  Fixture f;
  auto conn = f.make(TransportKind::Quic);
  std::optional<tls::SessionTicket> ticket;
  conn->set_ticket_sink([&](tls::SessionTicket t) { ticket = std::move(t); });
  conn->connect([](TimePoint) {});
  f.sim.run();
  ASSERT_TRUE(ticket.has_value());
  EXPECT_EQ(ticket->domain, "test.example");
  EXPECT_EQ(ticket->version, TlsVersion::Tls13);
  EXPECT_TRUE(ticket->early_data_allowed);
}

TEST(Connection, CloseSilencesPendingEvents) {
  Fixture f;
  auto conn = f.make(TransportKind::Tcp);
  bool done = false;
  conn->connect([](TimePoint) {});
  FetchCallbacks cbs;
  cbs.on_complete = [&](TimePoint) { done = true; };
  conn->fetch(500, 100'000, msec(1), std::move(cbs));
  f.sim.run_until(msec(45));  // mid-transfer
  conn->close();
  f.sim.run();
  EXPECT_FALSE(done);
  EXPECT_TRUE(conn->closed());
}

TEST(Connection, CloseIsIdempotent) {
  Fixture f;
  auto conn = f.make(TransportKind::Tcp);
  conn->connect([](TimePoint) {});
  conn->close();
  EXPECT_NO_FATAL_FAILURE(conn->close());
}

TEST(Connection, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Fixture f(msec(25), 0.02);
    auto conn = f.make(TransportKind::Quic);
    conn->connect([](TimePoint) {});
    std::vector<std::int64_t> completions;
    for (int i = 0; i < 12; ++i) {
      FetchCallbacks cbs;
      cbs.on_complete = [&](TimePoint t) { completions.push_back(t.count()); };
      conn->fetch(500, 20'000, msec(3), std::move(cbs));
    }
    f.sim.run();
    return completions;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Connection, HandshakeSurvivesTotalFirstAttemptLoss) {
  Fixture f(msec(20), 0.0);
  // Force the first handshake flight to be lost, then heal the link.
  f.path.set_loss_rate(1.0);
  auto conn = f.make(TransportKind::Quic);
  TimePoint ready{-1};
  conn->connect([&](TimePoint t) { ready = t; });
  f.sim.run_until(msec(50));
  f.path.set_loss_rate(0.0);
  f.sim.run();
  EXPECT_GT(ready, msec(50));
  EXPECT_GE(conn->stats().handshake_retries, 1);
}

TEST(Connection, HandshakeTimeoutDoublesPerRetry) {
  // Fixed 100 ms base timer, total loss: retries must fire at exactly
  // 100, 300 (=100+200) and 700 (=100+200+400) ms.
  Fixture f(msec(20), /*loss=*/1.0);
  TransportConfig config;
  config.handshake_timeout = msec(100);
  auto conn = f.make(TransportKind::Quic, TlsVersion::Tls13, HandshakeMode::Fresh, config);
  conn->connect([](TimePoint) {});
  f.sim.run_until(msec(99));
  EXPECT_EQ(conn->stats().handshake_retries, 0);
  f.sim.run_until(msec(101));
  EXPECT_EQ(conn->stats().handshake_retries, 1);
  f.sim.run_until(msec(299));
  EXPECT_EQ(conn->stats().handshake_retries, 1);
  f.sim.run_until(msec(301));
  EXPECT_EQ(conn->stats().handshake_retries, 2);
  f.sim.run_until(msec(699));
  EXPECT_EQ(conn->stats().handshake_retries, 2);
  f.sim.run_until(msec(701));
  EXPECT_EQ(conn->stats().handshake_retries, 3);
  conn->close();
}

TEST(Connection, HandshakeRetryExhaustionYieldsTypedError) {
  Fixture f(msec(20), /*loss=*/1.0);
  TransportConfig config;
  config.handshake_timeout = msec(100);
  config.max_handshake_retries = 2;
  auto conn = f.make(TransportKind::Tcp, TlsVersion::Tls13, HandshakeMode::Fresh, config);
  TimePoint ready{-1};
  conn->connect([&](TimePoint t) { ready = t; });
  f.sim.run();  // terminates: the death cancels the retry timer
  EXPECT_EQ(ready, TimePoint{-1});
  EXPECT_EQ(conn->error(), ConnectionError::HandshakeTimeout);
  EXPECT_EQ(conn->stats().handshake_retries, 2);
  EXPECT_TRUE(conn->closed());
}

TEST(Connection, HandshakeRetriesDoNotPolluteDataRtt) {
  // A retried handshake must not leave an inflated RTT/RTO behind: the
  // post-recovery transfer on a clean link sees zero RTO fires.
  Fixture f(msec(20), 0.0);
  f.path.set_loss_rate(1.0);
  auto conn = f.make(TransportKind::Quic);
  conn->connect([](TimePoint) {});
  f.sim.run_until(msec(80));
  f.path.set_loss_rate(0.0);
  bool done = false;
  FetchCallbacks cbs;
  cbs.on_complete = [&](TimePoint) { done = true; };
  conn->fetch(500, 200'000, msec(1), std::move(cbs));
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_GE(conn->stats().handshake_retries, 1);
  EXPECT_EQ(conn->stats().rto_fires, 0u);
  EXPECT_EQ(conn->stats().retransmissions, 0u);
}

TEST(ConnectionKill, KillResponseAtBytesDiesOnceWithTypedError) {
  // The chaos harness's scripted mid-transfer cut (docs/RESILIENCE.md): the
  // connection dies with ConnectionError::Killed as soon as its cumulative
  // in-order response delivery crosses the byte offset.
  Fixture f;
  TransportConfig config;
  config.kill_response_at_bytes = 20'000;
  auto conn = f.make(TransportKind::Quic, TlsVersion::Tls13, HandshakeMode::Fresh, config);
  ConnectionError death = ConnectionError::None;
  conn->set_on_dead([&](ConnectionError e, TimePoint) { death = e; });
  bool complete = false;
  FetchCallbacks cbs;
  cbs.on_complete = [&](TimePoint) { complete = true; };
  conn->connect([](TimePoint) {});
  const StreamId sid = conn->fetch(500, 100'000, msec(1), std::move(cbs));
  f.sim.run();

  EXPECT_FALSE(complete);
  EXPECT_TRUE(conn->dead());
  EXPECT_EQ(death, ConnectionError::Killed);
  EXPECT_EQ(conn->error(), ConnectionError::Killed);
  // Stream state survives death: the delivered prefix is readable afterwards
  // (the session uses exactly this to compute an HTTP Range resume offset).
  const std::size_t delivered = conn->stream_bytes_received(sid);
  EXPECT_GE(delivered, 20'000u);
  EXPECT_LT(delivered, 100'000u);

  // And the remainder completes on a fresh connection — the resume path.
  auto resumed = f.make(TransportKind::Quic);
  bool resumed_complete = false;
  FetchCallbacks rcbs;
  rcbs.on_complete = [&](TimePoint) { resumed_complete = true; };
  resumed->connect([](TimePoint) {});
  conn.reset();
  resumed->fetch(500, 100'000 - delivered, msec(1), std::move(rcbs));
  f.sim.run();
  EXPECT_TRUE(resumed_complete);
  resumed->close();
}

TEST(ConnectionKill, ShortResponsesBelowTheOffsetSurvive) {
  Fixture f;
  TransportConfig config;
  config.kill_response_at_bytes = 20'000;
  auto conn = f.make(TransportKind::Quic, TlsVersion::Tls13, HandshakeMode::Fresh, config);
  ConnectionError death = ConnectionError::None;
  conn->set_on_dead([&](ConnectionError e, TimePoint) { death = e; });
  int completions = 0;
  conn->connect([](TimePoint) {});
  FetchCallbacks cbs;
  cbs.on_complete = [&](TimePoint) { ++completions; };
  const StreamId sid = conn->fetch(500, 8'000, msec(1), std::move(cbs));
  f.sim.run();

  EXPECT_EQ(completions, 1);
  EXPECT_FALSE(conn->dead());
  EXPECT_EQ(death, ConnectionError::None);
  EXPECT_EQ(conn->stream_bytes_received(sid), 8'000u);
  EXPECT_EQ(conn->stream_bytes_received(sid + 999), 0u);  // unknown id
  conn->close();
}

TEST(ConnectionDeath, DoubleConnectAborts) {
  Fixture f;
  auto conn = f.make(TransportKind::Tcp);
  conn->connect([](TimePoint) {});
  EXPECT_DEATH(conn->connect([](TimePoint) {}), "precondition");
}

TEST(ConnectionDeath, ZeroSizeFetchAborts) {
  Fixture f;
  auto conn = f.make(TransportKind::Tcp);
  conn->connect([](TimePoint) {});
  EXPECT_DEATH(conn->fetch(0, 100, msec(1), {}), "precondition");
}

}  // namespace
}  // namespace h3cdn::transport
