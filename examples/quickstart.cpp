// Quickstart: load one synthetic Alexa-style landing page with an H2-only
// browser and with an H3-enabled browser, compare the HAR timings, and dump
// the H3 visit as HAR JSON.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <fstream>
#include <iostream>

#include "browser/browser.h"
#include "browser/environment.h"
#include "browser/har.h"
#include "locedge/classifier.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "web/workload.h"

using namespace h3cdn;

namespace {

browser::PageLoadResult load_page(const web::Workload& workload, const web::WebPage& page,
                                  bool h3_enabled) {
  sim::Simulator sim;
  browser::VantageConfig vantage;  // defaults: the "utah" probe
  browser::Environment env(sim, workload.universe, vantage, util::Rng(1234));
  env.warm_page(page);  // serve CDN resources from the edge, like the paper

  browser::BrowserConfig config;
  config.h3_enabled = h3_enabled;
  browser::Browser chrome(sim, env, /*tickets=*/nullptr, config, util::Rng(99));
  return chrome.visit_and_run(page);
}

}  // namespace

int main() {
  // 1) Generate the synthetic study workload (325 sites, calibrated to the
  //    paper's dataset statistics) and pick one page.
  web::Workload workload = web::generate_workload();
  const web::WebPage& page = workload.sites[7].page;

  std::printf("Page %s: %zu requests, %zu CDN resources (%.1f%% CDN), %zu providers\n",
              page.site.c_str(), page.total_requests(), page.cdn_resource_count(),
              100.0 * page.cdn_fraction(), page.cdn_providers().size());

  // 2) Visit with both browser configurations.
  const auto h2 = load_page(workload, page, /*h3_enabled=*/false);
  const auto h3 = load_page(workload, page, /*h3_enabled=*/true);

  std::printf("\n%-34s %12s %12s\n", "metric", "H2 browser", "H3 browser");
  std::printf("%-34s %9.1f ms %9.1f ms\n", "page load time (PLT)",
              to_ms(h2.har.page_load_time), to_ms(h3.har.page_load_time));
  std::printf("%-34s %12llu %12llu\n", "connections created",
              static_cast<unsigned long long>(h2.har.connections_created),
              static_cast<unsigned long long>(h3.har.connections_created));
  std::printf("%-34s %12zu %12zu\n", "reused-connection entries",
              h2.har.reused_connection_count(), h3.har.reused_connection_count());
  std::printf("%-34s %12zu %12zu\n", "entries over h3",
              h2.har.count_version(http::HttpVersion::H3),
              h3.har.count_version(http::HttpVersion::H3));
  std::printf("\nPLT reduction (H2 - H3): %.1f ms\n",
              to_ms(h2.har.page_load_time) - to_ms(h3.har.page_load_time));

  // 3) Classify entries with the LocEdge-substitute, as the analysis does.
  locedge::Classifier classifier;
  std::size_t cdn = 0;
  for (const auto& e : h3.har.entries) {
    if (classifier.classify(e.domain, e.response_headers).is_cdn) ++cdn;
  }
  std::printf("LocEdge classification: %zu/%zu entries identified as CDN\n", cdn,
              h3.har.entries.size());

  // 4) Export the H3 visit as HAR JSON (inspect with tools/h3cdn_har_inspect).
  const std::string har = browser::to_har_json(h3.har);
  std::ofstream file("quickstart_page.har");
  file << har;
  std::printf("\nwrote quickstart_page.har (%zu bytes); first 300 chars:\n%.300s...\n",
              har.size(), har.c_str());
  return 0;
}
