// Stream multiplexing under loss (paper §VI-E / Fig. 9): load one
// resource-heavy page across a sweep of injected netem-style loss rates and
// watch H3's advantage grow — QUIC's independent streams and rtt-scale loss
// recovery sidestep TCP's head-of-line blocking and its 200 ms RTO floor.
//
//   ./build/examples/lossy_network [site_index]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "browser/browser.h"
#include "web/workload.h"

using namespace h3cdn;

namespace {

double load_ms(const web::Workload& workload, std::size_t site, bool h3, double loss,
               std::uint64_t seed) {
  sim::Simulator sim;
  browser::VantageConfig vantage;
  vantage.loss_rate = loss;
  vantage.server_noise_salt = seed * 2 + (h3 ? 1 : 0);
  browser::Environment env(sim, workload.universe, vantage, util::Rng(1000 + seed));
  env.warm_page(workload.sites[site].page);
  browser::BrowserConfig config;
  config.h3_enabled = h3;
  browser::Browser chrome(sim, env, nullptr, config, util::Rng(55));
  return to_ms(chrome.visit_and_run(workload.sites[site].page).har.page_load_time);
}

}  // namespace

int main(int argc, char** argv) {
  web::Workload workload = web::generate_workload();

  // Pick a CDN-heavy page (the congestion-prone case the paper highlights).
  std::size_t site = 0;
  if (argc > 1) {
    site = static_cast<std::size_t>(std::atoi(argv[1]));
  } else {
    std::size_t best = 0;
    for (std::size_t i = 0; i < workload.sites.size(); ++i) {
      const auto count = workload.sites[i].page.cdn_resource_count();
      if (count > best) {
        best = count;
        site = i;
      }
    }
  }
  const auto& page = workload.sites[site].page;
  std::printf("Page %s: %zu requests, %zu CDN resources across %zu providers\n\n",
              page.site.c_str(), page.total_requests(), page.cdn_resource_count(),
              page.cdn_providers().size());

  std::printf("%10s %14s %14s %16s\n", "loss rate", "H2 PLT (ms)", "H3 PLT (ms)",
              "reduction (ms)");
  const int kRepeats = 5;
  for (double loss : {0.0, 0.0025, 0.005, 0.01, 0.02}) {
    double h2 = 0, h3 = 0;
    for (std::uint64_t seed = 1; seed <= kRepeats; ++seed) {
      h2 += load_ms(workload, site, false, loss, seed);
      h3 += load_ms(workload, site, true, loss, seed);
    }
    h2 /= kRepeats;
    h3 /= kRepeats;
    std::printf("%9.2f%% %14.1f %14.1f %16.1f\n", loss * 100, h2, h3, h2 - h3);
  }
  std::printf("\nAs the paper's Fig. 9 shows, the PLT reduction rises with the loss rate:\n"
              "a lost TCP segment blocks every H2 stream behind it, while QUIC streams\n"
              "are logically independent.\n");
  return 0;
}
