// Consecutive browsing (paper §VI-D): visit a sequence of pages with all
// connections terminated and caches cleared between pages, but the TLS
// session-ticket store preserved. Shared CDN providers across pages turn
// into resumed (H3: 0-RTT) connections, and the PLT reduction grows with the
// sharing degree.
//
//   ./build/examples/consecutive_browsing [n_pages]
#include <cstdio>
#include <cstdlib>

#include "browser/browser.h"
#include "tls/ticket_store.h"
#include "web/workload.h"

using namespace h3cdn;

namespace {

struct SequenceResult {
  double total_plt_ms = 0.0;
  std::uint64_t resumed = 0;
  std::uint64_t zero_rtt = 0;
};

SequenceResult browse_sequence(const web::Workload& workload, std::size_t pages, bool h3,
                               bool keep_tickets) {
  sim::Simulator sim;
  browser::VantageConfig vantage;
  browser::Environment env(sim, workload.universe, vantage, util::Rng(2024));
  tls::SessionTicketStore tickets;
  browser::BrowserConfig config;
  config.h3_enabled = h3;
  browser::Browser chrome(sim, env, keep_tickets ? &tickets : nullptr, config, util::Rng(7));

  SequenceResult out;
  for (std::size_t i = 0; i < pages; ++i) {
    const web::WebPage& page = workload.sites[i].page;
    env.warm_page(page);
    const auto r = chrome.visit_and_run(page);
    out.total_plt_ms += to_ms(r.har.page_load_time);
    out.resumed += r.har.resumed_connections;
    out.zero_rtt += r.har.zero_rtt_connections;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t pages = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;
  web::WorkloadConfig cfg;
  cfg.site_count = pages;
  const web::Workload workload = web::generate_workload(cfg);

  std::printf("Browsing %zu pages consecutively (connections closed, caches cleared,\n"
              "session tickets preserved between pages):\n\n", pages);

  const auto h2_cold = browse_sequence(workload, pages, false, false);
  const auto h2_warm = browse_sequence(workload, pages, false, true);
  const auto h3_cold = browse_sequence(workload, pages, true, false);
  const auto h3_warm = browse_sequence(workload, pages, true, true);

  std::printf("%-28s %14s %10s %10s\n", "configuration", "total PLT (ms)", "resumed", "0-RTT");
  std::printf("%-28s %14.1f %10llu %10llu\n", "H2, no tickets", h2_cold.total_plt_ms,
              (unsigned long long)h2_cold.resumed, (unsigned long long)h2_cold.zero_rtt);
  std::printf("%-28s %14.1f %10llu %10llu\n", "H2, tickets kept", h2_warm.total_plt_ms,
              (unsigned long long)h2_warm.resumed, (unsigned long long)h2_warm.zero_rtt);
  std::printf("%-28s %14.1f %10llu %10llu\n", "H3, no tickets", h3_cold.total_plt_ms,
              (unsigned long long)h3_cold.resumed, (unsigned long long)h3_cold.zero_rtt);
  std::printf("%-28s %14.1f %10llu %10llu\n", "H3, tickets kept", h3_warm.total_plt_ms,
              (unsigned long long)h3_warm.resumed, (unsigned long long)h3_warm.zero_rtt);

  std::printf("\nH3 benefit without resumption: %.1f ms over the sequence\n",
              h2_cold.total_plt_ms - h3_cold.total_plt_ms);
  std::printf("H3 benefit with resumption:    %.1f ms over the sequence\n",
              h2_warm.total_plt_ms - h3_warm.total_plt_ms);
  std::printf("\nThe gap widens with tickets: H2 resumption still pays the TCP+TLS round\n"
              "trips, while H3 resumes at 0-RTT — the paper's shared-provider synergy.\n");
  return 0;
}
