// Globally distributed probes — the paper's future-work item 3: "conduct
// measurements from geographically diverse vantage locations". Runs a small
// paired study per vantage (the three US CloudLab sites plus Frankfurt,
// São Paulo and Singapore) and shows how the H3 benefit scales with distance
// from the (US-calibrated) edges and origins: every handshake round trip
// saved is worth more where round trips are longer.
//
//   ./build/examples/global_probes [n_pages]
#include <cstdio>
#include <cstdlib>

#include "core/experiments.h"
#include "util/stats.h"

using namespace h3cdn;

int main(int argc, char** argv) {
  const std::size_t pages = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;

  web::WorkloadConfig wcfg;
  wcfg.site_count = pages;
  auto workload = std::make_shared<web::Workload>(web::generate_workload(wcfg));

  std::printf("Paired H2/H3 study over %zu pages from six vantage points\n\n", pages);
  std::printf("%-12s %10s %14s %14s %16s\n", "vantage", "rtt scale", "mean H2 PLT", "mean H3 PLT",
              "mean reduction");

  for (const auto& vantage : browser::global_vantage_points()) {
    core::StudyConfig cfg;
    cfg.max_sites = pages;
    cfg.vantages = {vantage};
    cfg.probes_per_vantage = 2;
    const auto result = core::MeasurementStudy(cfg).run(workload);

    std::vector<double> h2, h3, red;
    for (const auto& p : result.pairs()) {
      h2.push_back(to_ms(p.h2->page_load_time));
      h3.push_back(to_ms(p.h3->page_load_time));
      red.push_back(to_ms(p.h2->page_load_time) - to_ms(p.h3->page_load_time));
    }
    std::printf("%-12s %10.2f %11.0f ms %11.0f ms %13.1f ms\n", vantage.name.c_str(),
                vantage.rtt_scale, util::mean(h2), util::mean(h3), util::mean(red));
  }

  std::printf("\nThe absolute H3 benefit grows with path length: the same 1-2 saved\n"
              "round trips per connection are worth more from farther away — the\n"
              "reason the paper calls for globally distributed probes (§IX).\n");
  return 0;
}
