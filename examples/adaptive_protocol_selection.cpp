// Adaptive protocol selection — the paper's "Researchers" implication (§VII):
// "developing an adaptive protocol selection tool that adjusts flexibly based
// on different conditions" (in the spirit of the authors' FlexHTTP [43]).
//
// Uses the library's core::AdaptiveProtocolSelector, wired into the browser's
// connection pool via the protocol_hint hook: the selector observes per-entry
// latencies from the HAR and steers each origin to its faster protocol.
// Compares cumulative PLT against always-H2, always-H3, and a clairvoyant
// per-page oracle across heterogeneous network conditions.
//
//   ./build/examples/adaptive_protocol_selection [n_pages]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "browser/browser.h"
#include "core/selector.h"
#include "web/workload.h"

using namespace h3cdn;

namespace {

struct Condition {
  const char* name;
  double loss;
  double rtt_scale;
};

double visit_ms(const web::Workload& workload, std::size_t site, const Condition& cond,
                std::uint64_t seed, bool h3_enabled,
                core::AdaptiveProtocolSelector* selector) {
  sim::Simulator sim;
  browser::VantageConfig vantage;
  vantage.loss_rate = cond.loss;
  vantage.rtt_scale = cond.rtt_scale;
  vantage.server_noise_salt = seed * 2 + (h3_enabled ? 1 : 0);
  browser::Environment env(sim, workload.universe, vantage, util::Rng(31 + seed));
  env.warm_page(workload.sites[site].page);

  browser::BrowserConfig config;
  config.h3_enabled = h3_enabled;
  if (selector != nullptr) {
    config.protocol_hint = [selector](const std::string& domain) {
      return selector->recommend(domain);
    };
  }
  browser::Browser chrome(sim, env, nullptr, config, util::Rng(17));
  const auto result = chrome.visit_and_run(workload.sites[site].page);

  if (selector != nullptr) {
    for (const auto& e : result.har.entries) {
      selector->observe(e.domain, e.timings.version, to_ms(e.timings.total()));
    }
  }
  return to_ms(result.har.page_load_time);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t pages = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;
  web::WorkloadConfig cfg;
  cfg.site_count = pages;
  const web::Workload workload = web::generate_workload(cfg);

  const std::vector<Condition> conditions = {
      {"fast & clean  (rtt x1.0, 0% loss)", 0.0, 1.0},
      {"far & clean   (rtt x2.0, 0% loss)", 0.0, 2.0},
      {"fast & lossy  (rtt x1.0, 1% loss)", 0.01, 1.0},
      {"far & lossy   (rtt x2.0, 1% loss)", 0.01, 2.0},
  };

  std::printf("Adaptive per-origin protocol selection over %zu pages, 4 network conditions\n"
              "(selector: core::AdaptiveProtocolSelector via the pool's protocol_hint hook)\n\n",
              pages);
  std::printf("%-36s %12s %12s %12s %12s\n", "condition", "always-H2", "always-H3", "adaptive",
              "oracle");

  double grand_h2 = 0, grand_h3 = 0, grand_adaptive = 0, grand_oracle = 0;
  for (const auto& cond : conditions) {
    core::SelectorConfig sc;
    sc.min_observations = 2;
    core::AdaptiveProtocolSelector selector(sc, util::Rng(99));
    double sum_h2 = 0, sum_h3 = 0, sum_adaptive = 0, sum_oracle = 0;
    // Two epochs: the selector learns during the first and both count toward
    // totals (an online tool pays for its own exploration).
    for (std::uint64_t epoch = 1; epoch <= 2; ++epoch) {
      for (std::size_t site = 0; site < pages; ++site) {
        const double h2 = visit_ms(workload, site, cond, epoch, false, nullptr);
        const double h3 = visit_ms(workload, site, cond, epoch, true, nullptr);
        sum_h2 += h2;
        sum_h3 += h3;
        sum_oracle += std::min(h2, h3);
        sum_adaptive += visit_ms(workload, site, cond, epoch, true, &selector);
      }
    }
    std::printf("%-36s %10.0fms %10.0fms %10.0fms %10.0fms\n", cond.name, sum_h2, sum_h3,
                sum_adaptive, sum_oracle);
    grand_h2 += sum_h2;
    grand_h3 += sum_h3;
    grand_adaptive += sum_adaptive;
    grand_oracle += sum_oracle;
  }

  std::printf("%-36s %10.0fms %10.0fms %10.0fms %10.0fms\n", "TOTAL", grand_h2, grand_h3,
              grand_adaptive, grand_oracle);
  std::printf("\nadaptive vs always-H2: %+.1f%%   adaptive vs always-H3: %+.1f%%   "
              "(negative = faster)\n",
              100.0 * (grand_adaptive - grand_h2) / grand_h2,
              100.0 * (grand_adaptive - grand_h3) / grand_h3);
  std::printf("With incomplete H3 deployment, per-origin selection approaches the oracle —\n"
              "the hybrid strategy the paper recommends (§VII).\n");
  return 0;
}
