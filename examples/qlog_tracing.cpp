// qlog-style transport tracing: run the same multiplexed transfer over
// TCP(H2-style) and QUIC(H3-style) on a lossy path with tracing attached,
// dump both event logs as qlog JSON, and print a side-by-side recovery
// digest — the packet-level view behind the paper's Fig. 9.
//
//   ./build/examples/qlog_tracing [loss_percent] [out_prefix]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "net/path.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "transport/connection.h"

using namespace h3cdn;

namespace {

struct RunOutcome {
  std::shared_ptr<trace::ConnectionTrace> trace;
  double last_completion_ms = 0.0;
  transport::ConnectionStats stats;
};

RunOutcome run(tls::TransportKind kind, double loss) {
  sim::Simulator sim;
  net::PathConfig pc;
  pc.rtt = msec(25);
  pc.bandwidth_bps = 100e6;
  pc.loss_rate = loss;
  net::NetPath path(sim, pc, util::Rng(42));

  auto conn = transport::Connection::create(sim, path, kind, tls::TlsVersion::Tls13,
                                            tls::HandshakeMode::Fresh, util::Rng(7), {});
  RunOutcome out;
  out.trace = std::make_shared<trace::ConnectionTrace>();
  conn->set_trace(out.trace);
  conn->connect([](TimePoint) {});
  for (int s = 0; s < 20; ++s) {
    transport::FetchCallbacks cbs;
    cbs.on_complete = [&out](TimePoint t) {
      out.last_completion_ms = std::max(out.last_completion_ms, to_ms(t));
    };
    conn->fetch(500, 25'000, msec(3), std::move(cbs));
  }
  sim.run();
  out.stats = conn->stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double loss = (argc > 1 ? std::atof(argv[1]) : 2.0) / 100.0;
  const std::string prefix = argc > 2 ? argv[2] : "qlog";

  std::printf("20 multiplexed 25KB transfers, 25ms RTT, %.1f%% loss\n\n", loss * 100);
  std::printf("%-34s %12s %12s\n", "metric", "TCP (h2)", "QUIC (h3)");

  const auto tcp = run(tls::TransportKind::Tcp, loss);
  const auto quic = run(tls::TransportKind::Quic, loss);

  auto row = [&](const char* name, auto get) {
    std::printf("%-34s %12llu %12llu\n", name,
                static_cast<unsigned long long>(get(tcp)),
                static_cast<unsigned long long>(get(quic)));
  };
  std::printf("%-34s %9.1f ms %9.1f ms\n", "last stream completion",
              tcp.last_completion_ms, quic.last_completion_ms);
  row("packets sent", [](const RunOutcome& r) { return r.stats.packets_sent; });
  row("packets lost", [](const RunOutcome& r) { return r.stats.packets_declared_lost; });
  row("retransmissions", [](const RunOutcome& r) { return r.stats.retransmissions; });
  row("loss-timer (RTO/PTO) fires", [](const RunOutcome& r) { return r.stats.rto_fires; });
  row("cwnd updates traced", [](const RunOutcome& r) {
    return r.trace->count(trace::EventType::CwndUpdated);
  });

  for (const auto& [name, outcome] :
       {std::pair{prefix + "_tcp.qlog.json", &tcp}, std::pair{prefix + "_quic.qlog.json", &quic}}) {
    std::ofstream file(name);
    file << outcome->trace->to_qlog_json(name);
    std::printf("\nwrote %s (%zu events)", name.c_str(), outcome->trace->events().size());
  }
  std::printf("\n\nTCP repairs tail losses on a >=200ms RTO that stalls every stream\n"
              "(head-of-line blocking); QUIC's time-threshold detection and rtt-scale\n"
              "PTO confine the stall to the afflicted stream — the Fig. 9 mechanism.\n");
  return 0;
}
