#include "obs/waterfall.h"

#include <algorithm>
#include <cstdio>

#include "util/json.h"

namespace h3cdn::obs {

namespace {

void write_entry(util::JsonWriter& w, const WaterfallEntry& e) {
  w.begin_object();
  w.kv("url", e.url);
  w.kv("domain", e.domain);
  w.kv("type", e.type);
  w.kv("protocol", e.protocol);
  w.kv("resource_id", e.resource_id);
  w.kv("initiator_index", e.initiator_index);
  w.kv("connection_id", e.connection_id);
  w.kv("attempts", static_cast<std::int64_t>(e.attempts));
  w.kv("from_cache", e.from_cache);
  w.kv("reused_connection", e.reused_connection);
  w.kv("resumed", e.resumed);
  w.kv("failed", e.failed);
  w.kv("start_ms", e.start_ms);
  w.key("phases_ms").begin_object();
  w.kv("dns", e.dns_ms);
  w.kv("blocked", e.blocked_ms);
  w.kv("connect", e.connect_ms);
  w.kv("send", e.send_ms);
  w.kv("wait", e.wait_ms);
  w.kv("receive", e.receive_ms);
  w.end_object();
  if (e.hol_stall_ms > 0.0 || e.retx_wait_ms > 0.0) {
    w.key("stalls_ms").begin_object();
    w.kv("hol_stall", e.hol_stall_ms);
    w.kv("retx_wait", e.retx_wait_ms);
    w.end_object();
  }
  w.kv("total_ms", e.total_ms());
  w.kv("response_bytes", e.response_bytes);
  if (!e.annotation.empty()) w.kv("annotation", e.annotation);
  if (!e.upstream_hops.empty()) {
    w.key("upstream_hops").begin_array();
    for (const auto& h : e.upstream_hops) {
      w.begin_object();
      w.kv("tier", h.tier);
      w.kv("protocol", h.protocol);
      w.kv("cache_hit", h.cache_hit);
      w.kv("reused_connection", h.reused_connection);
      w.kv("resumed", h.resumed);
      w.kv("failed", h.failed);
      w.key("phases_ms").begin_object();
      w.kv("dns", h.dns_ms);
      w.kv("blocked", h.blocked_ms);
      w.kv("connect", h.connect_ms);
      w.kv("send", h.send_ms);
      w.kv("wait", h.wait_ms);
      w.kv("receive", h.receive_ms);
      w.end_object();
      if (h.hol_stall_ms > 0.0 || h.retx_wait_ms > 0.0) {
        w.key("stalls_ms").begin_object();
        w.kv("hol_stall", h.hol_stall_ms);
        w.kv("retx_wait", h.retx_wait_ms);
        w.end_object();
      }
      w.kv("total_ms", h.total_ms());
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

void write_waterfall(util::JsonWriter& w, const Waterfall& wf) {
  w.begin_object();
  w.kv("site", wf.site);
  if (!wf.vantage.empty()) w.kv("vantage", wf.vantage);
  w.kv("h3_enabled", wf.h3_enabled);
  w.kv("page_load_time_ms", wf.page_load_time_ms);
  const QoeMetrics qoe = compute_qoe(wf);
  w.key("qoe").begin_object();
  w.kv("fcp_ms", qoe.fcp_ms);
  w.kv("speed_index_ms", qoe.speed_index_ms);
  w.kv("render_blocking_count", static_cast<std::uint64_t>(qoe.render_blocking_count));
  w.kv("bytes_total", qoe.bytes_total);
  w.end_object();
  w.key("pool").begin_object();
  w.kv("connections_created", wf.connections_created);
  w.kv("connection_deaths", wf.connection_deaths);
  w.kv("h3_fallbacks", wf.h3_fallbacks);
  w.kv("requests_rescued", wf.requests_rescued);
  w.kv("requests_failed", wf.requests_failed);
  w.end_object();
  w.key("entries").begin_array();
  for (const auto& e : wf.entries) write_entry(w, e);
  w.end_array();
  w.end_object();
}

}  // namespace

QoeMetrics compute_qoe(const Waterfall& waterfall) {
  QoeMetrics q;
  if (waterfall.entries.empty()) return q;

  // Root document: the first entry with no initiator.
  std::int64_t root_index = -1;
  for (std::size_t i = 0; i < waterfall.entries.size(); ++i) {
    if (waterfall.entries[i].initiator_index < 0) {
      root_index = static_cast<std::int64_t>(i);
      break;
    }
  }
  if (root_index < 0) root_index = 0;
  const WaterfallEntry& root = waterfall.entries[static_cast<std::size_t>(root_index)];

  // FCP: the root plus every render-blocking subresource it discovered.
  q.fcp_ms = root.end_ms();
  for (const auto& e : waterfall.entries) {
    if (e.failed || e.initiator_index != root_index) continue;
    if (e.type != "css" && e.type != "script") continue;
    ++q.render_blocking_count;
    q.fcp_ms = std::max(q.fcp_ms, e.end_ms());
  }

  // Speed index: byte-weighted mean completion time.
  double weighted = 0.0;
  for (const auto& e : waterfall.entries) {
    if (e.failed || e.response_bytes == 0) continue;
    q.bytes_total += e.response_bytes;
    weighted += static_cast<double>(e.response_bytes) * e.end_ms();
  }
  q.speed_index_ms = q.bytes_total > 0 ? weighted / static_cast<double>(q.bytes_total) : q.fcp_ms;
  return q;
}

std::string waterfall_to_json(const Waterfall& waterfall) {
  util::JsonWriter w;
  write_waterfall(w, waterfall);
  return w.str();
}

std::string waterfalls_to_json(const std::vector<Waterfall>& waterfalls) {
  util::JsonWriter w;
  w.begin_object();
  w.key("waterfalls").begin_array();
  for (const auto& wf : waterfalls) write_waterfall(w, wf);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string waterfall_to_ascii(const Waterfall& waterfall, std::size_t width) {
  width = std::max<std::size_t>(width, 40);
  const std::size_t kLabelWidth = 34;
  const std::size_t bar_width = width - kLabelWidth;

  double span_ms = waterfall.page_load_time_ms;
  for (const auto& e : waterfall.entries) span_ms = std::max(span_ms, e.end_ms());
  if (span_ms <= 0.0) span_ms = 1.0;

  std::string out;
  char line[512];
  std::snprintf(line, sizeof line, "%s  [%s]  page load %.1f ms\n", waterfall.site.c_str(),
                waterfall.h3_enabled ? "h3" : "h2", waterfall.page_load_time_ms);
  out += line;
  std::snprintf(line, sizeof line,
                "phases: D=dns b=blocked C=connect s=send W=wait R=receive "
                ".=zero-width phase  (span %.1f ms)\n",
                span_ms);
  out += line;

  for (const auto& e : waterfall.entries) {
    // Label column: truncated url + protocol.
    std::string label = e.url;
    if (label.size() > kLabelWidth - 6) label = label.substr(0, kLabelWidth - 7) + "~";
    std::snprintf(line, sizeof line, "%-*s %-3s ", static_cast<int>(kLabelWidth - 5),
                  label.c_str(), e.protocol.c_str());
    out += line;

    const auto col = [&](double ms) {
      return static_cast<std::size_t>(ms / span_ms * static_cast<double>(bar_width));
    };
    std::string bar(bar_width, ' ');
    double cursor = e.start_ms;
    const auto paint = [&](double ms, char glyph) {
      const std::size_t begin = col(cursor);
      cursor += ms;
      std::size_t end = col(cursor);
      if (ms > 0.0 && end == begin) end = begin + 1;  // ensure visibility
      if (ms == 0.0) {
        // Zero-duration phase (e.g. connect on 0-RTT resumption): a
        // zero-width marker keeps the column visible instead of silently
        // dropping it, so rows with and without the phase stay comparable.
        if (begin < bar_width && bar[begin] == ' ') bar[begin] = '.';
        return;
      }
      for (std::size_t i = begin; i < end && i < bar_width; ++i) bar[i] = glyph;
    };
    paint(e.dns_ms, 'D');
    paint(e.blocked_ms, 'b');
    paint(e.connect_ms, 'C');
    paint(e.send_ms, 's');
    paint(e.wait_ms, 'W');
    paint(e.receive_ms, 'R');
    out += bar;

    std::snprintf(line, sizeof line, " %8.1f ms", e.total_ms());
    out += line;
    if (e.from_cache) out += " [cache]";
    if (!e.annotation.empty()) {
      out += " *";
      out += e.annotation;
    }
    out += '\n';
  }
  return out;
}

}  // namespace h3cdn::obs
