#include "obs/fault_window.h"

#include <algorithm>

#include "util/json.h"

namespace h3cdn::obs {

const std::vector<std::string>& fault_signal_series() {
  static const std::vector<std::string> kSeries = {
      "http.pool.connection_deaths",
      "http.pool.connections_refused",
      "load.visits_failed",
  };
  return kSeries;
}

FaultAnnotation annotate_fault_recovery(const TimelineRecorder& timeline,
                                        const FaultWindowSpec& spec) {
  FaultAnnotation a;
  a.scenario = spec.scenario;
  a.faulted = spec.faulted;
  a.fault_start_ms = spec.faulted ? spec.start_ms : 0.0;
  a.fault_end_ms = spec.faulted ? spec.end_ms : 0.0;

  const double bucket_ms = to_ms(timeline.bucket_width());
  const std::int64_t span = timeline.span_buckets();

  // A window is degraded when any fault-signal counter incremented in it.
  std::int64_t first_degraded = -1;
  std::int64_t last_degraded = -1;
  for (std::int64_t window = 0; window < span; ++window) {
    bool degraded = false;
    for (const std::string& series : fault_signal_series()) {
      if (timeline.counter_in_range(series, window, window) > 0) {
        degraded = true;
        break;
      }
    }
    if (!degraded) continue;
    ++a.degraded_windows;
    if (first_degraded < 0) first_degraded = window;
    last_degraded = window;
  }

  if (first_degraded >= 0) {
    a.detection_ms = static_cast<double>(first_degraded) * bucket_ms;
    a.recovery_ms = static_cast<double>(last_degraded + 1) * bucket_ms;
    a.mttr_ms = std::max(0.0, a.recovery_ms - a.fault_start_ms);
  } else {
    // The fault never degraded anything (or there was no fault): nothing to
    // repair, so recovery is instantaneous. Keeps MTTR finite for every cell.
    a.mttr_ms = 0.0;
  }

  // Breaker reaction: first window with an `opened` transition after fault
  // start, then the first `closed` transition at/after it.
  const std::int64_t fault_window =
      bucket_ms > 0.0 ? static_cast<std::int64_t>(a.fault_start_ms / bucket_ms) : 0;
  std::int64_t opened_window = -1;
  for (std::int64_t window = fault_window; window < span; ++window) {
    if (timeline.counter_in_range("resilience.breaker.opened", window, window) > 0) {
      opened_window = window;
      break;
    }
  }
  if (opened_window >= 0) {
    a.time_to_breaker_open_ms =
        std::max(0.0, static_cast<double>(opened_window) * bucket_ms - a.fault_start_ms);
    for (std::int64_t window = opened_window; window < span; ++window) {
      if (timeline.counter_in_range("resilience.breaker.closed", window, window) > 0) {
        a.time_to_breaker_close_ms =
            std::max(0.0, static_cast<double>(window) * bucket_ms - a.fault_start_ms);
        break;
      }
    }
  }
  return a;
}

std::string fault_annotations_to_json(const std::vector<FaultAnnotation>& annotations,
                                      double bucket_ms) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("bucket_ms", bucket_ms);
  w.key("annotations").begin_array();
  for (const FaultAnnotation& a : annotations) {
    w.begin_object();
    w.kv("scenario", a.scenario);
    w.kv("faulted", a.faulted);
    w.kv("fault_start_ms", a.fault_start_ms);
    w.kv("fault_end_ms", a.fault_end_ms);
    w.kv("degraded_windows", static_cast<std::uint64_t>(a.degraded_windows));
    w.kv("detection_ms", a.detection_ms);
    w.kv("recovery_ms", a.recovery_ms);
    w.kv("mttr_ms", a.mttr_ms);
    w.kv("time_to_breaker_open_ms", a.time_to_breaker_open_ms);
    w.kv("time_to_breaker_close_ms", a.time_to_breaker_close_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace h3cdn::obs
