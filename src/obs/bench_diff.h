// BENCH record comparison (tools/h3cdn_bench_diff, docs/BENCH.md).
//
// Parses two sets of schema-v1 BENCH_*.json records (the files bench
// binaries drop into $H3CDN_BENCH_OUT) and flags metric movements beyond a
// configurable noise band. CI runs this against the committed trajectory so
// a simulation-output regression fails the build instead of silently
// drifting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace h3cdn::obs {

struct BenchMetric {
  std::string metric;
  double value = 0.0;
  std::string unit;
};

struct BenchRecordInfo {
  std::string bench;  // e.g. "fig6_plt_reduction"
  std::string title;
  std::string git_sha;
  std::string config_hash;  // FNV-1a hex over the bench scale knobs
  std::vector<BenchMetric> metrics;
};

/// Parses one BENCH_*.json document. Returns nullopt (and fills `error`
/// when given) on malformed input or wrong schema_version.
std::optional<BenchRecordInfo> parse_bench_record(const std::string& json,
                                                  std::string* error = nullptr);

struct BenchDiffOptions {
  /// Relative movement tolerated before a metric is flagged, e.g. 0.05 = 5%.
  double noise_frac = 0.05;
  /// Absolute movement tolerated regardless of the relative band (absorbs
  /// jitter on near-zero metrics like failure counts).
  double abs_floor = 1e-9;
  /// Skip host metrics ("*wall*", "*rss_mb", unit "per_sec" throughput,
  /// "*speedup*" ratios): they measure the host machine, not the
  /// simulation, and are never comparable across runs.
  bool skip_wall_metrics = true;
  /// Refuse to compare records whose config hashes differ (different sites/
  /// probes scale => different expected values). Disabled, mismatches are
  /// reported as skips instead of errors.
  bool require_matching_config = true;
};

struct BenchMetricDelta {
  std::string bench;
  std::string metric;
  std::string unit;
  double base = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  // (current - base) / |base|; 0 when base == 0
  bool flagged = false;     // beyond the noise band
};

struct BenchDiffReport {
  std::vector<BenchMetricDelta> deltas;          // every compared metric
  std::vector<std::string> skipped;              // human-readable skip notes
  std::vector<std::string> config_mismatches;    // benches with hash mismatch
  std::size_t benches_compared = 0;

  [[nodiscard]] std::size_t flagged_count() const;
  /// True when nothing is flagged and no config mismatch blocks comparison.
  [[nodiscard]] bool clean(const BenchDiffOptions& options) const;
};

/// Compares two record sets, matched by bench name; benches present on only
/// one side are reported in `skipped`.
BenchDiffReport diff_bench_records(const std::vector<BenchRecordInfo>& base,
                                   const std::vector<BenchRecordInfo>& current,
                                   const BenchDiffOptions& options = {});

}  // namespace h3cdn::obs
