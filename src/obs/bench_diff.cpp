#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/json_parse.h"

namespace h3cdn::obs {

namespace {

// Host metrics measure the machine the bench ran on, not the simulation:
// wall clocks ("*wall*" — wall_ms suffixes and the per-jobs wall_jobsN
// family), wall-derived throughput (unit "per_sec"), wall-clock speedup
// ratios, and resident-set sizes. They are never comparable across hosts,
// so the gate skips them unless --include-wall asks otherwise.
bool is_host_metric(const std::string& name, const std::string& unit) {
  if (name.find("wall") != std::string::npos) return true;
  if (name.find("speedup") != std::string::npos) return true;
  const std::size_t n = std::char_traits<char>::length("rss_mb");
  if (name.size() >= n && name.compare(name.size() - n, n, "rss_mb") == 0) return true;
  return unit == "per_sec";
}

}  // namespace

std::optional<BenchRecordInfo> parse_bench_record(const std::string& json,
                                                  std::string* error) {
  util::JsonParseError parse_error;
  const auto doc = util::parse_json(json, &parse_error);
  if (!doc) {
    if (error != nullptr) *error = "JSON parse error: " + parse_error.message;
    return std::nullopt;
  }
  if (static_cast<int>(doc->number_or("schema_version", 0)) != 1) {
    if (error != nullptr) *error = "unsupported schema_version";
    return std::nullopt;
  }
  BenchRecordInfo info;
  info.bench = doc->string_or("bench", "");
  info.title = doc->string_or("title", "");
  info.git_sha = doc->string_or("git_sha", "");
  if (info.bench.empty()) {
    if (error != nullptr) *error = "missing bench name";
    return std::nullopt;
  }
  if (const util::JsonValue* config = doc->find("config")) {
    info.config_hash = config->string_or("hash", "");
  }
  const util::JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    if (error != nullptr) *error = "missing metrics array";
    return std::nullopt;
  }
  for (const auto& m : metrics->as_array()) {
    BenchMetric out;
    out.metric = m.string_or("metric", "");
    out.value = m.number_or("value", 0.0);
    out.unit = m.string_or("unit", "");
    if (!out.metric.empty()) info.metrics.push_back(std::move(out));
  }
  return info;
}

std::size_t BenchDiffReport::flagged_count() const {
  std::size_t n = 0;
  for (const auto& d : deltas)
    if (d.flagged) ++n;
  return n;
}

bool BenchDiffReport::clean(const BenchDiffOptions& options) const {
  if (flagged_count() > 0) return false;
  if (options.require_matching_config && !config_mismatches.empty()) return false;
  return true;
}

BenchDiffReport diff_bench_records(const std::vector<BenchRecordInfo>& base,
                                   const std::vector<BenchRecordInfo>& current,
                                   const BenchDiffOptions& options) {
  BenchDiffReport report;
  std::map<std::string, const BenchRecordInfo*> base_by_name;
  for (const auto& b : base) base_by_name[b.bench] = &b;

  std::map<std::string, const BenchRecordInfo*> cur_by_name;
  for (const auto& c : current) cur_by_name[c.bench] = &c;

  for (const auto& [name, b] : base_by_name) {
    auto it = cur_by_name.find(name);
    if (it == cur_by_name.end()) {
      report.skipped.push_back(name + ": missing from current set");
      continue;
    }
    const BenchRecordInfo* c = it->second;
    if (b->config_hash != c->config_hash) {
      report.config_mismatches.push_back(name);
      if (options.require_matching_config) continue;
    }
    ++report.benches_compared;

    std::map<std::string, const BenchMetric*> base_metrics;
    for (const auto& m : b->metrics) base_metrics[m.metric] = &m;
    for (const auto& m : c->metrics) {
      auto bit = base_metrics.find(m.metric);
      if (bit == base_metrics.end()) {
        report.skipped.push_back(name + "/" + m.metric + ": new metric");
        continue;
      }
      if (options.skip_wall_metrics && is_host_metric(m.metric, m.unit)) continue;
      BenchMetricDelta d;
      d.bench = name;
      d.metric = m.metric;
      d.unit = m.unit;
      d.base = bit->second->value;
      d.current = m.value;
      const double abs_change = std::abs(d.current - d.base);
      d.rel_change = d.base == 0.0 ? 0.0 : (d.current - d.base) / std::abs(d.base);
      d.flagged = abs_change > options.abs_floor &&
                  (d.base == 0.0 || std::abs(d.rel_change) > options.noise_frac);
      report.deltas.push_back(d);
    }
  }
  for (const auto& [name, c] : cur_by_name) {
    if (base_by_name.find(name) == base_by_name.end()) {
      report.skipped.push_back(name + ": missing from base set");
    }
  }
  return report;
}

}  // namespace h3cdn::obs
