// Time-resolved telemetry: TimelineRecorder buckets counters, gauges, and
// histogram samples into fixed sim-time windows, so a chaos or load run can
// show WHEN a breaker opened, how long recovery took, and whether the PLT
// tail stayed inside budget during a fault window — not just the end-state
// aggregates the MetricsRegistry exports.
//
// Design rules (mirroring obs/metrics.h):
//   * Zero cost when disabled: no recorder is installed by default and every
//     tl_* hook is one thread_local load + one branch.
//   * One recorder per shard, installed thread_local for the shard's run;
//     the study/chaos driver merges shard recorders in canonical shard order
//     afterwards. Merge is BUCKET-WISE: counter windows add, gauge windows
//     take the merged-in value (last-writer in merge order), histogram
//     windows merge exactly like run-level histograms — so timeline.json is
//     byte-identical at any --jobs value.
//   * Bucketing is integral: window index = at.count() / bucket.count(), so
//     a sample lands in the same window on every platform.
//   * Export convention (PR 4): an empty window exports `count: 0` ONLY —
//     quantiles or values fabricated from zero samples never appear.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "util/types.h"

namespace h3cdn::obs {

/// Buckets named series into fixed simulated-time windows.
class TimelineRecorder {
 public:
  /// Default window: fine enough to localize a 700 ms outage, coarse enough
  /// that a multi-second chaos cell stays a few dozen windows.
  explicit TimelineRecorder(Duration bucket = msec(250));
  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  [[nodiscard]] Duration bucket_width() const { return bucket_; }

  /// Window index of a simulated instant (integral floor division; negative
  /// instants clamp to window 0 — sim time starts at zero).
  [[nodiscard]] std::int64_t bucket_of(TimePoint at) const;

  void count(const std::string& name, TimePoint at, std::uint64_t n = 1);
  void gauge_set(const std::string& name, TimePoint at, double v);
  void observe(const std::string& name, TimePoint at, double v);

  /// Last gauge value written in a window, plus how many writes landed there
  /// (`sets` == 0 never occurs in a stored bucket; empty windows are absent).
  struct GaugeBucket {
    std::uint64_t sets = 0;
    double last = 0.0;
  };

  // Sparse storage: only touched windows exist; exporters densify.
  using CounterSeries = std::map<std::int64_t, std::uint64_t>;
  using GaugeSeries = std::map<std::int64_t, GaugeBucket>;
  using HistogramSeries = std::map<std::int64_t, Histogram>;

  [[nodiscard]] const std::map<std::string, CounterSeries>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, GaugeSeries>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, HistogramSeries>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] std::size_t series_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Highest touched window index + 1 across every series (0 when nothing
  /// was recorded) — the dense export span.
  [[nodiscard]] std::int64_t span_buckets() const;

  /// Sum of a counter series over a window range [first, last] inclusive.
  [[nodiscard]] std::uint64_t counter_in_range(const std::string& name, std::int64_t first,
                                               std::int64_t last) const;

  void clear();

  /// Bucket-wise fold of `other` into this recorder. Counter windows add
  /// (exact), histogram windows merge via Histogram::merge_from, gauge
  /// windows take `other`'s value when `other` touched the window — callers
  /// merge shards in canonical shard order, which makes the result (and its
  /// byte exports) independent of thread scheduling. Bucket widths must
  /// match (H3CDN_EXPECTS).
  void merge_from(const TimelineRecorder& other);

  /// The recorder installed on the current thread (nullptr = disabled).
  [[nodiscard]] static TimelineRecorder* global();
  static TimelineRecorder* set_global(TimelineRecorder* recorder);

 private:
  Duration bucket_;
  std::map<std::string, CounterSeries> counters_;
  std::map<std::string, GaugeSeries> gauges_;
  std::map<std::string, HistogramSeries> histograms_;
};

namespace detail {
/// Per-thread recorder pointer; see g_metrics_registry for the rationale.
inline thread_local TimelineRecorder* g_timeline_recorder = nullptr;
}  // namespace detail

inline TimelineRecorder* TimelineRecorder::global() { return detail::g_timeline_recorder; }

inline TimelineRecorder* TimelineRecorder::set_global(TimelineRecorder* recorder) {
  TimelineRecorder* previous = detail::g_timeline_recorder;
  detail::g_timeline_recorder = recorder;
  return previous;
}

/// RAII install/restore of the current thread's timeline recorder.
class ScopedTimeline {
 public:
  explicit ScopedTimeline(TimelineRecorder* recorder)
      : previous_(TimelineRecorder::set_global(recorder)) {}
  ~ScopedTimeline() { TimelineRecorder::set_global(previous_); }
  ScopedTimeline(const ScopedTimeline&) = delete;
  ScopedTimeline& operator=(const ScopedTimeline&) = delete;

 private:
  TimelineRecorder* previous_;
};

// --- Instrumentation hooks: one null-check when the timeline is off. --------
// Unlike the aggregate obs::count/observe hooks these carry the simulated
// instant explicitly: every call site already holds its Simulator clock, and
// passing it keeps the recorder free of any simulator dependency.

inline void tl_count(const char* name, TimePoint at, std::uint64_t n = 1) {
  if (TimelineRecorder* r = TimelineRecorder::global()) r->count(name, at, n);
}

inline void tl_gauge_set(const char* name, TimePoint at, double v) {
  if (TimelineRecorder* r = TimelineRecorder::global()) r->gauge_set(name, at, v);
}

inline void tl_observe(const char* name, TimePoint at, double v) {
  if (TimelineRecorder* r = TimelineRecorder::global()) r->observe(name, at, v);
}

/// Records a simulated duration in fractional milliseconds at instant `at`.
inline void tl_observe_ms(const char* name, TimePoint at, Duration d) {
  if (TimelineRecorder* r = TimelineRecorder::global()) r->observe(name, at, to_ms(d));
}

// --- Exporters --------------------------------------------------------------

/// {"bucket_ms", "span_buckets", "series": {name: {kind, points: [...]}}}.
/// Points are DENSE over [0, span_buckets): every series exports one point
/// per window with `t_ms` (window start) and `count`; windows the series
/// never touched export `count: 0` only. Non-empty points add `value` (the
/// window's counter total / last gauge value) and, for histograms, the
/// sum/min/max/mean/p50/p90/p99 summary.
[[nodiscard]] std::string timeline_to_json(const TimelineRecorder& recorder);

/// One row per (series, window): `series,kind,t_ms,count,value,p50,p90,p99,max`
/// — dense like the JSON export; empty windows leave everything past `count`
/// blank.
[[nodiscard]] std::string timeline_to_csv(const TimelineRecorder& recorder);

}  // namespace h3cdn::obs
