// Per-page-load waterfall: HAR-grade phase timings for every resource a page
// fetch performed — when it was queued, how long DNS/connect/TLS took, time
// to first byte, download time — plus which pooled connection served it, its
// cache state, and fault/fallback annotations.
//
// The data model lives here in obs/ so it has no dependency on the browser
// layer; browser/waterfall.h provides the HarPage -> Waterfall adapter.
// Exports: JSON (machine-readable, one object per page) and an ASCII-art
// timeline for quick terminal inspection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace h3cdn::obs {

/// One relay tier's own fetch of a resource from the next tier up, flattened
/// from the http::UpstreamRecord chain a topology::Chain attaches to entries
/// it serves. Hop numbering in attribution: the client-facing hop is hop 0,
/// `upstream_hops[k]` is hop k+1. A cache-hit hop served the resource from
/// its TierCache: all phase fields are zero and no deeper hops follow.
struct UpstreamHop {
  std::string tier;      // relay name ("proxy", "mid-tier", ...)
  std::string protocol;  // h1 / h2 / h3 on this hop ("" on a cache hit)
  bool cache_hit = false;
  bool reused_connection = false;  // relay reused a pooled upstream connection
  bool resumed = false;
  bool failed = false;

  // Same HAR phase semantics as WaterfallEntry (dns is always 0: relays dial
  // by upstream identity, not names). blocked is the residual that makes the
  // phases sum to the relay fetch's wall time exactly.
  double dns_ms = 0.0;
  double blocked_ms = 0.0;
  double connect_ms = 0.0;
  double send_ms = 0.0;
  double wait_ms = 0.0;
  double receive_ms = 0.0;
  double hol_stall_ms = 0.0;  // sub-intervals of wait+receive, like the entry's
  double retx_wait_ms = 0.0;

  [[nodiscard]] double total_ms() const {
    return dns_ms + blocked_ms + connect_ms + send_ms + wait_ms + receive_ms;
  }
};

/// One resource fetch. All times are fractional milliseconds; `start_ms` is
/// relative to the page's navigation start. Phases follow HAR semantics:
/// dns -> blocked (queued waiting for dispatch) -> connect (TCP+TLS or QUIC
/// handshake; 0 on a reused connection) -> send -> wait (TTFB) -> receive.
struct WaterfallEntry {
  std::string url;
  std::string domain;
  std::string type;      // resource type (document, script, image, ...)
  std::string protocol;  // h1 / h2 / h3

  // Dependency edge for critical-path attribution (obs/critical_path.h):
  // `initiator_index` is the index *within this waterfall* of the entry whose
  // completion revealed this fetch, -1 for the root document. `resource_id`
  // is the page-model id the index was resolved from.
  std::int64_t resource_id = -1;
  std::int64_t initiator_index = -1;

  std::uint64_t connection_id = 0;  // pool-scoped id of the serving connection
  int attempts = 1;                 // >1 when the request was re-dispatched
  bool from_cache = false;
  bool reused_connection = false;   // served on an already-open connection
  bool resumed = false;             // TLS session resumption / QUIC 0-RTT
  bool failed = false;

  double start_ms = 0.0;
  double dns_ms = 0.0;
  double blocked_ms = 0.0;
  double connect_ms = 0.0;
  double send_ms = 0.0;
  double wait_ms = 0.0;
  double receive_ms = 0.0;
  // Transport delivery stalls, sub-intervals of wait_ms + receive_ms (a gap
  // ahead of byte 0 stalls the stream before its first in-order byte). Not
  // part of total_ms() — attribution carves them out of wait/receive.
  double hol_stall_ms = 0.0;  // blocked behind another stream's gap (TCP HoL)
  double retx_wait_ms = 0.0;  // blocked on this stream's own retransmission

  std::uint64_t response_bytes = 0;
  std::string annotation;  // "rescued", "failed", "cache", ... ("" = none)

  // Relay-chain provenance, outermost tier first (empty for direct fetches).
  // The hops nest inside this entry's wait phase: hop k+1's wall total is a
  // sub-interval of hop k's wait, which is what lets critical-path
  // attribution re-distribute TtfbWait per hop without double counting.
  std::vector<UpstreamHop> upstream_hops;

  [[nodiscard]] double total_ms() const {
    return dns_ms + blocked_ms + connect_ms + send_ms + wait_ms + receive_ms;
  }
  [[nodiscard]] double end_ms() const { return start_ms + total_ms(); }
};

/// One page load's waterfall plus the pool-level counters that explain it.
struct Waterfall {
  std::string site;
  std::string vantage;  // study run label ("" outside a study)
  bool h3_enabled = false;
  double page_load_time_ms = 0.0;

  // Pool counters for this page load.
  std::uint64_t connections_created = 0;
  std::uint64_t connection_deaths = 0;
  std::uint64_t h3_fallbacks = 0;
  std::uint64_t requests_rescued = 0;
  std::uint64_t requests_failed = 0;

  std::vector<WaterfallEntry> entries;
};

/// QoE metrics beyond PLT, computable from the waterfall alone (after the
/// Lighthouse-style targets): PLT hides *when* content became useful, so a
/// page that trickles bytes for seconds scores the same as one that renders
/// instantly and fetches a straggler analytics beacon.
struct QoeMetrics {
  /// First-contentful-resource time: when the root document and every
  /// render-blocking subresource it discovered (non-failed css/script
  /// initiated directly by the root) have finished. A page with zero
  /// render-blocking subresources paints at the root document's end.
  double fcp_ms = 0.0;
  /// Speed-Index-like byte-progress integral: the byte-weighted mean
  /// completion time sum_e (bytes_e / total_bytes) * end_ms_e over non-failed
  /// byte-carrying entries. Equals the area above the byte-progress curve,
  /// so it is monotone under added idle gaps and rewards early delivery.
  double speed_index_ms = 0.0;
  std::size_t render_blocking_count = 0;  // blocking subresources behind FCP
  std::uint64_t bytes_total = 0;          // bytes integrated by speed_index
};

/// Computes QoE metrics for one page load. Deterministic; an empty waterfall
/// yields all-zero metrics.
[[nodiscard]] QoeMetrics compute_qoe(const Waterfall& waterfall);

/// One waterfall as a JSON object (includes a "qoe" sub-object).
[[nodiscard]] std::string waterfall_to_json(const Waterfall& waterfall);

/// Many waterfalls: {"waterfalls": [...]}.
[[nodiscard]] std::string waterfalls_to_json(const std::vector<Waterfall>& waterfalls);

/// ASCII-art timeline, one row per resource. Phase glyphs: D dns, b blocked,
/// C connect, s send, W wait (TTFB), R receive; '*' marks annotated rows.
[[nodiscard]] std::string waterfall_to_ascii(const Waterfall& waterfall, std::size_t width = 100);

}  // namespace h3cdn::obs
