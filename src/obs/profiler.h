// PhaseProfiler: real wall-clock cost of simulator phases.
//
// Unlike the metrics registry (which records *simulated* quantities), the
// profiler measures how much host CPU time each simulator phase burns — event
// loop, link transmission, handshake dispatch, page assembly — so perf
// regressions introduced by later PRs are visible in one table.
//
// Usage: wrap a phase in an RAII scope timer. ProfileScope reads the global
// profiler once; when none is installed (the default) the constructor and
// destructor are a single null-check each — safe to leave in hot paths.
//
//   void Simulator::run() {
//     obs::ProfileScope scope("sim.run");
//     ...
//   }
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace h3cdn::obs {

class PhaseProfiler {
 public:
  struct Phase {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };

  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  void record(const char* name, std::uint64_t ns);

  /// Shard merge: calls and total time add, max takes the larger. Merging
  /// every shard profiler reproduces what one shared profiler would have
  /// recorded (host wall-clock values themselves are not deterministic).
  void merge_from(const PhaseProfiler& other);

  [[nodiscard]] const std::map<std::string, Phase>& phases() const { return phases_; }
  void clear() { phases_.clear(); }

  /// Plain-text table: phase, calls, total ms, mean us, max us.
  [[nodiscard]] std::string report() const;

  /// {"phases": {name: {calls, total_ms, mean_us, max_us}}}.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] static PhaseProfiler* global();
  static PhaseProfiler* set_global(PhaseProfiler* profiler);

 private:
  std::map<std::string, Phase> phases_;
};

namespace detail {
/// Inline thread-local variable so ProfileScope's constructor inlines to a
/// single load + branch when no profiler is installed. Per-thread (like the
/// metrics registry) so parallel shard tasks each time into their own
/// profiler without locking.
inline thread_local PhaseProfiler* g_phase_profiler = nullptr;
}  // namespace detail

inline PhaseProfiler* PhaseProfiler::global() { return detail::g_phase_profiler; }

inline PhaseProfiler* PhaseProfiler::set_global(PhaseProfiler* profiler) {
  PhaseProfiler* previous = detail::g_phase_profiler;
  detail::g_phase_profiler = profiler;
  return previous;
}

/// RAII install/restore of the current thread's profiler.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(PhaseProfiler* profiler)
      : previous_(PhaseProfiler::set_global(profiler)) {}
  ~ScopedProfiler() { PhaseProfiler::set_global(previous_); }
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  PhaseProfiler* previous_;
};

/// RAII wall-clock scope timer. `name` must outlive the scope (use string
/// literals). Costs one branch when no profiler is installed.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) : profiler_(PhaseProfiler::global()), name_(name) {
    if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ProfileScope() {
    if (profiler_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    profiler_->record(
        name_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  PhaseProfiler* profiler_;
  const char* name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace h3cdn::obs
