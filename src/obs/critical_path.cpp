#include "obs/critical_path.h"

#include <algorithm>

namespace h3cdn::obs {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::Dns: return "dns";
    case Phase::TcpConnect: return "tcp_connect";
    case Phase::TlsHs: return "tls_hs";
    case Phase::QuicHs: return "quic_hs";
    case Phase::TtfbWait: return "ttfb_wait";
    case Phase::Transfer: return "transfer";
    case Phase::HolStall: return "hol_stall";
    case Phase::RetxWait: return "retx_wait";
    case Phase::IdleGap: return "idle_gap";
  }
  return "?";
}

double PhaseVector::sum() const {
  double s = 0.0;
  for (double v : ms) s += v;
  return s;
}

PhaseVector& PhaseVector::operator+=(const PhaseVector& o) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) ms[i] += o.ms[i];
  return *this;
}

PhaseVector& PhaseVector::operator/=(double divisor) {
  for (double& v : ms) v /= divisor;
  return *this;
}

PhaseVector PhaseVector::operator-(const PhaseVector& o) const {
  PhaseVector out = *this;
  for (std::size_t i = 0; i < kPhaseCount; ++i) out.ms[i] -= o.ms[i];
  return out;
}

namespace {

// Charges `entry`'s HAR phases to attribution phases over [cursor, plt],
// clipping each phase interval to the still-unattributed suffix. Returns the
// advanced cursor. Every advance adds the identical amount to exactly one
// phase, which is what makes the final sum exact.
double attribute_entry(const WaterfallEntry& entry, double cursor, double plt,
                       PhaseVector& out) {
  // Discovery gap between the previous path element finishing and this entry
  // starting (parser stagger, wave-1 reveal delay).
  const double start = std::min(entry.start_ms, plt);
  if (start > cursor) {
    out[Phase::IdleGap] += start - cursor;
    cursor = start;
  }

  // Walk the HAR phases in wall-clock order, clipping each to [cursor, plt].
  double t = entry.start_ms;
  double eff_wait = 0.0;      // clipped send+wait, candidate TtfbWait
  double eff_receive = 0.0;   // clipped receive, candidate Transfer
  const auto clip = [&](double dur) {
    const double begin = std::max(t, cursor);
    t += dur;
    const double end = std::min(t, plt);
    const double eff = std::max(0.0, end - begin);
    if (eff > 0.0) cursor = end;
    return eff;
  };

  out[Phase::Dns] += clip(entry.dns_ms);
  // Queueing for a dispatch slot is not network work; it reads as idle.
  out[Phase::IdleGap] += clip(entry.blocked_ms);
  const double hs = clip(entry.connect_ms);
  if (hs > 0.0) {
    if (entry.protocol == "h3") {
      // QUIC folds transport + crypto into one handshake.
      out[Phase::QuicHs] += hs;
    } else if (entry.resumed) {
      // TLS 1.3 resumption piggybacks on the TCP round trip; the observed
      // 1-RTT handshake is all TCP.
      out[Phase::TcpConnect] += hs;
    } else {
      // Fresh TCP+TLS 1.3: 1 RTT TCP + 1 RTT TLS — split evenly.
      out[Phase::TcpConnect] += hs / 2.0;
      out[Phase::TlsHs] += hs / 2.0;
    }
  }
  eff_wait += clip(entry.send_ms);
  eff_wait += clip(entry.wait_ms);
  eff_receive += clip(entry.receive_ms);

  // Carve transport stalls out of the on-path wait/receive time. Stalls are
  // sub-intervals of wait+receive; charge receive first (where they almost
  // always live), overflow against wait.
  double hol = std::min(entry.hol_stall_ms, eff_receive);
  eff_receive -= hol;
  double retx = std::min(entry.retx_wait_ms, eff_receive);
  eff_receive -= retx;
  const double hol_over = std::min(entry.hol_stall_ms - hol, eff_wait);
  eff_wait -= hol_over;
  hol += hol_over;
  const double retx_over = std::min(entry.retx_wait_ms - retx, eff_wait);
  eff_wait -= retx_over;
  retx += retx_over;

  out[Phase::TtfbWait] += eff_wait;
  out[Phase::Transfer] += eff_receive;
  out[Phase::HolStall] += hol;
  out[Phase::RetxWait] += retx;
  return cursor;
}

}  // namespace

CriticalPathResult analyze_critical_path(const Waterfall& waterfall) {
  CriticalPathResult result;
  result.plt_ms = std::max(waterfall.page_load_time_ms, 0.0);
  result.qoe = compute_qoe(waterfall);
  const double plt = result.plt_ms;
  if (waterfall.entries.empty()) {
    result.phases[Phase::IdleGap] = plt;
    return result;
  }

  // Terminal entry: the one whose completion fired onLoad.
  std::size_t terminal = 0;
  for (std::size_t i = 1; i < waterfall.entries.size(); ++i) {
    if (waterfall.entries[i].end_ms() > waterfall.entries[terminal].end_ms()) terminal = i;
  }

  // Follow initiator edges back to the root. The visited guard makes a
  // malformed (cyclic) input terminate instead of looping.
  std::vector<bool> visited(waterfall.entries.size(), false);
  std::size_t at = terminal;
  while (true) {
    visited[at] = true;
    result.path.push_back(at);
    const std::int64_t up = waterfall.entries[at].initiator_index;
    if (up < 0 || static_cast<std::size_t>(up) >= waterfall.entries.size() ||
        visited[static_cast<std::size_t>(up)]) {
      break;
    }
    at = static_cast<std::size_t>(up);
  }
  std::reverse(result.path.begin(), result.path.end());

  double cursor = 0.0;
  for (std::size_t idx : result.path) {
    cursor = attribute_entry(waterfall.entries[idx], cursor, plt, result.phases);
  }
  // Residual between the path's last covered instant and onLoad (straggler
  // entries off the critical chain, final scheduling).
  if (cursor < plt) result.phases[Phase::IdleGap] += plt - cursor;
  return result;
}

}  // namespace h3cdn::obs
