#include "obs/critical_path.h"

#include <algorithm>

namespace h3cdn::obs {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::Dns: return "dns";
    case Phase::TcpConnect: return "tcp_connect";
    case Phase::TlsHs: return "tls_hs";
    case Phase::QuicHs: return "quic_hs";
    case Phase::TtfbWait: return "ttfb_wait";
    case Phase::Transfer: return "transfer";
    case Phase::HolStall: return "hol_stall";
    case Phase::RetxWait: return "retx_wait";
    case Phase::IdleGap: return "idle_gap";
  }
  return "?";
}

double PhaseVector::sum() const {
  double s = 0.0;
  for (double v : ms) s += v;
  return s;
}

PhaseVector& PhaseVector::operator+=(const PhaseVector& o) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) ms[i] += o.ms[i];
  return *this;
}

PhaseVector& PhaseVector::operator/=(double divisor) {
  for (double& v : ms) v /= divisor;
  return *this;
}

PhaseVector PhaseVector::operator-(const PhaseVector& o) const {
  PhaseVector out = *this;
  for (std::size_t i = 0; i < kPhaseCount; ++i) out.ms[i] -= o.ms[i];
  return out;
}

namespace {

// Double-entry bookkeeper: every charged amount lands in the end-to-end
// vector AND in exactly one hop's vector, which is what makes the per-hop
// dissections re-aggregate to the end-to-end dissection exactly.
struct Charger {
  PhaseVector& out;
  std::vector<PhaseVector>& by_hop;

  void charge(Phase p, double amount, std::size_t hop) {
    if (amount <= 0.0) return;
    out[p] += amount;
    if (by_hop.size() <= hop) by_hop.resize(hop + 1);
    by_hop[hop][p] += amount;
  }
};

// Splits a handshake interval into attribution phases by hop protocol.
void charge_handshake(Charger& ch, double hs, const std::string& protocol, bool resumed,
                      std::size_t hop) {
  if (hs <= 0.0) return;
  if (protocol == "h3") {
    // QUIC folds transport + crypto into one handshake.
    ch.charge(Phase::QuicHs, hs, hop);
  } else if (resumed) {
    // TLS 1.3 resumption piggybacks on the TCP round trip; the observed
    // 1-RTT handshake is all TCP.
    ch.charge(Phase::TcpConnect, hs, hop);
  } else {
    // Fresh TCP+TLS 1.3: 1 RTT TCP + 1 RTT TLS — split evenly.
    ch.charge(Phase::TcpConnect, hs / 2.0, hop);
    ch.charge(Phase::TlsHs, hs / 2.0, hop);
  }
}

// Re-distributes the client-visible wait (`eff_wait`) of a chained entry
// across its relay hops. Hop k+1's wall total nests inside hop k's wait, so
// each hop's OWN wait is its send+wait minus the next hop's total; the rest
// of a hop's budget maps phase-for-phase (blocked -> idle, connect -> the
// protocol's handshake phase, receive -> transfer, stalls carved like the
// entry's). Amounts are capped by the remaining unattributed wait so the
// total charged is exactly `eff_wait`; whatever the hop records cannot
// explain (the client's own send, propagation, relay processing) stays on
// hop 0 as TtfbWait.
void distribute_wait(Charger& ch, const WaterfallEntry& entry, double eff_wait) {
  double remaining = eff_wait;
  for (std::size_t h = 0; h < entry.upstream_hops.size() && remaining > 0.0; ++h) {
    const UpstreamHop& hop = entry.upstream_hops[h];
    const std::size_t hop_idx = h + 1;
    const double child_total =
        h + 1 < entry.upstream_hops.size() ? entry.upstream_hops[h + 1].total_ms() : 0.0;
    double own_wait = std::max(0.0, hop.send_ms + hop.wait_ms - child_total);

    // Carve this hop's transport stalls out of its receive-then-wait time,
    // mirroring the entry-level carve below.
    double receive = hop.receive_ms;
    double hol = std::min(hop.hol_stall_ms, receive);
    receive -= hol;
    double retx = std::min(hop.retx_wait_ms, receive);
    receive -= retx;
    const double hol_over = std::min(hop.hol_stall_ms - hol, own_wait);
    own_wait -= hol_over;
    hol += hol_over;
    const double retx_over = std::min(hop.retx_wait_ms - retx, own_wait);
    own_wait -= retx_over;
    retx += retx_over;

    const auto take = [&](Phase p, double amount) {
      const double eff = std::min(amount, remaining);
      if (eff <= 0.0) return;
      ch.charge(p, eff, hop_idx);
      remaining -= eff;
    };
    take(Phase::IdleGap, hop.blocked_ms);  // relay-side queueing reads as idle
    take(Phase::Dns, hop.dns_ms);
    const double hs = std::min(hop.connect_ms, remaining);
    if (hs > 0.0) {
      charge_handshake(ch, hs, hop.protocol, hop.resumed, hop_idx);
      remaining -= hs;
    }
    take(Phase::HolStall, hol);
    take(Phase::RetxWait, retx);
    take(Phase::Transfer, receive);
    take(Phase::TtfbWait, own_wait);
  }
  // Client send + first-byte propagation + relay processing: the client hop.
  ch.charge(Phase::TtfbWait, remaining, 0);
}

// Charges `entry`'s HAR phases to attribution phases over [cursor, plt],
// clipping each phase interval to the still-unattributed suffix. Returns the
// advanced cursor. Every advance adds the identical amount to exactly one
// phase, which is what makes the final sum exact.
double attribute_entry(const WaterfallEntry& entry, double cursor, double plt,
                       Charger& ch) {
  // Discovery gap between the previous path element finishing and this entry
  // starting (parser stagger, wave-1 reveal delay).
  const double start = std::min(entry.start_ms, plt);
  if (start > cursor) {
    ch.charge(Phase::IdleGap, start - cursor, 0);
    cursor = start;
  }

  // Walk the HAR phases in wall-clock order, clipping each to [cursor, plt].
  double t = entry.start_ms;
  double eff_wait = 0.0;      // clipped send+wait, candidate TtfbWait
  double eff_receive = 0.0;   // clipped receive, candidate Transfer
  const auto clip = [&](double dur) {
    const double begin = std::max(t, cursor);
    t += dur;
    const double end = std::min(t, plt);
    const double eff = std::max(0.0, end - begin);
    if (eff > 0.0) cursor = end;
    return eff;
  };

  ch.charge(Phase::Dns, clip(entry.dns_ms), 0);
  // Queueing for a dispatch slot is not network work; it reads as idle.
  ch.charge(Phase::IdleGap, clip(entry.blocked_ms), 0);
  charge_handshake(ch, clip(entry.connect_ms), entry.protocol, entry.resumed, 0);
  eff_wait += clip(entry.send_ms);
  eff_wait += clip(entry.wait_ms);
  eff_receive += clip(entry.receive_ms);

  // Carve transport stalls out of the on-path wait/receive time. Stalls are
  // sub-intervals of wait+receive; charge receive first (where they almost
  // always live), overflow against wait.
  double hol = std::min(entry.hol_stall_ms, eff_receive);
  eff_receive -= hol;
  double retx = std::min(entry.retx_wait_ms, eff_receive);
  eff_receive -= retx;
  const double hol_over = std::min(entry.hol_stall_ms - hol, eff_wait);
  eff_wait -= hol_over;
  hol += hol_over;
  const double retx_over = std::min(entry.retx_wait_ms - retx, eff_wait);
  eff_wait -= retx_over;
  retx += retx_over;

  // The client's wait envelope contains every upstream hop's work; chained
  // entries re-distribute it per hop, direct entries keep it on hop 0.
  if (entry.upstream_hops.empty()) {
    ch.charge(Phase::TtfbWait, eff_wait, 0);
  } else {
    distribute_wait(ch, entry, eff_wait);
  }
  ch.charge(Phase::Transfer, eff_receive, 0);
  ch.charge(Phase::HolStall, hol, 0);
  ch.charge(Phase::RetxWait, retx, 0);
  return cursor;
}

}  // namespace

CriticalPathResult analyze_critical_path(const Waterfall& waterfall) {
  CriticalPathResult result;
  result.plt_ms = std::max(waterfall.page_load_time_ms, 0.0);
  result.qoe = compute_qoe(waterfall);
  const double plt = result.plt_ms;
  if (waterfall.entries.empty()) {
    result.phases[Phase::IdleGap] = plt;
    return result;
  }

  // Terminal entry: the one whose completion fired onLoad.
  std::size_t terminal = 0;
  for (std::size_t i = 1; i < waterfall.entries.size(); ++i) {
    if (waterfall.entries[i].end_ms() > waterfall.entries[terminal].end_ms()) terminal = i;
  }

  // Follow initiator edges back to the root. The visited guard makes a
  // malformed (cyclic) input terminate instead of looping.
  std::vector<bool> visited(waterfall.entries.size(), false);
  std::size_t at = terminal;
  while (true) {
    visited[at] = true;
    result.path.push_back(at);
    const std::int64_t up = waterfall.entries[at].initiator_index;
    if (up < 0 || static_cast<std::size_t>(up) >= waterfall.entries.size() ||
        visited[static_cast<std::size_t>(up)]) {
      break;
    }
    at = static_cast<std::size_t>(up);
  }
  std::reverse(result.path.begin(), result.path.end());

  Charger ch{result.phases, result.by_hop};
  double cursor = 0.0;
  for (std::size_t idx : result.path) {
    cursor = attribute_entry(waterfall.entries[idx], cursor, plt, ch);
  }
  // Residual between the path's last covered instant and onLoad (straggler
  // entries off the critical chain, final scheduling).
  if (cursor < plt) ch.charge(Phase::IdleGap, plt - cursor, 0);
  // A page that never traversed a relay has everything on hop 0; drop the
  // vector so direct runs keep their pre-topology artifact shape.
  if (result.by_hop.size() <= 1) result.by_hop.clear();
  return result;
}

}  // namespace h3cdn::obs
