#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>

#include "util/json.h"

namespace h3cdn::obs {

void PhaseProfiler::record(const char* name, std::uint64_t ns) {
  Phase& phase = phases_[name];
  ++phase.calls;
  phase.total_ns += ns;
  phase.max_ns = std::max(phase.max_ns, ns);
}

void PhaseProfiler::merge_from(const PhaseProfiler& other) {
  for (const auto& [name, p] : other.phases_) {
    Phase& phase = phases_[name];
    phase.calls += p.calls;
    phase.total_ns += p.total_ns;
    phase.max_ns = std::max(phase.max_ns, p.max_ns);
  }
}

std::string PhaseProfiler::report() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-28s %10s %12s %10s %10s\n", "phase", "calls", "total ms",
                "mean us", "max us");
  out += line;
  for (const auto& [name, p] : phases_) {
    const double total_ms = static_cast<double>(p.total_ns) / 1e6;
    const double mean_us =
        p.calls ? static_cast<double>(p.total_ns) / (1e3 * static_cast<double>(p.calls)) : 0.0;
    const double max_us = static_cast<double>(p.max_ns) / 1e3;
    std::snprintf(line, sizeof line, "%-28s %10llu %12.2f %10.2f %10.2f\n", name.c_str(),
                  static_cast<unsigned long long>(p.calls), total_ms, mean_us, max_us);
    out += line;
  }
  return out;
}

std::string PhaseProfiler::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("phases").begin_object();
  for (const auto& [name, p] : phases_) {
    w.key(name).begin_object();
    w.kv("calls", p.calls);
    w.kv("total_ms", static_cast<double>(p.total_ns) / 1e6);
    w.kv("mean_us",
         p.calls ? static_cast<double>(p.total_ns) / (1e3 * static_cast<double>(p.calls)) : 0.0);
    w.kv("max_us", static_cast<double>(p.max_ns) / 1e3);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace h3cdn::obs
