#include "obs/trace_hub.h"

#include <algorithm>
#include <utility>

#include "util/json.h"

namespace h3cdn::obs {

std::shared_ptr<trace::ConnectionTrace> TraceAggregator::make_trace(std::string label,
                                                                    std::size_t capacity) {
  auto trace = std::make_shared<trace::ConnectionTrace>(capacity);
  traces_.push_back(NamedTrace{std::move(label), trace});
  return trace;
}

void TraceAggregator::add(std::string label, std::shared_ptr<trace::ConnectionTrace> trace) {
  if (!trace) return;
  traces_.push_back(NamedTrace{std::move(label), std::move(trace)});
}

void TraceAggregator::merge_from(TraceAggregator&& other) {
  traces_.reserve(traces_.size() + other.traces_.size());
  for (NamedTrace& t : other.traces_) traces_.push_back(std::move(t));
  other.traces_.clear();
}

std::size_t TraceAggregator::event_count() const {
  std::size_t n = 0;
  for (const auto& t : traces_) n += t.trace->events().size();
  return n;
}

std::uint64_t TraceAggregator::dropped_events() const {
  std::uint64_t n = 0;
  for (const auto& t : traces_) n += t.trace->dropped_events();
  return n;
}

std::vector<TraceAggregator::BusEvent> TraceAggregator::merged_events() const {
  std::vector<BusEvent> merged;
  merged.reserve(event_count());
  for (const auto& t : traces_) {
    for (const auto& e : t.trace->events()) merged.push_back(BusEvent{&t.label, e});
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const BusEvent& a, const BusEvent& b) { return a.event.at < b.event.at; });
  return merged;
}

std::string TraceAggregator::to_qlog_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.kv("qlog_format", "JSON");
  w.kv("qlog_version", "0.4");
  w.key("traces").begin_array();
  for (const auto& t : traces_) t.trace->write_qlog_trace(w, t.label);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace h3cdn::obs
