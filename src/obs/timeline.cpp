#include "obs/timeline.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"
#include "util/json.h"

namespace h3cdn::obs {

TimelineRecorder::TimelineRecorder(Duration bucket) : bucket_(bucket) {
  H3CDN_EXPECTS(bucket_.count() > 0);
}

std::int64_t TimelineRecorder::bucket_of(TimePoint at) const {
  if (at.count() <= 0) return 0;
  return at.count() / bucket_.count();
}

void TimelineRecorder::count(const std::string& name, TimePoint at, std::uint64_t n) {
  counters_[name][bucket_of(at)] += n;
}

void TimelineRecorder::gauge_set(const std::string& name, TimePoint at, double v) {
  GaugeBucket& b = gauges_[name][bucket_of(at)];
  ++b.sets;
  b.last = v;
}

void TimelineRecorder::observe(const std::string& name, TimePoint at, double v) {
  histograms_[name][bucket_of(at)].observe(v);
}

std::int64_t TimelineRecorder::span_buckets() const {
  std::int64_t last = -1;
  for (const auto& [name, series] : counters_) {
    if (!series.empty()) last = std::max(last, series.rbegin()->first);
  }
  for (const auto& [name, series] : gauges_) {
    if (!series.empty()) last = std::max(last, series.rbegin()->first);
  }
  for (const auto& [name, series] : histograms_) {
    if (!series.empty()) last = std::max(last, series.rbegin()->first);
  }
  return last + 1;
}

std::uint64_t TimelineRecorder::counter_in_range(const std::string& name, std::int64_t first,
                                                 std::int64_t last) const {
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  std::uint64_t total = 0;
  for (auto b = it->second.lower_bound(first); b != it->second.end() && b->first <= last; ++b) {
    total += b->second;
  }
  return total;
}

void TimelineRecorder::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void TimelineRecorder::merge_from(const TimelineRecorder& other) {
  H3CDN_EXPECTS(bucket_ == other.bucket_);
  for (const auto& [name, series] : other.counters_) {
    CounterSeries& mine = counters_[name];
    for (const auto& [window, n] : series) mine[window] += n;
  }
  for (const auto& [name, series] : other.gauges_) {
    GaugeSeries& mine = gauges_[name];
    for (const auto& [window, b] : series) {
      GaugeBucket& slot = mine[window];
      slot.sets += b.sets;
      slot.last = b.last;  // merged-in shard wins the window (canonical order)
    }
  }
  for (const auto& [name, series] : other.histograms_) {
    HistogramSeries& mine = histograms_[name];
    for (const auto& [window, h] : series) mine[window].merge_from(h);
  }
}

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void write_histogram_point(util::JsonWriter& w, double t_ms, const Histogram* h) {
  w.begin_object();
  w.kv("t_ms", t_ms);
  w.kv("count", h ? h->count() : 0);
  if (h != nullptr && h->count() > 0) {
    w.kv("sum", h->sum());
    w.kv("min", h->min());
    w.kv("max", h->max());
    w.kv("mean", h->mean());
    w.kv("p50", h->p50());
    w.kv("p90", h->p90());
    w.kv("p99", h->p99());
  }
  w.end_object();
}

}  // namespace

std::string timeline_to_json(const TimelineRecorder& recorder) {
  const std::int64_t span = recorder.span_buckets();
  const double bucket_ms = to_ms(recorder.bucket_width());
  util::JsonWriter w;
  w.begin_object();
  w.kv("bucket_ms", bucket_ms);
  w.kv("span_buckets", span);
  w.kv("series_count", static_cast<std::uint64_t>(recorder.series_count()));
  w.key("series").begin_object();
  // One merged name space, lexicographic like metrics.json. Kinds never
  // collide on a name (counter() / gauge_set() / observe() address disjoint
  // maps and call sites keep one kind per series).
  for (const auto& [name, series] : recorder.counters()) {
    w.key(name).begin_object();
    w.kv("kind", "counter");
    w.key("points").begin_array();
    for (std::int64_t window = 0; window < span; ++window) {
      const auto it = series.find(window);
      const std::uint64_t n = it == series.end() ? 0 : it->second;
      w.begin_object();
      w.kv("t_ms", static_cast<double>(window) * bucket_ms);
      w.kv("count", n);
      if (n != 0) w.kv("value", static_cast<double>(n));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  for (const auto& [name, series] : recorder.gauges()) {
    w.key(name).begin_object();
    w.kv("kind", "gauge");
    w.key("points").begin_array();
    for (std::int64_t window = 0; window < span; ++window) {
      const auto it = series.find(window);
      w.begin_object();
      w.kv("t_ms", static_cast<double>(window) * bucket_ms);
      w.kv("count", it == series.end() ? 0 : it->second.sets);
      if (it != series.end()) w.kv("value", it->second.last);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  for (const auto& [name, series] : recorder.histograms()) {
    w.key(name).begin_object();
    w.kv("kind", "histogram");
    w.key("points").begin_array();
    for (std::int64_t window = 0; window < span; ++window) {
      const auto it = series.find(window);
      write_histogram_point(w, static_cast<double>(window) * bucket_ms,
                            it == series.end() ? nullptr : &it->second);
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string timeline_to_csv(const TimelineRecorder& recorder) {
  const std::int64_t span = recorder.span_buckets();
  const double bucket_ms = to_ms(recorder.bucket_width());
  std::string out = "series,kind,t_ms,count,value,p50,p90,p99,max\n";
  const auto row_head = [&](const std::string& name, const char* kind, std::int64_t window) {
    out += name;
    out += ',';
    out += kind;
    out += ',';
    out += format_double(static_cast<double>(window) * bucket_ms);
    out += ',';
  };
  for (const auto& [name, series] : recorder.counters()) {
    for (std::int64_t window = 0; window < span; ++window) {
      const auto it = series.find(window);
      const std::uint64_t n = it == series.end() ? 0 : it->second;
      row_head(name, "counter", window);
      out += std::to_string(n);
      if (n != 0) {
        out += ',';
        out += std::to_string(n);
        out += ",,,,\n";
      } else {
        out += ",,,,,\n";
      }
    }
  }
  for (const auto& [name, series] : recorder.gauges()) {
    for (std::int64_t window = 0; window < span; ++window) {
      const auto it = series.find(window);
      row_head(name, "gauge", window);
      if (it == series.end()) {
        out += "0,,,,,\n";
      } else {
        out += std::to_string(it->second.sets) + ',' + format_double(it->second.last) + ",,,,\n";
      }
    }
  }
  for (const auto& [name, series] : recorder.histograms()) {
    for (std::int64_t window = 0; window < span; ++window) {
      const auto it = series.find(window);
      row_head(name, "histogram", window);
      if (it == series.end() || it->second.count() == 0) {
        out += "0,,,,,\n";
      } else {
        const Histogram& h = it->second;
        out += std::to_string(h.count()) + ',' + format_double(h.mean()) + ',' +
               format_double(h.p50()) + ',' + format_double(h.p90()) + ',' +
               format_double(h.p99()) + ',' + format_double(h.max()) + '\n';
      }
    }
  }
  return out;
}

}  // namespace h3cdn::obs
