#include "obs/attribution.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/json.h"

namespace h3cdn::obs {

namespace {

// Bar glyph per phase, index-aligned with Phase.
constexpr char kGlyphs[kPhaseCount + 1] = "DCTQWXHR.";

// "lab/p3/h2" -> "lab/p3"; labels without a mode suffix pass through.
std::string strip_mode_suffix(const std::string& run) {
  if (run.size() >= 3) {
    const std::string tail = run.substr(run.size() - 3);
    if (tail == "/h2" || tail == "/h3") return run.substr(0, run.size() - 3);
  }
  return run;
}

void write_phases(util::JsonWriter& w, const char* key, const PhaseVector& v) {
  w.key(key).begin_object();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    w.kv(to_string(static_cast<Phase>(i)), v.ms[i]);
  }
  w.end_object();
}

}  // namespace

AttributionReport attribute_pages(const std::vector<Waterfall>& waterfalls) {
  AttributionReport report;
  report.pages.reserve(waterfalls.size());
  // Pairing key -> index of the first h2/h3 page seen for it. std::map keeps
  // diff order deterministic regardless of input permutation.
  struct Pair {
    std::int64_t h2 = -1;
    std::int64_t h3 = -1;
  };
  std::map<std::pair<std::string, std::string>, Pair> pairs;

  for (const Waterfall& wf : waterfalls) {
    const auto analysis = analyze_critical_path(wf);
    PageAttribution page;
    page.site = wf.site;
    page.run = wf.vantage;
    page.protocol = wf.h3_enabled ? "h3" : "h2";
    page.plt_ms = analysis.plt_ms;
    page.phases = analysis.phases;
    const auto idx = static_cast<std::int64_t>(report.pages.size());
    auto& pair = pairs[{strip_mode_suffix(wf.vantage), wf.site}];
    auto& slot = wf.h3_enabled ? pair.h3 : pair.h2;
    if (slot < 0) slot = idx;
    report.pages.push_back(std::move(page));
  }

  for (const auto& [key, pair] : pairs) {
    if (pair.h2 < 0 || pair.h3 < 0) continue;
    const PageAttribution& h2 = report.pages[static_cast<std::size_t>(pair.h2)];
    const PageAttribution& h3 = report.pages[static_cast<std::size_t>(pair.h3)];
    PageDiff diff;
    diff.site = key.second;
    diff.pair = key.first;
    diff.h2_plt_ms = h2.plt_ms;
    diff.h3_plt_ms = h3.plt_ms;
    diff.plt_delta_ms = h2.plt_ms - h3.plt_ms;
    diff.delta = h2.phases - h3.phases;
    report.diffs.push_back(std::move(diff));
  }
  return report;
}

std::string attribution_to_json(const AttributionReport& report) {
  util::JsonWriter w;
  w.begin_object();
  w.key("attribution").begin_object();
  w.key("pages").begin_array();
  for (const auto& page : report.pages) {
    w.begin_object();
    w.kv("site", page.site);
    if (!page.run.empty()) w.kv("run", page.run);
    w.kv("protocol", page.protocol);
    w.kv("plt_ms", page.plt_ms);
    write_phases(w, "phases_ms", page.phases);
    w.end_object();
  }
  w.end_array();
  w.key("diffs").begin_array();
  for (const auto& diff : report.diffs) {
    w.begin_object();
    w.kv("site", diff.site);
    if (!diff.pair.empty()) w.kv("pair", diff.pair);
    w.kv("h2_plt_ms", diff.h2_plt_ms);
    w.kv("h3_plt_ms", diff.h3_plt_ms);
    w.kv("plt_delta_ms", diff.plt_delta_ms);
    write_phases(w, "delta_ms", diff.delta);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return w.str();
}

std::string attribution_to_ascii(const AttributionReport& report, std::size_t width) {
  width = std::max<std::size_t>(width, 60);
  const std::size_t kLabelWidth = 40;
  const std::size_t bar_width = width - kLabelWidth;

  double span_ms = 1.0;
  for (const auto& page : report.pages) span_ms = std::max(span_ms, page.plt_ms);

  std::string out;
  char line[512];
  std::snprintf(line, sizeof line,
                "PLT attribution  D=dns C=tcp T=tls Q=quic W=ttfb X=transfer H=hol R=retx "
                ".=idle  (span %.1f ms)\n",
                span_ms);
  out += line;

  for (const auto& page : report.pages) {
    std::string label = page.site;
    if (!page.run.empty()) label += " @" + page.run;
    if (label.size() > kLabelWidth - 6) label = label.substr(0, kLabelWidth - 7) + "~";
    std::snprintf(line, sizeof line, "%-*s %-3s ", static_cast<int>(kLabelWidth - 5),
                  label.c_str(), page.protocol.c_str());
    out += line;

    std::string bar(bar_width, ' ');
    double cursor = 0.0;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const double ms = page.phases.ms[i];
      const auto begin =
          static_cast<std::size_t>(cursor / span_ms * static_cast<double>(bar_width));
      cursor += ms;
      auto end = static_cast<std::size_t>(cursor / span_ms * static_cast<double>(bar_width));
      if (ms > 0.0 && end == begin) end = begin + 1;
      for (std::size_t j = begin; j < end && j < bar_width; ++j) bar[j] = kGlyphs[i];
    }
    out += bar;
    std::snprintf(line, sizeof line, " %8.1f ms\n", page.plt_ms);
    out += line;
  }

  if (!report.diffs.empty()) {
    out += "\nH2 - H3 deltas (positive = H3 saved time in that phase):\n";
    std::snprintf(line, sizeof line, "%-30s %9s", "site", "d_plt");
    out += line;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      std::snprintf(line, sizeof line, " %9s", to_string(static_cast<Phase>(i)));
      out += line;
    }
    out += '\n';
    for (const auto& diff : report.diffs) {
      std::string label = diff.site;
      if (!diff.pair.empty()) label += " @" + diff.pair;
      if (label.size() > 30) label = label.substr(0, 29) + "~";
      std::snprintf(line, sizeof line, "%-30s %9.1f", label.c_str(), diff.plt_delta_ms);
      out += line;
      for (std::size_t i = 0; i < kPhaseCount; ++i) {
        std::snprintf(line, sizeof line, " %9.1f", diff.delta.ms[i]);
        out += line;
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace h3cdn::obs
