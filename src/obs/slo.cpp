#include "obs/slo.h"

#include <algorithm>
#include <optional>

#include "util/check.h"
#include "util/json.h"

namespace h3cdn::obs {

const char* to_string(SloSignal s) {
  switch (s) {
    case SloSignal::HistogramQuantile: return "histogram_quantile";
    case SloSignal::CounterTotal: return "counter_total";
    case SloSignal::GaugeLast: return "gauge_last";
  }
  return "?";
}

std::vector<SloObjective> default_slo_objectives() {
  std::vector<SloObjective> out;
  {
    SloObjective o;
    o.name = "plt-p95-under-2s";
    o.series = "load.plt_ms";
    o.signal = SloSignal::HistogramQuantile;
    o.quantile = 0.95;
    o.threshold = 2000.0;
    o.error_budget = 0.20;
    out.push_back(std::move(o));
  }
  {
    SloObjective o;
    o.name = "no-failed-visits";
    o.series = "load.visits_failed";
    o.signal = SloSignal::CounterTotal;
    o.threshold = 0.0;  // any failed visit makes the window bad
    o.error_budget = 0.10;
    out.push_back(std::move(o));
  }
  {
    SloObjective o;
    o.name = "dns-p99-under-500ms";
    o.series = "dns.resolve_ms";
    o.signal = SloSignal::HistogramQuantile;
    o.quantile = 0.99;
    o.threshold = 500.0;
    o.error_budget = 0.10;
    out.push_back(std::move(o));
  }
  {
    SloObjective o;
    o.name = "accept-queue-under-32";
    o.series = "load.queue_depth";
    o.signal = SloSignal::GaugeLast;
    o.threshold = 32.0;
    o.error_budget = 0.10;
    out.push_back(std::move(o));
  }
  return out;
}

namespace {

/// Signal value of one window, or nullopt when the window is empty.
std::optional<double> window_signal(const TimelineRecorder& recorder, const SloObjective& o,
                                    std::int64_t window) {
  switch (o.signal) {
    case SloSignal::HistogramQuantile: {
      const auto series = recorder.histograms().find(o.series);
      if (series == recorder.histograms().end()) return std::nullopt;
      const auto bucket = series->second.find(window);
      if (bucket == series->second.end() || bucket->second.count() == 0) return std::nullopt;
      return bucket->second.percentile(o.quantile);
    }
    case SloSignal::CounterTotal: {
      const auto series = recorder.counters().find(o.series);
      if (series == recorder.counters().end()) return std::nullopt;
      // A counter that exists classifies EVERY window: zero increments in a
      // window is a real measurement ("nothing failed"), not missing data.
      const auto bucket = series->second.find(window);
      return bucket == series->second.end() ? 0.0 : static_cast<double>(bucket->second);
    }
    case SloSignal::GaugeLast: {
      const auto series = recorder.gauges().find(o.series);
      if (series == recorder.gauges().end()) return std::nullopt;
      const auto bucket = series->second.find(window);
      if (bucket == series->second.end()) return std::nullopt;
      return bucket->second.last;
    }
  }
  return std::nullopt;
}

/// Burn rate over the trailing `range` windows ending at `last` (inclusive):
/// bad fraction among classified windows, divided by the error budget. A
/// trailing range with no classified window burns nothing.
double trailing_burn(const std::vector<int>& verdicts, std::size_t last, std::size_t range,
                     double error_budget) {
  const std::size_t first = last + 1 >= range ? last + 1 - range : 0;
  std::size_t bad = 0;
  std::size_t classified = 0;
  for (std::size_t w = first; w <= last; ++w) {
    if (verdicts[w] < 0) continue;  // empty
    ++classified;
    bad += verdicts[w] > 0 ? 1 : 0;
  }
  if (classified == 0) return 0.0;
  const double fraction = static_cast<double>(bad) / static_cast<double>(classified);
  return fraction / std::max(error_budget, 1e-9);
}

SloResult evaluate_one(const TimelineRecorder& recorder, const SloObjective& o,
                       std::int64_t span) {
  SloResult r;
  r.objective = o;
  r.windows = static_cast<std::size_t>(span);
  if (span == 0) {
    r.no_data = true;
    return r;
  }

  // Verdict per window: -1 empty, 0 good, 1 bad.
  std::vector<int> verdicts(r.windows, -1);
  bool any = false;
  for (std::int64_t w = 0; w < span; ++w) {
    const auto signal = window_signal(recorder, o, w);
    if (!signal.has_value()) {
      ++r.empty_windows;
      continue;
    }
    any = true;
    const bool good = o.upper_bound ? *signal <= o.threshold : *signal >= o.threshold;
    verdicts[static_cast<std::size_t>(w)] = good ? 0 : 1;
    if (!good) ++r.bad_windows;
    const bool more_violating =
        !r.has_worst || (o.upper_bound ? *signal > r.worst_value : *signal < r.worst_value);
    if (more_violating) {
      r.worst_value = *signal;
      r.has_worst = true;
    }
  }
  if (!any) {
    r.no_data = true;
    return r;
  }

  const std::size_t classified = r.windows - r.empty_windows;
  r.bad_fraction = static_cast<double>(r.bad_windows) / static_cast<double>(std::max<std::size_t>(classified, 1));
  r.breached = r.bad_fraction > o.error_budget;

  // Multi-window burn sweep. Window lengths clamp to the available span, so
  // a single-bucket run still evaluates (short == long == 1 window).
  for (std::size_t w = 0; w < r.windows; ++w) {
    const double short_burn = trailing_burn(verdicts, w, std::max<std::size_t>(o.short_windows, 1),
                                            o.error_budget);
    const double long_burn = trailing_burn(verdicts, w, std::max<std::size_t>(o.long_windows, 1),
                                           o.error_budget);
    r.max_short_burn = std::max(r.max_short_burn, short_burn);
    r.max_long_burn = std::max(r.max_long_burn, long_burn);
    if (short_burn >= o.short_burn_threshold && long_burn >= o.long_burn_threshold) {
      r.burn_alert = true;
    }
  }
  return r;
}

}  // namespace

std::vector<SloResult> evaluate_slos(const TimelineRecorder& recorder,
                                     const std::vector<SloObjective>& objectives) {
  const std::int64_t span = recorder.span_buckets();
  std::vector<SloResult> out;
  out.reserve(objectives.size());
  for (const SloObjective& o : objectives) out.push_back(evaluate_one(recorder, o, span));
  return out;
}

std::string slo_to_json(const TimelineRecorder& recorder, const std::vector<SloResult>& results) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("bucket_ms", to_ms(recorder.bucket_width()));
  w.kv("span_buckets", recorder.span_buckets());
  w.key("objectives").begin_array();
  for (const SloResult& r : results) {
    const SloObjective& o = r.objective;
    w.begin_object();
    w.kv("name", o.name);
    w.kv("series", o.series);
    w.kv("signal", to_string(o.signal));
    if (o.signal == SloSignal::HistogramQuantile) w.kv("quantile", o.quantile);
    w.kv("threshold", o.threshold);
    w.kv("upper_bound", o.upper_bound);
    w.kv("error_budget", o.error_budget);
    w.kv("short_windows", static_cast<std::uint64_t>(o.short_windows));
    w.kv("long_windows", static_cast<std::uint64_t>(o.long_windows));
    w.kv("short_burn_threshold", o.short_burn_threshold);
    w.kv("long_burn_threshold", o.long_burn_threshold);
    w.kv("windows", static_cast<std::uint64_t>(r.windows));
    w.kv("empty_windows", static_cast<std::uint64_t>(r.empty_windows));
    w.kv("bad_windows", static_cast<std::uint64_t>(r.bad_windows));
    w.kv("bad_fraction", r.bad_fraction);
    if (r.has_worst) w.kv("worst_value", r.worst_value);
    w.kv("max_short_burn", r.max_short_burn);
    w.kv("max_long_burn", r.max_long_burn);
    w.kv("burn_alert", r.burn_alert);
    w.kv("breached", r.breached);
    w.kv("no_data", r.no_data);
    w.kv("passed", r.passed());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace h3cdn::obs
