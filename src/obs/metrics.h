// Run-wide metrics registry: named counters, gauges, and log-bucketed
// HDR-style histograms that every simulator layer (net, transport, tls, dns,
// http, cdn, browser, sim) registers into.
//
// Design rules:
//   * Instrumentation is zero-cost when disabled. No registry is installed by
//     default; the obs::count/observe helpers compile to a single pointer
//     null-check in that case. Benchmarks hold the hot paths to < 2% overhead
//     versus un-instrumented code.
//   * Each simulator shard is single-threaded and records into its own
//     registry, so metrics are plain integers — no atomics, no locks,
//     bit-reproducible given a deterministic run. The installed-registry
//     pointer is thread_local: a shard task installs its private registry on
//     the worker thread it runs on, and the study merges shard registries in
//     canonical shard order afterwards (merge_from), which keeps parallel
//     runs byte-identical to sequential ones. See docs/PARALLELISM.md.
//   * Naming convention: `<layer>.<subsystem>.<metric>` with the layer
//     prefix taken from the source directory (net., transport., tls., dns.,
//     http., cdn., browser., sim.). docs/OBSERVABILITY.md lists every series.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/types.h"

namespace h3cdn::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

  /// Shard merge: counts add. Exact (integer), so merge order is irrelevant.
  void merge_from(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

  /// Shard merge: last-writer-wins in merge order. Callers merge shards in
  /// canonical shard order, so the merged value is the last shard's — the
  /// same value a sequential run would have ended with.
  void merge_from(const Gauge& other) { value_ = other.value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed histogram in the spirit of HDR histograms: geometric buckets
/// with ~9% relative width, so percentile readouts are within one bucket
/// (<= +9%/-0%) of the exact sample quantile while insertion is O(1) and
/// memory is bounded regardless of sample count.
class Histogram {
 public:
  /// Values at or below the resolution floor land in the underflow bucket.
  static constexpr double kMinValue = 1e-3;
  /// Geometric bucket growth: 2^(1/8) per bucket (~9.05%).
  static constexpr double kGrowth = 1.0905077326652577;

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Percentile estimate, q in [0,1]: the upper bound of the bucket holding
  /// the rank-q sample, clamped to the observed [min, max]. Within one bucket
  /// width (~9%) of the exact sample quantile.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p90() const { return percentile(0.90); }
  [[nodiscard]] double p99() const { return percentile(0.99); }
  [[nodiscard]] double p999() const { return percentile(0.999); }

  /// Shard merge: bucket counts, count, min and max combine exactly, so
  /// percentiles of a merged histogram equal those of single-registry
  /// recording regardless of how samples were split across shards. `sum` is
  /// a float accumulation whose value depends on merge order only — merging
  /// shards in canonical order therefore yields one reproducible result for
  /// any job count.
  void merge_from(const Histogram& other);

 private:
  [[nodiscard]] std::size_t bucket_index(double v) const;
  [[nodiscard]] double bucket_upper(std::size_t index) const;

  std::vector<std::uint64_t> buckets_;  // [0] = underflow (v <= kMinValue)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One run's named metrics. Metric objects are owned by the registry and
/// their addresses are stable for its lifetime; lookups create on first use.
/// Iteration order is the lexicographic name order (deterministic exports).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

  /// Number of distinct named series (counters + gauges + histograms).
  [[nodiscard]] std::size_t series_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  void clear();

  /// Folds `other` into this registry: counters and histogram buckets add,
  /// gauges take `other`'s value (last-writer in merge order), series missing
  /// here are created. Merging every shard in canonical shard order
  /// reproduces, series for series, what one shared registry would have
  /// recorded sequentially (histogram `sum` is reproducible per merge order;
  /// see Histogram::merge_from).
  void merge_from(const MetricsRegistry& other);

  /// The registry installed on the *current thread* that instrumentation
  /// hooks report into, or nullptr when observability is disabled (the
  /// default). Thread-local so concurrent shard tasks each record into their
  /// own sink.
  [[nodiscard]] static MetricsRegistry* global();

  /// Installs `registry` (may be nullptr to disable); returns the previous
  /// one. Prefer ScopedMetrics for exception-safe install/restore.
  static MetricsRegistry* set_global(MetricsRegistry* registry);

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

namespace detail {
/// Per-thread registry pointer. Lives in the header as an inline variable so
/// global() inlines into the instrumentation hooks — the disabled path must
/// be one thread-local load + one branch, not a function call. thread_local
/// (rather than a single process-wide pointer) is what lets shard tasks on a
/// ThreadPool each install their own registry without locking.
inline thread_local MetricsRegistry* g_metrics_registry = nullptr;
}  // namespace detail

inline MetricsRegistry* MetricsRegistry::global() { return detail::g_metrics_registry; }

inline MetricsRegistry* MetricsRegistry::set_global(MetricsRegistry* registry) {
  MetricsRegistry* previous = detail::g_metrics_registry;
  detail::g_metrics_registry = registry;
  return previous;
}

/// RAII install/restore of the current thread's registry. Install and
/// restore happen on the constructing thread; a shard task running on a pool
/// worker scopes its own registry without affecting other threads.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* registry)
      : previous_(MetricsRegistry::set_global(registry)) {}
  ~ScopedMetrics() { MetricsRegistry::set_global(previous_); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// True when a registry is installed (observability enabled).
[[nodiscard]] inline bool enabled() { return MetricsRegistry::global() != nullptr; }

// --- Instrumentation hooks: one null-check when observability is off. -------

inline void count(const char* name, std::uint64_t n = 1) {
  if (MetricsRegistry* r = MetricsRegistry::global()) r->counter(name).inc(n);
}

inline void gauge_set(const char* name, double v) {
  if (MetricsRegistry* r = MetricsRegistry::global()) r->gauge(name).set(v);
}

inline void observe(const char* name, double v) {
  if (MetricsRegistry* r = MetricsRegistry::global()) r->histogram(name).observe(v);
}

/// Records a simulated duration in fractional milliseconds.
inline void observe_ms(const char* name, Duration d) {
  if (MetricsRegistry* r = MetricsRegistry::global()) r->histogram(name).observe(to_ms(d));
}

// --- Exporters --------------------------------------------------------------

/// {"counters": {...}, "gauges": {...}, "histograms": {name: summary}}.
[[nodiscard]] std::string metrics_to_json(const MetricsRegistry& registry);

/// One row per series: `name,kind,field,value` (histograms expand to
/// count/sum/min/max/mean/p50/p90/p99/p999 rows).
[[nodiscard]] std::string metrics_to_csv(const MetricsRegistry& registry);

/// Prometheus text exposition format ('.'s become '_'s; histograms export as
/// summaries with quantile labels).
[[nodiscard]] std::string metrics_to_prometheus(const MetricsRegistry& registry);

}  // namespace h3cdn::obs
