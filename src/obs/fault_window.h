// Fault -> detection -> recovery annotation over a timeline.
//
// A chaos scenario scripts a fault window (an outage interval, or a
// whole-run condition like mid-transfer kills or a capacity storm). This
// module turns the scenario's TimelineRecorder into an MTTR annotation:
//
//   detection_ms  start of the first DEGRADED window at/after fault start
//                 (a window is degraded when any fault-signal counter —
//                 connection deaths, admission refusals, failed visits —
//                 incremented in it);
//   recovery_ms   end of the LAST degraded window: from that instant on the
//                 run never showed the fault again;
//   mttr_ms       recovery_ms - fault_start_ms, clamped to >= 0. A scenario
//                 whose fault never degraded anything (or scripted no fault)
//                 recovers instantly: MTTR = 0. MTTR is therefore always
//                 finite — the h3cdn_obs_report --check contract.
//
// Breaker reaction times come from the resilience.breaker.* timeline series:
// time-to-open is the first window with an `opened` transition minus fault
// start, time-to-close the first window with a `closed` transition after it.
#pragma once

#include <string>
#include <vector>

#include "obs/timeline.h"

namespace h3cdn::obs {

/// The scripted fault interval of one scenario, in sim-time milliseconds.
struct FaultWindowSpec {
  std::string scenario;
  bool faulted = false;  // false: fault-free cell (baseline)
  double start_ms = 0.0;
  double end_ms = 0.0;  // end of the scripted fault condition
};

struct FaultAnnotation {
  std::string scenario;
  bool faulted = false;
  double fault_start_ms = 0.0;
  double fault_end_ms = 0.0;
  std::size_t degraded_windows = 0;  // windows with >= 1 fault-signal increment
  double detection_ms = -1.0;        // -1: never degraded
  double recovery_ms = -1.0;         // -1: never degraded
  double mttr_ms = 0.0;              // always finite, >= 0
  double time_to_breaker_open_ms = -1.0;   // -1: no breaker opened
  double time_to_breaker_close_ms = -1.0;  // -1: no breaker closed
};

/// The counter series whose increments mark a window as degraded.
[[nodiscard]] const std::vector<std::string>& fault_signal_series();

/// Computes the annotation for one scenario cell's private timeline.
[[nodiscard]] FaultAnnotation annotate_fault_recovery(const TimelineRecorder& timeline,
                                                      const FaultWindowSpec& spec);

/// {"annotations": [...]} — the fault_recovery.json artifact body.
[[nodiscard]] std::string fault_annotations_to_json(const std::vector<FaultAnnotation>& annotations,
                                                    double bucket_ms);

}  // namespace h3cdn::obs
