#include "obs/perfetto.h"

#include "util/json.h"

namespace h3cdn::obs {

namespace {

constexpr double kUsPerMs = 1000.0;

/// Metadata event naming a process or thread track.
void write_metadata(util::JsonWriter& w, const char* what, std::int64_t pid, std::int64_t tid,
                    const std::string& name) {
  w.begin_object();
  w.kv("ph", "M");
  w.kv("name", what);
  w.kv("pid", pid);
  w.kv("tid", tid);
  w.key("args").begin_object();
  w.kv("name", name);
  w.end_object();
  w.end_object();
}

/// Complete span ("X"): ts/dur in microseconds.
void begin_span(util::JsonWriter& w, const std::string& name, const char* category,
                std::int64_t pid, std::int64_t tid, double start_ms, double duration_ms) {
  w.begin_object();
  w.kv("ph", "X");
  w.kv("name", name);
  w.kv("cat", category);
  w.kv("pid", pid);
  w.kv("tid", tid);
  w.kv("ts", start_ms * kUsPerMs);
  w.kv("dur", duration_ms * kUsPerMs);
}

void write_page(util::JsonWriter& w, const Waterfall& page, std::int64_t pid) {
  std::string process_name = page.site;
  if (!page.vantage.empty()) process_name += " [" + page.vantage + "]";
  write_metadata(w, "process_name", pid, 0, process_name);
  write_metadata(w, "thread_name", pid, 0, "page");

  begin_span(w, "page-load: " + page.site, "page", pid, 0, 0.0, page.page_load_time_ms);
  w.key("args").begin_object();
  w.kv("h3_enabled", page.h3_enabled);
  w.kv("resources", static_cast<std::uint64_t>(page.entries.size()));
  w.kv("connections_created", page.connections_created);
  w.kv("connection_deaths", page.connection_deaths);
  w.kv("h3_fallbacks", page.h3_fallbacks);
  w.end_object();
  w.end_object();

  for (const WaterfallEntry& e : page.entries) {
    const std::int64_t tid = static_cast<std::int64_t>(e.connection_id) + 1;
    write_metadata(w, "thread_name", pid, tid, "conn " + std::to_string(e.connection_id));
    begin_span(w, e.url, e.failed ? "request.failed" : "request", pid, tid, e.start_ms,
               e.total_ms());
    w.key("args").begin_object();
    w.kv("protocol", e.protocol);
    w.kv("type", e.type);
    w.kv("domain", e.domain);
    w.kv("dns_ms", e.dns_ms);
    w.kv("blocked_ms", e.blocked_ms);
    w.kv("connect_ms", e.connect_ms);
    w.kv("wait_ms", e.wait_ms);
    w.kv("receive_ms", e.receive_ms);
    w.kv("response_bytes", e.response_bytes);
    w.kv("reused_connection", e.reused_connection);
    w.kv("from_cache", e.from_cache);
    if (!e.annotation.empty()) w.kv("annotation", e.annotation);
    w.end_object();
    w.end_object();
  }
}

bool is_fault_bus_event(trace::EventType t) {
  switch (t) {
    case trace::EventType::ConnectionAborted:
    case trace::EventType::FallbackTriggered:
    case trace::EventType::H3BrokenMarked:
    case trace::EventType::H3ReProbe:
      return true;
    default:
      return false;
  }
}

void write_fault_track(util::JsonWriter& w, const TraceAggregator& traces) {
  bool named = false;
  for (const TraceAggregator::BusEvent& bus : traces.merged_events()) {
    if (!is_fault_bus_event(bus.event.type)) continue;
    if (!named) {
      write_metadata(w, "process_name", 0, 0, "faults");
      write_metadata(w, "thread_name", 0, 0, "fault bus");
      named = true;
    }
    w.begin_object();
    w.kv("ph", "i");
    w.kv("name", trace::to_string(bus.event.type));
    w.kv("cat", "fault");
    w.kv("s", "g");  // global-scope instant: draws a full-height marker
    w.kv("pid", 0);
    w.kv("tid", 0);
    w.kv("ts", to_ms(bus.event.at - TimePoint{0}) * kUsPerMs);
    w.key("args").begin_object();
    if (bus.label != nullptr) w.kv("trace", *bus.label);
    if (bus.event.fault != trace::FaultKind::None) {
      w.kv("fault_kind", trace::to_string(bus.event.fault));
    }
    w.end_object();
    w.end_object();
  }
}

}  // namespace

std::string to_chrome_trace_json(const std::vector<Waterfall>& waterfalls,
                                 const TraceAggregator* traces) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (std::size_t i = 0; i < waterfalls.size(); ++i) {
    write_page(w, waterfalls[i], static_cast<std::int64_t>(i) + 1);
  }
  if (traces != nullptr) write_fault_track(w, *traces);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace h3cdn::obs
