#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/json.h"

namespace h3cdn::obs {

void Histogram::observe(double v) {
  if (std::isnan(v)) return;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  const std::size_t index = bucket_index(v);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
}

std::size_t Histogram::bucket_index(double v) const {
  if (v <= kMinValue) return 0;
  // Bucket i > 0 covers (kMinValue * kGrowth^(i-1), kMinValue * kGrowth^i].
  const double exact = std::log(v / kMinValue) / std::log(kGrowth);
  auto index = static_cast<std::size_t>(std::ceil(exact - 1e-9));
  return std::max<std::size_t>(index, 1);
}

double Histogram::bucket_upper(std::size_t index) const {
  if (index == 0) return kMinValue;
  return kMinValue * std::pow(kGrowth, static_cast<double>(index));
}

double Histogram::percentile(double q) const {
  H3CDN_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  // Nearest-rank: the smallest bucket whose cumulative count covers rank.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::clamp(bucket_upper(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).merge_from(*c);
  for (const auto& [name, g] : other.gauges_) gauge(name).merge_from(*g);
  for (const auto& [name, h] : other.histograms_) histogram(name).merge_from(*h);
}

namespace {

void write_histogram_summary(util::JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  if (h.count() == 0) {
    // No samples means no distribution: exporting zero-filled quantiles would
    // fabricate data (a 0 ms p99 reads as "fast", not "never happened").
    w.end_object();
    return;
  }
  w.kv("sum", h.sum());
  w.kv("min", h.min());
  w.kv("max", h.max());
  w.kv("mean", h.mean());
  w.kv("p50", h.p50());
  w.kv("p90", h.p90());
  w.kv("p99", h.p99());
  w.kv("p999", h.p999());
  w.end_object();
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  // Metric names must not start with a digit ([a-zA-Z_:] first), which an
  // arbitrary registry key can violate after sanitization.
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  if (out.empty()) out = "_";
  return out;
}

/// HELP text escaping per the exposition format: backslash and newline only.
std::string prometheus_help_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Label VALUE escaping: backslash, newline, and double quote.
std::string prometheus_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string metrics_to_json(const MetricsRegistry& registry) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("series_count", static_cast<std::uint64_t>(registry.series_count()));
  w.key("counters").begin_object();
  for (const auto& [name, c] : registry.counters()) w.kv(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : registry.gauges()) w.kv(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : registry.histograms()) {
    w.key(name);
    write_histogram_summary(w, *h);
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string metrics_to_csv(const MetricsRegistry& registry) {
  std::string out = "name,kind,field,value\n";
  for (const auto& [name, c] : registry.counters()) {
    out += name + ",counter,value," + std::to_string(c->value()) + '\n';
  }
  for (const auto& [name, g] : registry.gauges()) {
    out += name + ",gauge,value," + format_double(g->value()) + '\n';
  }
  for (const auto& [name, h] : registry.histograms()) {
    const auto row = [&](const char* field, double v) {
      out += name + ",histogram," + field + ',' + format_double(v) + '\n';
    };
    out += name + ",histogram,count," + std::to_string(h->count()) + '\n';
    if (h->count() == 0) continue;  // count only: no samples, no quantiles
    row("sum", h->sum());
    row("min", h->min());
    row("max", h->max());
    row("mean", h->mean());
    row("p50", h->p50());
    row("p90", h->p90());
    row("p99", h->p99());
    row("p999", h->p999());
  }
  return out;
}

std::string metrics_to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, c] : registry.counters()) {
    const std::string pname = prometheus_name(name);
    out += "# HELP " + pname + " Simulated-run counter " + prometheus_help_escape(name) + ".\n";
    out += "# TYPE " + pname + " counter\n";
    out += pname + ' ' + std::to_string(c->value()) + '\n';
  }
  for (const auto& [name, g] : registry.gauges()) {
    const std::string pname = prometheus_name(name);
    out += "# HELP " + pname + " Simulated-run gauge " + prometheus_help_escape(name) + ".\n";
    out += "# TYPE " + pname + " gauge\n";
    out += pname + ' ' + format_double(g->value()) + '\n';
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string pname = prometheus_name(name);
    out += "# HELP " + pname + " Simulated-run distribution " + prometheus_help_escape(name) +
           ".\n";
    out += "# TYPE " + pname + " summary\n";
    if (h->count() > 0) {  // quantiles of an empty summary would be fabricated
      const auto quantile = [&](const char* q, double v) {
        out += pname + "{quantile=\"" + prometheus_label_escape(q) + "\"} " +
               format_double(v) + '\n';
      };
      quantile("0.5", h->p50());
      quantile("0.9", h->p90());
      quantile("0.99", h->p99());
      quantile("0.999", h->p999());
      out += pname + "_sum " + format_double(h->sum()) + '\n';
    }
    out += pname + "_count " + std::to_string(h->count()) + '\n';
  }
  return out;
}

}  // namespace h3cdn::obs
