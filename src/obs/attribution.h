// Page-level attribution aggregation on top of obs/critical_path.h: one
// PhaseVector per page load, H2-vs-H3 diffs that align the SAME page across
// protocol modes (where did the PLT delta come from?), and per-group means.
// Exported as JSON and as an ASCII bar breakdown by h3cdn_obs_report
// --attribution; the additive invariants (page phases sum to PLT, diff
// deltas sum to the PLT delta) are enforced by --check.
#pragma once

#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/waterfall.h"

namespace h3cdn::obs {

/// One page load's attribution row.
struct PageAttribution {
  std::string site;
  std::string run;        // study run label (Waterfall::vantage; "" standalone)
  std::string protocol;   // "h2" or "h3" (browser mode of the visit)
  double plt_ms = 0.0;
  PhaseVector phases;     // sums to plt_ms (±1 µs)
};

/// The same page aligned across H2 and H3 runs: per-phase deltas (H2 − H3,
/// positive = H3 saved time there) summing to the PLT delta.
struct PageDiff {
  std::string site;
  std::string pair;       // run label with the trailing /h2 | /h3 stripped
  double h2_plt_ms = 0.0;
  double h3_plt_ms = 0.0;
  double plt_delta_ms = 0.0;  // h2 − h3
  PhaseVector delta;          // h2 − h3, per phase
};

struct AttributionReport {
  std::vector<PageAttribution> pages;  // waterfall input order
  std::vector<PageDiff> diffs;         // h2-page order among paired pages
};

/// Runs critical-path analysis over every waterfall and pairs H2/H3 visits
/// of the same site. Pairing key: (site, run label minus its trailing "/h2"
/// or "/h3" mode suffix — the study engine's labelling convention); the
/// first H2 and first H3 page per key are diffed.
[[nodiscard]] AttributionReport attribute_pages(const std::vector<Waterfall>& waterfalls);

/// {"attribution": {"pages": [...], "diffs": [...]}}.
[[nodiscard]] std::string attribution_to_json(const AttributionReport& report);

/// Per-page stacked phase bars plus a diff table, for terminals.
[[nodiscard]] std::string attribution_to_ascii(const AttributionReport& report,
                                               std::size_t width = 100);

}  // namespace h3cdn::obs
