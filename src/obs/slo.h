// SLO specification and evaluator over timeline series.
//
// An SloObjective names one timeline series and a per-window threshold on a
// signal derived from it (a histogram quantile, a counter's window total, or
// a gauge's last window value). The evaluator walks the dense window range
// [0, span) classifying each window as good / bad / empty, then runs a
// Google-SRE-style MULTI-WINDOW BURN-RATE sweep: at every window it computes
// the error-budget burn over a short and a long trailing range — burn =
// (bad-window fraction in the range) / error_budget — and raises the paging
// alert only when BOTH exceed their thresholds at the same instant (the
// short window gives fast detection, the long window filters blips).
//
// Evaluation is pure arithmetic over the recorder's deterministic buckets,
// so slo.json is byte-identical at any --jobs value like every other
// artifact. Empty windows are excluded from good/bad accounting (a window in
// which nothing was measured is evidence of nothing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeline.h"

namespace h3cdn::obs {

/// Which per-window signal the threshold applies to.
enum class SloSignal {
  HistogramQuantile,  // quantile `q` of the window's histogram samples
  CounterTotal,       // the counter's increment total in the window
  GaugeLast,          // the last gauge value written in the window
};

[[nodiscard]] const char* to_string(SloSignal s);

struct SloObjective {
  std::string name;    // stable kebab-case id ("plt-p95-under-2s")
  std::string series;  // timeline series the signal reads
  SloSignal signal = SloSignal::HistogramQuantile;
  double quantile = 0.95;  // HistogramQuantile only
  double threshold = 0.0;
  bool upper_bound = true;  // true: window is good when signal <= threshold

  /// Fraction of (non-empty) windows allowed to be bad before the objective
  /// is breached; also the denominator of every burn rate.
  double error_budget = 0.10;

  // Multi-window burn-rate alert: trailing range lengths in windows and the
  // burn thresholds both must exceed simultaneously.
  std::size_t short_windows = 4;
  std::size_t long_windows = 16;
  double short_burn_threshold = 4.0;
  double long_burn_threshold = 1.0;
};

/// One objective's verdict over a timeline.
struct SloResult {
  SloObjective objective;
  std::size_t windows = 0;        // evaluated span (timeline span_buckets)
  std::size_t empty_windows = 0;  // windows without a sample for the series
  std::size_t bad_windows = 0;
  double bad_fraction = 0.0;  // bad / max(1, windows - empty)
  double worst_value = 0.0;   // most-violating signal value seen
  bool has_worst = false;     // false when every window was empty
  double max_short_burn = 0.0;
  double max_long_burn = 0.0;
  bool burn_alert = false;  // short AND long burn over threshold at one instant
  bool breached = false;    // bad_fraction > error_budget
  bool no_data = false;     // the series never appeared (or span == 0)

  [[nodiscard]] bool passed() const { return !breached && !burn_alert; }
};

/// The shipped objectives: PLT tail, visit failures, DNS latency tail, and
/// server queue depth — the budget the chaos/load scenarios are judged
/// against. Thresholds are generous for fault-free runs and expected to be
/// breached by the harsher chaos cells (that is what the report shows).
[[nodiscard]] std::vector<SloObjective> default_slo_objectives();

/// Evaluates every objective over the recorder's dense window range.
[[nodiscard]] std::vector<SloResult> evaluate_slos(const TimelineRecorder& recorder,
                                                   const std::vector<SloObjective>& objectives);

/// {"bucket_ms", "objectives": [{spec..., verdict...}]}.
[[nodiscard]] std::string slo_to_json(const TimelineRecorder& recorder,
                                      const std::vector<SloResult>& results);

}  // namespace h3cdn::obs
