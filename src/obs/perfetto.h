// Chrome-trace (Perfetto-loadable) span export of page and request
// lifecycles. The Trace Event Format is the JSON dialect chrome://tracing
// and ui.perfetto.dev both ingest: {"displayTimeUnit":"ms","traceEvents":
// [...]} where each complete span is a phase-"X" event with microsecond
// `ts`/`dur`.
//
// Mapping:
//   * pid = page index + 1; each Waterfall becomes one process whose name is
//     "<site> [vantage]". tid 0 carries the page-load span; each resource
//     fetch becomes a span on tid = connection_id + 1, so rows group by the
//     pooled connection that served them — connection reuse and coalescing
//     are visible as stacked spans on one track.
//   * Fault-bus events from the TraceAggregator (connection aborts,
//     fallbacks, H3-broken marks, re-probes) export as instant ("i") events
//     on pid 0, the shared fault track, so they line up against every page.
//
// Deterministic: iteration follows waterfall / merged_events order, both of
// which are canonical after shard merge.
#pragma once

#include <string>
#include <vector>

#include "obs/trace_hub.h"
#include "obs/waterfall.h"

namespace h3cdn::obs {

/// The full trace document. `traces` may be null (no fault track).
[[nodiscard]] std::string to_chrome_trace_json(const std::vector<Waterfall>& waterfalls,
                                               const TraceAggregator* traces);

}  // namespace h3cdn::obs
