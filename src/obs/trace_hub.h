// TraceAggregator: run-level merge of many ConnectionTraces.
//
// Individual connections record qlog-style events into their own
// ConnectionTrace; a study run touches dozens of connections across pools and
// vantage points. The aggregator owns (or adopts) those traces and merges
// them into a single multi-trace qlog document, so packet-level events and
// pool-level events (FallbackTriggered, H3BrokenMarked — recorded into a
// dedicated "bus" trace per pool) share one timeline and one file.
//
// Traces registered here stay live for the whole run via shared_ptr, even
// after the owning Connection/Pool is destroyed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace h3cdn::obs {

class TraceAggregator {
 public:
  struct NamedTrace {
    std::string label;
    std::shared_ptr<trace::ConnectionTrace> trace;
  };

  /// One aggregated event with its source trace attached — the cross-
  /// connection "event bus" view.
  struct BusEvent {
    const std::string* label = nullptr;  // owning NamedTrace's label
    trace::Event event;
  };

  TraceAggregator() = default;
  TraceAggregator(const TraceAggregator&) = delete;
  TraceAggregator& operator=(const TraceAggregator&) = delete;

  /// Creates, registers, and returns a new trace. `capacity` bounds its ring
  /// buffer (0 = unbounded).
  std::shared_ptr<trace::ConnectionTrace> make_trace(std::string label, std::size_t capacity = 0);

  /// Registers an externally created trace under `label`.
  void add(std::string label, std::shared_ptr<trace::ConnectionTrace> trace);

  /// Adopts every trace of `other` (which is left empty), appended after the
  /// traces already registered here. Shard aggregators merged in canonical
  /// shard order yield the same trace order a sequential run registers, so
  /// to_qlog_json() is independent of execution interleaving. Shard labels
  /// (vantage/probe/mode prefixes) keep per-shard connection ids stable and
  /// collision-free across shards.
  void merge_from(TraceAggregator&& other);

  [[nodiscard]] const std::vector<NamedTrace>& traces() const { return traces_; }
  [[nodiscard]] std::size_t trace_count() const { return traces_.size(); }

  /// Total events currently buffered across all registered traces.
  [[nodiscard]] std::size_t event_count() const;

  /// Total events discarded by ring buffers across all registered traces.
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// All events from all traces merged into one timeline, sorted by simulated
  /// time (ties keep registration order — stable for deterministic runs).
  [[nodiscard]] std::vector<BusEvent> merged_events() const;

  /// One qlog document holding every registered trace:
  /// {"qlog_format":"JSON","qlog_version":"0.4","traces":[...]}.
  [[nodiscard]] std::string to_qlog_json() const;

  void clear() { traces_.clear(); }

 private:
  std::vector<NamedTrace> traces_;
};

}  // namespace h3cdn::obs
