// Critical-path PLT attribution (the paper's "why", §V-VI): walks the
// dependency DAG of a completed page visit — root document -> parser-
// discovered wave-0 resources -> wave-1 dependents, the initiator edges the
// browser records — and decomposes the page load time into an ADDITIVE
// phase-attribution vector. Aggregate PLT deltas ("H3 was 40 ms faster") say
// nothing about mechanism; this answers which milliseconds came from
// handshake round trips, which from cross-stream HoL stalls, and which from
// discovery idle time.
//
// The decomposition is exact by construction: a cursor sweeps [0, PLT] along
// the terminal entry's initiator chain, every swept interval is charged to
// exactly one phase, and uncovered time is charged to idle_gap — so
// sum(phases) == PLT to floating-point precision (h3cdn_obs_report --check
// enforces 1 µs). See docs/OBSERVABILITY.md for the phase taxonomy.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "obs/waterfall.h"

namespace h3cdn::obs {

/// The attribution phases, in report order.
enum class Phase : std::size_t {
  Dns,        // name resolution on the critical path
  TcpConnect, // TCP handshake round trip(s)
  TlsHs,      // TLS handshake round trip(s) on top of TCP
  QuicHs,     // QUIC combined transport+crypto handshake
  TtfbWait,   // request upload + server think + first-byte propagation
  Transfer,   // response bytes flowing, not stalled
  HolStall,   // response blocked behind ANOTHER stream's gap (TCP HoL)
  RetxWait,   // response blocked on the stream's own retransmission
  IdleGap,    // discovery stagger, queueing, and other uncovered time
};

inline constexpr std::size_t kPhaseCount = 9;

/// Short stable identifier ("dns", "tcp_connect", ...) used in JSON keys.
const char* to_string(Phase p);

/// Additive phase decomposition, milliseconds per phase.
struct PhaseVector {
  std::array<double, kPhaseCount> ms{};

  double& operator[](Phase p) { return ms[static_cast<std::size_t>(p)]; }
  double operator[](Phase p) const { return ms[static_cast<std::size_t>(p)]; }

  [[nodiscard]] double sum() const;

  PhaseVector& operator+=(const PhaseVector& o);
  PhaseVector& operator/=(double divisor);
  [[nodiscard]] PhaseVector operator-(const PhaseVector& o) const;
};

/// One page's attribution: the phase vector plus the walked path, with the
/// waterfall's QoE metrics (FCP, Speed-Index) alongside so one analysis pass
/// yields the full per-page feature set.
struct CriticalPathResult {
  double plt_ms = 0.0;
  PhaseVector phases;                // sums to plt_ms (±1 µs)
  QoeMetrics qoe;                    // compute_qoe(waterfall)
  std::vector<std::size_t> path;     // entry indices, root -> terminal
  // Per-hop decomposition for pages served through a relay chain
  // (src/topology/): by_hop[0] is the client-facing hop, by_hop[k] the k-th
  // relay's upstream fetch. Every attributed millisecond is charged to
  // exactly one hop AND to `phases`, so sum_h by_hop[h][p] == phases[p] for
  // every phase p, exactly — the per-hop dissections re-aggregate to the
  // end-to-end dissection by construction. Empty when the page never
  // traversed a relay (direct runs pay nothing).
  std::vector<PhaseVector> by_hop;
};

/// Decomposes one waterfall's PLT along its critical path. The chain is the
/// terminal (latest-finishing) entry followed backwards over initiator edges;
/// waterfalls without initiator data degrade gracefully (the terminal entry
/// alone is the path and undiscovered time lands in idle_gap).
[[nodiscard]] CriticalPathResult analyze_critical_path(const Waterfall& waterfall);

}  // namespace h3cdn::obs
