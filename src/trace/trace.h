// Connection event tracing in the spirit of qlog (draft-ietf-quic-qlog):
// every transport-level event (packet sent/received/acked/lost, recovery
// timer fires, congestion-window updates, handshake milestones, stream
// lifecycle) is recorded with its simulated timestamp and can be exported as
// qlog-flavoured JSON for inspection or visualization.
//
// Tracing is opt-in per connection (Connection::set_trace) and costs nothing
// when disabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace h3cdn::trace {

enum class EventType {
  HandshakeStarted,
  HandshakeFinished,
  StreamOpened,
  StreamFinished,
  PacketSent,
  PacketReceived,
  PacketAcked,
  PacketLost,
  Retransmission,
  RtoFired,
  CwndUpdated,
};

const char* to_string(EventType t);

struct Event {
  TimePoint at{0};
  EventType type = EventType::PacketSent;
  std::uint64_t packet_number = 0;  // when applicable
  std::uint64_t stream_id = 0;      // when applicable
  std::size_t bytes = 0;            // payload size, when applicable
  double cwnd = 0.0;                // packets, for CwndUpdated
  bool is_client_to_server = true;  // direction of the packet/stream data
};

/// One connection's event log.
class ConnectionTrace {
 public:
  void record(Event event);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t count(EventType type) const;
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Serializes as a qlog-flavoured JSON document: one trace with a flat
  /// event list of [time_ms, category, name, data] rows.
  [[nodiscard]] std::string to_qlog_json(const std::string& connection_label) const;

  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace h3cdn::trace
