// Connection event tracing in the spirit of qlog (draft-ietf-quic-qlog):
// every transport-level event (packet sent/received/acked/lost, recovery
// timer fires, congestion-window updates, handshake milestones, stream
// lifecycle) is recorded with its simulated timestamp and can be exported as
// qlog-flavoured JSON for inspection or visualization.
//
// Tracing is opt-in per connection (Connection::set_trace) and costs nothing
// when disabled. Long fault runs can bound trace memory with a ring-buffer
// capacity: the oldest events are discarded and counted in dropped_events().
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/types.h"

namespace h3cdn::util {
class JsonWriter;
}

namespace h3cdn::trace {

enum class EventType {
  HandshakeStarted,
  HandshakeFinished,
  StreamOpened,
  StreamFinished,
  PacketSent,
  PacketReceived,
  PacketAcked,
  PacketLost,
  Retransmission,
  RtoFired,
  CwndUpdated,
  // Fault injection & recovery (see docs/FAULTS.md).
  LinkDropped,        // a link-level fault mechanism ate a packet
  HandshakeRetry,     // handshake timer fired; attempt retransmitted
  ConnectionAborted,  // connection declared dead with a typed reason
  FallbackTriggered,  // pool re-submitted an orphaned request elsewhere
  H3BrokenMarked,     // host marked "H3 broken" after an H3 death
  H3ReProbe,          // broken mark expired; H3 re-attempted
  // Critical-path attribution (docs/OBSERVABILITY.md): a closed interval in
  // which a stream had response bytes buffered but undeliverable behind a
  // gap. `cross_stream` distinguishes TCP head-of-line blocking (the gap
  // belonged to another stream) from waiting on the stream's own
  // retransmission. Recorded when the span *ends*; `duration_ms` spans it.
  StreamStallSpan,
  // A closed interval in which a direction had data ready and congestion
  // window open but the CONNECTION-level flow-control window exhausted
  // (QUIC MAX_DATA starvation). Distinct from StreamStallSpan: nothing is
  // lost, the receiver simply has not granted credit yet. Recorded when
  // credit arrives; `duration_ms` spans the blocked interval.
  FlowControlStallSpan,
};

const char* to_string(EventType t);

/// Which fault mechanism an event is attributed to. None for ordinary events.
enum class FaultKind {
  None,
  Bernoulli,         // i.i.d. loss draw (baseline link loss or GE Good state)
  Burst,             // Gilbert-Elliott Bad-state loss
  Outage,            // scheduled blackout / UDP blackhole
  HandshakeTimeout,  // handshake retries exhausted
  Blackhole,         // consecutive-RTO deadness detector
  Refused,           // server admission refused the connection (edge at capacity)
};

const char* to_string(FaultKind k);

struct Event {
  TimePoint at{0};
  EventType type = EventType::PacketSent;
  std::uint64_t packet_number = 0;  // when applicable
  std::uint64_t stream_id = 0;      // when applicable
  std::size_t bytes = 0;            // payload size, when applicable
  double cwnd = 0.0;                // packets, for CwndUpdated
  double duration_ms = 0.0;         // span length, for StreamStallSpan
  bool cross_stream = false;        // StreamStallSpan: blocked by ANOTHER stream's gap
  bool is_client_to_server = true;  // direction of the packet/stream data
  FaultKind fault = FaultKind::None;  // for fault/recovery events
};

/// One connection's event log. `capacity` == 0 keeps every event; a positive
/// capacity turns the log into a ring buffer holding the most recent events
/// (long fault runs would otherwise grow the log unboundedly).
class ConnectionTrace {
 public:
  explicit ConnectionTrace(std::size_t capacity = 0) : capacity_(capacity) {}

  void record(Event event);

  /// Caps the event log; 0 restores unbounded growth. Shrinking below the
  /// current size discards the oldest events (counted as dropped).
  void set_capacity(std::size_t capacity);

  [[nodiscard]] const std::deque<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t count(EventType type) const;
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Events discarded by the ring buffer since construction/clear().
  [[nodiscard]] std::uint64_t dropped_events() const { return dropped_events_; }

  /// Serializes as a qlog-flavoured JSON document: one trace with a flat
  /// event list of [time_ms, category, name, data] rows.
  [[nodiscard]] std::string to_qlog_json(const std::string& connection_label) const;

  /// Writes this trace as one element of a qlog "traces" array — the building
  /// block obs::TraceAggregator uses to merge many connections into a single
  /// multi-trace document. Labels pass through util::JsonWriter escaping, so
  /// quotes/backslashes/control characters are safe.
  void write_qlog_trace(util::JsonWriter& w, const std::string& connection_label) const;

  void clear() {
    events_.clear();
    dropped_events_ = 0;
  }

 private:
  std::deque<Event> events_;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t dropped_events_ = 0;
};

}  // namespace h3cdn::trace
