#include "trace/trace.h"

#include "util/check.h"
#include "util/json.h"

namespace h3cdn::trace {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::HandshakeStarted: return "handshake_started";
    case EventType::HandshakeFinished: return "handshake_finished";
    case EventType::StreamOpened: return "stream_opened";
    case EventType::StreamFinished: return "stream_finished";
    case EventType::PacketSent: return "packet_sent";
    case EventType::PacketReceived: return "packet_received";
    case EventType::PacketAcked: return "packet_acked";
    case EventType::PacketLost: return "packet_lost";
    case EventType::Retransmission: return "packet_retransmitted";
    case EventType::RtoFired: return "loss_timer_fired";
    case EventType::CwndUpdated: return "congestion_window_updated";
    case EventType::LinkDropped: return "link_dropped";
    case EventType::HandshakeRetry: return "handshake_retry";
    case EventType::ConnectionAborted: return "connection_aborted";
    case EventType::FallbackTriggered: return "fallback_triggered";
    case EventType::H3BrokenMarked: return "h3_broken_marked";
    case EventType::H3ReProbe: return "h3_reprobe";
    case EventType::StreamStallSpan: return "stream_stall_span";
    case EventType::FlowControlStallSpan: return "flow_control_stall_span";
  }
  return "?";
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::Bernoulli: return "bernoulli";
    case FaultKind::Burst: return "burst";
    case FaultKind::Outage: return "outage";
    case FaultKind::HandshakeTimeout: return "handshake_timeout";
    case FaultKind::Blackhole: return "blackhole";
    case FaultKind::Refused: return "server_refused";
  }
  return "?";
}

namespace {

const char* category_of(EventType t) {
  switch (t) {
    case EventType::HandshakeStarted:
    case EventType::HandshakeFinished:
      return "security";
    case EventType::StreamOpened:
    case EventType::StreamFinished:
      return "http";
    case EventType::PacketLost:
    case EventType::Retransmission:
    case EventType::RtoFired:
    case EventType::CwndUpdated:
    case EventType::HandshakeRetry:
    case EventType::ConnectionAborted:
    case EventType::FallbackTriggered:
    case EventType::H3BrokenMarked:
    case EventType::H3ReProbe:
      return "recovery";
    case EventType::LinkDropped:
      return "fault";
    case EventType::StreamStallSpan:
    case EventType::FlowControlStallSpan:
      return "recovery";
    default:
      return "transport";
  }
}

}  // namespace

void ConnectionTrace::record(Event event) {
  H3CDN_EXPECTS(events_.empty() || event.at >= events_.back().at);
  if (capacity_ != 0 && events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_events_;
  }
  events_.push_back(event);
}

void ConnectionTrace::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  if (capacity_ == 0) return;
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_events_;
  }
}

std::size_t ConnectionTrace::count(EventType type) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += e.type == type;
  return n;
}

void ConnectionTrace::write_qlog_trace(util::JsonWriter& w,
                                       const std::string& connection_label) const {
  w.begin_object();
  w.key("common_fields").begin_object();
  w.kv("ODCID", connection_label);
  w.kv("time_format", "relative");
  if (dropped_events_ != 0) w.kv("dropped_events", dropped_events_);
  w.end_object();
  w.key("events").begin_array();
  for (const auto& e : events_) {
    w.begin_object();
    w.kv("time", to_ms(e.at));
    w.kv("category", category_of(e.type));
    w.kv("name", to_string(e.type));
    w.key("data").begin_object();
    switch (e.type) {
      case EventType::PacketSent:
      case EventType::PacketReceived:
      case EventType::PacketAcked:
      case EventType::PacketLost:
      case EventType::Retransmission:
        w.kv("packet_number", e.packet_number);
        w.kv("stream_id", e.stream_id);
        w.kv("payload_length", e.bytes);
        w.kv("direction", e.is_client_to_server ? "client_to_server" : "server_to_client");
        break;
      case EventType::CwndUpdated:
        w.kv("congestion_window_packets", e.cwnd);
        w.kv("direction", e.is_client_to_server ? "client_to_server" : "server_to_client");
        break;
      case EventType::StreamOpened:
      case EventType::StreamFinished:
        w.kv("stream_id", e.stream_id);
        w.kv("length", e.bytes);
        break;
      case EventType::HandshakeStarted:
      case EventType::HandshakeFinished:
        break;
      case EventType::RtoFired:
        w.kv("direction", e.is_client_to_server ? "client_to_server" : "server_to_client");
        break;
      case EventType::LinkDropped:
        w.kv("payload_length", e.bytes);
        w.kv("trigger", to_string(e.fault));
        break;
      case EventType::HandshakeRetry:
      case EventType::ConnectionAborted:
      case EventType::FallbackTriggered:
      case EventType::H3BrokenMarked:
      case EventType::H3ReProbe:
        w.kv("trigger", to_string(e.fault));
        break;
      case EventType::StreamStallSpan:
        w.kv("stream_id", e.stream_id);
        w.kv("blocked_bytes", e.bytes);
        w.kv("duration_ms", e.duration_ms);
        w.kv("kind", e.cross_stream ? "hol_blocking" : "retransmission_wait");
        break;
      case EventType::FlowControlStallSpan:
        w.kv("duration_ms", e.duration_ms);
        w.kv("direction", e.is_client_to_server ? "client_to_server" : "server_to_client");
        w.kv("kind", "connection_flow_control");
        break;
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string ConnectionTrace::to_qlog_json(const std::string& connection_label) const {
  util::JsonWriter w;
  w.begin_object();
  w.kv("qlog_format", "JSON");
  w.kv("qlog_version", "0.4");
  w.key("traces").begin_array();
  write_qlog_trace(w, connection_label);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace h3cdn::trace
