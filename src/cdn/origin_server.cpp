#include "cdn/origin_server.h"

namespace h3cdn::cdn {

OriginServer::OriginServer(util::Rng rng)
    : OriginServer(ProviderRegistry::get(ProviderId::None), rng) {}

OriginServer::OriginServer(const ProviderTraits& traits, util::Rng rng)
    : traits_(traits), rng_(rng) {}

Duration OriginServer::think_time(const std::string& /*key*/, http::HttpVersion version) {
  double ms = rng_.lognormal_median(to_ms(traits_.service_time_median),
                                    traits_.service_time_sigma);
  if (version == http::HttpVersion::H3) {
    ms += to_ms(traits_.h3_extra_service) * rng_.uniform(0.6, 1.4);
  }
  return from_ms(ms);
}

}  // namespace h3cdn::cdn
