// Edge server processing-time and capacity model.
//
// Produces the per-request "think time" (the server-side component of the
// HAR Wait phase). Components:
//   * base service time: lognormal around the provider's median (cache
//     lookup, response assembly);
//   * protocol overhead: H3's userspace QUIC + encryption costs extra CPU —
//     this is what makes the paper's median wait-reduction negative
//     (Fig. 6b, §VI-B, citing [37][38]);
//   * cache misses: an extra round trip to the origin;
//   * capacity (optional, see EdgeCapacityConfig): a bounded handshake
//     accept queue with per-handshake CPU cost differentiated for
//     TLS-over-TCP vs QUIC, a max-concurrent-connection admission limit,
//     and a finite worker-core pool so request service queues under load.
//
// The capacity model is pull-based and deterministic: it keeps no timers
// and never touches the Simulator. Callers pass the current sim time; the
// server prunes its queues against it and returns the extra delay the
// caller must model. This keeps EdgeServer shareable between thousands of
// virtual clients on one Simulator without any event plumbing.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "cdn/lru_cache.h"
#include "cdn/provider.h"
#include "http/types.h"
#include "tls/handshake.h"
#include "util/rng.h"
#include "util/types.h"

namespace h3cdn::cdn {

/// Server-capacity knobs. Disabled by default: the single-browser probe
/// experiments keep the idle-server behaviour (and byte-identical output)
/// they always had; the load subsystem (src/load/) switches it on.
struct EdgeCapacityConfig {
  bool enabled = false;

  /// Worker cores shared by request "think" work. Requests queue FIFO for
  /// the earliest-free core; queueing delay feeds the HAR Wait phase.
  int think_cores = 4;

  /// Handshakes are processed serially by one accept thread. A handshake
  /// arriving while this many are still queued is refused outright
  /// (SYN-backlog / Retry-token exhaustion analogue).
  std::size_t accept_queue_depth = 64;

  /// Admission limit on concurrently established connections (0 = off).
  /// Refusal is surfaced to the client as ConnectionError::Refused, which
  /// the HTTP pool retries with backoff.
  std::size_t max_concurrent_connections = 256;

  /// CPU cost of one full handshake on the accept thread. QUIC's costs
  /// more than TLS-over-TCP: userspace crypto, address validation, and
  /// first-flight key derivation (paper §VI-B; Trevisan et al. 2024).
  Duration handshake_cpu_tcp = usec(180);
  Duration handshake_cpu_quic = usec(300);

  /// Resumed/0-RTT handshakes skip the certificate path: fraction of the
  /// full CPU cost they still pay.
  double resumed_handshake_discount = 0.35;
};

class EdgeServer {
 public:
  EdgeServer(const ProviderTraits& traits, util::Rng rng, std::size_t cache_capacity = 65536,
             EdgeCapacityConfig capacity = {});

  /// Pre-populates the cache for a resource key with the provider's hit
  /// probability (models the paper's warm-up visit plus natural churn).
  void warm(const std::string& key);

  /// Server think time for one request. `now` is only consulted when the
  /// capacity model is enabled (it adds core-queueing delay); the default
  /// keeps legacy call sites exact.
  Duration think_time(const std::string& key, http::HttpVersion version,
                      TimePoint now = TimePoint{0});

  /// Admission decision for a new handshake arriving at `now`. Returns the
  /// extra server-side delay (accept-queue wait + handshake CPU) when
  /// admitted, or nullopt when refused (queue full / connection limit).
  /// Admitted connections hold a concurrency slot until
  /// release_connection(). With capacity disabled, always admits for free.
  std::optional<Duration> try_admit(TimePoint now, tls::TransportKind kind,
                                    tls::HandshakeMode mode);

  /// Returns the concurrency slot taken by a successful try_admit().
  void release_connection();

  [[nodiscard]] const LruCache& cache() const { return cache_; }
  [[nodiscard]] const ProviderTraits& traits() const { return traits_; }
  [[nodiscard]] const EdgeCapacityConfig& capacity() const { return capacity_; }

  /// Handshakes admitted but not yet finished processing at `now`.
  [[nodiscard]] std::size_t accept_backlog(TimePoint now);
  /// Worker cores still busy with request service at `now`.
  [[nodiscard]] std::size_t busy_cores(TimePoint now) const;
  [[nodiscard]] std::size_t concurrent_connections() const { return concurrent_; }
  [[nodiscard]] std::uint64_t handshakes_admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t refused_queue_full() const { return refused_queue_full_; }
  [[nodiscard]] std::uint64_t refused_conn_limit() const { return refused_conn_limit_; }

 private:
  ProviderTraits traits_;
  util::Rng rng_;
  LruCache cache_;
  EdgeCapacityConfig capacity_;

  // Finish times of handshakes still in the accept queue (monotonic).
  std::deque<TimePoint> hs_queue_;
  // Per-core earliest-free time for request service.
  std::vector<TimePoint> cores_;
  std::size_t concurrent_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t refused_queue_full_ = 0;
  std::uint64_t refused_conn_limit_ = 0;
};

}  // namespace h3cdn::cdn
