// Edge server processing-time model.
//
// Produces the per-request "think time" (the server-side component of the
// HAR Wait phase). Components:
//   * base service time: lognormal around the provider's median (cache
//     lookup, response assembly);
//   * protocol overhead: H3's userspace QUIC + encryption costs extra CPU —
//     this is what makes the paper's median wait-reduction negative
//     (Fig. 6b, §VI-B, citing [37][38]);
//   * cache misses: an extra round trip to the origin.
#pragma once

#include <string>

#include "cdn/lru_cache.h"
#include "cdn/provider.h"
#include "http/types.h"
#include "util/rng.h"
#include "util/types.h"

namespace h3cdn::cdn {

class EdgeServer {
 public:
  EdgeServer(const ProviderTraits& traits, util::Rng rng, std::size_t cache_capacity = 65536);

  /// Pre-populates the cache for a resource key with the provider's hit
  /// probability (models the paper's warm-up visit plus natural churn).
  void warm(const std::string& key);

  /// Server think time for one request.
  Duration think_time(const std::string& key, http::HttpVersion version);

  [[nodiscard]] const LruCache& cache() const { return cache_; }
  [[nodiscard]] const ProviderTraits& traits() const { return traits_; }

 private:
  ProviderTraits traits_;
  util::Rng rng_;
  LruCache cache_;
};

}  // namespace h3cdn::cdn
