// CDN provider registry.
//
// Encodes the seven providers the paper measures (Table I, Fig. 2) plus an
// aggregate "Other" bucket and the calibration constants that reproduce the
// paper's dataset-level aggregates:
//   * market_share      — fraction of all CDN requests served (Fig. 2)
//   * h3_adoption       — fraction of the provider's traffic that is
//                         H3-enabled (Fig. 2: Google almost fully shifted,
//                         Cloudflare roughly half, others marginal)
//   * page_presence     — probability the provider appears on a page
//                         (Fig. 4a: top-4 exceed 50%)
//   * resources_median/sigma — per-page resource count, given presence
//                         (Fig. 5: ~50% of Cloudflare/Google pages >10)
// plus the Table I metadata (release year, published performance report) and
// the network/server model parameters used by the simulator.
#pragma once

#include <string>
#include <vector>

#include "tls/handshake.h"
#include "util/types.h"

namespace h3cdn::cdn {

enum class ProviderId {
  Google,
  Cloudflare,
  Amazon,
  Akamai,
  Fastly,
  Microsoft,
  QuicCloud,
  Other,    // long tail of smaller CDNs, aggregated
  None,     // not a CDN (first-party web service)
};

struct ProviderTraits {
  ProviderId id = ProviderId::None;
  std::string name;

  // --- Table I metadata ---
  int h3_release_year = 0;
  std::string performance_report;

  // --- dataset calibration (see DESIGN.md §3) ---
  double market_share = 0.0;      // of CDN requests
  double h3_adoption = 0.0;       // of this provider's requests
  double page_presence = 0.0;     // P(appears on a webpage)
  double resources_median = 0.0;  // per-page count median, given presence
  double resources_sigma = 0.0;   // lognormal sigma of that count
  int domain_count = 0;           // global CDN hostnames owned (sum == 58)

  // --- network model ---
  Duration edge_rtt_base = msec(20);   // anycast edge is close to the client
  Duration edge_rtt_spread = msec(10); // uniform spread across vantages

  // H2 connection coalescing (RFC 7540 §9.1.1): giant providers serve many
  // hostnames from shared certificates/IPs, so a browser reuses ONE TCP+TLS
  // connection across them ("Respect the ORIGIN!", the paper's ref [40]).
  // QUIC deployments in the measurement window did not coalesce, which is
  // the root of the paper's §VI-C reused-connection asymmetry.
  bool h2_coalescing = false;

  // --- server model ---
  tls::TlsVersion tls_version = tls::TlsVersion::Tls13;
  Duration service_time_median = msec(6);
  double service_time_sigma = 0.5;
  Duration h3_extra_service = msec(3);  // H3 compute overhead (paper §VI-B)
  double cache_hit_ratio = 0.95;
  Duration origin_fetch_penalty = msec(80);  // edge->origin on cache miss
  double edge_bandwidth_bps = 300e6;
};

class ProviderRegistry {
 public:
  /// All CDN providers (excludes ProviderId::None).
  static const std::vector<ProviderTraits>& all();

  /// Lookup by id; `None` returns a synthetic non-CDN traits entry.
  static const ProviderTraits& get(ProviderId id);

  /// Name -> id (exact match); ProviderId::None when unknown.
  static ProviderId by_name(const std::string& name);

  /// The four giants examined in Fig. 5.
  static std::vector<ProviderId> fig5_providers();

  /// Providers counted in the Fig. 8 shared-provider analysis (§VI-D lists
  /// Amazon, Akamai, Cloudflare, Fastly, Google, Microsoft).
  static std::vector<ProviderId> fig8_providers();
};

const char* to_string(ProviderId id);

}  // namespace h3cdn::cdn
