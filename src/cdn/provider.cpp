#include "cdn/provider.h"

#include "util/check.h"

namespace h3cdn::cdn {

namespace {

// Calibration notes (targets from the paper; see DESIGN.md §3):
//   within-CDN H3 fraction  = sum(market_share * h3_adoption) ~= 0.384
//     (Table II: 9280 H3 CDN requests of 24153 CDN requests)
//   Google share of H3 CDN  = 0.202*0.95/0.384 ~= 0.50   (Fig. 2)
//   Cloudflare share        = 0.346*0.50/0.384 ~= 0.45   (Fig. 2)
//   top-4 page presence     > 0.50                        (Fig. 4a)
//   mean providers per page = sum(page_presence) ~= 4.15  (Fig. 4b, Table III)
//   domain_count sums to 58                               (Table III setup)
std::vector<ProviderTraits> make_registry() {
  std::vector<ProviderTraits> v;

  ProviderTraits google;
  google.id = ProviderId::Google;
  google.name = "Google";
  google.h3_release_year = 2021;
  google.performance_report =
      "Reduce search latency by 2%, video rebuffer times by 9%, improve mobile throughput by 7%";
  google.market_share = 0.202;
  google.h3_adoption = 0.95;
  google.page_presence = 0.90;
  google.resources_median = 10.0;
  google.resources_sigma = 1.00;
  google.domain_count = 12;
  google.edge_rtt_base = msec(28);
  google.edge_rtt_spread = msec(14);
  google.service_time_median = msec(5);
  google.h3_extra_service = msec(4);
  google.cache_hit_ratio = 0.97;
  google.h2_coalescing = true;
  v.push_back(google);

  ProviderTraits cloudflare;
  cloudflare.id = ProviderId::Cloudflare;
  cloudflare.name = "Cloudflare";
  cloudflare.h3_release_year = 2019;
  cloudflare.performance_report = "H3 performs 12.4% better in TTFB, but 1-4% worse in PLT than H2";
  cloudflare.market_share = 0.346;
  cloudflare.h3_adoption = 0.60;
  cloudflare.page_presence = 0.75;
  cloudflare.resources_median = 14.0;
  cloudflare.resources_sigma = 1.30;
  cloudflare.domain_count = 10;
  cloudflare.edge_rtt_base = msec(27);
  cloudflare.edge_rtt_spread = msec(14);
  cloudflare.service_time_median = msec(6);
  cloudflare.h3_extra_service = msec(5);
  cloudflare.cache_hit_ratio = 0.96;
  cloudflare.h2_coalescing = true;
  v.push_back(cloudflare);

  ProviderTraits amazon;
  amazon.id = ProviderId::Amazon;
  amazon.name = "Amazon";
  amazon.h3_release_year = 2022;
  amazon.performance_report = "N/A";
  amazon.market_share = 0.140;
  amazon.h3_adoption = 0.06;
  amazon.page_presence = 0.65;
  amazon.resources_median = 6.0;
  amazon.resources_sigma = 1.30;
  amazon.domain_count = 9;
  amazon.edge_rtt_base = msec(30);
  amazon.edge_rtt_spread = msec(16);
  amazon.service_time_median = msec(7);
  amazon.h3_extra_service = msec(5);
  amazon.cache_hit_ratio = 0.94;
  amazon.h2_coalescing = true;
  v.push_back(amazon);

  ProviderTraits akamai;
  akamai.id = ProviderId::Akamai;
  akamai.name = "Akamai";
  akamai.h3_release_year = 2023;
  akamai.performance_report =
      "6.5% more users with TAT under 25ms; 12.7% improvement for requests exceeding 1 Mbps";
  akamai.market_share = 0.100;
  akamai.h3_adoption = 0.03;
  akamai.page_presence = 0.55;
  akamai.resources_median = 5.0;
  akamai.resources_sigma = 1.25;
  akamai.domain_count = 8;
  akamai.edge_rtt_base = msec(28);
  akamai.edge_rtt_spread = msec(15);
  akamai.service_time_median = msec(6);
  akamai.h3_extra_service = msec(5);
  akamai.cache_hit_ratio = 0.95;
  akamai.h2_coalescing = true;
  v.push_back(akamai);

  ProviderTraits fastly;
  fastly.id = ProviderId::Fastly;
  fastly.name = "Fastly";
  fastly.h3_release_year = 2021;
  fastly.performance_report = "QUIC can represent an 8% increase in throughput";
  fastly.market_share = 0.080;
  fastly.h3_adoption = 0.08;
  fastly.page_presence = 0.50;
  fastly.resources_median = 4.0;
  fastly.resources_sigma = 1.30;
  fastly.domain_count = 7;
  fastly.edge_rtt_base = msec(29);
  fastly.edge_rtt_spread = msec(15);
  fastly.service_time_median = msec(5);
  fastly.h3_extra_service = msec(5);
  fastly.cache_hit_ratio = 0.95;
  fastly.h2_coalescing = true;
  v.push_back(fastly);

  ProviderTraits microsoft;
  microsoft.id = ProviderId::Microsoft;
  microsoft.name = "Microsoft";
  microsoft.h3_release_year = 2022;
  microsoft.performance_report = "N/A";
  microsoft.market_share = 0.050;
  microsoft.h3_adoption = 0.04;
  microsoft.page_presence = 0.35;
  microsoft.resources_median = 4.0;
  microsoft.resources_sigma = 1.10;
  microsoft.domain_count = 6;
  microsoft.edge_rtt_base = msec(31);
  microsoft.edge_rtt_spread = msec(16);
  microsoft.service_time_median = msec(7);
  microsoft.h3_extra_service = msec(5);
  microsoft.cache_hit_ratio = 0.93;
  microsoft.h2_coalescing = true;
  v.push_back(microsoft);

  ProviderTraits quiccloud;
  quiccloud.id = ProviderId::QuicCloud;
  quiccloud.name = "QUIC.Cloud";
  quiccloud.h3_release_year = 2021;
  quiccloud.performance_report = "H3 turns TTFB from 231ms to 24ms";
  quiccloud.market_share = 0.012;
  quiccloud.h3_adoption = 0.90;  // H3-first CDN by design
  quiccloud.page_presence = 0.06;
  quiccloud.resources_median = 3.0;
  quiccloud.resources_sigma = 0.90;
  quiccloud.domain_count = 2;
  quiccloud.edge_rtt_base = msec(34);
  quiccloud.edge_rtt_spread = msec(16);
  quiccloud.service_time_median = msec(6);
  quiccloud.h3_extra_service = msec(4);
  quiccloud.cache_hit_ratio = 0.92;
  v.push_back(quiccloud);

  ProviderTraits other;
  other.id = ProviderId::Other;
  other.name = "Other";
  other.h3_release_year = 0;
  other.performance_report = "N/A";
  other.market_share = 0.070;
  other.h3_adoption = 0.02;
  other.page_presence = 0.42;
  other.resources_median = 4.0;
  other.resources_sigma = 1.10;
  other.domain_count = 4;
  other.edge_rtt_base = msec(36);
  other.edge_rtt_spread = msec(20);
  other.service_time_median = msec(8);
  other.h3_extra_service = msec(5);
  other.cache_hit_ratio = 0.90;
  // Some smaller CDNs still front with TLS 1.2-era stacks.
  other.tls_version = tls::TlsVersion::Tls12;
  v.push_back(other);

  return v;
}

ProviderTraits make_non_cdn_traits() {
  ProviderTraits t;
  t.id = ProviderId::None;
  t.name = "non-CDN";
  // First-party web services: farther away (no anycast edge), slower
  // (dynamic content), no edge cache semantics.
  t.edge_rtt_base = msec(38);
  t.edge_rtt_spread = msec(32);
  t.service_time_median = msec(18);
  t.service_time_sigma = 0.55;
  t.h3_extra_service = msec(6);
  t.cache_hit_ratio = 0.0;
  t.origin_fetch_penalty = msec(0);
  t.edge_bandwidth_bps = 120e6;
  return t;
}

}  // namespace

const std::vector<ProviderTraits>& ProviderRegistry::all() {
  static const std::vector<ProviderTraits> registry = make_registry();
  return registry;
}

const ProviderTraits& ProviderRegistry::get(ProviderId id) {
  if (id == ProviderId::None) {
    static const ProviderTraits non_cdn = make_non_cdn_traits();
    return non_cdn;
  }
  for (const auto& t : all()) {
    if (t.id == id) return t;
  }
  H3CDN_ASSERT(false);
  return all().front();
}

ProviderId ProviderRegistry::by_name(const std::string& name) {
  for (const auto& t : all()) {
    if (t.name == name) return t.id;
  }
  return ProviderId::None;
}

std::vector<ProviderId> ProviderRegistry::fig5_providers() {
  return {ProviderId::Amazon, ProviderId::Cloudflare, ProviderId::Google, ProviderId::Fastly};
}

std::vector<ProviderId> ProviderRegistry::fig8_providers() {
  return {ProviderId::Amazon,  ProviderId::Akamai,    ProviderId::Cloudflare,
          ProviderId::Fastly,  ProviderId::Google,    ProviderId::Microsoft};
}

const char* to_string(ProviderId id) {
  switch (id) {
    case ProviderId::Google: return "Google";
    case ProviderId::Cloudflare: return "Cloudflare";
    case ProviderId::Amazon: return "Amazon";
    case ProviderId::Akamai: return "Akamai";
    case ProviderId::Fastly: return "Fastly";
    case ProviderId::Microsoft: return "Microsoft";
    case ProviderId::QuicCloud: return "QUIC.Cloud";
    case ProviderId::Other: return "Other";
    case ProviderId::None: return "non-CDN";
  }
  return "?";
}

}  // namespace h3cdn::cdn
