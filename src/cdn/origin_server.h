// First-party (non-CDN) web service model. Unlike edge servers, origins run
// dynamic workloads: slower, higher-variance service times and no edge cache.
#pragma once

#include <string>

#include "cdn/provider.h"
#include "http/types.h"
#include "util/rng.h"
#include "util/types.h"

namespace h3cdn::cdn {

class OriginServer {
 public:
  explicit OriginServer(util::Rng rng);
  OriginServer(const ProviderTraits& traits, util::Rng rng);

  /// Server think time for one request (dynamic content generation).
  Duration think_time(const std::string& key, http::HttpVersion version);

  [[nodiscard]] const ProviderTraits& traits() const { return traits_; }

 private:
  ProviderTraits traits_;
  util::Rng rng_;
};

}  // namespace h3cdn::cdn
