#include "cdn/edge_server.h"

#include <algorithm>

#include "obs/metrics.h"

namespace h3cdn::cdn {

EdgeServer::EdgeServer(const ProviderTraits& traits, util::Rng rng, std::size_t cache_capacity,
                       EdgeCapacityConfig capacity)
    : traits_(traits), rng_(rng), cache_(cache_capacity), capacity_(capacity) {
  if (capacity_.enabled) {
    cores_.assign(static_cast<std::size_t>(std::max(1, capacity_.think_cores)), TimePoint{0});
  }
}

void EdgeServer::warm(const std::string& key) {
  if (rng_.bernoulli(traits_.cache_hit_ratio)) cache_.insert(key);
}

Duration EdgeServer::think_time(const std::string& key, http::HttpVersion version,
                                TimePoint now) {
  obs::count("cdn.edge.requests");
  // Draw order must not depend on the capacity model: legacy (idle-server)
  // call sites stay byte-identical.
  double service_ms = rng_.lognormal_median(to_ms(traits_.service_time_median),
                                            traits_.service_time_sigma);
  if (version == http::HttpVersion::H3) {
    // Userspace QUIC stack + per-packet crypto; see paper §VI-B.
    service_ms += to_ms(traits_.h3_extra_service) * rng_.uniform(0.6, 1.4);
  }
  double penalty_ms = 0.0;
  if (cache_.touch(key)) {
    obs::count("cdn.edge.cache_hits");
  } else {
    // Cache miss: fetch from the customer's origin before responding. The
    // wait is network time, so it does not occupy a worker core.
    obs::count("cdn.edge.cache_misses");
    penalty_ms = to_ms(traits_.origin_fetch_penalty) * rng_.uniform(0.8, 1.5);
    cache_.insert(key);
  }
  Duration queue_wait{0};
  if (capacity_.enabled) {
    auto core = std::min_element(cores_.begin(), cores_.end());
    const TimePoint start = std::max(now, *core);
    queue_wait = start - now;
    *core = start + from_ms(service_ms);
    if (queue_wait > Duration::zero()) {
      obs::observe_ms("cdn.edge.queue_ms", queue_wait);
    }
  }
  const double total_ms = to_ms(queue_wait) + service_ms + penalty_ms;
  obs::observe("cdn.edge.think_ms", total_ms);
  return from_ms(total_ms);
}

std::optional<Duration> EdgeServer::try_admit(TimePoint now, tls::TransportKind kind,
                                              tls::HandshakeMode mode) {
  if (!capacity_.enabled) return Duration::zero();
  while (!hs_queue_.empty() && hs_queue_.front() <= now) hs_queue_.pop_front();
  if (capacity_.max_concurrent_connections > 0 &&
      concurrent_ >= capacity_.max_concurrent_connections) {
    ++refused_conn_limit_;
    obs::count("cdn.edge.refused");
    obs::count("cdn.edge.refused.conn_limit");
    return std::nullopt;
  }
  if (capacity_.accept_queue_depth > 0 && hs_queue_.size() >= capacity_.accept_queue_depth) {
    ++refused_queue_full_;
    obs::count("cdn.edge.refused");
    obs::count("cdn.edge.refused.queue_full");
    return std::nullopt;
  }
  Duration cpu = kind == tls::TransportKind::Quic ? capacity_.handshake_cpu_quic
                                                  : capacity_.handshake_cpu_tcp;
  if (mode != tls::HandshakeMode::Fresh) {
    cpu = Duration{static_cast<std::int64_t>(
        static_cast<double>(cpu.count()) * capacity_.resumed_handshake_discount)};
  }
  const TimePoint start = hs_queue_.empty() ? now : std::max(now, hs_queue_.back());
  const TimePoint finish = start + cpu;
  hs_queue_.push_back(finish);
  ++concurrent_;
  ++admitted_;
  obs::count("cdn.edge.hs_admitted");
  if (start > now) obs::observe_ms("cdn.edge.hs_queue_ms", start - now);
  return finish - now;
}

void EdgeServer::release_connection() {
  if (concurrent_ > 0) --concurrent_;
}

std::size_t EdgeServer::accept_backlog(TimePoint now) {
  while (!hs_queue_.empty() && hs_queue_.front() <= now) hs_queue_.pop_front();
  return hs_queue_.size();
}

std::size_t EdgeServer::busy_cores(TimePoint now) const {
  return static_cast<std::size_t>(
      std::count_if(cores_.begin(), cores_.end(), [&](TimePoint t) { return t > now; }));
}

}  // namespace h3cdn::cdn
