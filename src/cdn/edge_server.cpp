#include "cdn/edge_server.h"

#include "obs/metrics.h"

namespace h3cdn::cdn {

EdgeServer::EdgeServer(const ProviderTraits& traits, util::Rng rng, std::size_t cache_capacity)
    : traits_(traits), rng_(rng), cache_(cache_capacity) {}

void EdgeServer::warm(const std::string& key) {
  if (rng_.bernoulli(traits_.cache_hit_ratio)) cache_.insert(key);
}

Duration EdgeServer::think_time(const std::string& key, http::HttpVersion version) {
  obs::count("cdn.edge.requests");
  double ms = rng_.lognormal_median(to_ms(traits_.service_time_median),
                                    traits_.service_time_sigma);
  if (version == http::HttpVersion::H3) {
    // Userspace QUIC stack + per-packet crypto; see paper §VI-B.
    ms += to_ms(traits_.h3_extra_service) * rng_.uniform(0.6, 1.4);
  }
  if (cache_.touch(key)) {
    obs::count("cdn.edge.cache_hits");
  } else {
    // Cache miss: fetch from the customer's origin before responding.
    obs::count("cdn.edge.cache_misses");
    ms += to_ms(traits_.origin_fetch_penalty) * rng_.uniform(0.8, 1.5);
    cache_.insert(key);
  }
  obs::observe("cdn.edge.think_ms", ms);
  return from_ms(ms);
}

}  // namespace h3cdn::cdn
