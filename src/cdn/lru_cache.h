// Least-recently-used cache of resource keys, used by EdgeServer to decide
// whether a request is served from the edge or must be fetched from the
// origin. The paper warms each page once so that "CDN resources are served
// from the edge CDN server rather than fetched from the origin server"
// (§III-B); the study pre-warms these caches the same way.
#pragma once

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>

namespace h3cdn::cdn {

class LruCache {
 public:
  explicit LruCache(std::size_t capacity);

  /// True if present; refreshes recency.
  bool touch(const std::string& key);

  /// Inserts (or refreshes) a key, evicting the LRU entry if full.
  void insert(const std::string& key);

  /// Presence check without recency update.
  [[nodiscard]] bool contains(const std::string& key) const;

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  void clear();

 private:
  std::size_t capacity_;
  std::list<std::string> order_;  // front = most recent
  std::unordered_map<std::string, std::list<std::string>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace h3cdn::cdn
