#include "cdn/lru_cache.h"

#include "util/check.h"

namespace h3cdn::cdn {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  H3CDN_EXPECTS(capacity > 0);
}

bool LruCache::touch(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  order_.splice(order_.begin(), order_, it->second);
  ++hits_;
  return true;
}

void LruCache::insert(const std::string& key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(order_.back());
    order_.pop_back();
    ++evictions_;
  }
  order_.push_front(key);
  map_[key] = order_.begin();
}

bool LruCache::contains(const std::string& key) const { return map_.count(key) > 0; }

void LruCache::clear() {
  order_.clear();
  map_.clear();
}

}  // namespace h3cdn::cdn
