// Workload serialization: save a generated workload to JSON and load one
// back (or load an externally authored one, e.g. pages derived from real
// HTTP Archive records). A loaded workload runs through exactly the same
// measurement pipeline as a generated one, so the study can be repeated on
// real page compositions when they are available.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "web/workload.h"

namespace h3cdn::web {

/// Serializes the whole workload (domain universe + sites + resources).
std::string workload_to_json(const Workload& workload);

struct WorkloadIoError {
  std::string message;
};

/// Parses a workload document produced by workload_to_json (or hand-written
/// in the same schema). Validates referential integrity: every resource's
/// domain must exist in the universe.
std::optional<Workload> workload_from_json(std::string_view json,
                                           WorkloadIoError* error = nullptr);

}  // namespace h3cdn::web
