// Webpage and resource model: the synthetic equivalent of the paper's 325
// Alexa-Top landing pages.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cdn/provider.h"

namespace h3cdn::web {

enum class ResourceType { Html, Css, Script, Image, Font, Media, Other };

const char* to_string(ResourceType t);

using Header = std::pair<std::string, std::string>;

/// One fetchable web resource (a HAR entry to be).
struct Resource {
  std::uint32_t id = 0;
  std::string domain;
  std::string path;
  ResourceType type = ResourceType::Other;
  std::size_t size_bytes = 0;      // response body on the wire
  std::size_t request_bytes = 500; // serialized request
  bool is_cdn = false;
  cdn::ProviderId provider = cdn::ProviderId::None;  // ground truth (LocEdge re-infers it)
  int discovery_wave = 0;  // 0: found parsing HTML; 1: found after a wave-0 resource
  std::vector<Header> response_headers;

  [[nodiscard]] std::string url() const { return "https://" + domain + path; }
};

/// A landing page: the root HTML document plus its subresources.
struct WebPage {
  std::string site;           // e.g. "site042.example"
  std::string origin_domain;  // serves the HTML
  Resource html;
  std::vector<Resource> resources;

  /// Total request count including the HTML document.
  [[nodiscard]] std::size_t total_requests() const { return resources.size() + 1; }

  [[nodiscard]] std::size_t cdn_resource_count() const;

  /// Fraction of requests (incl. HTML) that are CDN-hosted — Fig. 3's metric.
  [[nodiscard]] double cdn_fraction() const;

  /// Distinct CDN providers present on the page — Fig. 4's metric.
  [[nodiscard]] std::set<cdn::ProviderId> cdn_providers() const;

  /// Distinct CDN domains present on the page — Table III's vector basis.
  [[nodiscard]] std::set<std::string> cdn_domains() const;

  /// Number of this page's CDN resources hosted by `provider` — Fig. 5.
  [[nodiscard]] std::size_t provider_resource_count(cdn::ProviderId provider) const;
};

struct Website {
  std::string name;
  int alexa_rank = 0;
  WebPage page;
};

}  // namespace h3cdn::web
