#include "web/workload_io.h"

#include "util/json.h"
#include "util/json_parse.h"

namespace h3cdn::web {

namespace {

const char* tls_name(tls::TlsVersion v) {
  return v == tls::TlsVersion::Tls12 ? "1.2" : "1.3";
}

void write_domain(util::JsonWriter& w, const DomainInfo& d) {
  w.begin_object();
  w.kv("name", d.name);
  w.kv("is_cdn", d.is_cdn);
  w.kv("provider", cdn::to_string(d.provider));
  w.kv("supports_h2", d.supports_h2);
  w.kv("supports_h3", d.supports_h3);
  w.kv("tls", tls_name(d.tls_version));
  w.kv("popularity", d.popularity);
  w.end_object();
}

void write_resource(util::JsonWriter& w, const Resource& r) {
  w.begin_object();
  w.kv("id", static_cast<std::uint64_t>(r.id));
  w.kv("domain", r.domain);
  w.kv("path", r.path);
  w.kv("type", to_string(r.type));
  w.kv("size_bytes", r.size_bytes);
  w.kv("request_bytes", r.request_bytes);
  w.kv("is_cdn", r.is_cdn);
  w.kv("provider", cdn::to_string(r.provider));
  w.kv("wave", r.discovery_wave);
  w.key("headers").begin_array();
  for (const auto& [k, v] : r.response_headers) {
    w.begin_object();
    w.kv("name", k);
    w.kv("value", v);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

ResourceType type_from_string(const std::string& s) {
  if (s == "html") return ResourceType::Html;
  if (s == "css") return ResourceType::Css;
  if (s == "script") return ResourceType::Script;
  if (s == "image") return ResourceType::Image;
  if (s == "font") return ResourceType::Font;
  if (s == "media") return ResourceType::Media;
  return ResourceType::Other;
}

bool fail(WorkloadIoError* error, const std::string& message) {
  if (error != nullptr) error->message = message;
  return false;
}

bool read_resource(const util::JsonValue& j, Resource& r, WorkloadIoError* error) {
  r.id = static_cast<std::uint32_t>(j.number_or("id", 0));
  r.domain = j.string_or("domain", "");
  if (r.domain.empty()) return fail(error, "resource without domain");
  r.path = j.string_or("path", "/");
  r.type = type_from_string(j.string_or("type", "other"));
  r.size_bytes = static_cast<std::size_t>(j.number_or("size_bytes", 0));
  if (r.size_bytes == 0) return fail(error, "resource without size_bytes");
  r.request_bytes = static_cast<std::size_t>(j.number_or("request_bytes", 500));
  r.is_cdn = j.bool_or("is_cdn", false);
  r.provider = cdn::ProviderRegistry::by_name(j.string_or("provider", "non-CDN"));
  r.discovery_wave = static_cast<int>(j.number_or("wave", 0));
  if (const util::JsonValue* headers = j.find("headers");
      headers != nullptr && headers->is_array()) {
    for (const auto& h : headers->as_array()) {
      r.response_headers.emplace_back(h.string_or("name", ""), h.string_or("value", ""));
    }
  }
  return true;
}

}  // namespace

std::string workload_to_json(const Workload& workload) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("schema", "h3cdn-workload-v1");
  w.kv("seed", workload.config.seed);

  w.key("domains").begin_array();
  for (const auto& name : workload.universe.all_domain_names()) {
    write_domain(w, workload.universe.get(name));
  }
  w.end_array();

  w.key("sites").begin_array();
  for (const auto& site : workload.sites) {
    w.begin_object();
    w.kv("name", site.name);
    w.kv("rank", site.alexa_rank);
    w.kv("origin", site.page.origin_domain);
    w.key("html");
    write_resource(w, site.page.html);
    w.key("resources").begin_array();
    for (const auto& r : site.page.resources) write_resource(w, r);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::optional<Workload> workload_from_json(std::string_view json, WorkloadIoError* error) {
  util::JsonParseError parse_error;
  const auto doc = util::parse_json(json, &parse_error);
  if (!doc) {
    if (error != nullptr) error->message = "JSON parse error: " + parse_error.message;
    return std::nullopt;
  }
  if (doc->string_or("schema", "") != "h3cdn-workload-v1") {
    if (error != nullptr) error->message = "unknown or missing schema";
    return std::nullopt;
  }

  Workload w;
  w.config.seed = static_cast<std::uint64_t>(doc->number_or("seed", 0));

  const util::JsonValue* domains = doc->find("domains");
  if (domains == nullptr || !domains->is_array()) {
    if (error != nullptr) error->message = "missing domains array";
    return std::nullopt;
  }
  // Rebuild the universe: the CDN set comes from the registry (global
  // hostnames), then overlay the serialized flags; site domains are added.
  w.universe = DomainUniverse::create(util::Rng(w.config.seed));
  for (const auto& d : domains->as_array()) {
    DomainInfo info;
    info.name = d.string_or("name", "");
    if (info.name.empty()) {
      if (error != nullptr) error->message = "domain without name";
      return std::nullopt;
    }
    info.is_cdn = d.bool_or("is_cdn", false);
    info.provider = cdn::ProviderRegistry::by_name(d.string_or("provider", "non-CDN"));
    info.supports_h2 = d.bool_or("supports_h2", true);
    info.supports_h3 = d.bool_or("supports_h3", false);
    info.tls_version =
        d.string_or("tls", "1.3") == "1.2" ? tls::TlsVersion::Tls12 : tls::TlsVersion::Tls13;
    info.popularity = d.number_or("popularity", 1.0);
    if (w.universe.contains(info.name)) {
      w.universe.mutable_get(info.name) = info;
    } else {
      w.universe.add_domain(info);
    }
  }

  const util::JsonValue* sites = doc->find("sites");
  if (sites == nullptr || !sites->is_array()) {
    if (error != nullptr) error->message = "missing sites array";
    return std::nullopt;
  }
  for (const auto& s : sites->as_array()) {
    Website site;
    site.name = s.string_or("name", "");
    site.alexa_rank = static_cast<int>(s.number_or("rank", 0));
    site.page.site = site.name;
    site.page.origin_domain = s.string_or("origin", "");
    const util::JsonValue* html = s.find("html");
    if (html == nullptr || !read_resource(*html, site.page.html, error)) {
      if (error != nullptr && error->message.empty()) error->message = "site without html";
      return std::nullopt;
    }
    if (const util::JsonValue* resources = s.find("resources");
        resources != nullptr && resources->is_array()) {
      for (const auto& r : resources->as_array()) {
        Resource resource;
        if (!read_resource(r, resource, error)) return std::nullopt;
        if (!w.universe.contains(resource.domain)) {
          if (error != nullptr) {
            error->message = "resource references unknown domain " + resource.domain;
          }
          return std::nullopt;
        }
        site.page.resources.push_back(std::move(resource));
      }
    }
    if (!w.universe.contains(site.page.origin_domain)) {
      if (error != nullptr) error->message = "origin domain missing from universe";
      return std::nullopt;
    }
    w.sites.push_back(std::move(site));
  }
  return w;
}

}  // namespace h3cdn::web
