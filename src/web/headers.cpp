#include "web/headers.h"

#include <cstdio>

namespace h3cdn::web {

namespace {

std::string hex_token(util::Rng& rng, int len) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) s += digits[rng.uniform_int(0, 15)];
  return s;
}

std::string pop_code(util::Rng& rng) {
  static const char* pops[] = {"IAD", "ORD", "DFW", "LAX", "SEA", "ATL", "JFK", "SLC"};
  char buf[16];
  std::snprintf(buf, sizeof buf, "%s%lld-C%lld", pops[rng.uniform_int(0, 7)],
                static_cast<long long>(rng.uniform_int(1, 99)),
                static_cast<long long>(rng.uniform_int(1, 4)));
  return buf;
}

}  // namespace

std::vector<Header> make_cdn_headers(cdn::ProviderId provider, util::Rng& rng) {
  using P = cdn::ProviderId;
  const bool hit = rng.bernoulli(0.95);
  switch (provider) {
    case P::Google:
      return {{"server", rng.bernoulli(0.5) ? "gws" : "sffe"},
              {"x-goog-generation", std::to_string(rng.uniform_int(1, 1'000'000'000))},
              {"via", "1.1 google"},
              {"cache-control", "public, max-age=86400"}};
    case P::Cloudflare:
      return {{"server", "cloudflare"},
              {"cf-ray", hex_token(rng, 16) + "-EWR"},
              {"cf-cache-status", hit ? "HIT" : "MISS"},
              {"cache-control", "public, max-age=14400"}};
    case P::Amazon:
      return {{"server", "AmazonS3"},
              {"via", "1.1 " + hex_token(rng, 13) + ".cloudfront.net (CloudFront)"},
              {"x-amz-cf-pop", pop_code(rng)},
              {"x-amz-cf-id", hex_token(rng, 22)},
              {"x-cache", hit ? "Hit from cloudfront" : "Miss from cloudfront"}};
    case P::Akamai:
      return {{"server", "AkamaiGHost"},
              {"x-akamai-transformed", "9 - 0 pmb=mRUM,1"},
              {"x-cache", (hit ? std::string("TCP_HIT") : std::string("TCP_MISS")) + " from a" +
                              std::to_string(rng.uniform_int(10, 99)) +
                              "-99.deploy.akamaitechnologies.com"},
              {"cache-control", "public, max-age=604800"}};
    case P::Fastly:
      return {{"x-served-by", "cache-bur-" + hex_token(rng, 8)},
              {"x-cache", hit ? "HIT" : "MISS"},
              {"via", "1.1 varnish"},
              {"x-timer", "S" + std::to_string(rng.uniform_int(1, 9'999'999)) + ".0,VS0,VE1"}};
    case P::Microsoft:
      return {{"x-azure-ref", hex_token(rng, 20)},
              {"server", "ECAcc (" + pop_code(rng) + ")"},
              {"x-cache", hit ? "HIT" : "MISS"},
              {"cache-control", "public, max-age=31536000"}};
    case P::QuicCloud:
      return {{"server", "LiteSpeed"},
              {"x-qc-pop", pop_code(rng)},
              {"x-qc-cache", hit ? "hit" : "miss"},
              {"alt-svc", "h3=\":443\"; ma=2592000"}};
    case P::Other:
      return {{"server", "cdn-cache/2.4"},
              {"x-cdn", "Served-By-Edge"},
              {"x-edge-location", pop_code(rng)},
              {"cache-control", "public, max-age=3600"}};
    case P::None:
      break;
  }
  return make_origin_headers(rng);
}

std::vector<Header> make_origin_headers(util::Rng& rng) {
  static const char* servers[] = {"nginx/1.22.1", "Apache/2.4.54", "openresty", "Microsoft-IIS/10.0",
                                  "gunicorn", "Jetty(9.4.z)"};
  return {{"server", servers[rng.uniform_int(0, 5)]},
          {"cache-control", "no-cache"},
          {"x-request-id", hex_token(rng, 16)}};
}

}  // namespace h3cdn::web
