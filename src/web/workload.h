// Synthetic Alexa-Top-325 workload generator.
//
// Generates 325 websites whose aggregate statistics are calibrated to every
// number the paper reports about its dataset:
//   * ~36k total requests across 325 sites (Table II)
//   * ~67% of requests CDN-hosted (Table II)
//   * 75% of pages with >50% CDN resources (Fig. 3)
//   * provider page-presence, top-4 > 50% (Fig. 4a); 94.8% of pages with
//     >= 2 providers (Fig. 4b)
//   * per-provider per-page resource counts, Cloudflare/Google median ~10
//     (Fig. 5)
//   * provider market shares and H3 adoption -> 32.6% H3 requests overall,
//     25.8% H3 CDN requests (Table II, Fig. 2)
//   * CDN resources typically small, 75% below 20 KB (§VI-E, [39])
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "web/domains.h"
#include "web/resource.h"

namespace h3cdn::web {

struct WorkloadConfig {
  std::size_t site_count = 325;
  std::uint64_t seed = 20221010;  // the paper's measurement start date

  // Non-CDN resources per page: round(lognormal(median, sigma)), min 2.
  double noncdn_count_median = 23.0;
  double noncdn_count_sigma = 0.65;
  // Non-CDN domain protocol support (Table II "non CDN" column shape).
  // Target sites are selected for H3 accessibility (§III-A), so their own
  // origins adopt H3 at a higher rate than arbitrary third-party hosts.
  double origin_h3_prob = 0.24;
  double noncdn_h3_prob = 0.12;       // secondary first-party hosts
  double noncdn_h1_only_prob = 0.60;  // given not H3-enabled

  // Per-provider CDN resource counts use ProviderTraits::resources_median /
  // resources_sigma scaled by this factor (global knob for total page size).
  double cdn_count_scale = 1.0;
  std::size_t max_resources_per_provider = 150;

  // Domain sharding (the H1-era optimization the paper's §VI-C reuse
  // discussion makes obsolete): when > 1, every page's CDN resources are
  // split across N sharded aliases ("shard0.<host>" ... "shardN-1.<host>")
  // of each hostname the page would have used, same provider and protocol
  // support. More hostnames = more handshakes for H3 but more coalescing
  // candidates for H2 — the ablation knob for that trade-off. 1 (the
  // default) leaves the workload byte-identical to the unsharded generator.
  std::size_t domain_shards = 1;

  // Resource sizes (KB).
  double cdn_size_median_kb = 8.0;
  double cdn_size_sigma = 1.0;
  double noncdn_size_median_kb = 6.0;
  double noncdn_size_sigma = 1.2;
  double html_size_median_kb = 45.0;
  double html_size_sigma = 0.6;
  double max_size_kb = 2048.0;

  // Fraction of subresources discovered only after a wave-0 dependency
  // completes (CSS -> font chains etc.). Resources on a provider's
  // secondary hostnames are predominantly dependency-discovered.
  double wave1_fraction = 0.20;
  double wave1_secondary_fraction = 0.80;
  // First-party assets are almost always referenced directly from the HTML;
  // dependency-discovered late resources are predominantly CDN-hosted
  // (web fonts behind CSS, player segments behind scripts, ...).
  double wave1_fraction_noncdn = 0.08;
};

struct Workload {
  WorkloadConfig config;
  DomainUniverse universe;
  std::vector<Website> sites;

  /// Count of all requests across all pages (incl. HTML documents).
  [[nodiscard]] std::size_t total_requests() const;
};

/// Deterministic: same config (incl. seed) => identical workload.
Workload generate_workload(const WorkloadConfig& config = {});

}  // namespace h3cdn::web
