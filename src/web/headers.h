// HTTP response-header synthesis.
//
// Real CDNs stamp identifying headers on every response (cf-ray,
// x-amz-cf-pop, x-served-by, ...). The paper identifies CDN resources with
// LocEdge, which classifies by exactly such fingerprints; we synthesize
// provider-accurate headers here so that our locedge substitute performs the
// same *inference* step instead of reading ground truth.
#pragma once

#include <string>
#include <vector>

#include "cdn/provider.h"
#include "util/rng.h"
#include "web/resource.h"

namespace h3cdn::web {

/// Headers for a response served by `provider`'s edge.
std::vector<Header> make_cdn_headers(cdn::ProviderId provider, util::Rng& rng);

/// Headers for a first-party (non-CDN) server response.
std::vector<Header> make_origin_headers(util::Rng& rng);

}  // namespace h3cdn::web
