// Domain universe: the global CDN hostnames shared across websites, plus
// per-site first-party domains.
//
// The paper's Table III setup extracts 58 CDN domains that appear on more
// than one webpage; our universe contains exactly 58 global CDN domains
// (ProviderTraits::domain_count sums to 58), each with:
//   * a popularity weight (resources are assigned Zipf-style, so a few
//     domains — fonts/analytics/ad CDNs — dominate, as in the wild),
//   * an H3-enabled flag, chosen deterministically so the *request-weighted*
//     H3 share of each provider matches its ProviderTraits::h3_adoption.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cdn/provider.h"
#include "tls/handshake.h"
#include "util/rng.h"

namespace h3cdn::web {

struct DomainInfo {
  std::string name;
  bool is_cdn = false;
  cdn::ProviderId provider = cdn::ProviderId::None;
  bool supports_h2 = true;   // false: HTTP/1.1-only legacy origin
  bool supports_h3 = false;  // advertises Alt-Svc h3
  tls::TlsVersion tls_version = tls::TlsVersion::Tls13;
  double popularity = 1.0;   // resource-assignment weight within its provider
};

class DomainUniverse {
 public:
  /// Builds the global CDN domain set from the provider registry. `rng` only
  /// perturbs popularity weights; H3 flags are deterministic given traits.
  static DomainUniverse create(util::Rng rng);

  /// Registers a per-site (non-CDN) domain. Returns the stored info.
  const DomainInfo& add_site_domain(DomainInfo info);

  /// Registers any domain (including externally authored CDN hostnames, used
  /// by workload import). CDN domains join their provider's list.
  const DomainInfo& add_domain(DomainInfo info);

  /// Registers a sharded alias of a CDN hostname (workload domain-sharding,
  /// WorkloadConfig::domain_shards): stored like any CDN domain but NOT added
  /// to its provider's selection list — generation never picks shards, pages
  /// are rewritten onto them.
  const DomainInfo& add_shard_domain(DomainInfo info);

  [[nodiscard]] const DomainInfo& get(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Mutable lookup, for ablation studies that rewrite domain properties
  /// (e.g. forcing TLS 1.2 everywhere) on a generated universe.
  [[nodiscard]] DomainInfo& mutable_get(const std::string& name);

  /// Every registered domain name (CDN and per-site).
  [[nodiscard]] std::vector<std::string> all_domain_names() const;

  /// All global CDN domains of one provider (popularity-descending).
  [[nodiscard]] const std::vector<std::string>& cdn_domains(cdn::ProviderId id) const;

  /// All 58 global CDN domain names.
  [[nodiscard]] std::vector<std::string> all_cdn_domains() const;

  [[nodiscard]] std::size_t size() const { return domains_.size(); }

 private:
  std::unordered_map<std::string, DomainInfo> domains_;
  std::unordered_map<int, std::vector<std::string>> by_provider_;  // key: (int)ProviderId
};

}  // namespace h3cdn::web
