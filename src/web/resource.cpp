#include "web/resource.h"

namespace h3cdn::web {

const char* to_string(ResourceType t) {
  switch (t) {
    case ResourceType::Html: return "html";
    case ResourceType::Css: return "css";
    case ResourceType::Script: return "script";
    case ResourceType::Image: return "image";
    case ResourceType::Font: return "font";
    case ResourceType::Media: return "media";
    case ResourceType::Other: return "other";
  }
  return "?";
}

std::size_t WebPage::cdn_resource_count() const {
  std::size_t n = html.is_cdn ? 1 : 0;
  for (const auto& r : resources)
    if (r.is_cdn) ++n;
  return n;
}

double WebPage::cdn_fraction() const {
  const std::size_t total = total_requests();
  if (total == 0) return 0.0;
  return static_cast<double>(cdn_resource_count()) / static_cast<double>(total);
}

std::set<cdn::ProviderId> WebPage::cdn_providers() const {
  std::set<cdn::ProviderId> out;
  for (const auto& r : resources)
    if (r.is_cdn) out.insert(r.provider);
  return out;
}

std::set<std::string> WebPage::cdn_domains() const {
  std::set<std::string> out;
  for (const auto& r : resources)
    if (r.is_cdn) out.insert(r.domain);
  return out;
}

std::size_t WebPage::provider_resource_count(cdn::ProviderId provider) const {
  std::size_t n = 0;
  for (const auto& r : resources)
    if (r.is_cdn && r.provider == provider) ++n;
  return n;
}

}  // namespace h3cdn::web
