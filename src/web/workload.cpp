#include "web/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"
#include "web/headers.h"

namespace h3cdn::web {

namespace {

ResourceType draw_type(util::Rng& rng) {
  // Rough mix of landing-page subresources (HTTP Archive-style).
  const double u = rng.uniform();
  if (u < 0.45) return ResourceType::Image;
  if (u < 0.70) return ResourceType::Script;
  if (u < 0.78) return ResourceType::Css;
  if (u < 0.84) return ResourceType::Font;
  if (u < 0.88) return ResourceType::Media;
  return ResourceType::Other;
}

double type_size_multiplier(ResourceType t) {
  switch (t) {
    case ResourceType::Media: return 8.0;   // video/audio segments
    case ResourceType::Font: return 3.0;
    case ResourceType::Script: return 1.4;
    case ResourceType::Image: return 1.0;
    case ResourceType::Css: return 0.7;
    case ResourceType::Html: return 1.0;
    case ResourceType::Other: return 0.8;
  }
  return 1.0;
}

const char* type_extension(ResourceType t) {
  switch (t) {
    case ResourceType::Image: return "png";
    case ResourceType::Script: return "js";
    case ResourceType::Css: return "css";
    case ResourceType::Font: return "woff2";
    case ResourceType::Media: return "mp4";
    case ResourceType::Html: return "html";
    case ResourceType::Other: return "json";
  }
  return "bin";
}

std::size_t draw_size_bytes(util::Rng& rng, double median_kb, double sigma, double max_kb,
                            ResourceType type) {
  const double kb =
      rng.lognormal_median(median_kb, sigma) * type_size_multiplier(type);
  const double clamped = std::clamp(kb, 0.3, max_kb);
  return static_cast<std::size_t>(clamped * 1024.0);
}

std::size_t draw_count(util::Rng& rng, double median, double sigma, std::size_t lo,
                       std::size_t hi) {
  const double v = rng.lognormal_median(median, sigma);
  const auto n = static_cast<std::size_t>(std::llround(v));
  return std::clamp(n, lo, hi);
}

}  // namespace

std::size_t Workload::total_requests() const {
  std::size_t n = 0;
  for (const auto& s : sites) n += s.page.total_requests();
  return n;
}

Workload generate_workload(const WorkloadConfig& config) {
  H3CDN_EXPECTS(config.site_count > 0);
  Workload w;
  w.config = config;

  util::Rng root(config.seed);
  w.universe = DomainUniverse::create(root.fork("universe"));

  const auto& providers = cdn::ProviderRegistry::all();
  std::uint32_t next_resource_id = 1;

  for (std::size_t si = 0; si < config.site_count; ++si) {
    util::Rng rng = root.fork("site").fork(si);
    Website site;
    char name[64];
    std::snprintf(name, sizeof name, "site%03zu.example", si);
    site.name = name;
    site.alexa_rank = static_cast<int>(si) + 1;

    WebPage& page = site.page;
    page.site = site.name;
    page.origin_domain = "www." + site.name;

    // ---- first-party (non-CDN) domains -------------------------------
    // Origin always exists; popular sites sometimes split api/img hosts.
    std::vector<std::string> noncdn_domains{page.origin_domain};
    if (rng.bernoulli(0.55)) noncdn_domains.push_back("api." + site.name);
    if (rng.bernoulli(0.35)) noncdn_domains.push_back("img." + site.name);
    for (const auto& d : noncdn_domains) {
      DomainInfo info;
      info.name = d;
      info.is_cdn = false;
      info.provider = cdn::ProviderId::None;
      const bool is_origin = d == page.origin_domain;
      info.supports_h3 =
          rng.bernoulli(is_origin ? config.origin_h3_prob : config.noncdn_h3_prob);
      if (!info.supports_h3 && !is_origin) {
        // Legacy H1.1-only hosts cause the "Others" rows of Table II. The
        // HTML-serving origin itself is kept at H2+ (Chrome on Alexa-top
        // sites virtually never fetches the root document over H1.1).
        info.supports_h2 = !rng.bernoulli(config.noncdn_h1_only_prob);
      }
      // First-party stacks lag CDNs: a large minority still terminated TLS
      // 1.2 in the 2022 measurement window, which is where H3's 2-RTT
      // connect advantage is largest.
      info.tls_version =
          rng.bernoulli(0.45) ? tls::TlsVersion::Tls12 : tls::TlsVersion::Tls13;
      w.universe.add_site_domain(info);
    }

    // ---- root HTML document ------------------------------------------
    page.html.id = next_resource_id++;
    page.html.domain = page.origin_domain;
    page.html.path = "/";
    page.html.type = ResourceType::Html;
    page.html.size_bytes = draw_size_bytes(rng, config.html_size_median_kb,
                                           config.html_size_sigma, 512.0, ResourceType::Html);
    page.html.request_bytes = static_cast<std::size_t>(rng.uniform_int(400, 900));
    page.html.is_cdn = false;
    page.html.provider = cdn::ProviderId::None;
    page.html.discovery_wave = 0;
    page.html.response_headers = make_origin_headers(rng);

    // ---- CDN providers present on this page (Fig. 4a) ----------------
    // Sites differ in how CDN-hungry they are: media/e-commerce landing
    // pages pull from many providers, lean corporate pages from one or two.
    // The affinity multiplier (mean 1.0) creates that cross-site dispersion,
    // which Table III's high/low-sharing clusters rely on.
    const double affinity = std::clamp(rng.lognormal_median(0.93, 0.45), 0.25, 2.2);
    std::vector<const cdn::ProviderTraits*> present;
    for (const auto& t : providers) {
      if (rng.bernoulli(std::min(1.0, t.page_presence * affinity))) present.push_back(&t);
    }
    if (present.empty()) present.push_back(&cdn::ProviderRegistry::get(cdn::ProviderId::Google));

    // ---- CDN resources ------------------------------------------------
    for (const auto* traits : present) {
      const std::size_t count =
          draw_count(rng, traits->resources_median * config.cdn_count_scale,
                     traits->resources_sigma, 1, config.max_resources_per_provider);

      // Pages concentrate a provider's resources on a few of its hostnames;
      // complicated pages spread across more of them.
      const auto& domains = w.universe.cdn_domains(traits->id);
      std::size_t n_domains = 1;
      if (count > 4 && domains.size() > 1) ++n_domains;
      if (count > 12 && domains.size() > 2) ++n_domains;
      if (count > 30 && domains.size() > 3) ++n_domains;
      if (count > 70 && domains.size() > 4) ++n_domains;
      n_domains = std::min(n_domains, domains.size());
      // Weighted selection without replacement, by global popularity.
      std::vector<double> weights;
      std::vector<std::string> pool = domains;
      std::vector<std::string> chosen;
      for (std::size_t k = 0; k < n_domains; ++k) {
        weights.clear();
        for (const auto& d : pool) weights.push_back(w.universe.get(d).popularity);
        const std::size_t pick = rng.weighted_index(weights);
        chosen.push_back(pool[pick]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      }

      std::vector<double> cw;
      for (const auto& d : chosen) cw.push_back(w.universe.get(d).popularity);

      // Domain sharding: register N aliases per chosen hostname (once,
      // globally) and spread this page's resources across them round-robin.
      // No extra rng draws, so shards == 1 is byte-identical to no sharding.
      const std::size_t shards = std::max<std::size_t>(config.domain_shards, 1);
      if (shards > 1) {
        for (const auto& d : chosen) {
          for (std::size_t k = 0; k < shards; ++k) {
            const std::string shard_name = "shard" + std::to_string(k) + "." + d;
            if (!w.universe.contains(shard_name)) {
              DomainInfo shard = w.universe.get(d);
              shard.name = shard_name;
              w.universe.add_shard_domain(std::move(shard));
            }
          }
        }
      }

      for (std::size_t i = 0; i < count; ++i) {
        Resource r;
        r.id = next_resource_id++;
        const std::size_t domain_idx = cw.size() == 1 ? 0 : rng.weighted_index(cw);
        r.domain = chosen[domain_idx];
        if (shards > 1) r.domain = "shard" + std::to_string(i % shards) + "." + r.domain;
        r.type = draw_type(rng);
        char path[96];
        std::snprintf(path, sizeof path, "/assets/%s/r%u.%s", site.name.c_str(), r.id,
                      type_extension(r.type));
        r.path = path;
        r.size_bytes = draw_size_bytes(rng, config.cdn_size_median_kb, config.cdn_size_sigma,
                                       config.max_size_kb, r.type);
        r.request_bytes = static_cast<std::size_t>(rng.uniform_int(350, 800));
        r.is_cdn = true;
        r.provider = traits->id;
        // Secondary hostnames of a provider (fonts.gstatic.com behind a CSS
        // from fonts.googleapis.com, media hosts behind scripts, ...) are
        // mostly discovered late, once a parser-visible dependency resolves.
        // That puts their connection setup on the critical path — which is
        // precisely where H2's coalesced reuse beats a fresh H3 handshake
        // on complicated pages (paper §VI-C).
        double wave1_p = config.wave1_fraction * 0.5;
        if (domain_idx == 1) wave1_p = config.wave1_secondary_fraction * 0.7;
        if (domain_idx >= 2) wave1_p = config.wave1_secondary_fraction;
        r.discovery_wave = rng.bernoulli(wave1_p) ? 1 : 0;
        r.response_headers = make_cdn_headers(traits->id, rng);
        page.resources.push_back(std::move(r));
      }
    }

    // ---- non-CDN subresources -----------------------------------------
    const std::size_t noncdn_count =
        draw_count(rng, config.noncdn_count_median, config.noncdn_count_sigma, 2, 250);
    for (std::size_t i = 0; i < noncdn_count; ++i) {
      Resource r;
      r.id = next_resource_id++;
      std::vector<double> weights(noncdn_domains.size(), 1.0);
      weights[0] = 2.5;  // most first-party assets come from the origin host
      r.domain = noncdn_domains[rng.weighted_index(weights)];
      r.type = draw_type(rng);
      char path[96];
      std::snprintf(path, sizeof path, "/static/r%u.%s", r.id, type_extension(r.type));
      r.path = path;
      r.size_bytes = draw_size_bytes(rng, config.noncdn_size_median_kb, config.noncdn_size_sigma,
                                     config.max_size_kb, r.type);
      r.request_bytes = static_cast<std::size_t>(rng.uniform_int(350, 800));
      r.is_cdn = false;
      r.provider = cdn::ProviderId::None;
      r.discovery_wave = rng.bernoulli(config.wave1_fraction_noncdn) ? 1 : 0;
      r.response_headers = make_origin_headers(rng);
      page.resources.push_back(std::move(r));
    }

    // Interleave CDN and non-CDN resources in document order.
    rng.shuffle(page.resources);
    w.sites.push_back(std::move(site));
  }

  return w;
}

}  // namespace h3cdn::web
