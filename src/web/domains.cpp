#include "web/domains.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace h3cdn::web {

namespace {

// Recognizable hostnames per provider; list lengths match (or exceed) each
// provider's ProviderTraits::domain_count, from which the first N are taken.
const std::vector<std::string>& name_pool(cdn::ProviderId id) {
  using P = cdn::ProviderId;
  static const std::unordered_map<int, std::vector<std::string>> pools = {
      {static_cast<int>(P::Google),
       {"fonts.gstatic.com", "www.gstatic.com", "fonts.googleapis.com", "ajax.googleapis.com",
        "www.googletagmanager.com", "www.google-analytics.com", "apis.google.com",
        "storage.googleapis.com", "lh3.googleusercontent.com", "i.ytimg.com",
        "maps.googleapis.com", "cdn.ampproject.org"}},
      {static_cast<int>(P::Cloudflare),
       {"cdnjs.cloudflare.com", "static.cloudflareinsights.com", "cdn.jsdelivr.net",
        "unpkg.com", "assets.cf-static.net", "media.cf-cache.net", "js.cf-edge.net",
        "img.cf-edge.net", "embed.cf-stream.net", "fonts.cf-static.net"}},
      {static_cast<int>(P::Amazon),
       {"d1a2b3c4.cloudfront.net", "d2x9y8z7.cloudfront.net", "d3m4n5o6.cloudfront.net",
        "d4q7r8s9.cloudfront.net", "d5t1u2v3.cloudfront.net", "m.media-amazon.com",
        "images-na.ssl-images-amazon.com", "s3.amazonaws.com", "d6w4x5y6.cloudfront.net"}},
      {static_cast<int>(P::Akamai),
       {"static.akamaized.net", "media.akamaized.net", "s.akamaihd.net", "img.akamaihd.net",
        "assets.akamai-edge.net", "scripts.akamai-edge.net", "dl.akamai-cdn.net",
        "video.akamaized.net"}},
      {static_cast<int>(P::Fastly),
       {"github.githubassets.com", "assets.fastly-edge.net", "cdn.fastly-insights.com",
        "static.fastly-cache.net", "img.fastly-cache.net", "js.fastly-edge.net",
        "media.fastly-cache.net"}},
      {static_cast<int>(P::Microsoft),
       {"ajax.aspnetcdn.com", "static2.sharepointonline.com", "cdn.azureedge.net",
        "assets.azureedge.net", "media.azureedge.net", "js.monitor.azure.com"}},
      {static_cast<int>(P::QuicCloud), {"cdn.quic.cloud", "img.quic.cloud"}},
      {static_cast<int>(P::Other),
       {"cdn.sstatic.net", "cdn.onenet-cdn.com", "static.bunny-edge.net", "assets.kxcdn.com"}},
  };
  auto it = pools.find(static_cast<int>(id));
  H3CDN_EXPECTS(it != pools.end());
  return it->second;
}

}  // namespace

DomainUniverse DomainUniverse::create(util::Rng rng) {
  DomainUniverse u;
  for (const auto& traits : cdn::ProviderRegistry::all()) {
    const auto& pool = name_pool(traits.id);
    H3CDN_EXPECTS(pool.size() >= static_cast<std::size_t>(traits.domain_count));

    // Zipf-flavoured popularity with mild random perturbation: the first
    // domains (fonts, analytics, the primary asset host) dominate traffic.
    std::vector<DomainInfo> infos;
    double total_weight = 0.0;
    for (int i = 0; i < traits.domain_count; ++i) {
      DomainInfo d;
      d.name = pool[static_cast<std::size_t>(i)];
      d.is_cdn = true;
      d.provider = traits.id;
      d.tls_version = traits.tls_version;
      d.popularity = (1.0 / std::pow(i + 1.0, 0.9)) * rng.uniform(0.85, 1.15);
      total_weight += d.popularity;
      infos.push_back(std::move(d));
    }

    // Deterministic H3 flag assignment. Pages pick a provider's domains
    // proportionally to popularity AND concentrate resources on the picked
    // few, so a domain's *request* share is roughly its popularity squared
    // (picking × within-page share). Greedily enable H3 on domains, most
    // popular first, while the squared-popularity share stays near the
    // provider's adoption target; this pins realized Table II / Fig. 2
    // adoption to the calibration regardless of seed.
    double eff_total = 0.0;
    for (const auto& d : infos) eff_total += d.popularity * d.popularity;
    std::vector<std::size_t> order(infos.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return infos[a].popularity > infos[b].popularity;
    });
    double cum = 0.0;
    for (std::size_t idx : order) {
      const double w = infos[idx].popularity * infos[idx].popularity / eff_total;
      if (cum + w <= traits.h3_adoption + 0.04) {
        infos[idx].supports_h3 = true;
        cum += w;
      }
    }

    auto& names = u.by_provider_[static_cast<int>(traits.id)];
    for (auto& d : infos) {
      names.push_back(d.name);
      u.domains_.emplace(d.name, std::move(d));
    }
    // popularity-descending order for per-page domain selection
    std::sort(names.begin(), names.end(), [&](const std::string& a, const std::string& b) {
      return u.domains_.at(a).popularity > u.domains_.at(b).popularity;
    });
  }
  return u;
}

const DomainInfo& DomainUniverse::add_site_domain(DomainInfo info) {
  H3CDN_EXPECTS(!info.is_cdn);
  return add_domain(std::move(info));
}

const DomainInfo& DomainUniverse::add_domain(DomainInfo info) {
  const bool is_cdn = info.is_cdn;
  const auto provider = info.provider;
  const std::string name = info.name;
  auto [it, inserted] = domains_.emplace(name, std::move(info));
  H3CDN_EXPECTS(inserted);
  if (is_cdn) by_provider_[static_cast<int>(provider)].push_back(name);
  return it->second;
}

const DomainInfo& DomainUniverse::add_shard_domain(DomainInfo info) {
  H3CDN_EXPECTS(info.is_cdn);
  const std::string name = info.name;
  auto [it, inserted] = domains_.emplace(name, std::move(info));
  H3CDN_EXPECTS(inserted);
  return it->second;
}

const DomainInfo& DomainUniverse::get(const std::string& name) const {
  auto it = domains_.find(name);
  H3CDN_EXPECTS(it != domains_.end());
  return it->second;
}

bool DomainUniverse::contains(const std::string& name) const {
  return domains_.count(name) > 0;
}

DomainInfo& DomainUniverse::mutable_get(const std::string& name) {
  auto it = domains_.find(name);
  H3CDN_EXPECTS(it != domains_.end());
  return it->second;
}

std::vector<std::string> DomainUniverse::all_domain_names() const {
  std::vector<std::string> out;
  out.reserve(domains_.size());
  for (const auto& [name, info] : domains_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<std::string>& DomainUniverse::cdn_domains(cdn::ProviderId id) const {
  static const std::vector<std::string> empty;
  auto it = by_provider_.find(static_cast<int>(id));
  return it == by_provider_.end() ? empty : it->second;
}

std::vector<std::string> DomainUniverse::all_cdn_domains() const {
  std::vector<std::string> out;
  for (const auto& [id, names] : by_provider_) out.insert(out.end(), names.begin(), names.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace h3cdn::web
