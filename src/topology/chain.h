// The chained-path subsystem tying relays together (docs/TOPOLOGY.md).
//
// A Chain owns the relay tiers of one PathPlan and wires them recursively
// through the transport ServerHold mechanism: when a downstream request
// fully arrives at relay r's server side, the hold fires, relay r fetches
// the resource from tier r+1 (or serves its TierCache on the terminal
// relay), and only then resumes the downstream response — attaching an
// http::UpstreamRecord so every hop's own HAR-style timings ride back to
// the client for per-hop PLT attribution (obs/critical_path.h).
//
// One Chain is shared by every client Environment of a cell (fleet or
// probe): the relays' upstream pools persist across pages and clients,
// which is exactly the mid-tier connection-reuse/HoL-coupling effect the
// proxy-integration literature measures.
//
// Fault model: kill_midtier() marks the chain dead and kills every response
// currently held at the mid-tier with a typed ConnectionError::Killed. The
// client pool's connection_failed hook then invalidates the cached origin
// and the next resolve falls back to the direct path (browser::Environment
// consults fallen_back()).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "topology/hop_relay.h"
#include "topology/path_plan.h"
#include "transport/server_hold.h"
#include "util/rng.h"
#include "web/domains.h"

namespace h3cdn::topology {

struct ChainConfig {
  PathPlan plan;  // must have >= 2 hops (use no Chain at all for direct)
  // Per-relay upstream link parameters, index = relay level. Missing entries
  // take RelayLinkConfig defaults; the terminal relay's entry describes the
  // mid-tier -> edge hop.
  std::vector<RelayLinkConfig> links;
  std::size_t tier_cache_capacity = 4096;
  // Per-request relay CPU added when resuming a downstream response after an
  // upstream fill; cache hits pay tier_hit_think instead.
  Duration relay_proc_think = usec(250);
  Duration tier_hit_think = usec(450);
  double relay_nic_bandwidth_bps = 10e9;
  Duration relay_nic_latency = usec(150);
};

class Chain {
 public:
  Chain(sim::Simulator& sim, const web::DomainUniverse& universe, ChainConfig config,
        util::Rng rng);
  ~Chain();
  Chain(const Chain&) = delete;
  Chain& operator=(const Chain&) = delete;

  /// Whether this domain is routed through the relay chain. Only CDN-hosted
  /// domains ride it; first-party origins stay direct.
  [[nodiscard]] bool handles(const std::string& domain) const;

  /// handles() AND the chain has not fallen back to the direct path.
  [[nodiscard]] bool active_for(const std::string& domain) const {
    return !killed_ && handles(domain);
  }

  /// Protocol of the client-facing hop (drives browser h3_enabled and the
  /// resolved OriginInfo's capability bits).
  [[nodiscard]] bool client_h3() const { return config_.plan.hop_h3(0); }

  /// The response gate for a client request entering the chain at relay 0.
  [[nodiscard]] transport::ServerHold make_client_hold(const http::Request& request,
                                                       http::HttpVersion version);

  /// Pre-warms the terminal tier's edge cache for one resource.
  void warm(const std::string& domain, const std::string& key);

  /// Kills the mid-tier: every response currently held there dies with a
  /// typed ConnectionError::Killed, and all later chain traffic is refused
  /// the same way until clients fall back to the direct path. Idempotent.
  void kill_midtier();
  [[nodiscard]] bool fallen_back() const { return killed_; }

  /// Records one resolve that fell back to the direct path (Environment).
  void note_direct_resolution() { ++direct_resolutions_; }

  [[nodiscard]] const ChainConfig& config() const { return config_; }
  [[nodiscard]] std::size_t relay_count() const { return relays_.size(); }
  [[nodiscard]] const HopRelay& relay(std::size_t level) const { return *relays_.at(level); }
  [[nodiscard]] const TierCache* tier_cache() const;
  [[nodiscard]] std::uint64_t holds_killed() const { return holds_killed_; }
  [[nodiscard]] std::uint64_t direct_resolutions() const { return direct_resolutions_; }
  [[nodiscard]] std::uint64_t relayed_requests() const { return relayed_requests_; }

  /// Tears down every relay's upstream connections (end of a cell).
  void close();

 private:
  void on_request_at(std::size_t level, const http::Request& request,
                     const transport::ServerHoldControls& controls);
  [[nodiscard]] http::ServerHoldFactory hold_factory(std::size_t level);

  struct Pending {
    std::size_t level = 0;
    transport::ServerHoldControls controls;
  };

  sim::Simulator& sim_;
  const web::DomainUniverse& universe_;
  ChainConfig config_;
  util::Rng rng_;
  std::vector<std::unique_ptr<HopRelay>> relays_;
  std::map<std::uint64_t, Pending> pending_;  // held downstream responses
  std::uint64_t next_pending_ = 0;
  bool killed_ = false;
  std::uint64_t holds_killed_ = 0;
  std::uint64_t direct_resolutions_ = 0;
  std::uint64_t relayed_requests_ = 0;
};

}  // namespace h3cdn::topology
