#include "topology/chain.h"

#include <utility>

#include "util/check.h"

namespace h3cdn::topology {

Chain::Chain(sim::Simulator& sim, const web::DomainUniverse& universe, ChainConfig config,
             util::Rng rng)
    : sim_(sim), universe_(universe), config_(std::move(config)), rng_(rng) {
  H3CDN_EXPECTS(config_.plan.relay_count() >= 1);
  const std::size_t relays = config_.plan.relay_count();
  for (std::size_t level = 0; level < relays; ++level) {
    HopRelay::Config rc;
    rc.level = level;
    rc.terminal = level + 1 == relays;
    rc.name = rc.terminal ? "mid-tier" : (relays == 2 ? "proxy" : "proxy" + std::to_string(level));
    rc.upstream_h3 = config_.plan.hop_h3(level + 1);
    rc.link = level < config_.links.size() ? config_.links[level] : RelayLinkConfig{};
    rc.tier_cache_capacity = config_.tier_cache_capacity;
    rc.nic_bandwidth_bps = config_.relay_nic_bandwidth_bps;
    rc.nic_latency = config_.relay_nic_latency;
    relays_.push_back(std::make_unique<HopRelay>(sim_, universe_, std::move(rc),
                                                 rng_.fork("relay").fork(level)));
  }
  // Chain the tiers: relay r's upstream requests are gated by relay r+1's
  // hold. The closures only dereference relays_ at fetch time, so wiring
  // before traffic starts is safe.
  for (std::size_t level = 0; level + 1 < relays; ++level) {
    relays_[level]->set_upstream_hold(hold_factory(level + 1));
  }
}

Chain::~Chain() = default;

bool Chain::handles(const std::string& domain) const {
  return universe_.contains(domain) && universe_.get(domain).is_cdn;
}

http::ServerHoldFactory Chain::hold_factory(std::size_t level) {
  return [this, level](const http::Request& request,
                       http::HttpVersion /*version*/) -> transport::ServerHold {
    return [this, level, request](TimePoint /*now*/,
                                  const transport::ServerHoldControls& controls) {
      on_request_at(level, request, controls);
    };
  };
}

transport::ServerHold Chain::make_client_hold(const http::Request& request,
                                              http::HttpVersion /*version*/) {
  return [this, request](TimePoint /*now*/, const transport::ServerHoldControls& controls) {
    on_request_at(0, request, controls);
  };
}

void Chain::on_request_at(std::size_t level, const http::Request& request,
                          const transport::ServerHoldControls& controls) {
  HopRelay& relay = *relays_.at(level);
  const std::size_t midtier = relays_.size() - 1;
  if (killed_ && level == midtier) {
    // The mid-tier process is gone: the downstream connection dies with a
    // typed Killed, and the client pool's failure hook routes the rescue to
    // the direct path.
    ++holds_killed_;
    controls.kill();
    return;
  }
  ++relayed_requests_;
  const std::string key = request.domain + request.path;
  if (relay.terminal() && relay.cache_lookup(key)) {
    auto record = std::make_shared<http::UpstreamRecord>();
    record->tier = relay.name();
    record->cache_hit = true;
    controls.resume(config_.tier_hit_think, std::move(record));
    return;
  }

  const std::uint64_t token = next_pending_++;
  pending_.emplace(token, Pending{level, controls});
  http::Request upstream = request;
  upstream.server_hold = nullptr;  // the relay pool re-derives gates per hop
  relay.fetch(upstream, [this, level, key, token](const http::EntryTimings& t) {
    auto it = pending_.find(token);
    if (it == pending_.end()) return;  // killed while the fill was in flight
    transport::ServerHoldControls held = std::move(it->second.controls);
    pending_.erase(it);
    HopRelay& r = *relays_.at(level);
    if (r.terminal() && !t.failed) r.cache_fill(key);
    auto record = std::make_shared<http::UpstreamRecord>();
    record->tier = r.name();
    record->timings = t;
    // A failed upstream still resumes the downstream response (the relay
    // serves an error body of the same wire size); the failure is visible in
    // the record for attribution and tests.
    held.resume(config_.relay_proc_think, std::move(record));
  });
}

void Chain::warm(const std::string& domain, const std::string& key) {
  relays_.back()->warm_edge(domain, key);
}

void Chain::kill_midtier() {
  if (killed_) return;
  killed_ = true;
  const std::size_t midtier = relays_.size() - 1;
  // Kill every response currently held at the mid-tier; holds at proxy
  // levels stay pending and settle when their (now-doomed) upstream fetch
  // returns.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.level == midtier) {
      ++holds_killed_;
      it->second.controls.kill();
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

const TierCache* Chain::tier_cache() const { return relays_.back()->cache(); }

void Chain::close() {
  for (auto& relay : relays_) relay->close();
}

}  // namespace h3cdn::topology
