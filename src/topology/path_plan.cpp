#include "topology/path_plan.h"

namespace h3cdn::topology {

std::optional<PathPlan> PathPlan::parse(const std::string& text) {
  if (text.empty()) return std::nullopt;
  PathPlan plan;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('-', begin);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(begin, end - begin);
    if (token == "h2") {
      plan.hops_.push_back(http::HttpVersion::H2);
    } else if (token == "h3") {
      plan.hops_.push_back(http::HttpVersion::H3);
    } else {
      return std::nullopt;
    }
    begin = end + 1;
    if (end == text.size()) break;
  }
  return plan;
}

std::string PathPlan::name() const {
  if (hops_.empty()) return "direct";
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i > 0) out += '-';
    out += hops_[i] == http::HttpVersion::H3 ? "h3" : "h2";
  }
  return out;
}

}  // namespace h3cdn::topology
