#include "topology/hop_relay.h"

#include <algorithm>

#include "cdn/provider.h"
#include "util/check.h"

namespace h3cdn::topology {

HopRelay::HopRelay(sim::Simulator& sim, const web::DomainUniverse& universe, Config config,
                   util::Rng rng)
    : sim_(sim), universe_(universe), config_(std::move(config)), rng_(rng) {
  net::LinkConfig nic;
  nic.latency = config_.nic_latency;
  nic.bandwidth_bps = config_.nic_bandwidth_bps;
  nic.loss_rate = 0.0;  // loss lives on the per-domain paths
  nic.jitter_max = Duration::zero();
  nic_up_ = std::make_unique<net::Link>(sim_, nic, rng_.fork("nic-up"));
  nic_down_ = std::make_unique<net::Link>(sim_, nic, rng_.fork("nic-down"));
  if (config_.terminal) cache_ = std::make_unique<TierCache>(config_.tier_cache_capacity);

  http::PoolConfig pc;
  pc.h3_enabled = config_.upstream_h3;
  // The plan PICKS the hop protocol; an upstream death must not silently turn
  // an h3 hop into an h2 one for the rest of the run.
  pc.h3_fallback_enabled = false;
  if (config_.terminal) {
    pc.think_time = [this](const http::Request& request, http::HttpVersion version) {
      Upstream& up = upstream(request.domain);
      H3CDN_ASSERT(up.edge != nullptr);
      return up.edge->think_time(request.domain + request.path, version, sim_.now());
    };
  }
  pool_ = std::make_unique<http::ConnectionPool>(
      sim_, pc, [this](const std::string& domain) { return upstream(domain).info; },
      &tickets_, rng_.fork("pool"));
}

HopRelay::~HopRelay() = default;

void HopRelay::set_upstream_hold(http::ServerHoldFactory factory) {
  H3CDN_EXPECTS(!config_.terminal);
  H3CDN_EXPECTS(fetches_ == 0);
  // The pool copies its config at construction; rebuild it with the gate so
  // every upstream request is routed through the next relay.
  http::PoolConfig pc;
  pc.h3_enabled = config_.upstream_h3;
  pc.h3_fallback_enabled = false;
  pc.server_hold = std::move(factory);
  pool_ = std::make_unique<http::ConnectionPool>(
      sim_, pc, [this](const std::string& domain) { return upstream(domain).info; },
      &tickets_, rng_.fork("pool"));
}

HopRelay::Upstream& HopRelay::upstream(const std::string& domain) {
  auto it = upstreams_.find(domain);
  if (it != upstreams_.end()) return it->second;

  const web::DomainInfo& dinfo = universe_.get(domain);
  const cdn::ProviderTraits& traits = cdn::ProviderRegistry::get(dinfo.provider);
  util::Rng domain_rng = rng_.fork(domain);

  Upstream up;
  net::PathConfig pc;
  pc.rtt = config_.link.rtt;
  pc.bandwidth_bps = std::min(config_.link.bandwidth_bps, traits.edge_bandwidth_bps);
  pc.loss_rate = config_.link.loss_rate;
  pc.jitter_max = config_.link.jitter_max;
  up.path = std::make_unique<net::NetPath>(sim_, pc, domain_rng.fork("path"));
  up.path->attach_access(nic_up_.get(), nic_down_.get());
  if (config_.terminal) {
    up.edge = std::make_unique<cdn::EdgeServer>(traits, domain_rng.fork("server"));
  }
  up.info.path = up.path.get();
  up.info.supports_h2 = true;
  // Per-hop protocol choice is absolute: the relay's upstream hop speaks
  // exactly what the plan says, regardless of the public DomainInfo.
  up.info.supports_h3 = config_.upstream_h3;
  up.info.tls_version = dinfo.tls_version;

  auto [ins, ok] = upstreams_.emplace(domain, std::move(up));
  H3CDN_ASSERT(ok);
  return ins->second;
}

void HopRelay::fetch(const http::Request& request, http::FetchDone done) {
  ++fetches_;
  pool_->fetch(request, std::move(done));
}

bool HopRelay::cache_lookup(const std::string& key) {
  return cache_ != nullptr && cache_->lookup(key);
}

void HopRelay::cache_fill(const std::string& key) {
  if (cache_ != nullptr) cache_->fill(key);
}

void HopRelay::warm_edge(const std::string& domain, const std::string& key) {
  if (!config_.terminal) return;
  Upstream& up = upstream(domain);
  if (up.edge != nullptr) up.edge->warm(key);
}

const http::PoolStats& HopRelay::pool_stats() const { return pool_->stats(); }

void HopRelay::close() { pool_->close_all(); }

}  // namespace h3cdn::topology
