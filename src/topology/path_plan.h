// PathPlan: the per-hop protocol choice of a chained delivery path, written
// as hyphen-separated tokens from the client outward, e.g.
//
//   "h3"        client ---------------------------> edge   (direct, 1 hop)
//   "h3-h2"     client --h3--> mid-tier --h2--> edge       (2 hops)
//   "h2-h3-h3"  client --h2--> proxy --h3--> mid-tier --h3--> edge
//
// A plan with k tokens has k hops and k-1 relays; the LAST relay is always
// the caching mid-tier (topology::TierCache), earlier relays are cacheless
// forward proxies. See docs/TOPOLOGY.md for the grammar and invariants.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "http/types.h"

namespace h3cdn::topology {

class PathPlan {
 public:
  PathPlan() = default;

  /// Parses "h2"/"h3" tokens joined by '-'. Returns nullopt on an empty
  /// string, unknown token, or empty token ("h3--h2").
  static std::optional<PathPlan> parse(const std::string& text);

  /// Canonical round-trip form ("h3-h2"); "direct" for an empty plan.
  [[nodiscard]] std::string name() const;

  [[nodiscard]] std::size_t hop_count() const { return hops_.size(); }
  /// Relays interposed on the path (hop_count - 1); 0 = the classic direct
  /// client->edge model.
  [[nodiscard]] std::size_t relay_count() const {
    return hops_.empty() ? 0 : hops_.size() - 1;
  }
  [[nodiscard]] bool direct() const { return hops_.size() <= 1; }

  /// Protocol of hop `i` (0 = client-facing hop).
  [[nodiscard]] http::HttpVersion hop(std::size_t i) const { return hops_.at(i); }
  [[nodiscard]] bool hop_h3(std::size_t i) const {
    return hops_.at(i) == http::HttpVersion::H3;
  }

 private:
  std::vector<http::HttpVersion> hops_;
};

}  // namespace h3cdn::topology
