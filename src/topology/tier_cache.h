// Mid-tier cache: an LRU over resource keys (cdn::LruCache) plus fill
// accounting. Unlike the edge caches — which the study pre-warms to match
// the paper's warm-visit methodology — a TierCache starts COLD: the first
// request for a key pays the full upstream fetch and fills the cache, later
// requests are served after ChainConfig::tier_hit_think. The hit ratio of a
// topology run is therefore a measured output, not a configured input.
#pragma once

#include <cstdint>
#include <string>

#include "cdn/lru_cache.h"

namespace h3cdn::topology {

class TierCache {
 public:
  explicit TierCache(std::size_t capacity) : cache_(capacity) {}

  /// True if the key is cached (refreshes recency and counts a hit);
  /// otherwise counts a miss.
  bool lookup(const std::string& key) { return cache_.touch(key); }

  /// Records a completed upstream fill.
  void fill(const std::string& key) {
    cache_.insert(key);
    ++fills_;
  }

  [[nodiscard]] std::uint64_t hits() const { return cache_.hits(); }
  [[nodiscard]] std::uint64_t misses() const { return cache_.misses(); }
  [[nodiscard]] std::uint64_t fills() const { return fills_; }
  [[nodiscard]] std::size_t size() const { return cache_.size(); }
  [[nodiscard]] std::size_t capacity() const { return cache_.capacity(); }

 private:
  cdn::LruCache cache_;
  std::uint64_t fills_ = 0;
};

}  // namespace h3cdn::topology
