// One relay tier on a chained delivery path (docs/TOPOLOGY.md).
//
// A HopRelay terminates the downstream-facing connection (via the transport
// ServerHold mechanism — see topology::Chain) and fetches the resource from
// the next tier up through its OWN http::ConnectionPool. The pool is
// persistent and shared by every downstream client of the chain, so
// upstream connection reuse — and, on H2 upstream hops, cross-request
// head-of-line coupling — is modeled exactly like a real shared proxy tier.
//
// The LAST relay of a plan is the caching mid-tier: it consults a TierCache
// before going upstream and its upstream "next tier" is the provider's edge
// server proper (per-domain cdn::EdgeServer owned by the relay). Earlier
// relays are cacheless forward proxies whose upstream requests are gated by
// the NEXT relay's hold.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "cdn/edge_server.h"
#include "http/pool.h"
#include "net/link.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "tls/ticket_store.h"
#include "topology/tier_cache.h"
#include "util/rng.h"
#include "web/domains.h"

namespace h3cdn::topology {

/// Parameters of one relay->next-tier hop.
struct RelayLinkConfig {
  Duration rtt = msec(18);       // inter-tier round trip (backbone)
  double bandwidth_bps = 2e9;    // per-domain path capacity
  double loss_rate = 0.0;        // injected loss on this hop
  Duration jitter_max = usec(400);
};

class HopRelay {
 public:
  struct Config {
    std::string name;            // "proxy", "mid-tier", ... (tier tag)
    std::size_t level = 0;       // 0 = client-facing relay
    bool terminal = false;       // last relay: owns the TierCache + edges
    bool upstream_h3 = true;     // protocol of the relay->next-tier hop
    RelayLinkConfig link;
    std::size_t tier_cache_capacity = 4096;
    // Relay NIC (all upstream paths serialize through these shared links,
    // coupling concurrent clients at the relay egress).
    double nic_bandwidth_bps = 10e9;
    Duration nic_latency = usec(150);
  };

  HopRelay(sim::Simulator& sim, const web::DomainUniverse& universe, Config config,
           util::Rng rng);
  ~HopRelay();
  HopRelay(const HopRelay&) = delete;
  HopRelay& operator=(const HopRelay&) = delete;

  /// Installs the upstream response gate (the NEXT relay's hold factory).
  /// Must be called before the first fetch; only meaningful on non-terminal
  /// relays.
  void set_upstream_hold(http::ServerHoldFactory factory);

  /// Fetches one resource from the next tier through the shared pool.
  void fetch(const http::Request& request, http::FetchDone done);

  /// Terminal-relay cache interface (no-ops return miss on proxies).
  bool cache_lookup(const std::string& key);
  void cache_fill(const std::string& key);

  /// Pre-warms the terminal tier's per-domain EDGE cache (the chain's stand-in
  /// for the study's warm visit). The TierCache itself stays cold.
  void warm_edge(const std::string& domain, const std::string& key);

  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] std::size_t level() const { return config_.level; }
  [[nodiscard]] bool terminal() const { return config_.terminal; }
  [[nodiscard]] const TierCache* cache() const { return cache_.get(); }
  [[nodiscard]] const http::PoolStats& pool_stats() const;
  [[nodiscard]] std::uint64_t fetches() const { return fetches_; }

  /// Tears down every upstream connection (end of a topology cell).
  void close();

 private:
  struct Upstream {
    std::unique_ptr<net::NetPath> path;
    std::unique_ptr<cdn::EdgeServer> edge;  // terminal relays only
    http::OriginInfo info;
  };

  Upstream& upstream(const std::string& domain);

  sim::Simulator& sim_;
  const web::DomainUniverse& universe_;
  Config config_;
  util::Rng rng_;
  std::unique_ptr<net::Link> nic_up_;
  std::unique_ptr<net::Link> nic_down_;
  std::unique_ptr<TierCache> cache_;  // terminal relays only
  tls::SessionTicketStore tickets_;
  std::unordered_map<std::string, Upstream> upstreams_;
  std::unique_ptr<http::ConnectionPool> pool_;
  std::uint64_t fetches_ = 0;
};

}  // namespace h3cdn::topology
