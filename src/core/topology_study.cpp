#include "core/topology_study.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "browser/waterfall.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeline.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace h3cdn::core {

bool TopologyResult::all_passed() const {
  for (const TopologyHopRow& row : rows) {
    if (!row.violations.empty()) return false;
  }
  return true;
}

namespace {

struct TopoCell {
  topology::PathPlan plan;
  double loss_rate = 0.0;
};

struct TopoCellResult {
  std::vector<TopologyHopRow> rows;  // e2e first, then hop0..hopN
  std::unique_ptr<RunObservability> observability;
};

std::string loss_label(double loss_rate) { return util::fmt(loss_rate * 100.0, 2); }

TopoCellResult run_topology_cell(const web::Workload& workload, const TopologyConfig& config,
                                 const TopoCell& cell,
                                 const std::optional<ObservabilityConfig>& obs_config) {
  TopoCellResult out;
  if (obs_config.has_value()) {
    out.observability = std::make_unique<RunObservability>(*obs_config);
  }
  RunObservability* sink = out.observability.get();
  obs::ScopedMetrics scoped_metrics(sink ? &sink->metrics() : nullptr);
  obs::ScopedTimeline scoped_timeline(sink ? &sink->timeline() : nullptr);
  obs::ScopedProfiler scoped_profiler(sink ? &sink->profiler() : nullptr);

  // Every cell draws from the SAME rng root on purpose: environments, chains
  // and browsers replay identical random streams, so plan-vs-plan and
  // proxied-vs-direct deltas are paired comparisons — only the per-hop
  // protocols and the injected loss differ between cells.
  sim::Simulator sim;
  util::Rng root(util::derive_seed({config.seed, 0x70F0ULL}));

  browser::VantageConfig vantage = config.vantage;
  vantage.loss_rate = cell.loss_rate;
  browser::Environment env(sim, workload.universe, vantage, root.fork("env"));

  std::unique_ptr<topology::Chain> chain;
  if (!cell.plan.direct()) {
    topology::ChainConfig cc = config.chain;
    cc.plan = cell.plan;
    chain = std::make_unique<topology::Chain>(sim, workload.universe, cc, root.fork("chain"));
    env.set_topology(chain.get());
  }

  browser::BrowserConfig bc = config.browser;
  bc.h3_enabled = cell.plan.hop_h3(0);
  browser::Browser browser(sim, env, nullptr, bc, root.fork("browser"));

  const std::string run_label =
      "topology/" + cell.plan.name() + "/loss" + loss_label(cell.loss_rate);
  const std::size_t sites = std::min(config.sites, workload.sites.size());

  std::vector<double> plt_ms;
  obs::PhaseVector e2e_sum;
  std::vector<obs::PhaseVector> hop_sums;
  double plt_sum_ms = 0.0;
  double max_reagg_us = 0.0;
  double max_phase_residual_ms = 0.0;

  for (std::size_t si = 0; si < sites; ++si) {
    const web::WebPage& page = workload.sites[si].page;
    env.warm_page(page);
    browser::PageLoadResult load = browser.visit_and_run(page);

    obs::Waterfall wf = browser::make_waterfall(load.har, run_label);
    const obs::CriticalPathResult cp = obs::analyze_critical_path(wf);
    plt_ms.push_back(cp.plt_ms);
    plt_sum_ms += cp.plt_ms;
    e2e_sum += cp.phases;
    max_phase_residual_ms =
        std::max(max_phase_residual_ms, std::abs(cp.phases.sum() - cp.plt_ms));

    // The re-aggregation invariant, per page: the hop slices must sum back to
    // the end-to-end vector phase-for-phase.
    if (cp.by_hop.empty()) {
      if (hop_sums.empty()) hop_sums.resize(1);
      hop_sums[0] += cp.phases;
    } else {
      obs::PhaseVector reagg;
      if (hop_sums.size() < cp.by_hop.size()) hop_sums.resize(cp.by_hop.size());
      for (std::size_t h = 0; h < cp.by_hop.size(); ++h) {
        hop_sums[h] += cp.by_hop[h];
        reagg += cp.by_hop[h];
      }
      for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
        max_reagg_us = std::max(max_reagg_us, std::abs(reagg.ms[p] - cp.phases.ms[p]) * 1e3);
      }
    }

    if (sink != nullptr) sink->add_waterfall(std::move(wf));
    // Idle gap between visits: lets relay pools close idle upstream sessions
    // the same way a paced probe client would.
    sim.schedule_in(msec(100), [] {});
    sim.run();
  }
  if (chain != nullptr) chain->close();

  std::sort(plt_ms.begin(), plt_ms.end());
  const double mean_plt = sites > 0 ? plt_sum_ms / static_cast<double>(sites) : 0.0;
  const double p95_plt = util::quantile_sorted(plt_ms, 0.95);

  TopologyHopRow e2e;
  e2e.plan = cell.plan.name();
  e2e.loss_rate = cell.loss_rate;
  e2e.hop = "e2e";
  e2e.pages = sites;
  e2e.mean_plt_ms = mean_plt;
  e2e.p95_plt_ms = p95_plt;
  e2e.mean_phases = e2e_sum;
  if (sites > 0) e2e.mean_phases /= static_cast<double>(sites);
  e2e.reagg_residual_us = max_reagg_us;
  if (chain != nullptr) {
    e2e.relayed_requests = chain->relayed_requests();
    e2e.holds_killed = chain->holds_killed();
    if (const topology::TierCache* tc = chain->tier_cache(); tc != nullptr) {
      const std::uint64_t lookups = tc->hits() + tc->misses();
      e2e.tier_hit_ratio =
          lookups > 0 ? static_cast<double>(tc->hits()) / static_cast<double>(lookups) : 0.0;
    }
  }

  // Invariants (ISSUE 10): the dissection stays additive end-to-end AND
  // across hops, and a chained cell actually routed traffic over its relays.
  if (max_reagg_us > 1.0) {
    e2e.violations.push_back("reagg-residual: " + util::fmt(max_reagg_us, 3) + " us");
  }
  if (max_phase_residual_ms > 1e-3) {
    e2e.violations.push_back("phase-sum: residual " + util::fmt(max_phase_residual_ms, 6) +
                             " ms");
  }
  if (chain != nullptr && e2e.relayed_requests == 0) {
    e2e.violations.push_back("inert-chain: no requests traversed the relays");
  }
  out.rows.push_back(std::move(e2e));

  if (hop_sums.size() > 1) {
    for (std::size_t h = 0; h < hop_sums.size(); ++h) {
      TopologyHopRow row;
      row.plan = cell.plan.name();
      row.loss_rate = cell.loss_rate;
      row.hop = "hop" + std::to_string(h);
      row.pages = sites;
      row.mean_plt_ms = mean_plt;
      row.p95_plt_ms = p95_plt;
      row.mean_phases = hop_sums[h];
      if (sites > 0) row.mean_phases /= static_cast<double>(sites);
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace

TopologyResult run_topology(const TopologyConfig& config, RunObservability* observability) {
  H3CDN_EXPECTS(!config.plans.empty());
  H3CDN_EXPECTS(!config.loss_rates.empty());
  H3CDN_EXPECTS(config.sites >= 1);
  H3CDN_EXPECTS(config.jobs >= 0);

  web::WorkloadConfig wc = config.workload;
  wc.site_count = std::max(wc.site_count, config.sites);
  const web::Workload workload = web::generate_workload(wc);

  // Canonical plan list: the configured plans, then (include_direct) one
  // direct baseline per distinct client-facing protocol, in first-appearance
  // order, skipping plans already listed.
  std::vector<topology::PathPlan> plans;
  std::vector<std::string> plan_names;
  auto add_plan = [&](const std::string& name) {
    for (const auto& existing : plan_names) {
      if (existing == name) return;
    }
    auto parsed = topology::PathPlan::parse(name);
    H3CDN_EXPECTS(parsed.has_value());
    plan_names.push_back(parsed->name());
    plans.push_back(std::move(*parsed));
  };
  for (const auto& name : config.plans) add_plan(name);
  if (config.include_direct) {
    const std::size_t configured = plans.size();
    for (std::size_t i = 0; i < configured; ++i) {
      add_plan(plans[i].hop_h3(0) ? "h3" : "h2");
    }
  }

  std::vector<TopoCell> cells;
  for (const auto& plan : plans) {
    for (double loss : config.loss_rates) cells.push_back({plan, loss});
  }

  std::size_t jobs = config.jobs == 0 ? util::ThreadPool::default_jobs()
                                      : static_cast<std::size_t>(config.jobs);
  jobs = std::min(jobs, cells.size());
  util::ThreadPool pool(jobs);

  std::optional<ObservabilityConfig> shard_config;
  if (observability != nullptr) {
    shard_config = observability->config().per_shard(cells.size());
  }

  std::vector<TopoCellResult> shards(cells.size());
  pool.parallel_for(cells.size(), [&](std::size_t i) {
    shards[i] = run_topology_cell(workload, config, cells[i], shard_config);
  });

  TopologyResult result;
  result.sites = std::min(config.sites, workload.sites.size());
  result.plans = plan_names;
  for (TopoCellResult& shard : shards) {
    for (TopologyHopRow& row : shard.rows) result.rows.push_back(std::move(row));
    if (observability != nullptr && shard.observability != nullptr) {
      observability->merge_from(std::move(*shard.observability));
    }
  }
  return result;
}

void print_topology_result(std::ostream& os, const TopologyResult& result) {
  os << "== topology sweep: " << result.plans.size() << " plans, " << result.sites
     << " sites per cell ==\n";
  util::AsciiTable t({"plan", "loss%", "hop", "pages", "plt mean", "plt p95", "quic_hs",
                      "tcp+tls", "ttfb", "transfer", "stalls", "idle", "resid us", "hit%",
                      "relayed", "invariants"});
  for (const TopologyHopRow& r : result.rows) {
    const obs::PhaseVector& v = r.mean_phases;
    std::string invariants = "ok";
    if (r.hop == "e2e" && !r.violations.empty()) {
      invariants.clear();
      for (std::size_t i = 0; i < r.violations.size(); ++i) {
        if (i > 0) invariants += "; ";
        invariants += r.violations[i];
      }
    } else if (r.hop != "e2e") {
      invariants = "";
    }
    t.add_row({r.plan, loss_label(r.loss_rate), r.hop, std::to_string(r.pages),
               util::fmt(r.mean_plt_ms, 1), util::fmt(r.p95_plt_ms, 1),
               util::fmt(v[obs::Phase::QuicHs], 2),
               util::fmt(v[obs::Phase::TcpConnect] + v[obs::Phase::TlsHs], 2),
               util::fmt(v[obs::Phase::TtfbWait], 2), util::fmt(v[obs::Phase::Transfer], 2),
               util::fmt(v[obs::Phase::HolStall] + v[obs::Phase::RetxWait], 2),
               util::fmt(v[obs::Phase::IdleGap], 2),
               r.hop == "e2e" ? util::fmt(r.reagg_residual_us, 3) : "",
               r.hop == "e2e" && r.relayed_requests > 0 ? util::fmt_pct(r.tier_hit_ratio) : "",
               r.hop == "e2e" ? std::to_string(r.relayed_requests) : "", invariants});
  }
  os << t.to_string();
}

std::string topology_result_to_csv(const TopologyResult& result) {
  std::ostringstream os;
  os << "plan,loss_pct,hop,pages,mean_plt_ms,p95_plt_ms,dns_ms,tcp_connect_ms,tls_hs_ms,"
        "quic_hs_ms,ttfb_wait_ms,transfer_ms,hol_stall_ms,retx_wait_ms,idle_gap_ms,"
        "phase_sum_ms,reagg_residual_us,tier_hit_ratio,relayed_requests,holds_killed,"
        "violations\n";
  for (const TopologyHopRow& r : result.rows) {
    os << r.plan << ',' << loss_label(r.loss_rate) << ',' << r.hop << ',' << r.pages << ','
       << util::fmt(r.mean_plt_ms, 4) << ',' << util::fmt(r.p95_plt_ms, 4);
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      os << ',' << util::fmt(r.mean_phases.ms[p], 4);
    }
    os << ',' << util::fmt(r.mean_phases.sum(), 4) << ','
       << util::fmt(r.reagg_residual_us, 4) << ',' << util::fmt(r.tier_hit_ratio, 4) << ','
       << r.relayed_requests << ',' << r.holds_killed << ',';
    for (std::size_t i = 0; i < r.violations.size(); ++i) {
      if (i > 0) os << '|';
      os << r.violations[i];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace h3cdn::core
