#include "core/probe_run.h"

#include <string>
#include <utility>

#include "browser/browser.h"
#include "browser/waterfall.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeline.h"
#include "sim/simulator.h"
#include "tls/ticket_store.h"
#include "util/check.h"
#include "util/rng.h"

namespace h3cdn::core {

ShardResult ProbeRunTask::run() const {
  H3CDN_EXPECTS(config != nullptr);
  H3CDN_EXPECTS(workload != nullptr);

  ShardResult out;
  if (observability.has_value()) {
    out.observability = std::make_unique<RunObservability>(*observability);
  }
  RunObservability* sink = out.observability.get();

  // Install this shard's sinks on the executing thread only (the pointers
  // are thread_local); concurrent shards never observe each other.
  obs::ScopedMetrics scoped_metrics(sink ? &sink->metrics() : nullptr);
  obs::ScopedTimeline scoped_timeline(sink ? &sink->timeline() : nullptr);
  obs::ScopedProfiler scoped_profiler(sink ? &sink->profiler() : nullptr);

  // Seed derivation is identical to the sequential study loop: the root is
  // re-derived from the study seed and forked by (vantage name, probe), so a
  // shard's random stream depends only on its identity, never on which
  // thread runs it or what ran before. The H2 and H3 shards of a probe share
  // this stream on purpose — paths and environment draws pair up, so
  // reductions isolate the protocol effect.
  util::Rng root(util::derive_seed({config->seed, 0x57011dULL}));
  util::Rng probe_rng = root.fork(vantage.name).fork(static_cast<std::uint64_t>(probe));

  browser::VantageConfig shard_vantage = vantage;
  shard_vantage.loss_rate = config->loss_rate;
  // Path seeds are shared across the two modes (same probe, same geography);
  // server timing noise is independent (separate visits).
  shard_vantage.server_noise_salt = h3_enabled ? 0x113 : 0x112;

  sim::Simulator sim;
  browser::Environment env(sim, workload->universe, shard_vantage, probe_rng.fork("env"));

  // The ticket store is what survives page transitions in consecutive mode;
  // the base study clears all client state between pages. It is created
  // here, inside the shard, and dies with it: ticket (and DNS-cache) sharing
  // never crosses a shard boundary. See the affinity notes in
  // tls/ticket_store.h and dns/cache.h.
  tls::SessionTicketStore tickets;
  tls::SessionTicketStore* tickets_ptr = config->consecutive ? &tickets : nullptr;

  browser::BrowserConfig bc = config->browser;
  bc.h3_enabled = h3_enabled;

  // One shard = one Simulator, so all of its traces share a monotonic clock.
  // The pool bus carries cross-connection events (fallbacks, H3-broken
  // marks) onto the same timeline as the packet traces. The label doubles as
  // the stable per-shard connection-id prefix in the merged qlog.
  const std::string run_label =
      shard_vantage.name + "/p" + std::to_string(probe) + (h3_enabled ? "/h3" : "/h2");
  if (sink != nullptr) {
    bc.pool_trace = sink->make_bus_trace(run_label + "/pool");
    auto counter = std::make_shared<std::uint64_t>(0);
    bc.connection_trace_factory = [sink, run_label, counter](const std::string& domain,
                                                             http::HttpVersion version) {
      return sink->make_connection_trace(run_label + "/" + domain + "/" +
                                         http::to_string(version) + "#" +
                                         std::to_string(++*counter));
    };
  }

  browser::Browser browser(sim, env, tickets_ptr, bc,
                           probe_rng.fork(h3_enabled ? "browser-h3" : "browser-h2"));

  // Fixed visiting order (§III-B): sequential over the target list.
  out.visits.reserve(site_count);
  for (std::size_t si = 0; si < site_count; ++si) {
    const web::WebPage& page = workload->sites[si].page;
    if (config->warm_caches) {
      obs::ProfileScope warm_scope("study.warm_caches");
      env.warm_page(page);
    }

    browser::PageLoadResult load = browser.visit_and_run(page);

    PageVisitRecord rec;
    rec.site_index = si;
    rec.vantage = shard_vantage.name;
    rec.probe = probe;
    rec.h3_enabled = h3_enabled;
    rec.har = std::move(load.har);
    if (sink != nullptr) {
      sink->add_waterfall(browser::make_waterfall(rec.har, run_label));
    }
    out.visits.push_back(std::move(rec));

    // Small think-time gap between consecutive page visits.
    sim.schedule_in(msec(100), [] {});
    sim.run();
  }
  return out;
}

}  // namespace h3cdn::core
