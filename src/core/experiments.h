// Experiment drivers: one compute_* function per table/figure of the paper's
// evaluation. Each returns a plain result struct; report.h renders them in
// the paper's layout. See DESIGN.md §3 for the experiment index.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/grouping.h"
#include "analysis/page_metrics.h"
#include "cdn/provider.h"
#include "core/study.h"
#include "obs/critical_path.h"
#include "util/fit.h"
#include "util/stats.h"

namespace h3cdn::core {

// ---------------------------------------------------------------------------
// Table I — H3 support metadata per provider (static registry data).
// ---------------------------------------------------------------------------
struct Table1Row {
  std::string provider;
  int release_year = 0;
  std::string performance_report;
};
std::vector<Table1Row> compute_table1();

// ---------------------------------------------------------------------------
// Table II — requests by HTTP version, split CDN / non-CDN.
// Computed over all H3-enabled-mode visits, with CDN attribution by the
// LocEdge-substitute classifier (as in the paper).
// ---------------------------------------------------------------------------
struct Table2Result {
  std::size_t cdn_h2 = 0, cdn_h3 = 0, cdn_other = 0;
  std::size_t noncdn_h2 = 0, noncdn_h3 = 0, noncdn_other = 0;

  [[nodiscard]] std::size_t cdn_total() const { return cdn_h2 + cdn_h3 + cdn_other; }
  [[nodiscard]] std::size_t noncdn_total() const {
    return noncdn_h2 + noncdn_h3 + noncdn_other;
  }
  [[nodiscard]] std::size_t total() const { return cdn_total() + noncdn_total(); }
  [[nodiscard]] double pct(std::size_t n) const {
    return total() == 0 ? 0.0 : 100.0 * static_cast<double>(n) / static_cast<double>(total());
  }
};
Table2Result compute_table2(const StudyResult& study);

// ---------------------------------------------------------------------------
// Fig. 2 — H3 adoption by provider and market share.
// ---------------------------------------------------------------------------
struct Fig2Row {
  cdn::ProviderId provider = cdn::ProviderId::Other;
  std::size_t h3_requests = 0;
  std::size_t h2_requests = 0;
  double h3_share_within_provider = 0.0;  // h3 / (h2 + h3)
  double share_of_all_h3_cdn = 0.0;       // provider h3 / total h3 CDN requests
  double market_share = 0.0;              // provider total / all CDN requests
};
std::vector<Fig2Row> compute_fig2(const StudyResult& study);

// ---------------------------------------------------------------------------
// Fig. 3 — CCDF of the CDN-resource percentage per webpage.
// ---------------------------------------------------------------------------
struct Fig3Result {
  std::vector<util::DistPoint> ccdf;  // x: CDN percentage [0,100]
  double fraction_above_50pct = 0.0;  // paper: 75% of pages exceed 50%
};
Fig3Result compute_fig3(const StudyResult& study);

// ---------------------------------------------------------------------------
// Fig. 4 — provider page-presence probabilities (a) and the distribution of
// providers-per-page (b).
// ---------------------------------------------------------------------------
struct Fig4Result {
  std::vector<std::pair<cdn::ProviderId, double>> presence;      // (a), desc
  std::vector<std::pair<std::size_t, std::size_t>> pages_by_provider_count;  // (b)
  double fraction_pages_ge2_providers = 0.0;  // paper: 94.8%
};
Fig4Result compute_fig4(const StudyResult& study);

// ---------------------------------------------------------------------------
// Fig. 5 — CCDF of per-page CDN resource counts for the four giants.
// ---------------------------------------------------------------------------
struct Fig5Result {
  std::map<cdn::ProviderId, std::vector<util::DistPoint>> ccdf;
  std::map<cdn::ProviderId, double> fraction_pages_gt10;  // CF/Google ~ 0.5
};
Fig5Result compute_fig5(const StudyResult& study);

// ---------------------------------------------------------------------------
// Fig. 6 — (a) PLT reduction per quartile group of H3-enabled CDN resource
// counts; (b) CDF of per-entry connection/wait/receive reductions.
// ---------------------------------------------------------------------------
struct Fig6GroupRow {
  analysis::QuartileGroup group = analysis::QuartileGroup::Low;
  std::size_t pages = 0;
  double mean_h3_cdn_resources = 0.0;
  double mean_plt_reduction_ms = 0.0;
  double median_plt_reduction_ms = 0.0;
  // 95% bootstrap CI of the group mean (stability of the point estimate).
  double ci_lo_ms = 0.0;
  double ci_hi_ms = 0.0;
};
struct Fig6Result {
  std::vector<Fig6GroupRow> groups;  // Low..High
  std::vector<util::DistPoint> connect_reduction_cdf;
  std::vector<util::DistPoint> wait_reduction_cdf;
  std::vector<util::DistPoint> receive_reduction_cdf;
  double median_connect_reduction_ms = 0.0;  // paper: > 0
  double median_wait_reduction_ms = 0.0;     // paper: < 0
  double median_receive_reduction_ms = 0.0;  // paper: ~ 0
};
Fig6Result compute_fig6(const StudyResult& study);

// ---------------------------------------------------------------------------
// Fig. 7 — reused HTTP connections vs. the H3 benefit.
// ---------------------------------------------------------------------------
struct Fig7GroupRow {
  analysis::QuartileGroup group = analysis::QuartileGroup::Low;
  double mean_reused_h2 = 0.0;  // (a)
  double mean_reused_h3 = 0.0;  // (a)
  double mean_reused_diff = 0.0;  // (b): H2 - H3
};
struct Fig7DiffBin {
  double diff_bin_center = 0.0;
  double mean_plt_reduction_ms = 0.0;
  std::size_t pages = 0;
};
struct Fig7Result {
  std::vector<Fig7GroupRow> groups;
  std::vector<Fig7DiffBin> reduction_by_diff;  // (c)
  double correlation_diff_vs_reduction = 0.0;  // paper: negative
};
Fig7Result compute_fig7(const StudyResult& study);

// ---------------------------------------------------------------------------
// Fig. 8 — consecutive visits: PLT reduction (a) and resumed connections (b)
// vs. number of CDN providers used. Requires a consecutive-mode study.
// ---------------------------------------------------------------------------
struct Fig8Row {
  std::size_t providers = 0;
  std::size_t pages = 0;
  double mean_plt_reduction_ms = 0.0;
  double mean_resumed_connections = 0.0;
};
struct Fig8Result {
  std::vector<Fig8Row> by_provider_count;
  double correlation_providers_vs_reduction = 0.0;  // paper: positive
  double correlation_providers_vs_resumed = 0.0;    // paper: positive
  // Decomposition: the per-page reduction is dominated by whether the site's
  // own origin negotiates H3 (a property orthogonal to CDN-provider count).
  // Conditioning on it exposes the CDN-side shared-provider trend.
  double corr_reduction_origin_h3_pages = 0.0;
  double corr_reduction_origin_h2_pages = 0.0;
  double mean_reduction_origin_h3_pages = 0.0;
  double mean_reduction_origin_h2_pages = 0.0;
};
Fig8Result compute_fig8(const StudyResult& consecutive_study);

// ---------------------------------------------------------------------------
// Table III — k-means (k=2) sharing-degree case study on domain vectors.
// Requires a consecutive-mode study.
// ---------------------------------------------------------------------------
struct Table3Group {
  std::string name;  // "C_H" / "C_L"
  std::size_t pages = 0;
  double avg_providers = 0.0;           // paper: 4.16 vs 2.58
  double avg_resumed_connections = 0.0; // paper: 101.64 vs 73.74
  double plt_reduction_ms = 0.0;        // paper: 109.3 vs 54.35
};
struct Table3Result {
  Table3Group high;
  Table3Group low;
  std::size_t vector_dimension = 0;  // paper: 58 shared domains
  std::size_t outliers_removed = 0;
};
Table3Result compute_table3(const StudyResult& consecutive_study, std::uint64_t seed = 17);

// ---------------------------------------------------------------------------
// Fig. 9 — PLT reduction vs. #CDN resources under loss; fitted slopes
// increase with the loss rate (paper: 0.80 / 1.42 / 2.15 for 0/0.5/1%).
// ---------------------------------------------------------------------------
struct Fig9Series {
  double loss_rate = 0.0;
  std::vector<std::pair<double, double>> points;  // (cdn resources, reduction ms)
  util::LinearFit fit;
};
struct Fig9Result {
  std::vector<Fig9Series> series;
};
/// Runs one sub-study per loss rate (sharing the base config's workload).
Fig9Result compute_fig9(const StudyConfig& base, const std::vector<double>& loss_rates);
/// Analyzes an already-run study as one Fig. 9 series.
Fig9Series compute_fig9_series(const StudyResult& study);

// ---------------------------------------------------------------------------
// PLT dissection — critical-path attribution (obs/critical_path.h) aggregated
// per vantage and per dominant CDN provider: the additive "why" behind the
// Fig. 6/9 PLT deltas (which milliseconds came from handshakes, HoL stalls,
// transfer, idle discovery time).
// ---------------------------------------------------------------------------
struct PltDissectionRow {
  std::string group;     // "all", a vantage name, or a provider name
  std::size_t pages = 0; // H2/H3 visit pairs aggregated into this row
  double mean_h2_plt_ms = 0.0;
  double mean_h3_plt_ms = 0.0;
  obs::PhaseVector mean_h2;     // mean phase vector of the H2 visits
  obs::PhaseVector mean_h3;     // mean phase vector of the H3 visits
  obs::PhaseVector mean_delta;  // mean H2−H3; sums to the mean PLT delta

  [[nodiscard]] double mean_plt_delta_ms() const { return mean_h2_plt_ms - mean_h3_plt_ms; }
};
struct PltDissectionResult {
  PltDissectionRow overall;
  std::vector<PltDissectionRow> by_vantage;   // vantage order of the config
  std::vector<PltDissectionRow> by_provider;  // dominant provider per page, by name
};
PltDissectionResult compute_plt_dissection(const StudyResult& study);

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Per-pair metrics (LocEdge-classified), averaged over probes per site.
struct SitePairMetrics {
  std::size_t site_index = 0;
  double plt_reduction_ms = 0.0;
  double h3_cdn_resources = 0.0;      // mean count of CDN entries fetched via H3
  double cdn_resources = 0.0;         // mean CDN entry count (H3-mode visit)
  double reused_h2 = 0.0;
  double reused_h3 = 0.0;
  double providers = 0.0;  // mean distinct giant providers (§VI-D's six), H3-mode visit
  double resumed_connections = 0.0;   // mean (H3-mode visit)
  std::set<std::string> cdn_domains;  // union across probes
};
std::vector<SitePairMetrics> site_pair_metrics(const StudyResult& study);

}  // namespace h3cdn::core
