// The measurement study driver: the paper's methodology (§III) as a library.
//
// A study visits every target page from every probe twice — once with an
// H2-only browser and once with an H3-enabled browser (separate "Chrome
// instances") — warming CDN edge caches first, terminating connections and
// clearing caches between pages, and collecting a HAR archive per visit.
// The consecutive mode (§VI-D) additionally keeps the TLS session-ticket
// store alive across pages within a probe run, enabling resumption.
//
// Execution is sharded: every (vantage, probe, mode) run is an independent
// ProbeRunTask (own Simulator, Environment, Rng fork and observability
// sinks) executed on a util::ThreadPool and merged in canonical shard order,
// so results are byte-identical for any `jobs` value. docs/PARALLELISM.md
// documents the sharding model and the determinism contract.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/page_metrics.h"
#include "browser/browser.h"
#include "browser/environment.h"
#include "browser/har.h"
#include "web/workload.h"

namespace h3cdn::core {

class RunObservability;

struct StudyConfig {
  web::WorkloadConfig workload;
  std::vector<browser::VantageConfig> vantages = browser::default_vantage_points();
  int probes_per_vantage = 1;  // paper deploys 3 per site
  double loss_rate = 0.0;      // injected tc/netem loss (Fig. 9 sweeps)
  // Last-mile preset applied to every vantage ("" = leave as configured):
  // any net::LinkProfile name, e.g. "cellular" for the Gilbert-Elliott bursty
  // lossy mobile link of arXiv 1707.05836 (see net/link_profile.h).
  std::string link_profile;
  bool consecutive = false;    // keep session tickets across pages (§VI-D)
  bool warm_caches = true;     // the paper's cache-warming first visit
  std::size_t max_sites = 0;   // 0 = all workload sites; else truncate
  std::uint64_t seed = 7;
  // Worker threads for shard execution: 0 = hardware_concurrency, 1 = one
  // worker (still the sharded code path, so output is identical either way).
  int jobs = 0;
  browser::BrowserConfig browser;  // h3_enabled is overridden per mode
  // Optional observability sink (must outlive run()). When set, the study
  // installs its metrics registry and profiler for the duration of the run,
  // traces every connection plus a per-run pool event bus into its
  // aggregator, and records one waterfall per page visit.
  RunObservability* observability = nullptr;
};

struct PageVisitRecord {
  std::size_t site_index = 0;
  std::string vantage;
  int probe = 0;
  bool h3_enabled = false;
  browser::HarPage har;
};

/// One probe's paired observation of one site.
struct VisitPair {
  std::size_t site_index = 0;
  std::string vantage;
  int probe = 0;
  const browser::HarPage* h2 = nullptr;
  const browser::HarPage* h3 = nullptr;
};

struct StudyResult {
  StudyConfig config;
  std::shared_ptr<const web::Workload> workload;
  std::vector<PageVisitRecord> visits;

  /// All (site, vantage, probe) H2/H3 pairings.
  [[nodiscard]] std::vector<VisitPair> pairs() const;

  /// Number of sites actually measured (after max_sites truncation).
  [[nodiscard]] std::size_t site_count() const;
};

class MeasurementStudy {
 public:
  explicit MeasurementStudy(StudyConfig config);

  /// Runs the whole study. Deterministic: same config => identical result.
  [[nodiscard]] StudyResult run() const;

  /// Runs against an externally generated workload (lets several experiments
  /// share one workload instance).
  [[nodiscard]] StudyResult run(std::shared_ptr<const web::Workload> workload) const;

 private:
  StudyConfig config_;
};

}  // namespace h3cdn::core
