#include "core/resilience.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "browser/browser.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace h3cdn::core {

namespace {

struct VisitOutcome {
  Duration plt{0};
  std::uint64_t connection_deaths = 0;
  std::uint64_t h3_fallbacks = 0;
  std::uint64_t requests_rescued = 0;
  std::uint64_t requests_failed = 0;
};

// One isolated page visit: fresh Simulator + Environment per page, so fault
// schedules are relative to the page start (t = 0) for every site — unlike
// the sequential-visit study loop, where simulated time accumulates across
// pages and an absolute-time outage would only ever hit the first one.
// Caches are pre-warmed, matching the paper's measured-visit methodology.
//
// `metrics` is this visit's own registry handle (may be null). It is
// installed thread-locally here, on whatever thread executes the visit —
// never around a batch of visits on the caller's thread — so the drop-reason
// counters land in the right cell even when visits of several cells are in
// flight on the pool at once.
VisitOutcome run_visit(const web::Workload& workload, const web::WebPage& page,
                       const browser::VantageConfig& vantage, bool h3_enabled,
                       const ResilienceConfig& config, std::uint64_t page_salt,
                       obs::MetricsRegistry* metrics) {
  obs::ScopedMetrics scoped_metrics(metrics);
  sim::Simulator sim;
  // Same env seed across fault conditions and protocol modes: paths, loss
  // and jitter realizations pair exactly, so condition deltas isolate the
  // fault (or protocol) effect.
  util::Rng env_rng(util::derive_seed({config.seed, 0xFA17u, page_salt}));
  browser::VantageConfig v = vantage;
  v.server_noise_salt = h3_enabled ? 0x113 : 0x112;
  browser::Environment env(sim, workload.universe, v, env_rng.fork("env"));
  env.warm_page(page);

  browser::BrowserConfig bc;
  bc.h3_enabled = h3_enabled;
  bc.transport = config.transport;
  browser::Browser browser(sim, env, /*tickets=*/nullptr, bc,
                           env_rng.fork(h3_enabled ? "browser-h3" : "browser-h2"));
  browser::PageLoadResult load = browser.visit_and_run(page);

  VisitOutcome out;
  out.plt = load.har.page_load_time;
  out.connection_deaths = load.pool_stats.connection_deaths;
  out.h3_fallbacks = load.pool_stats.h3_fallbacks;
  out.requests_rescued = load.pool_stats.requests_rescued;
  out.requests_failed = load.pool_stats.requests_failed;
  return out;
}

/// Per-site shard of one sweep cell: the visit outcomes plus the metrics the
/// visits recorded. Sites execute in any order on the pool; the cell folds
/// shards in site order, so cell rows are independent of scheduling.
struct SiteShard {
  VisitOutcome h2;
  VisitOutcome h3;
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

}  // namespace

ResilienceResult run_resilience(const ResilienceConfig& config) {
  H3CDN_EXPECTS(config.sites >= 1);
  H3CDN_EXPECTS(config.jobs >= 0);
  web::WorkloadConfig wc = config.workload;
  wc.site_count = std::max(wc.site_count, config.sites);
  const web::Workload workload = web::generate_workload(wc);
  const std::size_t n_sites = std::min(config.sites, workload.sites.size());

  std::size_t jobs = config.jobs == 0 ? util::ThreadPool::default_jobs()
                                      : static_cast<std::size_t>(config.jobs);
  jobs = std::min(jobs, n_sites);
  util::ThreadPool pool(jobs);

  ResilienceResult result;

  // --- Axis 1: Bernoulli vs Gilbert-Elliott at equal average loss ---------
  for (double rate : config.loss_rates) {
    for (bool bursty : {false, true}) {
      LossTailRow row;
      row.loss_rate = rate;
      row.bursty = bursty;
      browser::VantageConfig vantage = config.vantage;
      // Route BOTH models through the injector so the comparison shares one
      // code path and one Rng stream; only the burst structure differs.
      vantage.fault_profile.gilbert_elliott =
          bursty ? net::GilbertElliottConfig::from_average(rate, config.mean_burst_packets)
                 : net::GilbertElliottConfig::bernoulli(rate);
      // One shard per site, each with its own registry handle: net::Link
      // reports its drop-reason counters into the visit's registry, so the
      // row reads drops from the same source of truth as every other
      // metrics consumer instead of re-aggregating LinkStats by hand.
      std::vector<SiteShard> shards(n_sites);
      pool.parallel_for(n_sites, [&](std::size_t site) {
        SiteShard& shard = shards[site];
        shard.metrics = std::make_unique<obs::MetricsRegistry>();
        const web::WebPage& page = workload.sites[site].page;
        shard.h2 = run_visit(workload, page, vantage, false, config, site, shard.metrics.get());
        shard.h3 = run_visit(workload, page, vantage, true, config, site, shard.metrics.get());
      });
      std::vector<double> h2_plts;
      std::vector<double> h3_plts;
      obs::MetricsRegistry cell_metrics;
      for (const SiteShard& shard : shards) {
        h2_plts.push_back(to_ms(shard.h2.plt));
        h3_plts.push_back(to_ms(shard.h3.plt));
        cell_metrics.merge_from(*shard.metrics);
      }
      row.packets_offered = cell_metrics.counter("net.link.packets_offered").value();
      row.packets_dropped = cell_metrics.counter("net.link.packets_dropped").value();
      row.dropped_bernoulli = cell_metrics.counter("net.link.dropped.bernoulli").value();
      row.dropped_burst = cell_metrics.counter("net.link.dropped.burst").value();
      row.pages = n_sites;
      row.h2_mean_plt_ms = util::mean(h2_plts);
      row.h2_p95_plt_ms = util::quantile(h2_plts, 0.95);
      row.h3_mean_plt_ms = util::mean(h3_plts);
      row.h3_p95_plt_ms = util::quantile(h3_plts, 0.95);
      result.loss_rows.push_back(row);
    }
  }

  // --- Axis 2: mid-transfer outage sweep (H3-enabled visits) --------------
  // Fault-free paired baseline first: an outage-only profile makes no Rng
  // draws, so pages the outage never touches replay the baseline byte for
  // byte and their recovery penalty is exactly zero. Baseline visits record
  // no metrics (null registry), exactly like the sequential path did.
  std::vector<double> baseline_plt_ms(n_sites, 0.0);
  pool.parallel_for(n_sites, [&](std::size_t site) {
    const web::WebPage& page = workload.sites[site].page;
    baseline_plt_ms[site] =
        to_ms(run_visit(workload, page, config.vantage, true, config, site, nullptr).plt);
  });

  for (Duration outage_duration : config.outage_durations) {
    OutageRow row;
    row.outage = outage_duration;
    row.pages = n_sites;
    browser::VantageConfig vantage = config.vantage;
    vantage.fault_profile.outages.push_back(
        net::Outage{config.outage_start, outage_duration, config.outage_kind});
    std::vector<SiteShard> shards(n_sites);
    pool.parallel_for(n_sites, [&](std::size_t site) {
      SiteShard& shard = shards[site];
      shard.metrics = std::make_unique<obs::MetricsRegistry>();
      const web::WebPage& page = workload.sites[site].page;
      shard.h3 = run_visit(workload, page, vantage, true, config, site, shard.metrics.get());
    });
    std::size_t pages_with_fallback = 0;
    std::vector<double> penalties_ms;
    obs::MetricsRegistry cell_metrics;
    for (std::size_t site = 0; site < n_sites; ++site) {
      const VisitOutcome& v = shards[site].h3;
      row.connection_deaths += v.connection_deaths;
      row.h3_fallbacks += v.h3_fallbacks;
      row.requests_rescued += v.requests_rescued;
      row.requests_failed += v.requests_failed;
      if (v.h3_fallbacks > 0) ++pages_with_fallback;
      const double penalty = to_ms(v.plt) - baseline_plt_ms[site];
      if (penalty > 0.0) penalties_ms.push_back(penalty);
      cell_metrics.merge_from(*shards[site].metrics);
    }
    row.packets_offered = cell_metrics.counter("net.link.packets_offered").value();
    row.packets_dropped = cell_metrics.counter("net.link.packets_dropped").value();
    row.dropped_outage = cell_metrics.counter("net.link.dropped.outage").value();
    row.fallback_page_rate =
        n_sites == 0 ? 0.0 : static_cast<double>(pages_with_fallback) / n_sites;
    if (!penalties_ms.empty()) {
      row.mean_recovery_ms = util::mean(penalties_ms);
      row.p95_recovery_ms = util::quantile(penalties_ms, 0.95);
      row.max_recovery_ms = *std::max_element(penalties_ms.begin(), penalties_ms.end());
    }
    result.outage_rows.push_back(row);
  }

  return result;
}

}  // namespace h3cdn::core
