#include "core/observability.h"

#include <filesystem>
#include <fstream>

namespace h3cdn::core {

std::shared_ptr<trace::ConnectionTrace> RunObservability::make_connection_trace(
    const std::string& label) {
  if (config_.max_traces != 0 && connection_traces_ >= config_.max_traces) {
    metrics_.counter("obs.traces_dropped").inc();
    return nullptr;
  }
  ++connection_traces_;
  return traces_.make_trace(label, config_.trace_capacity);
}

std::shared_ptr<trace::ConnectionTrace> RunObservability::make_bus_trace(
    const std::string& label) {
  return traces_.make_trace(label, config_.trace_capacity);
}

void RunObservability::add_waterfall(obs::Waterfall waterfall) {
  if (config_.max_waterfalls != 0 && waterfalls_.size() >= config_.max_waterfalls) {
    metrics_.counter("obs.waterfalls_dropped").inc();
    return;
  }
  waterfalls_.push_back(std::move(waterfall));
}

namespace {

bool write_file(const std::filesystem::path& path, const std::string& content,
                std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open " + path.string();
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    if (error) *error = "short write to " + path.string();
    return false;
  }
  return true;
}

}  // namespace

bool RunObservability::write_artifacts(const std::string& dir, std::string* error) const {
  std::error_code ec;
  const std::filesystem::path base(dir);
  std::filesystem::create_directories(base, ec);
  if (ec) {
    if (error) *error = "cannot create " + dir + ": " + ec.message();
    return false;
  }
  return write_file(base / "metrics.json", obs::metrics_to_json(metrics_), error) &&
         write_file(base / "metrics.csv", obs::metrics_to_csv(metrics_), error) &&
         write_file(base / "metrics.prom", obs::metrics_to_prometheus(metrics_), error) &&
         write_file(base / "qlog.json", traces_.to_qlog_json(), error) &&
         write_file(base / "waterfalls.json", obs::waterfalls_to_json(waterfalls_), error) &&
         write_file(base / "profile.json", profiler_.to_json(), error);
}

}  // namespace h3cdn::core
