#include "core/observability.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/attribution.h"
#include "obs/perfetto.h"

namespace h3cdn::core {

ObservabilityConfig ObservabilityConfig::per_shard(std::size_t shard_count) const {
  if (shard_count <= 1) return *this;
  const auto split = [shard_count](std::size_t cap) -> std::size_t {
    if (cap == 0) return 0;  // unlimited stays unlimited
    return (cap + shard_count - 1) / shard_count;
  };
  ObservabilityConfig shard = *this;
  shard.max_traces = split(max_traces);
  shard.max_waterfalls = split(max_waterfalls);
  return shard;
}

std::shared_ptr<trace::ConnectionTrace> RunObservability::make_connection_trace(
    const std::string& label) {
  if (config_.max_traces != 0 && connection_traces_ >= config_.max_traces) {
    metrics_.counter("obs.traces_dropped").inc();
    return nullptr;
  }
  ++connection_traces_;
  return traces_.make_trace(label, config_.trace_capacity);
}

std::shared_ptr<trace::ConnectionTrace> RunObservability::make_bus_trace(
    const std::string& label) {
  return traces_.make_trace(label, config_.trace_capacity);
}

void RunObservability::add_waterfall(obs::Waterfall waterfall) {
  if (config_.max_waterfalls != 0 && waterfalls_.size() >= config_.max_waterfalls) {
    metrics_.counter("obs.waterfalls_dropped").inc();
    return;
  }
  waterfalls_.push_back(std::move(waterfall));
}

void RunObservability::add_fault_annotation(obs::FaultAnnotation annotation) {
  fault_annotations_.push_back(std::move(annotation));
}

void RunObservability::merge_from(RunObservability&& shard) {
  metrics_.merge_from(shard.metrics_);
  timeline_.merge_from(shard.timeline_);
  for (obs::FaultAnnotation& a : shard.fault_annotations_) {
    fault_annotations_.push_back(std::move(a));
  }
  shard.fault_annotations_.clear();
  shard.timeline_.clear();
  profiler_.merge_from(shard.profiler_);
  traces_.merge_from(std::move(shard.traces_));
  connection_traces_ += shard.connection_traces_;
  for (obs::Waterfall& w : shard.waterfalls_) add_waterfall(std::move(w));
  shard.waterfalls_.clear();
  shard.metrics_.clear();
  shard.profiler_.clear();
  shard.connection_traces_ = 0;
}

namespace {

bool write_file(const std::filesystem::path& path, const std::string& content,
                std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open " + path.string();
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    if (error) *error = "short write to " + path.string();
    return false;
  }
  return true;
}

}  // namespace

bool RunObservability::write_artifacts(const std::string& dir, std::string* error) const {
  std::error_code ec;
  const std::filesystem::path base(dir);
  std::filesystem::create_directories(base, ec);
  if (ec) {
    if (error) *error = "cannot create " + dir + ": " + ec.message();
    return false;
  }
  const std::vector<obs::SloResult> slo_results = obs::evaluate_slos(timeline_, config_.slo);
  return write_file(base / "metrics.json", obs::metrics_to_json(metrics_), error) &&
         write_file(base / "metrics.csv", obs::metrics_to_csv(metrics_), error) &&
         write_file(base / "metrics.prom", obs::metrics_to_prometheus(metrics_), error) &&
         write_file(base / "qlog.json", traces_.to_qlog_json(), error) &&
         write_file(base / "waterfalls.json", obs::waterfalls_to_json(waterfalls_), error) &&
         write_file(base / "attribution.json",
                    obs::attribution_to_json(obs::attribute_pages(waterfalls_)), error) &&
         write_file(base / "profile.json", profiler_.to_json(), error) &&
         write_file(base / "timeline.json", obs::timeline_to_json(timeline_), error) &&
         write_file(base / "timeline.csv", obs::timeline_to_csv(timeline_), error) &&
         write_file(base / "slo.json", obs::slo_to_json(timeline_, slo_results), error) &&
         write_file(base / "trace.perfetto.json", obs::to_chrome_trace_json(waterfalls_, &traces_),
                    error) &&
         (fault_annotations_.empty() ||
          write_file(base / "fault_recovery.json",
                     obs::fault_annotations_to_json(fault_annotations_,
                                                    to_ms(timeline_.bucket_width())),
                     error));
}

}  // namespace h3cdn::core
