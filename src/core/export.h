// Machine-readable exports of experiment results (CSV series suitable for
// gnuplot/matplotlib, and a JSON summary), so the reproduction's figures can
// be re-plotted outside the library.
#pragma once

#include <string>

#include "core/experiments.h"

namespace h3cdn::core {

std::string table2_to_csv(const Table2Result& r);
std::string fig2_to_csv(const std::vector<Fig2Row>& rows);
std::string fig3_to_csv(const Fig3Result& r);
std::string fig4_to_csv(const Fig4Result& r);
std::string fig5_to_csv(const Fig5Result& r);
std::string fig6_to_csv(const Fig6Result& r);
std::string fig7_to_csv(const Fig7Result& r);
std::string fig8_to_csv(const Fig8Result& r);
std::string table3_to_csv(const Table3Result& r);
std::string fig9_to_csv(const Fig9Result& r);
std::string dissection_to_csv(const PltDissectionResult& r);

/// One JSON document summarizing every headline number of a full study
/// (Table II shares, Fig. 2 shares, Fig. 3/4 fractions, Fig. 6 medians, ...).
std::string summary_to_json(const StudyResult& study);

}  // namespace h3cdn::core
