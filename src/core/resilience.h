// Resilience experiment: what happens when the network misbehaves?
//
// The paper's Fig. 9 sweeps i.i.d. Bernoulli loss. This driver extends that
// methodology along two axes the live-Internet study could not control:
//
//   * Burst-vs-Bernoulli — equal-average-rate loss, i.i.d. vs Gilbert-
//     Elliott bursts, measured for H2-only and H3-enabled page loads.
//     Bursty loss kills whole congestion windows at once, so H2's in-order
//     wall turns each burst into a connection-wide RTO stall; the PLT tail
//     (p95) separates far more than the mean.
//
//   * Outage sweep — a mid-transfer outage (UDP blackhole by default: the
//     middlebox failure Chrome's H3->H2 fallback exists for) of varying
//     duration on the probe's access link. Reports how often pages needed
//     the fallback, how many requests were transparently rescued onto H2,
//     and the recovery cost: the per-page PLT penalty against a fault-free
//     run of the *same seed* (byte-identical except for the fault schedule,
//     so the delta isolates the outage's cost exactly).
//
// Fully deterministic: the same config produces byte-identical fault
// schedules, metrics, and row ordering — at any `jobs` setting. Visits run
// as independent shards on a util::ThreadPool; each records into its own
// registry (installed thread-locally for the duration of the visit, never
// a process-global one), and registries merge in site order afterwards.
#pragma once

#include <cstdint>
#include <vector>

#include "browser/environment.h"
#include "net/fault.h"
#include "transport/connection.h"
#include "util/types.h"
#include "web/workload.h"

namespace h3cdn::core {

struct ResilienceConfig {
  std::size_t sites = 16;      // truncates the generated workload
  std::uint64_t seed = 7;
  // Worker threads for the per-site visit fan-out (0 = hardware
  // concurrency). Every visit is its own shard — own Simulator, Environment
  // and metrics registry, installed thread-locally on whichever worker runs
  // it — and per-visit registries merge in site order, so rows are
  // byte-identical for any job count.
  int jobs = 0;
  web::WorkloadConfig workload;
  browser::VantageConfig vantage;  // geography; fault_profile is overwritten

  // Burst-vs-Bernoulli sweep: each rate is measured twice at equal average
  // loss — once i.i.d., once Gilbert-Elliott with this mean burst length.
  std::vector<double> loss_rates = {0.005, 0.01, 0.02};
  double mean_burst_packets = 8.0;

  // Outage sweep: one fault interval per page visit, opening at
  // `outage_start` into the load.
  std::vector<Duration> outage_durations = {msec(200), msec(500), sec(1)};
  TimePoint outage_start = msec(120);
  net::OutageKind outage_kind = net::OutageKind::UdpBlackhole;

  // Resilience knobs under test (handshake retry cap, blackhole detector,
  // ...). The defaults give up within ~2 s of a blackhole on short paths.
  transport::TransportConfig transport;
};

/// One cell of the burst-vs-Bernoulli sweep.
struct LossTailRow {
  double loss_rate = 0.0;
  bool bursty = false;  // false: i.i.d. at the same average rate
  std::size_t pages = 0;
  double h2_mean_plt_ms = 0.0;
  double h2_p95_plt_ms = 0.0;
  double h3_mean_plt_ms = 0.0;
  double h3_p95_plt_ms = 0.0;
  // Link drop-reason breakdown over all visits of this cell, read from the
  // metrics registry (the same counters net::Link reports everywhere).
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t dropped_bernoulli = 0;
  std::uint64_t dropped_burst = 0;
};

/// One cell of the outage sweep (H3-enabled visits).
struct OutageRow {
  Duration outage{0};
  std::size_t pages = 0;
  std::uint64_t connection_deaths = 0;
  std::uint64_t h3_fallbacks = 0;      // H3 sessions degraded to H2
  std::uint64_t requests_rescued = 0;  // entries transparently re-submitted
  std::uint64_t requests_failed = 0;   // entries that exhausted retries
  double fallback_page_rate = 0.0;     // fraction of pages with >= 1 fallback
  // PLT penalty vs the same-seed fault-free run, over affected pages.
  double mean_recovery_ms = 0.0;
  double p95_recovery_ms = 0.0;
  double max_recovery_ms = 0.0;
  // Link drop-reason breakdown over all visits of this cell, read from the
  // metrics registry (single source of truth with every other consumer).
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t dropped_outage = 0;
};

struct ResilienceResult {
  std::vector<LossTailRow> loss_rows;
  std::vector<OutageRow> outage_rows;
};

ResilienceResult run_resilience(const ResilienceConfig& config);

}  // namespace h3cdn::core
