#include "core/experiments.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <unordered_map>

#include "analysis/bootstrap.h"
#include "analysis/kmeans.h"
#include "browser/waterfall.h"
#include "util/check.h"
#include "util/rng.h"

namespace h3cdn::core {

namespace {

const locedge::Classifier& classifier() {
  static const locedge::Classifier instance;
  return instance;
}

/// Metrics for every pair, not yet aggregated by site.
struct PairMetrics {
  VisitPair pair;
  analysis::PageMetrics h2;
  analysis::PageMetrics h3;
};

std::vector<PairMetrics> all_pair_metrics(const StudyResult& study) {
  std::vector<PairMetrics> out;
  for (const auto& p : study.pairs()) {
    PairMetrics pm;
    pm.pair = p;
    pm.h2 = analysis::compute_page_metrics(*p.h2, classifier());
    pm.h3 = analysis::compute_page_metrics(*p.h3, classifier());
    out.push_back(std::move(pm));
  }
  return out;
}

}  // namespace

std::vector<SitePairMetrics> site_pair_metrics(const StudyResult& study) {
  std::map<std::size_t, std::vector<PairMetrics>> by_site;
  for (auto& pm : all_pair_metrics(study)) by_site[pm.pair.site_index].push_back(std::move(pm));

  std::vector<SitePairMetrics> out;
  out.reserve(by_site.size());
  for (auto& [site, pms] : by_site) {
    SitePairMetrics s;
    s.site_index = site;
    const double n = static_cast<double>(pms.size());
    for (const auto& pm : pms) {
      s.plt_reduction_ms += pm.h2.plt_ms - pm.h3.plt_ms;
      s.h3_cdn_resources += static_cast<double>(pm.h3.h3_cdn_entries);
      s.cdn_resources += static_cast<double>(pm.h3.cdn_entries);
      s.reused_h2 += static_cast<double>(pm.h2.reused_connections);
      s.reused_h3 += static_cast<double>(pm.h3.reused_connections);
      s.providers += static_cast<double>(pm.h3.giant_provider_count());
      s.resumed_connections += static_cast<double>(pm.h3.resumed_connections);
      s.cdn_domains.insert(pm.h3.cdn_domains.begin(), pm.h3.cdn_domains.end());
    }
    s.plt_reduction_ms /= n;
    s.h3_cdn_resources /= n;
    s.cdn_resources /= n;
    s.reused_h2 /= n;
    s.reused_h3 /= n;
    s.providers /= n;
    s.resumed_connections /= n;
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------

std::vector<Table1Row> compute_table1() {
  std::vector<Table1Row> rows;
  for (const auto& t : cdn::ProviderRegistry::all()) {
    if (t.id == cdn::ProviderId::Other) continue;
    rows.push_back({t.name, t.h3_release_year, t.performance_report});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Table1Row& a, const Table1Row& b) { return a.release_year < b.release_year; });
  return rows;
}

Table2Result compute_table2(const StudyResult& study) {
  // The paper's 36,057-request dataset counts each page's requests once; use
  // the first H3-enabled visit per site (composition is probe-invariant).
  Table2Result r;
  std::set<std::size_t> seen;
  for (const auto& v : study.visits) {
    if (!v.h3_enabled || !seen.insert(v.site_index).second) continue;
    const auto m = analysis::compute_page_metrics(v.har, classifier());
    r.cdn_h2 += m.h2_cdn_entries;
    r.cdn_h3 += m.h3_cdn_entries;
    r.cdn_other += m.other_cdn_entries;
    r.noncdn_h2 += m.h2_entries - m.h2_cdn_entries;
    r.noncdn_h3 += m.h3_entries - m.h3_cdn_entries;
    r.noncdn_other += m.other_entries - m.other_cdn_entries;
  }
  return r;
}

std::vector<Fig2Row> compute_fig2(const StudyResult& study) {
  std::map<cdn::ProviderId, Fig2Row> rows;
  std::size_t total_h3 = 0;
  std::size_t total_cdn = 0;
  std::set<std::size_t> seen;
  for (const auto& v : study.visits) {
    if (!v.h3_enabled || !seen.insert(v.site_index).second) continue;
    const auto m = analysis::compute_page_metrics(v.har, classifier());
    for (const auto& [provider, count] : m.provider_counts) {
      auto& row = rows[provider];
      row.provider = provider;
      std::size_t h3 = 0;
      if (auto it = m.provider_h3_counts.find(provider); it != m.provider_h3_counts.end()) {
        h3 = it->second;
      }
      row.h3_requests += h3;
      row.h2_requests += count - h3;
      total_h3 += h3;
      total_cdn += count;
    }
  }
  std::vector<Fig2Row> out;
  for (auto& [provider, row] : rows) {
    const std::size_t total = row.h3_requests + row.h2_requests;
    row.h3_share_within_provider =
        total == 0 ? 0.0 : static_cast<double>(row.h3_requests) / static_cast<double>(total);
    row.share_of_all_h3_cdn = total_h3 == 0 ? 0.0
                                            : static_cast<double>(row.h3_requests) /
                                                  static_cast<double>(total_h3);
    row.market_share =
        total_cdn == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(total_cdn);
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(),
            [](const Fig2Row& a, const Fig2Row& b) { return a.h3_requests > b.h3_requests; });
  return out;
}

Fig3Result compute_fig3(const StudyResult& study) {
  // Page composition is probe-invariant; use the first H3-mode visit per site.
  std::map<std::size_t, double> pct_by_site;
  for (const auto& v : study.visits) {
    if (!v.h3_enabled || pct_by_site.count(v.site_index) > 0) continue;
    const auto m = analysis::compute_page_metrics(v.har, classifier());
    pct_by_site[v.site_index] = 100.0 * m.cdn_fraction();
  }
  std::vector<double> pcts;
  pcts.reserve(pct_by_site.size());
  for (const auto& [site, pct] : pct_by_site) pcts.push_back(pct);

  Fig3Result r;
  r.fraction_above_50pct = util::fraction_above(pcts, 50.0);
  r.ccdf = util::ccdf(std::move(pcts));
  return r;
}

Fig4Result compute_fig4(const StudyResult& study) {
  std::map<std::size_t, analysis::PageMetrics> first_visit;
  for (const auto& v : study.visits) {
    if (!v.h3_enabled || first_visit.count(v.site_index) > 0) continue;
    first_visit.emplace(v.site_index, analysis::compute_page_metrics(v.har, classifier()));
  }
  const double n_pages = static_cast<double>(first_visit.size());

  Fig4Result r;
  std::map<cdn::ProviderId, std::size_t> appears_on;
  std::map<std::size_t, std::size_t> count_hist;
  std::size_t ge2 = 0;
  for (const auto& [site, m] : first_visit) {
    for (const auto& [provider, cnt] : m.provider_counts) ++appears_on[provider];
    ++count_hist[m.provider_count()];
    if (m.provider_count() >= 2) ++ge2;
  }
  for (const auto& [provider, cnt] : appears_on) {
    r.presence.emplace_back(provider, static_cast<double>(cnt) / n_pages);
  }
  std::sort(r.presence.begin(), r.presence.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [k, cnt] : count_hist) r.pages_by_provider_count.emplace_back(k, cnt);
  r.fraction_pages_ge2_providers = n_pages == 0.0 ? 0.0 : static_cast<double>(ge2) / n_pages;
  return r;
}

Fig5Result compute_fig5(const StudyResult& study) {
  std::map<std::size_t, analysis::PageMetrics> first_visit;
  for (const auto& v : study.visits) {
    if (!v.h3_enabled || first_visit.count(v.site_index) > 0) continue;
    first_visit.emplace(v.site_index, analysis::compute_page_metrics(v.har, classifier()));
  }

  Fig5Result r;
  for (cdn::ProviderId provider : cdn::ProviderRegistry::fig5_providers()) {
    std::vector<double> counts;  // over pages *using* the provider, per Fig. 5
    for (const auto& [site, m] : first_visit) {
      auto it = m.provider_counts.find(provider);
      if (it != m.provider_counts.end()) counts.push_back(static_cast<double>(it->second));
    }
    r.fraction_pages_gt10[provider] = util::fraction_above(counts, 10.0);
    r.ccdf[provider] = util::ccdf(std::move(counts));
  }
  return r;
}

namespace {

std::vector<analysis::QuartileGroup> h3_resource_groups(
    const std::vector<SitePairMetrics>& sites) {
  std::vector<double> keys;
  keys.reserve(sites.size());
  for (const auto& s : sites) keys.push_back(s.h3_cdn_resources);
  return analysis::quartile_groups(keys);
}

}  // namespace

Fig6Result compute_fig6(const StudyResult& study) {
  Fig6Result r;
  const auto sites = site_pair_metrics(study);
  const auto groups = h3_resource_groups(sites);

  for (int g = 0; g < 4; ++g) {
    Fig6GroupRow row;
    row.group = static_cast<analysis::QuartileGroup>(g);
    std::vector<double> reductions;
    double h3_resources = 0.0;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (static_cast<int>(groups[i]) != g) continue;
      reductions.push_back(sites[i].plt_reduction_ms);
      h3_resources += sites[i].h3_cdn_resources;
    }
    row.pages = reductions.size();
    row.mean_plt_reduction_ms = util::mean(reductions);
    row.median_plt_reduction_ms = util::median(reductions);
    row.mean_h3_cdn_resources =
        row.pages == 0 ? 0.0 : h3_resources / static_cast<double>(row.pages);
    const auto ci = analysis::bootstrap_mean_ci(reductions, 0.95, 1000,
                                                util::Rng(0xC1 + static_cast<unsigned>(g)));
    row.ci_lo_ms = ci.lo;
    row.ci_hi_ms = ci.hi;
    r.groups.push_back(row);
  }

  // Per-entry phase reductions across every pair. Connect is compared over
  // entries that initiated a connection in both visits (see PhaseReduction).
  std::vector<double> connect, wait, receive;
  for (const auto& p : study.pairs()) {
    for (const auto& pr : analysis::entry_phase_reductions(*p.h2, *p.h3)) {
      if (pr.connect_valid) connect.push_back(pr.connect_ms);
      wait.push_back(pr.wait_ms);
      receive.push_back(pr.receive_ms);
    }
  }
  r.median_connect_reduction_ms = util::median(connect);
  r.median_wait_reduction_ms = util::median(wait);
  r.median_receive_reduction_ms = util::median(receive);
  r.connect_reduction_cdf = util::cdf(std::move(connect));
  r.wait_reduction_cdf = util::cdf(std::move(wait));
  r.receive_reduction_cdf = util::cdf(std::move(receive));
  return r;
}

Fig7Result compute_fig7(const StudyResult& study) {
  Fig7Result r;
  const auto sites = site_pair_metrics(study);
  const auto groups = h3_resource_groups(sites);

  for (int g = 0; g < 4; ++g) {
    Fig7GroupRow row;
    row.group = static_cast<analysis::QuartileGroup>(g);
    std::vector<double> h2s, h3s, diffs;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (static_cast<int>(groups[i]) != g) continue;
      h2s.push_back(sites[i].reused_h2);
      h3s.push_back(sites[i].reused_h3);
      diffs.push_back(sites[i].reused_h2 - sites[i].reused_h3);
    }
    row.mean_reused_h2 = util::mean(h2s);
    row.mean_reused_h3 = util::mean(h3s);
    row.mean_reused_diff = util::mean(diffs);
    r.groups.push_back(row);
  }

  // (c): PLT reduction binned by reused-connection difference.
  std::vector<double> diffs, reductions;
  for (const auto& s : sites) {
    diffs.push_back(s.reused_h2 - s.reused_h3);
    reductions.push_back(s.plt_reduction_ms);
  }
  r.correlation_diff_vs_reduction = util::pearson(diffs, reductions);

  constexpr double kBinWidth = 5.0;
  const auto bins = analysis::fixed_width_bins(diffs, kBinWidth);
  std::map<int, std::pair<double, std::size_t>> acc;  // bin -> (sum, n)
  for (std::size_t i = 0; i < bins.size(); ++i) {
    acc[bins[i]].first += reductions[i];
    acc[bins[i]].second += 1;
  }
  for (const auto& [bin, sum_n] : acc) {
    if (sum_n.second < 3) continue;  // skip noise bins with too few pages
    Fig7DiffBin b;
    b.diff_bin_center = (bin + 0.5) * kBinWidth;
    b.mean_plt_reduction_ms = sum_n.first / static_cast<double>(sum_n.second);
    b.pages = sum_n.second;
    r.reduction_by_diff.push_back(b);
  }
  return r;
}

Fig8Result compute_fig8(const StudyResult& consecutive_study) {
  H3CDN_EXPECTS(consecutive_study.config.consecutive);
  Fig8Result r;
  const auto sites = site_pair_metrics(consecutive_study);

  std::map<std::size_t, std::vector<std::pair<double, double>>> by_count;  // (red, resumed)
  std::vector<double> xs, red, res;
  for (const auto& s : sites) {
    const auto k = static_cast<std::size_t>(std::llround(s.providers));
    by_count[k].emplace_back(s.plt_reduction_ms, s.resumed_connections);
    xs.push_back(s.providers);
    red.push_back(s.plt_reduction_ms);
    res.push_back(s.resumed_connections);
  }
  for (const auto& [k, vals] : by_count) {
    Fig8Row row;
    row.providers = k;
    row.pages = vals.size();
    for (const auto& [a, b] : vals) {
      row.mean_plt_reduction_ms += a;
      row.mean_resumed_connections += b;
    }
    row.mean_plt_reduction_ms /= static_cast<double>(vals.size());
    row.mean_resumed_connections /= static_cast<double>(vals.size());
    r.by_provider_count.push_back(row);
  }
  r.correlation_providers_vs_reduction = util::pearson(xs, red);
  r.correlation_providers_vs_resumed = util::pearson(xs, res);

  // Condition on the origin-protocol lottery (see Fig8Result comment).
  std::vector<double> prov_h3, red_h3, prov_h2, red_h2;
  for (const auto& s : sites) {
    const auto& page = consecutive_study.workload->sites[s.site_index].page;
    const bool origin_h3 =
        consecutive_study.workload->universe.get(page.origin_domain).supports_h3;
    (origin_h3 ? prov_h3 : prov_h2).push_back(s.providers);
    (origin_h3 ? red_h3 : red_h2).push_back(s.plt_reduction_ms);
  }
  r.corr_reduction_origin_h3_pages = util::pearson(prov_h3, red_h3);
  r.corr_reduction_origin_h2_pages = util::pearson(prov_h2, red_h2);
  r.mean_reduction_origin_h3_pages = util::mean(red_h3);
  r.mean_reduction_origin_h2_pages = util::mean(red_h2);
  return r;
}

Table3Result compute_table3(const StudyResult& consecutive_study, std::uint64_t seed) {
  H3CDN_EXPECTS(consecutive_study.config.consecutive);
  auto sites = site_pair_metrics(consecutive_study);

  // Domain vocabulary: every CDN domain observed on >= 2 pages (the paper
  // removes webpages whose domains are used by no other webpage).
  std::map<std::string, std::size_t> domain_pages;
  for (const auto& s : sites) {
    for (const auto& d : s.cdn_domains) ++domain_pages[d];
  }
  std::vector<std::string> vocab;
  for (const auto& [d, n] : domain_pages) {
    if (n >= 2) vocab.push_back(d);
  }
  std::sort(vocab.begin(), vocab.end());
  std::unordered_map<std::string, std::size_t> vocab_index;
  for (std::size_t i = 0; i < vocab.size(); ++i) vocab_index[vocab[i]] = i;

  // Binary vectors; drop outlier pages with no shared domain at all.
  std::vector<std::vector<double>> points;
  std::vector<std::size_t> kept;  // indices into `sites`
  std::size_t outliers = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::vector<double> vec(vocab.size(), 0.0);
    bool any = false;
    for (const auto& d : sites[i].cdn_domains) {
      auto it = vocab_index.find(d);
      if (it != vocab_index.end()) {
        vec[it->second] = 1.0;
        any = true;
      }
    }
    if (!any) {
      ++outliers;
      continue;
    }
    points.push_back(std::move(vec));
    kept.push_back(i);
  }

  analysis::KMeansConfig kc;
  kc.k = 2;
  const auto km = analysis::kmeans(points, kc, util::Rng(seed));

  Table3Result r;
  r.vector_dimension = vocab.size();
  r.outliers_removed = outliers;

  std::array<Table3Group, 2> groups;
  std::array<std::vector<double>, 2> reductions;
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const auto c = km.assignment[i];
    const auto& s = sites[kept[i]];
    groups[c].pages += 1;
    groups[c].avg_providers += s.providers;
    groups[c].avg_resumed_connections += s.resumed_connections;
    reductions[c].push_back(s.plt_reduction_ms);
  }
  for (std::size_t c = 0; c < 2; ++c) {
    if (groups[c].pages > 0) {
      groups[c].avg_providers /= static_cast<double>(groups[c].pages);
      groups[c].avg_resumed_connections /= static_cast<double>(groups[c].pages);
      groups[c].plt_reduction_ms = util::mean(reductions[c]);
    }
  }
  const std::size_t hi = groups[0].avg_providers >= groups[1].avg_providers ? 0 : 1;
  r.high = groups[hi];
  r.high.name = "C_H (high sharing)";
  r.low = groups[1 - hi];
  r.low.name = "C_L (low sharing)";
  return r;
}

Fig9Series compute_fig9_series(const StudyResult& study) {
  Fig9Series s;
  s.loss_rate = study.config.loss_rate;
  std::vector<double> xs, ys;
  for (const auto& sp : site_pair_metrics(study)) {
    s.points.emplace_back(sp.cdn_resources, sp.plt_reduction_ms);
    xs.push_back(sp.cdn_resources);
    ys.push_back(sp.plt_reduction_ms);
  }
  s.fit = util::fit_line_binned(xs, ys, 8);
  return s;
}

PltDissectionResult compute_plt_dissection(const StudyResult& study) {
  struct Acc {
    std::size_t pages = 0;
    double h2_plt = 0.0;
    double h3_plt = 0.0;
    obs::PhaseVector h2;
    obs::PhaseVector h3;
  };
  Acc overall;
  std::map<std::string, Acc> by_vantage;
  std::map<std::string, Acc> by_provider;

  for (const auto& p : study.pairs()) {
    // Same run-labelling convention as the study engine, so the dissection
    // and the waterfalls.json artifact describe identical runs.
    const std::string label = p.vantage + "/p" + std::to_string(p.probe);
    const auto h2 =
        obs::analyze_critical_path(browser::make_waterfall(*p.h2, label + "/h2"));
    const auto h3 =
        obs::analyze_critical_path(browser::make_waterfall(*p.h3, label + "/h3"));
    const auto add = [&](Acc& a) {
      ++a.pages;
      a.h2_plt += h2.plt_ms;
      a.h3_plt += h3.plt_ms;
      a.h2 += h2.phases;
      a.h3 += h3.phases;
    };
    add(overall);
    add(by_vantage[p.vantage]);
    // Dominant provider: the one serving the most CDN entries of the page.
    const auto m = analysis::compute_page_metrics(*p.h3, classifier());
    cdn::ProviderId dominant = cdn::ProviderId::Other;
    std::size_t best = 0;
    for (const auto& [provider, count] : m.provider_counts) {
      if (count > best) {
        best = count;
        dominant = provider;
      }
    }
    add(by_provider[best > 0 ? cdn::to_string(dominant) : "none"]);
  }

  const auto finish = [](const std::string& name, const Acc& a) {
    PltDissectionRow row;
    row.group = name;
    row.pages = a.pages;
    if (a.pages > 0) {
      const auto n = static_cast<double>(a.pages);
      row.mean_h2_plt_ms = a.h2_plt / n;
      row.mean_h3_plt_ms = a.h3_plt / n;
      row.mean_h2 = a.h2;
      row.mean_h2 /= n;
      row.mean_h3 = a.h3;
      row.mean_h3 /= n;
      row.mean_delta = row.mean_h2 - row.mean_h3;
    }
    return row;
  };

  PltDissectionResult r;
  r.overall = finish("all", overall);
  // Vantage rows follow the config's vantage order, not map order.
  for (const auto& v : study.config.vantages) {
    auto it = by_vantage.find(v.name);
    if (it != by_vantage.end()) r.by_vantage.push_back(finish(it->first, it->second));
  }
  for (const auto& [name, acc] : by_provider) {
    r.by_provider.push_back(finish(name, acc));
  }
  return r;
}

Fig9Result compute_fig9(const StudyConfig& base, const std::vector<double>& loss_rates) {
  Fig9Result r;
  auto workload = std::make_shared<web::Workload>(web::generate_workload(base.workload));
  for (double loss : loss_rates) {
    StudyConfig cfg = base;
    cfg.loss_rate = loss;
    MeasurementStudy study(cfg);
    r.series.push_back(compute_fig9_series(study.run(workload)));
  }
  return r;
}

}  // namespace h3cdn::core
