#include "core/selector.h"

#include "util/check.h"

namespace h3cdn::core {

AdaptiveProtocolSelector::AdaptiveProtocolSelector(SelectorConfig config, util::Rng rng)
    : config_(config), rng_(rng) {
  H3CDN_EXPECTS(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  H3CDN_EXPECTS(config_.explore_rate >= 0.0 && config_.explore_rate < 1.0);
  H3CDN_EXPECTS(config_.switch_margin >= 1.0);
}

AdaptiveProtocolSelector::Arm& AdaptiveProtocolSelector::arm(OriginState& s,
                                                             http::HttpVersion v) {
  return v == http::HttpVersion::H3 ? s.h3 : s.h2;
}

const AdaptiveProtocolSelector::Arm& AdaptiveProtocolSelector::arm(const OriginState& s,
                                                                   http::HttpVersion v) {
  return v == http::HttpVersion::H3 ? s.h3 : s.h2;
}

void AdaptiveProtocolSelector::observe(const std::string& origin, http::HttpVersion version,
                                       double total_ms) {
  observe(kGlobalContext, origin, version, total_ms);
}

void AdaptiveProtocolSelector::observe(int context, const std::string& origin,
                                       http::HttpVersion version, double total_ms) {
  if (version == http::HttpVersion::H1_1) return;  // no H1/H3 arbitrage
  const auto feed = [&](OriginState& s) {
    Arm& a = arm(s, version);
    a.ewma_ms = a.n == 0
                    ? total_ms
                    : config_.ewma_alpha * total_ms + (1.0 - config_.ewma_alpha) * a.ewma_ms;
    ++a.n;
  };
  feed(contexts_[context][origin]);
  if (context != kGlobalContext) feed(contexts_[kGlobalContext][origin]);
}

std::optional<http::HttpVersion> AdaptiveProtocolSelector::recommend_in(const OriginState& s) {
  // Not enough evidence on one arm: explore it (bounded by explore_rate once
  // both arms have some data, unconditionally while one arm is empty).
  if (s.h3.n < config_.min_observations && s.h2.n >= config_.min_observations) {
    ++explorations_;
    return http::HttpVersion::H3;
  }
  if (s.h2.n < config_.min_observations && s.h3.n >= config_.min_observations) {
    ++explorations_;
    return http::HttpVersion::H2;
  }
  if (s.h2.n < config_.min_observations || s.h3.n < config_.min_observations) {
    return std::nullopt;  // both arms immature: pool default
  }

  if (rng_.bernoulli(config_.explore_rate)) {
    ++explorations_;
    return s.h2.ewma_ms <= s.h3.ewma_ms ? http::HttpVersion::H3 : http::HttpVersion::H2;
  }

  // Exploit with hysteresis: prefer H3 unless H2 is better by the margin
  // (the paper recommends H3 by default; switching needs evidence).
  if (s.h2.ewma_ms * config_.switch_margin < s.h3.ewma_ms) return http::HttpVersion::H2;
  return http::HttpVersion::H3;
}

std::optional<http::HttpVersion> AdaptiveProtocolSelector::recommend(
    const std::string& origin) {
  return recommend(kGlobalContext, origin);
}

std::optional<http::HttpVersion> AdaptiveProtocolSelector::recommend(int context,
                                                                     const std::string& origin) {
  ++decisions_;
  if (auto ctx = contexts_.find(context); ctx != contexts_.end()) {
    if (auto it = ctx->second.find(origin); it != ctx->second.end()) {
      if (auto pick = recommend_in(it->second)) return pick;
    }
  }
  if (context == kGlobalContext) return std::nullopt;
  // Fall back to the pooled marginal when this archetype lacks evidence.
  if (auto ctx = contexts_.find(kGlobalContext); ctx != contexts_.end()) {
    if (auto it = ctx->second.find(origin); it != ctx->second.end()) {
      return recommend_in(it->second);
    }
  }
  return std::nullopt;
}

std::optional<double> AdaptiveProtocolSelector::estimate(const std::string& origin,
                                                         http::HttpVersion version) const {
  return estimate(kGlobalContext, origin, version);
}

std::optional<double> AdaptiveProtocolSelector::estimate(int context, const std::string& origin,
                                                         http::HttpVersion version) const {
  auto ctx = contexts_.find(context);
  if (ctx == contexts_.end()) return std::nullopt;
  auto it = ctx->second.find(origin);
  if (it == ctx->second.end()) return std::nullopt;
  const Arm& a = arm(it->second, version);
  if (a.n == 0) return std::nullopt;
  return a.ewma_ms;
}

void AdaptiveProtocolSelector::reset() {
  contexts_.clear();
  decisions_ = 0;
  explorations_ = 0;
}

}  // namespace h3cdn::core
