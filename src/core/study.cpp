#include "core/study.h"

#include <map>

#include "browser/waterfall.h"
#include "core/observability.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sim/simulator.h"
#include "tls/ticket_store.h"
#include "util/check.h"
#include "util/rng.h"

namespace h3cdn::core {

MeasurementStudy::MeasurementStudy(StudyConfig config) : config_(std::move(config)) {
  H3CDN_EXPECTS(!config_.vantages.empty());
  H3CDN_EXPECTS(config_.probes_per_vantage >= 1);
}

StudyResult MeasurementStudy::run() const {
  auto workload = std::make_shared<web::Workload>(web::generate_workload(config_.workload));
  return run(workload);
}

StudyResult MeasurementStudy::run(std::shared_ptr<const web::Workload> workload) const {
  H3CDN_EXPECTS(workload != nullptr);
  StudyResult result;
  result.config = config_;
  result.workload = workload;

  std::size_t site_count = workload->sites.size();
  if (config_.max_sites > 0) site_count = std::min(site_count, config_.max_sites);

  util::Rng root(util::derive_seed({config_.seed, 0x57011dULL}));

  // Install the run-wide registry/profiler for the duration of the study;
  // restored (typically to "disabled") on return.
  RunObservability* observability = config_.observability;
  obs::ScopedMetrics scoped_metrics(observability ? &observability->metrics() : nullptr);
  obs::ScopedProfiler scoped_profiler(observability ? &observability->profiler() : nullptr);

  for (const auto& vantage_base : config_.vantages) {
    for (int probe = 0; probe < config_.probes_per_vantage; ++probe) {
      // Same environment seed for the H2 and H3 runs of a probe: paths and
      // server-time draws align, so reductions isolate the protocol effect.
      util::Rng probe_rng = root.fork(vantage_base.name).fork(static_cast<std::uint64_t>(probe));

      for (const bool h3_enabled : {false, true}) {
        browser::VantageConfig vantage = vantage_base;
        vantage.loss_rate = config_.loss_rate;
        // Path seeds are shared across the two modes (same probe, same
        // geography); server timing noise is independent (separate visits).
        vantage.server_noise_salt = h3_enabled ? 0x113 : 0x112;

        sim::Simulator sim;
        browser::Environment env(sim, workload->universe, vantage, probe_rng.fork("env"));

        // The ticket store is what survives page transitions in consecutive
        // mode; the base study clears all client state between pages.
        tls::SessionTicketStore tickets;
        tls::SessionTicketStore* tickets_ptr = config_.consecutive ? &tickets : nullptr;

        browser::BrowserConfig bc = config_.browser;
        bc.h3_enabled = h3_enabled;

        // One run = one Simulator, so all of its traces share a monotonic
        // clock. The pool bus carries cross-connection events (fallbacks,
        // H3-broken marks) onto the same timeline as the packet traces.
        const std::string run_label = vantage.name + "/p" + std::to_string(probe) +
                                      (h3_enabled ? "/h3" : "/h2");
        if (observability != nullptr) {
          bc.pool_trace = observability->make_bus_trace(run_label + "/pool");
          auto counter = std::make_shared<std::uint64_t>(0);
          bc.connection_trace_factory = [observability, run_label, counter](
                                            const std::string& domain, http::HttpVersion version) {
            return observability->make_connection_trace(run_label + "/" + domain + "/" +
                                                        http::to_string(version) + "#" +
                                                        std::to_string(++*counter));
          };
        }

        browser::Browser browser(sim, env, tickets_ptr, bc,
                                 probe_rng.fork(h3_enabled ? "browser-h3" : "browser-h2"));

        // Fixed visiting order (§III-B): sequential over the target list.
        for (std::size_t si = 0; si < site_count; ++si) {
          const web::WebPage& page = workload->sites[si].page;
          if (config_.warm_caches) {
            obs::ProfileScope warm_scope("study.warm_caches");
            env.warm_page(page);
          }

          browser::PageLoadResult load = browser.visit_and_run(page);

          PageVisitRecord rec;
          rec.site_index = si;
          rec.vantage = vantage.name;
          rec.probe = probe;
          rec.h3_enabled = h3_enabled;
          rec.har = std::move(load.har);
          if (observability != nullptr) {
            observability->add_waterfall(browser::make_waterfall(rec.har, run_label));
          }
          result.visits.push_back(std::move(rec));

          // Small think-time gap between consecutive page visits.
          sim.schedule_in(msec(100), [] {});
          sim.run();
        }
      }
    }
  }
  return result;
}

std::vector<VisitPair> StudyResult::pairs() const {
  // Key: (site, vantage, probe) -> the two mode visits.
  std::map<std::tuple<std::size_t, std::string, int>, VisitPair> by_key;
  for (const auto& v : visits) {
    auto& pair = by_key[{v.site_index, v.vantage, v.probe}];
    pair.site_index = v.site_index;
    pair.vantage = v.vantage;
    pair.probe = v.probe;
    (v.h3_enabled ? pair.h3 : pair.h2) = &v.har;
  }
  std::vector<VisitPair> out;
  out.reserve(by_key.size());
  for (auto& [key, pair] : by_key) {
    if (pair.h2 != nullptr && pair.h3 != nullptr) out.push_back(pair);
  }
  return out;
}

std::size_t StudyResult::site_count() const {
  std::size_t n = workload->sites.size();
  if (config.max_sites > 0) n = std::min(n, config.max_sites);
  return n;
}

}  // namespace h3cdn::core
