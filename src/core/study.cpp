#include "core/study.h"

#include <algorithm>
#include <map>

#include "core/observability.h"
#include "core/probe_run.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace h3cdn::core {

MeasurementStudy::MeasurementStudy(StudyConfig config) : config_(std::move(config)) {
  H3CDN_EXPECTS(!config_.vantages.empty());
  H3CDN_EXPECTS(config_.probes_per_vantage >= 1);
  H3CDN_EXPECTS(config_.jobs >= 0);
  if (!config_.link_profile.empty()) {
    const auto profile = net::LinkProfile::from_name(config_.link_profile);
    H3CDN_EXPECTS(profile.has_value());
    for (auto& vantage : config_.vantages) browser::apply_link_profile(vantage, *profile);
  }
}

StudyResult MeasurementStudy::run() const {
  auto workload = std::make_shared<web::Workload>(web::generate_workload(config_.workload));
  return run(workload);
}

StudyResult MeasurementStudy::run(std::shared_ptr<const web::Workload> workload) const {
  H3CDN_EXPECTS(workload != nullptr);
  StudyResult result;
  result.config = config_;
  result.workload = workload;

  std::size_t site_count = workload->sites.size();
  if (config_.max_sites > 0) site_count = std::min(site_count, config_.max_sites);

  // Canonical shard order: vantage-major, then probe, then H2 before H3 —
  // the exact order the sequential loop visited. Everything downstream
  // (visit concatenation, metrics/trace/waterfall merge) walks shards in
  // this order, which is what makes output independent of the job count.
  RunObservability* observability = config_.observability;
  std::vector<ProbeRunTask> tasks;
  tasks.reserve(config_.vantages.size() * static_cast<std::size_t>(config_.probes_per_vantage) * 2);
  for (const auto& vantage_base : config_.vantages) {
    for (int probe = 0; probe < config_.probes_per_vantage; ++probe) {
      for (const bool h3_enabled : {false, true}) {
        ProbeRunTask task;
        task.config = &config_;
        task.workload = workload;
        task.vantage = vantage_base;
        task.probe = probe;
        task.h3_enabled = h3_enabled;
        task.site_count = site_count;
        task.shard_index = tasks.size();
        tasks.push_back(std::move(task));
      }
    }
  }
  if (observability != nullptr) {
    const ObservabilityConfig shard_config = observability->config().per_shard(tasks.size());
    for (ProbeRunTask& task : tasks) task.observability = shard_config;
  }

  // Execute shards on the pool. Workers claim shards dynamically (uneven
  // page weights self-balance); each shard installs its own thread-local
  // sinks, so no synchronization is needed beyond the pool's queue.
  std::vector<ShardResult> shards(tasks.size());
  {
    std::size_t jobs = config_.jobs == 0 ? util::ThreadPool::default_jobs()
                                         : static_cast<std::size_t>(config_.jobs);
    jobs = std::min(jobs, tasks.size());
    util::ThreadPool pool(jobs);
    pool.parallel_for(tasks.size(), [&](std::size_t i) { shards[i] = tasks[i].run(); });
  }

  // Deterministic merge, canonical shard order.
  std::size_t visit_count = 0;
  for (const ShardResult& shard : shards) visit_count += shard.visits.size();
  result.visits.reserve(visit_count);
  for (ShardResult& shard : shards) {
    for (PageVisitRecord& rec : shard.visits) result.visits.push_back(std::move(rec));
    if (observability != nullptr && shard.observability != nullptr) {
      observability->merge_from(std::move(*shard.observability));
    }
  }
  return result;
}

std::vector<VisitPair> StudyResult::pairs() const {
  // Key: (site, vantage, probe) -> the two mode visits.
  std::map<std::tuple<std::size_t, std::string, int>, VisitPair> by_key;
  for (const auto& v : visits) {
    auto& pair = by_key[{v.site_index, v.vantage, v.probe}];
    pair.site_index = v.site_index;
    pair.vantage = v.vantage;
    pair.probe = v.probe;
    (v.h3_enabled ? pair.h3 : pair.h2) = &v.har;
  }
  std::vector<VisitPair> out;
  out.reserve(by_key.size());
  for (auto& [key, pair] : by_key) {
    if (pair.h2 != nullptr && pair.h3 != nullptr) out.push_back(pair);
  }
  return out;
}

std::size_t StudyResult::site_count() const {
  std::size_t n = workload->sites.size();
  if (config.max_sites > 0) n = std::min(n, config.max_sites);
  return n;
}

}  // namespace h3cdn::core
