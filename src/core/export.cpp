#include "core/export.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/json.h"

namespace h3cdn::core {

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string table2_to_csv(const Table2Result& r) {
  std::ostringstream os;
  os << "protocol,cdn_requests,cdn_pct,noncdn_requests,noncdn_pct,all_requests,all_pct\n";
  auto row = [&](const char* name, std::size_t c, std::size_t n) {
    os << name << ',' << c << ',' << r.pct(c) << ',' << n << ',' << r.pct(n) << ',' << (c + n)
       << ',' << r.pct(c + n) << '\n';
  };
  row("h2", r.cdn_h2, r.noncdn_h2);
  row("h3", r.cdn_h3, r.noncdn_h3);
  row("others", r.cdn_other, r.noncdn_other);
  return os.str();
}

std::string fig2_to_csv(const std::vector<Fig2Row>& rows) {
  std::ostringstream os;
  os << "provider,h3_requests,h2_requests,h3_share_within,share_of_h3_cdn,market_share\n";
  for (const auto& r : rows) {
    os << csv_escape(cdn::to_string(r.provider)) << ',' << r.h3_requests << ',' << r.h2_requests
       << ',' << r.h3_share_within_provider << ',' << r.share_of_all_h3_cdn << ','
       << r.market_share << '\n';
  }
  return os.str();
}

std::string fig3_to_csv(const Fig3Result& r) {
  std::ostringstream os;
  os << "cdn_pct,ccdf\n";
  for (const auto& p : r.ccdf) os << p.x << ',' << p.y << '\n';
  return os.str();
}

std::string fig4_to_csv(const Fig4Result& r) {
  std::ostringstream os;
  os << "provider,presence\n";
  for (const auto& [provider, p] : r.presence) {
    os << csv_escape(cdn::to_string(provider)) << ',' << p << '\n';
  }
  os << "\nproviders_per_page,pages\n";
  for (const auto& [k, n] : r.pages_by_provider_count) os << k << ',' << n << '\n';
  return os.str();
}

std::string fig5_to_csv(const Fig5Result& r) {
  std::ostringstream os;
  os << "provider,resources,ccdf\n";
  for (const auto& [provider, series] : r.ccdf) {
    for (const auto& p : series) {
      os << csv_escape(cdn::to_string(provider)) << ',' << p.x << ',' << p.y << '\n';
    }
  }
  return os.str();
}

std::string fig6_to_csv(const Fig6Result& r) {
  std::ostringstream os;
  os << "group,pages,mean_h3_cdn_resources,mean_plt_reduction_ms,median_plt_reduction_ms\n";
  for (const auto& g : r.groups) {
    os << analysis::to_string(g.group) << ',' << g.pages << ',' << g.mean_h3_cdn_resources << ','
       << g.mean_plt_reduction_ms << ',' << g.median_plt_reduction_ms << '\n';
  }
  os << "\nphase,median_reduction_ms\n";
  os << "connection," << r.median_connect_reduction_ms << '\n';
  os << "wait," << r.median_wait_reduction_ms << '\n';
  os << "receive," << r.median_receive_reduction_ms << '\n';
  return os.str();
}

std::string fig7_to_csv(const Fig7Result& r) {
  std::ostringstream os;
  os << "group,mean_reused_h2,mean_reused_h3,mean_diff\n";
  for (const auto& g : r.groups) {
    os << analysis::to_string(g.group) << ',' << g.mean_reused_h2 << ',' << g.mean_reused_h3
       << ',' << g.mean_reused_diff << '\n';
  }
  os << "\ndiff_bin_center,pages,mean_plt_reduction_ms\n";
  for (const auto& b : r.reduction_by_diff) {
    os << b.diff_bin_center << ',' << b.pages << ',' << b.mean_plt_reduction_ms << '\n';
  }
  return os.str();
}

std::string fig8_to_csv(const Fig8Result& r) {
  std::ostringstream os;
  os << "providers,pages,mean_plt_reduction_ms,mean_resumed_connections\n";
  for (const auto& row : r.by_provider_count) {
    os << row.providers << ',' << row.pages << ',' << row.mean_plt_reduction_ms << ','
       << row.mean_resumed_connections << '\n';
  }
  return os.str();
}

std::string table3_to_csv(const Table3Result& r) {
  std::ostringstream os;
  os << "group,pages,avg_providers,avg_resumed_connections,plt_reduction_ms\n";
  os << "C_H," << r.high.pages << ',' << r.high.avg_providers << ','
     << r.high.avg_resumed_connections << ',' << r.high.plt_reduction_ms << '\n';
  os << "C_L," << r.low.pages << ',' << r.low.avg_providers << ','
     << r.low.avg_resumed_connections << ',' << r.low.plt_reduction_ms << '\n';
  return os.str();
}

std::string fig9_to_csv(const Fig9Result& r) {
  std::ostringstream os;
  os << "loss_rate,cdn_resources,plt_reduction_ms\n";
  for (const auto& s : r.series) {
    for (const auto& [x, y] : s.points) os << s.loss_rate << ',' << x << ',' << y << '\n';
  }
  os << "\nloss_rate,fit_slope,fit_intercept,r2\n";
  for (const auto& s : r.series) {
    os << s.loss_rate << ',' << s.fit.slope << ',' << s.fit.intercept << ',' << s.fit.r2 << '\n';
  }
  return os.str();
}

std::string dissection_to_csv(const PltDissectionResult& r) {
  std::ostringstream os;
  os << "group,pages,mean_h2_plt_ms,mean_h3_plt_ms,mean_plt_delta_ms";
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    os << ",delta_" << obs::to_string(static_cast<obs::Phase>(i)) << "_ms";
  }
  os << '\n';
  const auto row = [&](const PltDissectionRow& g) {
    os << g.group << ',' << g.pages << ',' << g.mean_h2_plt_ms << ',' << g.mean_h3_plt_ms << ','
       << g.mean_plt_delta_ms();
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) os << ',' << g.mean_delta.ms[i];
    os << '\n';
  };
  row(r.overall);
  for (const auto& g : r.by_vantage) row(g);
  // Provider rows in canonical (sorted-by-name) order regardless of how the
  // producing container iterates, so the CSV is stable across builds.
  std::vector<const PltDissectionRow*> providers;
  providers.reserve(r.by_provider.size());
  for (const auto& g : r.by_provider) providers.push_back(&g);
  std::sort(providers.begin(), providers.end(),
            [](const PltDissectionRow* a, const PltDissectionRow* b) { return a->group < b->group; });
  for (const PltDissectionRow* g : providers) row(*g);
  return os.str();
}

std::string summary_to_json(const StudyResult& study) {
  const auto t2 = compute_table2(study);
  const auto f2 = compute_fig2(study);
  const auto f3 = compute_fig3(study);
  const auto f4 = compute_fig4(study);
  const auto f6 = compute_fig6(study);

  util::JsonWriter w;
  w.begin_object();
  w.kv("sites", study.site_count());
  w.kv("visits", study.visits.size());
  w.kv("consecutive", study.config.consecutive);
  w.kv("loss_rate", study.config.loss_rate);

  w.key("table2").begin_object();
  w.kv("total_requests", t2.total());
  w.kv("cdn_share", static_cast<double>(t2.cdn_total()) / static_cast<double>(t2.total()));
  w.kv("h3_share",
       static_cast<double>(t2.cdn_h3 + t2.noncdn_h3) / static_cast<double>(t2.total()));
  w.kv("cdn_h3_share_of_all", static_cast<double>(t2.cdn_h3) / static_cast<double>(t2.total()));
  w.end_object();

  w.key("fig2").begin_array();
  for (const auto& row : f2) {
    w.begin_object();
    w.kv("provider", cdn::to_string(row.provider));
    w.kv("share_of_h3_cdn", row.share_of_all_h3_cdn);
    w.kv("h3_within_provider", row.h3_share_within_provider);
    w.kv("market_share", row.market_share);
    w.end_object();
  }
  w.end_array();

  w.kv("fig3_pages_above_50pct_cdn", f3.fraction_above_50pct);
  w.kv("fig4_pages_with_2plus_providers", f4.fraction_pages_ge2_providers);

  w.key("fig6").begin_object();
  w.key("group_mean_reduction_ms").begin_array();
  for (const auto& g : f6.groups) w.value(g.mean_plt_reduction_ms);
  w.end_array();
  w.kv("median_connect_reduction_ms", f6.median_connect_reduction_ms);
  w.kv("median_wait_reduction_ms", f6.median_wait_reduction_ms);
  w.kv("median_receive_reduction_ms", f6.median_receive_reduction_ms);
  w.end_object();

  w.end_object();
  return w.str();
}

}  // namespace h3cdn::core
