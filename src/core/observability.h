// Run-level observability bundle: one object owning the metrics registry,
// wall-clock profiler, trace aggregator, and collected waterfalls for a
// study run, plus the artifact writer that turns them into files.
//
// Wiring (see docs/OBSERVABILITY.md):
//   core::RunObservability obs;
//   core::StudyConfig cfg;
//   cfg.observability = &obs;
//   core::MeasurementStudy(cfg).run();
//   obs.write_artifacts("out/obs");   // metrics.{json,csv,prom}, qlog.json,
//                                     // waterfalls.json, attribution.json,
//                                     // profile.json
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/fault_window.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/timeline.h"
#include "obs/trace_hub.h"
#include "obs/waterfall.h"

namespace h3cdn::core {

struct ObservabilityConfig {
  // Per-connection trace ring-buffer capacity (0 = unbounded). The default
  // keeps the packet tail of every connection without letting long fault
  // runs grow traces without limit.
  std::size_t trace_capacity = 4096;
  // Cap on registered connection traces; once reached, new connections run
  // untraced (pool bus traces are always kept). 0 = unlimited. In a sharded
  // study the cap is split evenly across shards (see per_shard), so which
  // connections get traced never depends on thread scheduling.
  std::size_t max_traces = 256;
  // Cap on collected waterfalls (one per page visit). 0 = unlimited. Split
  // across shards like max_traces.
  std::size_t max_waterfalls = 0;
  // Window width of the sim-time timeline (timeline.{json,csv}); every shard
  // and chaos cell must use the same width or merge_from aborts.
  Duration timeline_bucket = msec(250);
  // Objectives evaluated over the merged timeline into slo.json. Clear to
  // skip SLO evaluation entirely.
  std::vector<obs::SloObjective> slo = obs::default_slo_objectives();

  /// The per-shard slice of this config: caps are divided evenly (rounded
  /// up) across `shard_count` shards so every shard gets a deterministic
  /// quota regardless of execution order; the ring-buffer capacity is
  /// per-trace and stays unchanged.
  [[nodiscard]] ObservabilityConfig per_shard(std::size_t shard_count) const;
};

class RunObservability {
 public:
  explicit RunObservability(ObservabilityConfig config = {})
      : config_(std::move(config)), timeline_(config_.timeline_bucket) {}
  RunObservability(const RunObservability&) = delete;
  RunObservability& operator=(const RunObservability&) = delete;

  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] obs::TimelineRecorder& timeline() { return timeline_; }
  [[nodiscard]] const obs::TimelineRecorder& timeline() const { return timeline_; }
  [[nodiscard]] obs::PhaseProfiler& profiler() { return profiler_; }
  [[nodiscard]] const obs::PhaseProfiler& profiler() const { return profiler_; }
  [[nodiscard]] obs::TraceAggregator& traces() { return traces_; }
  [[nodiscard]] const obs::TraceAggregator& traces() const { return traces_; }
  [[nodiscard]] const std::vector<obs::Waterfall>& waterfalls() const { return waterfalls_; }
  [[nodiscard]] const ObservabilityConfig& config() const { return config_; }

  /// Registers a connection trace under `label`, or returns nullptr when the
  /// max_traces cap is reached (the connection then runs untraced).
  std::shared_ptr<trace::ConnectionTrace> make_connection_trace(const std::string& label);

  /// Registers a pool "bus" trace for cross-connection events. Never capped.
  std::shared_ptr<trace::ConnectionTrace> make_bus_trace(const std::string& label);

  /// Stores a finished page's waterfall (dropped once past max_waterfalls;
  /// the drop is counted in the `obs.waterfalls_dropped` metric).
  void add_waterfall(obs::Waterfall waterfall);

  /// Records one scenario's fault->recovery annotation (chaos harness).
  void add_fault_annotation(obs::FaultAnnotation annotation);
  [[nodiscard]] const std::vector<obs::FaultAnnotation>& fault_annotations() const {
    return fault_annotations_;
  }

  /// Folds a per-shard sink into this run-level one: metrics, the timeline
  /// (bucket-wise), fault annotations, and profiler phases merge
  /// (obs::MetricsRegistry::merge_from semantics), the shard's
  /// traces are appended after the ones already registered, and its
  /// waterfalls are re-admitted through add_waterfall (so the run-level
  /// max_waterfalls cap still binds). Callers must merge shards in canonical
  /// shard order — that single rule is what makes every artifact independent
  /// of thread scheduling. The shard sink is left drained.
  void merge_from(RunObservability&& shard);

  /// Writes metrics.json/csv/prom, qlog.json, waterfalls.json,
  /// attribution.json (critical-path PLT dissection of the collected
  /// waterfalls), profile.json, timeline.{json,csv}, slo.json,
  /// fault_recovery.json (when annotations exist), and trace.perfetto.json
  /// into `dir` (created if missing). Returns false and fills `error` on I/O
  /// failure.
  bool write_artifacts(const std::string& dir, std::string* error = nullptr) const;

 private:
  ObservabilityConfig config_;
  obs::MetricsRegistry metrics_;
  obs::TimelineRecorder timeline_;
  obs::PhaseProfiler profiler_;
  obs::TraceAggregator traces_;
  std::vector<obs::Waterfall> waterfalls_;
  std::vector<obs::FaultAnnotation> fault_annotations_;
  std::size_t connection_traces_ = 0;
};

}  // namespace h3cdn::core
