// ProbeRunTask: one self-contained shard of a measurement study.
//
// A shard is one (vantage, probe, mode) browser run — the unit the paper's
// methodology makes independent by construction: it owns its Simulator, its
// Environment (paths, edge caches, DNS cache), its TLS session-ticket store,
// its Rng fork, and (when observability is on) its own metrics registry,
// profiler, trace aggregator and waterfall sink. Nothing mutable is shared
// with any other shard, so shards can execute on any thread in any order;
// the study merges shard results in canonical shard order afterwards, which
// keeps every output byte-identical for any --jobs value. The determinism
// contract is spelled out in docs/PARALLELISM.md.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "browser/environment.h"
#include "core/observability.h"
#include "core/study.h"

namespace h3cdn::core {

struct ShardResult;

/// Inputs of one shard. Everything is copied or shared-immutable: `config`
/// and `workload` must outlive run() but are only read.
struct ProbeRunTask {
  const StudyConfig* config = nullptr;
  std::shared_ptr<const web::Workload> workload;
  browser::VantageConfig vantage;  // base vantage (loss/salt applied in run())
  int probe = 0;
  bool h3_enabled = false;
  std::size_t site_count = 0;
  /// Canonical shard position (vantage-major, then probe, then H2 before
  /// H3); the merge key that makes parallel output order-independent.
  std::size_t shard_index = 0;
  /// Per-shard observability slice (ObservabilityConfig::per_shard of the
  /// run-level config); nullopt when observability is disabled.
  std::optional<ObservabilityConfig> observability;

  /// Executes the shard on the calling thread. Installs the shard's own
  /// metrics registry/profiler on this thread for the duration (thread-local
  /// sinks), so concurrent shards never contend.
  [[nodiscard]] ShardResult run() const;
};

/// What a shard hands back to the merge step.
struct ShardResult {
  /// Visits in site order (the shard's deterministic internal order).
  std::vector<PageVisitRecord> visits;
  /// The shard's private sink; null when observability is disabled.
  std::unique_ptr<RunObservability> observability;
};

}  // namespace h3cdn::core
