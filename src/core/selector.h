// Adaptive per-origin protocol selection — the tool the paper's §VII asks
// researchers to build ("an adaptive protocol selection tool that adjusts
// flexibly based on different conditions"), in the spirit of the authors'
// own FlexHTTP (ref [43]).
//
// The selector keeps an exponentially-weighted latency estimate per
// (origin, protocol) and recommends the faster one, exploring the
// non-preferred protocol at a configurable rate so estimates stay fresh.
// It plugs into http::ConnectionPool via PoolConfig::protocol_hint.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "http/types.h"
#include "util/rng.h"

namespace h3cdn::core {

struct SelectorConfig {
  double ewma_alpha = 0.3;        // weight of the newest observation
  double explore_rate = 0.05;     // probability of probing the other protocol
  std::size_t min_observations = 3;  // per protocol before trusting estimates
  double switch_margin = 1.05;    // required advantage ratio to switch away
};

class AdaptiveProtocolSelector {
 public:
  /// Context id for archetype-conditioned selection. The global context pools
  /// every observation regardless of workload archetype — the pre-archetype
  /// behavior, and the fallback when a context has no evidence of its own.
  static constexpr int kGlobalContext = -1;

  explicit AdaptiveProtocolSelector(SelectorConfig config, util::Rng rng);
  AdaptiveProtocolSelector() : AdaptiveProtocolSelector({}, util::Rng(1)) {}

  /// Feeds one completed entry's total latency (global context).
  void observe(const std::string& origin, http::HttpVersion version, double total_ms);

  /// Context-conditioned observation: updates the named context's estimate
  /// and (when context != kGlobalContext) the global marginal too, so global
  /// recommendations stay consistent with everything observed.
  void observe(int context, const std::string& origin, http::HttpVersion version,
               double total_ms);

  /// The protocol the selector would use for this origin right now, or
  /// nullopt to defer to the pool's default policy (insufficient data).
  [[nodiscard]] std::optional<http::HttpVersion> recommend(const std::string& origin);

  /// Archetype-conditioned recommendation: decides on the context's own
  /// estimates when they are mature, otherwise falls back to the global
  /// context (and to nullopt when even that is immature).
  [[nodiscard]] std::optional<http::HttpVersion> recommend(int context,
                                                           const std::string& origin);

  /// Current latency estimate (EWMA ms) for one arm; nullopt if unobserved.
  [[nodiscard]] std::optional<double> estimate(const std::string& origin,
                                               http::HttpVersion version) const;

  /// Context-conditioned estimate; does not fall back to the global context.
  [[nodiscard]] std::optional<double> estimate(int context, const std::string& origin,
                                               http::HttpVersion version) const;

  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
  [[nodiscard]] std::uint64_t explorations() const { return explorations_; }

  void reset();

 private:
  struct Arm {
    double ewma_ms = 0.0;
    std::size_t n = 0;
  };
  struct OriginState {
    Arm h2;
    Arm h3;
  };

  static Arm& arm(OriginState& s, http::HttpVersion v);
  static const Arm& arm(const OriginState& s, http::HttpVersion v);

  /// Recommendation over one context's state only; nullopt when immature.
  std::optional<http::HttpVersion> recommend_in(const OriginState& s);

  SelectorConfig config_;
  util::Rng rng_;
  /// context id (kGlobalContext = pooled) -> origin -> per-arm estimates.
  std::map<int, std::map<std::string, OriginState>> contexts_;
  std::uint64_t decisions_ = 0;
  std::uint64_t explorations_ = 0;
};

}  // namespace h3cdn::core
