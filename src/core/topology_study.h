// Multi-hop topology experiment (h3cdn_study --experiment topology,
// docs/TOPOLOGY.md).
//
// Sweeps PathPlans (per-hop protocol choices, e.g. h3-h2 = QUIC to the relay,
// H2 upstream) × injected loss rates. Each cell runs a single probe through a
// private topology::Chain — forward proxy / mid-tier cache relays with their
// own upstream connection pools — and reports the critical-path PLT
// dissection end-to-end AND per hop. The per-hop vectors re-aggregate to the
// end-to-end dissection exactly (±1 µs; the cell checks it as an invariant).
// Single-token plans ("h3", "h2") are direct single-hop baselines, which is
// where the proxied-vs-direct deltas come from (bench_topology's headline).
//
// Cells are independent shards on a util::ThreadPool merged in canonical
// (plan-major, then loss) order: every artifact is byte-identical at any
// --jobs, which CI's topology smoke step pins.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "browser/environment.h"
#include "core/observability.h"
#include "obs/critical_path.h"
#include "topology/chain.h"
#include "web/workload.h"

namespace h3cdn::core {

struct TopologyConfig {
  web::WorkloadConfig workload;
  std::size_t sites = 6;  // pages visited per cell

  // Swept path plans (PathPlan grammar: hyphen-joined h2/h3 hop tokens).
  std::vector<std::string> plans = {"h3-h3", "h3-h2", "h2-h3"};
  // Append a direct single-hop baseline per distinct client-facing protocol
  // of `plans` (the proxied-vs-direct comparison surface).
  bool include_direct = true;
  std::vector<double> loss_rates = {0.0, 0.01};

  browser::VantageConfig vantage;
  browser::BrowserConfig browser;
  // Relay template: links/cache/think knobs; `plan` is overwritten per cell.
  topology::ChainConfig chain;

  std::uint64_t seed = 7;
  int jobs = 0;  // 0 = hardware concurrency; output identical for any value
};

/// One row of the sweep: a (plan, loss) cell's end-to-end dissection
/// ("e2e") or one of its per-hop slices ("hop0" = client-facing hop,
/// "hop1"... = relay upstream fetches).
struct TopologyHopRow {
  std::string plan;
  double loss_rate = 0.0;
  std::string hop;  // "e2e", "hop0", "hop1", ...
  std::size_t pages = 0;

  double mean_plt_ms = 0.0;  // e2e rows; hop rows repeat the cell value
  double p95_plt_ms = 0.0;
  obs::PhaseVector mean_phases;  // mean attribution vector of this slice

  // e2e rows: worst |sum_hop - e2e| over phases and pages, microseconds
  // (the re-aggregation invariant; must stay <= 1).
  double reagg_residual_us = 0.0;
  double tier_hit_ratio = 0.0;  // e2e rows of chained cells (cold-start ratio)
  std::uint64_t relayed_requests = 0;
  std::uint64_t holds_killed = 0;

  std::vector<std::string> violations;  // e2e rows; empty = invariants held
};

struct TopologyResult {
  std::size_t sites = 0;
  std::vector<std::string> plans;  // swept plan names, canonical order
  std::vector<TopologyHopRow> rows;

  [[nodiscard]] bool all_passed() const;
};

/// Runs every (plan, loss) cell (parallel across cells, deterministic merge).
/// When `observability` is non-null each cell's metrics, timeline, and
/// per-page waterfalls (with their upstream_hops provenance) merge into it in
/// canonical cell order.
TopologyResult run_topology(const TopologyConfig& config,
                            RunObservability* observability = nullptr);

void print_topology_result(std::ostream& os, const TopologyResult& result);

/// Machine-readable form, one row per (plan, loss, hop); the byte-identity
/// surface for the --jobs determinism checks.
std::string topology_result_to_csv(const TopologyResult& result);

}  // namespace h3cdn::core
