#include "core/clusters.h"

#include <algorithm>
#include <sstream>

#include "analysis/page_metrics.h"
#include "analysis/vector_math.h"
#include "browser/waterfall.h"
#include "util/json.h"
#include "util/table.h"

namespace h3cdn::core {

namespace {

const locedge::Classifier& classifier() {
  static const locedge::Classifier instance;
  return instance;
}

std::vector<std::string> phase_names() {
  std::vector<std::string> names;
  names.reserve(obs::kPhaseCount);
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    names.emplace_back(obs::to_string(static_cast<obs::Phase>(i)));
  }
  return names;
}

/// Accumulates one archetype's (or the global) diff summary.
struct RowAcc {
  std::size_t pages = 0;
  double h2_plt = 0.0, h3_plt = 0.0;
  double h2_fcp = 0.0, h3_fcp = 0.0;
  double h2_si = 0.0, h3_si = 0.0;
  obs::PhaseVector h2;
  obs::PhaseVector h3;

  void add(const ClusterPage& p, const obs::PhaseVector& h2_phases,
           const obs::PhaseVector& h3_phases) {
    ++pages;
    h2_plt += p.h2_plt_ms;
    h3_plt += p.h3_plt_ms;
    h2_fcp += p.h2_fcp_ms;
    h3_fcp += p.h3_fcp_ms;
    h2_si += p.h2_si_ms;
    h3_si += p.h3_si_ms;
    h2 += h2_phases;
    h3 += h3_phases;
  }

  void finish(ClusterArchetypeRow& row) const {
    row.pages = pages;
    if (pages == 0) return;
    const auto n = static_cast<double>(pages);
    row.mean_h2_plt_ms = h2_plt / n;
    row.mean_h3_plt_ms = h3_plt / n;
    row.mean_h2_fcp_ms = h2_fcp / n;
    row.mean_h3_fcp_ms = h3_fcp / n;
    row.mean_h2_si_ms = h2_si / n;
    row.mean_h3_si_ms = h3_si / n;
    row.mean_h2 = h2;
    row.mean_h2 /= n;
    row.mean_h3 = h3;
    row.mean_h3 /= n;
    row.mean_delta = row.mean_h2 - row.mean_h3;
  }
};

SelectorAbResult run_selector_ab(const std::vector<ClusterPage>& pages,
                                 SelectorConfig selector_config, std::uint64_t seed) {
  using http::HttpVersion;
  SelectorAbResult ab;
  ab.pairs = pages.size();
  if (pages.empty()) return ab;

  // Exploration is for live traffic; the replay wants the deterministic
  // exploit policy both arms would settle on.
  selector_config.explore_rate = 0.0;
  AdaptiveProtocolSelector global(selector_config, util::Rng(seed));
  AdaptiveProtocolSelector conditioned(selector_config, util::Rng(seed + 1));

  const auto context_of = [](const ClusterPage& p) {
    return p.archetype >= 0 ? p.archetype : AdaptiveProtocolSelector::kGlobalContext;
  };

  // Train: both arms see both protocols' measured PLT for every pair.
  for (const auto& p : pages) {
    global.observe(p.site, HttpVersion::H2, p.h2_plt_ms);
    global.observe(p.site, HttpVersion::H3, p.h3_plt_ms);
    conditioned.observe(context_of(p), p.site, HttpVersion::H2, p.h2_plt_ms);
    conditioned.observe(context_of(p), p.site, HttpVersion::H3, p.h3_plt_ms);
  }

  // Evaluate: realized PLT is the measured PLT of the recommended protocol
  // (H3 when an arm defers to the pool default, matching protocol_for).
  for (const auto& p : pages) {
    const HttpVersion pick_g = global.recommend(p.site).value_or(HttpVersion::H3);
    const HttpVersion pick_c =
        conditioned.recommend(context_of(p), p.site).value_or(HttpVersion::H3);
    if (pick_g == HttpVersion::H2) ++ab.global_h2_picks;
    if (pick_c == HttpVersion::H2) ++ab.conditioned_h2_picks;
    ab.global_mean_plt_ms += pick_g == HttpVersion::H2 ? p.h2_plt_ms : p.h3_plt_ms;
    ab.conditioned_mean_plt_ms += pick_c == HttpVersion::H2 ? p.h2_plt_ms : p.h3_plt_ms;
    ab.oracle_mean_plt_ms += std::min(p.h2_plt_ms, p.h3_plt_ms);
  }
  const auto n = static_cast<double>(pages.size());
  ab.global_mean_plt_ms /= n;
  ab.conditioned_mean_plt_ms /= n;
  ab.oracle_mean_plt_ms /= n;
  return ab;
}

}  // namespace

ClustersResult compute_clusters(const StudyResult& study, const ClustersConfig& config) {
  ClustersResult r;
  r.algo = config.archetype.algo == analysis::ArchetypeAlgo::Dbscan ? "dbscan" : "kmeans";
  r.qoe_features = config.include_qoe;
  r.feature_names = phase_names();
  if (config.include_qoe) {
    r.feature_names.emplace_back("qoe_fcp_ratio");
    r.feature_names.emplace_back("qoe_si_ratio");
  }

  // One point per H2/H3 pair, in the study engine's canonical order.
  const auto pairs = study.pairs();
  std::vector<obs::PhaseVector> h2_phases, h3_phases;
  std::vector<std::vector<double>> phase_rows;
  for (const auto& p : pairs) {
    const std::string label = p.vantage + "/p" + std::to_string(p.probe);
    const auto h2 = obs::analyze_critical_path(browser::make_waterfall(*p.h2, label + "/h2"));
    const auto h3 = obs::analyze_critical_path(browser::make_waterfall(*p.h3, label + "/h3"));

    ClusterPage page;
    page.site_index = p.site_index;
    page.site = p.h2->site;
    page.vantage = p.vantage;
    page.probe = p.probe;
    page.h2_plt_ms = h2.plt_ms;
    page.h3_plt_ms = h3.plt_ms;
    page.h2_fcp_ms = h2.qoe.fcp_ms;
    page.h3_fcp_ms = h3.qoe.fcp_ms;
    page.h2_si_ms = h2.qoe.speed_index_ms;
    page.h3_si_ms = h3.qoe.speed_index_ms;

    // Dominant provider, as in the dissection's per-provider grouping.
    const auto m = analysis::compute_page_metrics(*p.h3, classifier());
    cdn::ProviderId dominant = cdn::ProviderId::Other;
    std::size_t best = 0;
    for (const auto& [provider, count] : m.provider_counts) {
      if (count > best) {
        best = count;
        dominant = provider;
      }
    }
    page.provider = best > 0 ? cdn::to_string(dominant) : "none";

    // The combined H2+H3 critical-path time per phase; normalized below so
    // the clustered shape is scale-free.
    std::vector<double> row(obs::kPhaseCount, 0.0);
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      row[i] = h2.phases.ms[i] + h3.phases.ms[i];
    }
    phase_rows.push_back(std::move(row));
    h2_phases.push_back(h2.phases);
    h3_phases.push_back(h3.phases);
    r.pages.push_back(std::move(page));
  }

  r.global.id = -2;
  r.global.name = "all";
  if (r.pages.empty()) return r;

  std::vector<std::vector<double>> features = analysis::normalize_rows(phase_rows);
  if (config.include_qoe) {
    for (std::size_t i = 0; i < features.size(); ++i) {
      const ClusterPage& p = r.pages[i];
      const double fcp_ratio =
          0.5 * ((p.h2_plt_ms > 0.0 ? p.h2_fcp_ms / p.h2_plt_ms : 0.0) +
                 (p.h3_plt_ms > 0.0 ? p.h3_fcp_ms / p.h3_plt_ms : 0.0));
      const double si_ratio = 0.5 * ((p.h2_plt_ms > 0.0 ? p.h2_si_ms / p.h2_plt_ms : 0.0) +
                                     (p.h3_plt_ms > 0.0 ? p.h3_si_ms / p.h3_plt_ms : 0.0));
      features[i].push_back(fcp_ratio);
      features[i].push_back(si_ratio);
    }
  }

  const analysis::ArchetypeResult discovered =
      analysis::discover_archetypes(features, phase_names(), config.archetype);
  r.cluster_count = discovered.cluster_count;
  r.eps_used = discovered.eps_used;
  r.chosen_k = discovered.chosen_k;
  r.silhouette = discovered.silhouette;
  for (std::size_t i = 0; i < r.pages.size(); ++i) {
    r.pages[i].archetype = discovered.labels[i];
    r.pages[i].features = features[i];
  }

  RowAcc global_acc;
  for (std::size_t i = 0; i < r.pages.size(); ++i) {
    global_acc.add(r.pages[i], h2_phases[i], h3_phases[i]);
  }
  global_acc.finish(r.global);
  r.global.centroid = analysis::mean_row(features);

  for (const auto& a : discovered.archetypes) {
    ClusterArchetypeRow row;
    row.id = a.id;
    row.name = a.name;
    row.centroid = a.centroid;
    RowAcc acc;
    for (std::size_t m : a.members) acc.add(r.pages[m], h2_phases[m], h3_phases[m]);
    acc.finish(row);
    r.archetypes.push_back(std::move(row));
  }

  if (config.run_ab) r.ab = run_selector_ab(r.pages, config.selector, study.config.seed);
  return r;
}

namespace {

void write_archetype_row(util::JsonWriter& w, const ClusterArchetypeRow& row) {
  w.begin_object();
  w.kv("id", static_cast<std::int64_t>(row.id));
  w.kv("name", row.name);
  w.kv("pages", row.pages);
  w.key("centroid").begin_array();
  for (double v : row.centroid) w.value(v);
  w.end_array();
  w.kv("mean_h2_plt_ms", row.mean_h2_plt_ms);
  w.kv("mean_h3_plt_ms", row.mean_h3_plt_ms);
  w.kv("mean_plt_delta_ms", row.mean_plt_delta_ms());
  w.kv("mean_h2_fcp_ms", row.mean_h2_fcp_ms);
  w.kv("mean_h3_fcp_ms", row.mean_h3_fcp_ms);
  w.kv("mean_h2_si_ms", row.mean_h2_si_ms);
  w.kv("mean_h3_si_ms", row.mean_h3_si_ms);
  const auto phases = [&](const char* key, const obs::PhaseVector& v) {
    w.key(key).begin_object();
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      w.kv(obs::to_string(static_cast<obs::Phase>(i)), v.ms[i]);
    }
    w.end_object();
  };
  phases("mean_h2_ms", row.mean_h2);
  phases("mean_h3_ms", row.mean_h3);
  phases("mean_delta_ms", row.mean_delta);
  w.end_object();
}

}  // namespace

std::string clusters_to_json(const ClustersResult& r) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", static_cast<std::int64_t>(1));
  w.kv("algo", r.algo);
  w.kv("qoe_features", r.qoe_features);
  w.kv("cluster_count", r.cluster_count);
  w.kv("eps_used", r.eps_used);
  w.kv("chosen_k", r.chosen_k);
  w.kv("silhouette", r.silhouette);
  w.kv("pages", r.pages.size());
  w.key("feature_names").begin_array();
  for (const auto& name : r.feature_names) w.value(name);
  w.end_array();
  w.key("global");
  write_archetype_row(w, r.global);
  w.key("archetypes").begin_array();
  for (const auto& row : r.archetypes) write_archetype_row(w, row);
  w.end_array();
  w.key("assignments").begin_array();
  for (const auto& p : r.pages) {
    w.begin_object();
    w.kv("site_index", p.site_index);
    w.kv("site", p.site);
    w.kv("vantage", p.vantage);
    w.kv("probe", p.probe);
    w.kv("provider", p.provider);
    w.kv("archetype", static_cast<std::int64_t>(p.archetype));
    w.kv("h2_plt_ms", p.h2_plt_ms);
    w.kv("h3_plt_ms", p.h3_plt_ms);
    w.kv("h2_fcp_ms", p.h2_fcp_ms);
    w.kv("h3_fcp_ms", p.h3_fcp_ms);
    w.kv("h2_si_ms", p.h2_si_ms);
    w.kv("h3_si_ms", p.h3_si_ms);
    w.key("features").begin_array();
    for (double v : p.features) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("ab").begin_object();
  w.kv("pairs", r.ab.pairs);
  w.kv("global_mean_plt_ms", r.ab.global_mean_plt_ms);
  w.kv("conditioned_mean_plt_ms", r.ab.conditioned_mean_plt_ms);
  w.kv("oracle_mean_plt_ms", r.ab.oracle_mean_plt_ms);
  w.kv("mean_delta_ms", r.ab.mean_delta_ms());
  w.kv("global_h2_picks", r.ab.global_h2_picks);
  w.kv("conditioned_h2_picks", r.ab.conditioned_h2_picks);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string clusters_to_csv(const ClustersResult& r) {
  std::ostringstream os;
  os << "archetype,name,pages,mean_h2_plt_ms,mean_h3_plt_ms,mean_plt_delta_ms"
        ",mean_h2_fcp_ms,mean_h3_fcp_ms,mean_h2_si_ms,mean_h3_si_ms";
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    os << ",delta_" << obs::to_string(static_cast<obs::Phase>(i)) << "_ms";
  }
  os << '\n';
  const auto row = [&](const ClusterArchetypeRow& g) {
    if (g.id == -2) {
      os << "all";
    } else if (g.id < 0) {
      os << "noise";
    } else {
      os << g.id;
    }
    os << ',' << g.name << ',' << g.pages << ',' << g.mean_h2_plt_ms << ',' << g.mean_h3_plt_ms
       << ',' << g.mean_plt_delta_ms() << ',' << g.mean_h2_fcp_ms << ',' << g.mean_h3_fcp_ms
       << ',' << g.mean_h2_si_ms << ',' << g.mean_h3_si_ms;
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) os << ',' << g.mean_delta.ms[i];
    os << '\n';
  };
  row(r.global);
  for (const auto& g : r.archetypes) row(g);
  return os.str();
}

void print_clusters(std::ostream& os, const ClustersResult& r) {
  using util::AsciiTable;
  using util::fmt;

  os << "Workload archetypes: " << r.algo << " over normalized phase shares";
  if (r.qoe_features) os << " + QoE ratios";
  os << '\n';
  if (r.algo == "dbscan") {
    os << "  eps " << fmt(r.eps_used, 4) << ", " << r.cluster_count << " cluster(s), silhouette "
       << fmt(r.silhouette, 3) << '\n';
  } else {
    os << "  chosen k " << r.chosen_k << " (silhouette sweep, score " << fmt(r.silhouette, 3)
       << ")\n";
  }

  std::vector<std::string> headers{"Archetype", "Name", "Pages", "H2 PLT", "H3 PLT", "dPLT",
                                   "H2 FCP", "H3 FCP"};
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    headers.emplace_back(obs::to_string(static_cast<obs::Phase>(i)));
  }
  AsciiTable t(headers);
  const auto add = [&](const ClusterArchetypeRow& row) {
    std::string id = row.id == -2 ? "all" : row.id < 0 ? "noise" : std::to_string(row.id);
    std::vector<std::string> cells{std::move(id),
                                   row.name,
                                   std::to_string(row.pages),
                                   fmt(row.mean_h2_plt_ms, 1),
                                   fmt(row.mean_h3_plt_ms, 1),
                                   fmt(row.mean_plt_delta_ms(), 1),
                                   fmt(row.mean_h2_fcp_ms, 1),
                                   fmt(row.mean_h3_fcp_ms, 1)};
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      cells.push_back(fmt(row.mean_delta.ms[i], 1));
    }
    t.add_row(cells);
  };
  add(r.global);
  for (const auto& row : r.archetypes) add(row);
  os << t.to_string(2);

  if (r.ab.pairs > 0) {
    os << "Selector A/B over " << r.ab.pairs << " pairs: global "
       << fmt(r.ab.global_mean_plt_ms, 2) << " ms, archetype-conditioned "
       << fmt(r.ab.conditioned_mean_plt_ms, 2) << " ms (delta "
       << fmt(r.ab.mean_delta_ms(), 2) << " ms, oracle " << fmt(r.ab.oracle_mean_plt_ms, 2)
       << " ms; H2 picks " << r.ab.global_h2_picks << " vs " << r.ab.conditioned_h2_picks
       << ")\n";
  }
}

}  // namespace h3cdn::core
