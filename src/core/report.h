// Rendering of experiment results in the paper's table/figure layouts, with
// the paper-reported values printed alongside for easy shape comparison.
#pragma once

#include <ostream>

#include "core/experiments.h"

namespace h3cdn::core {

void print_table1(std::ostream& os, const std::vector<Table1Row>& rows);
void print_table2(std::ostream& os, const Table2Result& r);
void print_fig2(std::ostream& os, const std::vector<Fig2Row>& rows);
void print_fig3(std::ostream& os, const Fig3Result& r);
void print_fig4(std::ostream& os, const Fig4Result& r);
void print_fig5(std::ostream& os, const Fig5Result& r);
void print_fig6(std::ostream& os, const Fig6Result& r);
void print_fig7(std::ostream& os, const Fig7Result& r);
void print_fig8(std::ostream& os, const Fig8Result& r);
void print_table3(std::ostream& os, const Table3Result& r);
void print_fig9(std::ostream& os, const Fig9Result& r);
void print_plt_dissection(std::ostream& os, const PltDissectionResult& r);

}  // namespace h3cdn::core
