// Workload-archetype discovery over a completed study (`--experiment
// clusters`): every H2/H3 visit pair becomes one point in normalized
// phase-share space (optionally extended with QoE ratios), the archetype
// pass (analysis/archetype.h) clusters the points, and each discovered
// archetype gets its own H2-vs-H3 phase-diff summary — the global dissection
// split by *regime* instead of by vantage or provider. A built-in A/B
// replay then pits an archetype-conditioned AdaptiveProtocolSelector against
// the global one over the same measured pairs.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/archetype.h"
#include "core/selector.h"
#include "core/study.h"
#include "obs/critical_path.h"

namespace h3cdn::core {

struct ClustersConfig {
  analysis::ArchetypeConfig archetype;  // algorithm, eps/min_pts, k sweep, seed
  /// Append QoE ratio features (FCP/PLT, SpeedIndex/PLT) to the phase shares.
  bool include_qoe = false;
  /// Run the global-vs-conditioned selector A/B replay.
  bool run_ab = true;
  SelectorConfig selector;  // base config for both A/B arms
};

/// One clustered point: an H2/H3 visit pair of one site from one vantage.
struct ClusterPage {
  std::size_t site_index = 0;
  std::string site;
  std::string vantage;
  std::size_t probe = 0;
  std::string provider;  // dominant CDN provider ("none" when uncached)
  int archetype = -1;    // assigned archetype id, -1 = noise
  double h2_plt_ms = 0.0;
  double h3_plt_ms = 0.0;
  double h2_fcp_ms = 0.0;
  double h3_fcp_ms = 0.0;
  double h2_si_ms = 0.0;
  double h3_si_ms = 0.0;
  std::vector<double> features;  // the clustered feature row
};

/// Per-archetype H2/H3 diff summary (same shape as a dissection row).
struct ClusterArchetypeRow {
  int id = -1;  // -1 = noise bucket; the global row uses id -2
  std::string name;
  std::size_t pages = 0;
  std::vector<double> centroid;  // first obs::kPhaseCount dims sum to 1
  double mean_h2_plt_ms = 0.0;
  double mean_h3_plt_ms = 0.0;
  obs::PhaseVector mean_h2;
  obs::PhaseVector mean_h3;
  obs::PhaseVector mean_delta;  // mean_h2 - mean_h3
  double mean_h2_fcp_ms = 0.0;
  double mean_h3_fcp_ms = 0.0;
  double mean_h2_si_ms = 0.0;
  double mean_h3_si_ms = 0.0;

  [[nodiscard]] double mean_plt_delta_ms() const { return mean_h2_plt_ms - mean_h3_plt_ms; }
};

/// Result of the built-in selector A/B replay: both arms are trained on the
/// full pair set (explore_rate forced to 0 for determinism), then evaluated
/// on the same pairs; a pair's realized PLT is the measured PLT of whichever
/// protocol the arm recommends (H3 when an arm defers to the pool default).
struct SelectorAbResult {
  std::size_t pairs = 0;
  double global_mean_plt_ms = 0.0;       // arm A: one global selector state
  double conditioned_mean_plt_ms = 0.0;  // arm B: conditioned per archetype
  double oracle_mean_plt_ms = 0.0;       // per-pair best arm (lower bound)
  std::size_t global_h2_picks = 0;
  std::size_t conditioned_h2_picks = 0;

  /// Positive when conditioning helps (global minus conditioned).
  [[nodiscard]] double mean_delta_ms() const {
    return global_mean_plt_ms - conditioned_mean_plt_ms;
  }
};

struct ClustersResult {
  std::string algo;  // "dbscan" or "kmeans"
  bool qoe_features = false;
  std::vector<std::string> feature_names;
  std::size_t cluster_count = 0;  // excludes the noise bucket
  double eps_used = 0.0;          // DBSCAN radius actually used
  std::size_t chosen_k = 0;       // k-means silhouette-sweep pick
  double silhouette = 0.0;
  std::vector<ClusterPage> pages;               // canonical pairs() order
  std::vector<ClusterArchetypeRow> archetypes;  // ascending id, noise last
  ClusterArchetypeRow global;                   // the "all pages" row
  SelectorAbResult ab;
};

/// Clusters a completed study's pairs into archetypes. Deterministic: the
/// pair order is the study engine's canonical merge order, so the result
/// (and its serializations) are byte-identical at any --jobs.
[[nodiscard]] ClustersResult compute_clusters(const StudyResult& study,
                                              const ClustersConfig& config = {});

/// The clusters.json artifact (schema in docs/OBSERVABILITY.md).
[[nodiscard]] std::string clusters_to_json(const ClustersResult& r);

/// Per-archetype diff rows as CSV (global row first, noise last).
[[nodiscard]] std::string clusters_to_csv(const ClustersResult& r);

/// ASCII archetype table plus the A/B summary.
void print_clusters(std::ostream& os, const ClustersResult& r);

}  // namespace h3cdn::core
