#include "core/report.h"

#include "util/table.h"

namespace h3cdn::core {

using util::AsciiTable;
using util::fmt;
using util::fmt_pct;

void print_table1(std::ostream& os, const std::vector<Table1Row>& rows) {
  os << "Table I: Release year of H3 support in various CDNs\n";
  AsciiTable t({"Provider", "Release Year", "Performance Report"});
  for (const auto& r : rows) {
    t.add_row({r.provider, std::to_string(r.release_year), r.performance_report});
  }
  os << t.to_string(2);
}

void print_table2(std::ostream& os, const Table2Result& r) {
  os << "Table II: requests and percentage of total requests by HTTP version\n";
  os << "  (paper: CDN H2 41.2% / H3 25.8%; non-CDN H2 20.0% / H3 6.8%; CDN share 67.0%;"
        " H3 total 32.6%)\n";
  AsciiTable t({"Protocol", "CDN #Req", "CDN %", "NonCDN #Req", "NonCDN %", "All #Req", "All %"});
  auto row = [&](const char* name, std::size_t c, std::size_t n) {
    t.add_row({name, std::to_string(c), fmt(r.pct(c), 1), std::to_string(n), fmt(r.pct(n), 1),
               std::to_string(c + n), fmt(r.pct(c + n), 1)});
  };
  row("HTTP/2", r.cdn_h2, r.noncdn_h2);
  row("HTTP/3", r.cdn_h3, r.noncdn_h3);
  row("Others", r.cdn_other, r.noncdn_other);
  row("All", r.cdn_total(), r.noncdn_total());
  os << t.to_string(2);
}

void print_fig2(std::ostream& os, const std::vector<Fig2Row>& rows) {
  os << "Fig. 2: H3 adoption by CDN provider and market share\n";
  os << "  (paper: Google ~50% of H3 CDN requests, nearly fully H3; Cloudflare 45.2%,"
        " H3~H2 comparable; others limited)\n";
  AsciiTable t({"Provider", "H3 req", "H2 req", "H3 within provider", "Share of H3 CDN",
                "Market share"});
  for (const auto& r : rows) {
    t.add_row({cdn::to_string(r.provider), std::to_string(r.h3_requests),
               std::to_string(r.h2_requests), fmt_pct(r.h3_share_within_provider),
               fmt_pct(r.share_of_all_h3_cdn), fmt_pct(r.market_share)});
  }
  os << t.to_string(2);
}

void print_fig3(std::ostream& os, const Fig3Result& r) {
  os << "Fig. 3: CCDF of the percentage of CDN resources per webpage\n";
  os << "  (paper: 75% of webpages exceed 50% CDN resources)\n";
  os << "  measured: P(CDN% > 50) = " << fmt_pct(r.fraction_above_50pct) << "\n";
  AsciiTable t({"CDN% >", "fraction of pages"});
  for (double x : {10.0, 25.0, 50.0, 75.0, 90.0}) {
    double y = 0.0;
    for (const auto& p : r.ccdf) {
      if (p.x <= x) y = p.y;
    }
    t.add_row({fmt(x, 0), fmt_pct(y)});
  }
  os << t.to_string(2);
}

void print_fig4(std::ostream& os, const Fig4Result& r) {
  os << "Fig. 4(a): probability of CDN providers appearing on webpages\n";
  os << "  (paper: top four providers exceed 50%)\n";
  AsciiTable a({"Provider", "P(appears)"});
  for (const auto& [provider, p] : r.presence) a.add_row({cdn::to_string(provider), fmt_pct(p)});
  os << a.to_string(2);
  os << "Fig. 4(b): webpages by number of CDN providers used\n";
  os << "  (paper: 94.8% of webpages use at least two providers; measured "
     << fmt_pct(r.fraction_pages_ge2_providers) << ")\n";
  AsciiTable b({"#Providers", "#Pages"});
  for (const auto& [k, n] : r.pages_by_provider_count) {
    b.add_row({std::to_string(k), std::to_string(n)});
  }
  os << b.to_string(2);
}

void print_fig5(std::ostream& os, const Fig5Result& r) {
  os << "Fig. 5: CCDF of per-page CDN resource counts (pages using the provider)\n";
  os << "  (paper: ~50% of pages using Cloudflare/Google contain more than 10)\n";
  AsciiTable t({"Provider", "P(count > 5)", "P(count > 10)", "P(count > 20)", "P(count > 50)"});
  for (const auto& [provider, ccdf] : r.ccdf) {
    auto at = [&](double x) {
      double y = 1.0;
      bool any = false;
      for (const auto& p : ccdf) {
        if (p.x <= x) {
          y = p.y;
          any = true;
        }
      }
      return any ? y : 1.0;
    };
    t.add_row({cdn::to_string(provider), fmt_pct(at(5)), fmt_pct(at(10)), fmt_pct(at(20)),
               fmt_pct(at(50))});
  }
  os << t.to_string(2);
}

void print_fig6(std::ostream& os, const Fig6Result& r) {
  os << "Fig. 6(a): PLT reduction by H3-enabled-CDN-resource quartile group\n";
  os << "  (paper: all positive; Low ~60ms; Medium groups peak; High smallest)\n";
  AsciiTable a({"Group", "Pages", "Mean #H3 CDN res", "Mean PLT reduction (ms)",
                "95% CI", "Median PLT reduction (ms)"});
  for (const auto& g : r.groups) {
    a.add_row({analysis::to_string(g.group), std::to_string(g.pages),
               fmt(g.mean_h3_cdn_resources, 1), fmt(g.mean_plt_reduction_ms, 1),
               "[" + fmt(g.ci_lo_ms, 1) + ", " + fmt(g.ci_hi_ms, 1) + "]",
               fmt(g.median_plt_reduction_ms, 1)});
  }
  os << a.to_string(2);
  os << "Fig. 6(b): per-entry phase reduction medians (ms)\n";
  os << "  (paper: connection > 0, wait < 0, receive ~ 0)\n";
  AsciiTable b({"Phase", "Median reduction (ms)"});
  b.add_row({"connection", fmt(r.median_connect_reduction_ms, 3)});
  b.add_row({"wait", fmt(r.median_wait_reduction_ms, 3)});
  b.add_row({"receive", fmt(r.median_receive_reduction_ms, 3)});
  os << b.to_string(2);
}

void print_fig7(std::ostream& os, const Fig7Result& r) {
  os << "Fig. 7(a/b): reused HTTP connections per group\n";
  os << "  (paper: reuse rises with group level; H2 reuses more than H3, most in High)\n";
  AsciiTable a({"Group", "Mean reused (H2)", "Mean reused (H3)", "Mean diff (H2-H3)"});
  for (const auto& g : r.groups) {
    a.add_row({analysis::to_string(g.group), fmt(g.mean_reused_h2, 1), fmt(g.mean_reused_h3, 1),
               fmt(g.mean_reused_diff, 1)});
  }
  os << a.to_string(2);
  os << "Fig. 7(c): PLT reduction vs. reused-connection difference\n";
  os << "  (paper: reduction shrinks as the difference grows; corr = "
     << fmt(r.correlation_diff_vs_reduction, 3) << ")\n";
  AsciiTable c({"Diff bin center", "Pages", "Mean PLT reduction (ms)"});
  for (const auto& b : r.reduction_by_diff) {
    c.add_row({fmt(b.diff_bin_center, 1), std::to_string(b.pages),
               fmt(b.mean_plt_reduction_ms, 1)});
  }
  os << c.to_string(2);
}

void print_fig8(std::ostream& os, const Fig8Result& r) {
  os << "Fig. 8: consecutive visits — shared providers and resumption\n";
  os << "  (paper: PLT reduction and resumed connections both grow with #providers)\n";
  os << "  corr(providers, reduction) = " << fmt(r.correlation_providers_vs_reduction, 3)
     << ", corr(providers, resumed) = " << fmt(r.correlation_providers_vs_resumed, 3) << "\n";
  AsciiTable t({"#Providers", "Pages", "Mean PLT reduction (ms)", "Mean resumed connections"});
  for (const auto& row : r.by_provider_count) {
    t.add_row({std::to_string(row.providers), std::to_string(row.pages),
               fmt(row.mean_plt_reduction_ms, 1), fmt(row.mean_resumed_connections, 1)});
  }
  os << t.to_string(2);
  os << "  conditioned on the origin protocol (CDN-side view): H3-origin pages mean "
     << fmt(r.mean_reduction_origin_h3_pages, 1) << " ms (corr "
     << fmt(r.corr_reduction_origin_h3_pages, 3) << "); H2-origin pages mean "
     << fmt(r.mean_reduction_origin_h2_pages, 1) << " ms (corr "
     << fmt(r.corr_reduction_origin_h2_pages, 3) << ")\n";
}

void print_table3(std::ostream& os, const Table3Result& r) {
  os << "Table III: PLT reduction of two sharing-degree groups (k-means, k=2, "
     << r.vector_dimension << "-dim domain vectors, " << r.outliers_removed
     << " outliers removed)\n";
  os << "  (paper: C_H 4.16 providers / 101.64 resumed / 109.3ms; C_L 2.58 / 73.74 / 54.35ms)\n";
  AsciiTable t({"Metric", r.high.name, r.low.name});
  t.add_row({"Pages", std::to_string(r.high.pages), std::to_string(r.low.pages)});
  t.add_row({"Avg num. of shared providers", fmt(r.high.avg_providers, 2),
             fmt(r.low.avg_providers, 2)});
  t.add_row({"Avg num. of resumed connections", fmt(r.high.avg_resumed_connections, 2),
             fmt(r.low.avg_resumed_connections, 2)});
  t.add_row({"PLT reduction (ms)", fmt(r.high.plt_reduction_ms, 2),
             fmt(r.low.plt_reduction_ms, 2)});
  os << t.to_string(2);
}

void print_fig9(std::ostream& os, const Fig9Result& r) {
  os << "Fig. 9: PLT reduction vs. #CDN resources under loss\n";
  os << "  (paper slopes: 0.80 @ 0% loss, 1.42 @ 0.5%, 2.15 @ 1% — increasing)\n";
  AsciiTable t({"Loss rate", "Pages", "Fit slope (ms/resource)", "Fit intercept (ms)", "R^2"});
  for (const auto& s : r.series) {
    t.add_row({fmt_pct(s.loss_rate, 1), std::to_string(s.points.size()), fmt(s.fit.slope, 2),
               fmt(s.fit.intercept, 1), fmt(s.fit.r2, 3)});
  }
  os << t.to_string(2);
}

void print_plt_dissection(std::ostream& os, const PltDissectionResult& r) {
  os << "PLT dissection: critical-path attribution of the H2-vs-H3 delta\n";
  os << "  (columns: mean per-phase H2-H3 delta in ms; positive = H3 saved time there;"
        " phase deltas sum to dPLT)\n";
  std::vector<std::string> headers{"Group", "Pages", "H2 PLT", "H3 PLT", "dPLT"};
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    headers.emplace_back(obs::to_string(static_cast<obs::Phase>(i)));
  }
  AsciiTable t(headers);
  const auto add = [&](const PltDissectionRow& row) {
    std::vector<std::string> cells{row.group, std::to_string(row.pages),
                                   fmt(row.mean_h2_plt_ms, 1), fmt(row.mean_h3_plt_ms, 1),
                                   fmt(row.mean_plt_delta_ms(), 1)};
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      cells.push_back(fmt(row.mean_delta.ms[i], 1));
    }
    t.add_row(cells);
  };
  add(r.overall);
  for (const auto& row : r.by_vantage) add(row);
  for (const auto& row : r.by_provider) add(row);
  os << t.to_string(2);
}

}  // namespace h3cdn::core
