// Hedged requests after a p95-latency trigger.
//
// A hedge is a duplicate transmission of a request that has been outstanding
// for longer than the observed tail latency suggests it should be: once the
// engine has seen `min_observations` first-byte latencies, any request still
// waiting past their `quantile` (default p95) gets a second copy dispatched;
// whichever copy delivers first wins and the loser is cancelled. The tracker
// is a bounded ring of recent observations — quantiles are computed by
// copy-and-sort over at most `capacity` values, which is deterministic and
// cheap at the request rates the simulator produces.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/types.h"

namespace h3cdn::resilience {

struct HedgePolicy {
  bool enabled = true;
  double quantile = 0.95;            // trigger threshold over observed latencies
  std::size_t min_observations = 20; // below this, never hedge (cold start)
  Duration min_delay = msec(20);     // clamp: never hedge sooner than this
  Duration max_delay = sec(2);       // clamp: always hedge by this point
};

/// Ring buffer of recent first-byte latencies (milliseconds).
class LatencyTracker {
 public:
  explicit LatencyTracker(std::size_t capacity = 256) : capacity_(capacity) {}

  void observe(double ms);
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Quantile q in [0, 1] by nearest-rank over the retained window.
  /// Requires at least one observation.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring write position once full
  std::vector<double> values_;
};

/// Combines policy + tracker into the hedge trigger.
class HedgeTrigger {
 public:
  explicit HedgeTrigger(HedgePolicy policy) : policy_(policy) {}

  void observe(Duration first_byte_latency);

  /// Delay after dispatch at which an outstanding request should be hedged,
  /// or nullopt while disabled / still in cold start.
  [[nodiscard]] std::optional<Duration> delay() const;

 private:
  HedgePolicy policy_;
  LatencyTracker tracker_;
};

}  // namespace h3cdn::resilience
