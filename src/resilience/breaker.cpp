#include "resilience/breaker.h"

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "util/check.h"

namespace h3cdn::resilience {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half_open";
  }
  return "?";
}

bool CircuitBreaker::allow(TimePoint now) {
  if (!config_.enabled) return true;
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      if (now - opened_at_ < config_.open_duration) return false;
      state_ = BreakerState::HalfOpen;
      probes_in_flight_ = 0;
      ++transitions_.half_opened;
      obs::count("resilience.breaker.half_opened");
      obs::tl_count("resilience.breaker.half_opened", now);
      [[fallthrough]];
    case BreakerState::HalfOpen:
      if (probes_in_flight_ >= config_.half_open_probes) return false;
      ++probes_in_flight_;
      return true;
  }
  return true;
}

void CircuitBreaker::record(TimePoint now, bool success) {
  if (!config_.enabled) return;
  if (state_ == BreakerState::HalfOpen) {
    if (probes_in_flight_ > 0) --probes_in_flight_;
    if (success) {
      // A successful probe closes the breaker and forgets the bad window:
      // the edge has demonstrably recovered.
      state_ = BreakerState::Closed;
      samples_.clear();
      failures_in_window_ = 0;
      ++transitions_.closed;
      obs::count("resilience.breaker.closed");
      obs::tl_count("resilience.breaker.closed", now);
    } else {
      open(now);
    }
    return;
  }
  samples_.push_back({now, success});
  if (!success) ++failures_in_window_;
  prune(now);
  if (state_ == BreakerState::Closed && samples_.size() >= config_.min_samples) {
    const double rate =
        static_cast<double>(failures_in_window_) / static_cast<double>(samples_.size());
    if (rate >= config_.failure_threshold) open(now);
  }
}

void CircuitBreaker::prune(TimePoint now) {
  while (!samples_.empty() && now - samples_.front().at > config_.window) {
    if (!samples_.front().success) {
      H3CDN_ASSERT(failures_in_window_ > 0);
      --failures_in_window_;
    }
    samples_.pop_front();
  }
}

void CircuitBreaker::open(TimePoint now) {
  state_ = BreakerState::Open;
  opened_at_ = now;
  probes_in_flight_ = 0;
  ++transitions_.opened;
  obs::count("resilience.breaker.opened");
  obs::tl_count("resilience.breaker.opened", now);
}

CircuitBreaker& BreakerRegistry::get(const std::string& domain, const char* proto) {
  std::string key = domain;
  key += '|';
  key += proto;
  auto it = breakers_.find(key);
  if (it == breakers_.end()) {
    it = breakers_.emplace(std::move(key), CircuitBreaker(config_)).first;
  }
  return it->second;
}

CircuitBreaker::Transitions BreakerRegistry::total_transitions() const {
  CircuitBreaker::Transitions total;
  for (const auto& [key, b] : breakers_) {
    total.opened += b.transitions().opened;
    total.half_opened += b.transitions().half_opened;
    total.closed += b.transitions().closed;
  }
  return total;
}

}  // namespace h3cdn::resilience
