// Request-lifecycle resilience engine.
//
// One Engine lives per Browser (so breaker state and latency history persist
// across the pages of a visit) and is handed to each per-page ConnectionPool
// as a raw pointer. A null pointer — the default everywhere — means the pool
// behaves exactly as it did before this subsystem existed, which is what
// keeps the seed study byte-identical. See docs/RESILIENCE.md for the policy
// reference and the chaos harness that exercises it.
#pragma once

#include <cstdint>
#include <string>

#include "resilience/breaker.h"
#include "resilience/hedge.h"
#include "resilience/policy.h"
#include "util/types.h"

namespace h3cdn::resilience {

struct Options {
  bool enabled = false;
  RetryPolicy retry;
  HedgePolicy hedge;
  BreakerConfig breaker;
};

/// Cumulative counters, mirrored into `resilience.*` obs metrics by the
/// integration points (http::ConnectionPool, dns::Resolver). Kept as plain
/// fields too so bench/chaos code can read them without a MetricsRegistry.
struct EngineStats {
  std::uint64_t retries = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;        // hedge copy delivered first
  std::uint64_t hedges_lost = 0;       // primary delivered first, hedge cancelled
  std::uint64_t hedges_cancelled = 0;  // hedge aborted before either finished
  std::uint64_t resumed_requests = 0;
  std::uint64_t resumed_bytes = 0;     // bytes NOT re-downloaded thanks to Range
  std::uint64_t deadline_failures = 0;
  std::uint64_t breaker_demotions = 0; // dials moved H3 -> H2 by an open breaker
};

class Engine {
 public:
  explicit Engine(Options options)
      : options_(options), breakers_(options.breaker), hedge_trigger_(options.hedge) {}

  [[nodiscard]] bool enabled() const { return options_.enabled; }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] const RetryPolicy& retry() const { return options_.retry; }

  [[nodiscard]] BreakerRegistry& breakers() { return breakers_; }
  [[nodiscard]] HedgeTrigger& hedge_trigger() { return hedge_trigger_; }

  EngineStats stats;

 private:
  Options options_;
  BreakerRegistry breakers_;
  HedgeTrigger hedge_trigger_;
};

}  // namespace h3cdn::resilience
