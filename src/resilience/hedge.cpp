#include "resilience/hedge.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace h3cdn::resilience {

void LatencyTracker::observe(double ms) {
  if (capacity_ == 0) return;
  if (values_.size() < capacity_) {
    values_.push_back(ms);
    return;
  }
  values_[next_] = ms;
  next_ = (next_ + 1) % capacity_;
}

double LatencyTracker::quantile(double q) const {
  H3CDN_EXPECTS(!values_.empty());
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

void HedgeTrigger::observe(Duration first_byte_latency) {
  tracker_.observe(to_ms(first_byte_latency));
}

std::optional<Duration> HedgeTrigger::delay() const {
  if (!policy_.enabled) return std::nullopt;
  if (tracker_.size() < policy_.min_observations || tracker_.size() == 0) return std::nullopt;
  const Duration p = from_ms(tracker_.quantile(policy_.quantile));
  return std::clamp(p, policy_.min_delay, policy_.max_delay);
}

}  // namespace h3cdn::resilience
