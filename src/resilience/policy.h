// Per-request retry policy: attempt caps, exponential backoff with
// deterministic jitter, and deadline budgets.
//
// The policy is pure data + a pure function of (attempt, rng): all jitter is
// drawn from the shard's deterministic Rng, so two runs with the same seed
// produce byte-identical retry schedules regardless of --jobs (the same
// property the rest of the simulator guarantees; see docs/DETERMINISM notes
// in DESIGN.md).
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"
#include "util/types.h"

namespace h3cdn::resilience {

/// Retry/backoff/budget knobs for a single request lifecycle.
///
/// `max_attempts` counts every transmission of the request (the initial send
/// is attempt 1), matching `http::EntryTimings::attempts`. Deadlines are
/// checked when a retry is about to be scheduled: a request whose next
/// attempt would start after its deadline fails typed (DeadlineExceeded)
/// instead of retrying forever.
struct RetryPolicy {
  int max_attempts = 4;                    // initial attempt + up to 3 retries
  Duration backoff_base = msec(50);        // delay before the first retry
  double backoff_multiplier = 2.0;         // growth per additional attempt
  Duration backoff_cap = sec(2);           // upper bound on the deterministic part
  double jitter = 0.5;                     // uniform extra in [0, jitter * delay)
  Duration request_deadline = sec(15);     // per-request budget, 0 = unlimited
  Duration page_budget = sec(60);          // per-page budget, 0 = unlimited
  bool resume_enabled = true;              // HTTP Range resumption of partial bodies

  /// Backoff before retry number `attempt` (attempt >= 1 is the first retry):
  /// min(base * multiplier^(attempt-1), cap) plus deterministic jitter.
  [[nodiscard]] Duration backoff_for(int attempt, util::Rng& rng) const {
    if (attempt < 1) attempt = 1;
    double delay = static_cast<double>(backoff_base.count());
    for (int i = 1; i < attempt; ++i) delay *= backoff_multiplier;
    delay = std::min(delay, static_cast<double>(backoff_cap.count()));
    if (jitter > 0) delay += rng.uniform(0.0, jitter * delay);
    return Duration{static_cast<std::int64_t>(delay)};
  }
};

}  // namespace h3cdn::resilience
