// Per-edge circuit breakers: rolling failure window -> open -> half-open
// re-probe.
//
// This generalizes the pool-level H3-brokenness marking from PR 1 (a single
// protocol-wide boolean with a TTL) into a keyed state machine over
// (domain, protocol): a burst of typed connection failures opens the breaker,
// an open breaker sheds dials for `open_duration`, then a bounded number of
// half-open probes decide between re-closing and re-opening. The breaker is
// ADVISORY for protocol selection — the pool uses an open H3 breaker to
// demote new dials to H2, never to refuse a request outright with no
// alternative — so enabling it cannot reduce liveness. See docs/RESILIENCE.md.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <string>

#include "util/types.h"

namespace h3cdn::resilience {

enum class BreakerState { Closed, Open, HalfOpen };

[[nodiscard]] const char* to_string(BreakerState s);

struct BreakerConfig {
  bool enabled = true;
  Duration window = sec(10);      // rolling sample window
  std::size_t min_samples = 6;    // below this, never open (cold start)
  double failure_threshold = 0.5; // open when failure fraction reaches this
  Duration open_duration = sec(5);
  std::size_t half_open_probes = 1;  // trial dials allowed while half-open
};

/// One breaker instance. Deterministic: state depends only on the sequence of
/// allow()/record() calls and their simulated timestamps.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config) : config_(config) {}

  /// Whether a new dial should proceed now. Open -> HalfOpen transition
  /// happens here once `open_duration` has elapsed; while half-open, at most
  /// `half_open_probes` calls return true until an outcome is recorded.
  [[nodiscard]] bool allow(TimePoint now);

  /// Records the outcome of a dial that was allowed.
  void record(TimePoint now, bool success);

  [[nodiscard]] BreakerState state() const { return state_; }

  /// Cumulative state transitions (for metrics and invariant checks).
  struct Transitions {
    std::uint64_t opened = 0;
    std::uint64_t half_opened = 0;
    std::uint64_t closed = 0;
  };
  [[nodiscard]] const Transitions& transitions() const { return transitions_; }

 private:
  void prune(TimePoint now);
  void open(TimePoint now);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::Closed;
  TimePoint opened_at_{};
  std::size_t probes_in_flight_ = 0;
  struct Sample {
    TimePoint at;
    bool success;
  };
  std::deque<Sample> samples_;  // within the rolling window, oldest first
  std::size_t failures_in_window_ = 0;
  Transitions transitions_;
};

/// Breakers keyed by (domain, protocol label). Lives in the resilience
/// engine, i.e. one registry per Browser — breaker state persists across the
/// pages of a visit, like the pool's H3-broken marks did.
class BreakerRegistry {
 public:
  explicit BreakerRegistry(BreakerConfig config) : config_(config) {}

  [[nodiscard]] CircuitBreaker& get(const std::string& domain, const char* proto);

  /// Sum of transitions across all breakers.
  [[nodiscard]] CircuitBreaker::Transitions total_transitions() const;

 private:
  BreakerConfig config_;
  std::map<std::string, CircuitBreaker> breakers_;  // ordered: deterministic iteration
};

}  // namespace h3cdn::resilience
