#include "load/fleet.h"

#include "browser/waterfall.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "util/check.h"

namespace h3cdn::load {

struct Fleet::Client {
  browser::Environment env;
  tls::SessionTicketStore tickets;
  browser::Browser browser;
  util::Rng think_rng;  // closed-loop think times

  Client(sim::Simulator& sim, const web::DomainUniverse& universe,
         browser::VantageConfig vantage, browser::ServerDirectory* servers,
         browser::BrowserConfig bconfig, util::Rng rng)
      : env(sim, universe, std::move(vantage), rng.fork("env"), servers),
        browser(sim, env, &tickets, std::move(bconfig), rng.fork("browser")),
        think_rng(rng.fork("think")) {}
};

Fleet::Fleet(sim::Simulator& sim, const web::Workload& workload, std::size_t site_count,
             ServerFarm& farm, FleetConfig config, util::Rng rng)
    : sim_(sim), workload_(workload),
      site_count_(std::min(site_count, workload.sites.size())), farm_(farm),
      config_(std::move(config)), rng_(rng) {
  H3CDN_EXPECTS(site_count_ > 0);
  config_.browser.h3_enabled = config_.h3;
}

Fleet::~Fleet() = default;

std::size_t Fleet::checkout_client() {
  if (!free_clients_.empty()) {
    const std::size_t index = free_clients_.back();
    free_clients_.pop_back();
    return index;
  }
  const std::size_t index = clients_.size();
  clients_.push_back(std::make_unique<Client>(sim_, workload_.universe, config_.vantage,
                                              &farm_, config_.browser,
                                              rng_.fork("client").fork(index)));
  return index;
}

FleetOutcome Fleet::run() {
  // The paper's warm-up visit, fleet-style: prime every edge cache once so
  // measured visits hit warm edges (modulo natural churn) like single-probe
  // runs do. Canonical page/resource order keeps the farm rng deterministic.
  for (std::size_t i = 0; i < site_count_; ++i) {
    for (const auto& r : workload_.sites[i].page.resources) {
      if (!r.is_cdn) continue;
      if (cdn::EdgeServer* edge = farm_.edge(r.domain)) edge->warm(r.domain + r.path);
    }
  }

  if (config_.arrival.kind == ArrivalKind::ClosedLoop) {
    future_ = config_.arrival.users;
    for (std::size_t u = 0; u < config_.arrival.users; ++u) {
      const std::size_t index = checkout_client();
      H3CDN_ASSERT(index == u);  // closed loop: client u IS user u, never recycled
      const double think_ms = to_ms(config_.arrival.think_mean);
      const TimePoint first{from_ms(clients_[u]->think_rng.exponential(think_ms))};
      if (first < TimePoint{config_.arrival.window}) {
        sim_.schedule_at(first, [this, u] { user_visit(u); });
      } else {
        --future_;
      }
    }
  } else {
    util::Rng arrival_rng = rng_.fork("arrivals");
    auto arrivals = open_loop_arrivals(config_.arrival, arrival_rng);
    if (arrivals.size() > config_.max_visits) {
      outcome_.arrivals_capped = arrivals.size() - config_.max_visits;
      obs::count("load.arrivals_capped", outcome_.arrivals_capped);
      obs::tl_count("load.arrivals_capped", sim_.now(), outcome_.arrivals_capped);
      arrivals.resize(config_.max_visits);
    }
    future_ = arrivals.size();
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      sim_.schedule_at(arrivals[i], [this] { start_visit(visit_counter_); });
    }
  }

  sample_tick();
  sim_.run();
  outcome_.clients_used = clients_.size();
  return std::move(outcome_);
}

void Fleet::start_visit(std::size_t visit_seq) {
  --future_;
  ++active_;
  ++visit_counter_;
  ++outcome_.arrivals;
  obs::count("load.arrivals");
  obs::tl_count("load.arrivals", sim_.now());
  const web::WebPage& page = workload_.sites[visit_seq % site_count_].page;
  const std::size_t ci = checkout_client();
  const TimePoint arrived = sim_.now();
  clients_[ci]->browser.visit(
      page, [this, ci, root_id = page.html.id, arrived](browser::PageLoadResult result) {
        finish_visit(ci, root_id, arrived, result);
        free_clients_.push_back(ci);
      });
}

void Fleet::user_visit(std::size_t user) {
  ++active_;
  ++outcome_.arrivals;
  obs::count("load.arrivals");
  obs::tl_count("load.arrivals", sim_.now());
  const web::WebPage& page = workload_.sites[visit_counter_++ % site_count_].page;
  const TimePoint arrived = sim_.now();
  clients_[user]->browser.visit(
      page, [this, user, root_id = page.html.id, arrived](browser::PageLoadResult result) {
        finish_visit(user, root_id, arrived, result);
        const double think_ms =
            clients_[user]->think_rng.exponential(to_ms(config_.arrival.think_mean));
        const TimePoint next = sim_.now() + from_ms(think_ms);
        if (next < TimePoint{config_.arrival.window} &&
            outcome_.arrivals < config_.max_visits) {
          sim_.schedule_at(next, [this, user] { user_visit(user); });
        } else {
          --future_;  // user retires: window over (or runaway cap)
        }
      });
}

void Fleet::finish_visit(std::size_t client_index, std::uint32_t root_id, TimePoint arrived,
                         const browser::PageLoadResult& result) {
  (void)client_index;
  --active_;
  VisitRecord rec;
  rec.arrived = arrived;
  rec.plt = result.har.page_load_time;
  const browser::HarEntry* root = nullptr;
  for (const auto& e : result.har.entries) {
    if (e.resource_id == root_id) {
      root = &e;
      break;
    }
  }
  if (root == nullptr || root->timings.failed) {
    rec.root_failed = true;
  } else {
    rec.ttfb = root->timings.blocked + root->timings.dns + root->timings.connect +
               root->timings.send + root->timings.wait;
  }
  rec.connections_created = result.pool_stats.connections_created;
  rec.connections_refused = result.pool_stats.connections_refused;
  rec.refusal_retries = result.pool_stats.refusal_retries;
  rec.requests_failed = result.pool_stats.requests_failed;

  const auto cp = obs::analyze_critical_path(browser::make_waterfall(result.har));
  outcome_.phase_sum += cp.phases;

  const TimePoint finished = sim_.now();
  obs::count("load.visits");
  obs::tl_count("load.visits", finished);
  if (rec.root_failed) {
    obs::count("load.visits_failed");
    obs::tl_count("load.visits_failed", finished);
  } else {
    obs::observe("load.plt_ms", to_ms(rec.plt));
    obs::observe("load.ttfb_ms", to_ms(rec.ttfb));
    // Timeline samples land at the visit's ARRIVAL window: the latency of a
    // page is a property of when its load started, which is what lines a PLT
    // spike up against the fault window that caused it.
    obs::tl_observe("load.plt_ms", arrived, to_ms(rec.plt));
    obs::tl_observe("load.ttfb_ms", arrived, to_ms(rec.ttfb));
  }
  outcome_.visits.push_back(rec);
}

void Fleet::sample_tick() {
  const TimePoint now = sim_.now();
  const ServerFarm::Sample s = farm_.sample(now);
  outcome_.queue_series.push_back(
      {now, s.accept_backlog, s.concurrent_connections, s.busy_cores});
  obs::observe("load.queue_depth", static_cast<double>(s.accept_backlog));
  obs::observe("load.concurrent_connections",
               static_cast<double>(s.concurrent_connections));
  obs::observe("load.busy_cores", static_cast<double>(s.busy_cores));
  obs::tl_gauge_set("load.queue_depth", now, static_cast<double>(s.accept_backlog));
  obs::tl_gauge_set("load.concurrent_connections", now,
                    static_cast<double>(s.concurrent_connections));
  obs::tl_gauge_set("load.busy_cores", now, static_cast<double>(s.busy_cores));
  if (active_ + future_ > 0) {
    sim_.schedule_in(config_.queue_sample_interval, [this] { sample_tick(); });
  }
}

}  // namespace h3cdn::load
