#include "load/fleet.h"

#include "browser/waterfall.h"
#include "net/link_profile.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "util/check.h"

namespace h3cdn::load {

Fleet::Fleet(sim::Simulator& sim, const web::Workload& workload, std::size_t site_count,
             ServerFarm& farm, FleetConfig config, util::Rng rng)
    : sim_(sim), workload_(workload),
      site_count_(std::min(site_count, workload.sites.size())), farm_(farm),
      config_(std::move(config)), rng_(rng), mix_rng_(rng_.fork("link_mix")) {
  H3CDN_EXPECTS(site_count_ > 0);
  config_.browser.h3_enabled = config_.h3;
  if (config_.link_mix.empty()) {
    profile_vantages_.push_back(config_.vantage);
    profile_weights_.push_back(1.0);
  } else {
    for (const LinkMixEntry& entry : config_.link_mix) {
      const auto profile = net::LinkProfile::from_name(entry.profile);
      H3CDN_EXPECTS(profile.has_value());
      H3CDN_EXPECTS(entry.weight > 0.0);
      browser::VantageConfig vantage = config_.vantage;
      browser::apply_link_profile(vantage, *profile);
      profile_vantages_.push_back(std::move(vantage));
      profile_weights_.push_back(entry.weight);
    }
  }
  for (const double w : profile_weights_) total_weight_ += w;
  free_clients_.resize(profile_vantages_.size());
}

Fleet::~Fleet() = default;

std::uint32_t Fleet::profile_of(std::size_t member) const {
  if (profile_vantages_.size() == 1) return 0;
  // Keyed by the member's population index, so a member keeps its link class
  // whether the run is full or sampled.
  double u = mix_rng_.fork(static_cast<std::uint64_t>(member)).uniform() * total_weight_;
  for (std::size_t i = 0; i + 1 < profile_weights_.size(); ++i) {
    u -= profile_weights_[i];
    if (u < 0.0) return static_cast<std::uint32_t>(i);
  }
  return static_cast<std::uint32_t>(profile_weights_.size() - 1);
}

std::uint32_t Fleet::stratum_of(std::size_t member, TimePoint at) const {
  const std::uint32_t profile = profile_of(member);
  std::uint32_t phases = 1;
  std::uint32_t phase = 0;
  if (config_.arrival.kind != ArrivalKind::ClosedLoop &&
      config_.sampling.arrival_phases > 1 && config_.arrival.window.count() > 0) {
    phases = static_cast<std::uint32_t>(config_.sampling.arrival_phases);
    const auto raw = static_cast<std::uint64_t>(at.count()) * phases /
                     static_cast<std::uint64_t>(config_.arrival.window.count());
    phase = static_cast<std::uint32_t>(std::min<std::uint64_t>(raw, phases - 1));
  }
  return profile * phases + phase;
}

std::size_t Fleet::checkout_client(std::uint32_t profile) {
  std::vector<std::uint32_t>& free_list = free_clients_[profile];
  if (!free_list.empty()) {
    const std::size_t index = free_list.back();
    free_list.pop_back();
    return index;
  }
  const std::size_t index = clients_.size();
  util::Rng client_rng = rng_.fork("client").fork(static_cast<std::uint64_t>(index));
  clients_.env.push_back(std::make_unique<browser::Environment>(
      sim_, workload_.universe, profile_vantages_[profile], client_rng.fork("env"),
      &farm_));
  if (config_.chain != nullptr) clients_.env.back()->set_topology(config_.chain);
  clients_.tickets.push_back(std::make_unique<tls::SessionTicketStore>());
  clients_.browser.push_back(std::make_unique<browser::Browser>(
      sim_, *clients_.env.back(), clients_.tickets.back().get(), config_.browser,
      client_rng.fork("browser")));
  clients_.think_rng.push_back(client_rng.fork("think"));
  clients_.profile.push_back(profile);
  clients_.busy.push_back(0);
  clients_.visits.push_back(0);
  return index;
}

void Fleet::release_client(std::size_t index) {
  clients_.busy[index] = 0;
  ++clients_.visits[index];
  free_clients_[clients_.profile[index]].push_back(static_cast<std::uint32_t>(index));
}

FleetOutcome Fleet::run() {
  // The paper's warm-up visit, fleet-style: prime every edge cache once so
  // measured visits hit warm edges (modulo natural churn) like single-probe
  // runs do. Canonical page/resource order keeps the farm rng deterministic.
  for (std::size_t i = 0; i < site_count_; ++i) {
    for (const auto& r : workload_.sites[i].page.resources) {
      if (!r.is_cdn) continue;
      if (cdn::EdgeServer* edge = farm_.edge(r.domain)) edge->warm(r.domain + r.path);
    }
  }

  if (config_.arrival.kind == ArrivalKind::ClosedLoop) {
    const std::size_t users = config_.arrival.users;
    outcome_.population = users;
    SamplePlan plan;
    if (config_.sampling.target > 0) {
      std::vector<std::uint32_t> strata(users);
      for (std::size_t u = 0; u < users; ++u) strata[u] = stratum_of(u, TimePoint{0});
      util::Rng coreset_rng = rng_.fork("coreset");
      plan = plan_stratified_sample(strata, config_.sampling.target, coreset_rng);
    }
    auto launch_user = [this](std::size_t user, double weight) {
      const std::size_t ci = checkout_client(profile_of(user));
      const double think_ms = to_ms(config_.arrival.think_mean);
      const TimePoint first{from_ms(clients_.think_rng[ci].exponential(think_ms))};
      if (first < TimePoint{config_.arrival.window}) {
        sim_.schedule_at(first,
                         [this, ci, user, weight] { user_visit(ci, user, weight); });
      } else {
        --future_;
      }
    };
    if (plan.active) {
      future_ = plan.chosen.size();
      for (std::size_t k = 0; k < plan.chosen.size(); ++k) {
        launch_user(plan.chosen[k], plan.weights[k]);
      }
    } else {
      future_ = users;
      for (std::size_t u = 0; u < users; ++u) launch_user(u, 1.0);
    }
    outcome_.plan = std::move(plan);
  } else {
    util::Rng arrival_rng = rng_.fork("arrivals");
    auto arrivals = open_loop_arrivals(config_.arrival, arrival_rng);
    if (arrivals.size() > config_.max_visits) {
      outcome_.arrivals_capped = arrivals.size() - config_.max_visits;
      obs::count("load.arrivals_capped", outcome_.arrivals_capped);
      obs::tl_count("load.arrivals_capped", sim_.now(), outcome_.arrivals_capped);
      arrivals.resize(config_.max_visits);
    }
    outcome_.population = arrivals.size();
    SamplePlan plan;
    if (config_.sampling.target > 0) {
      std::vector<std::uint32_t> strata(arrivals.size());
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        strata[i] = stratum_of(i, arrivals[i]);
      }
      util::Rng coreset_rng = rng_.fork("coreset");
      plan = plan_stratified_sample(strata, config_.sampling.target, coreset_rng);
    }
    if (plan.active) {
      future_ = plan.chosen.size();
      for (std::size_t k = 0; k < plan.chosen.size(); ++k) {
        const std::size_t member = plan.chosen[k];
        const double weight = plan.weights[k];
        sim_.schedule_at(arrivals[member],
                         [this, member, weight] { start_visit(member, weight); });
      }
    } else {
      // Page rotation, link class, and stratum are all keyed by the member
      // index (== temporal arrival order), so this path is byte-identical to
      // the pre-sampling fleet.
      future_ = arrivals.size();
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        sim_.schedule_at(arrivals[i], [this, i] { start_visit(i, 1.0); });
      }
    }
    outcome_.plan = std::move(plan);
  }

  sample_tick();
  sim_.run();
  outcome_.clients_used = clients_.size();
  return std::move(outcome_);
}

void Fleet::start_visit(std::size_t member, double weight) {
  --future_;
  ++active_;
  ++outcome_.arrivals;
  obs::count("load.arrivals");
  obs::tl_count("load.arrivals", sim_.now());
  const web::WebPage& page = workload_.sites[member % site_count_].page;
  const std::uint32_t stratum = stratum_of(member, sim_.now());
  const std::size_t ci = checkout_client(profile_of(member));
  clients_.busy[ci] = 1;
  const TimePoint arrived = sim_.now();
  clients_.browser[ci]->visit(
      page, [this, ci, root_id = page.html.id, arrived, weight,
             stratum](browser::PageLoadResult result) {
        finish_visit(ci, root_id, arrived, weight, stratum, result);
        release_client(ci);
      });
}

void Fleet::user_visit(std::size_t client_index, std::size_t user, double weight) {
  ++active_;
  ++outcome_.arrivals;
  obs::count("load.arrivals");
  obs::tl_count("load.arrivals", sim_.now());
  const web::WebPage& page = workload_.sites[visit_counter_++ % site_count_].page;
  const TimePoint arrived = sim_.now();
  const std::uint32_t stratum = stratum_of(user, TimePoint{0});
  clients_.busy[client_index] = 1;
  clients_.browser[client_index]->visit(
      page, [this, client_index, user, weight, root_id = page.html.id, arrived,
             stratum](browser::PageLoadResult result) {
        finish_visit(client_index, root_id, arrived, weight, stratum, result);
        clients_.busy[client_index] = 0;
        ++clients_.visits[client_index];
        const double think_ms = clients_.think_rng[client_index].exponential(
            to_ms(config_.arrival.think_mean));
        const TimePoint next = sim_.now() + from_ms(think_ms);
        if (next < TimePoint{config_.arrival.window} &&
            outcome_.arrivals < config_.max_visits) {
          sim_.schedule_at(next, [this, client_index, user, weight] {
            user_visit(client_index, user, weight);
          });
        } else {
          --future_;  // user retires: window over (or runaway cap)
        }
      });
}

void Fleet::finish_visit(std::size_t client_index, std::uint32_t root_id,
                         TimePoint arrived, double weight, std::uint32_t stratum,
                         const browser::PageLoadResult& result) {
  (void)client_index;
  --active_;
  VisitRecord rec;
  rec.arrived = arrived;
  rec.plt = result.har.page_load_time;
  rec.weight = weight;
  rec.stratum = stratum;
  const browser::HarEntry* root = nullptr;
  for (const auto& e : result.har.entries) {
    if (e.resource_id == root_id) {
      root = &e;
      break;
    }
  }
  if (root == nullptr || root->timings.failed) {
    rec.root_failed = true;
  } else {
    rec.ttfb = root->timings.blocked + root->timings.dns + root->timings.connect +
               root->timings.send + root->timings.wait;
  }
  rec.connections_created = result.pool_stats.connections_created;
  rec.connections_refused = result.pool_stats.connections_refused;
  rec.refusal_retries = result.pool_stats.refusal_retries;
  rec.requests_failed = result.pool_stats.requests_failed;

  // Weight-scaled phase accumulation: dividing phase_sum by weight_sum yields
  // the extrapolated per-visit mean (exactly the plain mean in full runs).
  const obs::CriticalPathResult cp =
      obs::analyze_critical_path(browser::make_waterfall(result.har));
  rec.fcp_ms = cp.qoe.fcp_ms;
  obs::PhaseVector phases = cp.phases;
  for (double& v : phases.ms) v *= weight;
  outcome_.phase_sum += phases;
  outcome_.weight_sum += weight;

  const TimePoint finished = sim_.now();
  obs::count("load.visits");
  obs::tl_count("load.visits", finished);
  if (rec.root_failed) {
    obs::count("load.visits_failed");
    obs::tl_count("load.visits_failed", finished);
  } else {
    obs::observe("load.plt_ms", to_ms(rec.plt));
    obs::observe("load.ttfb_ms", to_ms(rec.ttfb));
    obs::observe("load.qoe_fcp_ms", rec.fcp_ms);
    // Timeline samples land at the visit's ARRIVAL window: the latency of a
    // page is a property of when its load started, which is what lines a PLT
    // spike up against the fault window that caused it.
    obs::tl_observe("load.plt_ms", arrived, to_ms(rec.plt));
    obs::tl_observe("load.ttfb_ms", arrived, to_ms(rec.ttfb));
  }
  outcome_.visits.push_back(rec);
}

void Fleet::sample_tick() {
  const TimePoint now = sim_.now();
  const ServerFarm::Sample s = farm_.sample(now);
  outcome_.queue_series.push_back(
      {now, s.accept_backlog, s.concurrent_connections, s.busy_cores});
  obs::observe("load.queue_depth", static_cast<double>(s.accept_backlog));
  obs::observe("load.concurrent_connections",
               static_cast<double>(s.concurrent_connections));
  obs::observe("load.busy_cores", static_cast<double>(s.busy_cores));
  obs::tl_gauge_set("load.queue_depth", now, static_cast<double>(s.accept_backlog));
  obs::tl_gauge_set("load.concurrent_connections", now,
                    static_cast<double>(s.concurrent_connections));
  obs::tl_gauge_set("load.busy_cores", now, static_cast<double>(s.busy_cores));
  if (active_ + future_ > 0) {
    sim_.schedule_in(config_.queue_sample_interval, [this] { sample_tick(); });
  }
}

}  // namespace h3cdn::load
