#include "load/chaos.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <ostream>
#include <sstream>

#include "load/farm.h"
#include "load/fleet.h"
#include "net/link_profile.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/simulator.h"
#include "topology/chain.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace h3cdn::core {

std::vector<ChaosScenario> default_chaos_scenarios() {
  std::vector<ChaosScenario> s;

  {
    ChaosScenario sc;
    sc.name = "baseline";
    sc.description = "fault-free reference cell (recovery-time baseline)";
    s.push_back(std::move(sc));
  }
  {
    ChaosScenario sc;
    sc.name = "edge-outage-midpage";
    sc.description = "hard access blackout while pages are mid-flight";
    sc.access_fault.outages.push_back(
        {TimePoint{sec(1)}, msec(700), net::OutageKind::Hard});
    sc.expect_faults = true;
    s.push_back(std::move(sc));
  }
  {
    ChaosScenario sc;
    sc.name = "udp-blackhole-handshake";
    sc.description = "UDP-only blackhole over the QUIC handshake window";
    sc.access_fault.outages.push_back(
        {TimePoint{0}, sec(3), net::OutageKind::UdpBlackhole});
    // Die at ~3.75 s (inside the blackhole's shadow) instead of ~15.75 s, so
    // the H3->H2 fallback fires while the page still has deadline budget.
    sc.handshake_retry_cap = 3;
    sc.expect_faults = true;
    s.push_back(std::move(sc));
  }
  {
    ChaosScenario sc;
    sc.name = "refusal-storm";
    sc.description = "undersized edge: most dials refused at admission";
    sc.rate_per_sec = 12.0;
    sc.capacity_storm = true;
    sc.expect_faults = true;
    sc.expect_no_h3_broken = true;  // refusal is capacity, not protocol, failure
    s.push_back(std::move(sc));
  }
  {
    ChaosScenario sc;
    sc.name = "midtransfer-kill";
    sc.description = "every connection dies after 20 KB of response body";
    sc.kill_response_at_bytes = 20'000;
    sc.expect_faults = true;
    sc.expect_resumption = true;  // Range resume keeps the delivered prefix
    s.push_back(std::move(sc));
  }
  {
    ChaosScenario sc;
    sc.name = "cellular-burst";
    sc.description = "lossy cellular last mile (Gilbert-Elliott bursts + RTT spikes)";
    sc.link_profile = "cellular";
    s.push_back(std::move(sc));
  }
  {
    ChaosScenario sc;
    sc.name = "midtier-outage";
    sc.description = "mid-tier relay killed mid-page; clients fall back to the direct path";
    sc.path_plan = "h3-h3";
    sc.kill_midtier_at = msec(1200);
    sc.expect_faults = true;
    sc.expect_midtier_fallback = true;
    s.push_back(std::move(sc));
  }
  {
    ChaosScenario sc;
    sc.name = "dns-failover";
    sc.description = "record-0 front end hard down; health scoring reroutes";
    sc.addresses_per_record = 2;
    sc.primary_path_fault.outages.push_back(
        {TimePoint{0}, sec(30), net::OutageKind::Hard});
    sc.handshake_retry_cap = 3;  // fail fast enough to reroute inside budget
    sc.expect_faults = true;
    sc.expect_failover = true;
    s.push_back(std::move(sc));
  }
  return s;
}

obs::FaultWindowSpec scripted_fault_window(const ChaosScenario& scenario) {
  obs::FaultWindowSpec spec;
  spec.scenario = scenario.name;

  bool any_outage = false;
  double start_ms = 0.0;
  double end_ms = 0.0;
  const auto fold_outages = [&](const net::FaultProfile& profile) {
    for (const auto& o : profile.outages) {
      const double o_start = to_ms(o.start - TimePoint{0});
      const double o_end = o_start + to_ms(o.duration);
      if (!any_outage) {
        start_ms = o_start;
        end_ms = o_end;
        any_outage = true;
      } else {
        start_ms = std::min(start_ms, o_start);
        end_ms = std::max(end_ms, o_end);
      }
    }
  };
  fold_outages(scenario.access_fault);
  fold_outages(scenario.primary_path_fault);

  if (any_outage) {
    spec.faulted = true;
    spec.start_ms = start_ms;
    spec.end_ms = end_ms;
  } else if (scenario.kill_response_at_bytes > 0 || scenario.capacity_storm) {
    // Whole-run condition: the fault is armed from the first arrival on.
    spec.faulted = true;
    spec.start_ms = 0.0;
    spec.end_ms = to_ms(scenario.window);
  } else if (scenario.kill_midtier_at.count() > 0) {
    // The kill is instantaneous but the chain stays dead (refusing traffic
    // until clients fall back), so the condition spans kill -> window end.
    spec.faulted = true;
    spec.start_ms = to_ms(scenario.kill_midtier_at);
    spec.end_ms = std::max(spec.start_ms, to_ms(scenario.window));
  }
  return spec;
}

bool ChaosResult::all_passed() const {
  for (const ChaosCellRow& row : rows) {
    if (!row.violations.empty()) return false;
  }
  return true;
}

namespace {

struct CellShard {
  ChaosCellRow row;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::TimelineRecorder> timeline;
  obs::FaultAnnotation annotation;
};

void merge_fault_profile(net::FaultProfile& into, const net::FaultProfile& from) {
  if (from.gilbert_elliott.enabled) into.gilbert_elliott = from.gilbert_elliott;
  for (const auto& o : from.outages) into.outages.push_back(o);
  for (const auto& r : from.rtt_spikes) into.rtt_spikes.push_back(r);
}

ChaosCellRow run_chaos_cell(const web::Workload& workload, const ChaosConfig& config,
                            const ChaosScenario& sc, std::size_t index,
                            obs::MetricsRegistry* metrics, obs::TimelineRecorder* timeline,
                            obs::FaultAnnotation* annotation) {
  obs::ScopedMetrics scoped(metrics);
  obs::ScopedTimeline scoped_timeline(timeline);
  sim::Simulator sim;
  util::Rng root(util::derive_seed({config.seed, 0xC4A05ULL, index}));

  cdn::EdgeCapacityConfig capacity;  // disabled unless the scenario storms
  if (sc.capacity_storm) {
    capacity.enabled = true;
    capacity.think_cores = 1;
    capacity.accept_queue_depth = 2;
    capacity.max_concurrent_connections = 6;
  }
  load::ServerFarm farm(workload.universe, capacity, root.fork("farm"));

  load::FleetConfig fc;
  fc.arrival.kind = load::ArrivalKind::Poisson;
  fc.arrival.rate_per_sec = sc.rate_per_sec;
  fc.arrival.window = sc.window;
  fc.h3 = sc.h3;
  fc.max_visits = config.max_visits_per_cell;
  fc.vantage = config.vantage;
  fc.vantage.edge_capacity = {};  // servers come from the shared farm
  if (!sc.link_profile.empty()) {
    const auto profile = net::LinkProfile::from_name(sc.link_profile);
    H3CDN_EXPECTS(profile.has_value());
    browser::apply_link_profile(fc.vantage, *profile);
  }
  merge_fault_profile(fc.vantage.fault_profile, sc.access_fault);
  if (sc.addresses_per_record > 1) {
    fc.vantage.dns.addresses_per_record = sc.addresses_per_record;
    merge_fault_profile(fc.vantage.primary_path_fault, sc.primary_path_fault);
  }
  fc.browser = config.browser;
  fc.browser.resilience = config.resilience;
  fc.browser.transport.kill_response_at_bytes = sc.kill_response_at_bytes;
  if (sc.handshake_retry_cap > 0) {
    fc.browser.transport.max_handshake_retries = sc.handshake_retry_cap;
  }

  // Multi-hop relay chain (docs/TOPOLOGY.md), shared by every fleet client.
  std::unique_ptr<topology::Chain> chain;
  if (!sc.path_plan.empty()) {
    auto plan = topology::PathPlan::parse(sc.path_plan);
    H3CDN_EXPECTS(plan.has_value() && plan->relay_count() >= 1);
    topology::ChainConfig cc;
    cc.plan = *plan;
    chain = std::make_unique<topology::Chain>(sim, workload.universe, cc, root.fork("chain"));
    fc.h3 = chain->client_h3();
    fc.chain = chain.get();
    // Warm the chain's terminal tier like Fleet::run warms the farm edges.
    for (std::size_t i = 0; i < config.sites && i < workload.sites.size(); ++i) {
      for (const auto& r : workload.sites[i].page.resources) {
        if (r.is_cdn && chain->handles(r.domain)) chain->warm(r.domain, r.domain + r.path);
      }
    }
    if (sc.kill_midtier_at.count() > 0) {
      topology::Chain* raw = chain.get();
      sim.schedule_in(sc.kill_midtier_at, [raw] { raw->kill_midtier(); });
    }
  }

  load::Fleet fleet(sim, workload, config.sites, farm, std::move(fc), root.fork("fleet"));
  load::FleetOutcome out = fleet.run();
  if (chain != nullptr) chain->close();

  ChaosCellRow row;
  row.scenario = sc.name;
  row.h3 = sc.h3;
  row.arrivals = out.arrivals;
  std::vector<double> plt_ms;
  std::vector<double> fcp_ms;
  double plt_sum_ms = 0.0;
  for (const load::VisitRecord& v : out.visits) {
    ++row.visits;
    plt_sum_ms += to_ms(v.plt);
    if (v.root_failed) {
      ++row.failed_visits;
      continue;
    }
    plt_ms.push_back(to_ms(v.plt));
    fcp_ms.push_back(v.fcp_ms);
  }
  std::sort(plt_ms.begin(), plt_ms.end());
  row.plt_p50_ms = util::quantile_sorted(plt_ms, 0.50);
  row.plt_p95_ms = util::quantile_sorted(plt_ms, 0.95);
  row.qoe_samples = fcp_ms.size();
  if (row.qoe_samples > 0) {
    std::sort(fcp_ms.begin(), fcp_ms.end());
    row.qoe_fcp_p95_ms = util::quantile_sorted(fcp_ms, 0.95);
  }

  auto cval = [&](const char* name) { return metrics->counter(name).value(); };
  row.entries_submitted = cval("http.entries_submitted");
  row.entries_completed = cval("http.entries_completed");
  row.entries_failed = cval("http.entries_failed");
  row.retries = cval("resilience.retries");
  row.hedges_launched = cval("resilience.hedges_launched");
  row.hedges_won = cval("resilience.hedges_won");
  row.hedges_lost = cval("resilience.hedges_lost");
  row.hedges_cancelled = cval("resilience.hedges_cancelled");
  row.resumed_requests = cval("resilience.resumed_requests");
  row.resumed_bytes = cval("resilience.resumed_bytes");
  row.breaker_opened = cval("resilience.breaker.opened");
  row.breaker_demotions = cval("resilience.breaker.demotions");
  row.failover_switches = cval("dns.failover.switches");
  row.connection_deaths = cval("http.pool.connection_deaths");
  row.connections_refused = cval("http.pool.connections_refused");
  row.h3_broken_marks = cval("http.pool.h3_fallbacks");
  if (chain != nullptr) {
    row.relayed_requests = chain->relayed_requests();
    row.midtier_holds_killed = chain->holds_killed();
    row.direct_fallbacks = chain->direct_resolutions();
  }
  row.phase_residual_ms = std::abs(out.phase_sum.sum() - plt_sum_ms);

  // Fault->recovery annotation: measured against the scripted fault window.
  const obs::FaultAnnotation a = obs::annotate_fault_recovery(*timeline, scripted_fault_window(sc));
  row.degraded_windows = a.degraded_windows;
  row.detection_ms = a.detection_ms;
  row.recovery_ms = a.recovery_ms;
  row.mttr_ms = a.mttr_ms;
  row.time_to_breaker_open_ms = a.time_to_breaker_open_ms;
  row.time_to_breaker_close_ms = a.time_to_breaker_close_ms;
  *annotation = a;

  // --- Invariants (ISSUE 6): checked per cell, reported per row. ----------
  auto violate = [&](const std::string& what) { row.violations.push_back(what); };

  // Typed termination: the fleet's sim drained with every arrival's page
  // reaching onLoad — a page stuck on an unterminated entry would leave
  // visits < arrivals.
  if (row.visits != row.arrivals) {
    violate("typed-termination: " + std::to_string(row.visits) + " visits for " +
            std::to_string(row.arrivals) + " arrivals");
  }
  // Entry conservation. Each logical fetch submits once and settles exactly
  // once (a completion or a typed failure); hedge copies add at most one
  // extra physical settle each. Below the lower bound, entries leaked; above
  // the upper bound, something settled twice.
  const std::uint64_t settled = row.entries_completed + row.entries_failed;
  if (settled < row.entries_submitted ||
      settled > row.entries_submitted + row.hedges_launched) {
    violate("conservation: submitted=" + std::to_string(row.entries_submitted) +
            " completed=" + std::to_string(row.entries_completed) +
            " failed=" + std::to_string(row.entries_failed) +
            " hedged=" + std::to_string(row.hedges_launched));
  }
  // Every launched hedge settles as exactly one of won/lost/cancelled.
  if (row.hedges_won + row.hedges_lost + row.hedges_cancelled != row.hedges_launched) {
    violate("hedge-accounting: " + std::to_string(row.hedges_won) + "+" +
            std::to_string(row.hedges_lost) + "+" + std::to_string(row.hedges_cancelled) +
            " != " + std::to_string(row.hedges_launched));
  }
  // The critical-path decomposition stays exact (±1 µs per visit) even for
  // pages assembled out of retried, hedged, and resumed entries.
  const double residual_budget = 1e-3 * static_cast<double>(row.visits) + 1e-6;
  if (row.phase_residual_ms > residual_budget) {
    violate("phase-sum: residual " + std::to_string(row.phase_residual_ms) + " ms");
  }
  // Scenario signatures: a scripted fault that never fired is a harness bug.
  if (sc.expect_faults && row.connection_deaths + row.connections_refused == 0) {
    violate("inert-scenario: no deaths or refusals observed");
  }
  // The timeline must localize every expected fault: at least one window
  // carries a degraded signal, and the derived MTTR stays finite (MTTR is
  // finite by construction; this guards the timeline wiring itself).
  if (sc.expect_faults && row.degraded_windows == 0) {
    violate("timeline-blind: expected faults left no degraded window");
  }
  if (!std::isfinite(row.mttr_ms) || row.mttr_ms < 0.0) {
    violate("mttr-not-finite: " + std::to_string(row.mttr_ms));
  }
  if (sc.expect_no_h3_broken && row.h3_broken_marks != 0) {
    violate("refusal-marked-h3-broken: " + std::to_string(row.h3_broken_marks) + " marks");
  }
  // Mid-tier outage signature: the chain actually routed traffic, the kill
  // severed at least one held response, and at least one later resolve fell
  // back to the direct path (the typed-termination check above already pins
  // that every severed page still completed).
  if (sc.expect_midtier_fallback) {
    if (row.relayed_requests == 0) {
      violate("inert-chain: no requests traversed the relays");
    }
    if (row.midtier_holds_killed == 0) {
      violate("no-midtier-kill: outage severed no held responses");
    }
    if (row.direct_fallbacks == 0) {
      violate("no-fallback: no resolve fell back to the direct path");
    }
  }
  if (config.resilience.enabled) {
    if (sc.expect_resumption && row.resumed_bytes == 0) {
      violate("no-resumption: kill scenario resumed 0 bytes");
    }
    if (sc.expect_failover && row.failover_switches == 0) {
      violate("no-failover: health scoring never switched records");
    }
  }
  return row;
}

}  // namespace

ChaosResult run_chaos(const ChaosConfig& config, core::RunObservability* observability) {
  H3CDN_EXPECTS(!config.scenarios.empty());
  H3CDN_EXPECTS(config.sites >= 1);
  H3CDN_EXPECTS(config.jobs >= 0);
  web::WorkloadConfig wc = config.workload;
  wc.site_count = std::max(wc.site_count, config.sites);
  const web::Workload workload = web::generate_workload(wc);

  const std::size_t n_cells = config.scenarios.size();
  std::size_t jobs = config.jobs == 0 ? util::ThreadPool::default_jobs()
                                      : static_cast<std::size_t>(config.jobs);
  jobs = std::min(jobs, n_cells);
  util::ThreadPool pool(jobs);

  // Cells inherit the sink's timeline bucket so the canonical merge below
  // never mixes widths.
  const Duration bucket = observability != nullptr
                              ? observability->timeline().bucket_width()
                              : config.timeline_bucket;

  // One shard per scenario; fold in canonical scenario order afterwards.
  std::vector<CellShard> shards(n_cells);
  pool.parallel_for(n_cells, [&](std::size_t cell) {
    CellShard& shard = shards[cell];
    shard.metrics = std::make_unique<obs::MetricsRegistry>();
    shard.timeline = std::make_unique<obs::TimelineRecorder>(bucket);
    shard.row = run_chaos_cell(workload, config, config.scenarios[cell], cell,
                               shard.metrics.get(), shard.timeline.get(), &shard.annotation);
  });

  ChaosResult result;
  result.sites = std::min(config.sites, workload.sites.size());
  result.resilience_enabled = config.resilience.enabled;
  for (CellShard& shard : shards) {
    if (observability != nullptr) {
      observability->metrics().merge_from(*shard.metrics);
      observability->timeline().merge_from(*shard.timeline);
      observability->add_fault_annotation(shard.annotation);
    }
    result.rows.push_back(std::move(shard.row));
  }
  return result;
}

void print_chaos_result(std::ostream& os, const ChaosResult& result) {
  os << "== chaos suite: " << result.rows.size() << " scenarios, " << result.sites
     << " sites, resilience " << (result.resilience_enabled ? "on" : "off") << " ==\n";
  util::AsciiTable t({"scenario", "proto", "visits", "failed", "plt p50", "plt p95",
                      "retries", "hedges", "won", "resumed KB", "demoted", "switches",
                      "deaths", "refused", "relayed", "mttr ms", "invariants"});
  for (const ChaosCellRow& r : result.rows) {
    t.add_row({r.scenario, r.h3 ? "h3" : "h2",
               std::to_string(r.visits) + "/" + std::to_string(r.arrivals),
               std::to_string(r.failed_visits), util::fmt(r.plt_p50_ms, 1),
               util::fmt(r.plt_p95_ms, 1), std::to_string(r.retries),
               std::to_string(r.hedges_launched), std::to_string(r.hedges_won),
               util::fmt(static_cast<double>(r.resumed_bytes) / 1024.0, 1),
               std::to_string(r.breaker_demotions), std::to_string(r.failover_switches),
               std::to_string(r.connection_deaths), std::to_string(r.connections_refused),
               std::to_string(r.relayed_requests),
               util::fmt(r.mttr_ms, 1), r.violations.empty() ? "pass" : "FAIL"});
  }
  os << t.to_string();
  for (const ChaosCellRow& r : result.rows) {
    for (const std::string& v : r.violations) {
      os << "  INVARIANT VIOLATION [" << r.scenario << "] " << v << '\n';
    }
  }
}

std::string chaos_result_to_csv(const ChaosResult& result) {
  std::ostringstream os;
  os << "scenario,proto,arrivals,visits,failed_visits,plt_p50_ms,plt_p95_ms,"
        "qoe_samples,qoe_fcp_p95_ms,"
        "entries_submitted,entries_completed,entries_failed,retries,hedges_launched,"
        "hedges_won,hedges_lost,hedges_cancelled,resumed_requests,resumed_bytes,"
        "breaker_opened,breaker_demotions,failover_switches,connection_deaths,"
        "connections_refused,h3_broken_marks,relayed_requests,midtier_holds_killed,"
        "direct_fallbacks,phase_residual_ms,degraded_windows,"
        "detection_ms,recovery_ms,mttr_ms,breaker_open_ms,breaker_close_ms,violations\n";
  for (const ChaosCellRow& r : result.rows) {
    os << r.scenario << ',' << (r.h3 ? "h3" : "h2") << ',' << r.arrivals << ','
       << r.visits << ',' << r.failed_visits << ',' << util::fmt(r.plt_p50_ms, 3) << ','
       << util::fmt(r.plt_p95_ms, 3) << ',' << r.qoe_samples << ','
       << util::fmt(r.qoe_samples > 0 ? r.qoe_fcp_p95_ms : 0.0, 3) << ','
       << r.entries_submitted << ','
       << r.entries_completed << ',' << r.entries_failed << ',' << r.retries << ','
       << r.hedges_launched << ',' << r.hedges_won << ',' << r.hedges_lost << ','
       << r.hedges_cancelled << ',' << r.resumed_requests << ',' << r.resumed_bytes << ','
       << r.breaker_opened << ',' << r.breaker_demotions << ',' << r.failover_switches
       << ',' << r.connection_deaths << ',' << r.connections_refused << ','
       << r.h3_broken_marks << ',' << r.relayed_requests << ',' << r.midtier_holds_killed
       << ',' << r.direct_fallbacks << ',' << util::fmt(r.phase_residual_ms, 6) << ','
       << r.degraded_windows << ',' << util::fmt(r.detection_ms, 3) << ','
       << util::fmt(r.recovery_ms, 3) << ',' << util::fmt(r.mttr_ms, 3) << ','
       << util::fmt(r.time_to_breaker_open_ms, 3) << ','
       << util::fmt(r.time_to_breaker_close_ms, 3) << ',';
    for (std::size_t i = 0; i < r.violations.size(); ++i) {
      if (i > 0) os << '|';
      os << r.violations[i];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace h3cdn::core
