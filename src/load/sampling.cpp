#include "load/sampling.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/check.h"

namespace h3cdn::load {

SamplePlan plan_stratified_sample(const std::vector<std::uint32_t>& stratum_of,
                                  std::size_t target, util::Rng& rng) {
  SamplePlan plan;
  plan.population = stratum_of.size();
  if (target == 0 || target >= plan.population) return plan;  // inactive: run everyone

  // Group member indices by stratum, in ascending stratum id (map order) so
  // the plan is independent of the members' arrival interleaving.
  std::map<std::uint32_t, std::vector<std::uint32_t>> members;
  for (std::size_t i = 0; i < stratum_of.size(); ++i) {
    members[stratum_of[i]].push_back(static_cast<std::uint32_t>(i));
  }

  // Proportional allocation with largest-remainder rounding, clamped to
  // [1, population_s] per stratum.
  struct Alloc {
    std::uint32_t id;
    std::size_t population;
    std::size_t take;
    double remainder;
  };
  std::vector<Alloc> allocs;
  allocs.reserve(members.size());
  std::size_t taken = 0;
  const double scale = static_cast<double>(target) / static_cast<double>(plan.population);
  for (const auto& [id, m] : members) {
    const double exact = scale * static_cast<double>(m.size());
    std::size_t take = std::min(m.size(), std::max<std::size_t>(
                                              1, static_cast<std::size_t>(exact)));
    allocs.push_back({id, m.size(), take, exact - std::floor(exact)});
    taken += take;
  }
  // Hand out any remaining budget by largest fractional remainder (ties by
  // ascending id, for determinism).
  while (taken < target) {
    Alloc* best = nullptr;
    for (Alloc& a : allocs) {
      if (a.take >= a.population) continue;
      if (best == nullptr || a.remainder > best->remainder) best = &a;
    }
    if (best == nullptr) break;  // every stratum exhausted
    ++best->take;
    best->remainder = -1.0;  // one top-up per stratum per pass
    ++taken;
  }

  plan.active = true;
  for (const Alloc& a : allocs) {
    const std::vector<std::uint32_t>& m = members[a.id];
    StratumSummary s;
    s.id = a.id;
    s.population = a.population;
    s.sampled = a.take;
    s.weight = static_cast<double>(a.population) / static_cast<double>(a.take);
    plan.strata.push_back(s);
    for (std::size_t k : rng.sample_indices(m.size(), a.take)) {
      plan.chosen.push_back(m[k]);
    }
  }
  // Ascending member order: the fleet schedules chosen arrivals in index
  // order, which is also their time order.
  std::vector<std::size_t> order(plan.chosen.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return plan.chosen[a] < plan.chosen[b]; });
  std::vector<std::uint32_t> chosen(plan.chosen.size());
  std::vector<double> weights(plan.chosen.size());
  // Per-member weight: its stratum's weight.
  std::map<std::uint32_t, double> weight_of;
  for (const StratumSummary& s : plan.strata) weight_of[s.id] = s.weight;
  for (std::size_t i = 0; i < order.size(); ++i) {
    chosen[i] = plan.chosen[order[i]];
    weights[i] = weight_of[stratum_of[chosen[i]]];
  }
  plan.chosen = std::move(chosen);
  plan.weights = std::move(weights);
  H3CDN_ENSURES(plan.chosen.size() <= plan.population);
  return plan;
}

namespace {

/// Smallest value whose cumulative weight reaches `rank` (type-1 weighted
/// quantile over the sorted sample).
double value_at_rank(const std::vector<std::pair<double, double>>& sorted, double rank) {
  double cum = 0.0;
  for (const auto& [value, weight] : sorted) {
    cum += weight;
    if (cum >= rank) return value;
  }
  return sorted.back().first;
}

}  // namespace

QuantileEstimate weighted_quantile(std::vector<std::pair<double, double>> value_weight,
                                   double q, double z) {
  QuantileEstimate est;
  if (value_weight.empty()) return est;
  std::sort(value_weight.begin(), value_weight.end());
  double total = 0.0;
  double total_sq = 0.0;
  for (const auto& [value, weight] : value_weight) {
    H3CDN_EXPECTS(weight > 0.0);
    total += weight;
    total_sq += weight * weight;
  }
  est.n_eff = total * total / total_sq;
  est.value = value_at_rank(value_weight, q * total);
  const double se = std::sqrt(q * (1.0 - q) / est.n_eff);
  const double q_lo = std::max(0.0, q - z * se);
  const double q_hi = std::min(1.0, q + z * se);
  est.lo = q_lo <= 0.0 ? value_weight.front().first : value_at_rank(value_weight, q_lo * total);
  est.hi = q_hi >= 1.0 ? value_weight.back().first : value_at_rank(value_weight, q_hi * total);
  return est;
}

}  // namespace h3cdn::load
