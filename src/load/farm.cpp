#include "load/farm.h"

#include "cdn/provider.h"

namespace h3cdn::load {

ServerFarm::ServerFarm(const web::DomainUniverse& universe, cdn::EdgeCapacityConfig capacity,
                       util::Rng rng)
    : universe_(universe), capacity_(capacity), rng_(rng) {}

cdn::EdgeServer* ServerFarm::edge(const std::string& domain) {
  const web::DomainInfo& dinfo = universe_.get(domain);
  if (!dinfo.is_cdn) return nullptr;
  auto it = edges_.find(domain);
  if (it == edges_.end()) {
    const cdn::ProviderTraits& traits = cdn::ProviderRegistry::get(dinfo.provider);
    it = edges_
             .emplace(domain, std::make_unique<cdn::EdgeServer>(
                                  traits, rng_.fork(domain).fork("server"), 65536, capacity_))
             .first;
  }
  return it->second.get();
}

cdn::OriginServer* ServerFarm::origin(const std::string& domain) {
  const web::DomainInfo& dinfo = universe_.get(domain);
  if (dinfo.is_cdn) return nullptr;
  auto it = origins_.find(domain);
  if (it == origins_.end()) {
    const cdn::ProviderTraits& traits = cdn::ProviderRegistry::get(dinfo.provider);
    it = origins_
             .emplace(domain, std::make_unique<cdn::OriginServer>(
                                  traits, rng_.fork(domain).fork("origin")))
             .first;
  }
  return it->second.get();
}

ServerFarm::Sample ServerFarm::sample(TimePoint now) {
  Sample s;
  for (auto& [name, edge] : edges_) {
    s.accept_backlog += edge->accept_backlog(now);
    s.concurrent_connections += edge->concurrent_connections();
    s.busy_cores += edge->busy_cores(now);
  }
  return s;
}

ServerFarm::Totals ServerFarm::totals() const {
  Totals t;
  for (const auto& [name, edge] : edges_) {
    t.handshakes_admitted += edge->handshakes_admitted();
    t.refused_queue_full += edge->refused_queue_full();
    t.refused_conn_limit += edge->refused_conn_limit();
  }
  return t;
}

}  // namespace h3cdn::load
