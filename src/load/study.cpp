#include "load/study.h"

#include <algorithm>
#include <memory>
#include <ostream>
#include <sstream>

#include "load/farm.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace h3cdn::load {

namespace {

struct CellShard {
  LoadCellRow row;
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

LoadCellRow run_cell(const web::Workload& workload, const LoadStudyConfig& config,
                     double rate, std::size_t rate_index, bool h3,
                     obs::MetricsRegistry* metrics) {
  obs::ScopedMetrics scoped(metrics);
  sim::Simulator sim;
  // Both protocol modes of a rate share one seed root, so arrival schedules
  // and client path draws pair exactly; only the farm salt (server-side
  // noise) differs, per the probe-run convention.
  util::Rng root(util::derive_seed({config.seed, 0x10adULL, rate_index}));
  const std::uint64_t salt = h3 ? 0x113 : 0x112;
  ServerFarm farm(workload.universe, config.capacity, root.fork("farm").fork(salt));

  FleetConfig fc;
  fc.arrival.kind = config.arrival;
  fc.arrival.window = config.window;
  fc.arrival.peak_ratio = config.peak_ratio;
  fc.arrival.think_mean = config.think_mean;
  if (config.arrival == ArrivalKind::ClosedLoop) {
    fc.arrival.users = static_cast<std::size_t>(rate);  // sweep = population
  } else {
    fc.arrival.rate_per_sec = rate;
  }
  fc.h3 = h3;
  fc.max_visits = config.max_visits_per_cell;
  fc.queue_sample_interval = config.queue_sample_interval;
  fc.vantage = config.vantage;
  fc.vantage.edge_capacity = {};  // servers come from the shared farm
  fc.vantage.server_noise_salt = salt;
  fc.browser = config.browser;
  fc.link_mix = config.link_mix;
  fc.sampling = config.sampling;

  Fleet fleet(sim, workload, config.sites, farm, std::move(fc), root.fork("fleet"));
  FleetOutcome out = fleet.run();

  LoadCellRow row;
  row.offered_rate = rate;
  row.h3 = h3;
  row.arrivals = out.arrivals;
  row.clients = out.clients_used;
  row.population = out.population;
  row.sampled = out.plan.active ? out.plan.chosen.size() : 0;
  row.est_arrivals = out.weight_sum;
  row.sim_events = sim.events_executed();
  std::vector<double> plt_ms;
  std::vector<double> ttfb_ms;
  std::vector<double> fcp_ms;
  std::vector<std::pair<double, double>> plt_w;   // (value, weight)
  std::vector<std::pair<double, double>> ttfb_w;
  std::vector<std::pair<double, double>> fcp_w;
  for (const VisitRecord& v : out.visits) {
    ++row.visits;
    row.connections_created += v.connections_created;
    row.connections_refused += v.connections_refused;
    row.refusal_retries += v.refusal_retries;
    row.requests_failed += v.requests_failed;
    if (v.root_failed) {
      ++row.failed_visits;
      continue;
    }
    plt_ms.push_back(to_ms(v.plt));
    ttfb_ms.push_back(to_ms(v.ttfb));
    fcp_ms.push_back(v.fcp_ms);
    plt_w.emplace_back(to_ms(v.plt), v.weight);
    ttfb_w.emplace_back(to_ms(v.ttfb), v.weight);
    fcp_w.emplace_back(v.fcp_ms, v.weight);
  }
  row.qoe_samples = fcp_ms.size();
  if (out.plan.active) {
    // Weighted estimators extrapolate the coreset to the population; the p95
    // rank-CI is the reported error bound (docs/SCALING.md §4).
    const double z = config.sampling.confidence_z;
    row.plt_p50_ms = weighted_quantile(plt_w, 0.50, z).value;
    const QuantileEstimate p95 = weighted_quantile(plt_w, 0.95, z);
    row.plt_p95_ms = p95.value;
    row.plt_p95_lo_ms = p95.lo;
    row.plt_p95_hi_ms = p95.hi;
    row.n_eff = p95.n_eff;
    row.plt_p99_ms = weighted_quantile(plt_w, 0.99, z).value;
    row.ttfb_p50_ms = weighted_quantile(ttfb_w, 0.50, z).value;
    row.ttfb_p95_ms = weighted_quantile(ttfb_w, 0.95, z).value;
    if (row.qoe_samples > 0) row.qoe_fcp_p95_ms = weighted_quantile(fcp_w, 0.95, z).value;
  } else {
    std::sort(plt_ms.begin(), plt_ms.end());
    std::sort(ttfb_ms.begin(), ttfb_ms.end());
    row.plt_p50_ms = util::quantile_sorted(plt_ms, 0.50);
    row.plt_p95_ms = util::quantile_sorted(plt_ms, 0.95);
    row.plt_p95_lo_ms = row.plt_p95_ms;
    row.plt_p95_hi_ms = row.plt_p95_ms;
    row.n_eff = static_cast<double>(plt_ms.size());
    row.plt_p99_ms = util::quantile_sorted(plt_ms, 0.99);
    row.ttfb_p50_ms = util::quantile_sorted(ttfb_ms, 0.50);
    row.ttfb_p95_ms = util::quantile_sorted(ttfb_ms, 0.95);
    if (row.qoe_samples > 0) {
      std::sort(fcp_ms.begin(), fcp_ms.end());
      row.qoe_fcp_p95_ms = util::quantile_sorted(fcp_ms, 0.95);
    }
  }
  row.refusal_rate = row.connections_created == 0
                         ? 0.0
                         : static_cast<double>(row.connections_refused) /
                               static_cast<double>(row.connections_created);

  double backlog_sum = 0.0;
  double busy_sum = 0.0;
  for (const QueueSample& qs : out.queue_series) {
    backlog_sum += static_cast<double>(qs.accept_backlog);
    busy_sum += static_cast<double>(qs.busy_cores);
    row.max_queue_depth = std::max(row.max_queue_depth, qs.accept_backlog);
    row.max_concurrent = std::max(row.max_concurrent, qs.concurrent_connections);
  }
  if (!out.queue_series.empty()) {
    row.mean_queue_depth = backlog_sum / static_cast<double>(out.queue_series.size());
    row.mean_busy_cores = busy_sum / static_cast<double>(out.queue_series.size());
  }
  // Weight-summed phases over weight_sum = extrapolated per-visit mean (in
  // full runs every weight is 1.0, so this is exactly the plain mean).
  row.mean_phases = out.phase_sum;
  if (out.weight_sum > 0.0) row.mean_phases /= out.weight_sum;
  row.queue_series = std::move(out.queue_series);
  return row;
}

}  // namespace

LoadResult run_load_study(const LoadStudyConfig& config,
                          core::RunObservability* observability) {
  H3CDN_EXPECTS(!config.offered_rates.empty());
  H3CDN_EXPECTS(config.sites >= 1);
  H3CDN_EXPECTS(config.jobs >= 0);
  web::WorkloadConfig wc = config.workload;
  wc.site_count = std::max(wc.site_count, config.sites);
  const web::Workload workload = web::generate_workload(wc);

  const std::size_t n_cells = config.offered_rates.size() * 2;
  std::size_t jobs = config.jobs == 0 ? util::ThreadPool::default_jobs()
                                      : static_cast<std::size_t>(config.jobs);
  jobs = std::min(jobs, n_cells);
  util::ThreadPool pool(jobs);

  // One shard per (rate, protocol) cell; fold in canonical order afterwards.
  std::vector<CellShard> shards(n_cells);
  pool.parallel_for(n_cells, [&](std::size_t cell) {
    const std::size_t rate_index = cell / 2;
    const bool h3 = (cell % 2) == 1;
    CellShard& shard = shards[cell];
    shard.metrics = std::make_unique<obs::MetricsRegistry>();
    shard.row = run_cell(workload, config, config.offered_rates[rate_index], rate_index,
                         h3, shard.metrics.get());
  });

  LoadResult result;
  result.sites = std::min(config.sites, workload.sites.size());
  result.arrival = config.arrival;
  result.window = config.window;
  for (CellShard& shard : shards) {
    if (observability != nullptr) observability->metrics().merge_from(*shard.metrics);
    result.rows.push_back(std::move(shard.row));
  }
  return result;
}

void print_load_result(std::ostream& os, const LoadResult& result) {
  os << "== load sweep: " << to_string(result.arrival) << " arrivals, " << result.sites
     << " sites, window " << util::fmt(to_ms(result.window) / 1000.0, 1) << " s ==\n";
  util::AsciiTable t({"rate", "proto", "visits", "plt p50", "plt p95", "plt p99",
                      "ttfb p50", "ttfb p95", "fcp p95", "refused", "retries", "failed",
                      "refuse%", "q mean", "q max", "conc max"});
  for (const LoadCellRow& r : result.rows) {
    t.add_row({util::fmt(r.offered_rate, 1), r.h3 ? "h3" : "h2", std::to_string(r.visits),
               util::fmt(r.plt_p50_ms, 1), util::fmt(r.plt_p95_ms, 1),
               util::fmt(r.plt_p99_ms, 1), util::fmt(r.ttfb_p50_ms, 1),
               util::fmt(r.ttfb_p95_ms, 1), util::fmt(r.qoe_fcp_p95_ms, 1),
               std::to_string(r.connections_refused),
               std::to_string(r.refusal_retries), std::to_string(r.requests_failed),
               util::fmt_pct(r.refusal_rate), util::fmt(r.mean_queue_depth, 2),
               std::to_string(r.max_queue_depth), std::to_string(r.max_concurrent)});
  }
  os << t.to_string();

  bool any_sampled = false;
  for (const LoadCellRow& r : result.rows) any_sampled |= r.sampled > 0;
  if (any_sampled) {
    os << "\ncoreset sampling (weighted estimates; p95 bound is the rank-CI):\n";
    util::AsciiTable s({"rate", "proto", "population", "sampled", "n_eff", "est visits",
                        "plt p95", "p95 lo", "p95 hi"});
    for (const LoadCellRow& r : result.rows) {
      s.add_row({util::fmt(r.offered_rate, 1), r.h3 ? "h3" : "h2",
                 std::to_string(r.population), std::to_string(r.sampled),
                 util::fmt(r.n_eff, 1), util::fmt(r.est_arrivals, 1),
                 util::fmt(r.plt_p95_ms, 1), util::fmt(r.plt_p95_lo_ms, 1),
                 util::fmt(r.plt_p95_hi_ms, 1)});
    }
    os << s.to_string();
  }

  os << "\nper-cell critical-path attribution (mean ms per visit):\n";
  std::vector<std::string> header = {"rate", "proto"};
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    header.emplace_back(obs::to_string(static_cast<obs::Phase>(i)));
  }
  util::AsciiTable a(header);
  for (const LoadCellRow& r : result.rows) {
    std::vector<std::string> cells = {util::fmt(r.offered_rate, 1), r.h3 ? "h3" : "h2"};
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      cells.push_back(util::fmt(r.mean_phases[static_cast<obs::Phase>(i)], 1));
    }
    a.add_row(cells);
  }
  os << a.to_string();
}

bool verify_sampling_accuracy(const LoadResult& sampled, const LoadResult& full,
                              std::ostream& os) {
  H3CDN_EXPECTS(sampled.rows.size() == full.rows.size());
  bool ok = true;
  util::AsciiTable t({"rate", "proto", "sampled", "population", "p95 lo", "p95 est",
                      "p95 hi", "full p95", "verdict"});
  for (std::size_t i = 0; i < sampled.rows.size(); ++i) {
    const LoadCellRow& s = sampled.rows[i];
    const LoadCellRow& f = full.rows[i];
    const bool inside = f.plt_p95_ms >= s.plt_p95_lo_ms && f.plt_p95_ms <= s.plt_p95_hi_ms;
    ok &= inside;
    t.add_row({util::fmt(s.offered_rate, 1), s.h3 ? "h3" : "h2",
               std::to_string(s.sampled), std::to_string(s.population),
               util::fmt(s.plt_p95_lo_ms, 1), util::fmt(s.plt_p95_ms, 1),
               util::fmt(s.plt_p95_hi_ms, 1), util::fmt(f.plt_p95_ms, 1),
               inside ? "within bound" : "OUTSIDE BOUND"});
  }
  os << "coreset accuracy vs full population (p95 PLT must sit in the rank-CI):\n"
     << t.to_string();
  return ok;
}

std::string load_result_to_csv(const LoadResult& result) {
  std::ostringstream os;
  os << "rate,proto,arrivals,visits,failed_visits,clients,population,sampled,"
        "est_arrivals,n_eff,plt_p50_ms,plt_p95_ms,plt_p95_lo_ms,plt_p95_hi_ms,"
        "plt_p99_ms,ttfb_p50_ms,ttfb_p95_ms,qoe_samples,qoe_fcp_p95_ms,"
        "connections_created,connections_refused,"
        "refusal_retries,requests_failed,refusal_rate,mean_queue_depth,max_queue_depth,"
        "mean_busy_cores,max_concurrent,sim_events";
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    os << ",cp_" << obs::to_string(static_cast<obs::Phase>(i)) << "_ms";
  }
  os << ",queue_series\n";
  for (const LoadCellRow& r : result.rows) {
    os << util::fmt(r.offered_rate, 3) << ',' << (r.h3 ? "h3" : "h2") << ',' << r.arrivals
       << ',' << r.visits << ',' << r.failed_visits << ',' << r.clients << ','
       << r.population << ',' << r.sampled << ',' << util::fmt(r.est_arrivals, 1) << ','
       << util::fmt(r.n_eff, 1) << ','
       << util::fmt(r.plt_p50_ms, 3) << ',' << util::fmt(r.plt_p95_ms, 3) << ','
       << util::fmt(r.plt_p95_lo_ms, 3) << ',' << util::fmt(r.plt_p95_hi_ms, 3) << ','
       << util::fmt(r.plt_p99_ms, 3) << ',' << util::fmt(r.ttfb_p50_ms, 3) << ','
       << util::fmt(r.ttfb_p95_ms, 3) << ',' << r.qoe_samples << ','
       << util::fmt(r.qoe_samples > 0 ? r.qoe_fcp_p95_ms : 0.0, 3) << ','
       << r.connections_created << ','
       << r.connections_refused << ',' << r.refusal_retries << ',' << r.requests_failed
       << ',' << util::fmt(r.refusal_rate, 4) << ',' << util::fmt(r.mean_queue_depth, 3)
       << ',' << r.max_queue_depth << ',' << util::fmt(r.mean_busy_cores, 3) << ','
       << r.max_concurrent << ',' << r.sim_events;
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      os << ',' << util::fmt(r.mean_phases[static_cast<obs::Phase>(i)], 3);
    }
    os << ',';
    for (std::size_t i = 0; i < r.queue_series.size(); ++i) {
      const QueueSample& qs = r.queue_series[i];
      if (i > 0) os << '|';
      os << util::fmt(to_ms(qs.at), 1) << ':'
         << qs.accept_backlog << ':' << qs.concurrent_connections << ':' << qs.busy_cores;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace h3cdn::load
