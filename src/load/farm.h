// Shared server fleet for load cells: one edge/origin per domain, contended
// by every virtual client. Implements browser::ServerDirectory so client
// Environments route handshake admission and request service through the
// SAME capacity-limited servers — this is what couples the clients and lets
// queues build (in private mode every probe gets its own idle servers).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "browser/environment.h"
#include "cdn/edge_server.h"
#include "cdn/origin_server.h"
#include "util/rng.h"
#include "util/types.h"
#include "web/domains.h"

namespace h3cdn::load {

class ServerFarm : public browser::ServerDirectory {
 public:
  ServerFarm(const web::DomainUniverse& universe, cdn::EdgeCapacityConfig capacity,
             util::Rng rng);

  /// Lazily materializes the edge for a CDN domain (nullptr otherwise).
  cdn::EdgeServer* edge(const std::string& domain) override;
  /// Lazily materializes the origin for a first-party domain (nullptr for CDN).
  cdn::OriginServer* origin(const std::string& domain) override;

  /// Instantaneous utilization snapshot aggregated over all live edges.
  struct Sample {
    std::size_t accept_backlog = 0;
    std::size_t concurrent_connections = 0;
    std::size_t busy_cores = 0;
  };
  Sample sample(TimePoint now);

  /// Cumulative admission counters aggregated over all live edges.
  struct Totals {
    std::uint64_t handshakes_admitted = 0;
    std::uint64_t refused_queue_full = 0;
    std::uint64_t refused_conn_limit = 0;
  };
  [[nodiscard]] Totals totals() const;

  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const cdn::EdgeCapacityConfig& capacity() const { return capacity_; }

 private:
  const web::DomainUniverse& universe_;
  cdn::EdgeCapacityConfig capacity_;
  util::Rng rng_;  // fork() is const: server seeds don't depend on creation order
  // Ordered maps so sample()/totals() iterate in a canonical order.
  std::map<std::string, std::unique_ptr<cdn::EdgeServer>> edges_;
  std::map<std::string, std::unique_ptr<cdn::OriginServer>> origins_;
};

}  // namespace h3cdn::load
