// Deterministic chaos-scenario harness (h3cdn_study --experiment chaos,
// docs/RESILIENCE.md).
//
// Each scenario is a scripted fault schedule — edge outage mid-page, UDP
// blackhole during the handshake window, capacity refusal storm, mid-transfer
// connection kill at byte offset N, mid-tier relay outage with direct-path
// fallback, bursty cellular last mile, DNS-record failover — executed against
// a load::Fleet on a private Simulator, with the
// request-lifecycle resilience engine (src/resilience/) enabled. After every
// cell the harness checks the run's invariants: every page terminated in a
// typed success/failure, the pool's entry accounting conserves (submitted <=
// completed + failed <= submitted + hedges launched, and every hedge settled
// exactly once), the critical-path PhaseVector still sums to PLT, and each
// scenario's expected fault signature actually fired. Cells are independent
// shards merged in canonical order, so every artifact is byte-identical at
// any --jobs.
//
// The entry point lives in namespace core (it is a study-level driver like
// the measurement study) but is compiled into the load library: the harness
// drives load::Fleet, and core cannot link load without a dependency cycle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "browser/environment.h"
#include "core/observability.h"
#include "net/fault.h"
#include "resilience/engine.h"
#include "web/workload.h"

namespace h3cdn::core {

/// One scripted fault schedule. Every scenario runs as its own fleet cell;
/// the fields below are deltas applied on top of the harness-wide vantage
/// and browser configuration.
struct ChaosScenario {
  std::string name;         // stable kebab-case id (CSV key)
  std::string description;  // one line for the text report
  bool h3 = true;           // protocol mode of the cell's browsers
  double rate_per_sec = 6.0;
  Duration window = sec(4);

  std::string link_profile;        // last-mile preset name ("" = keep vantage)
  net::FaultProfile access_fault;  // merged into the probe-NIC fault profile
  // DNS failover: >1 resolves every domain to that many records, with
  // `primary_path_fault` afflicting only each domain's record-0 path.
  std::size_t addresses_per_record = 1;
  net::FaultProfile primary_path_fault;
  // Mid-transfer kill: every connection dies once its cumulative in-order
  // response delivery crosses this byte offset (0 = disabled).
  std::size_t kill_response_at_bytes = 0;
  // Handshake retransmissions before a dial dies (0 = keep the transport
  // default of 5, which gives up at ~15.75 s). Outage scenarios lower this so
  // typed deaths — and the recovery they trigger — land inside the request
  // deadline instead of racing it.
  int handshake_retry_cap = 0;
  // Refusal storm: undersized shared farm (tiny accept queue + connection
  // cap) so most dials are refused at admission.
  bool capacity_storm = false;
  // Multi-hop relay path for the cell's CDN traffic (docs/TOPOLOGY.md
  // PathPlan grammar, e.g. "h3-h3"); "" = direct, no chain.
  std::string path_plan;
  // Mid-tier outage: kill the chain at this sim instant — every response
  // held at the mid-tier dies with a typed ConnectionError::Killed and all
  // later chain traffic is refused until clients fall back to the direct
  // path. Duration{0} = never. Requires a non-empty path_plan.
  Duration kill_midtier_at{0};

  // Scenario-specific expectations, checked on top of the universal
  // invariants. Each one pins that the scripted fault actually produced its
  // signature — an inert schedule is a harness bug, not a pass.
  bool expect_resumption = false;   // resilience.resumed_bytes > 0
  bool expect_failover = false;     // dns.failover.switches > 0
  bool expect_no_h3_broken = false; // refusals never mark the pool H3-broken
  bool expect_faults = false;       // >= 1 connection death or refusal seen
  // Mid-tier outage signature: the kill actually severed held responses
  // (chain holds_killed > 0) AND at least one later resolve fell back to
  // the direct path (chain direct_resolutions > 0).
  bool expect_midtier_fallback = false;
};

/// The scripted fault interval of a scenario, derived from its schedule:
/// outage scenarios span [earliest outage start, latest outage end];
/// whole-run conditions (mid-transfer kills, capacity storms) span the
/// arrival window; fault-free cells report faulted = false. This is the
/// reference window MTTR is measured against.
obs::FaultWindowSpec scripted_fault_window(const ChaosScenario& scenario);

/// The shipped suite: a fault-free baseline plus seven fault scenarios.
std::vector<ChaosScenario> default_chaos_scenarios();

struct ChaosConfig {
  ChaosConfig() { resilience.enabled = true; }

  web::WorkloadConfig workload;
  std::size_t sites = 4;  // pages the cell's visits rotate over
  std::vector<ChaosScenario> scenarios = default_chaos_scenarios();
  // Engine under test; enabled by default (the whole point of the harness).
  // bench_fault_recovery flips it off for the recovery-time comparison.
  resilience::Options resilience;
  std::size_t max_visits_per_cell = 256;
  browser::VantageConfig vantage;
  browser::BrowserConfig browser;
  std::uint64_t seed = 20240131;
  int jobs = 1;  // 0 = hardware concurrency
  // Timeline window width for the per-cell recorders. Ignored when an
  // observability sink is attached: cells then inherit the sink's bucket so
  // the merged timeline is well-formed.
  Duration timeline_bucket = msec(250);
};

/// One scenario cell's outcome: fleet-level results, the resilience counters
/// recorded by the cell's private registry, and any invariant violations.
struct ChaosCellRow {
  std::string scenario;
  bool h3 = true;
  std::size_t arrivals = 0;
  std::size_t visits = 0;
  std::size_t failed_visits = 0;  // root document never loaded
  double plt_p50_ms = 0.0;
  double plt_p95_ms = 0.0;
  // QoE beyond PLT (count:0-only convention: p95 prints 0 when no samples).
  std::size_t qoe_samples = 0;
  double qoe_fcp_p95_ms = 0.0;
  std::uint64_t entries_submitted = 0;
  std::uint64_t entries_completed = 0;
  std::uint64_t entries_failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t hedges_lost = 0;
  std::uint64_t hedges_cancelled = 0;
  std::uint64_t resumed_requests = 0;
  std::uint64_t resumed_bytes = 0;
  std::uint64_t breaker_opened = 0;
  std::uint64_t breaker_demotions = 0;
  std::uint64_t failover_switches = 0;
  std::uint64_t connection_deaths = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t h3_broken_marks = 0;
  // Multi-hop chain accounting (zero for direct cells).
  std::uint64_t relayed_requests = 0;
  std::uint64_t midtier_holds_killed = 0;
  std::uint64_t direct_fallbacks = 0;  // resolves after the chain fell back
  double phase_residual_ms = 0.0;  // |sum over visits of (phase sum - PLT)|
  // Fault->recovery annotation from the cell's timeline (obs/fault_window.h).
  // MTTR is finite for every scenario: a cell whose fault never degraded a
  // window (and the fault-free baseline) reports mttr_ms == 0.
  std::size_t degraded_windows = 0;
  double detection_ms = -1.0;  // -1: never degraded
  double recovery_ms = -1.0;
  double mttr_ms = 0.0;
  double time_to_breaker_open_ms = -1.0;   // -1: breaker never opened
  double time_to_breaker_close_ms = -1.0;  // -1: never closed after opening
  std::vector<std::string> violations;  // empty = every invariant held
};

struct ChaosResult {
  std::size_t sites = 0;
  bool resilience_enabled = true;
  std::vector<ChaosCellRow> rows;  // canonical scenario order

  [[nodiscard]] bool all_passed() const;
};

/// Runs every scenario cell (parallel across cells, deterministic merge).
/// When `observability` is non-null each cell's metrics and timeline merge
/// into it in canonical scenario order — byte-identical output at any
/// --jobs — and every cell's fault->recovery annotation is recorded for the
/// fault_recovery.json artifact.
ChaosResult run_chaos(const ChaosConfig& config,
                      core::RunObservability* observability = nullptr);

void print_chaos_result(std::ostream& os, const ChaosResult& result);

/// Machine-readable form, one row per scenario; the byte-identity surface
/// for the --jobs determinism checks. Violations are '|'-joined in the last
/// column (empty = pass).
std::string chaos_result_to_csv(const ChaosResult& result);

}  // namespace h3cdn::core
