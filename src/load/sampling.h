// Stratified coreset sampling for million-client fleet sweeps
// (docs/SCALING.md §4).
//
// Simulating every virtual client caps a sweep at thousands of visits per
// shard. A coreset run simulates a weighted representative subset instead:
// the arrival population is stratified by (link profile, arrival phase) so
// heterogeneous client classes stay proportionally represented — the
// stratification the lossy-cellular sharding literature (arXiv 1707.05836)
// shows is load-bearing — and each simulated member carries the weight
// population_s / sampled_s of its stratum. Counters extrapolate by weight;
// latency percentiles are weighted quantiles with a rank-based confidence
// bound derived from the effective (Kish) sample size, so every extrapolated
// number ships with an explicit error bar that the full-population run must
// fall inside (CI enforces exactly that).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace h3cdn::load {

/// One class of access link in a heterogeneous fleet; `profile` is a
/// net::LinkProfile name ("wired" | "cellular"). Profiles are assigned to
/// population members by a deterministic per-index draw, so a member keeps
/// its link class whether or not the run is sampled.
struct LinkMixEntry {
  std::string profile = "wired";
  double weight = 1.0;
};

struct SamplingConfig {
  /// Target number of simulated members; 0 disables sampling (everyone runs).
  std::size_t target = 0;
  /// Arrival-phase strata: the window is cut into this many equal spans so
  /// diurnal load shape survives sampling. Ignored for closed-loop fleets.
  std::size_t arrival_phases = 4;
  /// Two-sided normal quantile for the reported quantile error bounds
  /// (default: 95% confidence).
  double confidence_z = 1.959964;
};

struct StratumSummary {
  std::uint32_t id = 0;
  std::size_t population = 0;
  std::size_t sampled = 0;
  double weight = 0.0;  // population / sampled
};

struct SamplePlan {
  bool active = false;
  std::size_t population = 0;
  std::vector<std::uint32_t> chosen;   // ascending population-member indices
  std::vector<double> weights;         // parallel to `chosen`
  std::vector<StratumSummary> strata;  // ascending id; non-empty strata only
};

/// Plans a stratified sample of ~`target` members out of
/// `stratum_of.size()`. Allocation is proportional with largest-remainder
/// rounding, clamped to at least one member per non-empty stratum (so no
/// client class ever vanishes) and at most the stratum population. Members
/// within a stratum are drawn uniformly without replacement from `rng`.
/// Returns an inactive plan when target is 0 or >= the population.
SamplePlan plan_stratified_sample(const std::vector<std::uint32_t>& stratum_of,
                                  std::size_t target, util::Rng& rng);

struct QuantileEstimate {
  double value = 0.0;  // weighted quantile point estimate
  double lo = 0.0;     // error bound: value at rank q - z*se(q)
  double hi = 0.0;     // error bound: value at rank q + z*se(q)
  double n_eff = 0.0;  // Kish effective sample size
};

/// Weighted quantile of `value_weight` (unsorted; weights > 0) with a
/// rank-based confidence bound: the quantile rank's standard error is
/// sqrt(q(1-q)/n_eff), and [lo, hi] are the weighted quantiles at the rank
/// shifted down/up by z standard errors. With unit weights and large n this
/// collapses to the classic order-statistic CI. Returns zeros when empty.
QuantileEstimate weighted_quantile(std::vector<std::pair<double, double>> value_weight,
                                   double q, double z);

}  // namespace h3cdn::load
