// Virtual-client fleet: multiplexes many concurrent page visits onto one
// discrete-event Simulator, all contending for a shared ServerFarm.
//
// Open-loop cells pre-schedule visit arrivals (load keeps coming no matter
// how slow the servers get); the closed-loop cell runs a fixed user
// population with think times. Client state is a struct-of-arrays slab
// (docs/SCALING.md §3): the heavyweight per-client machinery (environment,
// ticket store, browser) sits behind pointer-stable handles while the hot
// per-visit scalars live in flat parallel vectors, and finished clients are
// recycled through index-based free lists — one per link-profile class — so
// a returning client reuses its ticket store and network paths
// (returning-user semantics, which exercises TLS/QUIC resumption under
// load).
//
// Two population knobs extend the fleet beyond the homogeneous case:
//  * `link_mix` assigns each population member a link-profile class
//    (wired/cellular/...) by a deterministic per-index draw;
//  * `sampling` simulates a stratified coreset of the population instead of
//    every member (load/sampling.h), with per-member extrapolation weights.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "browser/browser.h"
#include "load/arrival.h"
#include "load/farm.h"
#include "load/sampling.h"
#include "obs/critical_path.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/types.h"
#include "web/workload.h"

namespace h3cdn::topology {
class Chain;
}

namespace h3cdn::load {

struct FleetConfig {
  ArrivalConfig arrival;
  bool h3 = true;  // overrides browser.h3_enabled
  std::size_t max_visits = 4096;  // open-loop runaway cap; counted when hit
  Duration queue_sample_interval = msec(250);
  browser::VantageConfig vantage;  // template for every client environment
  browser::BrowserConfig browser;
  // Heterogeneous access links: each population member is assigned one entry
  // (weighted, deterministic per member index). Empty = every client uses
  // `vantage` unmodified.
  std::vector<LinkMixEntry> link_mix;
  // Coreset mode: simulate a stratified sample of the population with
  // extrapolation weights instead of everyone. target == 0 = full run.
  SamplingConfig sampling;
  // Optional multi-hop relay chain (docs/TOPOLOGY.md). Shared by every
  // client environment of the fleet — the relays' upstream pools persist
  // across clients, which is the mid-tier connection-reuse effect under
  // load. Must outlive the fleet; null = every client fetches directly.
  topology::Chain* chain = nullptr;
};

struct VisitRecord {
  TimePoint arrived{0};
  Duration plt{0};
  Duration ttfb{0};  // root entry blocked+dns+connect+send+wait
  double fcp_ms = 0.0;  // first-contentful-resource time (obs::compute_qoe)
  bool root_failed = false;
  std::uint64_t connections_created = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t refusal_retries = 0;
  std::uint64_t requests_failed = 0;
  double weight = 1.0;        // extrapolation weight (1.0 in full runs)
  std::uint32_t stratum = 0;  // (profile, arrival-phase) stratum id
};

struct QueueSample {
  TimePoint at{0};
  std::size_t accept_backlog = 0;
  std::size_t concurrent_connections = 0;
  std::size_t busy_cores = 0;
};

struct FleetOutcome {
  std::vector<VisitRecord> visits;  // completion order (deterministic)
  std::vector<QueueSample> queue_series;
  std::size_t arrivals = 0;         // visits actually started (sampled count)
  std::size_t population = 0;       // planned members before sampling
  std::size_t arrivals_capped = 0;  // open-loop arrivals dropped by max_visits
  std::size_t clients_used = 0;
  double weight_sum = 0.0;          // Σ weight over completed visits
  obs::PhaseVector phase_sum;  // critical-path phases, weight-summed over visits
  SamplePlan plan;             // inactive when the full population ran
};

class Fleet {
 public:
  /// Visits rotate over the first `site_count` pages of `workload`. The farm
  /// must be seeded for this cell and outlive the fleet.
  Fleet(sim::Simulator& sim, const web::Workload& workload, std::size_t site_count,
        ServerFarm& farm, FleetConfig config, util::Rng rng);
  ~Fleet();

  /// Warms edge caches, schedules all arrivals and the queue sampler, then
  /// drives sim.run() to completion.
  FleetOutcome run();

 private:
  // Struct-of-arrays client slab. `env`/`tickets`/`browser` are cold,
  // pointer-stable handles (the browser stack holds references into them);
  // everything else is flat hot state indexed by client slot.
  struct ClientSlab {
    std::vector<std::unique_ptr<browser::Environment>> env;
    std::vector<std::unique_ptr<tls::SessionTicketStore>> tickets;
    std::vector<std::unique_ptr<browser::Browser>> browser;
    std::vector<util::Rng> think_rng;     // closed-loop think times
    std::vector<std::uint32_t> profile;   // link-mix class of this slot
    std::vector<std::uint8_t> busy;       // 1 while a visit is in flight
    std::vector<std::uint32_t> visits;    // completed visits through this slot

    [[nodiscard]] std::size_t size() const { return env.size(); }
  };

  std::size_t checkout_client(std::uint32_t profile);
  void release_client(std::size_t index);
  [[nodiscard]] std::uint32_t profile_of(std::size_t member) const;
  [[nodiscard]] std::uint32_t stratum_of(std::size_t member, TimePoint at) const;
  void start_visit(std::size_t member, double weight);
  void user_visit(std::size_t client_index, std::size_t user, double weight);
  void finish_visit(std::size_t client_index, std::uint32_t root_id, TimePoint arrived,
                    double weight, std::uint32_t stratum,
                    const browser::PageLoadResult& result);
  void sample_tick();

  sim::Simulator& sim_;
  const web::Workload& workload_;
  std::size_t site_count_;
  ServerFarm& farm_;
  FleetConfig config_;
  util::Rng rng_;

  std::vector<browser::VantageConfig> profile_vantages_;  // one per link_mix entry
  std::vector<double> profile_weights_;
  double total_weight_ = 0.0;
  util::Rng mix_rng_;  // base for the per-member profile draw

  ClientSlab clients_;
  std::vector<std::vector<std::uint32_t>> free_clients_;  // per profile class
  FleetOutcome outcome_;
  std::size_t visit_counter_ = 0;  // closed-loop page rotation
  std::size_t active_ = 0;         // visits in flight
  std::size_t future_ = 0;         // arrivals not yet started / users still looping
};

}  // namespace h3cdn::load
