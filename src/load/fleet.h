// Virtual-client fleet: multiplexes many concurrent page visits onto one
// discrete-event Simulator, all contending for a shared ServerFarm.
//
// Open-loop cells pre-schedule visit arrivals (load keeps coming no matter
// how slow the servers get); the closed-loop cell runs a fixed user
// population with think times. Clients are recycled through a free list, so
// a finished client's next visit reuses its ticket store and network paths —
// returning-user semantics, which exercises TLS/QUIC resumption (and the
// resumed-handshake admission discount) under load.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "browser/browser.h"
#include "load/arrival.h"
#include "load/farm.h"
#include "obs/critical_path.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/types.h"
#include "web/workload.h"

namespace h3cdn::load {

struct FleetConfig {
  ArrivalConfig arrival;
  bool h3 = true;  // overrides browser.h3_enabled
  std::size_t max_visits = 4096;  // open-loop runaway cap; counted when hit
  Duration queue_sample_interval = msec(250);
  browser::VantageConfig vantage;  // template for every client environment
  browser::BrowserConfig browser;
};

struct VisitRecord {
  TimePoint arrived{0};
  Duration plt{0};
  Duration ttfb{0};  // root entry blocked+dns+connect+send+wait
  bool root_failed = false;
  std::uint64_t connections_created = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t refusal_retries = 0;
  std::uint64_t requests_failed = 0;
};

struct QueueSample {
  TimePoint at{0};
  std::size_t accept_backlog = 0;
  std::size_t concurrent_connections = 0;
  std::size_t busy_cores = 0;
};

struct FleetOutcome {
  std::vector<VisitRecord> visits;  // completion order (deterministic)
  std::vector<QueueSample> queue_series;
  std::size_t arrivals = 0;
  std::size_t arrivals_capped = 0;  // open-loop arrivals dropped by max_visits
  std::size_t clients_used = 0;
  obs::PhaseVector phase_sum;  // critical-path phases summed over visits
};

class Fleet {
 public:
  /// Visits rotate over the first `site_count` pages of `workload`. The farm
  /// must be seeded for this cell and outlive the fleet.
  Fleet(sim::Simulator& sim, const web::Workload& workload, std::size_t site_count,
        ServerFarm& farm, FleetConfig config, util::Rng rng);
  ~Fleet();

  /// Warms edge caches, schedules all arrivals and the queue sampler, then
  /// drives sim.run() to completion.
  FleetOutcome run();

 private:
  struct Client;

  std::size_t checkout_client();
  void start_visit(std::size_t visit_seq);
  void user_visit(std::size_t user);
  void finish_visit(std::size_t client_index, std::uint32_t root_id, TimePoint arrived,
                    const browser::PageLoadResult& result);
  void sample_tick();

  sim::Simulator& sim_;
  const web::Workload& workload_;
  std::size_t site_count_;
  ServerFarm& farm_;
  FleetConfig config_;
  util::Rng rng_;

  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::size_t> free_clients_;
  FleetOutcome outcome_;
  std::size_t visit_counter_ = 0;  // page rotation
  std::size_t active_ = 0;         // visits in flight
  std::size_t future_ = 0;         // arrivals not yet started / users still looping
};

}  // namespace h3cdn::load
