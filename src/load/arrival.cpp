#include "load/arrival.h"

#include <cmath>

#include "util/check.h"

namespace h3cdn::load {

const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::FixedRate: return "fixed";
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::DiurnalRamp: return "ramp";
    case ArrivalKind::ClosedLoop: return "closed";
  }
  return "?";
}

ArrivalKind arrival_kind_from_string(const std::string& s, bool* ok) {
  if (ok != nullptr) *ok = true;
  if (s == "fixed") return ArrivalKind::FixedRate;
  if (s == "poisson") return ArrivalKind::Poisson;
  if (s == "ramp") return ArrivalKind::DiurnalRamp;
  if (s == "closed") return ArrivalKind::ClosedLoop;
  if (ok != nullptr) *ok = false;
  return ArrivalKind::Poisson;
}

double instantaneous_rate(const ArrivalConfig& cfg, TimePoint at) {
  if (cfg.kind != ArrivalKind::DiurnalRamp) return cfg.rate_per_sec;
  const double w = to_ms(cfg.window);
  if (w <= 0.0) return cfg.rate_per_sec;
  const double t = to_ms(at);
  // Triangle peaking at window/2: rate at the edges, rate*peak_ratio mid-day.
  const double position = 1.0 - std::abs(2.0 * t / w - 1.0);  // 0 at edges, 1 mid
  return cfg.rate_per_sec * (1.0 + (cfg.peak_ratio - 1.0) * std::max(0.0, position));
}

std::vector<TimePoint> open_loop_arrivals(const ArrivalConfig& cfg, util::Rng& rng) {
  std::vector<TimePoint> arrivals;
  if (cfg.kind == ArrivalKind::ClosedLoop) return arrivals;
  H3CDN_EXPECTS(cfg.rate_per_sec > 0.0);
  H3CDN_EXPECTS(cfg.window > Duration::zero());
  const double window_s = to_ms(cfg.window) / 1000.0;

  switch (cfg.kind) {
    case ArrivalKind::FixedRate: {
      const Duration gap = from_ms(1000.0 / cfg.rate_per_sec);
      for (TimePoint t{0}; t < TimePoint{cfg.window}; t += gap) arrivals.push_back(t);
      break;
    }
    case ArrivalKind::Poisson: {
      const double mean_gap_ms = 1000.0 / cfg.rate_per_sec;
      double t_ms = rng.exponential(mean_gap_ms);
      while (t_ms < window_s * 1000.0) {
        arrivals.push_back(TimePoint{from_ms(t_ms)});
        t_ms += rng.exponential(mean_gap_ms);
      }
      break;
    }
    case ArrivalKind::DiurnalRamp: {
      // Lewis-Shedler thinning against the peak rate: draw a homogeneous
      // Poisson stream at the envelope and keep each point with probability
      // rate(t)/peak.
      const double peak = cfg.rate_per_sec * std::max(1.0, cfg.peak_ratio);
      const double mean_gap_ms = 1000.0 / peak;
      double t_ms = rng.exponential(mean_gap_ms);
      while (t_ms < window_s * 1000.0) {
        const TimePoint at{from_ms(t_ms)};
        if (rng.bernoulli(instantaneous_rate(cfg, at) / peak)) arrivals.push_back(at);
        t_ms += rng.exponential(mean_gap_ms);
      }
      break;
    }
    case ArrivalKind::ClosedLoop: break;  // handled above
  }
  return arrivals;
}

}  // namespace h3cdn::load
