// Fleet-scale load sweep (h3cdn_study --experiment load, docs/LOAD.md).
//
// Sweeps offered load across cells of (rate x protocol): each cell runs a
// virtual-client fleet against its own capacity-limited ServerFarm on a
// private Simulator, so cells are embarrassingly parallel and merge
// deterministically through the usual shard machinery. Both protocol modes
// of a rate share one seed root (paired arrivals and client paths); only the
// server-noise salt differs, matching the probe-run convention.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "core/observability.h"
#include "load/arrival.h"
#include "load/fleet.h"
#include "web/workload.h"

namespace h3cdn::load {

struct LoadStudyConfig {
  web::WorkloadConfig workload;
  std::size_t sites = 8;  // pages visits rotate over

  // Sweep axis: pages/sec for the open-loop kinds, population size for
  // ClosedLoop.
  std::vector<double> offered_rates = {2.0, 8.0, 32.0};
  ArrivalKind arrival = ArrivalKind::Poisson;
  Duration window = sec(10);
  double peak_ratio = 3.0;      // DiurnalRamp shape
  Duration think_mean = sec(2); // ClosedLoop think time

  std::size_t max_visits_per_cell = 2048;
  Duration queue_sample_interval = msec(250);

  // Capacity sized so the default rate sweep crosses the edge's knee: the
  // low-rate cell stays idle-ish, the high-rate cell queues and refuses.
  cdn::EdgeCapacityConfig capacity{.enabled = true,
                                   .think_cores = 2,
                                   .accept_queue_depth = 16,
                                   .max_concurrent_connections = 48};

  browser::VantageConfig vantage;
  browser::BrowserConfig browser;
  // Heterogeneous access links per population member (load/fleet.h). Empty =
  // homogeneous `vantage`.
  std::vector<LinkMixEntry> link_mix;
  // Coreset mode: every cell simulates a stratified sample of its population
  // with extrapolation weights (docs/SCALING.md §4). target 0 = full runs.
  SamplingConfig sampling;
  std::uint64_t seed = 20221010;
  int jobs = 1;  // 0 = hardware concurrency
};

struct LoadCellRow {
  double offered_rate = 0.0;
  bool h3 = false;
  std::size_t arrivals = 0;
  std::size_t visits = 0;
  std::size_t failed_visits = 0;  // root document never loaded
  std::size_t clients = 0;        // distinct virtual clients the cell needed
  std::size_t population = 0;  // planned members before sampling
  std::size_t sampled = 0;     // coreset size (0 when the full population ran)
  double est_arrivals = 0.0;   // Σ weight: extrapolated completed-visit count
  double n_eff = 0.0;          // Kish effective sample size of the PLT sample
  double plt_p50_ms = 0.0;
  double plt_p95_ms = 0.0;
  double plt_p95_lo_ms = 0.0;  // rank-CI bound (== p95 in full runs)
  double plt_p95_hi_ms = 0.0;
  double plt_p99_ms = 0.0;
  double ttfb_p50_ms = 0.0;
  double ttfb_p95_ms = 0.0;
  // QoE beyond PLT (obs::compute_qoe; count:0-only convention — when no
  // visit produced a waterfall the sample count is 0 and the p95 prints 0).
  std::size_t qoe_samples = 0;
  double qoe_fcp_p95_ms = 0.0;
  std::uint64_t connections_created = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t refusal_retries = 0;
  std::uint64_t requests_failed = 0;
  double refusal_rate = 0.0;  // refused dials / all dials
  double mean_queue_depth = 0.0;
  std::size_t max_queue_depth = 0;
  double mean_busy_cores = 0.0;
  std::size_t max_concurrent = 0;  // peak concurrent connections sampled
  std::uint64_t sim_events = 0;    // simulator events the cell executed
  obs::PhaseVector mean_phases;    // critical-path attribution per visit
  std::vector<QueueSample> queue_series;
};

struct LoadResult {
  std::size_t sites = 0;
  ArrivalKind arrival = ArrivalKind::Poisson;
  Duration window{0};
  std::vector<LoadCellRow> rows;  // rate-major, H2 before H3
};

/// Runs the sweep. When `observability` is non-null, every cell's metrics
/// (load.*, cdn.edge.*, transport.*, ...) merge into it in canonical cell
/// order — byte-identical output at any --jobs.
LoadResult run_load_study(const LoadStudyConfig& config,
                          core::RunObservability* observability = nullptr);

void print_load_result(std::ostream& os, const LoadResult& result);

/// Accuracy check for coreset mode: every cell's full-population p95 PLT must
/// fall inside the paired sampled cell's reported [lo, hi] rank-CI. Writes a
/// per-cell comparison to `os`; returns false on any violation (CI smoke and
/// --fleet-sample-verify hook this).
bool verify_sampling_accuracy(const LoadResult& sampled, const LoadResult& full,
                              std::ostream& os);

/// Machine-readable form (one row per cell + compact queue time series);
/// also the byte-identity surface for the --jobs determinism tests.
std::string load_result_to_csv(const LoadResult& result);

}  // namespace h3cdn::load
