// Arrival processes driving the virtual-client fleet (docs/LOAD.md §2).
//
// Open-loop kinds (FixedRate, Poisson, DiurnalRamp) pre-compute a visit
// schedule over a window: arrivals keep coming regardless of how slow the
// loaded servers get — the regime where queues actually build (Schroeder et
// al.'s open-vs-closed distinction). ClosedLoop models a fixed user
// population with think times: each user starts a new visit only after the
// previous one finished, so offered load self-throttles under overload.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace h3cdn::load {

enum class ArrivalKind {
  FixedRate,    // deterministic 1/rate spacing
  Poisson,      // exponential inter-arrivals (memoryless aggregate of many users)
  DiurnalRamp,  // inhomogeneous Poisson: triangular ramp peaking mid-window
  ClosedLoop,   // fixed user population with exponential think times
};

const char* to_string(ArrivalKind k);

/// Parses "fixed" / "poisson" / "ramp" / "closed". Sets *ok (when given)
/// false and returns Poisson on unknown input.
ArrivalKind arrival_kind_from_string(const std::string& s, bool* ok = nullptr);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::Poisson;
  double rate_per_sec = 4.0;  // mean visit arrival rate (open-loop kinds)
  Duration window = sec(10);  // arrivals occur in [0, window)
  double peak_ratio = 3.0;    // DiurnalRamp: peak rate / rate_per_sec
  std::size_t users = 16;     // ClosedLoop population size
  Duration think_mean = sec(2);  // ClosedLoop think time (exponential)
};

/// Sorted visit start times in [0, window) for the open-loop kinds.
/// ClosedLoop returns an empty vector (the fleet's user loop generates its
/// arrivals online).
std::vector<TimePoint> open_loop_arrivals(const ArrivalConfig& cfg, util::Rng& rng);

/// Deterministic instantaneous rate shape at `at`: rate_per_sec for
/// FixedRate/Poisson, the triangular ramp for DiurnalRamp (used both by the
/// thinning sampler and by tests).
double instantaneous_rate(const ArrivalConfig& cfg, TimePoint at);

}  // namespace h3cdn::load
