#include "dns/cache.h"

namespace h3cdn::dns {

std::optional<DnsRecord> DnsCache::lookup(const std::string& name, TimePoint now) {
  affinity_.assert_same_shard();
  auto it = records_.find(name);
  if (it == records_.end() || !it->second.valid_at(now)) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void DnsCache::insert(DnsRecord record) {
  affinity_.assert_same_shard();
  records_[record.name] = std::move(record);
}

void DnsCache::clear() {
  affinity_.assert_same_shard();
  records_.clear();
}

DnsRecord* DnsCache::find(const std::string& name) {
  affinity_.assert_same_shard();
  auto it = records_.find(name);
  return it == records_.end() ? nullptr : &it->second;
}

void DnsCache::remove_expired(TimePoint now) {
  affinity_.assert_same_shard();
  for (auto it = records_.begin(); it != records_.end();) {
    if (!it->second.valid_at(now)) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace h3cdn::dns
