// Stub resolver model with pluggable transports.
//
// Latency model per query:
//   * stub cache hit: free;
//   * otherwise one query round trip to the recursive resolver over the
//     configured transport, plus (on a recursive-cache miss) the recursive's
//     authoritative lookup work;
//   * encrypted transports pay a channel-establishment cost on first use:
//     DoT/DoH ride TCP+TLS1.3 (2 RTT), DoQ rides QUIC (1 RTT, and 0-RTT on
//     resumption) — the asymmetry studied by Kosek et al. (paper ref [38]).
//   * plain UDP (Do53) queries are retried after a timeout when lost.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "dns/cache.h"
#include "sim/simulator.h"
#include "tls/handshake.h"
#include "util/rng.h"

namespace h3cdn::dns {

enum class DnsTransport { Do53, DoT, DoH, DoQ };

const char* to_string(DnsTransport t);

struct ResolverConfig {
  DnsTransport transport = DnsTransport::Do53;
  Duration resolver_rtt = msec(12);        // stub <-> recursive resolver
  double recursive_cache_hit = 0.85;       // popular names cached recursively
  Duration auth_lookup_median = msec(24);  // recursive -> authoritative chain
  double auth_lookup_sigma = 0.8;
  Duration record_ttl = sec(300);
  double query_loss_rate = 0.0;            // per query message
  Duration udp_timeout = msec(400);        // Do53 retry timer
  bool channel_resumption = true;          // DoQ 0-RTT on later channels
  // Negative caching (RFC 2308): this fraction of names (a stable per-name
  // property) has no AAAA record; the empty answer is cached for
  // negative_ttl, after which a repeat visit re-queries even though the
  // positive record is still valid. Models the dual-stack (Happy Eyeballs)
  // query pair collapsing into the slower leg.
  double ipv6_absent_fraction = 0.35;
  Duration negative_ttl = sec(30);
  // DNS failover (docs/RESILIENCE.md): answers carry this many A records.
  // With > 1, a connection failure reported against a name demotes its
  // current record for `health_cooldown` and rotates dials to the next
  // healthy one. 1 — the default — reproduces the single-address behaviour.
  std::size_t addresses_per_record = 1;
  Duration health_cooldown = sec(5);
};

struct ResolverStats {
  std::uint64_t queries = 0;
  std::uint64_t stub_cache_hits = 0;
  std::uint64_t recursive_cache_hits = 0;
  std::uint64_t retries = 0;
  std::uint64_t channels_established = 0;
  std::uint64_t negative_expiries = 0;  // repeat resolves forced by RFC 2308 expiry
  // DNS failover (docs/RESILIENCE.md).
  std::uint64_t failover_reports = 0;   // connection failures reported to a record
  std::uint64_t failover_switches = 0;  // reports that moved to another address
};

class Resolver {
 public:
  Resolver(sim::Simulator& sim, ResolverConfig config, util::Rng rng);

  /// Resolves `name`; `done` fires at the simulated completion time.
  void resolve(const std::string& name, std::function<void(TimePoint)> done);

  /// Inserts a record directly (cache pre-warming).
  void prewarm(const std::string& name);

  /// Drops the encrypted channel (e.g. after idle); the next query pays the
  /// re-establishment cost (0-RTT for DoQ when resumption is on).
  void drop_channel();

  /// Address index dials should use for `name` right now: the record's
  /// preferred address, or the next healthy one when it is in cooldown.
  /// Returns 0 for unknown names or single-address records.
  [[nodiscard]] std::size_t preferred_address(const std::string& name, TimePoint now);

  /// Reports a connection failure against `name`'s current address: demotes
  /// it for `health_cooldown` and rotates `preferred` to the next healthy
  /// record (round-robin; sticks with the least-recently-demoted one when
  /// every address is unhealthy). No-op for unknown names.
  void report_failure(const std::string& name, TimePoint now);

  [[nodiscard]] DnsCache& cache() { return cache_; }
  [[nodiscard]] const ResolverStats& stats() const { return stats_; }
  [[nodiscard]] const ResolverConfig& config() const { return config_; }

 private:
  /// Round trips to establish the query channel right now (0 if open).
  int channel_setup_rtts();
  Duration recursive_work();
  /// Stable per-name property: does this name lack an AAAA record?
  bool ipv6_absent(const std::string& name) const;
  DnsRecord make_record(const std::string& name) const;
  void issue_query(const std::string& name, std::function<void(TimePoint)> done, int attempt);

  sim::Simulator& sim_;
  ResolverConfig config_;
  util::Rng rng_;
  DnsCache cache_;
  ResolverStats stats_;
  bool channel_open_ = false;
  bool had_channel_before_ = false;  // enables DoQ 0-RTT resumption
};

}  // namespace h3cdn::dns
