// Client-side (stub) DNS cache with TTL expiry.
//
// In the measurement pipeline the cache is pre-warmed by the paper's first
// (cache-warming) visit, so measured page loads mostly see hits; the
// cold-resolution path matters for the DoQ/DoH extension experiments
// (paper §VIII-B, refs [38][44][45]).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/types.h"

namespace h3cdn::dns {

struct DnsRecord {
  std::string name;
  TimePoint resolved_at{0};
  Duration ttl = sec(300);

  [[nodiscard]] bool valid_at(TimePoint now) const { return now < resolved_at + ttl; }
};

class DnsCache {
 public:
  /// Returns the record if present and unexpired.
  [[nodiscard]] std::optional<DnsRecord> lookup(const std::string& name, TimePoint now);

  void insert(DnsRecord record);
  void clear();
  void remove_expired(TimePoint now);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<std::string, DnsRecord> records_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace h3cdn::dns
