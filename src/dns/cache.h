// Client-side (stub) DNS cache with TTL expiry.
//
// In the measurement pipeline the cache is pre-warmed by the paper's first
// (cache-warming) visit, so measured page loads mostly see hits; the
// cold-resolution path matters for the DoQ/DoH extension experiments
// (paper §VIII-B, refs [38][44][45]).
//
// Sharding contract: the cache lives inside a shard's Environment (via its
// resolver), is created by the shard and dies with it. Warm-visit state thus
// carries over to measured visits only within one (vantage, probe, mode)
// run, never across shards or pool worker threads. Like the TLS ticket
// store, it is unsynchronized on purpose; a ShardAffinity guard asserts the
// single-shard rule on every access.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/shard_affinity.h"
#include "util/types.h"

namespace h3cdn::dns {

struct DnsRecord {
  std::string name;
  TimePoint resolved_at{0};
  Duration ttl = sec(300);
  // Negative caching (RFC 2308): for names without an AAAA record the stub
  // also caches the empty answer, with its own (much shorter) TTL. Once it
  // expires, a repeat visit must re-query even though the positive A record
  // is still valid — the mechanism that makes the dns attribution phase
  // non-zero on warm-resolver repeat visits.
  bool has_negative = false;
  TimePoint negative_resolved_at{0};
  Duration negative_ttl{0};
  // Multi-record answers with per-record health (docs/RESILIENCE.md): an
  // answer can carry several A records; `preferred` indexes the one dials
  // use, and a record demoted by a connection failure is skipped until its
  // `unhealthy_until` deadline passes. A re-query (TTL or RFC 2308 negative
  // expiry) rebuilds the record and so RESETS health state — fresh answers
  // carry no memory of the previous resolution's failures.
  std::size_t address_count = 1;
  std::size_t preferred = 0;
  std::vector<TimePoint> unhealthy_until;  // per address; <= now means healthy

  [[nodiscard]] bool valid_at(TimePoint now) const { return now < resolved_at + ttl; }
  [[nodiscard]] bool negative_valid_at(TimePoint now) const {
    return !has_negative || now < negative_resolved_at + negative_ttl;
  }
  [[nodiscard]] bool address_healthy(std::size_t index, TimePoint now) const {
    return index >= unhealthy_until.size() || unhealthy_until[index] <= now;
  }
};

class DnsCache {
 public:
  /// Returns the record if present and unexpired.
  [[nodiscard]] std::optional<DnsRecord> lookup(const std::string& name, TimePoint now);

  void insert(DnsRecord record);
  void clear();
  void remove_expired(TimePoint now);

  /// Mutable access for per-record health updates (no TTL check; returns
  /// nullptr when the name was never resolved). Does not count as a lookup.
  [[nodiscard]] DnsRecord* find(const std::string& name);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<std::string, DnsRecord> records_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // First access binds the owning shard's thread; any later access from a
  // different thread aborts (see the sharding contract above).
  util::ShardAffinity affinity_;
};

}  // namespace h3cdn::dns
