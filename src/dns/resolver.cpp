#include "dns/resolver.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "util/check.h"

namespace h3cdn::dns {

const char* to_string(DnsTransport t) {
  switch (t) {
    case DnsTransport::Do53: return "Do53";
    case DnsTransport::DoT: return "DoT";
    case DnsTransport::DoH: return "DoH";
    case DnsTransport::DoQ: return "DoQ";
  }
  return "?";
}

Resolver::Resolver(sim::Simulator& sim, ResolverConfig config, util::Rng rng)
    : sim_(sim), config_(config), rng_(rng) {
  H3CDN_EXPECTS(config_.resolver_rtt >= Duration::zero());
  H3CDN_EXPECTS(config_.query_loss_rate >= 0.0 && config_.query_loss_rate < 1.0);
}

int Resolver::channel_setup_rtts() {
  if (config_.transport == DnsTransport::Do53) return 0;  // connectionless
  if (channel_open_) return 0;
  channel_open_ = true;
  ++stats_.channels_established;
  obs::count("dns.channels_established");
  switch (config_.transport) {
    case DnsTransport::DoT:
    case DnsTransport::DoH:
      // TCP + TLS 1.3 (browsers/stubs do not use early data here either).
      return tls::handshake_rtts(tls::TransportKind::Tcp, tls::TlsVersion::Tls13,
                                 tls::HandshakeMode::Fresh);
    case DnsTransport::DoQ: {
      const bool zero_rtt = config_.channel_resumption && had_channel_before_;
      had_channel_before_ = true;
      return tls::handshake_rtts(tls::TransportKind::Quic, tls::TlsVersion::Tls13,
                                 zero_rtt ? tls::HandshakeMode::ZeroRtt
                                          : tls::HandshakeMode::Fresh);
    }
    case DnsTransport::Do53: break;
  }
  return 0;
}

Duration Resolver::recursive_work() {
  if (rng_.bernoulli(config_.recursive_cache_hit)) {
    ++stats_.recursive_cache_hits;
    obs::count("dns.recursive_cache_hits");
    return usec(200);  // cached at the recursive: lookup only
  }
  return from_ms(rng_.lognormal_median(to_ms(config_.auth_lookup_median),
                                       config_.auth_lookup_sigma));
}

void Resolver::issue_query(const std::string& name, std::function<void(TimePoint)> done,
                           int attempt) {
  // Query message loss: encrypted transports recover via their reliable
  // channel (~1 extra RTT); plain UDP waits for the stub's retry timer.
  if (rng_.bernoulli(config_.query_loss_rate)) {
    ++stats_.retries;
    obs::count("dns.retries");
    const Duration penalty = config_.transport == DnsTransport::Do53
                                 ? config_.udp_timeout
                                 : config_.resolver_rtt;
    sim_.schedule_in(penalty, [this, name, done = std::move(done), attempt]() mutable {
      issue_query(name, std::move(done), attempt + 1);
    });
    return;
  }

  const Duration setup =
      Duration{config_.resolver_rtt.count() * channel_setup_rtts()};
  const Duration total = setup + config_.resolver_rtt + recursive_work();
  sim_.schedule_in(total, [this, name, done = std::move(done)] {
    cache_.insert(make_record(name));
    done(sim_.now());
  });
}

bool Resolver::ipv6_absent(const std::string& name) const {
  // fork() derives a child seed without consuming parent state, so this is a
  // pure, deterministic function of (resolver seed, name).
  return rng_.fork("aaaa").fork(name).bernoulli(config_.ipv6_absent_fraction);
}

DnsRecord Resolver::make_record(const std::string& name) const {
  DnsRecord record;
  record.name = name;
  record.resolved_at = sim_.now();
  record.ttl = config_.record_ttl;
  if (config_.ipv6_absent_fraction > 0.0 && ipv6_absent(name)) {
    record.has_negative = true;
    record.negative_resolved_at = sim_.now();
    record.negative_ttl = config_.negative_ttl;
  }
  record.address_count = std::max<std::size_t>(config_.addresses_per_record, 1);
  record.preferred = 0;
  record.unhealthy_until.assign(record.address_count, TimePoint{0});
  return record;
}

std::size_t Resolver::preferred_address(const std::string& name, TimePoint now) {
  DnsRecord* record = cache_.find(name);
  if (record == nullptr || record->address_count <= 1) return 0;
  if (record->address_healthy(record->preferred, now)) return record->preferred;
  // Preferred is cooling down: scan forward for a recovered address.
  for (std::size_t i = 1; i < record->address_count; ++i) {
    const std::size_t candidate = (record->preferred + i) % record->address_count;
    if (record->address_healthy(candidate, now)) {
      record->preferred = candidate;
      return candidate;
    }
  }
  return record->preferred;  // all cooling down; stick with the current one
}

void Resolver::report_failure(const std::string& name, TimePoint now) {
  DnsRecord* record = cache_.find(name);
  if (record == nullptr || record->address_count <= 1) return;
  ++stats_.failover_reports;
  obs::count("dns.failover.reports");
  obs::tl_count("dns.failover.reports", now);
  if (record->unhealthy_until.size() < record->address_count) {
    record->unhealthy_until.resize(record->address_count, TimePoint{0});
  }
  record->unhealthy_until[record->preferred] = now + config_.health_cooldown;
  for (std::size_t i = 1; i < record->address_count; ++i) {
    const std::size_t candidate = (record->preferred + i) % record->address_count;
    if (record->address_healthy(candidate, now)) {
      record->preferred = candidate;
      ++stats_.failover_switches;
      obs::count("dns.failover.switches");
      obs::tl_count("dns.failover.switches", now);
      return;
    }
  }
  // Every address is in cooldown: move to the one recovering soonest so the
  // next dial has the best chance of landing on a healthy path.
  std::size_t best = record->preferred;
  for (std::size_t i = 0; i < record->address_count; ++i) {
    if (record->unhealthy_until[i] < record->unhealthy_until[best]) best = i;
  }
  if (best != record->preferred) {
    record->preferred = best;
    ++stats_.failover_switches;
    obs::count("dns.failover.switches");
    obs::tl_count("dns.failover.switches", now);
  }
}

void Resolver::resolve(const std::string& name, std::function<void(TimePoint)> done) {
  H3CDN_EXPECTS(done != nullptr);
  ++stats_.queries;
  obs::count("dns.queries");
  obs::tl_count("dns.queries", sim_.now());
  if (const auto record = cache_.lookup(name, sim_.now())) {
    if (record->negative_valid_at(sim_.now())) {
      ++stats_.stub_cache_hits;
      obs::count("dns.stub_cache_hits");
      sim_.schedule_in(Duration::zero(), [this, done = std::move(done)] { done(sim_.now()); });
      return;
    }
    // The positive record is valid but the negative (no-AAAA) answer has
    // expired: the dual-stack query pair must go out again (RFC 2308).
    ++stats_.negative_expiries;
    obs::count("dns.negative_expiries");
    obs::tl_count("dns.negative_expiries", sim_.now());
  }
  if (obs::enabled() || obs::TimelineRecorder::global() != nullptr) {
    // Wrap the callback to record end-to-end resolve latency (cold path only;
    // the stub-cache hit above is instantaneous).
    const TimePoint started = sim_.now();
    done = [started, done = std::move(done)](TimePoint at) {
      obs::observe_ms("dns.resolve_ms", at - started);
      obs::tl_observe_ms("dns.resolve_ms", started, at - started);
      done(at);
    };
  }
  issue_query(name, std::move(done), 0);
}

void Resolver::prewarm(const std::string& name) {
  // Do not clobber a still-fully-valid record: repeated warm-ups must not
  // push negative-cache expiry ever further into the future.
  if (const auto existing = cache_.lookup(name, sim_.now());
      existing && existing->negative_valid_at(sim_.now())) {
    return;
  }
  cache_.insert(make_record(name));
}

void Resolver::drop_channel() { channel_open_ = false; }

}  // namespace h3cdn::dns
