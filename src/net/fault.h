// Network fault injection: bursty (Gilbert-Elliott) loss, scheduled link
// outages (hard blackouts and UDP-only blackholes), and transient RTT-spike
// episodes.
//
// The baseline Link models netem-style i.i.d. Bernoulli loss, which is what
// the paper's Fig. 9 experiments inject. Real CDN paths misbehave in richer
// ways: loss arrives in bursts (Gilbert-Elliott is the standard two-state
// model for it), middleboxes silently blackhole UDP while TCP still flows
// (the failure mode Chrome's H3->H2 fallback exists for), links go hard down
// for a while, and bufferbloat/rerouting causes transient RTT spikes. A
// FaultInjector attaches to a Link and layers these on top of the baseline
// Bernoulli model. Every draw comes from a dedicated deterministic Rng
// stream, so paired A/B runs see byte-identical fault schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace h3cdn::net {

/// Transport class of a packet, as seen by middleboxes. QUIC connections tag
/// everything they send (data, handshake, ACKs) as Udp; TCP connections as
/// Tcp. UDP-only blackholes drop the former and pass the latter.
enum class PacketClass { Tcp, Udp };

/// Why a packet was dropped (LinkStats breakdown + trace events).
enum class DropReason {
  None,       // delivered
  Bernoulli,  // i.i.d. draw (Link's baseline loss or the GE good state)
  Burst,      // Gilbert-Elliott bad-state draw
  Outage,     // scheduled blackout / UDP blackhole interval
};

const char* to_string(DropReason r);

/// Two-state Markov loss model (Gilbert-Elliott). The chain transitions once
/// per offered packet; each state has its own drop probability. The classic
/// Gilbert special case is loss_good = 0, loss_bad = 1.
struct GilbertElliottConfig {
  bool enabled = false;
  double p_good_to_bad = 0.0;  // per-packet transition probability
  double p_bad_to_good = 1.0;
  double loss_good = 0.0;  // drop probability while in Good
  double loss_bad = 1.0;   // drop probability while in Bad

  /// Stationary average loss rate of the chain.
  [[nodiscard]] double average_loss() const;

  /// Classic Gilbert parameterization from a target average loss rate and a
  /// mean burst length in packets (the expected Bad-state dwell time).
  /// Requires 0 <= average < 1 and mean_burst_packets >= 1.
  static GilbertElliottConfig from_average(double average, double mean_burst_packets);

  /// Degenerate single-state chain: i.i.d. Bernoulli at `rate` routed through
  /// the injector (lets experiments compare Bernoulli vs bursty loss at equal
  /// average rate through the exact same code path and Rng stream).
  static GilbertElliottConfig bernoulli(double rate);
};

enum class OutageKind {
  Hard,          // everything on the link is dropped, TCP and UDP alike
  UdpBlackhole,  // only PacketClass::Udp traffic is dropped (QUIC blackhole)
};

/// A scheduled down interval [start, start + duration).
struct Outage {
  TimePoint start{0};
  Duration duration{0};
  OutageKind kind = OutageKind::Hard;

  [[nodiscard]] bool covers(TimePoint t) const {
    return t >= start && t < start + duration;
  }
};

/// A transient latency episode: packets offered inside [start, start +
/// duration) incur `extra_delay` of additional one-way latency.
struct RttSpike {
  TimePoint start{0};
  Duration duration{0};
  Duration extra_delay{0};

  [[nodiscard]] bool covers(TimePoint t) const {
    return t >= start && t < start + duration;
  }
};

/// Everything a link can be afflicted with. Plain data: profiles are built by
/// experiment configs and handed to links/paths/environments.
struct FaultProfile {
  GilbertElliottConfig gilbert_elliott;
  std::vector<Outage> outages;
  std::vector<RttSpike> rtt_spikes;

  [[nodiscard]] bool empty() const {
    return !gilbert_elliott.enabled && outages.empty() && rtt_spikes.empty();
  }
};

/// Per-link fault decision engine. One injector serves one Link (one
/// direction); NetPath forks one per direction from a single profile so the
/// burst chains of the two directions stay independent streams.
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, util::Rng rng);

  struct Verdict {
    DropReason drop = DropReason::None;
    Duration extra_delay{0};  // RTT-spike contribution (when delivered)
  };

  /// Decides the fate of one offered packet at simulated time `now`.
  /// `lossless` packets (the reliable out-of-band control model) are exempt
  /// from stochastic loss but NOT from outages: a dead link delivers nothing,
  /// and a UDP blackhole eats a QUIC connection's ACKs like any other datagram.
  Verdict apply(TimePoint now, PacketClass pclass, bool lossless);

  void add_outage(const Outage& outage) { profile_.outages.push_back(outage); }
  void add_rtt_spike(const RttSpike& spike) { profile_.rtt_spikes.push_back(spike); }

  [[nodiscard]] const FaultProfile& profile() const { return profile_; }
  [[nodiscard]] bool in_bad_state() const { return ge_bad_; }

 private:
  FaultProfile profile_;
  util::Rng rng_;
  bool ge_bad_ = false;
};

}  // namespace h3cdn::net
