// Named access-link presets for study and chaos scenarios.
//
// A LinkProfile bundles the access-side path parameters (bandwidth, latency,
// jitter, an RTT scale) with a FaultProfile so a whole last-mile regime can
// be selected by name from the CLI (`h3cdn_study --link-profile cellular`).
// The cellular preset follows the lossy-cellular characterization used by
// the domain-sharding study (arXiv 1707.05836): bursty (Gilbert-Elliott)
// loss in the low-percent range with multi-packet bursts, tens of
// milliseconds of extra latency, and strong RTT variability.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/fault.h"
#include "util/types.h"

namespace h3cdn::net {

struct LinkProfile {
  std::string name = "wired";
  double access_bandwidth_bps = 400e6;  // last-mile capacity
  double access_latency_ms = 1.0;       // one-way access latency
  double jitter_ms = 1.2;               // per-packet delay jitter amplitude
  double rtt_scale = 1.0;               // multiplies provider base RTTs
  double baseline_loss_rate = 0.0005;   // i.i.d. floor on the wide-area path
  FaultProfile fault;                   // layered on the access link

  /// The default last-mile: fast, low-jitter, loss floor only.
  static LinkProfile wired();

  /// Bursty lossy cellular (arXiv 1707.05836): ~1.5% average loss arriving
  /// in ~6-packet bursts, ~20 Mbit/s, tens of ms of access latency, high
  /// jitter, scaled-up RTTs, and periodic RTT spike episodes.
  static LinkProfile cellular();

  /// Looks a profile up by name ("wired" | "cellular"); nullopt for unknown.
  static std::optional<LinkProfile> from_name(const std::string& name);

  /// Names accepted by from_name, for CLI help and error messages.
  static std::vector<std::string> names();
};

}  // namespace h3cdn::net
