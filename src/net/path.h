// A bidirectional client<->server network path: two independent Links.
// Connections (TCP or QUIC) ride on exactly one NetPath.
#pragma once

#include <memory>

#include "net/link.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/types.h"

namespace h3cdn::net {

struct PathConfig {
  Duration rtt = msec(30);          // base round-trip (split evenly per direction)
  double bandwidth_bps = 100e6;     // both directions
  double loss_rate = 0.0;           // both directions
  Duration jitter_max = usec(0);    // both directions
};

/// Owns the uplink (client->server) and downlink (server->client).
///
/// A path may additionally be chained through a shared client *access link*
/// pair (the probe's NIC / last-mile): every packet then serializes on the
/// per-path link AND the shared access link. This is where the probe-wide
/// netem loss of the paper's Fig. 9 experiments naturally lives, and it
/// couples concurrent connections through a common bottleneck.
class NetPath {
 public:
  NetPath(sim::Simulator& sim, PathConfig config, util::Rng rng);

  [[nodiscard]] Link& uplink() { return *up_; }
  [[nodiscard]] Link& downlink() { return *down_; }
  [[nodiscard]] const Link& uplink() const { return *up_; }
  [[nodiscard]] const Link& downlink() const { return *down_; }

  /// Chains the shared access links (not owned; may be null). `access_up`
  /// carries client->server traffic, `access_down` server->client.
  void attach_access(Link* access_up, Link* access_down);

  /// Sends one packet client->server through (access uplink ->) path uplink.
  /// `pclass` is the transport class (QUIC connections tag everything Udp);
  /// it is forwarded to every link on the way, access links included.
  void send_up(std::size_t size_bytes, std::function<void()> on_deliver,
               bool lossless = false, PacketClass pclass = PacketClass::Tcp);

  /// Sends one packet server->client through path downlink (-> access downlink).
  void send_down(std::size_t size_bytes, std::function<void()> on_deliver,
                 bool lossless = false, PacketClass pclass = PacketClass::Tcp);

  /// Base round-trip time (propagation only, no serialization/jitter).
  [[nodiscard]] Duration base_rtt() const { return config_.rtt; }

  [[nodiscard]] const PathConfig& config() const { return config_; }

  void set_loss_rate(double loss_rate);

  /// Installs the same fault profile on both directions, with independent
  /// per-direction Rng streams ("fault-up" / "fault-down") so the burst
  /// chains of the two directions are decoupled.
  void set_fault_profile(const FaultProfile& profile, util::Rng rng);

  /// Adds a scheduled outage to both directions (installing empty-profile
  /// injectors first if none are present).
  void add_outage(const Outage& outage);

  /// Re-salts the jitter streams of both links (see Link::reseed_jitter).
  void reseed_jitter(std::uint64_t salt);

 private:
  PathConfig config_;
  util::Rng fault_rng_;  // seeds lazily-created injectors (add_outage)
  std::unique_ptr<Link> up_;
  std::unique_ptr<Link> down_;
  Link* access_up_ = nullptr;    // not owned
  Link* access_down_ = nullptr;  // not owned
};

}  // namespace h3cdn::net
