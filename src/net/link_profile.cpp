#include "net/link_profile.h"

namespace h3cdn::net {

LinkProfile LinkProfile::wired() { return LinkProfile{}; }

LinkProfile LinkProfile::cellular() {
  LinkProfile p;
  p.name = "cellular";
  p.access_bandwidth_bps = 20e6;
  p.access_latency_ms = 25.0;
  p.jitter_ms = 8.0;
  p.rtt_scale = 1.8;
  p.baseline_loss_rate = 0.0;  // loss comes from the burst chain instead
  p.fault.gilbert_elliott = GilbertElliottConfig::from_average(0.015, 6.0);
  // Handover / bufferbloat episodes: a few hundred ms of strongly inflated
  // delay every couple of simulated minutes.
  p.fault.rtt_spikes.push_back(RttSpike{sec(45), msec(400), msec(120)});
  p.fault.rtt_spikes.push_back(RttSpike{sec(150), msec(400), msec(120)});
  return p;
}

std::optional<LinkProfile> LinkProfile::from_name(const std::string& name) {
  if (name.empty() || name == "wired") return wired();
  if (name == "cellular") return cellular();
  return std::nullopt;
}

std::vector<std::string> LinkProfile::names() { return {"wired", "cellular"}; }

}  // namespace h3cdn::net
