// Unidirectional network link with propagation delay, serialization
// (bandwidth), optional jitter, and i.i.d. Bernoulli packet loss.
//
// The paper injects loss with Linux Traffic Control (tc/netem) on the probe
// machines; netem's default loss model is exactly i.i.d. Bernoulli per packet,
// which is what this class implements. Richer fault mechanisms (bursty loss,
// outages, RTT spikes) attach via an optional net::FaultInjector.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/fault.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "util/types.h"

namespace h3cdn::net {

struct LinkConfig {
  Duration latency = msec(10);       // one-way propagation delay
  double bandwidth_bps = 100e6;      // serialization rate; <=0 means infinite
  double loss_rate = 0.0;            // per-packet drop probability in [0,1]
  Duration jitter_max = usec(0);     // uniform extra delay in [0, jitter_max]
};

/// Per-link counters, exposed for tests and telemetry. `packets_dropped` is
/// the sum of the per-mechanism breakdown.
struct LinkStats {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t bytes_offered = 0;
  std::uint64_t dropped_bernoulli = 0;  // i.i.d. draws (baseline or GE Good state)
  std::uint64_t dropped_burst = 0;      // Gilbert-Elliott Bad-state draws
  std::uint64_t dropped_outage = 0;     // scheduled blackout / UDP blackhole
};

/// One direction of a network path. Delivery callbacks fire on the owning
/// Simulator at (serialization end + latency + jitter); drops simply never
/// deliver. FIFO is preserved when jitter is zero because serialization
/// completion times are monotone.
class Link {
 public:
  Link(sim::Simulator& sim, LinkConfig config, util::Rng rng);

  /// Re-derives the jitter stream with a salt, leaving the loss stream
  /// untouched. Paired A/B experiments share loss realizations (so identical
  /// traffic sees identical drops and cancels exactly) while per-visit jitter
  /// stays independent noise.
  void reseed_jitter(std::uint64_t salt);

  /// Queues one packet of `size_bytes`. If `lossless` is true the stochastic
  /// drops are skipped (used for modelling reliable out-of-band signals only;
  /// all data and handshake packets go through the lossy path) — scheduled
  /// outages still apply, a dead link delivers nothing. `pclass` is the
  /// transport class middleboxes see: UDP blackholes drop only
  /// PacketClass::Udp traffic.
  void transmit(std::size_t size_bytes, std::function<void()> on_deliver,
                bool lossless = false, PacketClass pclass = PacketClass::Tcp);

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }

  /// Replaces the loss rate mid-run (used by loss-sweep experiments). Asserts
  /// on NaN or genuinely out-of-range values; floating-point overshoot within
  /// 1e-6 of the [0,1] boundary (e.g. `baseline + injected` sums) is clamped.
  void set_loss_rate(double loss_rate);

  /// Installs (or replaces) the fault injector for this link direction.
  void set_fault_profile(const FaultProfile& profile, util::Rng rng);

  /// The installed injector, or nullptr. Non-const so experiments can add
  /// outages/spikes mid-run.
  [[nodiscard]] FaultInjector* fault_injector() { return fault_.get(); }

  /// Attaches a trace sink: every drop records a LinkDropped event tagged
  /// with the responsible fault mechanism.
  void set_trace(std::shared_ptr<trace::ConnectionTrace> trace) { trace_ = std::move(trace); }

 private:
  sim::Simulator& sim_;
  LinkConfig config_;
  util::Rng loss_rng_;
  util::Rng jitter_rng_;
  std::unique_ptr<FaultInjector> fault_;
  std::shared_ptr<trace::ConnectionTrace> trace_;
  TimePoint next_free_{0};      // when the serializer becomes idle
  TimePoint last_arrival_{0};   // FIFO guarantee: deliveries never reorder
  LinkStats stats_;
};

}  // namespace h3cdn::net
