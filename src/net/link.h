// Unidirectional network link with propagation delay, serialization
// (bandwidth), optional jitter, and i.i.d. Bernoulli packet loss.
//
// The paper injects loss with Linux Traffic Control (tc/netem) on the probe
// machines; netem's default loss model is exactly i.i.d. Bernoulli per packet,
// which is what this class implements.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulator.h"
#include "util/rng.h"
#include "util/types.h"

namespace h3cdn::net {

struct LinkConfig {
  Duration latency = msec(10);       // one-way propagation delay
  double bandwidth_bps = 100e6;      // serialization rate; <=0 means infinite
  double loss_rate = 0.0;            // per-packet drop probability in [0,1]
  Duration jitter_max = usec(0);     // uniform extra delay in [0, jitter_max]
};

/// Per-link counters, exposed for tests and telemetry.
struct LinkStats {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t bytes_offered = 0;
};

/// One direction of a network path. Delivery callbacks fire on the owning
/// Simulator at (serialization end + latency + jitter); drops simply never
/// deliver. FIFO is preserved when jitter is zero because serialization
/// completion times are monotone.
class Link {
 public:
  Link(sim::Simulator& sim, LinkConfig config, util::Rng rng);

  /// Re-derives the jitter stream with a salt, leaving the loss stream
  /// untouched. Paired A/B experiments share loss realizations (so identical
  /// traffic sees identical drops and cancels exactly) while per-visit jitter
  /// stays independent noise.
  void reseed_jitter(std::uint64_t salt);

  /// Queues one packet of `size_bytes`. If `lossless` is true the Bernoulli
  /// drop is skipped (used for modelling reliable out-of-band signals only;
  /// all data and handshake packets go through the lossy path).
  void transmit(std::size_t size_bytes, std::function<void()> on_deliver,
                bool lossless = false);

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }

  /// Replaces the loss rate mid-run (used by loss-sweep experiments).
  void set_loss_rate(double loss_rate);

 private:
  sim::Simulator& sim_;
  LinkConfig config_;
  util::Rng loss_rng_;
  util::Rng jitter_rng_;
  TimePoint next_free_{0};      // when the serializer becomes idle
  TimePoint last_arrival_{0};   // FIFO guarantee: deliveries never reorder
  LinkStats stats_;
};

}  // namespace h3cdn::net
