#include "net/fault.h"

#include <cmath>

#include "util/check.h"

namespace h3cdn::net {

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::None: return "none";
    case DropReason::Bernoulli: return "bernoulli";
    case DropReason::Burst: return "burst";
    case DropReason::Outage: return "outage";
  }
  return "?";
}

double GilbertElliottConfig::average_loss() const {
  if (!enabled) return 0.0;
  // Stationary distribution of the two-state chain: pi_bad = p / (p + r).
  const double denom = p_good_to_bad + p_bad_to_good;
  if (denom <= 0.0) return loss_good;  // absorbing Good state
  const double pi_bad = p_good_to_bad / denom;
  return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
}

GilbertElliottConfig GilbertElliottConfig::from_average(double average,
                                                        double mean_burst_packets) {
  H3CDN_EXPECTS(average >= 0.0 && average < 1.0);
  H3CDN_EXPECTS(mean_burst_packets >= 1.0);
  GilbertElliottConfig c;
  c.enabled = true;
  c.loss_good = 0.0;
  c.loss_bad = 1.0;
  // Bad-state dwell is geometric with mean 1/r packets.
  c.p_bad_to_good = 1.0 / mean_burst_packets;
  // Solve pi_bad = p / (p + r) = average for p.
  c.p_good_to_bad = average >= 1.0 ? 1.0 : average * c.p_bad_to_good / (1.0 - average);
  return c;
}

GilbertElliottConfig GilbertElliottConfig::bernoulli(double rate) {
  H3CDN_EXPECTS(rate >= 0.0 && rate <= 1.0);
  GilbertElliottConfig c;
  c.enabled = true;
  c.loss_good = rate;
  c.loss_bad = rate;
  c.p_good_to_bad = 0.0;
  c.p_bad_to_good = 1.0;
  return c;
}

FaultInjector::FaultInjector(FaultProfile profile, util::Rng rng)
    : profile_(std::move(profile)), rng_(rng) {
  const auto& ge = profile_.gilbert_elliott;
  H3CDN_EXPECTS(ge.p_good_to_bad >= 0.0 && ge.p_good_to_bad <= 1.0);
  H3CDN_EXPECTS(ge.p_bad_to_good >= 0.0 && ge.p_bad_to_good <= 1.0);
  H3CDN_EXPECTS(ge.loss_good >= 0.0 && ge.loss_good <= 1.0);
  H3CDN_EXPECTS(ge.loss_bad >= 0.0 && ge.loss_bad <= 1.0);
  for (const auto& o : profile_.outages) H3CDN_EXPECTS(o.duration >= Duration::zero());
  for (const auto& s : profile_.rtt_spikes) {
    H3CDN_EXPECTS(s.duration >= Duration::zero());
    H3CDN_EXPECTS(s.extra_delay >= Duration::zero());
  }
}

FaultInjector::Verdict FaultInjector::apply(TimePoint now, PacketClass pclass, bool lossless) {
  Verdict v;

  // Outages dominate every other mechanism: a down link delivers nothing,
  // regardless of the packet's loss exemptions (ACKs are "reliable" only in
  // the sense of not being subject to stochastic loss — they still need a
  // live link under them, and a UDP blackhole eats QUIC ACKs too).
  for (const auto& o : profile_.outages) {
    if (!o.covers(now)) continue;
    if (o.kind == OutageKind::Hard || pclass == PacketClass::Udp) {
      v.drop = DropReason::Outage;
      return v;
    }
  }

  // Gilbert-Elliott: transition the chain once per offered lossy packet, then
  // draw in the current state. Lossless control packets neither advance nor
  // sample the chain, so adding ACK traffic never perturbs the data-packet
  // loss realization (the common-random-numbers property paired runs rely on).
  if (profile_.gilbert_elliott.enabled && !lossless) {
    const auto& ge = profile_.gilbert_elliott;
    ge_bad_ = rng_.bernoulli(ge_bad_ ? 1.0 - ge.p_bad_to_good : ge.p_good_to_bad);
    const double p = ge_bad_ ? ge.loss_bad : ge.loss_good;
    if (p > 0.0 && rng_.bernoulli(p)) {
      v.drop = ge_bad_ ? DropReason::Burst : DropReason::Bernoulli;
      return v;
    }
  }

  for (const auto& s : profile_.rtt_spikes) {
    if (s.covers(now)) v.extra_delay += s.extra_delay;
  }
  return v;
}

}  // namespace h3cdn::net
