#include "net/link.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace h3cdn::net {

Link::Link(sim::Simulator& sim, LinkConfig config, util::Rng rng)
    : sim_(sim), config_(config), loss_rng_(rng.fork("loss")), jitter_rng_(rng.fork("jitter")) {
  H3CDN_EXPECTS(config_.loss_rate >= 0.0 && config_.loss_rate <= 1.0);
  H3CDN_EXPECTS(config_.latency >= Duration::zero());
}

void Link::reseed_jitter(std::uint64_t salt) { jitter_rng_ = jitter_rng_.fork(salt); }

void Link::transmit(std::size_t size_bytes, std::function<void()> on_deliver, bool lossless) {
  H3CDN_EXPECTS(on_deliver != nullptr);
  ++stats_.packets_offered;
  stats_.bytes_offered += size_bytes;

  // Serialization: the link transmits packets back to back at bandwidth_bps.
  Duration tx_time{0};
  if (config_.bandwidth_bps > 0.0) {
    tx_time = from_sec(static_cast<double>(size_bytes) * 8.0 / config_.bandwidth_bps);
  }
  const TimePoint start = std::max(sim_.now(), next_free_);
  next_free_ = start + tx_time;

  // Loss is decided at enqueue so the RNG draw order is deterministic, but a
  // dropped packet still occupies the serializer (it left the sender).
  const bool dropped = !lossless && loss_rng_.bernoulli(config_.loss_rate);
  if (dropped) {
    ++stats_.packets_dropped;
    return;
  }

  Duration jitter{0};
  if (config_.jitter_max > Duration::zero()) {
    jitter = Duration{jitter_rng_.uniform_int(0, config_.jitter_max.count())};
  }
  // FIFO: a store-and-forward queue cannot reorder, so jitter delays but
  // never lets a later packet overtake an earlier one. (Without this, jitter
  // fakes reordering and triggers spurious packet-threshold "losses".)
  const TimePoint arrival = std::max(next_free_ + config_.latency + jitter, last_arrival_);
  last_arrival_ = arrival;
  ++stats_.packets_delivered;
  sim_.schedule_at(arrival, std::move(on_deliver));
}

void Link::set_loss_rate(double loss_rate) {
  H3CDN_EXPECTS(loss_rate >= 0.0 && loss_rate <= 1.0);
  config_.loss_rate = loss_rate;
}

}  // namespace h3cdn::net
