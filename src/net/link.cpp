#include "net/link.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/check.h"

namespace h3cdn::net {

namespace {

// Clamp small floating-point overshoot of [0,1] (e.g. `baseline + injected`
// rate sums) but refuse NaN and genuinely out-of-range values.
double checked_loss_rate(double loss_rate) {
  H3CDN_EXPECTS(!std::isnan(loss_rate));
  H3CDN_EXPECTS(loss_rate >= -1e-6 && loss_rate <= 1.0 + 1e-6);
  return std::clamp(loss_rate, 0.0, 1.0);
}

trace::FaultKind fault_kind_of(DropReason reason) {
  switch (reason) {
    case DropReason::Bernoulli: return trace::FaultKind::Bernoulli;
    case DropReason::Burst: return trace::FaultKind::Burst;
    case DropReason::Outage: return trace::FaultKind::Outage;
    case DropReason::None: break;
  }
  return trace::FaultKind::None;
}

}  // namespace

Link::Link(sim::Simulator& sim, LinkConfig config, util::Rng rng)
    : sim_(sim), config_(config), loss_rng_(rng.fork("loss")), jitter_rng_(rng.fork("jitter")) {
  config_.loss_rate = checked_loss_rate(config_.loss_rate);
  H3CDN_EXPECTS(config_.latency >= Duration::zero());
}

void Link::reseed_jitter(std::uint64_t salt) { jitter_rng_ = jitter_rng_.fork(salt); }

void Link::transmit(std::size_t size_bytes, std::function<void()> on_deliver, bool lossless,
                    PacketClass pclass) {
  H3CDN_EXPECTS(on_deliver != nullptr);
  obs::ProfileScope profile("net.link.transmit");
  ++stats_.packets_offered;
  stats_.bytes_offered += size_bytes;
  obs::count("net.link.packets_offered");
  obs::count("net.link.bytes_offered", size_bytes);

  // Serialization: the link transmits packets back to back at bandwidth_bps.
  Duration tx_time{0};
  if (config_.bandwidth_bps > 0.0) {
    tx_time = from_sec(static_cast<double>(size_bytes) * 8.0 / config_.bandwidth_bps);
  }
  const TimePoint start = std::max(sim_.now(), next_free_);
  next_free_ = start + tx_time;

  // Drops are decided at enqueue so the RNG draw order is deterministic, but a
  // dropped packet still occupies the serializer (it left the sender). The
  // injector rules first (outages dominate, then the burst chain), then the
  // baseline Bernoulli draw — which runs whenever it did before, so a link
  // without faults replays the seed's loss realization byte for byte.
  DropReason reason = DropReason::None;
  Duration extra_delay{0};
  if (fault_) {
    const FaultInjector::Verdict verdict = fault_->apply(sim_.now(), pclass, lossless);
    reason = verdict.drop;
    extra_delay = verdict.extra_delay;
  }
  if (reason == DropReason::None && !lossless && loss_rng_.bernoulli(config_.loss_rate)) {
    reason = DropReason::Bernoulli;
  }
  if (reason != DropReason::None) {
    ++stats_.packets_dropped;
    obs::count("net.link.packets_dropped");
    switch (reason) {
      case DropReason::Bernoulli:
        ++stats_.dropped_bernoulli;
        obs::count("net.link.dropped.bernoulli");
        break;
      case DropReason::Burst:
        ++stats_.dropped_burst;
        obs::count("net.link.dropped.burst");
        break;
      case DropReason::Outage:
        ++stats_.dropped_outage;
        obs::count("net.link.dropped.outage");
        break;
      case DropReason::None: break;
    }
    if (trace_) {
      trace::Event event{sim_.now(), trace::EventType::LinkDropped};
      event.bytes = size_bytes;
      event.fault = fault_kind_of(reason);
      trace_->record(event);
    }
    return;
  }

  Duration jitter{0};
  if (config_.jitter_max > Duration::zero()) {
    jitter = Duration{jitter_rng_.uniform_int(0, config_.jitter_max.count())};
  }
  // FIFO: a store-and-forward queue cannot reorder, so jitter delays but
  // never lets a later packet overtake an earlier one. (Without this, jitter
  // fakes reordering and triggers spurious packet-threshold "losses".)
  const TimePoint arrival =
      std::max(next_free_ + config_.latency + jitter + extra_delay, last_arrival_);
  last_arrival_ = arrival;
  ++stats_.packets_delivered;
  obs::count("net.link.packets_delivered");
  obs::observe_ms("net.link.serialization_wait_ms", start - sim_.now());
  sim_.schedule_at(arrival, std::move(on_deliver));
}

void Link::set_loss_rate(double loss_rate) { config_.loss_rate = checked_loss_rate(loss_rate); }

void Link::set_fault_profile(const FaultProfile& profile, util::Rng rng) {
  fault_ = std::make_unique<FaultInjector>(profile, rng);
}

}  // namespace h3cdn::net
