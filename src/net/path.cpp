#include "net/path.h"

#include "util/check.h"

namespace h3cdn::net {

NetPath::NetPath(sim::Simulator& sim, PathConfig config, util::Rng rng)
    : config_(config), fault_rng_(rng.fork("fault")) {
  H3CDN_EXPECTS(config.rtt >= Duration::zero());
  LinkConfig link;
  link.latency = Duration{config.rtt.count() / 2};
  link.bandwidth_bps = config.bandwidth_bps;
  link.loss_rate = config.loss_rate;
  link.jitter_max = config.jitter_max;
  up_ = std::make_unique<Link>(sim, link, rng.fork("up"));
  // Keep total propagation equal to rtt even when rtt is odd.
  link.latency = config.rtt - link.latency;
  down_ = std::make_unique<Link>(sim, link, rng.fork("down"));
}

void NetPath::attach_access(Link* access_up, Link* access_down) {
  access_up_ = access_up;
  access_down_ = access_down;
}

void NetPath::send_up(std::size_t size_bytes, std::function<void()> on_deliver, bool lossless,
                      PacketClass pclass) {
  if (access_up_ == nullptr) {
    up_->transmit(size_bytes, std::move(on_deliver), lossless, pclass);
    return;
  }
  // Client NIC first, then the wide-area path.
  access_up_->transmit(
      size_bytes,
      [this, size_bytes, cb = std::move(on_deliver), lossless, pclass]() mutable {
        up_->transmit(size_bytes, std::move(cb), lossless, pclass);
      },
      lossless, pclass);
}

void NetPath::send_down(std::size_t size_bytes, std::function<void()> on_deliver,
                        bool lossless, PacketClass pclass) {
  if (access_down_ == nullptr) {
    down_->transmit(size_bytes, std::move(on_deliver), lossless, pclass);
    return;
  }
  down_->transmit(
      size_bytes,
      [this, size_bytes, cb = std::move(on_deliver), lossless, pclass]() mutable {
        access_down_->transmit(size_bytes, std::move(cb), lossless, pclass);
      },
      lossless, pclass);
}

void NetPath::set_loss_rate(double loss_rate) {
  config_.loss_rate = loss_rate;
  up_->set_loss_rate(loss_rate);
  down_->set_loss_rate(loss_rate);
}

void NetPath::set_fault_profile(const FaultProfile& profile, util::Rng rng) {
  up_->set_fault_profile(profile, rng.fork("fault-up"));
  down_->set_fault_profile(profile, rng.fork("fault-down"));
}

void NetPath::add_outage(const Outage& outage) {
  if (up_->fault_injector() == nullptr) {
    up_->set_fault_profile(FaultProfile{}, fault_rng_.fork("fault-up"));
  }
  if (down_->fault_injector() == nullptr) {
    down_->set_fault_profile(FaultProfile{}, fault_rng_.fork("fault-down"));
  }
  up_->fault_injector()->add_outage(outage);
  down_->fault_injector()->add_outage(outage);
}

void NetPath::reseed_jitter(std::uint64_t salt) {
  up_->reseed_jitter(salt);
  down_->reseed_jitter(salt);
}

}  // namespace h3cdn::net
