#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace h3cdn::util {

void JsonWriter::pre_value() {
  if (!stack_.empty() && !expecting_value_) {
    H3CDN_EXPECTS(stack_.back() == Ctx::Array);  // bare value only valid in array
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
  expecting_value_ = false;
}

void JsonWriter::escape_into(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back(Ctx::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  H3CDN_EXPECTS(!stack_.empty() && stack_.back() == Ctx::Object && !expecting_value_);
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back(Ctx::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  H3CDN_EXPECTS(!stack_.empty() && stack_.back() == Ctx::Array && !expecting_value_);
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  H3CDN_EXPECTS(!stack_.empty() && stack_.back() == Ctx::Object && !expecting_value_);
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  escape_into(k);
  out_ += ':';
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  escape_into(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string_view{v}); }

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (std::isfinite(v)) {
    // 15 significant digits: enough that additive invariants (e.g. a
    // waterfall entry's total equals the sum of its parsed phases) survive
    // the round-trip for any simulated-milliseconds magnitude; %.6g lost
    // sub-0.01 ms precision once values crossed 1000 and broke them.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.15g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  H3CDN_EXPECTS(stack_.empty());
  return out_;
}

}  // namespace h3cdn::util
