// Descriptive statistics and distribution-series builders used throughout the
// analysis pipeline (Figs. 3, 5, 6b of the paper are CCDF/CDF plots; every
// table reports means/medians).
#pragma once

#include <cstddef>
#include <vector>

namespace h3cdn::util {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1); 0 for n < 2
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes a Summary. Returns a zeroed Summary for an empty sample.
Summary summarize(std::vector<double> values);

/// Linear-interpolated quantile of a sample; q in [0,1]. Sorts a copy.
double quantile(std::vector<double> values, double q);

/// Quantile of an already-sorted sample (ascending); q in [0,1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// One point of an empirical distribution curve.
struct DistPoint {
  double x = 0.0;  // sample value
  double y = 0.0;  // P(X <= x) for CDF, P(X > x) for CCDF
};

/// Empirical CDF: one point per distinct sorted sample value.
std::vector<DistPoint> cdf(std::vector<double> values);

/// Complementary CDF, as plotted in the paper's Figs. 3 and 5.
std::vector<DistPoint> ccdf(std::vector<double> values);

/// Fraction of samples strictly greater than `threshold` (a CCDF readout,
/// e.g. "75% of webpages have exceeded 50% CDN resources").
double fraction_above(const std::vector<double>& values, double threshold);

/// Fraction of samples <= threshold.
double fraction_at_or_below(const std::vector<double>& values, double threshold);

/// Equal-width histogram over [lo, hi); values outside are clamped to the
/// first/last bin. Returns per-bin counts.
std::vector<std::size_t> histogram(const std::vector<double>& values, double lo, double hi,
                                   std::size_t bins);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Mean of a sample (0 for empty).
double mean(const std::vector<double>& values);

/// Median of a sample (0 for empty). Sorts a copy.
double median(std::vector<double> values);

}  // namespace h3cdn::util
