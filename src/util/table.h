// ASCII table rendering for the benchmark harness. Every bench binary prints
// the paper's table/figure as aligned text via this helper so outputs are
// uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace h3cdn::util {

/// A simple right-padded ASCII table with a header row and a separator line.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends one row; the row may have fewer cells than the header (missing
  /// cells render empty) but not more.
  void add_row(std::vector<std::string> row);

  /// Renders with column widths fitted to content. `indent` spaces prefix
  /// each line.
  [[nodiscard]] std::string to_string(int indent = 0) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string fmt(double v, int digits = 2);

/// Formats a fraction as a percentage string with one decimal, e.g. "67.0%".
std::string fmt_pct(double fraction, int digits = 1);

}  // namespace h3cdn::util
