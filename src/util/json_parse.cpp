#include "util/json_parse.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace h3cdn::util {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key, std::string fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(JsonParseError* error) {
    skip_ws();
    auto value = parse_value();
    if (!value) {
      fill(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      fill(error);
      return std::nullopt;
    }
    return value;
  }

 private:
  void fill(JsonParseError* error) const {
    if (error != nullptr) {
      error->message = message_;
      error->offset = error_pos_;
    }
  }

  void fail(const std::string& message) {
    if (message_.empty()) {
      message_ = message;
      error_pos_ = pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  char take() { return text_[pos_++]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }

  bool expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
      return false;
    }
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
      return false;
    }
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> parse_value() {
    if (eof()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return JsonValue(std::move(*s));
      }
      case 't': return literal("true") ? std::optional<JsonValue>(JsonValue(true)) : std::nullopt;
      case 'f':
        return literal("false") ? std::optional<JsonValue>(JsonValue(false)) : std::nullopt;
      case 'n':
        return literal("null") ? std::optional<JsonValue>(JsonValue(nullptr)) : std::nullopt;
      default: return parse_number();
    }
  }

  std::optional<JsonValue> parse_object() {
    if (!expect('{')) return std::nullopt;
    JsonObject obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!expect(':')) return std::nullopt;
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      obj.emplace(std::move(*key), std::move(*value));
      skip_ws();
      if (eof()) {
        fail("unterminated object");
        return std::nullopt;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return JsonValue(std::move(obj));
      }
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array() {
    if (!expect('[')) return std::nullopt;
    JsonArray arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      arr.push_back(std::move(*value));
      skip_ws();
      if (eof()) {
        fail("unterminated array");
        return std::nullopt;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return JsonValue(std::move(arr));
      }
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!expect('"')) return std::nullopt;
    std::string out;
    while (true) {
      if (eof()) {
        fail("unterminated string");
        return std::nullopt;
      }
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) {
        fail("dangling escape");
        return std::nullopt;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("invalid \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode the BMP code point (surrogates pass through as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
          return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
      return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      fail("malformed number");
      pos_ = start;
      return std::nullopt;
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
  std::size_t error_pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, JsonParseError* error) {
  return Parser(text).run(error);
}

}  // namespace h3cdn::util
