// Fixed-size worker pool for shard-parallel execution.
//
// The measurement methodology is embarrassingly parallel: every
// (vantage, probe, mode) shard owns its Simulator, Environment and Rng fork,
// so shards never share mutable state and can run on any thread. The pool
// only has to distribute tasks and join; determinism is the *callers'*
// responsibility and is achieved by merging shard results in canonical shard
// order after wait() returns (see docs/PARALLELISM.md).
//
// Design: one shared FIFO queue guarded by a mutex. Tasks in this codebase
// are coarse (a whole probe run, hundreds of simulated page loads), so queue
// contention is irrelevant and work-stealing deques would be complexity
// without measurable benefit. Workers pull until the queue drains; wait()
// blocks until every submitted task finished and rethrows the first task
// exception (by submission order of completion, i.e. first captured).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace h3cdn::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means default_jobs(). A single-thread pool
  /// still runs tasks on its one worker (not the calling thread), so code
  /// paths are identical for every pool size.
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers. Pending tasks are still executed (drain semantics);
  /// destruction blocks until the queue is empty.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Thread-safe; may be called from worker threads.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished, then rethrows
  /// the first exception a task threw (if any). The pool stays usable after
  /// wait(), so one pool can serve several parallel phases.
  void wait();

  /// Distributes `fn(0..n-1)` across the pool and waits. Dynamic assignment:
  /// each worker grabs the next unclaimed index, so uneven task costs
  /// balance automatically. Rethrows the first task exception.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// The default worker count: hardware_concurrency, floored at 1.
  [[nodiscard]] static std::size_t default_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable task_ready_;   // signalled on submit / shutdown
  std::condition_variable all_done_;     // signalled when in_flight_ hits 0
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace h3cdn::util
