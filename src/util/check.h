// Lightweight precondition / invariant checking, in the spirit of the
// C++ Core Guidelines' Expects()/Ensures(). Violations abort with a message:
// in a simulator, continuing past a broken invariant silently corrupts every
// measurement derived afterwards, so fail fast is the only sane policy.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace h3cdn::detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "h3cdn: %s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace h3cdn::detail

#define H3CDN_EXPECTS(cond)                                                      \
  do {                                                                           \
    if (!(cond)) ::h3cdn::detail::check_failed("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define H3CDN_ENSURES(cond)                                                      \
  do {                                                                           \
    if (!(cond)) ::h3cdn::detail::check_failed("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define H3CDN_ASSERT(cond)                                                       \
  do {                                                                           \
    if (!(cond)) ::h3cdn::detail::check_failed("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
